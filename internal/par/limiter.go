package par

import (
	"context"
	"sync/atomic"
)

// Limiter is a counting semaphore for admission control: where Budget
// splits a worker budget among jobs that already started, Limiter
// decides how many jobs may be in flight at all. The serve daemon uses
// one to cap concurrent sessions — TryAcquire at OPEN gives graceful
// refusal instead of queueing, and Active feeds Budget so the flows
// behind the admitted sessions share the worker budget.
type Limiter struct {
	slots  chan struct{}
	active atomic.Int64
}

// NewLimiter returns a Limiter admitting at most n holders at once.
// Non-positive n is clamped to 1.
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking and reports whether one was
// available.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		l.active.Add(1)
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot is available or ctx is done, returning
// ctx.Err() in the latter case.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		l.active.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by TryAcquire or Acquire. Releasing
// without a matching acquire panics — that is always a caller bug.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
		l.active.Add(-1)
	default:
		panic("par: Limiter.Release without matching Acquire")
	}
}

// Active returns the number of slots currently held.
func (l *Limiter) Active() int {
	return int(l.active.Load())
}

// Cap returns the maximum number of concurrent holders.
func (l *Limiter) Cap() int {
	return cap(l.slots)
}
