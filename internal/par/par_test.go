package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 13} {
		n := 1000
		got := make([]int32, n)
		ParallelFor(workers, n, func(i int) { atomic.AddInt32(&got[i], 1) })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForOrderedResults(t *testing.T) {
	// The canonical use: each item writes its own slot; the collected
	// slice is identical at any worker count.
	compute := func(workers int) []int {
		out := make([]int, 257)
		ParallelFor(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 8, 32} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestParallelForEmptyAndSingle(t *testing.T) {
	ParallelFor(8, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	ParallelFor(8, 1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d times", ran)
	}
}

func TestParallelForPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				v := recover()
				wp, ok := v.(*WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *WorkerPanic", workers, v, v)
				}
				if wp.Item != 3 {
					t.Errorf("workers=%d: panic attributed to item %d, want 3 (lowest)", workers, wp.Item)
				}
				if wp.Value != "boom" {
					t.Errorf("workers=%d: panic value %v, want boom", workers, wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Errorf("workers=%d: no stack captured", workers)
				}
			}()
			ParallelFor(workers, 64, func(i int) {
				if i >= 3 && i%2 == 1 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ParallelFor returned, want panic", workers)
		}()
	}
}

func TestPanicDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 10; k++ {
		func() {
			defer func() { recover() }()
			ParallelFor(4, 100, func(i int) {
				if i == 50 {
					panic("x")
				}
			})
		}()
	}
	// All workers drain before the re-raise, so nothing lingers.
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d", before, after)
	}
}

func TestDo(t *testing.T) {
	a, b, c := 0, 0, 0
	Do(3, func() { a = 1 }, func() { b = 2 }, func() { c = 3 })
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do results %d %d %d", a, b, c)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestBudget(t *testing.T) {
	cases := []struct{ total, outer, want int }{
		{8, 2, 4},
		{8, 8, 1},
		{8, 16, 1},
		{8, 3, 2},
		{1, 4, 1},
		{4, 0, 4},
	}
	for _, c := range cases {
		if got := Budget(c.total, c.outer); got != c.want {
			t.Errorf("Budget(%d, %d) = %d, want %d", c.total, c.outer, got, c.want)
		}
	}
	if got := Budget(0, 1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Budget(0, 1) = %d, want GOMAXPROCS", got)
	}
}

// TestBudgetEdgeCases pins the degenerate inputs: a total smaller than
// the outer fan-out floors at one inner worker per job, non-positive
// arguments resolve instead of dividing by zero or going negative, and
// overflow-adjacent totals pass through undistorted.
func TestBudgetEdgeCases(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	cases := []struct {
		name               string
		total, outer, want int
	}{
		{"total smaller than outer", 2, 7, 1},
		{"total one, huge outer", 1, maxInt, 1},
		{"negative outer treated as one", 8, -2, 8},
		{"zero outer treated as one", 8, 0, 8},
		{"max total single job", maxInt, 1, maxInt},
		{"max total max outer", maxInt, maxInt, 1},
		{"near-max total two jobs", maxInt - 1, 2, (maxInt - 1) / 2},
	}
	for _, c := range cases {
		if got := Budget(c.total, c.outer); got != c.want {
			t.Errorf("%s: Budget(%d, %d) = %d, want %d", c.name, c.total, c.outer, got, c.want)
		}
	}
	// Negative totals mean "automatic", same as zero.
	if got := Budget(-5, 3); got != Budget(0, 3) {
		t.Errorf("Budget(-5, 3) = %d, want %d", got, Budget(0, 3))
	}
	// The documented invariant: whenever the budget can cover the outer
	// fan-out at all, outer × inner stays within it.
	for total := 1; total <= 16; total++ {
		for outer := 1; outer <= total; outer++ {
			if inner := Budget(total, outer); outer*inner > total {
				t.Errorf("Budget(%d, %d) = %d: outer×inner %d exceeds total", total, outer, inner, outer*inner)
			}
		}
	}
	// And the floor: inner never drops below one even when the budget
	// cannot cover the fan-out.
	for _, outer := range []int{2, 3, 100, maxInt} {
		if inner := Budget(1, outer); inner != 1 {
			t.Errorf("Budget(1, %d) = %d, want 1", outer, inner)
		}
	}
}

// TestWorkersEdgeCases pins the resolution rule at its boundaries.
func TestWorkersEdgeCases(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	auto := runtime.GOMAXPROCS(0)
	if got := Workers(maxInt); got != maxInt {
		t.Errorf("Workers(maxInt) = %d, want maxInt (explicit counts pass through)", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	for _, n := range []int{0, -1, -maxInt} {
		if got := Workers(n); got != auto {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, auto)
		}
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Note(10)
	s.Note(5)
	if s.Batches != 2 || s.Tasks != 15 {
		t.Fatalf("stats = %+v", s)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Batches != 4 || sum.Tasks != 30 {
		t.Fatalf("sum = %+v", sum)
	}
	var nilStats *Stats
	nilStats.Note(3) // must not panic
	nilStats.Add(s)
}
