package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 13} {
		n := 1000
		got := make([]int32, n)
		ParallelFor(workers, n, func(i int) { atomic.AddInt32(&got[i], 1) })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForOrderedResults(t *testing.T) {
	// The canonical use: each item writes its own slot; the collected
	// slice is identical at any worker count.
	compute := func(workers int) []int {
		out := make([]int, 257)
		ParallelFor(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 8, 32} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestParallelForEmptyAndSingle(t *testing.T) {
	ParallelFor(8, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	ParallelFor(8, 1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d times", ran)
	}
}

func TestParallelForPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				v := recover()
				wp, ok := v.(*WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *WorkerPanic", workers, v, v)
				}
				if wp.Item != 3 {
					t.Errorf("workers=%d: panic attributed to item %d, want 3 (lowest)", workers, wp.Item)
				}
				if wp.Value != "boom" {
					t.Errorf("workers=%d: panic value %v, want boom", workers, wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Errorf("workers=%d: no stack captured", workers)
				}
			}()
			ParallelFor(workers, 64, func(i int) {
				if i >= 3 && i%2 == 1 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ParallelFor returned, want panic", workers)
		}()
	}
}

func TestPanicDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 10; k++ {
		func() {
			defer func() { recover() }()
			ParallelFor(4, 100, func(i int) {
				if i == 50 {
					panic("x")
				}
			})
		}()
	}
	// All workers drain before the re-raise, so nothing lingers.
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d", before, after)
	}
}

func TestDo(t *testing.T) {
	a, b, c := 0, 0, 0
	Do(3, func() { a = 1 }, func() { b = 2 }, func() { c = 3 })
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do results %d %d %d", a, b, c)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestBudget(t *testing.T) {
	cases := []struct{ total, outer, want int }{
		{8, 2, 4},
		{8, 8, 1},
		{8, 16, 1},
		{8, 3, 2},
		{1, 4, 1},
		{4, 0, 4},
	}
	for _, c := range cases {
		if got := Budget(c.total, c.outer); got != c.want {
			t.Errorf("Budget(%d, %d) = %d, want %d", c.total, c.outer, got, c.want)
		}
	}
	if got := Budget(0, 1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Budget(0, 1) = %d, want GOMAXPROCS", got)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Note(10)
	s.Note(5)
	if s.Batches != 2 || s.Tasks != 15 {
		t.Fatalf("stats = %+v", s)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Batches != 4 || sum.Tasks != 30 {
		t.Fatalf("sum = %+v", sum)
	}
	var nilStats *Stats
	nilStats.Note(3) // must not panic
	nilStats.Add(s)
}
