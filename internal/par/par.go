// Package par is the repository's shared bounded-parallelism primitive
// for intra-flow kernels: a deterministic fan-out-fan-in loop with
// ordered result collection and panic capture.
//
// The determinism contract: ParallelFor promises nothing about the
// order work items *execute*, so a caller is deterministic exactly when
// each item writes only its own, index-addressed output and reads only
// state that is frozen for the duration of the call. Every kernel built
// on this package (place's bisection frontier, sta's per-level sweeps,
// route's per-net fan-out, cts's subtree partitioning) is structured
// that way, which is what makes flow results byte-identical at any
// worker count. Work items must not draw from a shared RNG — a stream
// consumed in scheduling order would differ run to run; seeds must be
// pre-split per item instead (the flow.AttemptSeed pattern).
//
// A conforming kernel writes only its own index-addressed slot and
// reduces after the barrier:
//
//	wls := make([]float64, len(nets))
//	par.ParallelFor(workers, len(nets), func(i int) {
//		wls[i] = length(nets[i]) // own slot; reads frozen state only
//	})
//	total := 0.0
//	for _, wl := range wls {
//		total += wl // ordered reduction, after all items finished
//	}
//
// The shape below violates the contract — the captured accumulator is
// written in schedule order, so the result depends on the interleaving
// (and loses updates outright). The pardet analyzer rejects it
// statically:
//
//	var total float64
//	par.ParallelFor(workers, len(nets), func(i int) {
//		total += length(nets[i]) // schedule-ordered shared write
//	})
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: non-positive means
// "automatic" (GOMAXPROCS), anything else is taken as given. Callers
// that fan out nested parallelism should budget with Budget instead of
// multiplying automatics together.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Budget derives the per-job inner worker count when outer jobs each
// fan out their own parallelism: total/outer, floored at 1, so
// outer × inner never exceeds the total budget (eval.RunSuite uses
// GOMAXPROCS as the total). A non-positive total means GOMAXPROCS.
func Budget(total, outer int) int {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if outer < 1 {
		outer = 1
	}
	inner := total / outer
	if inner < 1 {
		inner = 1
	}
	return inner
}

// Stats accumulates fan-out counters for the engine-observability
// report: Batches counts ParallelFor/Do invocations, Tasks the work
// items they dispatched. Both are schedule-independent — the same at
// any worker count — so they are safe to surface in deterministic
// outputs. Note must be called from the coordinating goroutine (the
// methods are not atomic); a nil *Stats discards.
type Stats struct {
	Batches, Tasks int64
}

// Note records one fan-out of n work items.
func (s *Stats) Note(n int) {
	if s == nil {
		return
	}
	s.Batches++
	s.Tasks += int64(n)
}

// Add merges another counter set (used when draining kernel-local stats
// into a stage's flow counters).
func (s *Stats) Add(o Stats) {
	if s == nil {
		return
	}
	s.Batches += o.Batches
	s.Tasks += o.Tasks
}

// WorkerPanic wraps a panic raised inside a ParallelFor or Do work
// item. The panic is re-raised on the calling goroutine with this type
// as the value, so the flow engine's stage panic barrier attributes it
// like any other stage panic while keeping the worker's stack.
type WorkerPanic struct {
	// Item is the work-item index that panicked (the lowest, when
	// several did — chosen so the surfaced failure is deterministic).
	Item int
	// Value is the original panic value.
	Value interface{}
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic on item %d: %v\n%s", p.Item, p.Value, p.Stack)
}

// ParallelFor executes fn(i) for every i in [0, n) on at most workers
// concurrently running goroutines and returns when all items finished.
// Items are claimed off an atomic counter, so heavily imbalanced items
// (bisection regions, STA levels) still load-balance. workers <= 1 or
// n <= 1 runs inline with no goroutines.
//
// A panicking item does not abort its siblings (every claimed item
// runs); once all workers drain, the panic from the lowest-indexed
// failing item is re-raised on the caller as a *WorkerPanic — on the
// serial path too, so failure surfaces identically at any worker count.
func ParallelFor(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	var (
		mu    sync.Mutex
		first *WorkerPanic
	)
	record := func(i int, v interface{}) {
		mu.Lock()
		if first == nil || i < first.Item {
			buf := make([]byte, 64<<10)
			first = &WorkerPanic{Item: i, Value: v, Stack: buf[:runtime.Stack(buf, false)]}
		}
		mu.Unlock()
	}
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				record(i, v)
			}
		}()
		fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if first != nil {
		panic(first)
	}
}

// Do runs the given functions, concurrently when workers > 1, and
// returns when all finished — the two-or-three-way fork for recursive
// kernels (cts subtree construction). Panic semantics match
// ParallelFor: the lowest-indexed panicking function wins.
func Do(workers int, fns ...func()) {
	ParallelFor(workers, len(fns), func(i int) { fns[i]() })
}
