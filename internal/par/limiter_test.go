package par

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(2)
	if l.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", l.Cap())
	}
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded past the cap")
	}
	if l.Active() != 2 {
		t.Fatalf("Active = %d, want 2", l.Active())
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	l.Release()
	l.Release()
	if l.Active() != 0 {
		t.Fatalf("Active = %d, want 0", l.Active())
	}
}

func TestLimiterClampsCap(t *testing.T) {
	if got := NewLimiter(0).Cap(); got != 1 {
		t.Fatalf("Cap(0) = %d, want 1", got)
	}
	if got := NewLimiter(-5).Cap(); got != 1 {
		t.Fatalf("Cap(-5) = %d, want 1", got)
	}
}

func TestLimiterAcquireBlocksUntilRelease(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Acquire(context.Background()) }()
	select {
	case <-done:
		t.Fatal("Acquire returned with the slot held")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	l.Release()
}

func TestLimiterAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed on a fresh limiter")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire = %v, want context.DeadlineExceeded", err)
	}
	l.Release()
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewLimiter(1).Release()
}

// TestLimiterConcurrent: under -race, hammer acquire/release from many
// goroutines and assert the cap was never exceeded.
func TestLimiterConcurrent(t *testing.T) {
	const cap, goroutines = 4, 16
	l := NewLimiter(cap)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := l.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				if a := l.Active(); a > cap {
					t.Errorf("Active = %d exceeds cap %d", a, cap)
				}
				l.Release()
			}
		}()
	}
	wg.Wait()
	if l.Active() != 0 {
		t.Fatalf("Active = %d after full drain", l.Active())
	}
}
