package report

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "Name", "Val")
	tab.AddRow("aaa", 1.2345)
	tab.AddRow("b", 12345.6)
	tab.AddRowf("c", "x")
	out := tab.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "Name") {
		t.Errorf("missing headers: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("got %d lines", len(lines))
	}
	// Second column right-aligned: the shorter value ends at the same
	// column as the longer one.
	if !strings.Contains(out, "12346") {
		t.Errorf("float formatting: %q", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		42.42:   "42.4",
		1.2345:  "1.234",
		0.0123:  "0.0123",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFig1(t *testing.T) {
	f := Fig1()
	for _, want := range []string{"2D-12T", "Hetero", "0.81", "0.90", "level shifters"} {
		if !strings.Contains(f, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestAsciiDensity(t *testing.T) {
	g, err := geom.NewGrid(geom.R(0, 0, 10, 10), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := geom.NewHistogram(g)
	h.AddPoint(geom.Pt(1, 1), 5)
	out := AsciiDensity(h)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 4 {
		t.Fatalf("dimensions wrong: %q", out)
	}
	// Hottest bin renders '@' and is in the bottom row (printed last).
	if !strings.Contains(lines[1], "@") {
		t.Errorf("hot bin not rendered: %q", out)
	}
	// Empty histogram renders all spaces.
	empty := AsciiDensity(geom.NewHistogram(g))
	if strings.Trim(empty, " \n") != "" {
		t.Errorf("empty histogram should be blank: %q", empty)
	}
}

func layoutFixture(t *testing.T) *netlist.Design {
	t.Helper()
	lib12 := cell.NewLibrary(tech.Variant12T())
	lib9 := cell.NewLibrary(tech.Variant9T())
	d := netlist.New("lay")
	a, _ := d.AddInstance("a", lib12.Smallest(cell.FuncInv))
	b, _ := d.AddInstance("b", lib9.Smallest(cell.FuncInv))
	cb, _ := d.AddInstance("ck", lib12.Smallest(cell.FuncClkBuf))
	ram := cell.NewRAMMacro("R", 3, 3, 0.1, 1, 1)
	m, _ := d.AddInstance("ram", ram)
	a.Loc, b.Loc, cb.Loc, m.Loc = geom.Pt(2, 2), geom.Pt(5, 5), geom.Pt(7, 2), geom.Pt(8, 8)
	b.Tier = tech.TierTop

	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	n1, _ := d.AddNet("n1")
	if err := d.Connect(a, "A", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(a, "Y", n1); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(m, "A", n1); err != nil {
		t.Fatal(err)
	}
	nq, _ := d.AddNet("nq")
	if err := d.Connect(m, "Q", nq); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(b, "A", nq); err != nil {
		t.Fatal(err)
	}
	nb, _ := d.AddNet("nb")
	if err := d.Connect(b, "Y", nb); err != nil {
		t.Fatal(err)
	}
	ck, _ := d.AddNet("ck")
	ck.IsClock = true
	if err := d.Connect(cb, "A", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(cb, "Y", ck); err != nil {
		t.Fatal(err)
	}
	// A register gives the clock buffer a sink for the overlay.
	ff, _ := d.AddInstance("ff", lib12.Smallest(cell.FuncDFF))
	ff.Loc = geom.Pt(4, 7)
	if err := d.Connect(ff, "CK", ck); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "D", nb); err != nil {
		t.Fatal(err)
	}
	fq, _ := d.AddNet("fq")
	if err := d.Connect(ff, "Q", fq); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLayoutSVG(t *testing.T) {
	d := layoutFixture(t)
	var sb strings.Builder
	svg := &LayoutSVG{Design: d, Outline: geom.R(0, 0, 10, 10), Tiers: 1}
	if err := svg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 9-track cell green, 12-track blue, macro gray, clock red.
	for _, c := range []string{"#6aa84f", "#3c78d8", "#555555", "#e06666"} {
		if !strings.Contains(out, c) {
			t.Errorf("missing colour %s", c)
		}
	}
	// Tier filtering: a tier-top 3-D view must include only the 9T cell.
	var sb2 strings.Builder
	svg2 := &LayoutSVG{Design: d, Outline: geom.R(0, 0, 10, 10), Tiers: 2, Tier: tech.TierTop}
	if err := svg2.Write(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "#3c78d8") {
		t.Error("top-tier view leaked bottom-tier cells")
	}
	if !strings.Contains(sb2.String(), "#6aa84f") {
		t.Error("top-tier view lost its cell")
	}
}

func TestOverlays(t *testing.T) {
	d := layoutFixture(t)
	ck := ClockOverlay(d, 1, tech.TierBottom)
	if len(ck.Lines) == 0 {
		t.Error("clock overlay empty")
	}
	in, out := MemoryOverlay(d)
	if len(in.Lines) != 1 || len(out.Lines) != 1 {
		t.Errorf("memory overlay lines = %d/%d, want 1/1", len(in.Lines), len(out.Lines))
	}
	p := sta.Path{}
	if ov := PathOverlay(p); len(ov.Lines) != 0 {
		t.Error("empty path should have no lines")
	}
	// Overlays render into the SVG.
	var sb strings.Builder
	svg := &LayoutSVG{
		Design: d, Outline: geom.R(0, 0, 10, 10), Tiers: 1,
		Overlays: []Overlay{ck, in, out},
	}
	if err := svg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<line") {
		t.Error("overlay lines not drawn")
	}
}
