package report

import (
	"fmt"
	"strings"
)

// ResilienceRow is one flow's robustness outcome in the -resilience
// table: what was injected, what was retried, how the flow degraded, and
// whether it completed.
type ResilienceRow struct {
	Design, Config string
	// Attempts is how many times the flow ran (1 = clean first try).
	Attempts int
	// Faults counts injected faults delivered inside the flow's stages;
	// Reruns counts degraded-mode stage re-runs; Panics counts recovered
	// stage panics.
	Faults, Reruns, Panics int64
	// Degraded lists the degraded-mode reasons ("full-sta",
	// "utilization"), empty for a clean flow.
	Degraded []string
	// Outcome is "ok", "ok (degraded)", or "failed: <stage>".
	Outcome string
}

// ResilienceTable renders per-flow robustness rows plus a summary line.
// Flows that ran clean on the first attempt with no degradations are
// summarized, not listed, so the table stays readable at suite scale.
func ResilienceTable(title string, rows []ResilienceRow) *Table {
	t := NewTable(title, "Design", "Config", "Attempts", "Faults", "Reruns", "Panics", "Degraded", "Outcome")
	clean := 0
	var totFaults, totReruns, totPanics int64
	degradedFlows := 0
	for _, r := range rows {
		totFaults += r.Faults
		totReruns += r.Reruns
		totPanics += r.Panics
		eventful := r.Attempts > 1 || r.Faults > 0 || r.Reruns > 0 || r.Panics > 0 ||
			len(r.Degraded) > 0 || (r.Outcome != "" && r.Outcome != "ok")
		if len(r.Degraded) > 0 {
			degradedFlows++
		}
		if !eventful {
			clean++
			continue
		}
		deg := "-"
		if len(r.Degraded) > 0 {
			deg = strings.Join(r.Degraded, ",")
		}
		t.AddRowf(r.Design, r.Config, fmt.Sprint(r.Attempts), fmt.Sprint(r.Faults),
			fmt.Sprint(r.Reruns), fmt.Sprint(r.Panics), deg, r.Outcome)
	}
	t.AddRowf("summary", fmt.Sprintf("%d flows", len(rows)), "-", fmt.Sprint(totFaults),
		fmt.Sprint(totReruns), fmt.Sprint(totPanics), fmt.Sprintf("%d degraded", degradedFlows),
		fmt.Sprintf("%d clean", clean))
	return t
}
