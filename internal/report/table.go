// Package report renders the evaluation's tables and figures: aligned
// text tables matching the paper's layout, ASCII density heatmaps, and
// SVG layout plots for the Fig. 3/4 views.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v unless they are
// strings or implement fmt.Stringer.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of pre-formatted strings.
func (t *Table) AddRowf(cells ...string) { t.rows = append(t.rows, cells) }

// trimFloat renders floats compactly with adaptive precision.
func trimFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := width[i] - len(c)
			if i == 0 {
				// First column left-aligned.
				sb.WriteString(c + strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, wd := range width {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// Fig1 renders the five technology/design configurations of the paper's
// Fig. 1 as ASCII stack diagrams.
func Fig1() string {
	return `Fig. 1 — Five configurations of 2-D and 3-D with 9- and 12-track cells

 (a) 2D-12T          (b) 2D-9T           (c) M3D-9T
 +--------------+    +--------------+    +-----------+
 | 12T @ 0.90 V |    |  9T @ 0.81 V |    | 9T top    |
 +--------------+    +--------------+    +-----------+
                                         | 9T bottom |
                                         +-----------+

 (d) M3D-12T         (e) Hetero-M3D (9+12T)
 +------------+      +---------------------------+
 | 12T top    |      |  9T @ 0.81 V (low power)  |  ← slow/cheap die
 +------------+      +---------------------------+
 | 12T bottom |      | 12T @ 0.90 V (fast)       |  ← timing-critical die
 +------------+      +---------------------------+
 MIV-dense sequential integration; no level shifters
 (V_DDH − V_DDL = 0.09 V < 0.3 × V_DDH).
`
}
