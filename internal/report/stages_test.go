package report

import (
	"strings"
	"testing"
	"time"
)

func TestStageTimingTable(t *testing.T) {
	rows := []StageRow{
		{Stage: "place", Runs: 4, Total: 600 * time.Millisecond, Max: 250 * time.Millisecond},
		{Stage: "cts", Runs: 4, Total: 200 * time.Millisecond, Max: 80 * time.Millisecond, Cells: 1234},
	}
	out := StageTimingTable("Per-stage wall time", rows).String()

	for _, want := range []string{
		"Per-stage wall time",
		"Stage", "Runs", "Total", "Mean", "Max", "Share", "Cells",
		"place", "600.0ms", "150.0ms", "250.0ms", "75.0%",
		"cts", "200.0ms", "50.0ms", "80.0ms", "25.0%", "1234",
		"total", "800.0ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The zero-cell aggregate row renders "-" in the Cells column.
	placeLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "place") {
			placeLine = line
		}
	}
	if !strings.Contains(placeLine, "-") {
		t.Errorf("aggregated row should render '-' for cells:\n%s", placeLine)
	}
}

func TestStageTimingTableEmpty(t *testing.T) {
	out := StageTimingTable("empty", nil).String()
	if !strings.Contains(out, "total") || !strings.Contains(out, "0.0ms") {
		t.Errorf("empty table should still render a zero total:\n%s", out)
	}
}
