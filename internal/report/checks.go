package report

import (
	"fmt"

	"repro/internal/check"
)

// CheckTable renders a run's stage-boundary check reports as one aligned
// table: a row per boundary summarizing objects examined and findings,
// expanded with one row per violated rule, and a totals line. Boundaries
// with no findings render as a single "clean" row, so the table doubles
// as proof of which invariants were actually asserted.
func CheckTable(title string, reps []*check.Report) *Table {
	t := NewTable(title, "Stage", "Rule", "Severity", "Checked", "Violations")
	var totChecked, totViol int
	for _, rep := range reps {
		stage := rep.Stage
		if stage == "" {
			stage = "(standalone)"
		}
		totChecked += rep.Checked()
		totViol += rep.Count(check.Info)
		if rep.Count(check.Info) == 0 {
			t.AddRowf(stage, fmt.Sprintf("%d rules", len(rep.Stats)), "clean",
				fmt.Sprint(rep.Checked()), "0")
			continue
		}
		for _, s := range rep.Stats {
			if s.Violations == 0 {
				continue
			}
			t.AddRowf(stage, fmt.Sprintf("%s %s", s.ID, s.Title), s.Severity.String(),
				fmt.Sprint(s.Checked), fmt.Sprint(s.Violations))
		}
	}
	t.AddRowf("total", "", "", fmt.Sprint(totChecked), fmt.Sprint(totViol))
	return t
}
