package report

import "fmt"

// EngineStatsRow is one aggregated line of the -timer-stats table: the
// timing-engine and extraction-cache counters a pipeline stage reported,
// summed across every flow of a run or suite.
type EngineStatsRow struct {
	Stage string
	// Full and Incremental count timing updates by kind; Nodes totals the
	// per-instance forward recomputations they performed.
	Full, Incremental, Nodes int64
	// RCHits and RCMisses are the extraction cache's counters.
	RCHits, RCMisses int64
	// ParBatches and ParTasks count the stage's intra-flow parallel
	// fan-outs: rounds scheduled and work items dispatched. Both count
	// *scheduled* work, so they are identical at any -flow-workers value.
	ParBatches, ParTasks int64
	// Robustness counters: congestion-driven placement retries, injected
	// faults, degraded-mode stage re-runs, degradations (full-STA
	// downgrades + extra utilization relaxations), and recovered panics.
	Retries, Faults, Reruns, Degraded, Panics int64
}

// EngineStatsTable renders engine-counter rows as an aligned table with
// a derived cache-hit-rate column and a totals line.
func EngineStatsTable(title string, rows []EngineStatsRow) *Table {
	t := NewTable(title, "Stage", "Full", "Incr", "Nodes re-eval", "RC hits", "RC misses", "RC hit rate",
		"Par batches", "Par tasks", "Retries", "Faults", "Reruns", "Degraded", "Panics")
	rate := func(h, m int64) string {
		if h+m == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(h)/float64(h+m))
	}
	var tot EngineStatsRow
	add := func(r EngineStatsRow) {
		t.AddRowf(r.Stage, fmt.Sprint(r.Full), fmt.Sprint(r.Incremental), fmt.Sprint(r.Nodes),
			fmt.Sprint(r.RCHits), fmt.Sprint(r.RCMisses), rate(r.RCHits, r.RCMisses),
			fmt.Sprint(r.ParBatches), fmt.Sprint(r.ParTasks),
			fmt.Sprint(r.Retries), fmt.Sprint(r.Faults), fmt.Sprint(r.Reruns),
			fmt.Sprint(r.Degraded), fmt.Sprint(r.Panics))
	}
	for _, r := range rows {
		tot.Full += r.Full
		tot.Incremental += r.Incremental
		tot.Nodes += r.Nodes
		tot.RCHits += r.RCHits
		tot.RCMisses += r.RCMisses
		tot.ParBatches += r.ParBatches
		tot.ParTasks += r.ParTasks
		tot.Retries += r.Retries
		tot.Faults += r.Faults
		tot.Reruns += r.Reruns
		tot.Degraded += r.Degraded
		tot.Panics += r.Panics
		add(r)
	}
	tot.Stage = "total"
	add(tot)
	return t
}
