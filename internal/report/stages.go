package report

import (
	"fmt"
	"time"
)

// StageRow is one aggregated pipeline-stage timing line of the
// -stage-report table. For a single flow run, Runs is 1 and Total is the
// stage's wall time; suite-level reports aggregate across every flow.
type StageRow struct {
	Stage string
	Runs  int
	Total time.Duration
	Max   time.Duration
	// Cells is the design's cell count when the stage finished
	// (rendered only when nonzero — aggregated rows omit it).
	Cells int
}

// StageTimingTable renders per-stage wall-time rows as an aligned table
// with a share-of-total column.
func StageTimingTable(title string, rows []StageRow) *Table {
	t := NewTable(title, "Stage", "Runs", "Total", "Mean", "Max", "Share", "Cells")
	var total time.Duration
	for _, r := range rows {
		total += r.Total
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	for _, r := range rows {
		mean := time.Duration(0)
		if r.Runs > 0 {
			mean = r.Total / time.Duration(r.Runs)
		}
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(r.Total)/float64(total))
		}
		cells := "-"
		if r.Cells > 0 {
			cells = fmt.Sprint(r.Cells)
		}
		t.AddRowf(r.Stage, fmt.Sprint(r.Runs), ms(r.Total), ms(mean), ms(r.Max), share, cells)
	}
	t.AddRowf("total", "", ms(total), "", "", "", "")
	return t
}
