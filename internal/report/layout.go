package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

// AsciiDensity renders a density histogram as a heatmap (space → '@' in
// increasing density), one character per bin, row 0 at the bottom — the
// text rendition of Fig. 3's placement views.
func AsciiDensity(h *geom.Histogram) string {
	const ramp = " .:-=+*#%@"
	max := h.Max()
	var sb strings.Builder
	for iy := h.Grid.Ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < h.Grid.Nx; ix++ {
			v := h.Vals[h.Grid.Index(ix, iy)]
			k := 0
			if max > 0 {
				k = int(v / max * float64(len(ramp)-1))
			}
			sb.WriteByte(ramp[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LayoutSVG writes an SVG of one tier's placement: standard cells as
// rectangles (height showing the track variant — the visual point of
// Fig. 3c), macros hatched, plus optional net overlays.
type LayoutSVG struct {
	Design  *netlist.Design
	Outline geom.Rect
	// Tier selects which die to draw; ignored when Tiers == 1.
	Tier  tech.Tier
	Tiers int
	// Overlays are polylines drawn over the cells (clock tree, memory
	// nets, critical path — the Fig. 4 views).
	Overlays []Overlay
	// PxPerUM scales the drawing (default 8).
	PxPerUM float64
}

// Overlay is a named set of line segments with a colour.
type Overlay struct {
	Name  string
	Color string
	Lines [][2]geom.Point
}

// Write emits the SVG document.
func (l *LayoutSVG) Write(w io.Writer) error {
	scale := l.PxPerUM
	if scale <= 0 {
		scale = 8
	}
	W := l.Outline.W() * scale
	H := l.Outline.H() * scale
	// SVG y grows downward; flip.
	X := func(x float64) float64 { return (x - l.Outline.Lx) * scale }
	Y := func(y float64) float64 { return H - (y-l.Outline.Ly)*scale }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", W, H, W, H)
	fmt.Fprintf(&sb, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#101018"/>`+"\n", W, H)

	for _, inst := range l.Design.Instances {
		if l.Tiers == 2 && inst.Tier != l.Tier {
			continue
		}
		w := inst.Master.Width * scale
		h := inst.Master.Height * scale
		x := X(inst.Loc.X) - w/2
		y := Y(inst.Loc.Y) - h/2
		color := "#3c78d8" // 12-track blue
		switch {
		case inst.Master.Function.IsMacro():
			color = "#555555"
		case inst.Master.Function.IsClockCell():
			color = "#e06666"
		case inst.Master.Track == tech.Track9:
			color = "#6aa84f" // 9-track green
		}
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.85"/>`+"\n",
			x, y, w, h, color)
	}

	for _, ov := range l.Overlays {
		for _, ln := range ov.Lines {
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2"/>`+"\n",
				X(ln[0].X), Y(ln[0].Y), X(ln[1].X), Y(ln[1].Y), ov.Color)
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// ClockOverlay builds the Fig. 4(a) clock-tree overlay: a line from every
// clock buffer to each of its fanouts.
func ClockOverlay(d *netlist.Design, tiers int, tier tech.Tier) Overlay {
	ov := Overlay{Name: "clock", Color: "#00e5ff"}
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsClockCell() {
			continue
		}
		if tiers == 2 && inst.Tier != tier {
			continue
		}
		out := d.OutputNet(inst)
		if out == nil {
			continue
		}
		for _, s := range out.Sinks {
			ov.Lines = append(ov.Lines, [2]geom.Point{inst.Loc, s.Loc()})
		}
	}
	return ov
}

// MemoryOverlay builds the Fig. 4(b) view: yellow lines into memory
// macros, magenta lines out of them.
func MemoryOverlay(d *netlist.Design) (in, out Overlay) {
	in = Overlay{Name: "mem-in", Color: "#ffd966"}
	out = Overlay{Name: "mem-out", Color: "#ff00ff"}
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsMacro() {
			continue
		}
		if a := d.NetOf(inst, "A"); a != nil && a.Driver.Valid() {
			in.Lines = append(in.Lines, [2]geom.Point{a.Driver.Loc(), inst.Loc})
		}
		if q := d.NetOf(inst, "Q"); q != nil {
			for _, s := range q.Sinks {
				out.Lines = append(out.Lines, [2]geom.Point{inst.Loc, s.Loc()})
			}
		}
	}
	return in, out
}

// PathOverlay builds the Fig. 4(c) view: the critical path drawn stage to
// stage.
func PathOverlay(p sta.Path) Overlay {
	ov := Overlay{Name: "critical-path", Color: "#ff3333"}
	for i := 1; i < len(p.Stages); i++ {
		ov.Lines = append(ov.Lines, [2]geom.Point{
			p.Stages[i-1].Inst.Loc, p.Stages[i].Inst.Loc,
		})
	}
	return ov
}
