package cts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// randomFFField builds a design with n flip-flops scattered over a die,
// all on one clock.
func randomFFField(t testing.TB, n int, seed int64, twoTier bool) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("field")
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ff, _ := d.AddInstance("ff"+itoa(i), lib12.Smallest(cell.FuncDFF))
		ff.Loc = geom.Pt(rng.Float64()*120, rng.Float64()*120)
		if twoTier {
			ff.Tier = tech.Tier(rng.Intn(2))
		}
		if err := d.Connect(ff, "D", in); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(ff, "CK", clk); err != nil {
			t.Fatal(err)
		}
		q, _ := d.AddNet("q" + itoa(i))
		if err := d.Connect(ff, "Q", q); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// Property: for random sink fields, CTS produces a valid design where
// every flip-flop has a latency in (0, MaxLatency], skew = max − min, and
// no clock net exceeds the leaf fanout cap.
func TestBuildRandomFieldInvariants(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 5 + int(sizeSel%120)
		d := randomFFField(t, n, seed, false)
		opt := DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil})
		res, err := Build(d, opt)
		if err != nil {
			return false
		}
		if err := d.Validate(); err != nil {
			return false
		}
		if len(res.Latency) != n {
			return false
		}
		min, max := res.MaxLatency, 0.0
		for _, lat := range res.Latency {
			if lat <= 0 || lat > res.MaxLatency+1e-12 {
				return false
			}
			if lat < min {
				min = lat
			}
			if lat > max {
				max = lat
			}
		}
		if max != res.MaxLatency || min != res.MinLatency {
			return false
		}
		if res.MaxSkew != res.MaxLatency-res.MinLatency {
			return false
		}
		for _, net := range d.Nets {
			if !net.IsClock {
				continue
			}
			ffs := 0
			for _, s := range net.Sinks {
				if s.Spec().Dir == cell.DirClk && s.Inst.Master.Function.IsSequential() {
					ffs++
				}
			}
			if ffs > opt.MaxLeafFanout {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: hetero trees on random two-tier fields are always top-heavy
// and use only per-tier-correct libraries.
func TestBuildHeteroRandomFieldPolicy(t *testing.T) {
	f := func(seed int64) bool {
		d := randomFFField(t, 60, seed, true)
		res, err := Build(d, DefaultOptions(ModeHetero3D, [2]*cell.Library{lib12, lib9}))
		if err != nil {
			return false
		}
		for _, buf := range res.Buffers {
			want := tech.Track12
			if buf.Tier == tech.TierTop {
				want = tech.Track9
			}
			if buf.Master.Track != want {
				return false
			}
		}
		// With both tiers populated the top must dominate.
		return res.CountByTier[tech.TierTop] >= res.CountByTier[tech.TierBottom]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Clustered sinks must yield a lower-skew tree than the same number of
// sinks scattered across the die — the geometric sanity of the median
// splits.
func TestSkewScalesWithSpread(t *testing.T) {
	mk := func(spread float64) float64 {
		d := netlist.New("spread")
		clk, _ := d.AddNet("clk")
		clk.IsClock = true
		if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
			t.Fatal(err)
		}
		in, _ := d.AddNet("in")
		if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 80; i++ {
			ff, _ := d.AddInstance("ff"+itoa(i), lib12.Smallest(cell.FuncDFF))
			ff.Loc = geom.Pt(60+rng.Float64()*spread-spread/2, 60+rng.Float64()*spread-spread/2)
			if err := d.Connect(ff, "D", in); err != nil {
				t.Fatal(err)
			}
			if err := d.Connect(ff, "CK", clk); err != nil {
				t.Fatal(err)
			}
			q, _ := d.AddNet("q" + itoa(i))
			if err := d.Connect(ff, "Q", q); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Build(d, DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil}))
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxSkew
	}
	tight := mk(10)
	wide := mk(200)
	if wide <= tight {
		t.Errorf("spread 200 skew %v should exceed spread 10 skew %v", wide, tight)
	}
}
