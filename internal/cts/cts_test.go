package cts

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var (
	lib12 = cell.NewLibrary(tech.Variant12T())
	lib9  = cell.NewLibrary(tech.Variant9T())
)

func placedDesign(t testing.TB, tiers bool) *netlist.Design {
	t.Helper()
	d, err := designs.Generate(designs.AES, lib12, designs.Params{Scale: 0.05, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%71), float64((i*13)%67))
		if tiers {
			inst.Tier = tech.Tier(i % 2)
		}
	}
	return d
}

func seqCount(d *netlist.Design) int {
	n := 0
	for _, inst := range d.Instances {
		if inst.Master.Function.IsSequential() {
			n++
		}
	}
	return n
}

func TestBuild2D(t *testing.T) {
	d := placedDesign(t, false)
	nSeq := seqCount(d)
	res, err := Build(d, DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buffers) == 0 {
		t.Fatal("no buffers inserted")
	}
	if len(res.Latency) != nSeq {
		t.Errorf("latencies for %d sinks, want %d", len(res.Latency), nSeq)
	}
	if res.MaxLatency <= 0 || res.MaxSkew < 0 {
		t.Errorf("latency/skew = %v/%v", res.MaxLatency, res.MaxSkew)
	}
	if res.MaxSkew >= res.MaxLatency {
		t.Error("skew must be below max latency")
	}
	if res.Wirelength <= 0 || res.BufferArea <= 0 {
		t.Error("wirelength/area must be positive")
	}
	if res.CountByTier[1] != 0 {
		t.Error("2-D tree must stay on the bottom die")
	}
	if res.Levels < 2 {
		t.Errorf("levels = %d, want a real tree", res.Levels)
	}
	// Every buffer is a clock cell and every clock sink now hangs off a
	// buffer net.
	for _, buf := range res.Buffers {
		if !buf.Master.Function.IsClockCell() {
			t.Errorf("buffer %s is %v", buf.Name, buf.Master.Function)
		}
	}
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsSequential() {
			continue
		}
		ck := d.NetOf(inst, "CK")
		if ck == nil || !ck.Driver.Valid() || !ck.Driver.Inst.Master.Function.IsClockCell() {
			t.Fatalf("FF %s clock pin not buffered", inst.Name)
		}
	}
}

func TestBuildRespectsLeafFanout(t *testing.T) {
	d := placedDesign(t, false)
	opt := DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil})
	opt.MaxLeafFanout = 10
	if _, err := Build(d, opt); err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nets {
		if !n.IsClock {
			continue
		}
		ffSinks := 0
		for _, s := range n.Sinks {
			if s.Spec().Dir == cell.DirClk {
				ffSinks++
			}
		}
		if ffSinks > 10 {
			t.Errorf("clock net %s drives %d FFs, cap is 10", n.Name, ffSinks)
		}
	}
}

func TestBuildHetero3DTopHeavy(t *testing.T) {
	d := placedDesign(t, true)
	res, err := Build(d, DefaultOptions(ModeHetero3D, [2]*cell.Library{lib12, lib9}))
	if err != nil {
		t.Fatal(err)
	}
	total := res.CountByTier[0] + res.CountByTier[1]
	frac := float64(res.CountByTier[tech.TierTop]) / float64(total)
	// The paper observes >75 % of the heterogeneous clock tree on the top
	// die (Table VIII).
	if frac < 0.7 {
		t.Errorf("top-die buffer fraction = %v, want ≥ 0.7", frac)
	}
	// Top-die buffers come from the 9-track library.
	for _, buf := range res.Buffers {
		want := tech.Track12
		if buf.Tier == tech.TierTop {
			want = tech.Track9
		}
		if buf.Master.Track != want {
			t.Errorf("buffer %s on %v uses %v library", buf.Name, buf.Tier, buf.Master.Track)
		}
	}
}

func TestHetero3DSlowerButSmaller(t *testing.T) {
	d2 := placedDesign(t, true)
	res3, err := Build(d2, DefaultOptions(Mode3D, [2]*cell.Library{lib12, lib12}))
	if err != nil {
		t.Fatal(err)
	}
	dh := placedDesign(t, true)
	resH, err := Build(dh, DefaultOptions(ModeHetero3D, [2]*cell.Library{lib12, lib9}))
	if err != nil {
		t.Fatal(err)
	}
	// Table VIII shape: heterogeneous clock tree has less buffer area
	// (9-track cells) but worse latency/skew than homogeneous 12T 3-D.
	if resH.BufferArea >= res3.BufferArea {
		t.Errorf("hetero buffer area %v should be below 12T-3D %v", resH.BufferArea, res3.BufferArea)
	}
	if resH.MaxLatency <= res3.MaxLatency {
		t.Errorf("hetero latency %v should exceed 12T-3D %v", resH.MaxLatency, res3.MaxLatency)
	}
}

func TestMode3DMajorityPlacement(t *testing.T) {
	d := placedDesign(t, true)
	res, err := Build(d, DefaultOptions(Mode3D, [2]*cell.Library{lib12, lib12}))
	if err != nil {
		t.Fatal(err)
	}
	// Alternating tiers → both dies host buffers.
	if res.CountByTier[0] == 0 || res.CountByTier[1] == 0 {
		t.Errorf("3-D tree should span both dies: %v", res.CountByTier)
	}
}

func TestLatencyFunc(t *testing.T) {
	d := placedDesign(t, false)
	res, err := Build(d, DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil}))
	if err != nil {
		t.Fatal(err)
	}
	f := res.LatencyFunc()
	found := false
	for _, inst := range d.Instances {
		if inst.Master.Function.IsSequential() {
			if f(inst) > 0 {
				found = true
			}
			if math.Abs(f(inst)-res.Latency[inst.ID]) > 1e-12 {
				t.Error("LatencyFunc disagrees with map")
			}
		}
	}
	if !found {
		t.Error("no positive latencies")
	}
}

func TestBuildErrors(t *testing.T) {
	d := placedDesign(t, false)
	if _, err := Build(d, Options{Mode: Mode2D, MaxLeafFanout: 1, Libs: [2]*cell.Library{lib12, nil}}); err == nil {
		t.Error("tiny fanout should fail")
	}
	if _, err := Build(d, Options{Mode: Mode2D, MaxLeafFanout: 20}); err == nil {
		t.Error("missing library should fail")
	}
	if _, err := Build(d, Options{Mode: Mode3D, MaxLeafFanout: 20, Libs: [2]*cell.Library{lib12, nil}}); err == nil {
		t.Error("3-D without top library should fail")
	}
	// No clock design.
	nd := netlist.New("noclk")
	if _, err := Build(nd, DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil})); err == nil {
		t.Error("design without clock should fail")
	}
}

func TestBuildTwice(t *testing.T) {
	// After CTS the root clock net drives only the root buffer; a second
	// run sees one sink and builds a trivial tree rather than corrupting
	// the design.
	d := placedDesign(t, false)
	if _, err := Build(d, DefaultOptions(Mode2D, [2]*cell.Library{lib12, nil})); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
