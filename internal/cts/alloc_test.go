package cts

import (
	"testing"

	"repro/internal/netlist"
)

// TestPartitionAllocs pins the allocation count of the CTS sink
// partition: with in-place median splits over one shared backing array,
// building the tree must allocate exactly the tree nodes — no per-level
// sink copies, no sort scaffolding.
func TestPartitionAllocs(t *testing.T) {
	d := placedDesign(t, false)
	var clk *netlist.Net
	for _, n := range d.Nets {
		if n.IsClock && n.DriverPort != nil {
			clk = n
			break
		}
	}
	if clk == nil || len(clk.Sinks) < 8 {
		t.Fatalf("test design lacks a clock net with enough sinks")
	}
	work := append([]netlist.PinRef{}, clk.Sinks...)
	const maxLeaf = 4
	var pt *ptree
	run := func() { pt = partition(work, 1, maxLeaf, 1) }
	run() // size the tree (and re-sorting in place is idempotent)
	nodes := countNodes(pt)

	allocs := testing.AllocsPerRun(20, run)
	t.Logf("allocs/run: partition of %d sinks into %d nodes=%v", len(work), nodes, allocs)
	if allocs > float64(nodes)+2 {
		t.Errorf("partition allocates %v per run, want <= %d tree nodes (+2 jitter)",
			allocs, nodes)
	}
}

// BenchmarkKernelCTSPartition measures the in-place CTS sink partition
// (re-sorting in place is idempotent, so iterations share one backing
// array); its B/op is guarded against the committed BENCH_alloc.json
// baseline by tools/benchguard in CI.
func BenchmarkKernelCTSPartition(b *testing.B) {
	d := placedDesign(b, false)
	var clk *netlist.Net
	for _, n := range d.Nets {
		if n.IsClock && n.DriverPort != nil {
			clk = n
			break
		}
	}
	if clk == nil || len(clk.Sinks) < 8 {
		b.Fatal("test design lacks a clock net with enough sinks")
	}
	work := append([]netlist.PinRef{}, clk.Sinks...)
	partition(work, 1, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition(work, 1, 4, 1)
	}
}
