// Package cts synthesizes buffered clock trees: recursive geometric
// bisection of the sink set with buffer insertion at cluster centroids,
// Elmore latency/skew analysis, and the paper's 3-D strategies — the
// COVER-cell approach means the tree is built over the union footprint
// with other-die cells invisible as obstructions (Sec. III-A2), and the
// heterogeneous mode places the tree on the low-power top die (the paper
// observes >75 % of clock buffers land there, Table VIII).
package cts

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/tech"
)

// Mode selects the tier strategy for clock buffers.
type Mode int

const (
	// Mode2D places every buffer on the single die.
	Mode2D Mode = iota
	// Mode3D places each buffer on the majority tier of what it drives
	// (homogeneous 3-D: both dies carry the same library).
	Mode3D
	// ModeHetero3D biases buffers onto the top (slow, low-power) die,
	// reproducing the paper's top-heavy heterogeneous clock tree; only
	// leaf buffers whose sinks are all on the bottom die stay there.
	ModeHetero3D
)

// Options tunes tree construction.
type Options struct {
	Mode Mode
	// MaxLeafFanout is the flip-flop count served by one leaf buffer.
	MaxLeafFanout int
	// Libs supplies the per-tier libraries ([tierBottom], [tierTop]); for
	// 2-D only index 0 is used.
	Libs [2]*cell.Library
	// Router estimates clock wire RC; nil uses route.New().
	Router *route.Router
	// Workers bounds the partition phase's parallelism. Partitioning is
	// pure (median splits over sink-location copies), so the resulting
	// tree — and therefore buffer names, IDs, and every metric — is
	// byte-identical at any value; materialization is always sequential
	// in the original DFS post-order. <= 1 runs serially.
	Workers int
	// Par accumulates fan-out counters when set (the CTS stage drains
	// them into its flow stats). Counts are schedule-independent: one
	// batch per build, one task per partition node.
	Par *par.Stats
}

// DefaultOptions returns the flow defaults for the given mode.
func DefaultOptions(mode Mode, libs [2]*cell.Library) Options {
	return Options{Mode: mode, MaxLeafFanout: 24, Libs: libs}
}

// Result describes the synthesized tree.
type Result struct {
	// Buffers lists every inserted clock buffer.
	Buffers []*netlist.Instance
	// Latency maps sequential-instance ID → clock arrival time (ns).
	Latency map[int]float64
	// MaxLatency, MinLatency, and MaxSkew summarize the sink latencies.
	MaxLatency, MinLatency, MaxSkew float64
	// BufferArea is the total clock buffer area (µm²).
	BufferArea float64
	// Wirelength is the total clock-tree wirelength (µm).
	Wirelength float64
	// CountByTier splits the buffers across dies.
	CountByTier [2]int
	// Levels is the tree depth (root = level 1).
	Levels int
}

// LatencyFunc adapts the result to sta.Config.Latency.
func (r *Result) LatencyFunc() func(*netlist.Instance) float64 {
	return func(inst *netlist.Instance) float64 { return r.Latency[inst.ID] }
}

// node is one buffer of the tree under construction.
type node struct {
	inst     *netlist.Instance
	children []*node
	sinks    []netlist.PinRef
	level    int
}

// Build synthesizes the clock tree for the design's clock net, rewiring
// every clock sink onto leaf buffers. The design is modified in place.
func Build(d *netlist.Design, opt Options) (*Result, error) {
	if opt.MaxLeafFanout < 2 {
		return nil, fmt.Errorf("cts: MaxLeafFanout %d too small", opt.MaxLeafFanout)
	}
	if opt.Libs[0] == nil {
		return nil, fmt.Errorf("cts: missing bottom-tier library")
	}
	if (opt.Mode == Mode3D || opt.Mode == ModeHetero3D) && opt.Libs[1] == nil {
		return nil, fmt.Errorf("cts: 3-D mode needs a top-tier library")
	}
	if opt.Router == nil {
		opt.Router = route.New()
	}

	// Locate the root clock net (port-driven, IsClock).
	var clkNet *netlist.Net
	for _, n := range d.Nets {
		if n.IsClock && n.DriverPort != nil {
			clkNet = n
			break
		}
	}
	if clkNet == nil {
		return nil, fmt.Errorf("cts: no port-driven clock net in %s", d.Name)
	}
	sinks := append([]netlist.PinRef{}, clkNet.Sinks...)
	if len(sinks) == 0 {
		return nil, fmt.Errorf("cts: clock net %s has no sinks", clkNet.Name)
	}

	b := &builder{d: d, opt: opt}
	// Phase 1: pure recursive partition of the sink set — no design
	// mutation, so subtrees split in parallel. Phase 2: materialize
	// buffers sequentially in the partition tree's DFS post-order, which
	// is exactly the order the fused recursion used, so cts_buf%d
	// numbering (and every downstream metric) is unchanged.
	// partition reorders its argument in place; hand it a private copy so
	// the Disconnect loop below still walks the original sink order.
	pt := partition(append([]netlist.PinRef{}, sinks...), 1, opt.MaxLeafFanout, opt.Workers)
	opt.Par.Note(countNodes(pt))
	root, err := b.materialize(pt)
	if err != nil {
		return nil, err
	}

	// Detach original sinks and wire the root buffer to the clock port
	// net.
	for _, s := range sinks {
		if err := d.Disconnect(s); err != nil {
			return nil, err
		}
	}
	if err := d.Connect(root.inst, "A", clkNet); err != nil {
		return nil, err
	}
	// Re-home the moved sinks (they were rewired onto leaf nets during
	// clustering via placeholder nets).
	if err := b.connectLeaves(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("cts: post-build validation: %w", err)
	}

	res := b.analyze(root)
	return res, nil
}

// builder carries construction state.
type builder struct {
	d       *netlist.Design
	opt     Options
	nBuf    int
	leaves  []*node
	maxDeep int
}

// ptree is one node of the pure partition: either a leaf cluster of
// sinks or a median split into two subtrees.
type ptree struct {
	sinks       []netlist.PinRef // leaf clusters only
	left, right *ptree
	level       int
}

// partition recursively median-splits the sink set along the longer
// bbox axis until clusters fit one leaf buffer. Sorting is in place: the
// root call owns a private copy of the sink list and the two subtrees
// recurse on its disjoint halves, so the whole tree shares one backing
// array and the recursion allocates only the tree nodes. The comparator
// is a strict total order (location, instance ID, pin index), so the
// tree is identical at any worker count and under any sort algorithm.
//
//hotpath:kernel
func partition(sinks []netlist.PinRef, level, maxLeaf, workers int) *ptree {
	if len(sinks) <= maxLeaf {
		return &ptree{sinks: sinks, level: level}
	}
	var bb geom.BBox
	for _, s := range sinks {
		bb.Extend(s.Loc())
	}
	r := bb.Rect()
	byX := r.W() >= r.H()
	slices.SortFunc(sinks, func(a, b netlist.PinRef) int {
		la, lb := a.Loc(), b.Loc()
		if byX && la.X != lb.X {
			return cmp.Compare(la.X, lb.X)
		}
		if !byX && la.Y != lb.Y {
			return cmp.Compare(la.Y, lb.Y)
		}
		if a.Inst.ID != b.Inst.ID {
			return cmp.Compare(a.Inst.ID, b.Inst.ID)
		}
		return cmp.Compare(a.Pin, b.Pin)
	})
	mid := len(sinks) / 2
	t := &ptree{level: level}
	if workers > 1 {
		lw := workers / 2
		rw := workers - lw
		par.Do(2,
			func() { t.left = partition(sinks[:mid], level+1, maxLeaf, lw) },
			func() { t.right = partition(sinks[mid:], level+1, maxLeaf, rw) },
		)
	} else {
		t.left = partition(sinks[:mid], level+1, maxLeaf, 1)
		t.right = partition(sinks[mid:], level+1, maxLeaf, 1)
	}
	return t
}

// countNodes sizes the partition tree (schedule-independent task count).
func countNodes(t *ptree) int {
	if t == nil {
		return 0
	}
	return 1 + countNodes(t.left) + countNodes(t.right)
}

// materialize builds the buffer tree for a partition, bottom-up in DFS
// post-order: left subtree, right subtree, parent buffer. Buffer
// numbering therefore matches the original fused recursion exactly.
func (b *builder) materialize(t *ptree) (*node, error) {
	if t.level > b.maxDeep {
		b.maxDeep = t.level
	}
	if t.left == nil {
		return b.newBuffer(t.sinks, nil, t.level)
	}
	left, err := b.materialize(t.left)
	if err != nil {
		return nil, err
	}
	right, err := b.materialize(t.right)
	if err != nil {
		return nil, err
	}
	return b.newBuffer(nil, []*node{left, right}, t.level)
}

// newBuffer creates a buffer instance at the centroid of what it drives.
func (b *builder) newBuffer(sinks []netlist.PinRef, children []*node, level int) (*node, error) {
	var cx, cy float64
	var cnt int
	var tierVotes [2]int
	for _, s := range sinks {
		cx += s.Loc().X
		cy += s.Loc().Y
		tierVotes[s.Inst.Tier]++
		cnt++
	}
	for _, c := range children {
		cx += c.inst.Loc.X
		cy += c.inst.Loc.Y
		tierVotes[c.inst.Tier]++
		cnt++
	}
	if cnt == 0 {
		return nil, fmt.Errorf("cts: empty buffer cluster")
	}
	loc := geom.Pt(cx/float64(cnt), cy/float64(cnt))
	tier := b.pickTier(tierVotes, children == nil)
	lib := b.opt.Libs[0]
	if b.opt.Mode != Mode2D && b.opt.Libs[tier] != nil {
		lib = b.opt.Libs[tier]
	}
	drive := 4
	if children == nil {
		drive = 8 // leaf buffers carry the FF load
	}
	if level == 1 {
		drive = 16
	}
	m := lib.ForDrive(cell.FuncClkBuf, drive)
	if m == nil {
		return nil, fmt.Errorf("cts: library lacks clock buffers")
	}
	inst, err := b.d.AddInstance(fmt.Sprintf("cts_buf%d", b.nBuf), m)
	if err != nil {
		return nil, err
	}
	b.nBuf++
	inst.SetLoc(loc)
	inst.SetTier(tier)

	out, err := b.d.AddNet(inst.Name + "_net")
	if err != nil {
		return nil, err
	}
	out.IsClock = true
	if err := b.d.Connect(inst, "Y", out); err != nil {
		return nil, err
	}
	for _, c := range children {
		if err := b.d.Connect(c.inst, "A", out); err != nil {
			return nil, err
		}
	}
	n := &node{inst: inst, children: children, sinks: sinks, level: level}
	if children == nil {
		b.leaves = append(b.leaves, n)
	}
	return n, nil
}

// pickTier applies the mode's tier policy.
func (b *builder) pickTier(votes [2]int, leaf bool) tech.Tier {
	switch b.opt.Mode {
	case Mode2D:
		return tech.TierBottom
	case ModeHetero3D:
		// Top-die bias: only all-bottom clusters stay on the bottom die.
		// Keeping (almost) the whole tree in one library keeps sibling
		// latencies correlated — mixing tiers level-by-level was measured
		// to inflate critical-path skew.
		_ = leaf
		if votes[tech.TierTop] == 0 {
			return tech.TierBottom
		}
		return tech.TierTop
	default: // Mode3D: majority
		if votes[tech.TierTop] > votes[tech.TierBottom] {
			return tech.TierTop
		}
		return tech.TierBottom
	}
}

// connectLeaves wires each leaf buffer's output to its flip-flop clock
// pins (deferred until the original net is released).
func (b *builder) connectLeaves() error {
	for _, leaf := range b.leaves {
		out := b.d.OutputNet(leaf.inst)
		for _, s := range leaf.sinks {
			if err := b.d.Connect(s.Inst, s.Spec().Name, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// analyze computes latencies and summary metrics over the finished tree.
func (b *builder) analyze(root *node) *Result {
	res := &Result{
		Latency:    make(map[int]float64),
		MinLatency: math.Inf(1),
		Levels:     b.maxDeep,
	}
	avgR := b.opt.Router.Stack.AvgR()
	avgC := b.opt.Router.Stack.AvgC()
	miv := b.opt.Router.MIV

	var walk func(n *node, arrival, inSlew float64)
	walk = func(n *node, arrival, inSlew float64) {
		res.Buffers = append(res.Buffers, n.inst)
		res.BufferArea += n.inst.Master.Area()
		res.CountByTier[n.inst.Tier]++

		// Load on this buffer: child/FF pin caps plus wire cap.
		out := b.d.OutputNet(n.inst)
		wl := 0.0
		for _, s := range out.Sinks {
			wl += n.inst.Loc.ManhattanDist(s.Loc())
		}
		res.Wirelength += wl
		load := out.TotalPinCap() + wl*avgC

		bd := n.inst.Master.Delay.Lookup(inSlew, load)
		outSlew := n.inst.Master.OutSlew.Lookup(inSlew, load)
		after := arrival + bd

		for _, c := range n.children {
			dist := n.inst.Loc.ManhattanDist(c.inst.Loc)
			wd := tech.RCps(dist*avgR, dist*avgC/2+c.inst.Master.InputCap("A"))
			if c.inst.Tier != n.inst.Tier {
				wd += tech.RCps(miv.R, miv.C)
			}
			walk(c, after+wd, outSlew+wd)
		}
		for _, s := range n.sinks {
			dist := n.inst.Loc.ManhattanDist(s.Loc())
			wd := tech.RCps(dist*avgR, dist*avgC/2+s.Spec().Cap)
			if s.Inst.Tier != n.inst.Tier {
				wd += tech.RCps(miv.R, miv.C)
			}
			lat := after + wd
			res.Latency[s.Inst.ID] = lat
			if lat > res.MaxLatency {
				res.MaxLatency = lat
			}
			if lat < res.MinLatency {
				res.MinLatency = lat
			}
		}
	}
	walk(root, 0, 0.02)
	if math.IsInf(res.MinLatency, 1) {
		res.MinLatency = 0
	}
	res.MaxSkew = res.MaxLatency - res.MinLatency
	return res
}
