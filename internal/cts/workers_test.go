package cts

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/par"
)

// TestBuildWorkersEquivalence pins the CTS determinism contract: the
// parallel partition phase is pure and materialization is sequential in
// DFS post-order, so the tree — buffer names, tiers, locations, and
// every summary metric — is byte-identical at any worker count. Under
// -race this also proves the partition fan-out has no conflicting
// accesses.
func TestBuildWorkersEquivalence(t *testing.T) {
	type snapshot struct {
		names   []string
		tiers   []int
		summary Result
	}
	build := func(workers int) snapshot {
		d := placedDesign(t, true)
		opt := DefaultOptions(ModeHetero3D, [2]*cell.Library{lib12, lib9})
		opt.Workers = workers
		opt.Par = &par.Stats{}
		res, err := Build(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Par.Batches != 1 || opt.Par.Tasks == 0 {
			t.Fatalf("workers %d: unexpected fan-out counters: %+v", workers, *opt.Par)
		}
		s := snapshot{summary: *res}
		s.summary.Buffers = nil
		s.summary.Latency = nil
		for _, buf := range res.Buffers {
			s.names = append(s.names, buf.Name)
			s.tiers = append(s.tiers, int(buf.Tier))
		}
		return s
	}
	serial := build(1)
	for _, w := range []int{2, 8} {
		got := build(w)
		if !reflect.DeepEqual(got.summary, serial.summary) {
			t.Fatalf("workers %d: summary %+v differs from serial %+v", w, got.summary, serial.summary)
		}
		if len(got.names) != len(serial.names) {
			t.Fatalf("workers %d: %d buffers vs serial %d", w, len(got.names), len(serial.names))
		}
		for i := range got.names {
			if got.names[i] != serial.names[i] || got.tiers[i] != serial.tiers[i] {
				t.Fatalf("workers %d: buffer %d is %s/tier%d, serial built %s/tier%d",
					w, i, got.names[i], got.tiers[i], serial.names[i], serial.tiers[i])
			}
		}
	}
}
