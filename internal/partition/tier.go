package partition

import (
	"fmt"
	"sort"

	"repro/internal/dense"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// TierOptions tunes the 3-D tier partitioning.
type TierOptions struct {
	FM FMOptions
	// BinsX, BinsY define the placement-bin grid for the bin-based FM
	// refinement; ≤1 disables binning (pure global FM).
	BinsX, BinsY int
	// MaxNetDegree excludes enormous nets (pre-CTS clock, reset) from the
	// cut objective; they would dominate runtime without informing the
	// partition.
	MaxNetDegree int
	// BinSweeps is how many scan passes of per-bin FM refinement run.
	BinSweeps int
	// MaxFrac0 caps side 0's share of the movable cell area after the
	// bin refinement (0 disables the cap). The hetero flow derives it
	// from the bottom die's row capacity: the bin-local balance is
	// allowed to drift the global split, but never past what per-tier
	// legalization can physically host.
	MaxFrac0 float64
}

// DefaultTierOptions returns the flow defaults.
func DefaultTierOptions() TierOptions {
	return TierOptions{
		FM:           DefaultFMOptions(),
		BinsX:        8,
		BinsY:        8,
		MaxNetDegree: 64,
		BinSweeps:    2,
	}
}

// TierResult reports what the partitioner did.
type TierResult struct {
	Cut          int
	AreaTop      float64
	AreaBottom   float64
	Preassigned  int
	MovableCells int
}

// TierPartition assigns every instance of d to a tier: the
// placement-driven, area-balanced FM min-cut of the pseudo-3-D flows
// (Sec. III-A1). Side 0 is TierBottom, side 1 is TierTop.
//
// preassign pins specific instances to a tier before FM runs — the hook
// the timing-based partitioning uses to lock critical cells onto the fast
// die. Macros are balanced across tiers by area (alternating assignment)
// unless preassigned.
//
// The algorithm: global FM over the whole netlist for the initial
// min-cut, then (when the design is placed and binning is enabled) a
// bin-based refinement that re-runs FM inside each placement bin with
// external neighbours fixed, enforcing local area balance so the 3-D
// legalization stays close to the pseudo-3-D placement.
func TierPartition(d *netlist.Design, outline geom.Rect, preassign map[*netlist.Instance]tech.Tier, opt TierOptions) (*TierResult, error) {
	// Collect movable cells (everything non-macro).
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			continue
		}
		cells = append(cells, inst)
	}
	idx := make(map[*netlist.Instance]int, len(cells))
	areas := make([]float64, len(cells))
	for i, c := range cells {
		idx[c] = i
		areas[i] = c.Master.Area()
	}

	h := NewHypergraph(areas)
	for i, c := range cells {
		if t, ok := preassign[c]; ok {
			h.Fixed[i] = int8(t)
		}
	}
	maxDeg := opt.MaxNetDegree
	if maxDeg <= 0 {
		maxDeg = 1 << 30
	}
	for _, n := range d.Nets {
		if n.IsClock || n.Degree() > maxDeg {
			continue
		}
		pins := make([]int, 0, len(n.Sinks)+1)
		if n.Driver.Valid() {
			if i, ok := idx[n.Driver.Inst]; ok {
				pins = append(pins, i)
			}
		}
		for _, s := range n.Sinks {
			if i, ok := idx[s.Inst]; ok {
				pins = append(pins, i)
			}
		}
		if len(pins) >= 2 {
			h.AddNet(pins...)
		}
	}

	sol, err := FM(h, nil, opt.FM)
	if err != nil {
		return nil, fmt.Errorf("partition: global FM: %w", err)
	}

	// Bin-based refinement keeps the partition locally balanced so 3-D
	// legalization does not scramble the pseudo-3-D placement.
	if opt.BinsX > 1 && opt.BinsY > 1 && !outline.Empty() {
		grid, err := geom.NewGrid(outline, opt.BinsX, opt.BinsY)
		if err != nil {
			return nil, err
		}
		for sweep := 0; sweep < opt.BinSweeps; sweep++ {
			if err := refineBins(h, sol, cells, grid, opt); err != nil {
				return nil, err
			}
		}
	}

	// Per-bin refinement enforces each bin's local balance, which can
	// drift the global split past the FM window: bins dominated by
	// timing-pinned cells cannot reach the local target while free bins
	// re-center on it, so the pinned side only ever gains area. The
	// drift itself is benign — the refined locality is worth more than
	// the nominal window — until the heavy side outgrows its physical
	// row capacity and per-tier legalization becomes infeasible. The
	// capacity cap trims just enough area to fit, nothing more.
	if opt.MaxFrac0 > 0 {
		trimSide0(h, sol, opt.MaxFrac0)
	}

	res := &TierResult{
		Cut:          CutSize(h, sol.Side),
		Preassigned:  len(preassign),
		MovableCells: len(cells),
	}
	for i, c := range cells {
		c.SetTier(tech.Tier(sol.Side[i]))
		if c.Tier == tech.TierTop {
			res.AreaTop += areas[i]
		} else {
			res.AreaBottom += areas[i]
		}
	}
	assignMacros(d, preassign, res)
	return res, nil
}

// assignMacros balances macros across tiers by area: biggest first onto
// the lighter side, honouring preassignments.
func assignMacros(d *netlist.Design, preassign map[*netlist.Instance]tech.Tier, res *TierResult) {
	var macros []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			macros = append(macros, inst)
		}
	}
	sort.Slice(macros, func(i, j int) bool {
		ai, aj := macros[i].Master.Area(), macros[j].Master.Area()
		if ai != aj {
			return ai > aj
		}
		return macros[i].Name < macros[j].Name
	})
	for _, m := range macros {
		if t, ok := preassign[m]; ok {
			m.SetTier(t)
		} else if res.AreaBottom <= res.AreaTop {
			m.SetTier(tech.TierBottom)
		} else {
			m.SetTier(tech.TierTop)
		}
		if m.Tier == tech.TierTop {
			res.AreaTop += m.Master.Area()
		} else {
			res.AreaBottom += m.Master.Area()
		}
	}
}

// trimSide0 moves free side-0 cells to side 1 until side 0 holds at most
// maxFrac of the total movable area — the capacity guard behind
// TierOptions.MaxFrac0. Candidates leave in order of least cut damage
// (highest FM move gain, cell index as tiebreak); gains are computed once
// up front, which is accurate enough for the small trims the guard
// performs and keeps the pass deterministic and linear.
func trimSide0(h *Hypergraph, sol *Solution, maxFrac float64) {
	total := h.TotalArea()
	if total <= 0 {
		return
	}
	want := maxFrac * total
	if sol.AreaSide[0] <= want {
		return
	}
	cnt := make([][2]int, len(h.Nets))
	for ni, net := range h.Nets {
		for _, c := range net {
			cnt[ni][sol.Side[c]]++
		}
	}
	type cand struct {
		idx, gain int
	}
	var cands []cand
	for i := range h.Area {
		if sol.Side[i] != 0 || h.Fixed[i] >= 0 {
			continue
		}
		g := 0
		for _, ni := range h.netsOf(i) {
			if len(h.Nets[ni]) < 2 {
				continue
			}
			if cnt[ni][0] == 1 {
				g++ // net leaves the cut
			}
			if cnt[ni][1] == 0 {
				g-- // net enters the cut
			}
		}
		cands = append(cands, cand{i, g})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		return cands[a].idx < cands[b].idx
	})
	for _, c := range cands {
		if sol.AreaSide[0] <= want {
			break
		}
		sol.Side[c.idx] = 1
		sol.AreaSide[0] -= h.Area[c.idx]
		sol.AreaSide[1] += h.Area[c.idx]
	}
	sol.Cut = CutSize(h, sol.Side)
}

// refineBins runs FM inside each placement bin with out-of-bin neighbours
// pinned to their current side. One reusable scratch — dense
// epoch-stamped index maps plus a storage-retaining sub-hypergraph and
// engine — serves every bin, so the sweep stays off the allocator after
// the first bin.
func refineBins(h *Hypergraph, sol *Solution, cells []*netlist.Instance, grid *geom.Grid, opt TierOptions) error {
	// Bucket cell indices by bin, in CSR form (bin-index rows preserve
	// the old bins-then-cells iteration order exactly).
	var bins dense.CSR[int32]
	bins.Reset(grid.Bins())
	for _, c := range cells {
		ix, iy := grid.Locate(c.Loc)
		bins.Count(int32(grid.Index(ix, iy)))
	}
	bins.Seal()
	for i, c := range cells {
		ix, iy := grid.Locate(c.Loc)
		bins.Append(int32(grid.Index(ix, iy)), int32(i))
	}

	var (
		sh       = NewHypergraph(nil)
		eng      Engine
		localIdx = make([]int32, len(h.Area))  // global idx → local idx
		localEp  = make([]uint32, len(h.Area)) // valid when == epoch
		netEp    = make([]uint32, len(h.Nets))
		areas    []float64
		init     []uint8
		epoch    uint32
	)
	for b := 0; b < bins.Rows(); b++ {
		members := bins.Row(int32(b))
		if len(members) < 4 {
			continue
		}
		epoch++
		ep := epoch
		// Build the bin sub-hypergraph: member cells free, plus two
		// virtual fixed terminals standing in for external pins.
		areas = areas[:0]
		for li, gi := range members {
			localIdx[gi] = int32(li)
			localEp[gi] = ep
			areas = append(areas, h.Area[gi])
		}
		ext0 := len(areas) // virtual terminal on side 0
		ext1 := ext0 + 1
		areas = append(areas, 0, 0)

		sh.ResetCells(areas)
		for li, gi := range members {
			sh.Fixed[li] = h.Fixed[gi] // keep timing pins pinned
		}
		sh.Fixed[ext0] = 0
		sh.Fixed[ext1] = 1

		for _, gi := range members {
			for _, ni := range h.netsOf(int(gi)) {
				if netEp[ni] == ep {
					continue
				}
				netEp[ni] = ep
				net := h.Nets[ni]
				if len(net) < 2 {
					continue
				}
				pins := sh.NetBuf(len(net) + 2)
				hasExt := [2]bool{}
				for _, c := range net {
					if localEp[c] == ep {
						pins = append(pins, int(localIdx[c]))
					} else {
						hasExt[sol.Side[c]] = true
					}
				}
				if hasExt[0] {
					pins = append(pins, ext0)
				}
				if hasExt[1] {
					pins = append(pins, ext1)
				}
				if len(pins) >= 2 {
					sh.AddNet(pins...) // the hyperedge keeps the buffer
				}
			}
		}

		init = dense.Grow(init, len(areas))
		for li, gi := range members {
			init[li] = sol.Side[gi]
		}
		init[ext0] = 0
		init[ext1] = 1

		fmOpt := opt.FM
		fmOpt.MaxPasses = 4
		ssol, err := eng.FM(sh, init, fmOpt)
		if err != nil {
			// An infeasible bin (e.g. all pinned) is not fatal: keep the
			// current assignment.
			continue
		}
		for li, gi := range members {
			sol.Side[gi] = ssol.Side[li]
		}
	}
	sol.AreaSide = sideAreas(h, sol.Side)
	sol.Cut = CutSize(h, sol.Side)
	return nil
}

// PreassignCritical returns the timing-based pre-assignment of the most
// critical cells to the fast tier (Sec. III-A1): cells are ranked by
// cell-based worst slack (ascending — most negative first) and pinned to
// fastTier until areaFrac of the total movable cell area is covered. The
// paper caps this at 20–30 % to avoid dense physical clusters landing on
// one die and wrecking 3-D legalization.
func PreassignCritical(cells []*netlist.Instance, slack func(*netlist.Instance) float64, areaFrac float64, fastTier tech.Tier) map[*netlist.Instance]tech.Tier {
	type entry struct {
		inst  *netlist.Instance
		slack float64
	}
	total := 0.0
	entries := make([]entry, 0, len(cells))
	for _, c := range cells {
		if c.Master.Function.IsMacro() {
			continue
		}
		total += c.Master.Area()
		entries = append(entries, entry{c, slack(c)})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].slack != entries[j].slack {
			return entries[i].slack < entries[j].slack
		}
		return entries[i].inst.ID < entries[j].inst.ID
	})
	budget := areaFrac * total
	out := make(map[*netlist.Instance]tech.Tier)
	used := 0.0
	for _, e := range entries {
		if used >= budget {
			break
		}
		out[e.inst] = fastTier
		used += e.inst.Master.Area()
	}
	return out
}
