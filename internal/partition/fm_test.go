package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// cliquePair builds two k-cliques joined by `bridges` nets: the optimal
// bisection cuts exactly the bridges.
func cliquePair(k, bridges int) *Hypergraph {
	areas := make([]float64, 2*k)
	for i := range areas {
		areas[i] = 1
	}
	h := NewHypergraph(areas)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			h.AddNet(i, j)
			h.AddNet(k+i, k+j)
		}
	}
	for b := 0; b < bridges; b++ {
		h.AddNet(b%k, k+(b+1)%k)
	}
	return h
}

func TestFMFindsCliqueCut(t *testing.T) {
	h := cliquePair(12, 3)
	sol, err := FM(h, nil, DefaultFMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cut != 3 {
		t.Errorf("cut = %d, want 3 (the bridges)", sol.Cut)
	}
	// Perfect balance: 12 cells per side.
	if sol.AreaSide[0] != 12 || sol.AreaSide[1] != 12 {
		t.Errorf("areas = %v", sol.AreaSide)
	}
}

func TestFMRespectsBalanceTolerance(t *testing.T) {
	// 100 unit cells, fully random graph.
	rng := rand.New(rand.NewSource(42))
	areas := make([]float64, 100)
	for i := range areas {
		areas[i] = 1
	}
	h := NewHypergraph(areas)
	for i := 0; i < 300; i++ {
		a, b := rng.Intn(100), rng.Intn(100)
		if a != b {
			h.AddNet(a, b)
		}
	}
	opt := DefaultFMOptions()
	opt.Tolerance = 0.03
	sol, err := FM(h, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	frac := sol.AreaSide[0] / 100
	if frac < 0.5-0.031 || frac > 0.5+0.031 {
		t.Errorf("balance violated: frac = %v", frac)
	}
}

func TestFMHonorsFixedCells(t *testing.T) {
	h := cliquePair(8, 2)
	// Pin one cell of each clique to the "wrong" side.
	h.Fixed[0] = 1
	h.Fixed[8] = 0
	sol, err := FM(h, nil, DefaultFMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Side[0] != 1 || sol.Side[8] != 0 {
		t.Error("fixed cells moved")
	}
}

func TestFMInitialAssignmentAccepted(t *testing.T) {
	h := cliquePair(6, 1)
	init := make([]uint8, 12)
	for i := 6; i < 12; i++ {
		init[i] = 1
	}
	sol, err := FM(h, init, DefaultFMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cut != 1 {
		t.Errorf("cut = %d, want 1", sol.Cut)
	}
}

func TestFMInitialViolatingFixedRejected(t *testing.T) {
	h := cliquePair(4, 1)
	h.Fixed[0] = 1
	init := make([]uint8, 8) // cell 0 on side 0 contradicts Fixed=1
	if _, err := FM(h, init, DefaultFMOptions()); err == nil {
		t.Error("expected error for initial violating Fixed")
	}
}

func TestFMBadOptions(t *testing.T) {
	h := cliquePair(4, 1)
	opt := DefaultFMOptions()
	opt.TargetFrac = 0
	if _, err := FM(h, nil, opt); err == nil {
		t.Error("TargetFrac=0 should fail")
	}
	opt = DefaultFMOptions()
	if _, err := FM(h, make([]uint8, 3), opt); err == nil {
		t.Error("wrong-length initial should fail")
	}
}

func TestFMRepairsUnbalancedSeed(t *testing.T) {
	// All 20 cells start on side 0; FM must restore balance.
	areas := make([]float64, 20)
	for i := range areas {
		areas[i] = 1
	}
	h := NewHypergraph(areas)
	for i := 0; i < 19; i++ {
		h.AddNet(i, i+1)
	}
	init := make([]uint8, 20)
	opt := DefaultFMOptions()
	opt.Tolerance = 0.1
	sol, err := FM(h, init, opt)
	if err != nil {
		t.Fatal(err)
	}
	frac := sol.AreaSide[0] / 20
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("unbalanced seed not repaired: frac = %v", frac)
	}
}

func TestFMAsymmetricTarget(t *testing.T) {
	areas := make([]float64, 40)
	for i := range areas {
		areas[i] = 1
	}
	h := NewHypergraph(areas)
	for i := 0; i < 39; i++ {
		h.AddNet(i, i+1)
	}
	opt := DefaultFMOptions()
	opt.TargetFrac = 0.25
	opt.Tolerance = 0.05
	sol, err := FM(h, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	frac := sol.AreaSide[0] / 40
	if frac < 0.19 || frac > 0.31 {
		t.Errorf("asymmetric target missed: frac = %v", frac)
	}
}

func TestCutSizeDegenerateNets(t *testing.T) {
	h := NewHypergraph([]float64{1, 1})
	h.AddNet(0) // single-pin net never cut
	h.AddNet()  // empty net
	h.AddNet(0, 1)
	side := []uint8{0, 1}
	if got := CutSize(h, side); got != 1 {
		t.Errorf("cut = %d, want 1", got)
	}
}

func TestHypergraphValidate(t *testing.T) {
	h := NewHypergraph([]float64{1, 2})
	h.AddNet(0, 1)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	h.AddNet(0, 5)
	if err := h.Validate(); err == nil {
		t.Error("out-of-range net should fail")
	}
	h2 := NewHypergraph([]float64{1, -1})
	if err := h2.Validate(); err == nil {
		t.Error("negative area should fail")
	}
	h3 := NewHypergraph([]float64{1})
	h3.Fixed[0] = 3
	if err := h3.Validate(); err == nil {
		t.Error("bad Fixed value should fail")
	}
}

// Property: FM never returns a worse cut than the (balanced) seed it was
// given, and always respects fixed pins — across random graphs.
func TestFMPropertyNeverWorseThanSeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		areas := make([]float64, n)
		for i := range areas {
			areas[i] = 1
		}
		h := NewHypergraph(areas)
		for e := 0; e < n*3; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.AddNet(a, b)
			}
		}
		// Balanced alternating seed.
		init := make([]uint8, n)
		for i := range init {
			init[i] = uint8(i % 2)
		}
		fixed := rng.Intn(n)
		h.Fixed[fixed] = int8(init[fixed])

		before := CutSize(h, init)
		sol, err := FM(h, init, DefaultFMOptions())
		if err != nil {
			return false
		}
		if sol.Cut > before {
			return false
		}
		if sol.Side[fixed] != init[fixed] {
			return false
		}
		// Cached cut must equal the authoritative recount.
		return sol.Cut == CutSize(h, sol.Side)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: reported AreaSide always matches a recount.
func TestFMPropertyAreaConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		areas := make([]float64, n)
		for i := range areas {
			areas[i] = 0.5 + rng.Float64()*2
		}
		h := NewHypergraph(areas)
		for e := 0; e < n*2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.AddNet(a, b)
			}
		}
		sol, err := FM(h, nil, DefaultFMOptions())
		if err != nil {
			return false
		}
		re := sideAreas(h, sol.Side)
		return math.Abs(re[0]-sol.AreaSide[0]) < 1e-9 && math.Abs(re[1]-sol.AreaSide[1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMoveFilterMatchesBalancedAfter checks the pickMove area-threshold
// filter against the balancedAfter reference over randomized states: for
// every cell the two must agree exactly, including at the float
// boundaries the bisection resolves.
func TestMoveFilterMatchesBalancedAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		areas := make([]float64, n)
		for i := range areas {
			switch rng.Intn(4) {
			case 0:
				areas[i] = 0
			case 1:
				areas[i] = float64(rng.Intn(5)) * 0.17
			default:
				areas[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
		}
		h := NewHypergraph(areas)
		side := make([]uint8, n)
		for i := range side {
			side[i] = uint8(rng.Intn(2))
		}
		opt := DefaultFMOptions()
		opt.TargetFrac = 0.2 + 0.6*rng.Float64()
		opt.Tolerance = math.Pow(10, -1-3*rng.Float64())
		st := &fmState{}
		st.reset(h, opt)
		copy(st.side, side)
		st.area = sideAreas(h, side)
		flt := st.computeFilter()
		for c := 0; c < n; c++ {
			want := st.balancedAfter(int32(c))
			got := flt.ok(st.side[c], h.Area[c])
			if got != want {
				t.Fatalf("trial %d cell %d (side %d, area %v, a0 %v, total %v, target %v, tol %v): filter %v, balancedAfter %v",
					trial, c, st.side[c], h.Area[c], st.area[0], st.total, opt.TargetFrac, opt.Tolerance, got, want)
			}
		}
	}
}
