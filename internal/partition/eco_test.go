package partition

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// stubOracle simulates a timer for the ECO loop: a fixed set of "paths"
// whose cell delays depend on tier (slow tier = 2× delay), with WNS
// improving as critical cells land on the fast tier.
type stubOracle struct {
	d       *netlist.Design
	paths   [][]*netlist.Instance
	refresh int
	// poison makes every batch look like a timing degradation, forcing
	// undo.
	poison bool
	wns    float64
}

func (o *stubOracle) delay(inst *netlist.Instance) float64 {
	if inst.Tier == tech.TierTop {
		return 0.045 // slow tier stage delay
	}
	return 0.019
}

func (o *stubOracle) CriticalPaths(n int) [][]PathCell {
	out := make([][]PathCell, 0, n)
	for _, p := range o.paths {
		pc := make([]PathCell, len(p))
		for i, inst := range p {
			pc[i] = PathCell{Inst: inst, Delay: o.delay(inst)}
		}
		out = append(out, pc)
		if len(out) == n {
			break
		}
	}
	return out
}

func (o *stubOracle) WNSTNS() (float64, float64) {
	if o.poison {
		// Each refresh makes timing worse.
		o.wns -= 0.1
		return o.wns, o.wns * 10
	}
	// WNS improves with the number of fast-tier path cells.
	slow := 0
	for _, p := range o.paths {
		for _, inst := range p {
			if inst.Tier == tech.TierTop {
				slow++
			}
		}
	}
	return -0.001 * float64(slow), -0.01 * float64(slow)
}

func (o *stubOracle) Refresh() error {
	o.refresh++
	return nil
}

func ecoFixture(t *testing.T) (*netlist.Design, *stubOracle) {
	t.Helper()
	lib := cell.NewLibrary(tech.Variant12T())
	d := netlist.New("eco")
	var path []*netlist.Instance
	// 30 path cells, all starting on the slow (top) tier, plus 170
	// filler cells on the bottom tier → strong area unbalance.
	for i := 0; i < 200; i++ {
		inst, err := d.AddInstance(name(i), lib.Smallest(cell.FuncInv))
		if err != nil {
			t.Fatal(err)
		}
		if i < 30 {
			inst.Tier = tech.TierTop
			path = append(path, inst)
		} else {
			inst.Tier = tech.TierBottom
		}
	}
	return d, &stubOracle{d: d, paths: [][]*netlist.Instance{path[:10], path[10:20], path[20:30]}}
}

func name(i int) string {
	return string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i/100))
}

func TestRepartitionECOMovesSlowCriticals(t *testing.T) {
	d, oracle := ecoFixture(t)
	opt := DefaultECOOptions()
	opt.D0 = 0.9 // slow-tier cells (0.045) exceed 0.9×avg
	rep, err := RepartitionECO(d, oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved == 0 {
		t.Fatal("expected moves")
	}
	if rep.Undone != 0 {
		t.Errorf("unexpected undos: %d", rep.Undone)
	}
	// All slow-tier criticals should now be on the fast tier.
	for _, p := range oracle.paths {
		for _, inst := range p {
			if inst.Tier != tech.TierBottom {
				t.Errorf("path cell %s still on slow tier", inst.Name)
			}
		}
	}
	if oracle.refresh == 0 {
		t.Error("oracle never refreshed")
	}
}

func TestRepartitionECOUndoOnDegradation(t *testing.T) {
	d, oracle := ecoFixture(t)
	oracle.poison = true
	opt := DefaultECOOptions()
	opt.D0 = 0.9
	rep, err := RepartitionECO(d, oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Undone == 0 {
		t.Fatal("expected undos under poisoned timing")
	}
	// Every undone cell must be back on the slow tier.
	for _, p := range oracle.paths {
		for _, inst := range p {
			if inst.Tier != tech.TierTop {
				t.Errorf("cell %s not restored after undo", inst.Name)
			}
		}
	}
	if rep.Moved != 0 {
		t.Errorf("poisoned run recorded %d kept moves", rep.Moved)
	}
}

func TestRepartitionECOStopsWhenBalanced(t *testing.T) {
	d, oracle := ecoFixture(t)
	// Balance the design up front: unbalance below threshold → no loop.
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
	}
	opt := DefaultECOOptions()
	rep, err := RepartitionECO(d, oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 0 {
		t.Errorf("balanced design ran %d iterations", rep.Iterations)
	}
}

func TestRepartitionECOCritThStops(t *testing.T) {
	d, oracle := ecoFixture(t)
	// Move all path cells to the fast tier already: slow_crit = 0 →
	// slow_crit/all_crit = 0 < crit_th → break immediately.
	for _, p := range oracle.paths {
		for _, inst := range p {
			inst.Tier = tech.TierBottom
		}
	}
	// Keep the design unbalanced so the loop would otherwise run: put
	// bulk cells on top.
	for _, inst := range d.Instances[30:] {
		inst.Tier = tech.TierTop
	}
	opt := DefaultECOOptions()
	opt.D0 = 0.1 // everything is "critical"
	rep, err := RepartitionECO(d, oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 0 {
		t.Errorf("moved %d despite no slow criticals", rep.Moved)
	}
}

func TestRepartitionECOOnMoveCallback(t *testing.T) {
	d, oracle := ecoFixture(t)
	opt := DefaultECOOptions()
	opt.D0 = 0.9
	calls := 0
	opt.OnMove = func(inst *netlist.Instance, to tech.Tier) error {
		calls++
		if inst.Tier != to {
			t.Errorf("callback sees stale tier for %s", inst.Name)
		}
		return nil
	}
	if _, err := RepartitionECO(d, oracle, opt); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("OnMove never invoked")
	}
}

func TestRepartitionECOInvalidOptions(t *testing.T) {
	d, oracle := ecoFixture(t)
	bad := DefaultECOOptions()
	bad.Alpha = 1.5
	if _, err := RepartitionECO(d, oracle, bad); err == nil {
		t.Error("alpha > 1 should fail")
	}
	bad = DefaultECOOptions()
	bad.NP = 0
	if _, err := RepartitionECO(d, oracle, bad); err == nil {
		t.Error("NP = 0 should fail")
	}
}
