package partition

import (
	"fmt"
	"math/rand"
)

// FMOptions tunes the Fiduccia–Mattheyses engine.
type FMOptions struct {
	// TargetFrac is the desired fraction of total area on side 0
	// (0.5 = balanced bisection).
	TargetFrac float64
	// Tolerance is the allowed deviation of side 0's area fraction from
	// TargetFrac (e.g. 0.05 → ±5 % of total area).
	Tolerance float64
	// MaxPasses bounds the outer improvement loop; a pass that yields no
	// cut reduction terminates early regardless.
	MaxPasses int
	// Seed randomizes the initial assignment when none is supplied.
	Seed int64
}

// DefaultFMOptions returns balanced-bisection defaults.
func DefaultFMOptions() FMOptions {
	return FMOptions{TargetFrac: 0.5, Tolerance: 0.05, MaxPasses: 12, Seed: 1}
}

// FM runs Fiduccia–Mattheyses min-cut improvement on h. If initial is
// non-nil it seeds the assignment (and must respect Fixed pins); otherwise
// a random area-balanced assignment is generated. The returned solution
// satisfies the balance constraint whenever the initial assignment does
// (moves violating it are never accepted).
func FM(h *Hypergraph, initial []uint8, opt FMOptions) (*Solution, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if opt.TargetFrac <= 0 || opt.TargetFrac >= 1 {
		return nil, fmt.Errorf("partition: TargetFrac %v out of (0,1)", opt.TargetFrac)
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 1
	}
	n := h.NumCells()
	side := make([]uint8, n)
	if initial != nil {
		if len(initial) != n {
			return nil, fmt.Errorf("partition: initial has %d entries, want %d", len(initial), n)
		}
		copy(side, initial)
		for i, f := range h.Fixed {
			if f >= 0 && side[i] != uint8(f) {
				return nil, fmt.Errorf("partition: initial violates Fixed pin of cell %d", i)
			}
		}
	} else {
		seedAssignment(h, side, opt)
	}

	st := newFMState(h, side, opt)
	for pass := 0; pass < opt.MaxPasses; pass++ {
		if st.runPass() == 0 {
			break
		}
	}
	return Evaluate(h, st.side), nil
}

// seedAssignment produces a random assignment that respects Fixed pins
// and approximates the target fraction by greedy area filling.
func seedAssignment(h *Hypergraph, side []uint8, opt FMOptions) {
	rng := rand.New(rand.NewSource(opt.Seed))
	total := h.TotalArea()
	want0 := opt.TargetFrac * total
	var a0 float64
	// Fixed cells first.
	for i, f := range h.Fixed {
		if f >= 0 {
			side[i] = uint8(f)
			if f == 0 {
				a0 += h.Area[i]
			}
		}
	}
	// Free cells in random order, filling side 0 up to its target.
	order := rng.Perm(len(side))
	for _, i := range order {
		if h.Fixed[i] >= 0 {
			continue
		}
		if a0 < want0 {
			side[i] = 0
			a0 += h.Area[i]
		} else {
			side[i] = 1
		}
	}
}

// fmState holds the gain-bucket machinery for one FM run.
type fmState struct {
	h    *Hypergraph
	opt  FMOptions
	side []uint8

	// Per-net side counts.
	cnt [][2]int
	// Gain bucket doubly-linked lists indexed by gain+maxDeg.
	gain    []int
	next    []int
	prev    []int
	bucket  []int // head cell per gain value, -1 if empty
	maxDeg  int
	maxGain int // current highest non-empty bucket index
	locked  []bool

	area  [2]float64
	total float64
}

const nilCell = -1

func newFMState(h *Hypergraph, side []uint8, opt FMOptions) *fmState {
	n := h.NumCells()
	st := &fmState{
		h:    h,
		opt:  opt,
		side: side,
		cnt:  make([][2]int, len(h.Nets)),
		gain: make([]int, n),
		next: make([]int, n),
		prev: make([]int, n),

		locked: make([]bool, n),
		total:  h.TotalArea(),
	}
	cellNets := h.cellNets()
	for _, nets := range cellNets {
		if len(nets) > st.maxDeg {
			st.maxDeg = len(nets)
		}
	}
	st.bucket = make([]int, 2*st.maxDeg+1)
	st.area = sideAreas(h, side)
	return st
}

// recount refreshes net side counts from the current assignment.
func (st *fmState) recount() {
	for i := range st.cnt {
		st.cnt[i] = [2]int{}
	}
	for ni, net := range st.h.Nets {
		for _, c := range net {
			st.cnt[ni][st.side[c]]++
		}
	}
}

// computeGain returns the cut-size reduction from moving cell c.
func (st *fmState) computeGain(c int) int {
	g := 0
	from := st.side[c]
	to := 1 - from
	for _, ni := range st.h.cellNets()[c] {
		net := st.h.Nets[ni]
		if len(net) < 2 {
			continue
		}
		if st.cnt[ni][from] == 1 {
			g++ // net leaves the cut
		}
		if st.cnt[ni][to] == 0 {
			g-- // net enters the cut
		}
	}
	return g
}

func (st *fmState) bucketIdx(g int) int { return g + st.maxDeg }

func (st *fmState) insert(c int) {
	b := st.bucketIdx(st.gain[c])
	st.prev[c] = nilCell
	st.next[c] = st.bucket[b]
	if st.bucket[b] != nilCell {
		st.prev[st.bucket[b]] = c
	}
	st.bucket[b] = c
	if b > st.maxGain {
		st.maxGain = b
	}
}

func (st *fmState) remove(c int) {
	b := st.bucketIdx(st.gain[c])
	if st.prev[c] != nilCell {
		st.next[st.prev[c]] = st.next[c]
	} else {
		st.bucket[b] = st.next[c]
	}
	if st.next[c] != nilCell {
		st.prev[st.next[c]] = st.prev[c]
	}
}

// balancedAfter reports whether moving cell c is acceptable: the result
// must be within tolerance of the target, or — when the current state is
// itself out of tolerance — the move must strictly reduce the imbalance.
// The second clause lets FM repair unbalanced seed assignments (the
// bin-based refinement feeds it those).
func (st *fmState) balancedAfter(c int) bool {
	if st.total <= 0 {
		return true
	}
	a0 := st.area[0]
	if st.side[c] == 0 {
		a0 -= st.h.Area[c]
	} else {
		a0 += st.h.Area[c]
	}
	frac := a0 / st.total
	dev := frac - st.opt.TargetFrac
	if dev >= -st.opt.Tolerance && dev <= st.opt.Tolerance {
		return true
	}
	curDev := st.area[0]/st.total - st.opt.TargetFrac
	if curDev < -st.opt.Tolerance || curDev > st.opt.Tolerance {
		return abs(dev) < abs(curDev)
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runPass performs one FM pass (move every free cell once, keep the best
// prefix) and returns the cut improvement achieved.
func (st *fmState) runPass() int {
	st.recount()
	for i := range st.bucket {
		st.bucket[i] = nilCell
	}
	st.maxGain = 0
	free := 0
	for c := range st.gain {
		st.locked[c] = st.h.Fixed[c] >= 0
		if st.locked[c] {
			continue
		}
		st.gain[c] = st.computeGain(c)
		st.insert(c)
		free++
	}

	type move struct {
		cell int
		gain int
	}
	moves := make([]move, 0, free)
	cum, best, bestIdx := 0, 0, -1
	bestFeasible := st.inTolerance()

	for len(moves) < free {
		c := st.pickMove()
		if c == nilCell {
			break
		}
		st.remove(c)
		st.locked[c] = true
		g := st.gain[c]
		st.applyMove(c)
		moves = append(moves, move{c, g})
		cum += g
		// Prefer prefixes that restore balance feasibility; among equal
		// feasibility, maximize cut gain.
		feas := st.inTolerance()
		if (feas && !bestFeasible) || (feas == bestFeasible && cum > best) {
			best = cum
			bestIdx = len(moves) - 1
			bestFeasible = feas
		}
	}

	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		st.applyMove(moves[i].cell) // moving back
	}
	if best < 0 {
		// A negative-gain prefix is only kept to restore balance; report
		// it as progress so the outer loop runs another pass.
		return 1
	}
	return best
}

// inTolerance reports whether the current side-0 area fraction satisfies
// the balance constraint.
func (st *fmState) inTolerance() bool {
	if st.total <= 0 {
		return true
	}
	dev := st.area[0]/st.total - st.opt.TargetFrac
	return dev >= -st.opt.Tolerance && dev <= st.opt.Tolerance
}

// pickMove returns the highest-gain unlocked cell whose move keeps
// balance, or nilCell.
func (st *fmState) pickMove() int {
	for b := st.maxGain; b >= 0; b-- {
		for c := st.bucket[b]; c != nilCell; c = st.next[c] {
			if st.balancedAfter(c) {
				st.maxGain = b
				return c
			}
		}
	}
	return nilCell
}

// applyMove flips cell c's side, updating areas, net counts, and the
// gains of unlocked neighbours.
func (st *fmState) applyMove(c int) {
	from := st.side[c]
	to := 1 - from
	st.area[from] -= st.h.Area[c]
	st.area[to] += st.h.Area[c]
	st.side[c] = to

	for _, ni := range st.h.cellNets()[c] {
		net := st.h.Nets[ni]
		if len(net) < 2 {
			continue
		}
		// Standard FM incremental gain update around the critical net
		// states (0, 1 pins on a side before/after the move).
		if st.cnt[ni][to] == 0 {
			// Net was uncut on 'from'; all its cells gain +1.
			for _, x := range net {
				st.bumpGain(x, +1)
			}
		} else if st.cnt[ni][to] == 1 {
			// One cell was alone on 'to'; it loses its +1.
			for _, x := range net {
				if st.side[x] == to && x != c {
					st.bumpGain(x, -1)
				}
			}
		}
		st.cnt[ni][from]--
		st.cnt[ni][to]++
		if st.cnt[ni][from] == 0 {
			// Net is now uncut on 'to'; all its cells lose a potential +1.
			for _, x := range net {
				st.bumpGain(x, -1)
			}
		} else if st.cnt[ni][from] == 1 {
			// One cell is now alone on 'from'; it gains +1.
			for _, x := range net {
				if st.side[x] == from {
					st.bumpGain(x, +1)
				}
			}
		}
	}
}

// bumpGain adjusts an unlocked cell's gain and its bucket position.
func (st *fmState) bumpGain(c, delta int) {
	if st.locked[c] {
		return
	}
	st.remove(c)
	st.gain[c] += delta
	st.insert(c)
}
