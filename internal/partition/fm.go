package partition

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dense"
)

// FMOptions tunes the Fiduccia–Mattheyses engine.
type FMOptions struct {
	// TargetFrac is the desired fraction of total area on side 0
	// (0.5 = balanced bisection).
	TargetFrac float64
	// Tolerance is the allowed deviation of side 0's area fraction from
	// TargetFrac (e.g. 0.05 → ±5 % of total area).
	Tolerance float64
	// MaxPasses bounds the outer improvement loop; a pass that yields no
	// cut reduction terminates early regardless.
	MaxPasses int
	// Seed randomizes the initial assignment when none is supplied.
	Seed int64
}

// DefaultFMOptions returns balanced-bisection defaults.
func DefaultFMOptions() FMOptions {
	return FMOptions{TargetFrac: 0.5, Tolerance: 0.05, MaxPasses: 12, Seed: 1}
}

// Engine is a reusable FM context. One Engine can run many partitions in
// sequence — the placer runs one per bisection node — reusing the
// gain-bucket buffers between runs, so repeated small runs stay off the
// allocator. An Engine must not be shared between goroutines; the
// zero value is ready to use.
type Engine struct {
	st fmState
}

// FM runs Fiduccia–Mattheyses min-cut improvement on h. If initial is
// non-nil it seeds the assignment (and must respect Fixed pins); otherwise
// a random area-balanced assignment is generated. The returned solution
// satisfies the balance constraint whenever the initial assignment does
// (moves violating it are never accepted).
func FM(h *Hypergraph, initial []uint8, opt FMOptions) (*Solution, error) {
	var e Engine
	return e.FM(h, initial, opt)
}

// FM runs one partition on the engine, identically to the package-level
// FM but reusing the engine's buffers.
func (e *Engine) FM(h *Hypergraph, initial []uint8, opt FMOptions) (*Solution, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if opt.TargetFrac <= 0 || opt.TargetFrac >= 1 {
		return nil, fmt.Errorf("partition: TargetFrac %v out of (0,1)", opt.TargetFrac)
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 1
	}
	n := h.NumCells()
	st := &e.st
	st.reset(h, opt)
	side := st.side
	if initial != nil {
		if len(initial) != n {
			return nil, fmt.Errorf("partition: initial has %d entries, want %d", len(initial), n)
		}
		copy(side, initial)
		for i, f := range h.Fixed {
			if f >= 0 && side[i] != uint8(f) {
				return nil, fmt.Errorf("partition: initial violates Fixed pin of cell %d", i)
			}
		}
	} else {
		seedAssignment(h, side, opt)
	}
	st.area = sideAreas(h, side)

	for pass := 0; pass < opt.MaxPasses; pass++ {
		if st.runPass() == 0 {
			break
		}
	}
	return Evaluate(h, st.side), nil
}

// seedAssignment produces a random assignment that respects Fixed pins
// and approximates the target fraction by greedy area filling.
func seedAssignment(h *Hypergraph, side []uint8, opt FMOptions) {
	rng := rand.New(rand.NewSource(opt.Seed))
	total := h.TotalArea()
	want0 := opt.TargetFrac * total
	var a0 float64
	// Fixed cells first.
	for i, f := range h.Fixed {
		if f >= 0 {
			side[i] = uint8(f)
			if f == 0 {
				a0 += h.Area[i]
			}
		}
	}
	// Free cells in random order, filling side 0 up to its target.
	order := rng.Perm(len(side))
	for _, i := range order {
		if h.Fixed[i] >= 0 {
			continue
		}
		if a0 < want0 {
			side[i] = 0
			a0 += h.Area[i]
		} else {
			side[i] = 1
		}
	}
}

// fmState holds the gain-bucket machinery for one FM run.
//
// Each gain bucket keeps two intrusive lists, one per side, with a
// global insertion stamp per cell: merging the two lists by descending
// stamp reproduces the single-list scan order exactly, while the split
// lets pickMove skip a whole side of a bucket when its conservative
// area bounds prove the balance filter rejects every cell on it — the
// saturated-side oscillation that otherwise makes the scan quadratic.
type fmState struct {
	h    *Hypergraph
	opt  FMOptions
	side []uint8

	// Per-net side counts.
	cnt [][2]int32
	// Gain bucket doubly-linked lists: heads[2*b+s] is the head of gain
	// bucket b's side-s chain, nilCell if empty.
	gain    []int32
	next    []int32
	prev    []int32
	stamp   []uint64 // insertion stamp per cell; chains are stamp-descending
	stampC  uint64
	heads   []int32
	minA    []float64 // conservative per-chain area bounds: every cell
	maxA    []float64 // inserted this pass has minA <= Area <= maxA
	maxDeg  int
	maxGain int // current highest non-empty bucket index
	locked  []bool
	moves   []fmMove // per-pass move log, reused

	area  [2]float64
	total float64

	// Two-slot cache of computed moveFilters keyed by the side-0 area
	// bits: the saturated oscillation alternates between two area states,
	// so both recur constantly.
	fcacheKey  [2]uint64
	fcacheVal  [2]moveFilter
	fcacheOK   [2]bool
	fcacheNext int
}

type fmMove struct {
	cell int32
	gain int32
}

const nilCell = -1

// reset sizes the state's buffers for h, reusing prior capacity.
func (st *fmState) reset(h *Hypergraph, opt FMOptions) {
	n := h.NumCells()
	st.h = h
	st.opt = opt
	st.side = dense.Grow(st.side, n)
	st.cnt = dense.Grow(st.cnt, len(h.Nets))
	st.gain = dense.Grow(st.gain, n)
	st.next = dense.Grow(st.next, n)
	st.prev = dense.Grow(st.prev, n)
	st.stamp = dense.Grow(st.stamp, n)
	st.locked = dense.Grow(st.locked, n)
	st.total = h.TotalArea()
	st.maxDeg = 0
	h.cellNets()
	for i := 0; i < n; i++ {
		if d := h.cellDeg(i); d > st.maxDeg {
			st.maxDeg = d
		}
	}
	st.heads = dense.Grow(st.heads, 2*(2*st.maxDeg+1))
	st.minA = dense.Grow(st.minA, len(st.heads))
	st.maxA = dense.Grow(st.maxA, len(st.heads))
	st.fcacheOK = [2]bool{}
	st.fcacheNext = 0
}

// recount refreshes net side counts from the current assignment.
func (st *fmState) recount() {
	for i := range st.cnt {
		st.cnt[i] = [2]int32{}
	}
	for ni, net := range st.h.Nets {
		for _, c := range net {
			st.cnt[ni][st.side[c]]++
		}
	}
}

// computeGain returns the cut-size reduction from moving cell c.
func (st *fmState) computeGain(c int) int32 {
	var g int32
	from := st.side[c]
	to := 1 - from
	for _, ni := range st.h.netsOf(c) {
		if len(st.h.Nets[ni]) < 2 {
			continue
		}
		if st.cnt[ni][from] == 1 {
			g++ // net leaves the cut
		}
		if st.cnt[ni][to] == 0 {
			g-- // net enters the cut
		}
	}
	return g
}

func (st *fmState) bucketIdx(g int32) int { return int(g) + st.maxDeg }

// chainOf returns the bucket-chain index of cell c. Cells only change
// side after they are locked and removed (applyMove on the picked cell
// or during rollback), so side[c] here always matches the side at
// insertion time.
func (st *fmState) chainOf(c int32) int {
	return 2*st.bucketIdx(st.gain[c]) + int(st.side[c])
}

func (st *fmState) insert(c int32) {
	ch := st.chainOf(c)
	st.stampC++
	st.stamp[c] = st.stampC
	st.prev[c] = nilCell
	st.next[c] = st.heads[ch]
	if st.heads[ch] != nilCell {
		st.prev[st.heads[ch]] = c
	}
	st.heads[ch] = c
	a := st.h.Area[c]
	if a < st.minA[ch] {
		st.minA[ch] = a
	}
	if a > st.maxA[ch] {
		st.maxA[ch] = a
	}
	if b := ch >> 1; b > st.maxGain {
		st.maxGain = b
	}
}

func (st *fmState) remove(c int32) {
	ch := st.chainOf(c)
	if st.prev[c] != nilCell {
		st.next[st.prev[c]] = st.next[c]
	} else {
		st.heads[ch] = st.next[c]
	}
	if st.next[c] != nilCell {
		st.prev[st.next[c]] = st.prev[c]
	}
}

// balancedAfter reports whether moving cell c is acceptable: the result
// must be within tolerance of the target, or — when the current state is
// itself out of tolerance — the move must strictly reduce the imbalance.
// The second clause lets FM repair unbalanced seed assignments (the
// bin-based refinement feeds it those).
//
// The bucket scan does not call this per candidate: pickMove bisects the
// same expressions into per-side area thresholds once per pick (see
// moveFilter), which accepts exactly the cells this predicate accepts.
// This is the semantic reference, kept for the threshold equivalence
// test and the odd caller that only needs one answer.
func (st *fmState) balancedAfter(c int32) bool {
	if st.total <= 0 {
		return true
	}
	a0 := st.area[0]
	if st.side[c] == 0 {
		a0 -= st.h.Area[c]
	} else {
		a0 += st.h.Area[c]
	}
	frac := a0 / st.total
	dev := frac - st.opt.TargetFrac
	if dev >= -st.opt.Tolerance && dev <= st.opt.Tolerance {
		return true
	}
	curDev := st.area[0]/st.total - st.opt.TargetFrac
	if curDev < -st.opt.Tolerance || curDev > st.opt.Tolerance {
		return abs(dev) < abs(curDev)
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// moveFilter is the acceptance test of one pickMove scan, precomputed
// from the current area split: a cell on side s may move iff
// lo[s] < Area[c] <= hi[s]. Because balancedAfter's float expressions
// are monotone in the moved area (every IEEE-754 operation involved is
// monotone), the acceptable areas form an interval; maxAccept bisects
// the float bit patterns against the *same* expressions, so the interval
// bounds are exact and the filter reproduces balancedAfter bit for bit
// while the scan itself does two comparisons per candidate.
type moveFilter struct {
	lo, hi [2]float64
}

func (f *moveFilter) ok(side uint8, area float64) bool {
	return f.lo[side] < area && area <= f.hi[side]
}

// computeFilter derives the per-side area windows for the current state.
func (st *fmState) computeFilter() moveFilter {
	f := moveFilter{lo: [2]float64{-1, -1}, hi: [2]float64{math.Inf(1), math.Inf(1)}}
	if st.total <= 0 {
		return f // balancedAfter accepts everything
	}
	a0, total := st.area[0], st.total
	target, tol := st.opt.TargetFrac, st.opt.Tolerance
	// dev1/dev0 are balancedAfter's deviation after moving area x onto /
	// off side 0 — the identical expression, so rounding agrees.
	dev1 := func(x float64) float64 { return (a0+x)/total - target }
	dev0 := func(x float64) float64 { return (a0-x)/total - target }
	curDev := a0/total - target
	switch {
	case curDev >= -tol && curDev <= tol:
		// In tolerance: a move is fine while it stays inside the window
		// (deviation moves monotonically toward the violated bound).
		f.hi[1] = maxAccept(func(x float64) bool { return dev1(x) <= tol })
		f.hi[0] = maxAccept(func(x float64) bool { return dev0(x) >= -tol })
	case curDev < -tol:
		// Side 0 too light: draining it further can never help.
		f.hi[0] = -1
		// Filling it is accepted while |dev| strictly shrinks (or lands
		// in tolerance): curDev < dev1(x) < -curDev.
		f.lo[1] = maxAccept(func(x float64) bool { return dev1(x) <= curDev })
		f.hi[1] = maxAccept(func(x float64) bool { return dev1(x) < -curDev })
	default: // curDev > tol
		f.hi[1] = -1
		f.lo[0] = maxAccept(func(x float64) bool { return dev0(x) >= curDev })
		f.hi[0] = maxAccept(func(x float64) bool { return dev0(x) > -curDev })
	}
	return f
}

// maxAccept returns the largest non-negative float64 satisfying pred,
// or -1 when even 0 fails. pred must hold on a (possibly empty) prefix
// of the non-negative floats; the bisection runs on the bit
// representation, whose order matches numeric order for non-negative
// values, so the returned threshold is exact.
func maxAccept(pred func(float64) bool) float64 {
	if !pred(0) {
		return -1
	}
	if pred(math.MaxFloat64) {
		return math.Inf(1)
	}
	lo, hi := uint64(0), math.Float64bits(math.MaxFloat64)
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if pred(math.Float64frombits(mid)) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return math.Float64frombits(lo)
}

// runPass performs one FM pass (move every free cell once, keep the best
// prefix) and returns the cut improvement achieved.
func (st *fmState) runPass() int {
	st.recount()
	for i := range st.heads {
		st.heads[i] = nilCell
		st.minA[i] = math.Inf(1)
		st.maxA[i] = math.Inf(-1)
	}
	st.maxGain = 0
	free := 0
	for c := range st.gain {
		st.locked[c] = st.h.Fixed[c] >= 0
		if st.locked[c] {
			continue
		}
		st.gain[c] = st.computeGain(c)
		st.insert(int32(c))
		free++
	}

	if cap(st.moves) < free {
		st.moves = make([]fmMove, 0, free)
	}
	moves := st.moves[:0]
	cum, best, bestIdx := int32(0), int32(0), -1
	bestFeasible := st.inTolerance()

	for len(moves) < free {
		c := st.pickMove()
		if c == nilCell {
			break
		}
		st.remove(c)
		st.locked[c] = true
		g := st.gain[c]
		st.applyMove(c)
		moves = append(moves, fmMove{c, g})
		cum += g
		// Prefer prefixes that restore balance feasibility; among equal
		// feasibility, maximize cut gain.
		feas := st.inTolerance()
		if (feas && !bestFeasible) || (feas == bestFeasible && cum > best) {
			best = cum
			bestIdx = len(moves) - 1
			bestFeasible = feas
		}
	}

	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		st.applyMove(moves[i].cell) // moving back
	}
	st.moves = moves[:0]
	if best < 0 {
		// A negative-gain prefix is only kept to restore balance; report
		// it as progress so the outer loop runs another pass.
		return 1
	}
	return int(best)
}

// inTolerance reports whether the current side-0 area fraction satisfies
// the balance constraint.
func (st *fmState) inTolerance() bool {
	if st.total <= 0 {
		return true
	}
	dev := st.area[0]/st.total - st.opt.TargetFrac
	return dev >= -st.opt.Tolerance && dev <= st.opt.Tolerance
}

// pickMove returns the highest-gain unlocked cell whose move keeps
// balance, or nilCell.
//
// The scan starts on the balancedAfter reference and switches to the
// bisected threshold filter once a few candidates have been rejected:
// long rejection runs (the saturated-side oscillation of big runs, where
// this scan dominates whole-flow time) then skip entire per-side chains
// through their conservative area bounds, while the placer's many tiny
// runs — whose scans accept almost immediately — never pay the filter's
// bisection cost. Candidates are visited by descending insertion stamp
// across the two side chains, which is exactly the single-list order.
//
//hotpath:kernel
func (st *fmState) pickMove() int32 {
	const filterAfter = 8
	rejected := 0
	haveFilter := false
	var flt moveFilter
	area := st.h.Area
	for b := st.maxGain; b >= 0; b-- {
		c0, c1 := st.heads[2*b], st.heads[2*b+1]
		if haveFilter {
			if c0 != nilCell && st.chainDead(2*b, 0, &flt) {
				c0 = nilCell
			}
			if c1 != nilCell && st.chainDead(2*b+1, 1, &flt) {
				c1 = nilCell
			}
		}
		for c0 != nilCell || c1 != nilCell {
			var c int32
			var s uint8
			if c1 == nilCell || (c0 != nilCell && st.stamp[c0] > st.stamp[c1]) {
				c, s = c0, 0
			} else {
				c, s = c1, 1
			}
			var ok bool
			if haveFilter {
				ok = flt.ok(s, area[c])
			} else {
				ok = st.balancedAfter(c)
			}
			if ok {
				st.maxGain = b
				return c
			}
			rejected++
			if s == 0 {
				c0 = st.next[c]
			} else {
				c1 = st.next[c]
			}
			if !haveFilter && rejected >= filterAfter {
				flt = st.cachedFilter()
				haveFilter = true
				if c0 != nilCell && st.chainDead(2*b, 0, &flt) {
					c0 = nilCell
				}
				if c1 != nilCell && st.chainDead(2*b+1, 1, &flt) {
					c1 = nilCell
				}
			}
		}
	}
	return nilCell
}

// chainDead reports whether the per-chain area bounds prove the filter
// rejects every remaining cell of chain ch (side s). The bounds cover
// every cell inserted this pass, hence every cell still in the chain.
func (st *fmState) chainDead(ch int, s uint8, flt *moveFilter) bool {
	return st.minA[ch] > flt.hi[s] || st.maxA[ch] <= flt.lo[s]
}

// cachedFilter returns the moveFilter for the current area split,
// serving repeats from the two-slot cache.
func (st *fmState) cachedFilter() moveFilter {
	key := math.Float64bits(st.area[0])
	for i := 0; i < 2; i++ {
		if st.fcacheOK[i] && st.fcacheKey[i] == key {
			return st.fcacheVal[i]
		}
	}
	f := st.computeFilter()
	st.fcacheKey[st.fcacheNext] = key
	st.fcacheVal[st.fcacheNext] = f
	st.fcacheOK[st.fcacheNext] = true
	st.fcacheNext ^= 1
	return f
}

// applyMove flips cell c's side, updating areas, net counts, and the
// gains of unlocked neighbours.
//
//hotpath:kernel
func (st *fmState) applyMove(c int32) {
	from := st.side[c]
	to := 1 - from
	st.area[from] -= st.h.Area[c]
	st.area[to] += st.h.Area[c]
	st.side[c] = to

	for _, ni := range st.h.netsOf(int(c)) {
		net := st.h.Nets[ni]
		if len(net) < 2 {
			continue
		}
		// Standard FM incremental gain update around the critical net
		// states (0, 1 pins on a side before/after the move).
		if st.cnt[ni][to] == 0 {
			// Net was uncut on 'from'; all its cells gain +1.
			for _, x := range net {
				st.bumpGain(int32(x), +1)
			}
		} else if st.cnt[ni][to] == 1 {
			// One cell was alone on 'to'; it loses its +1.
			for _, x := range net {
				if st.side[x] == to && int32(x) != c {
					st.bumpGain(int32(x), -1)
				}
			}
		}
		st.cnt[ni][from]--
		st.cnt[ni][to]++
		if st.cnt[ni][from] == 0 {
			// Net is now uncut on 'to'; all its cells lose a potential +1.
			for _, x := range net {
				st.bumpGain(int32(x), -1)
			}
		} else if st.cnt[ni][from] == 1 {
			// One cell is now alone on 'from'; it gains +1.
			for _, x := range net {
				if st.side[x] == from {
					st.bumpGain(int32(x), +1)
				}
			}
		}
	}
}

// bumpGain adjusts an unlocked cell's gain and its bucket position.
func (st *fmState) bumpGain(c int32, delta int32) {
	if st.locked[c] {
		return
	}
	st.remove(c)
	st.gain[c] += delta
	st.insert(c)
}
