package partition

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// This file implements the repartitioning ECO loop of the heterogeneous
// flow — Algorithm 1 in the paper (Sec. III-C). After the initial
// timing-based partition, the timing data that drove it is stale (it came
// from the single-technology pseudo-3-D stage), so the flow repeatedly
// identifies cells that are too slow for their tier on the *accurately
// timed* 3-D design and moves them to the fast die, undoing any batch that
// degrades WNS/TNS beyond the configured thresholds.

// PathCell is one cell on an extracted critical path with its stage delay.
type PathCell struct {
	Inst *netlist.Instance
	// Delay is the cell's stage delay on the path, in ns.
	Delay float64
}

// TimingOracle abstracts the sign-off timer the ECO loop consults. The
// flow engine implements it with the sta package; tests use stubs.
type TimingOracle interface {
	// CriticalPaths returns up to n worst register-to-register paths,
	// each as an ordered list of cells with stage delays.
	CriticalPaths(n int) [][]PathCell
	// WNSTNS returns the current worst negative slack and total negative
	// slack (both ≤ 0 when timing fails), in ns.
	WNSTNS() (wns, tns float64)
	// Refresh re-times the design after tier moves (including any
	// library retargeting the flow performs on moved cells).
	Refresh() error
}

// ECOOptions are the knobs of Algorithm 1, named after the paper's
// pseudocode symbols.
type ECOOptions struct {
	// UnbalanceTh stops the loop once |areaFast − areaSlow|/total drops
	// to this value (unbalance_th).
	UnbalanceTh float64
	// D0 is the initial delay-threshold multiplier d_0: a cell is
	// critical when its stage delay exceeds d_k × (average stage delay of
	// the n_p critical paths).
	D0 float64
	// NP is n_0, the number of critical paths examined per iteration.
	NP int
	// CritTh is crit_th: the loop stops when fewer than this fraction of
	// critical cells sit on the slow die (nothing left to win).
	CritTh float64
	// Alpha is α < 1, the d_k decay applied after an undone batch.
	Alpha float64
	// WTh and TTh are the WNS/TNS degradation thresholds (ΔWNS < W_th or
	// ΔTNS < T_th triggers undo); both are ≤ 0.
	WTh, TTh float64
	// FastTier is the die carrying the fast library (bottom in the
	// paper's arrangement).
	FastTier tech.Tier
	// FastCapacity, when positive, is the fast die's placeable area in
	// µm². The loop then interprets the area term as fast-die headroom:
	// it keeps repartitioning while headroom remains and drops moves that
	// would not fit. Zero keeps the plain |ΔA|/A_total reading.
	FastCapacity float64
	// MaxIters bounds the loop regardless of convergence.
	MaxIters int
	// OnMove, when non-nil, is invoked for every tier change (moves and
	// undos) so the flow can retarget the cell's library to match its new
	// tier.
	OnMove func(inst *netlist.Instance, to tech.Tier) error
}

// DefaultECOOptions returns the paper-faithful defaults.
func DefaultECOOptions() ECOOptions {
	return ECOOptions{
		UnbalanceTh: 0.02,
		D0:          1.5,
		NP:          100,
		CritTh:      0.05,
		Alpha:       0.7,
		WTh:         -0.010,
		TTh:         -1.0,
		FastTier:    tech.TierBottom,
		MaxIters:    12,
	}
}

// ECOReport summarizes a repartitioning run.
type ECOReport struct {
	Iterations int
	Moved      int
	Undone     int
	FinalWNS   float64
	FinalTNS   float64
	// FinalUnbalance is |areaFast − areaSlow| / total at exit.
	FinalUnbalance float64
}

// unbalanceOf computes the loop-control area term: with a known fast-die
// capacity it is the remaining headroom fraction on the fast die (stop
// when the fast die fills up); otherwise the plain tier-area unbalance.
func unbalanceOf(d *netlist.Design, opt ECOOptions) float64 {
	if opt.FastCapacity > 0 {
		// Capacity mode compares *movable standard-cell* area against the
		// fast die's core capacity — macros live outside the core and
		// never move.
		used := 0.0
		for _, inst := range d.Instances {
			if inst.Master.Function.IsMacro() || inst.Tier != opt.FastTier {
				continue
			}
			used += inst.Master.Area()
		}
		head := (opt.FastCapacity - used) / opt.FastCapacity
		if head < 0 {
			return 0
		}
		return head
	}
	s := d.ComputeStats()
	total := s.AreaByTier[0] + s.AreaByTier[1]
	if total == 0 {
		return 0
	}
	return math.Abs(s.AreaByTier[0]-s.AreaByTier[1]) / total
}

// RepartitionECO runs Algorithm 1 on d using the supplied timing oracle.
func RepartitionECO(d *netlist.Design, oracle TimingOracle, opt ECOOptions) (*ECOReport, error) {
	if opt.NP <= 0 || opt.D0 <= 0 || opt.Alpha <= 0 || opt.Alpha >= 1 {
		return nil, fmt.Errorf("partition: invalid ECO options %+v", opt)
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 1
	}
	move := func(inst *netlist.Instance, to tech.Tier) error {
		inst.SetTier(to)
		if opt.OnMove != nil {
			return opt.OnMove(inst, to)
		}
		return nil
	}

	rep := &ECOReport{}
	dk := opt.D0
	unbalance := unbalanceOf(d, opt)

	for rep.Iterations = 0; rep.Iterations < opt.MaxIters && unbalance > opt.UnbalanceTh; rep.Iterations++ {
		paths := oracle.CriticalPaths(opt.NP)
		// d_th ← d_k × (avg. cell delay of n_p critical paths)
		sum, cnt := 0.0, 0
		for _, p := range paths {
			for _, pc := range p {
				sum += pc.Delay
				cnt++
			}
		}
		if cnt == 0 {
			break
		}
		dth := dk * (sum / float64(cnt))

		allCrit, slowCrit := 0, 0
		seen := make(map[*netlist.Instance]bool)
		var moveList []*netlist.Instance
		headroom := 0.0
		if opt.FastCapacity > 0 {
			headroom = opt.FastCapacity * unbalance
		}
		for _, p := range paths {
			for _, pc := range p {
				if pc.Delay <= dth || seen[pc.Inst] {
					continue
				}
				seen[pc.Inst] = true
				allCrit++
				if pc.Inst.Tier != opt.FastTier && !pc.Inst.Master.Function.IsMacro() {
					slowCrit++
					if opt.FastCapacity > 0 {
						// Drop moves that would not fit on the fast die.
						// The cell grows when retargeted to the fast
						// library, so budget 1.35× its current area.
						if a := pc.Inst.Master.Area() * 1.35; a <= headroom {
							headroom -= a
							moveList = append(moveList, pc.Inst)
						}
						continue
					}
					moveList = append(moveList, pc.Inst)
				}
			}
		}
		if allCrit == 0 || float64(slowCrit)/float64(allCrit) < opt.CritTh {
			break // Stop re-partitioning: slow die no longer hosts criticals.
		}
		if len(moveList) == 0 {
			break // nothing fits on the fast die anymore
		}

		wns0, tns0 := oracle.WNSTNS()
		for _, inst := range moveList {
			if err := move(inst, opt.FastTier); err != nil {
				return rep, err
			}
		}
		if err := oracle.Refresh(); err != nil {
			return rep, err
		}
		wns1, tns1 := oracle.WNSTNS()

		if wns1-wns0 < opt.WTh || tns1-tns0 < opt.TTh {
			// The batch hurt timing: undo and tighten the threshold.
			for _, inst := range moveList {
				if err := move(inst, opt.FastTier.Other()); err != nil {
					return rep, err
				}
			}
			if err := oracle.Refresh(); err != nil {
				return rep, err
			}
			rep.Undone += len(moveList)
			dk *= opt.Alpha
		} else {
			rep.Moved += len(moveList)
		}
		unbalance = unbalanceOf(d, opt)
	}

	rep.FinalWNS, rep.FinalTNS = oracle.WNSTNS()
	rep.FinalUnbalance = unbalance
	return rep, nil
}
