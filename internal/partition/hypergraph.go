// Package partition implements the partitioning machinery of the
// heterogeneous 3-D flow: a Fiduccia–Mattheyses (FM) min-cut engine with
// area balancing, the placement-driven bin-based tier partitioning the
// pseudo-3-D flows use, the paper's timing-based pre-assignment of
// critical cells to the fast die, and the repartitioning ECO loop
// (Algorithm 1).
package partition

import (
	"fmt"
	"math"
)

// Hypergraph is the partitioning view of a netlist: weighted cells
// connected by hyperedges. Cell and net identities are dense indices so
// the FM engine can use flat arrays.
type Hypergraph struct {
	// Area is the weight of each cell (µm² in flow usage).
	Area []float64
	// Nets lists, per hyperedge, the cells it connects. Degenerate nets
	// (0 or 1 pins) are allowed and ignored.
	Nets [][]int
	// Fixed[i] is -1 for a free cell, or 0/1 to pin cell i to a side.
	// Timing-based partitioning pins critical cells to the fast die this
	// way before FM runs on the remainder.
	Fixed []int8

	// pinsOf is the inverse map, built lazily: nets incident to a cell.
	pinsOf [][]int
}

// NewHypergraph creates a hypergraph with n free cells of the given areas.
func NewHypergraph(areas []float64) *Hypergraph {
	fixed := make([]int8, len(areas))
	for i := range fixed {
		fixed[i] = -1
	}
	return &Hypergraph{Area: areas, Fixed: fixed}
}

// AddNet appends a hyperedge over the given cells.
func (h *Hypergraph) AddNet(cells ...int) { h.Nets = append(h.Nets, cells) }

// NumCells returns the cell count.
func (h *Hypergraph) NumCells() int { return len(h.Area) }

// Validate checks index ranges and weights.
func (h *Hypergraph) Validate() error {
	n := len(h.Area)
	if len(h.Fixed) != n {
		return fmt.Errorf("partition: Fixed has %d entries, want %d", len(h.Fixed), n)
	}
	for i, a := range h.Area {
		if a < 0 || math.IsNaN(a) {
			return fmt.Errorf("partition: cell %d has invalid area %v", i, a)
		}
	}
	for i, f := range h.Fixed {
		if f < -1 || f > 1 {
			return fmt.Errorf("partition: cell %d has invalid Fixed %d", i, f)
		}
	}
	for ni, net := range h.Nets {
		for _, c := range net {
			if c < 0 || c >= n {
				return fmt.Errorf("partition: net %d references cell %d of %d", ni, c, n)
			}
		}
	}
	return nil
}

// cellNets returns nets incident to each cell, building the map on first
// use.
func (h *Hypergraph) cellNets() [][]int {
	if h.pinsOf != nil {
		return h.pinsOf
	}
	h.pinsOf = make([][]int, len(h.Area))
	deg := make([]int, len(h.Area))
	for _, net := range h.Nets {
		for _, c := range net {
			deg[c]++
		}
	}
	for i, d := range deg {
		h.pinsOf[i] = make([]int, 0, d)
	}
	for ni, net := range h.Nets {
		for _, c := range net {
			h.pinsOf[c] = append(h.pinsOf[c], ni)
		}
	}
	return h.pinsOf
}

// TotalArea returns the sum of cell areas.
func (h *Hypergraph) TotalArea() float64 {
	t := 0.0
	for _, a := range h.Area {
		t += a
	}
	return t
}

// Solution is a two-way partition assignment.
type Solution struct {
	// Side[i] ∈ {0, 1} is cell i's side.
	Side []uint8
	// AreaSide holds the total area per side.
	AreaSide [2]float64
	// Cut is the number of hyperedges spanning both sides.
	Cut int
}

// CutSize recounts the cut of sides over h (authoritative; Solution.Cut is
// a cached copy maintained incrementally by FM).
func CutSize(h *Hypergraph, side []uint8) int {
	cut := 0
	for _, net := range h.Nets {
		if len(net) < 2 {
			continue
		}
		s0 := side[net[0]]
		for _, c := range net[1:] {
			if side[c] != s0 {
				cut++
				break
			}
		}
	}
	return cut
}

// sideAreas recomputes per-side area.
func sideAreas(h *Hypergraph, side []uint8) [2]float64 {
	var a [2]float64
	for i, s := range side {
		a[s] += h.Area[i]
	}
	return a
}

// Evaluate builds a Solution (with recomputed cut and areas) from a side
// assignment.
func Evaluate(h *Hypergraph, side []uint8) *Solution {
	cp := append([]uint8{}, side...)
	return &Solution{Side: cp, AreaSide: sideAreas(h, cp), Cut: CutSize(h, cp)}
}
