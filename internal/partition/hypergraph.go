// Package partition implements the partitioning machinery of the
// heterogeneous 3-D flow: a Fiduccia–Mattheyses (FM) min-cut engine with
// area balancing, the placement-driven bin-based tier partitioning the
// pseudo-3-D flows use, the paper's timing-based pre-assignment of
// critical cells to the fast die, and the repartitioning ECO loop
// (Algorithm 1).
package partition

import (
	"fmt"
	"math"

	"repro/internal/dense"
)

// Hypergraph is the partitioning view of a netlist: weighted cells
// connected by hyperedges. Cell and net identities are dense indices so
// the FM engine can use flat arrays.
type Hypergraph struct {
	// Area is the weight of each cell (µm² in flow usage).
	Area []float64
	// Nets lists, per hyperedge, the cells it connects. Degenerate nets
	// (0 or 1 pins) are allowed and ignored.
	Nets [][]int
	// Fixed[i] is -1 for a free cell, or 0/1 to pin cell i to a side.
	// Timing-based partitioning pins critical cells to the fast die this
	// way before FM runs on the remainder.
	Fixed []int8

	// pinsOff/pinsIdx are the inverse map in CSR form, built lazily:
	// pinsIdx[pinsOff[c]:pinsOff[c+1]] are the nets incident to cell c.
	// Two flat arrays instead of a slice per cell keep the FM inner
	// loops on contiguous memory and the build allocation-free per cell.
	pinsOff   []int32
	pinsIdx   []int32
	pinsFill  []int32
	pinsBuilt bool

	// arena backs the pin slices NetBuf hands out; ResetCells rewinds it
	// wholesale once the cleared nets are dead.
	arena []int
}

// NewHypergraph creates a hypergraph with n free cells of the given areas.
func NewHypergraph(areas []float64) *Hypergraph {
	fixed := make([]int8, len(areas))
	for i := range fixed {
		fixed[i] = -1
	}
	return &Hypergraph{Area: areas, Fixed: fixed}
}

// PinBuf is a pin buffer carved from the hypergraph's arena by NetBuf.
// It is valid until the next ResetCells rewinds the arena: append pins
// into it and hand it to AddNet (or drop it) before then, and never
// store it into longer-lived structure — the poolescape pass enforces
// this statically.
//
//pool:scoped
type PinBuf []int

// AddNet appends a hyperedge over the given cells.
func (h *Hypergraph) AddNet(cells ...int) {
	h.Nets = append(h.Nets, cells)
	h.pinsBuilt = false // connectivity changed; rebuild lazily
}

// ResetCells reinitializes h to the given cell areas with every cell
// free, clearing the net list while retaining backing storage: the pin
// arena rewinds for NetBuf to re-carve, and the lazy inverse map's
// arrays are reused by the next build. One hypergraph (plus one Engine)
// can thereby serve a long sequence of small partitions — the placer's
// bisection frontier, the tier partitioner's bin refinement — without
// touching the allocator once warm. The caller must be done with the
// previous round's pin slices: the reset reclaims their storage.
func (h *Hypergraph) ResetCells(areas []float64) {
	h.Area = areas
	h.Fixed = dense.Grow(h.Fixed, len(areas))
	for i := range h.Fixed {
		h.Fixed[i] = -1
	}
	h.Nets = h.Nets[:0]
	h.arena = h.arena[:0]
	h.pinsBuilt = false
}

// NetBuf returns an empty pin buffer with capacity for max pins, carved
// from the hypergraph's arena, for a subsequent AddNet call. Append up
// to max pins, then pass the buffer to AddNet — the hyperedge keeps it
// (discarding it instead is fine; the reservation is reclaimed at the
// next ResetCells). Sizing the reservation up front means the append
// loop itself can never trigger slice growth, whatever mix of net
// degrees the frontier produces.
//
//pool:boundary the arena carve site; buffers die at the next ResetCells
func (h *Hypergraph) NetBuf(max int) PinBuf {
	if len(h.arena)+max > cap(h.arena) {
		n := 2 * (len(h.arena) + max)
		if n < 1024 {
			n = 1024
		}
		// Slices already handed out keep the old block alive; only new
		// carves move to the fresh one.
		h.arena = make([]int, 0, n)
	}
	off := len(h.arena)
	h.arena = h.arena[:off+max]
	return PinBuf(h.arena[off : off : off+max])
}

// NumCells returns the cell count.
func (h *Hypergraph) NumCells() int { return len(h.Area) }

// Validate checks index ranges and weights.
func (h *Hypergraph) Validate() error {
	n := len(h.Area)
	if len(h.Fixed) != n {
		return fmt.Errorf("partition: Fixed has %d entries, want %d", len(h.Fixed), n)
	}
	for i, a := range h.Area {
		if a < 0 || math.IsNaN(a) {
			return fmt.Errorf("partition: cell %d has invalid area %v", i, a)
		}
	}
	for i, f := range h.Fixed {
		if f < -1 || f > 1 {
			return fmt.Errorf("partition: cell %d has invalid Fixed %d", i, f)
		}
	}
	for ni, net := range h.Nets {
		for _, c := range net {
			if c < 0 || c >= n {
				return fmt.Errorf("partition: net %d references cell %d of %d", ni, c, n)
			}
		}
	}
	return nil
}

// cellNets builds the cell→nets inverse map on first use, reusing the
// CSR arrays of any prior build.
func (h *Hypergraph) cellNets() {
	if h.pinsBuilt {
		return
	}
	n := len(h.Area)
	off := dense.Zero(h.pinsOff, n+1)
	for _, net := range h.Nets {
		for _, c := range net {
			off[c+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	idx := dense.Grow(h.pinsIdx, int(off[n]))
	fill := dense.Grow(h.pinsFill, n)
	copy(fill, off[:n])
	for ni, net := range h.Nets {
		for _, c := range net {
			idx[fill[c]] = int32(ni)
			fill[c]++
		}
	}
	h.pinsOff, h.pinsIdx, h.pinsFill = off, idx, fill
	h.pinsBuilt = true
}

// netsOf returns the nets incident to cell c, in insertion order.
func (h *Hypergraph) netsOf(c int) []int32 {
	h.cellNets()
	return h.pinsIdx[h.pinsOff[c]:h.pinsOff[c+1]]
}

// cellDeg returns the number of net pins on cell c.
func (h *Hypergraph) cellDeg(c int) int {
	h.cellNets()
	return int(h.pinsOff[c+1] - h.pinsOff[c])
}

// TotalArea returns the sum of cell areas.
func (h *Hypergraph) TotalArea() float64 {
	t := 0.0
	for _, a := range h.Area {
		t += a
	}
	return t
}

// Solution is a two-way partition assignment.
type Solution struct {
	// Side[i] ∈ {0, 1} is cell i's side.
	Side []uint8
	// AreaSide holds the total area per side.
	AreaSide [2]float64
	// Cut is the number of hyperedges spanning both sides.
	Cut int
}

// CutSize recounts the cut of sides over h (authoritative; Solution.Cut is
// a cached copy maintained incrementally by FM).
func CutSize(h *Hypergraph, side []uint8) int {
	cut := 0
	for _, net := range h.Nets {
		if len(net) < 2 {
			continue
		}
		s0 := side[net[0]]
		for _, c := range net[1:] {
			if side[c] != s0 {
				cut++
				break
			}
		}
	}
	return cut
}

// sideAreas recomputes per-side area.
func sideAreas(h *Hypergraph, side []uint8) [2]float64 {
	var a [2]float64
	for i, s := range side {
		a[s] += h.Area[i]
	}
	return a
}

// Evaluate builds a Solution (with recomputed cut and areas) from a side
// assignment.
func Evaluate(h *Hypergraph, side []uint8) *Solution {
	cp := append([]uint8{}, side...)
	return &Solution{Side: cp, AreaSide: sideAreas(h, cp), Cut: CutSize(h, cp)}
}
