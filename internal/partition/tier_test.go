package partition

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.Variant12T())

func smallCPU(t *testing.T) *netlist.Design {
	t.Helper()
	d, err := designs.Generate(designs.CPU, lib, designs.Params{Scale: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Scatter locations so bin refinement has geometry to work with.
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%97), float64((i*13)%89))
	}
	return d
}

func TestTierPartitionBalances(t *testing.T) {
	d := smallCPU(t)
	outline := geom.R(0, 0, 100, 90)
	res, err := TierPartition(d, outline, nil, DefaultTierOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := res.AreaTop + res.AreaBottom
	frac := res.AreaBottom / total
	if frac < 0.38 || frac > 0.62 {
		t.Errorf("tier balance = %v, want ≈0.5", frac)
	}
	if res.Cut <= 0 {
		t.Error("expected a non-trivial cut")
	}
	// Every instance must have a tier in {0, 1}.
	for _, inst := range d.Instances {
		if inst.Tier != tech.TierBottom && inst.Tier != tech.TierTop {
			t.Fatalf("instance %s has invalid tier %d", inst.Name, inst.Tier)
		}
	}
}

func TestTierPartitionHonorsPreassign(t *testing.T) {
	d := smallCPU(t)
	pre := make(map[*netlist.Instance]tech.Tier)
	cnt := 0
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			continue
		}
		if cnt%17 == 0 {
			pre[inst] = tech.TierBottom
		}
		cnt++
	}
	res, err := TierPartition(d, geom.R(0, 0, 100, 90), pre, DefaultTierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Preassigned != len(pre) {
		t.Errorf("Preassigned = %d, want %d", res.Preassigned, len(pre))
	}
	for inst, want := range pre {
		if inst.Tier != want {
			t.Errorf("preassigned %s on tier %v, want %v", inst.Name, inst.Tier, want)
		}
	}
}

func TestTierPartitionMacrosBalanced(t *testing.T) {
	d := smallCPU(t)
	if _, err := TierPartition(d, geom.R(0, 0, 100, 90), nil, DefaultTierOptions()); err != nil {
		t.Fatal(err)
	}
	var macroArea [2]float64
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			macroArea[inst.Tier] += inst.Master.Area()
		}
	}
	tot := macroArea[0] + macroArea[1]
	if tot == 0 {
		t.Fatal("no macros found")
	}
	if r := macroArea[0] / tot; r < 0.3 || r > 0.7 {
		t.Errorf("macro area split = %v, want near-balanced", r)
	}
}

func TestTierPartitionReducesCutVsRandom(t *testing.T) {
	d := smallCPU(t)
	outline := geom.R(0, 0, 100, 90)
	res, err := TierPartition(d, outline, nil, DefaultTierOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Random alternating assignment as baseline.
	cross := 0
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
	}
	for _, n := range d.Nets {
		if !n.IsClock && n.CrossesTiers() {
			cross++
		}
	}
	if res.Cut >= cross {
		t.Errorf("FM cut %d not better than alternating cut %d", res.Cut, cross)
	}
}

func TestPreassignCritical(t *testing.T) {
	d := smallCPU(t)
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		cells = append(cells, inst)
	}
	// Synthetic slack: instance ID as slack (lowest ID = most critical).
	slack := func(i *netlist.Instance) float64 { return float64(i.ID) }
	pre := PreassignCritical(cells, slack, 0.25, tech.TierBottom)
	if len(pre) == 0 {
		t.Fatal("nothing preassigned")
	}
	// Area accounting: pinned area ≈ 25 % of movable area (within one
	// cell of the budget).
	var pinned, total float64
	maxID := 0
	for _, inst := range cells {
		if inst.Master.Function.IsMacro() {
			continue
		}
		total += inst.Master.Area()
	}
	for inst := range pre {
		pinned += inst.Master.Area()
		if inst.ID > maxID {
			maxID = inst.ID
		}
		if inst.Master.Function.IsMacro() {
			t.Error("macro preassigned")
		}
	}
	frac := pinned / total
	if frac < 0.24 || frac > 0.30 {
		t.Errorf("pinned fraction = %v, want ≈0.25", frac)
	}
	// The selection must be the lowest-slack prefix: every unpinned
	// non-macro cell has ID ≥ every pinned cell... i.e. maxID+1 cells is
	// roughly the pinned count (IDs are dense over instances including
	// macros, so allow slop).
	if maxID > len(pre)+16 {
		t.Errorf("selection not a criticality prefix: maxID=%d for %d pins", maxID, len(pre))
	}
}

func TestPreassignCriticalZeroFraction(t *testing.T) {
	d := smallCPU(t)
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		cells = append(cells, inst)
	}
	pre := PreassignCritical(cells, func(*netlist.Instance) float64 { return 0 }, 0, tech.TierBottom)
	if len(pre) != 0 {
		t.Errorf("zero fraction pinned %d cells", len(pre))
	}
}

func TestUnbalanceOf(t *testing.T) {
	d := smallCPU(t)
	for _, inst := range d.Instances {
		inst.Tier = tech.TierBottom
	}
	if u := unbalanceOf(d, ECOOptions{}); math.Abs(u-1) > 1e-9 {
		t.Errorf("all-bottom unbalance = %v, want 1", u)
	}
	// Move roughly half the area to top.
	var half, total float64
	for _, inst := range d.Instances {
		total += inst.Master.Area()
	}
	for _, inst := range d.Instances {
		if half < total/2 {
			inst.Tier = tech.TierTop
			half += inst.Master.Area()
		}
	}
	if u := unbalanceOf(d, ECOOptions{}); u > 0.05 {
		t.Errorf("balanced unbalance = %v, want ≈0", u)
	}
}
