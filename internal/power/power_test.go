package power

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var (
	lib12 = cell.NewLibrary(tech.Variant12T())
	lib9  = cell.NewLibrary(tech.Variant9T())
)

func genPlaced(t *testing.T, name designs.Name, lib *cell.Library) *netlist.Design {
	t.Helper()
	d, err := designs.Generate(name, lib, designs.Params{Scale: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%53), float64((i*11)%47))
	}
	return d
}

func TestAnalyzeBasic(t *testing.T) {
	d := genPlaced(t, designs.AES, lib12)
	b, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Fatal("total power must be positive")
	}
	if b.Switching <= 0 || b.Internal <= 0 || b.Leakage <= 0 {
		t.Errorf("components: sw=%v int=%v lk=%v", b.Switching, b.Internal, b.Leakage)
	}
	sum := b.Switching + b.Internal + b.Leakage
	if diff := (b.Total - sum) / b.Total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Total %v != sum of components %v", b.Total, sum)
	}
	// Everything on tier 0 pre-partitioning.
	if b.ByTier[0] <= 0 || b.ByTier[1] != 0 {
		t.Errorf("ByTier = %v", b.ByTier)
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	d := genPlaced(t, designs.AES, lib12)
	b1, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Analyze(d, DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic power doubles; leakage constant.
	if b2.Switching < 1.9*b1.Switching || b2.Switching > 2.1*b1.Switching {
		t.Errorf("switching did not scale: %v vs %v", b1.Switching, b2.Switching)
	}
	if b2.Leakage != b1.Leakage {
		t.Errorf("leakage changed with frequency: %v vs %v", b1.Leakage, b2.Leakage)
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	d := genPlaced(t, designs.AES, lib12)
	lo := DefaultConfig(1.0)
	lo.InputActivity = 0.05
	hi := DefaultConfig(1.0)
	hi.InputActivity = 0.30
	bl, err := Analyze(d, lo)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := Analyze(d, hi)
	if err != nil {
		t.Fatal(err)
	}
	if bh.Switching <= bl.Switching {
		t.Error("higher input activity must raise switching power")
	}
}

func Test9TrackBurnsLess(t *testing.T) {
	d12 := genPlaced(t, designs.AES, lib12)
	d9 := genPlaced(t, designs.AES, lib9)
	b12, err := Analyze(d12, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	b9, err := Analyze(d9, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if b9.Total >= b12.Total {
		t.Errorf("9T total %v should be below 12T %v", b9.Total, b12.Total)
	}
	if b9.Leakage >= b12.Leakage/5 {
		t.Errorf("9T leakage %v should be far below 12T %v", b9.Leakage, b12.Leakage)
	}
}

func TestClockCellsCounted(t *testing.T) {
	d := genPlaced(t, designs.AES, lib12)
	// Insert a clock buffer on the clock net path.
	clk := d.Net("clk")
	cb, err := d.AddInstance("ckbuf0", lib12.Smallest(cell.FuncClkBuf))
	if err != nil {
		t.Fatal(err)
	}
	newClk, err := d.AddNet("clk_l1")
	if err != nil {
		t.Fatal(err)
	}
	newClk.IsClock = true
	// Move all CK sinks onto the buffered net.
	sinks := append([]netlist.PinRef{}, clk.Sinks...)
	for _, s := range sinks {
		if err := d.Disconnect(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Connect(cb, "A", clk); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(cb, "Y", newClk); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		if err := d.Connect(s.Inst, s.Spec().Name, newClk); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if b.Clock <= 0 {
		t.Error("clock power not attributed")
	}
	if b.Clock >= b.Total {
		t.Error("clock power exceeds total")
	}
}

func TestHeteroDeratesChangeLeakage(t *testing.T) {
	d := genPlaced(t, designs.AES, lib12)
	// Split tiers: boundary cells everywhere.
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
	}
	base, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1.0)
	cfg.Hetero = true
	het, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fast cells with slow-tier gate inputs gain +250 % leakage, so
	// hetero leakage must rise.
	if het.Leakage <= base.Leakage {
		t.Errorf("hetero leakage %v should exceed base %v", het.Leakage, base.Leakage)
	}
}

func TestNetSwitchingPower(t *testing.T) {
	d := genPlaced(t, designs.CPU, lib12)
	b, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Memory macro nets (the Table VIII metric) must carry power.
	found := false
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsMacro() {
			continue
		}
		q := d.NetOf(inst, "Q")
		if q != nil && b.NetSwitchingPower(q) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no macro output net carries switching power")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	d := genPlaced(t, designs.AES, lib12)
	if _, err := Analyze(d, DefaultConfig(0)); err == nil {
		t.Error("zero frequency should fail")
	}
}

func TestActivityBoundedOnDeepLogic(t *testing.T) {
	// XOR trees amplify activity; the clamp must keep it bounded.
	d := genPlaced(t, designs.LDPC, lib12)
	b, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// With unbounded XOR doubling, power would blow up by orders of
	// magnitude; sanity-bound total power per cell.
	s := d.ComputeStats()
	perCell := b.Total / float64(s.Cells)
	if perCell > 50 {
		t.Errorf("per-cell power %v µW implausibly high (activity clamp broken?)", perCell)
	}
}
