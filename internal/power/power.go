// Package power analyzes design power the way the paper's methodology
// describes ("fixed input activity factors, and statistical switching
// propagation"): primary-input toggle rates propagate through the logic
// by transition-density rules, and per-instance switching, internal, and
// leakage components accumulate from the library data and the extracted
// wire loads. Heterogeneous boundary cells get the leakage/power derates
// of Tables II/III.
package power

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Config parameterizes one power analysis.
type Config struct {
	// FreqGHz is the operating clock frequency.
	FreqGHz float64
	// InputActivity is the toggle rate (transitions per cycle) assumed at
	// primary inputs.
	InputActivity float64
	// Router supplies wire-cap extraction; nil uses route.New(). A
	// route.Cache here shares extraction with the timing engine.
	Router route.Extractor
	// Hetero enables boundary-cell power derates.
	Hetero bool
	// Derates is the boundary model (DefaultDerates when zero and Hetero
	// is set).
	Derates tech.DerateModel
	// FastTrack identifies the higher-VDD library.
	FastTrack tech.Track
}

// DefaultConfig returns the evaluation defaults (15 % input activity).
func DefaultConfig(freqGHz float64) Config {
	return Config{
		FreqGHz:       freqGHz,
		InputActivity: 0.15,
		FastTrack:     tech.Track12,
	}
}

// Breakdown is the analysis result, in µW.
type Breakdown struct {
	Switching float64 // wire + pin cap charging
	Internal  float64 // cell-internal energy
	Leakage   float64
	Clock     float64 // portion of Total on the clock network
	Total     float64
	// ByTier splits Total across the two dies.
	ByTier [2]float64
	// NetSwitching maps net ID → switching power on that net (µW), kept
	// for the memory-interconnect analysis (Table VIII).
	NetSwitching []float64
	// PerInstance maps instance ID → that cell's total power (µW); the
	// PDN solver distributes these as current sinks.
	PerInstance []float64
}

// clockActivity is the toggle rate of clock nets: two transitions per
// cycle.
const clockActivity = 2.0

// Analyze runs activity propagation and power accumulation.
func Analyze(d *netlist.Design, cfg Config) (*Breakdown, error) {
	if cfg.FreqGHz <= 0 {
		return nil, fmt.Errorf("power: frequency %v must be positive", cfg.FreqGHz)
	}
	if cfg.InputActivity <= 0 {
		cfg.InputActivity = 0.15
	}
	if cfg.Router == nil {
		cfg.Router = route.New()
	}
	if cfg.Hetero && cfg.Derates == (tech.DerateModel{}) {
		cfg.Derates = tech.DefaultDerates()
	}
	if cfg.FastTrack == 0 {
		cfg.FastTrack = tech.Track12
	}
	order, err := sta.TopoOrder(d)
	if err != nil {
		return nil, err
	}

	// ---------- Activity propagation ----------
	// act[netID] is the toggle rate of each net; prob[netID] the static
	// one-probability.
	act := make([]float64, len(d.Nets))
	prob := make([]float64, len(d.Nets))
	for i := range prob {
		prob[i] = 0.5
	}
	for _, n := range d.Nets {
		if n.IsClock {
			act[n.ID] = clockActivity
			continue
		}
		if n.DriverPort != nil {
			act[n.ID] = cfg.InputActivity
		}
	}
	for _, inst := range order {
		out := d.OutputNet(inst)
		if out == nil || out.IsClock {
			continue
		}
		a, p := propagate(d, inst, act, prob)
		act[out.ID] = a
		prob[out.ID] = p
	}

	// ---------- Power accumulation ----------
	b := &Breakdown{
		NetSwitching: make([]float64, len(d.Nets)),
		PerInstance:  make([]float64, len(d.Instances)),
	}
	for _, inst := range order {
		der := derateFor(d, inst, cfg)
		leak := inst.Master.Leakage * der.Leakage
		var sw, internal float64
		if out := d.OutputNet(inst); out != nil {
			a := act[out.ID]
			rc := cfg.Router.Extract(out)
			ctot := rc.WireCap + out.TotalPinCap()
			v := inst.Master.VDD
			if v == 0 {
				v = 0.9
			}
			// fF × V² × toggles/cycle × GHz / 2 → µW.
			sw = 0.5 * ctot * v * v * a * cfg.FreqGHz * der.Power
			internal = inst.Master.InternalEnergy * a * cfg.FreqGHz * der.Power
			b.NetSwitching[out.ID] = sw
		}
		total := sw + internal + leak
		b.PerInstance[inst.ID] = total
		b.Switching += sw
		b.Internal += internal
		b.Leakage += leak
		b.Total += total
		b.ByTier[inst.Tier] += total
		if inst.Master.Function.IsClockCell() {
			b.Clock += total
		}
	}
	return b, nil
}

// propagate applies per-function transition-density rules.
func propagate(d *netlist.Design, inst *netlist.Instance, act, prob []float64) (a, p float64) {
	var ia []float64
	var ip []float64
	for i, pin := range inst.Master.Pins {
		if pin.Dir != cell.DirIn {
			continue
		}
		n := d.NetAt(inst, i)
		if n == nil {
			ia = append(ia, 0)
			ip = append(ip, 0.5)
			continue
		}
		ia = append(ia, act[n.ID])
		ip = append(ip, prob[n.ID])
	}
	get := func(k int) (float64, float64) {
		if k < len(ia) {
			return ia[k], ip[k]
		}
		return 0, 0.5
	}
	a0, p0 := get(0)
	a1, p1 := get(1)
	a2, _ := get(2)

	switch inst.Master.Function {
	case cell.FuncInv:
		return clampAct(a0), 1 - p0
	case cell.FuncBuf, cell.FuncClkBuf, cell.FuncClkInv, cell.FuncLevelSh:
		return clampAct(a0), p0
	case cell.FuncNand2:
		return clampAct(a0*p1 + a1*p0), 1 - p0*p1
	case cell.FuncAnd2:
		return clampAct(a0*p1 + a1*p0), p0 * p1
	case cell.FuncNor2:
		return clampAct(a0*(1-p1) + a1*(1-p0)), (1 - p0) * (1 - p1)
	case cell.FuncOr2:
		return clampAct(a0*(1-p1) + a1*(1-p0)), 1 - (1-p0)*(1-p1)
	case cell.FuncXor2:
		return clampAct(a0 + a1), p0*(1-p1) + p1*(1-p0)
	case cell.FuncXnor2:
		return clampAct(a0 + a1), 1 - (p0*(1-p1) + p1*(1-p0))
	case cell.FuncAoi21, cell.FuncOai21:
		return clampAct(0.6*a0*p1 + 0.6*a1*p0 + 0.4*a2), 0.5
	case cell.FuncMux2:
		// Data activities mix; select toggling adds when inputs differ.
		diff := p0*(1-p1) + p1*(1-p0)
		return clampAct(0.5*(a0+a1) + a2*diff), 0.5*p0 + 0.5*p1
	case cell.FuncDFF:
		// Registered: Q toggles at most once per cycle.
		if a0 > 1 {
			a0 = 1
		}
		return a0, p0
	case cell.FuncMacroRAM:
		return 0.2, 0.5
	default:
		return clampAct(a0), 0.5
	}
}

func clampAct(a float64) float64 {
	if a < 0 {
		return 0
	}
	if a > 2 {
		return 2
	}
	return a
}

// derateFor composes the boundary power derates for an instance.
func derateFor(d *netlist.Design, inst *netlist.Instance, cfg Config) tech.Derate {
	der := tech.Unity()
	if !cfg.Hetero {
		return der
	}
	fast := inst.Master.Track == cfg.FastTrack
	if out := d.OutputNet(inst); out != nil && out.CrossesTiers() {
		der = der.Compose(cfg.Derates.ForOutputBoundary(fast))
	}
	for _, in := range d.InputNets(inst) {
		if in.IsClock {
			continue
		}
		if in.Driver.Valid() && in.Driver.Inst.Tier != inst.Tier {
			der = der.Compose(cfg.Derates.ForInputBoundary(fast))
			break
		}
	}
	return der
}

// NetSwitchingPower returns the switching power of a single net from a
// prior analysis, in µW.
func (b *Breakdown) NetSwitchingPower(n *netlist.Net) float64 {
	if n.ID < len(b.NetSwitching) {
		return b.NetSwitching[n.ID]
	}
	return 0
}
