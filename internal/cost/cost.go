// Package cost implements the paper's die-cost model (Table IV, adapted
// from Ku et al. [10]): wafer cost split between FEOL and BEOL, a 5 % 3-D
// integration penalty, defect-limited die yield with an extra 3-D yield
// degradation factor, and the derived metrics the evaluation reports —
// die cost, cost per cm², PDP, and performance per cost (PPC).
//
// All costs are expressed in units of C', the baseline wafer cost
// (FEOL + 8 metal layers), so results are technology-normalized exactly
// like the paper's Table VI ("Die Cost, 10⁻⁶ C'").
package cost

import (
	"fmt"
	"math"
)

// Model carries the Table IV assumptions.
type Model struct {
	// FEOLFrac is the fraction of C' attributable to the FEOL layer.
	FEOLFrac float64
	// BEOLFracPerLayer is the cost fraction of one metal layer; the
	// baseline has 8, the designs use 6 per tier.
	BEOLFracPerLayer float64
	// SignalLayers is the metal layer count per die/tier.
	SignalLayers int
	// Alpha is the 3-D integration cost premium (α = 0.05 × C').
	Alpha float64
	// WaferDiameterMM is the wafer diameter (300 mm).
	WaferDiameterMM float64
	// DefectDensity is D_w in defects per mm².
	DefectDensity float64
	// WaferYield is κ.
	WaferYield float64
	// YieldDegradation3D is β, the extra multiplicative 3-D yield hit.
	YieldDegradation3D float64
}

// Default returns the paper's Table IV numbers.
func Default() Model {
	return Model{
		FEOLFrac:           0.30,
		BEOLFracPerLayer:   0.11, // 6 metals → 0.66 × C'
		SignalLayers:       6,
		Alpha:              0.05,
		WaferDiameterMM:    300,
		DefectDensity:      0.2,
		WaferYield:         0.95,
		YieldDegradation3D: 0.95,
	}
}

// Validate checks parameter sanity.
func (m Model) Validate() error {
	switch {
	case m.FEOLFrac <= 0 || m.FEOLFrac >= 1:
		return fmt.Errorf("cost: FEOLFrac %v out of (0,1)", m.FEOLFrac)
	case m.BEOLFracPerLayer <= 0:
		return fmt.Errorf("cost: BEOLFracPerLayer %v must be positive", m.BEOLFracPerLayer)
	case m.SignalLayers <= 0:
		return fmt.Errorf("cost: SignalLayers %d must be positive", m.SignalLayers)
	case m.WaferDiameterMM <= 0:
		return fmt.Errorf("cost: wafer diameter %v must be positive", m.WaferDiameterMM)
	case m.DefectDensity < 0:
		return fmt.Errorf("cost: defect density %v must be non-negative", m.DefectDensity)
	case m.WaferYield <= 0 || m.WaferYield > 1:
		return fmt.Errorf("cost: wafer yield %v out of (0,1]", m.WaferYield)
	case m.YieldDegradation3D <= 0 || m.YieldDegradation3D > 1:
		return fmt.Errorf("cost: 3-D yield degradation %v out of (0,1]", m.YieldDegradation3D)
	}
	return nil
}

// WaferArea returns the wafer area in mm².
func (m Model) WaferArea() float64 {
	r := m.WaferDiameterMM / 2
	return math.Pi * r * r
}

// WaferCost2D returns C_2D in units of C': FEOL + SignalLayers metals
// (0.96 C' with the defaults).
func (m Model) WaferCost2D() float64 {
	return m.FEOLFrac + float64(m.SignalLayers)*m.BEOLFracPerLayer
}

// WaferCost3D returns C_3D in units of C': two FEOL layers, two tiers of
// metals, plus the integration premium (1.97 C' with the defaults).
func (m Model) WaferCost3D() float64 {
	return 2*m.FEOLFrac + 2*float64(m.SignalLayers)*m.BEOLFracPerLayer + m.Alpha
}

// DiesPerWafer evaluates formula (1): DPW = A_w/A_d − sqrt(2π·A_w/A_d).
// dieAreaMM2 is the die footprint in mm².
func (m Model) DiesPerWafer(dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 0
	}
	ratio := m.WaferArea() / dieAreaMM2
	dpw := ratio - math.Sqrt(2*math.Pi*ratio)
	if dpw < 0 {
		return 0
	}
	return dpw
}

// Yield2D evaluates formula (2): κ × (1 + A_d·D_w/2)⁻².
func (m Model) Yield2D(dieAreaMM2 float64) float64 {
	t := 1 + dieAreaMM2*m.DefectDensity/2
	return m.WaferYield / (t * t)
}

// Yield3D evaluates formula (3): κ × β × (1 + A_d·D_w/2)⁻². The defect
// term uses the per-tier die area (each tier is manufactured and then
// degraded by the integration step).
func (m Model) Yield3D(dieAreaMM2 float64) float64 {
	return m.Yield2D(dieAreaMM2) * m.YieldDegradation3D
}

// DieCost2D evaluates formulas (4)–(5) for a 2-D die of the given
// footprint (mm²), in units of C'. The paper's formula (5) divides the
// wafer cost by N_GD × Y — i.e. good dies further derated by yield — and
// we reproduce it as written.
func (m Model) DieCost2D(dieAreaMM2 float64) (float64, error) {
	return m.dieCost(dieAreaMM2, m.WaferCost2D(), m.Yield2D(dieAreaMM2))
}

// DieCost3D evaluates the same for a two-tier 3-D die of the given
// per-tier footprint (mm²).
func (m Model) DieCost3D(dieAreaMM2 float64) (float64, error) {
	return m.dieCost(dieAreaMM2, m.WaferCost3D(), m.Yield3D(dieAreaMM2))
}

func (m Model) dieCost(area, waferCost, yield float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if area <= 0 {
		return 0, fmt.Errorf("cost: die area %v must be positive", area)
	}
	dpw := m.DiesPerWafer(area)
	if dpw <= 0 {
		return 0, fmt.Errorf("cost: die area %v mm² yields no dies per wafer", area)
	}
	return waferCost / (dpw * yield * yield), nil
}

// CostPerCm2 returns die cost / total silicon area, the paper's
// technology-cost intensity metric. siAreaMM2 is the *total* silicon
// (footprint × tiers) in mm²; the result is in C' per cm².
func CostPerCm2(dieCost, siAreaMM2 float64) float64 {
	if siAreaMM2 <= 0 {
		return 0
	}
	return dieCost / (siAreaMM2 / 100)
}

// PDP returns the power-delay product in pJ given total power in mW and
// effective delay in ns (the paper: power × (clock period − worst slack)).
func PDP(powerMW, effDelayNS float64) float64 {
	return powerMW * effDelayNS
}

// PPC returns the paper's performance-per-cost figure of merit:
// frequency (GHz) per (power × die cost). "Intuitively, it shows the
// achievable performance per unit of power and cost." The scale matches
// Table VI exactly when power enters in watts and die cost in 10⁻⁶ C'
// (netcard: 1.75 GHz / (0.550 W × 6.16) = 0.517).
func PPC(freqGHz, powerMW, dieCostMicroC float64) float64 {
	if powerMW <= 0 || dieCostMicroC <= 0 {
		return 0
	}
	return freqGHz / (powerMW / 1000 * dieCostMicroC)
}
