package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIVConstants(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2-D wafer: FEOL (0.30) + 6 metals (0.66) = 0.96 C'.
	if got := m.WaferCost2D(); math.Abs(got-0.96) > 1e-9 {
		t.Errorf("WaferCost2D = %v, want 0.96", got)
	}
	// 3-D wafer: 2 FEOL + 12 metals + α = 1.97 C'.
	if got := m.WaferCost3D(); math.Abs(got-1.97) > 1e-9 {
		t.Errorf("WaferCost3D = %v, want 1.97", got)
	}
	// 300 mm wafer area.
	if got := m.WaferArea(); math.Abs(got-math.Pi*150*150) > 1e-6 {
		t.Errorf("WaferArea = %v", got)
	}
}

func TestDiesPerWafer(t *testing.T) {
	m := Default()
	// A 1 mm² die on a 300 mm wafer: Aw/Ad ≈ 70686, edge loss term
	// sqrt(2π·70686) ≈ 666.
	got := m.DiesPerWafer(1.0)
	want := 70685.83 - math.Sqrt(2*math.Pi*70685.83)
	if math.Abs(got-want)/want > 1e-3 {
		t.Errorf("DPW(1mm²) = %v, want ≈%v", got, want)
	}
	// Bigger dies → fewer dies.
	if m.DiesPerWafer(100) >= m.DiesPerWafer(10) {
		t.Error("DPW must decrease with die area")
	}
	if m.DiesPerWafer(0) != 0 || m.DiesPerWafer(-5) != 0 {
		t.Error("degenerate areas must give 0")
	}
}

func TestYields(t *testing.T) {
	m := Default()
	// Tiny die: yield → κ.
	if got := m.Yield2D(1e-9); math.Abs(got-0.95) > 1e-6 {
		t.Errorf("Yield2D(→0) = %v, want κ=0.95", got)
	}
	// 3-D yield = 2-D × β.
	a := 0.5
	if got, want := m.Yield3D(a), m.Yield2D(a)*0.95; math.Abs(got-want) > 1e-12 {
		t.Errorf("Yield3D = %v, want %v", got, want)
	}
	// Yield decreases with area.
	if m.Yield2D(10) >= m.Yield2D(1) {
		t.Error("yield must decrease with area")
	}
}

func TestDieCost(t *testing.T) {
	m := Default()
	// Paper's Table VI scale check: a ≈0.39 mm² footprint CPU die in 3-D
	// costs ≈6×10⁻⁶ C'. Our die area is per-tier footprint ≈0.195 mm².
	c3, err := m.DieCost3D(0.195)
	if err != nil {
		t.Fatal(err)
	}
	if c3 < 2e-6 || c3 > 20e-6 {
		t.Errorf("3-D die cost = %v C', want order 6e-6", c3)
	}
	// 3-D of half-footprint must cost more than 2-D of the full area with
	// the same silicon (integration + yield penalties) — the paper's
	// "cost per cm² shows heterogeneous 3-D is more expensive per area".
	c2, err := m.DieCost2D(0.39)
	if err != nil {
		t.Fatal(err)
	}
	si := 0.39 // total silicon mm² in both cases
	if CostPerCm2(c3, si) <= CostPerCm2(c2, si) {
		t.Errorf("3-D cost/cm² %v should exceed 2-D %v", CostPerCm2(c3, si), CostPerCm2(c2, si))
	}
	// Errors.
	if _, err := m.DieCost2D(0); err == nil {
		t.Error("zero area should fail")
	}
	if _, err := m.DieCost2D(80000); err == nil {
		t.Error("die bigger than wafer should fail")
	}
}

func TestDieCostMonotonicity(t *testing.T) {
	m := Default()
	f := func(a8 uint8) bool {
		a := 0.05 + float64(a8)/255*5 // 0.05..5 mm²
		c1, err1 := m.DieCost2D(a)
		c2, err2 := m.DieCost2D(a * 1.3)
		if err1 != nil || err2 != nil {
			return false
		}
		return c2 > c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Cost increases with defect density too.
	dirty := Default()
	dirty.DefectDensity = 0.5
	c1, _ := m.DieCost2D(1)
	c2, _ := dirty.DieCost2D(1)
	if c2 <= c1 {
		t.Error("cost must increase with defect density")
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.FEOLFrac = 0 },
		func(m *Model) { m.BEOLFracPerLayer = -1 },
		func(m *Model) { m.SignalLayers = 0 },
		func(m *Model) { m.WaferDiameterMM = 0 },
		func(m *Model) { m.DefectDensity = -0.1 },
		func(m *Model) { m.WaferYield = 1.5 },
		func(m *Model) { m.YieldDegradation3D = 0 },
	}
	for i, mut := range cases {
		m := Default()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPDPAndPPC(t *testing.T) {
	// CPU row of Table VI: 188 mW, 0.888 ns → 167 pJ.
	if got := PDP(188, 0.888); math.Abs(got-166.9) > 0.1 {
		t.Errorf("PDP = %v, want ≈167", got)
	}
	// PPC: 1.2 GHz / (188 mW × 6.26e-6... the paper expresses die cost in
	// 10⁻⁶C' units, giving PPC 1.02.
	if got := PPC(1.2, 188, 6.26); math.Abs(got-1.02) > 0.01 {
		t.Errorf("PPC = %v, want ≈1.02", got)
	}
	if PPC(1, 0, 1) != 0 || PPC(1, 1, 0) != 0 {
		t.Error("degenerate PPC must be 0")
	}
	if CostPerCm2(1, 0) != 0 {
		t.Error("degenerate CostPerCm2 must be 0")
	}
}

func TestTableVIDieCostScale(t *testing.T) {
	// Reproduce the Table VI die-cost ordering: netcard (0.384 mm²
	// footprint per two tiers → 0.192 per tier) and CPU (0.390) cost
	// ≈6×10⁻⁶ C'; AES (0.126) ≈ 2×10⁻⁶ C'.
	m := Default()
	get := func(footprint float64) float64 {
		c, err := m.DieCost3D(footprint / 2)
		if err != nil {
			t.Fatal(err)
		}
		return c * 1e6
	}
	netcard, aes, ldpc, cpu := get(0.384), get(0.126), get(0.216), get(0.390)
	if !(aes < ldpc && ldpc < netcard && netcard < cpu) {
		t.Errorf("die-cost ordering broken: aes=%v ldpc=%v netcard=%v cpu=%v", aes, ldpc, netcard, cpu)
	}
	// Order of magnitude matches the paper's 1.97–6.26 × 10⁻⁶ C' range.
	if aes < 0.5 || cpu > 25 {
		t.Errorf("die costs out of scale: aes=%v cpu=%v", aes, cpu)
	}
}
