// Package serve is the flow-as-a-service layer: a long-running TCP
// daemon (cmd/flowd) that serves concurrent flow, incremental-STA, and
// PPAC requests over shared immutable technology and library data, plus
// the matching client (Client, cmd/flowc) and loopback load harness.
//
// The wire protocol reuses internal/db's framing conventions: after an
// 8-byte magic+version handshake in each direction, every message is
// one tag/len/payload/CRC frame (db.WriteFrame/db.ReadFrame), payloads
// encoded with db.Writer/db.Reader, and malformed input surfaces as the
// same typed db.ErrCorrupt/db.ErrVersion/db.ErrTruncated errors the
// design database uses. A connection carries at most one session:
//
//	idle  --OPEN-->  ready  --MUTS/TIMQ-->  ready  --CLOS-->  closed
//	idle  --PPAC-->  idle            (one-shot evaluation, no session)
//
// Requests on a connection are answered strictly in order by a single
// worker goroutine; CNCL is the one out-of-band frame (handled by the
// read loop, it cancels the in-flight request's context). Admission is
// bounded by a par.Limiter session cap — OPEN/PPAC beyond the cap get
// a graceful CodeBusy refusal — and the flows behind admitted sessions
// split the worker budget via par.Budget. Every timing or PPAC payload
// a server produces is byte-identical to the equivalent offline
// sta.Analyze / core.Run result.
package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/db"
)

const (
	// Magic opens the handshake in both directions; the version gate
	// mirrors the design database's.
	Magic = "H3SV"
	// ProtocolVersion is bumped on any incompatible wire change.
	ProtocolVersion = 1
	// DefaultMaxFrame caps a received frame's payload (a design-database
	// upload is the largest legitimate payload).
	DefaultMaxFrame = db.MaxStreamFrame
)

// Request frame tags.
const (
	TagOpen   = "OPEN" // open a session (generate+flow or uploaded design database)
	TagMutate = "MUTS" // apply a batch of SetLoc/SetTier mutations
	TagTiming = "TIMQ" // incremental timing query on the session's Timer
	TagPPAC   = "PPAC" // one-shot full evaluation (fmax search + flow)
	TagPing   = "PING" // liveness probe
	TagCancel = "CNCL" // out-of-band: cancel the in-flight request
	TagClose  = "CLOS" // orderly connection close
)

// Response frame tags.
const (
	TagSession   = "SESS" // OPEN succeeded
	TagMutateRes = "MUTR" // MUTS succeeded
	TagTimingRes = "TIMR" // TIMQ result
	TagPPACRes   = "PPCR" // PPAC result
	TagEvent     = "EVNT" // streamed stage/progress event
	TagError     = "ERRR" // request failed (typed code + message)
	TagPong      = "PONG" // PING reply
	TagBye       = "BYEE" // connection-level shutdown record
)

// Code classifies a protocol-level failure; it rides in every ERRR
// frame so clients recover typed errors across the wire.
type Code uint32

const (
	CodeCorrupt    Code = 1 // unframeable/undecodable input (db.ErrCorrupt)
	CodeVersion    Code = 2 // handshake version mismatch (db.ErrVersion)
	CodeBadRequest Code = 3 // well-framed but semantically invalid request
	CodeState      Code = 4 // request not valid in the session's current state
	CodeBusy       Code = 5 // session cap reached; retry later
	CodeCancelled  Code = 6 // request cancelled (CNCL or client disconnect)
	CodeShutdown   Code = 7 // server is draining
	CodeInternal   Code = 8 // server-side failure (flow error, panic)
)

// Sentinel errors: the server classifies outgoing failures with
// errors.Is against these (and db's), and RemoteError unwraps to them
// so clients can classify with the same sentinels.
var (
	ErrBadRequest = errors.New("serve: bad request")
	ErrState      = errors.New("serve: request not valid in this session state")
	ErrBusy       = errors.New("serve: session capacity exhausted")
	ErrCancelled  = errors.New("serve: request cancelled")
	ErrShutdown   = errors.New("serve: server shutting down")
	ErrInternal   = errors.New("serve: internal server error")
)

// sentinel maps a wire code back to its sentinel error.
func (c Code) sentinel() error {
	switch c {
	case CodeCorrupt:
		return db.ErrCorrupt
	case CodeVersion:
		return db.ErrVersion
	case CodeBadRequest:
		return ErrBadRequest
	case CodeState:
		return ErrState
	case CodeBusy:
		return ErrBusy
	case CodeCancelled:
		return ErrCancelled
	case CodeShutdown:
		return ErrShutdown
	default:
		return ErrInternal
	}
}

// String names the code for logs and error text.
func (c Code) String() string {
	switch c {
	case CodeCorrupt:
		return "corrupt"
	case CodeVersion:
		return "version"
	case CodeBadRequest:
		return "bad-request"
	case CodeState:
		return "state"
	case CodeBusy:
		return "busy"
	case CodeCancelled:
		return "cancelled"
	case CodeShutdown:
		return "shutdown"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code-%d", uint32(c))
	}
}

// codeOf classifies a server-side error into its wire code. Order
// matters: the typed sentinels are checked before the broad fallback.
func codeOf(err error) Code {
	switch {
	case errors.Is(err, db.ErrVersion):
		return CodeVersion
	case errors.Is(err, db.ErrCorrupt):
		return CodeCorrupt
	case errors.Is(err, ErrBusy):
		return CodeBusy
	case errors.Is(err, ErrShutdown):
		return CodeShutdown
	case errors.Is(err, ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CodeCancelled
	case errors.Is(err, ErrState):
		return CodeState
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// RemoteError is a server-reported failure reconstructed client-side
// from an ERRR frame. It unwraps to the matching sentinel, so
// errors.Is(err, serve.ErrBusy) or errors.Is(err, db.ErrCorrupt) work
// across the wire exactly as they would in-process.
type RemoteError struct {
	Code Code
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote %s error: %s", e.Code, e.Msg)
}

func (e *RemoteError) Unwrap() error { return e.Code.sentinel() }

// writeHandshake sends this side's 8-byte magic+version preamble. Both
// sides write first and read second, so the exchange cannot deadlock.
func writeHandshake(w io.Writer) error {
	var hs [8]byte
	copy(hs[:4], Magic)
	binary.LittleEndian.PutUint32(hs[4:], ProtocolVersion)
	_, err := w.Write(hs[:])
	return err
}

// readHandshake validates the peer's preamble, mirroring
// db.ParseHeader's typing: bad magic is ErrCorrupt, a known magic at an
// unknown version is ErrVersion.
func readHandshake(r io.Reader) error {
	var hs [8]byte
	if _, err := io.ReadFull(r, hs[:]); err != nil {
		return db.ErrTruncated
	}
	if string(hs[:4]) != Magic {
		return db.Corruptf("bad protocol magic %q (want %q)", hs[:4], Magic)
	}
	if v := binary.LittleEndian.Uint32(hs[4:]); v != ProtocolVersion {
		return fmt.Errorf("%w: peer speaks protocol v%d, this side v%d", db.ErrVersion, v, ProtocolVersion)
	}
	return nil
}
