package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/flow"
	"repro/internal/par"
)

// Options configures a Server. The zero value serves with the defaults
// noted on each field.
type Options struct {
	// MaxSessions caps concurrently admitted units of heavy work — open
	// sessions plus in-flight PPAC evaluations. An OPEN or PPAC beyond
	// the cap is refused gracefully with CodeBusy (the client may retry)
	// rather than queued. Default 64.
	MaxSessions int
	// Workers is the total intra-flow worker budget, split across
	// admitted sessions with par.Budget so concurrent flows do not
	// oversubscribe the machine. Default GOMAXPROCS.
	Workers int
	// MaxFrame caps a received frame's payload. Default DefaultMaxFrame.
	MaxFrame int
	// CacheDir holds the server's design-database snapshots (first OPEN
	// of a design/config/boundary runs the flow and saves; identical
	// OPENs restore from the file). Empty means a private temp dir,
	// removed on Shutdown.
	CacheDir string
	// Logf, when set, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

// Server is the flowd daemon core: it owns the admission limiter, the
// design/fmax/snapshot caches, and one reader+worker goroutine pair per
// accepted connection.
type Server struct {
	opt Options

	ctx    context.Context
	cancel context.CancelFunc
	admit  *par.Limiter
	wg     sync.WaitGroup

	sessionSeq atomic.Uint64

	mu       sync.Mutex
	lis      net.Listener
	draining bool
	cacheDir string
	ownCache bool
	designs  map[string]*designEntry
	fmaxes   map[string]*fmaxEntry
	snaps    map[string]*snapEntry
}

// New returns an idle Server; call Serve with a listener to start
// accepting.
func New(opt Options) *Server {
	if opt.MaxSessions <= 0 {
		opt.MaxSessions = 64
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxFrame <= 0 {
		opt.MaxFrame = DefaultMaxFrame
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opt:      opt,
		ctx:      ctx,
		cancel:   cancel,
		admit:    par.NewLimiter(opt.MaxSessions),
		cacheDir: opt.CacheDir,
		designs:  make(map[string]*designEntry),
		fmaxes:   make(map[string]*fmaxEntry),
		snaps:    make(map[string]*snapEntry),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// ActiveSessions returns the number of admitted heavy-work units
// currently in flight (open sessions + running PPAC evaluations).
func (s *Server) ActiveSessions() int { return s.admit.Active() }

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ensureCacheDir lazily creates the snapshot cache directory.
func (s *Server) ensureCacheDir() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheDirLocked()
}

// Serve accepts connections on lis until Shutdown. It returns nil after
// an orderly shutdown and the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return ErrShutdown
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			if s.isDraining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// Shutdown drains the server: stop accepting, cancel every in-flight
// request (their flows abort at the next stage boundary), send each
// live connection a BYEE shutdown record, and wait — bounded by ctx —
// for all connection goroutines to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
	s.mu.Lock()
	dir, own := s.cacheDir, s.ownCache
	s.cacheDir, s.ownCache = "", false
	s.mu.Unlock()
	if own && dir != "" {
		os.RemoveAll(dir)
	}
	return nil
}

// frame is one request in flight from the read loop to the worker. A
// non-nil err is the read loop's poison pill: the stream is unframeable
// and the worker must report it and hang up.
type frame struct {
	tag     string
	payload []byte
	err     error
}

// serverConn is one accepted connection: a read loop feeding a request
// queue and a worker draining it. All frame writes happen on the worker
// goroutine (events included — flows run inside the worker's request
// handling), serialized by wmu for safety against future callers.
type serverConn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	// ctx is the connection's lifetime; cancelled by server shutdown,
	// peer disconnect, or worker exit.
	ctx    context.Context
	cancel context.CancelFunc

	reqs chan frame

	wmu      sync.Mutex
	sink     *wireSink
	sess     *session
	holdSlot bool // this conn holds an admit slot (open session)

	// opMu guards opCancel, the in-flight request's cancel hook the
	// read loop fires on an out-of-band CNCL frame.
	opMu     sync.Mutex
	opCancel context.CancelFunc
}

func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(s.ctx)
	c := &serverConn{
		srv:    s,
		nc:     nc,
		br:     bufio.NewReader(nc),
		ctx:    ctx,
		cancel: cancel,
		reqs:   make(chan frame, 16),
	}
	c.sink = &wireSink{emit: func(ev *Event) { c.writeFrame(TagEvent, ev.encode()) }}
	defer cancel()

	// Handshake: both sides write first, read second.
	if err := writeHandshake(nc); err != nil {
		nc.Close()
		return
	}
	if err := readHandshake(c.br); err != nil {
		c.writeFrame(TagError, encodeError(codeOf(err), err.Error()))
		nc.Close()
		return
	}

	s.wg.Add(1)
	go c.readLoop()
	c.workLoop()
}

// readLoop turns the byte stream into queued requests. It owns nothing
// but the reader: cancellation (CNCL) is applied in-band here so it can
// overtake the request it targets, and any framing failure is forwarded
// as a poison frame for the worker to report.
func (c *serverConn) readLoop() {
	defer c.srv.wg.Done()
	// Unblock the worker when the peer goes away, and the queue-send
	// below when the worker goes away.
	defer c.cancel()
	defer close(c.reqs)
	for {
		tag, payload, err := db.ReadFrame(c.br, c.srv.opt.MaxFrame)
		if err != nil {
			// Clean EOF (or a transport error once the conn is dead) just
			// ends the loop; a framing-level failure is reported first.
			if errors.Is(err, db.ErrCorrupt) || errors.Is(err, db.ErrVersion) {
				if c.ctx.Err() != nil {
					return // teardown races a half-read frame; stay quiet
				}
				select {
				case c.reqs <- frame{err: err}:
				case <-c.ctx.Done():
				}
			}
			return
		}
		if tag == TagCancel {
			c.cancelOp()
			continue
		}
		select {
		case c.reqs <- frame{tag: tag, payload: payload}:
		case <-c.ctx.Done():
			return
		}
	}
}

// workLoop answers queued requests strictly in order, one at a time.
func (c *serverConn) workLoop() {
	defer func() {
		c.sink.close()
		c.cancel()
		c.nc.Close()
		if c.sess != nil {
			c.sess.close()
			c.sess = nil
		}
		if c.holdSlot {
			c.srv.admit.Release()
			c.holdSlot = false
		}
	}()
	for {
		select {
		case <-c.ctx.Done():
			if c.srv.isDraining() {
				// The protocol-level shutdown record: in-flight sessions
				// learn the server is going away, not just that the pipe
				// broke.
				c.writeFrame(TagBye, encodeBye("shutdown"))
			}
			return
		case fr, ok := <-c.reqs:
			if !ok {
				return // peer disconnected
			}
			if fr.err != nil {
				c.writeFrame(TagError, encodeError(codeOf(fr.err), fr.err.Error()))
				c.writeFrame(TagBye, encodeBye("protocol error"))
				return
			}
			if c.handle(fr) {
				return
			}
		}
	}
}

// handle answers one request; the return value reports whether the
// connection should close (an orderly CLOS).
func (c *serverConn) handle(fr frame) (closeConn bool) {
	switch fr.tag {
	case TagPing:
		c.writeFrame(TagPong, nil)
		return false
	case TagClose:
		c.writeFrame(TagBye, encodeBye("close"))
		return true
	case TagOpen, TagMutate, TagTiming, TagPPAC:
	default:
		c.respondErr(fmt.Errorf("%w: unknown request tag %q", ErrBadRequest, fr.tag))
		return false
	}

	// Heavy requests run under a per-request context so an out-of-band
	// CNCL (or peer disconnect, or server shutdown — both cancel c.ctx)
	// aborts them at the pipeline's existing cancellation points. The
	// panic shield keeps a handler bug from killing the daemon: it
	// surfaces as a CodeInternal response instead.
	opCtx, opCancel := context.WithCancel(c.ctx)
	c.setOpCancel(opCancel)
	err := flow.Shield("serve", c.label(), fr.tag, func() error {
		switch fr.tag {
		case TagOpen:
			return c.handleOpen(opCtx, fr.payload)
		case TagMutate:
			return c.handleMutate(fr.payload)
		case TagTiming:
			return c.handleTiming(fr.payload)
		default:
			return c.handlePPAC(opCtx, fr.payload)
		}
	})
	c.setOpCancel(nil)
	opCancel()
	if err != nil {
		// During a drain the pipeline reports context cancellation; tell
		// the client the real reason.
		if c.srv.isDraining() && codeOf(err) == CodeCancelled {
			err = fmt.Errorf("%w: %v", ErrShutdown, err)
		}
		c.respondErr(err)
	}
	return false
}

func (c *serverConn) label() string {
	if c.sess != nil {
		return fmt.Sprintf("session-%d", c.sess.id)
	}
	return "idle"
}

func (c *serverConn) setOpCancel(fn context.CancelFunc) {
	c.opMu.Lock()
	c.opCancel = fn
	c.opMu.Unlock()
}

// cancelOp fires the in-flight request's cancel hook (read-loop side of
// CNCL). A CNCL with nothing in flight is a no-op by design: the race
// between a response and a late cancel is unavoidable, so cancellation
// is best-effort and the client must treat a success response as final.
func (c *serverConn) cancelOp() {
	c.opMu.Lock()
	fn := c.opCancel
	c.opMu.Unlock()
	if fn != nil {
		fn()
	}
}

// writeFrame sends one frame; transport errors cancel the connection
// (the peer is gone) rather than propagate — every caller's next step
// is teardown anyway.
func (c *serverConn) writeFrame(tag string, payload []byte) {
	c.wmu.Lock()
	err := db.WriteFrame(c.nc, tag, payload)
	c.wmu.Unlock()
	if err != nil {
		c.cancel()
	}
}

func (c *serverConn) respondErr(err error) {
	code := codeOf(err)
	if code == CodeInternal {
		c.srv.logf("serve: %s: internal error: %v", c.label(), err)
	}
	c.writeFrame(TagError, encodeError(code, err.Error()))
}
