package serve

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

// sessionMutations builds a deterministic batch distinct per (session,
// round) so concurrent sessions drive genuinely different journals.
func sessionMutations(sess, round, cells int) []Mutation {
	batch := make([]Mutation, 4)
	for m := range batch {
		batch[m] = Mutation{
			ID:   int32((sess*211 + round*37 + m*11 + 5) % cells),
			Kind: MutSetLoc,
			X:    float64((sess*13+round*2+m)%101) * 1.5,
			Y:    float64((sess*7+round+m*3)%103) * 1.25,
		}
	}
	return batch
}

// TestConcurrentSessionsRace is the concurrency contract under -race:
// several sessions mutate independent netlist copies while another
// connection runs a full PPAC evaluation, and every session's
// incremental timing stays bit-identical to a fresh offline analysis of
// its own twin.
func TestConcurrentSessionsRace(t *testing.T) {
	_, addr := startServer(t, Options{})
	const sessions = 4
	const rounds = 3
	req := testWorkload

	// One offline twin per session, built up front (they all start from
	// the same boundary state).
	twins := make([]*core.Result, sessions)
	for i := range twins {
		twins[i] = offlineTwin(t, &req)
	}

	var wg sync.WaitGroup
	// The PPAC connection exercises the shared caches while sessions
	// mutate — the read-only sharing this test puts under -race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dialT(t, addr)
		defer cl.Close()
		preq := &PPACRequest{Design: req.Design, Config: req.Config,
			Scale: req.Scale, Seed: req.Seed, FmaxIterations: 2}
		if _, err := cl.RunPPAC(preq, nil); err != nil {
			t.Errorf("concurrent PPAC: %v", err)
		}
	}()

	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			cl := dialT(t, addr)
			defer cl.Close()
			info, err := cl.Open(&req, nil)
			if err != nil {
				t.Errorf("session %d: open: %v", idx, err)
				return
			}
			twin := twins[idx]
			for r := 0; r < rounds; r++ {
				muts := sessionMutations(idx, r, int(info.Cells))
				if _, err := cl.Mutate(muts); err != nil {
					t.Errorf("session %d round %d: mutate: %v", idx, r, err)
					return
				}
				applyOffline(t, twin.Design, muts)
				got, err := cl.Timing()
				if err != nil {
					t.Errorf("session %d round %d: timing: %v", idx, r, err)
					return
				}
				want := analyzeOffline(t, &req, twin)
				if !got.SameAnalysis(want) {
					t.Errorf("session %d round %d: timing %+v != offline %+v", idx, r, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestWireSinkDropsStragglers pins the serve event adapter's straggler
// contract: emits racing close never fire after close returns — the
// generalization of eval.LogSink's post-cancel writer guard onto the
// wire adapter.
func TestWireSinkDropsStragglers(t *testing.T) {
	var mu sync.Mutex
	emitted := 0
	closed := false
	sink := &wireSink{emit: func(*Event) {
		mu.Lock()
		if closed {
			t.Error("emit after close")
		}
		emitted++
		mu.Unlock()
	}}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				sink.StageDone("d", "c", "place", flow.StageMetric{}, nil)
				sink.ConfigDone("d", "2D-12T", nil)
			}
		}(g)
	}
	close(start)
	// Let the race actually develop: require some emits to have landed
	// before closing, so close overlaps live traffic.
	for {
		mu.Lock()
		n := emitted
		mu.Unlock()
		if n >= 100 {
			break
		}
	}
	// close() must be an idempotent barrier: once it returns, no emit —
	// not even one already past the gate check — may still be running.
	sink.close()
	mu.Lock()
	closed = true
	mu.Unlock()
	sink.close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	t.Logf("%d emits before close, 0 after", emitted)
}
