package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/sta"
)

// TestMessageRoundTrips: every payload codec decodes back to the value
// it encoded.
func TestMessageRoundTrips(t *testing.T) {
	open := &OpenRequest{
		Design: "ldpc", Config: "2D-12T", Scale: 0.25, Seed: 7,
		ClockGHz: 1.5, Boundary: "place", Events: true, DB: []byte{1, 2, 3},
	}
	gotOpen, err := decodeOpenRequest(open.encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotOpen.Design != open.Design || gotOpen.Config != open.Config ||
		gotOpen.Scale != open.Scale || gotOpen.Seed != open.Seed ||
		gotOpen.ClockGHz != open.ClockGHz || gotOpen.Boundary != open.Boundary ||
		gotOpen.Events != open.Events || !bytes.Equal(gotOpen.DB, open.DB) {
		t.Fatalf("open round trip: %+v != %+v", gotOpen, open)
	}

	info := &SessionInfo{ID: 42, Cells: 1000, Nets: 900, Boundary: "cts", ClockGHz: 2.5}
	gotInfo, err := decodeSessionInfo(info.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gotInfo != *info {
		t.Fatalf("session info round trip: %+v != %+v", gotInfo, info)
	}

	muts := []Mutation{
		{ID: 3, Kind: MutSetLoc, X: 1.25, Y: -7.5},
		{ID: -1, Name: "u42", Kind: MutSetTier, Tier: 1},
	}
	gotMuts, err := decodeMutations(encodeMutations(muts))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMuts) != len(muts) || gotMuts[0] != muts[0] || gotMuts[1] != muts[1] {
		t.Fatalf("mutations round trip: %+v != %+v", gotMuts, muts)
	}
	if empty, err := decodeMutations(encodeMutations(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty batch round trip: %v, %v", empty, err)
	}

	tr := &TimingResult{
		WNS: -0.125, TNS: -3.5, HoldWNS: 0.01, HoldTNS: 0,
		Endpoints: 900, FailingEndpoints: 12, FailingHoldEndpoints: 0,
		FullUpdates: 1, IncrementalUpdates: 5, NodesReevaluated: 1234,
	}
	gotTR, err := decodeTimingResult(tr.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gotTR != *tr {
		t.Fatalf("timing round trip: %+v != %+v", gotTR, tr)
	}

	ev := &Event{Kind: EvStageDone, Design: "aes", Config: "Hetero-M3D",
		Stage: "place", Wall: 125 * time.Millisecond, Cells: 4096, Err: "boom"}
	gotEv, err := decodeEvent(ev.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gotEv != *ev {
		t.Fatalf("event round trip: %+v != %+v", gotEv, ev)
	}

	re, err := decodeError(encodeError(CodeBusy, "full up"))
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != CodeBusy || re.Msg != "full up" {
		t.Fatalf("error round trip: %+v", re)
	}

	reason, err := decodeBye(encodeBye("shutdown"))
	if err != nil || reason != "shutdown" {
		t.Fatalf("bye round trip: %q, %v", reason, err)
	}
}

// TestDecodersRejectTrailingBytes: every decoder enforces exact-length
// payloads.
func TestDecodersRejectTrailingBytes(t *testing.T) {
	pad := func(b []byte) []byte { return append(append([]byte(nil), b...), 0xEE) }
	open := &OpenRequest{Design: "ldpc"}
	if _, err := decodeOpenRequest(pad(open.encode())); !errors.Is(err, db.ErrCorrupt) {
		t.Errorf("open: %v", err)
	}
	if _, err := decodeTimingResult(pad((&TimingResult{}).encode())); !errors.Is(err, db.ErrCorrupt) {
		t.Errorf("timing: %v", err)
	}
	if _, err := decodeMutations(pad(encodeMutations(nil))); !errors.Is(err, db.ErrCorrupt) {
		t.Errorf("mutations: %v", err)
	}
	if _, err := decodeError(pad(encodeError(CodeBusy, "x"))); !errors.Is(err, db.ErrCorrupt) {
		t.Errorf("error: %v", err)
	}
}

// TestTimingOfAndSameAnalysis pin the projection and the comparison's
// counter-blindness.
func TestTimingOfAndSameAnalysis(t *testing.T) {
	res := &sta.Result{WNS: -1, TNS: -2, HoldWNS: 3, HoldTNS: 0,
		Endpoints: 10, FailingEndpoints: 4, FailingHoldEndpoints: 1}
	a := TimingOf(res)
	if a.WNS != -1 || a.Endpoints != 10 || a.FailingHoldEndpoints != 1 {
		t.Fatalf("TimingOf = %+v", a)
	}
	b := a
	b.FullUpdates, b.IncrementalUpdates = 99, 100
	if !a.SameAnalysis(b) {
		t.Fatal("SameAnalysis must ignore engine counters")
	}
	b.WNS = 0
	if a.SameAnalysis(b) {
		t.Fatal("SameAnalysis must catch an analysis difference")
	}
}

// TestRemoteErrorUnwrap: wire codes reconstruct errors.Is-compatible
// sentinels client-side.
func TestRemoteErrorUnwrap(t *testing.T) {
	cases := []struct {
		code Code
		want error
	}{
		{CodeCorrupt, db.ErrCorrupt},
		{CodeVersion, db.ErrVersion},
		{CodeBadRequest, ErrBadRequest},
		{CodeState, ErrState},
		{CodeBusy, ErrBusy},
		{CodeCancelled, ErrCancelled},
		{CodeShutdown, ErrShutdown},
		{CodeInternal, ErrInternal},
		{Code(99), ErrInternal},
	}
	for _, c := range cases {
		re := &RemoteError{Code: c.code, Msg: "x"}
		if !errors.Is(re, c.want) {
			t.Errorf("code %s does not unwrap to %v", c.code, c.want)
		}
	}
	if got := codeOf(&RemoteError{Code: CodeBusy}); got != CodeBusy {
		t.Errorf("codeOf round trip via sentinel = %v", got)
	}
}

// TestHandshakeVersionGate: a client speaking a future protocol version
// is refused with a typed version error, and garbage instead of a
// handshake is a typed corrupt error.
func TestHandshakeVersionGate(t *testing.T) {
	_, addr := startServer(t, Options{})

	// Future version.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hs [8]byte
	copy(hs[:4], Magic)
	binary.LittleEndian.PutUint32(hs[4:], ProtocolVersion+1)
	if _, err := nc.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	if err := expectServerError(t, nc, CodeVersion); err != nil {
		t.Fatalf("future version: %v", err)
	}

	// Garbage magic.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	if _, err := nc2.Write([]byte("NOPE\x01\x00\x00\x00")); err != nil {
		t.Fatal(err)
	}
	if err := expectServerError(t, nc2, CodeCorrupt); err != nil {
		t.Fatalf("bad magic: %v", err)
	}
}

// expectServerError reads the server's handshake then one ERRR frame
// and checks its code.
func expectServerError(t *testing.T, nc net.Conn, want Code) error {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := readHandshake(nc); err != nil {
		return err
	}
	tag, payload, err := db.ReadFrame(nc, DefaultMaxFrame)
	if err != nil {
		return err
	}
	if tag != TagError {
		t.Fatalf("got frame %s, want ERRR", tag)
	}
	re, err := decodeError(payload)
	if err != nil {
		return err
	}
	if re.Code != want {
		t.Fatalf("code = %s, want %s", re.Code, want)
	}
	return nil
}

// TestUnknownTagKeepsConnection: a well-framed request with an unknown
// tag yields CodeBadRequest and the connection stays up.
func TestUnknownTagKeepsConnection(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.Close()

	if err := cl.writeFrame("WHAT", []byte("?")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.await(TagPong, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown tag: err = %v, want ErrBadRequest", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after unknown tag: %v", err)
	}
}

// TestUnframeableStreamHangsUp: once framing is lost (CRC mismatch),
// the server reports a typed corrupt error, sends its BYEE record, and
// hangs up.
func TestUnframeableStreamHangsUp(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.Close()

	// A frame with a corrupted CRC.
	raw, err := db.AppendFrame(nil, TagPing, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if _, err := cl.nc.Write(raw); err != nil {
		t.Fatal(err)
	}
	_, err = cl.await(TagPong, nil)
	if !errors.Is(err, db.ErrCorrupt) {
		t.Fatalf("corrupt frame: err = %v, want db.ErrCorrupt", err)
	}
	// The next read sees the BYEE protocol-error record (as an
	// ErrShutdown-typed close) or a plain EOF if the teardown won.
	if _, err := cl.await(TagPong, nil); err == nil {
		t.Fatal("connection survived an unframeable stream")
	}
}
