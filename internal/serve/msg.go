package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/sta"
)

// Message payload codecs. Every payload is encoded with db.Writer and
// decoded with the bounds-checked db.Reader, so a hostile payload
// surfaces as db.ErrCorrupt, never a panic — the same contract the
// design-database sections carry. Each decoder requires the payload to
// be fully consumed; trailing bytes are corrupt.

// checkDrained enforces exact-length payloads after a decode.
func checkDrained(r *db.Reader, what string) error {
	if n := r.Remaining(); n != 0 {
		return db.Corruptf("%s: %d trailing bytes", what, n)
	}
	return nil
}

// OpenRequest asks the server to establish a session: materialize the
// named design in the named configuration at a stage boundary and
// attach a persistent incremental sta.Timer to it.
type OpenRequest struct {
	// Design and Config name the workload (designs.All / core.AllConfigs).
	Design string
	Config string
	// Scale and Seed parameterize netlist generation exactly as the
	// evaluation suite does.
	Scale float64
	Seed  int64
	// ClockGHz is the timing target; the session's period is 1/ClockGHz.
	ClockGHz float64
	// Boundary is the stage boundary to open at, one of
	// core.SaveBoundaries(). Boundaries at or past signoff carry a
	// synthesized clock tree; earlier ones analyze against an ideal
	// clock.
	Boundary string
	// Events streams per-stage EVNT frames while the opening flow runs.
	Events bool
	// DB, when non-empty, is a design-database file image (db.MagicDesign)
	// to open instead of generating and running a flow; the flow resumes
	// from the file's saved stage up to Boundary.
	DB []byte
}

func (m *OpenRequest) encode() []byte {
	w := db.NewWriter()
	w.PutString(m.Design)
	w.PutString(m.Config)
	w.PutF64(m.Scale)
	w.PutI64(m.Seed)
	w.PutF64(m.ClockGHz)
	w.PutString(m.Boundary)
	w.PutBool(m.Events)
	w.PutBytes(m.DB)
	return w.Bytes()
}

func decodeOpenRequest(payload []byte) (*OpenRequest, error) {
	r := db.NewReader(payload)
	var m OpenRequest
	var err error
	if m.Design, err = r.String(); err != nil {
		return nil, err
	}
	if m.Config, err = r.String(); err != nil {
		return nil, err
	}
	if m.Scale, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Seed, err = r.I64(); err != nil {
		return nil, err
	}
	if m.ClockGHz, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Boundary, err = r.String(); err != nil {
		return nil, err
	}
	if m.Events, err = r.Bool(); err != nil {
		return nil, err
	}
	if m.DB, err = r.Bytes(); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "open request")
}

// SessionInfo is the SESS response: the established session's identity
// and the materialized netlist's size.
type SessionInfo struct {
	ID       uint64
	Cells    int32
	Nets     int32
	Boundary string
	ClockGHz float64
}

func (m *SessionInfo) encode() []byte {
	w := db.NewWriter()
	w.PutU64(m.ID)
	w.PutI32(m.Cells)
	w.PutI32(m.Nets)
	w.PutString(m.Boundary)
	w.PutF64(m.ClockGHz)
	return w.Bytes()
}

func decodeSessionInfo(payload []byte) (*SessionInfo, error) {
	r := db.NewReader(payload)
	var m SessionInfo
	var err error
	if m.ID, err = r.U64(); err != nil {
		return nil, err
	}
	if m.Cells, err = r.I32(); err != nil {
		return nil, err
	}
	if m.Nets, err = r.I32(); err != nil {
		return nil, err
	}
	if m.Boundary, err = r.String(); err != nil {
		return nil, err
	}
	if m.ClockGHz, err = r.F64(); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "session info")
}

// Mutation kinds.
const (
	MutSetLoc  uint8 = 0 // move an instance to (X, Y)
	MutSetTier uint8 = 1 // reassign an instance to Tier
)

// Mutation is one journaled netlist edit. The target is the instance's
// dense ID when ID >= 0, otherwise its name — the former is what the
// load generator uses, the latter what a human types into flowc.
type Mutation struct {
	ID   int32
	Name string
	Kind uint8
	X, Y float64
	Tier uint8
}

func encodeMutations(muts []Mutation) []byte {
	w := db.NewWriter()
	w.PutU32(uint32(len(muts)))
	for _, m := range muts {
		w.PutI32(m.ID)
		w.PutString(m.Name)
		w.PutU8(m.Kind)
		w.PutF64(m.X)
		w.PutF64(m.Y)
		w.PutU8(m.Tier)
	}
	return w.Bytes()
}

func decodeMutations(payload []byte) ([]Mutation, error) {
	r := db.NewReader(payload)
	n, err := r.Count(26) // per-element floor: i32 + strlen + u8 + 2×f64 + u8
	if err != nil {
		return nil, err
	}
	muts := make([]Mutation, n)
	for i := range muts {
		m := &muts[i]
		if m.ID, err = r.I32(); err != nil {
			return nil, err
		}
		if m.Name, err = r.String(); err != nil {
			return nil, err
		}
		if m.Kind, err = r.U8(); err != nil {
			return nil, err
		}
		if m.X, err = r.F64(); err != nil {
			return nil, err
		}
		if m.Y, err = r.F64(); err != nil {
			return nil, err
		}
		if m.Tier, err = r.U8(); err != nil {
			return nil, err
		}
	}
	return muts, checkDrained(r, "mutation batch")
}

// MutateResult is the MUTR response.
type MutateResult struct {
	// Applied counts the mutations applied (always the full batch — a
	// batch with any invalid entry is rejected atomically).
	Applied int32
}

func (m *MutateResult) encode() []byte {
	w := db.NewWriter()
	w.PutI32(m.Applied)
	return w.Bytes()
}

func decodeMutateResult(payload []byte) (*MutateResult, error) {
	r := db.NewReader(payload)
	var m MutateResult
	var err error
	if m.Applied, err = r.I32(); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "mutate result")
}

// TimingResult is the TIMR response: the session Timer's incremental
// analysis (byte-identical to a fresh offline sta.Analyze of the same
// netlist state) plus the session's cumulative engine counters.
type TimingResult struct {
	WNS, TNS             float64
	HoldWNS, HoldTNS     float64
	Endpoints            int32
	FailingEndpoints     int32
	FailingHoldEndpoints int32
	// Cumulative sta.TimerStats for the session.
	FullUpdates        int64
	IncrementalUpdates int64
	NodesReevaluated   int64
}

// TimingOf projects an analysis result into the wire message (engine
// counters zero). Tests compare a session's response against
// TimingOf(offline result) field-for-field — bit-exact float equality.
func TimingOf(res *sta.Result) TimingResult {
	return TimingResult{
		WNS:                  res.WNS,
		TNS:                  res.TNS,
		HoldWNS:              res.HoldWNS,
		HoldTNS:              res.HoldTNS,
		Endpoints:            int32(res.Endpoints),
		FailingEndpoints:     int32(res.FailingEndpoints),
		FailingHoldEndpoints: int32(res.FailingHoldEndpoints),
	}
}

// SameAnalysis reports whether two timing results carry bit-identical
// analysis fields, ignoring the engine counters (an incremental session
// necessarily counts updates differently from a one-shot analysis).
func (m TimingResult) SameAnalysis(o TimingResult) bool {
	m.FullUpdates, m.IncrementalUpdates, m.NodesReevaluated = 0, 0, 0
	o.FullUpdates, o.IncrementalUpdates, o.NodesReevaluated = 0, 0, 0
	return m == o
}

func (m *TimingResult) encode() []byte {
	w := db.NewWriter()
	w.PutF64(m.WNS)
	w.PutF64(m.TNS)
	w.PutF64(m.HoldWNS)
	w.PutF64(m.HoldTNS)
	w.PutI32(m.Endpoints)
	w.PutI32(m.FailingEndpoints)
	w.PutI32(m.FailingHoldEndpoints)
	w.PutI64(m.FullUpdates)
	w.PutI64(m.IncrementalUpdates)
	w.PutI64(m.NodesReevaluated)
	return w.Bytes()
}

func decodeTimingResult(payload []byte) (*TimingResult, error) {
	r := db.NewReader(payload)
	var m TimingResult
	var err error
	if m.WNS, err = r.F64(); err != nil {
		return nil, err
	}
	if m.TNS, err = r.F64(); err != nil {
		return nil, err
	}
	if m.HoldWNS, err = r.F64(); err != nil {
		return nil, err
	}
	if m.HoldTNS, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Endpoints, err = r.I32(); err != nil {
		return nil, err
	}
	if m.FailingEndpoints, err = r.I32(); err != nil {
		return nil, err
	}
	if m.FailingHoldEndpoints, err = r.I32(); err != nil {
		return nil, err
	}
	if m.FullUpdates, err = r.I64(); err != nil {
		return nil, err
	}
	if m.IncrementalUpdates, err = r.I64(); err != nil {
		return nil, err
	}
	if m.NodesReevaluated, err = r.I64(); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "timing result")
}

// PPACRequest asks for a one-shot full evaluation of one design/config
// unit: the suite's f_max search (on 2D-12T, cached server-side per
// design) followed by a full flow at that frequency.
type PPACRequest struct {
	Design string
	Config string
	Scale  float64
	Seed   int64
	// FmaxIterations overrides the binary-search depth (0 = the
	// evaluation default).
	FmaxIterations int32
	Events         bool
}

func (m *PPACRequest) encode() []byte {
	w := db.NewWriter()
	w.PutString(m.Design)
	w.PutString(m.Config)
	w.PutF64(m.Scale)
	w.PutI64(m.Seed)
	w.PutI32(m.FmaxIterations)
	w.PutBool(m.Events)
	return w.Bytes()
}

func decodePPACRequest(payload []byte) (*PPACRequest, error) {
	r := db.NewReader(payload)
	var m PPACRequest
	var err error
	if m.Design, err = r.String(); err != nil {
		return nil, err
	}
	if m.Config, err = r.String(); err != nil {
		return nil, err
	}
	if m.Scale, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Seed, err = r.I64(); err != nil {
		return nil, err
	}
	if m.FmaxIterations, err = r.I32(); err != nil {
		return nil, err
	}
	if m.Events, err = r.Bool(); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "ppac request")
}

// PPACResult is the PPCR response. The PPAC record crosses the wire in
// its canonical design-database encoding (core.PutPPAC), so "the same
// numbers as offline" is checkable by byte comparison.
type PPACResult struct {
	FmaxGHz float64
	PPAC    *core.PPAC
}

func (m *PPACResult) encode() []byte {
	w := db.NewWriter()
	w.PutF64(m.FmaxGHz)
	pw := db.NewWriter()
	core.PutPPAC(pw, m.PPAC)
	w.PutBytes(pw.Bytes())
	return w.Bytes()
}

func decodePPACResult(payload []byte) (*PPACResult, error) {
	r := db.NewReader(payload)
	var m PPACResult
	var err error
	if m.FmaxGHz, err = r.F64(); err != nil {
		return nil, err
	}
	raw, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	if m.PPAC, err = core.ReadPPAC(db.NewReader(raw)); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "ppac result")
}

// EventKind discriminates EVNT frames.
type EventKind uint8

const (
	EvStageStart EventKind = 0
	EvStageDone  EventKind = 1
	EvFmaxDone   EventKind = 2
	EvConfigDone EventKind = 3
)

// Event is one streamed progress record — the wire projection of
// flow.Sink / eval.EventSink callbacks.
type Event struct {
	Kind   EventKind
	Design string
	Config string
	Stage  string
	Wall   time.Duration
	Cells  int32
	// Value is the kind-dependent scalar: f_max in GHz for EvFmaxDone,
	// WNS in ns for EvConfigDone, zero otherwise.
	Value float64
	// Err carries a failed stage's error text (EvStageDone only).
	Err string
}

func (m *Event) encode() []byte {
	w := db.NewWriter()
	w.PutU8(uint8(m.Kind))
	w.PutString(m.Design)
	w.PutString(m.Config)
	w.PutString(m.Stage)
	w.PutI64(int64(m.Wall))
	w.PutI32(m.Cells)
	w.PutF64(m.Value)
	w.PutString(m.Err)
	return w.Bytes()
}

func decodeEvent(payload []byte) (*Event, error) {
	r := db.NewReader(payload)
	var m Event
	k, err := r.U8()
	if err != nil {
		return nil, err
	}
	m.Kind = EventKind(k)
	if m.Design, err = r.String(); err != nil {
		return nil, err
	}
	if m.Config, err = r.String(); err != nil {
		return nil, err
	}
	if m.Stage, err = r.String(); err != nil {
		return nil, err
	}
	wall, err := r.I64()
	if err != nil {
		return nil, err
	}
	m.Wall = time.Duration(wall)
	if m.Cells, err = r.I32(); err != nil {
		return nil, err
	}
	if m.Value, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Err, err = r.String(); err != nil {
		return nil, err
	}
	return &m, checkDrained(r, "event")
}

// wireError is the ERRR payload.
func encodeError(code Code, msg string) []byte {
	w := db.NewWriter()
	w.PutU32(uint32(code))
	w.PutString(msg)
	return w.Bytes()
}

func decodeError(payload []byte) (*RemoteError, error) {
	r := db.NewReader(payload)
	c, err := r.U32()
	if err != nil {
		return nil, err
	}
	msg, err := r.String()
	if err != nil {
		return nil, err
	}
	if err := checkDrained(r, "error frame"); err != nil {
		return nil, err
	}
	return &RemoteError{Code: Code(c), Msg: msg}, nil
}

// encodeBye / decodeBye carry the BYEE reason ("close" after a client
// CLOS, "shutdown" when the server drains, "protocol error" after
// unrecoverable framing loss).
func encodeBye(reason string) []byte {
	w := db.NewWriter()
	w.PutString(reason)
	return w.Bytes()
}

func decodeBye(payload []byte) (string, error) {
	r := db.NewReader(payload)
	reason, err := r.String()
	if err != nil {
		return "", err
	}
	return reason, checkDrained(r, "bye frame")
}
