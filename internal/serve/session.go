package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/db"
	"repro/internal/designs"
	"repro/internal/flow"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/tech"
)

// TimingConfig is the canonical timing configuration of a served
// session: the exact sta.Config the flow's own sign-off analysis uses
// (core's staConfig recipe) at the session's target frequency. clock is
// the synthesized tree when the session opened at or past the CTS
// boundary, nil for the ideal clock of earlier boundaries. The Router
// is left nil (sta defaults to a fresh extractor); sessions install a
// revision-keyed route.Cache on top, which is result-identical.
//
// Exporting the recipe is what makes "byte-identical to offline"
// testable: a client can rebuild the same netlist state offline, run
// sta.Analyze with this config, and compare bit-for-bit.
func TimingConfig(clockGHz float64, cfg core.ConfigName, clock *cts.Result, workers int) (sta.Config, error) {
	if !(clockGHz > 0) {
		return sta.Config{}, fmt.Errorf("%w: clock %v GHz is not positive", ErrBadRequest, clockGHz)
	}
	c := sta.DefaultConfig(1 / clockGHz)
	if clock != nil {
		c.Latency = clock.LatencyFunc()
	}
	c.Hetero = cfg == core.ConfigHetero
	c.Workers = workers
	return c, nil
}

// session is one connection's live design: a journaled netlist restored
// at a stage boundary with a persistent incremental Timer attached.
type session struct {
	id       uint64
	design   string
	cfg      core.ConfigName
	boundary string
	clockGHz float64
	res      *core.Result
	timer    *sta.Timer
}

func (s *session) close() {
	if s.timer != nil {
		s.timer.Close()
		s.timer = nil
	}
}

// ---- shared immutable data and singleflight caches ----
//
// Three layers, all keyed on the full request parameters and built at
// most once (concurrent requesters wait on the first builder):
//
//	designs — generated source netlists. Read-only inside core.Run
//	          (the evaluation suite shares one across parallel flows),
//	          so one copy serves every session.
//	fmaxes  — per-design 2D-12T f_max searches (the suite's recipe).
//	snaps   — design-database snapshots at a boundary: the first OPEN
//	          runs the flow with SaveDesign and hands its live result
//	          to the session; identical OPENs replay LoadDesign with
//	          StopAfter at the saved stage, which restores state
//	          without running any stage.

type designEntry struct {
	done chan struct{}
	src  *netlist.Design
	err  error
}

type fmaxEntry struct {
	done  chan struct{}
	fmax  float64
	cells int
	err   error
}

type snapEntry struct {
	done chan struct{}
	path string
	err  error
}

func designKey(name string, scale float64, seed int64) string {
	return fmt.Sprintf("%s|%g|%d", name, scale, seed)
}

// lib12 returns the shared 12-track library (immutable; one per
// process is plenty).
var lib12 = cell.NewLibrary(tech.Variant12T())

// designFor returns the cached generated source netlist for a workload,
// generating it on first use.
func (s *Server) designFor(name string, scale float64, seed int64) (*netlist.Design, error) {
	key := designKey(name, scale, seed)
	s.mu.Lock()
	e, ok := s.designs[key]
	if !ok {
		e = &designEntry{done: make(chan struct{})}
		s.designs[key] = e
	}
	s.mu.Unlock()
	if ok {
		<-e.done
		return e.src, e.err
	}
	e.src, e.err = designs.Generate(designs.Name(name), lib12,
		designs.Params{Scale: scale, Seed: seed})
	if e.err != nil {
		e.err = fmt.Errorf("%w: generate %s: %v", ErrBadRequest, name, e.err)
		s.mu.Lock()
		delete(s.designs, key) // do not cache failures
		s.mu.Unlock()
	}
	close(e.done)
	return e.src, e.err
}

// fmaxFor returns the cached 2D-12T f_max of a workload, searching on
// first use with exactly the evaluation suite's recipe so a served PPAC
// reproduces cmd/ppac's numbers.
func (s *Server) fmaxFor(ctx context.Context, src *netlist.Design, req *PPACRequest, events flow.Sink, workers int) (float64, int, error) {
	key := fmt.Sprintf("%s|%d", designKey(req.Design, req.Scale, req.Seed), req.FmaxIterations)
	s.mu.Lock()
	e, ok := s.fmaxes[key]
	if !ok {
		e = &fmaxEntry{done: make(chan struct{})}
		s.fmaxes[key] = e
	}
	s.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			return e.fmax, e.cells, e.err
		case <-ctx.Done():
			return 0, 0, ctx.Err()
		}
	}
	fopt := core.DefaultFmaxOptions()
	if req.FmaxIterations > 0 {
		fopt.Iterations = int(req.FmaxIterations)
	}
	fopt.Flow.Seed = req.Seed
	fopt.Flow.Events = events
	fopt.Flow.FlowWorkers = workers
	e.fmax, e.err = core.FindFmax(ctx, src, core.Config2D12T, fopt)
	if e.err == nil {
		e.cells = src.ComputeStats().Cells
	} else {
		s.mu.Lock()
		delete(s.fmaxes, key) // a cancelled search must not poison the cache
		s.mu.Unlock()
	}
	close(e.done)
	return e.fmax, e.cells, e.err
}

// sessionOptions is the option set every session flow runs under —
// DefaultOptions plus the request's seed. Keeping it centralized
// guarantees the save and load legs fingerprint-match and that an
// offline core.Run with the same recipe reproduces the session state.
func sessionOptions(req *OpenRequest, workers int) core.Options {
	o := core.DefaultOptions(req.ClockGHz)
	o.Seed = req.Seed
	o.FlowWorkers = workers
	return o
}

func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		default:
			return '+'
		}
	}, key)
}

// snapshotFor materializes the session state for an OPEN without an
// uploaded database. The first opener runs the flow to the boundary
// (saving a snapshot as it passes) and returns its live result; later
// identical opens pay only the LoadDesign restore.
func (s *Server) snapshotFor(ctx context.Context, req *OpenRequest, src *netlist.Design, events flow.Sink, workers int) (*core.Result, error) {
	cfg := core.ConfigName(req.Config)
	key := fmt.Sprintf("%s|%s|%g|%s", designKey(req.Design, req.Scale, req.Seed), req.Config, req.ClockGHz, req.Boundary)
	s.mu.Lock()
	e, ok := s.snaps[key]
	if !ok {
		dir, err := s.cacheDirLocked()
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		e = &snapEntry{done: make(chan struct{}), path: filepath.Join(dir, sanitizeKey(key)+".db")}
		s.snaps[key] = e
	}
	s.mu.Unlock()

	if !ok {
		// First opener: flow to the boundary, saving the snapshot.
		opt := sessionOptions(req, workers)
		opt.Events = events
		opt.SaveDesign = e.path
		opt.SaveAfter = req.Boundary
		opt.StopAfter = req.Boundary
		res, err := core.Run(ctx, src, cfg, opt)
		if err != nil {
			e.err = err
			s.mu.Lock()
			delete(s.snaps, key) // let a later OPEN retry after a cancel
			s.mu.Unlock()
			close(e.done)
			return nil, err
		}
		close(e.done)
		return res, nil
	}

	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.err != nil {
		return nil, e.err
	}
	// Restore leg: StopAfter equals the file's saved stage, so zero
	// stages run — the load materializes the saved state directly.
	opt := sessionOptions(req, workers)
	opt.LoadDesign = e.path
	opt.StopAfter = req.Boundary
	return core.Run(ctx, src, cfg, opt)
}

// cacheDirLocked is ensureCacheDir for callers already holding s.mu.
func (s *Server) cacheDirLocked() (string, error) {
	if s.cacheDir != "" {
		// A configured directory need not exist yet (flowd -cache on a
		// fresh path); create it on first use.
		if err := os.MkdirAll(s.cacheDir, 0o755); err != nil {
			return "", fmt.Errorf("serve: snapshot cache: %w", err)
		}
		return s.cacheDir, nil
	}
	dir, err := os.MkdirTemp("", "flowd-cache-")
	if err != nil {
		return "", fmt.Errorf("serve: snapshot cache: %w", err)
	}
	s.cacheDir, s.ownCache = dir, true
	return dir, nil
}

// ---- request validation ----

func validConfig(name string) (core.ConfigName, error) {
	for _, c := range core.AllConfigs {
		if string(c) == name {
			return c, nil
		}
	}
	return "", fmt.Errorf("%w: unknown configuration %q", ErrBadRequest, name)
}

func validDesign(name string) error {
	for _, d := range designs.All {
		if string(d) == name {
			return nil
		}
	}
	return fmt.Errorf("%w: unknown design %q", ErrBadRequest, name)
}

func validBoundary(name string) error {
	for _, b := range core.SaveBoundaries() {
		if b == name {
			return nil
		}
	}
	return fmt.Errorf("%w: boundary %q is not one of %s",
		ErrBadRequest, name, strings.Join(core.SaveBoundaries(), ", "))
}

func validWorkload(design string, scale float64, seed int64, clockGHz float64) error {
	if err := validDesign(design); err != nil {
		return err
	}
	if !(scale > 0 && scale <= 4) {
		return fmt.Errorf("%w: scale %v out of range (0, 4]", ErrBadRequest, scale)
	}
	if seed <= 0 {
		return fmt.Errorf("%w: seed %d must be positive", ErrBadRequest, seed)
	}
	if clockGHz != 0 && !(clockGHz > 0.01 && clockGHz < 100) {
		return fmt.Errorf("%w: clock %v GHz out of range", ErrBadRequest, clockGHz)
	}
	return nil
}

// ---- request handlers (worker goroutine only) ----

func (c *serverConn) events(want bool) flow.Sink {
	if !want {
		return nil
	}
	return c.sink
}

func (c *serverConn) handleOpen(ctx context.Context, payload []byte) error {
	if c.sess != nil {
		return fmt.Errorf("%w: connection already holds session %d", ErrState, c.sess.id)
	}
	req, err := decodeOpenRequest(payload)
	if err != nil {
		return err
	}
	cfg, err := validConfig(req.Config)
	if err != nil {
		return err
	}
	if err := validWorkload(req.Design, req.Scale, req.Seed, req.ClockGHz); err != nil {
		return err
	}
	if !(req.ClockGHz > 0) {
		return fmt.Errorf("%w: clock %v GHz is not positive", ErrBadRequest, req.ClockGHz)
	}
	if err := validBoundary(req.Boundary); err != nil {
		return err
	}

	if !c.srv.admit.TryAcquire() {
		return fmt.Errorf("%w: %d of %d session slots in use",
			ErrBusy, c.srv.admit.Active(), c.srv.admit.Cap())
	}
	// The slot is released at connection teardown once the session is
	// established (holdSlot); until then any error path gives it back.
	defer func() {
		if !c.holdSlot {
			c.srv.admit.Release()
		}
	}()

	workers := par.Budget(c.srv.opt.Workers, c.srv.admit.Active())
	events := c.events(req.Events)

	src, err := c.srv.designFor(req.Design, req.Scale, req.Seed)
	if err != nil {
		return err
	}

	var res *core.Result
	if len(req.DB) > 0 {
		res, err = c.srv.openUpload(ctx, req, src, events, workers)
	} else {
		res, err = c.srv.snapshotFor(ctx, req, src, events, workers)
	}
	if err != nil {
		if errors.Is(err, core.ErrOptionsMismatch) {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return err
	}

	scfg, err := TimingConfig(req.ClockGHz, cfg, res.Clock, workers)
	if err != nil {
		return err
	}
	scfg.Router = route.NewCache(route.New(), res.Design)
	timer, err := sta.NewTimer(res.Design, scfg)
	if err != nil {
		return fmt.Errorf("serve: attach timer: %w", err)
	}

	c.sess = &session{
		id:       c.srv.sessionSeq.Add(1),
		design:   req.Design,
		cfg:      cfg,
		boundary: req.Boundary,
		clockGHz: req.ClockGHz,
		res:      res,
		timer:    timer,
	}
	c.holdSlot = true

	stats := res.Design.ComputeStats()
	info := SessionInfo{
		ID:       c.sess.id,
		Cells:    int32(stats.Cells),
		Nets:     int32(stats.Nets),
		Boundary: req.Boundary,
		ClockGHz: req.ClockGHz,
	}
	c.writeFrame(TagSession, info.encode())
	return nil
}

// openUpload materializes a session from a client-supplied design
// database image: the flow resumes from the file's saved stage and
// stops at the requested boundary (zero stages when they coincide).
func (s *Server) openUpload(ctx context.Context, req *OpenRequest, src *netlist.Design, events flow.Sink, workers int) (*core.Result, error) {
	dir, err := s.ensureCacheDir()
	if err != nil {
		return nil, err
	}
	if err := core.VerifyDesignFile(req.DB); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, "upload-*.db")
	if err != nil {
		return nil, fmt.Errorf("serve: stage upload: %w", err)
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(req.DB); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: stage upload: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("serve: stage upload: %w", err)
	}
	opt := sessionOptions(req, workers)
	opt.Events = events
	opt.LoadDesign = f.Name()
	opt.StopAfter = req.Boundary
	return core.Run(ctx, src, core.ConfigName(req.Config), opt)
}

func (c *serverConn) handleMutate(payload []byte) error {
	if c.sess == nil {
		return fmt.Errorf("%w: no open session (send OPEN first)", ErrState)
	}
	muts, err := decodeMutations(payload)
	if err != nil {
		return err
	}
	d := c.sess.res.Design
	tiers := c.sess.cfg.Tiers()

	// Validate the whole batch before touching the journal: a rejected
	// batch leaves the session's netlist exactly as it was.
	insts := make([]*netlist.Instance, len(muts))
	for i, m := range muts {
		var inst *netlist.Instance
		switch {
		case m.Name != "":
			if inst = d.Instance(m.Name); inst == nil {
				return fmt.Errorf("%w: mutation %d: no instance named %q", ErrBadRequest, i, m.Name)
			}
		case m.ID >= 0 && int(m.ID) < len(d.Instances):
			inst = d.Instances[m.ID]
		default:
			return fmt.Errorf("%w: mutation %d: instance ID %d out of range [0, %d)",
				ErrBadRequest, i, m.ID, len(d.Instances))
		}
		switch m.Kind {
		case MutSetLoc:
		case MutSetTier:
			if int(m.Tier) >= tiers {
				return fmt.Errorf("%w: mutation %d: tier %d invalid for %d-tier config %s",
					ErrBadRequest, i, m.Tier, tiers, c.sess.cfg)
			}
		default:
			return fmt.Errorf("%w: mutation %d: unknown kind %d", ErrBadRequest, i, m.Kind)
		}
		insts[i] = inst
	}
	for i, m := range muts {
		switch m.Kind {
		case MutSetLoc:
			insts[i].SetLoc(geom.Point{X: m.X, Y: m.Y})
		case MutSetTier:
			insts[i].SetTier(tech.Tier(m.Tier))
		}
	}
	res := MutateResult{Applied: int32(len(muts))}
	c.writeFrame(TagMutateRes, res.encode())
	return nil
}

func (c *serverConn) handleTiming(payload []byte) error {
	if c.sess == nil {
		return fmt.Errorf("%w: no open session (send OPEN first)", ErrState)
	}
	if len(payload) != 0 {
		return db.Corruptf("timing query carries %d unexpected payload bytes", len(payload))
	}
	res, err := c.sess.timer.Update()
	if err != nil {
		return fmt.Errorf("serve: timing update: %w", err)
	}
	out := TimingOf(res)
	st := c.sess.timer.Stats()
	out.FullUpdates = int64(st.FullUpdates)
	out.IncrementalUpdates = int64(st.IncrementalUpdates)
	out.NodesReevaluated = int64(st.NodesReevaluated)
	c.writeFrame(TagTimingRes, out.encode())
	return nil
}

func (c *serverConn) handlePPAC(ctx context.Context, payload []byte) error {
	if c.sess != nil {
		return fmt.Errorf("%w: PPAC is a one-shot request; this connection holds session %d",
			ErrState, c.sess.id)
	}
	req, err := decodePPACRequest(payload)
	if err != nil {
		return err
	}
	cfg, err := validConfig(req.Config)
	if err != nil {
		return err
	}
	if err := validWorkload(req.Design, req.Scale, req.Seed, 0); err != nil {
		return err
	}
	if req.FmaxIterations < 0 || req.FmaxIterations > 32 {
		return fmt.Errorf("%w: fmax iterations %d out of range [0, 32]", ErrBadRequest, req.FmaxIterations)
	}

	if !c.srv.admit.TryAcquire() {
		return fmt.Errorf("%w: %d of %d session slots in use",
			ErrBusy, c.srv.admit.Active(), c.srv.admit.Cap())
	}
	defer c.srv.admit.Release()

	workers := par.Budget(c.srv.opt.Workers, c.srv.admit.Active())
	events := c.events(req.Events)

	src, err := c.srv.designFor(req.Design, req.Scale, req.Seed)
	if err != nil {
		return err
	}
	fmax, cells, err := c.srv.fmaxFor(ctx, src, req, events, workers)
	if err != nil {
		return err
	}
	if events != nil {
		c.sink.FmaxDone(req.Design, cells, fmax)
	}

	// The evaluation suite's exact flow recipe at the searched f_max —
	// this is what makes the served PPAC byte-identical to cmd/ppac's.
	o := core.DefaultOptions(fmax)
	o.Seed = req.Seed
	o.Events = events
	o.FlowWorkers = workers
	res, err := core.Run(ctx, src, cfg, o)
	if err != nil {
		return err
	}
	if events != nil {
		c.sink.ConfigDone(req.Design, cfg, res.PPAC)
	}
	out := PPACResult{FmaxGHz: fmax, PPAC: res.PPAC}
	c.writeFrame(TagPPACRes, out.encode())
	return nil
}
