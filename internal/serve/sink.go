package serve

import (
	"repro/internal/core"
	"repro/internal/flow"
)

// wireSink adapts the pipeline's event callbacks (flow.Sink extended by
// eval.EventSink's fmax/config completions) onto a connection: every
// callback becomes one EVNT frame. The flow engine may deliver final
// stage events after the request that ran the flow was cancelled — or
// after the peer vanished — so every emit runs under a flow.Gate that
// the connection closes at teardown: post-close stragglers are dropped
// race-safely, exactly like eval.LogSink's writer guard.
type wireSink struct {
	gate flow.Gate
	// emit writes one EVNT frame; called only while the gate is open.
	emit func(*Event)
}

func (s *wireSink) event(ev *Event) {
	s.gate.Do(func() { s.emit(ev) })
}

// close drops all subsequent events. Idempotent; returns only after any
// in-flight emit finished.
func (s *wireSink) close() { s.gate.Close() }

// StageStart implements flow.Sink.
func (s *wireSink) StageStart(design, config, stage string) {
	s.event(&Event{Kind: EvStageStart, Design: design, Config: config, Stage: stage})
}

// StageDone implements flow.Sink.
func (s *wireSink) StageDone(design, config, stage string, m flow.StageMetric, err error) {
	ev := &Event{
		Kind:   EvStageDone,
		Design: design,
		Config: config,
		Stage:  stage,
		Wall:   m.Wall,
		Cells:  int32(m.Cells),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.event(ev)
}

// FmaxDone implements eval.EventSink.
func (s *wireSink) FmaxDone(design string, cells int, fmaxGHz float64) {
	s.event(&Event{Kind: EvFmaxDone, Design: design, Cells: int32(cells), Value: fmaxGHz})
}

// ConfigDone implements eval.EventSink.
func (s *wireSink) ConfigDone(design string, config core.ConfigName, p *core.PPAC) {
	ev := &Event{Kind: EvConfigDone, Design: design, Config: string(config)}
	if p != nil {
		ev.Cells = int32(p.Cells)
		ev.Value = p.WNS
	}
	s.event(ev)
}
