package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/db"
)

// startFuzzServer runs one shared server for all of a fuzz target's
// iterations. The iteration body dials fresh connections, so a prior
// input's hangup never poisons the next.
func startFuzzServer(f *testing.F) string {
	f.Helper()
	dir, err := os.MkdirTemp("", "serve-fuzz-*")
	if err != nil {
		f.Fatal(err)
	}
	s := New(Options{CacheDir: dir, MaxSessions: 8})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(lis) }()
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			f.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			f.Errorf("Serve returned %v", err)
		}
		os.RemoveAll(dir)
	})
	return lis.Addr().String()
}

// drainServer reads everything the server sends until it hangs up or
// goes quiet, checking each frame is a known response type that
// decodes. Any server panic crashes the in-process test binary, which
// is the fuzz failure signal.
func drainServer(t *testing.T, nc net.Conn, br io.Reader) {
	t.Helper()
	for {
		// Short: a server correctly ignoring garbage goes quiet, and
		// that silence is the common case — don't stall the fuzz loop.
		nc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		tag, payload, err := db.ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			// EOF/reset (server hung up), a timeout (server correctly
			// ignoring garbage), or a half-written frame cut by the
			// server's close are all acceptable ends of the stream.
			return
		}
		switch tag {
		case TagSession:
			_, err = decodeSessionInfo(payload)
		case TagMutateRes:
			_, err = decodeMutateResult(payload)
		case TagTimingRes:
			_, err = decodeTimingResult(payload)
		case TagPPACRes:
			_, err = decodePPACResult(payload)
		case TagEvent:
			_, err = decodeEvent(payload)
		case TagError:
			var re *RemoteError
			re, err = decodeError(payload)
			if err == nil && re.Code.String() == "unknown" {
				t.Fatalf("server sent unregistered error code %d", re.Code)
			}
		case TagPong:
			if len(payload) != 0 {
				t.Fatalf("PONG with %d payload bytes", len(payload))
			}
		case TagBye:
			_, err = decodeBye(payload)
		default:
			t.Fatalf("server sent unknown frame tag %q", tag)
		}
		if err != nil {
			t.Fatalf("server sent undecodable %s frame: %v", tag, err)
		}
	}
}

// FuzzWireDecode throws arbitrary bytes at a live server directly after
// the handshake: whatever arrives, the server must never panic and must
// only ever answer with well-formed frames carrying registered error
// codes.
func FuzzWireDecode(f *testing.F) {
	addr := startFuzzServer(f)

	f.Add([]byte{})
	f.Add([]byte("garbage that is not a frame"))
	if ping, err := db.AppendFrame(nil, TagPing, nil); err == nil {
		f.Add(ping)
		// A valid frame followed by trailing garbage.
		f.Add(append(append([]byte(nil), ping...), 0xde, 0xad, 0xbe, 0xef))
		// A corrupted copy of a valid frame.
		bad := append([]byte(nil), ping...)
		bad[len(bad)-1] ^= 0xff
		f.Add(bad)
	}
	if open, err := db.AppendFrame(nil, TagOpen, (&OpenRequest{Design: "x"}).encode()); err == nil {
		f.Add(open)
	}
	// An oversized length prefix.
	f.Add([]byte{'P', 'I', 'N', 'G', 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial:", err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(10 * time.Second))
		if err := writeHandshake(nc); err != nil {
			return
		}
		if err := readHandshake(nc); err != nil {
			t.Fatalf("handshake: %v", err)
		}
		nc.Write(data)
		drainServer(t, nc, nc)
	})
}

// Script opcodes for FuzzSessionScript: each input byte drives one
// protocol operation against a live session connection.
const (
	opPing = iota
	opOpen
	opMutate
	opTiming
	opCancel
	opClose
	opUnknownTag
	opBadPayload
	opCount
)

// FuzzSessionScript drives fuzzed request sequences through the client
// codec against a live server: any interleaving of opens, mutations,
// timing queries, cancels and malformed frames must yield typed
// protocol errors — never a panic, never an undecodable response.
func FuzzSessionScript(f *testing.F) {
	addr := startFuzzServer(f)

	f.Add([]byte{opOpen, opTiming, opMutate, opTiming, opClose})
	f.Add([]byte{opTiming, opMutate, opOpen, opOpen, opCancel})
	f.Add([]byte{opOpen, opBadPayload, opPing})
	f.Add([]byte{opUnknownTag, opPing, opOpen, opUnknownTag, opTiming})
	f.Add([]byte{opClose, opClose})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 16 {
			script = script[:16]
		}
		cl, err := Dial(addr)
		if err != nil {
			t.Skip("dial:", err)
		}
		defer cl.nc.Close()
		// Every op bounds its round-trip; the tiny cached workload keeps
		// real opens fast, so a stall here is a server hang — a bug.
		deadline := func() { cl.nc.SetDeadline(time.Now().Add(60 * time.Second)) }

		checkErr := func(op string, err error) bool {
			if err == nil {
				return true
			}
			var re *RemoteError
			if errors.As(err, &re) {
				return true // typed protocol error: the contract
			}
			if errors.Is(err, ErrShutdown) {
				return false // server hung up with its BYEE record
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("%s: server went silent (possible hang)", op)
			}
			// Transport-level EOF/reset after the server hung up on a
			// protocol error is fine too; anything else is a fuzz find.
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, net.ErrClosed) || isConnReset(err) {
				return false
			}
			if errors.Is(err, db.ErrCorrupt) || errors.Is(err, db.ErrTruncated) {
				return false // our own reader hit the server's close mid-frame
			}
			t.Fatalf("%s: untyped error %v", op, err)
			return false
		}

		req := testWorkload
		for _, op := range script {
			deadline()
			switch op % opCount {
			case opPing:
				if !checkErr("ping", cl.Ping()) {
					return
				}
			case opOpen:
				_, err := cl.Open(&req, nil)
				if !checkErr("open", err) {
					return
				}
			case opMutate:
				_, err := cl.Mutate([]Mutation{{ID: int32(op), Kind: MutSetLoc, X: 1, Y: 2}})
				if !checkErr("mutate", err) {
					return
				}
			case opTiming:
				_, err := cl.Timing()
				if !checkErr("timing", err) {
					return
				}
			case opCancel:
				if err := cl.Cancel(); err != nil {
					return
				}
			case opClose:
				cl.Close()
				return
			case opUnknownTag:
				if err := cl.writeFrame("ZZZZ", []byte{op}); err != nil {
					return
				}
				_, err := cl.await(TagPong, nil)
				if !checkErr("unknown-tag", err) {
					return
				}
			case opBadPayload:
				// A well-framed request whose payload does not decode.
				if err := cl.writeFrame(TagOpen, []byte{0xff, 0xff}); err != nil {
					return
				}
				_, err := cl.await(TagSession, nil)
				if !checkErr("bad-payload", err) {
					return
				}
			}
		}
		cl.Close()
	})
}

// isConnReset matches the platform's connection-reset/broken-pipe
// errors without importing syscall directly into the contract.
func isConnReset(err error) bool {
	var ne *net.OpError
	return errors.As(err, &ne)
}
