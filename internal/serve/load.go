package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions drives RunLoad, the loopback load harness: Sessions
// session lifecycles (dial, OPEN, Rounds × [MUTS + TIMQ], CLOS) spread
// over Concurrency worker goroutines against one workload.
type LoadOptions struct {
	Addr string
	// Sessions is the total session count (default 500).
	Sessions int
	// Concurrency is the number of sessions in flight at once (default
	// 32). The server's MaxSessions must be at least this for a
	// zero-refusal run.
	Concurrency int
	// Rounds is the mutate+timing round count per session (default 3).
	Rounds int
	// MutationsPerRound sizes each MUTS batch (default 4).
	MutationsPerRound int

	// The workload every session opens (defaults: ldpc / 2D-12T /
	// scale 0.05 / seed 1 / 1 GHz / place boundary).
	Design   string
	Config   string
	Scale    float64
	Seed     int64
	ClockGHz float64
	Boundary string
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Sessions <= 0 {
		o.Sessions = 500
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 32
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.MutationsPerRound <= 0 {
		o.MutationsPerRound = 4
	}
	if o.Design == "" {
		o.Design = "ldpc"
	}
	if o.Config == "" {
		o.Config = "2D-12T"
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ClockGHz == 0 {
		o.ClockGHz = 1.0
	}
	if o.Boundary == "" {
		o.Boundary = "place"
	}
	return o
}

// LatencyStats summarizes one operation's latency distribution.
type LatencyStats struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"-"`
	P99   time.Duration `json:"-"`
	Max   time.Duration `json:"-"`
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// durations by the nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func summarize(samples []time.Duration) LatencyStats {
	s := LatencyStats{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = percentile(sorted, 50)
	s.P99 = percentile(sorted, 99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// LoadReport is RunLoad's result: per-operation latency distributions,
// throughput, and the error tally (which a healthy run leaves at zero).
type LoadReport struct {
	Opt      LoadOptions
	Wall     time.Duration
	Ops      int
	OpsPerS  float64
	Sessions int

	Open   LatencyStats
	Mutate LatencyStats
	Timing LatencyStats
	Close  LatencyStats

	// Errors counts failed operations; FirstErrors keeps the first few
	// messages for diagnosis.
	Errors      int
	FirstErrors []string
}

// RunLoad drives the harness against a listening server and aggregates
// the report. Session workloads are identical (exercising the server's
// snapshot cache exactly as a fleet of interactive clients would);
// mutation targets and coordinates vary deterministically per session
// and round, so the journals and timing queries differ session to
// session.
func RunLoad(ctx context.Context, opt LoadOptions) (*LoadReport, error) {
	opt = opt.withDefaults()

	var (
		mu     sync.Mutex
		rep    = LoadReport{Opt: opt}
		opens  []time.Duration
		muts   []time.Duration
		tims   []time.Duration
		closes []time.Duration
	)
	fail := func(err error) {
		mu.Lock()
		rep.Errors++
		if len(rep.FirstErrors) < 5 {
			rep.FirstErrors = append(rep.FirstErrors, err.Error())
		}
		mu.Unlock()
	}
	record := func(bucket *[]time.Duration, d time.Duration) {
		mu.Lock()
		*bucket = append(*bucket, d)
		mu.Unlock()
	}

	runSession := func(idx int) {
		cl, err := Dial(opt.Addr)
		if err != nil {
			fail(fmt.Errorf("session %d: %w", idx, err))
			return
		}
		defer cl.Close()

		t0 := time.Now()
		info, err := cl.Open(&OpenRequest{
			Design:   opt.Design,
			Config:   opt.Config,
			Scale:    opt.Scale,
			Seed:     opt.Seed,
			ClockGHz: opt.ClockGHz,
			Boundary: opt.Boundary,
		}, nil)
		if err != nil {
			fail(fmt.Errorf("session %d: open: %w", idx, err))
			return
		}
		record(&opens, time.Since(t0))

		for round := 0; round < opt.Rounds; round++ {
			batch := make([]Mutation, opt.MutationsPerRound)
			for m := range batch {
				// Deterministic per (session, round, slot): distinct
				// instances and coordinates without any shared RNG.
				id := int32((idx*131 + round*17 + m*7) % int(info.Cells))
				batch[m] = Mutation{
					ID:   id,
					Kind: MutSetLoc,
					X:    float64((idx+round+m)%97) * 1.25,
					Y:    float64((idx*3+round*5+m)%89) * 1.25,
				}
			}
			t0 = time.Now()
			if _, err := cl.Mutate(batch); err != nil {
				fail(fmt.Errorf("session %d: mutate round %d: %w", idx, round, err))
				return
			}
			record(&muts, time.Since(t0))

			t0 = time.Now()
			if _, err := cl.Timing(); err != nil {
				fail(fmt.Errorf("session %d: timing round %d: %w", idx, round, err))
				return
			}
			record(&tims, time.Since(t0))
		}

		t0 = time.Now()
		if err := cl.Close(); err != nil {
			fail(fmt.Errorf("session %d: close: %w", idx, err))
			return
		}
		record(&closes, time.Since(t0))
	}

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= opt.Sessions {
					return
				}
				runSession(idx)
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep.Open = summarize(opens)
	rep.Mutate = summarize(muts)
	rep.Timing = summarize(tims)
	rep.Close = summarize(closes)
	rep.Sessions = rep.Open.Count
	rep.Ops = len(opens) + len(muts) + len(tims) + len(closes)
	if s := rep.Wall.Seconds(); s > 0 {
		rep.OpsPerS = float64(rep.Ops) / s
	}
	return &rep, nil
}

// Summary renders the human-readable report lines flowc prints.
func (r *LoadReport) Summary() string {
	line := func(name string, s LatencyStats) string {
		return fmt.Sprintf("%-7s n=%-5d p50=%8.2fms  p99=%8.2fms  max=%8.2fms\n",
			name, s.Count, ms(s.P50), ms(s.P99), ms(s.Max))
	}
	out := fmt.Sprintf("%d sessions (%d concurrent) against %s: %d ops in %.2fs (%.0f ops/s), %d errors\n",
		r.Sessions, r.Opt.Concurrency, r.Opt.Addr, r.Ops, r.Wall.Seconds(), r.OpsPerS, r.Errors)
	out += line("open", r.Open) + line("mutate", r.Mutate) + line("timing", r.Timing) + line("close", r.Close)
	for _, e := range r.FirstErrors {
		out += "error: " + e + "\n"
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// benchMetrics renders one latency distribution as a BENCH_*.json
// metric map. The _ms suffix marks the metrics lower-is-better for
// cmd/benchdiff; ops_per_s has no registered direction and rides along
// as informational.
func benchMetrics(s LatencyStats) map[string]any {
	return map[string]any{
		"count":  s.Count,
		"p50_ms": ms(s.P50),
		"p99_ms": ms(s.P99),
		"max_ms": ms(s.Max),
	}
}

// WriteBench writes the report as a BENCH_serve.json-style file, the
// format cmd/benchdiff gates.
func (r *LoadReport) WriteBench(path, description, date, cpu string) error {
	doc := map[string]any{
		"description": description,
		"date":        date,
		"cpu":         cpu,
		"workload": map[string]any{
			"design":   r.Opt.Design,
			"config":   r.Opt.Config,
			"scale":    r.Opt.Scale,
			"seed":     r.Opt.Seed,
			"boundary": r.Opt.Boundary,
			"sessions": r.Opt.Sessions,
			"workers":  r.Opt.Concurrency,
			"rounds":   r.Opt.Rounds,
		},
		"protocol_errors": r.Errors,
		"benchmarks": map[string]any{
			"serve_open":   benchMetrics(r.Open),
			"serve_mutate": benchMetrics(r.Mutate),
			"serve_timing": benchMetrics(r.Timing),
			"serve_close":  benchMetrics(r.Close),
			"serve_throughput": map[string]any{
				"ops_per_s": r.OpsPerS,
			},
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
