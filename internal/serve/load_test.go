package serve

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestPercentile pins the nearest-rank definition the load report uses.
func TestPercentile(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := summarize(samples)
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if z := summarize(nil); z.Count != 0 || z.P99 != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := summarize([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.P99 != 7*time.Millisecond {
		t.Errorf("single-sample summary = %+v", one)
	}
}

// TestLoadHarness is the acceptance load test: hundreds of concurrent
// session lifecycles over loopback with zero protocol errors and zero
// goroutine leaks. -short runs a reduced fleet.
func TestLoadHarness(t *testing.T) {
	sessions := 500
	if testing.Short() {
		sessions = 64
	}
	before := runtime.NumGoroutine()

	srv, addr := startServer(t, Options{MaxSessions: 64})
	rep, err := RunLoad(context.Background(), LoadOptions{
		Addr:        addr,
		Sessions:    sessions,
		Concurrency: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Summary())

	if rep.Errors != 0 {
		t.Fatalf("%d protocol errors; first: %v", rep.Errors, rep.FirstErrors)
	}
	if rep.Sessions != sessions {
		t.Fatalf("completed %d of %d sessions", rep.Sessions, sessions)
	}
	wantOps := sessions * (2 + 2*rep.Opt.Rounds) // open + close + rounds×(mutate+timing)
	if rep.Ops != wantOps {
		t.Fatalf("ops = %d, want %d", rep.Ops, wantOps)
	}
	if rep.Timing.Count != sessions*rep.Opt.Rounds {
		t.Fatalf("timing ops = %d, want %d", rep.Timing.Count, sessions*rep.Opt.Rounds)
	}
	if rep.Open.P99 <= 0 || rep.Timing.P99 <= 0 {
		t.Fatalf("degenerate latency stats: %+v", rep)
	}

	// Every slot must come back, and — after the active conns from the
	// fleet unwind — so must every goroutine.
	deadline := time.Now().Add(10 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d admission slots still held after the fleet finished", srv.ActiveSessions())
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitGoroutines(t, before+2) // the server's accept loop + Serve goroutine are still up
}

// TestWriteBench pins the BENCH_serve.json shape benchdiff gates.
func TestWriteBench(t *testing.T) {
	rep := &LoadReport{
		Opt:     LoadOptions{}.withDefaults(),
		Ops:     4000,
		OpsPerS: 1234.5,
		Open:    LatencyStats{Count: 500, P50: 2 * time.Millisecond, P99: 9 * time.Millisecond, Max: 20 * time.Millisecond},
	}
	path := t.TempDir() + "/BENCH_serve.json"
	if err := rep.WriteBench(path, "test", "2026-08-08", "test-cpu"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Description string `json:"description"`
		Benchmarks  map[string]map[string]float64
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Description != "test" {
		t.Errorf("description = %q", doc.Description)
	}
	open, ok := doc.Benchmarks["serve_open"]
	if !ok {
		t.Fatalf("benchmarks missing serve_open: %v", doc.Benchmarks)
	}
	if open["p99_ms"] != 9 || open["p50_ms"] != 2 || open["count"] != 500 {
		t.Errorf("serve_open metrics = %v", open)
	}
	if _, ok := doc.Benchmarks["serve_throughput"]; !ok {
		t.Error("benchmarks missing serve_throughput")
	}
}
