package serve

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/designs"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

// testWorkload is the tiny session workload most tests open: small
// enough that a flow to placement runs in ~100 ms.
var testWorkload = OpenRequest{
	Design:   "ldpc",
	Config:   "2D-12T",
	Scale:    0.05,
	Seed:     1,
	ClockGHz: 1.0,
	Boundary: core.StagePlace,
}

// startServer runs a Server on an ephemeral loopback listener and
// registers an orderly shutdown with the test's cleanup.
func startServer(t *testing.T, opt Options) (*Server, string) {
	t.Helper()
	if opt.CacheDir == "" {
		opt.CacheDir = t.TempDir()
	}
	s := New(opt)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return s, lis.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// offlineTwin reproduces a session's opening state without the server:
// generate the same source netlist and run the same flow recipe to the
// boundary.
func offlineTwin(t *testing.T, req *OpenRequest) *core.Result {
	t.Helper()
	lib := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.Name(req.Design), lib,
		designs.Params{Scale: req.Scale, Seed: req.Seed})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(req.ClockGHz)
	opt.Seed = req.Seed
	opt.StopAfter = req.Boundary
	res, err := core.Run(context.Background(), src, core.ConfigName(req.Config), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// applyOffline mirrors a wire mutation batch onto an offline design.
func applyOffline(t *testing.T, d *netlist.Design, muts []Mutation) {
	t.Helper()
	for _, m := range muts {
		inst := d.Instances[m.ID]
		switch m.Kind {
		case MutSetLoc:
			inst.SetLoc(geom.Point{X: m.X, Y: m.Y})
		case MutSetTier:
			inst.SetTier(tech.Tier(m.Tier))
		default:
			t.Fatalf("unknown mutation kind %d", m.Kind)
		}
	}
}

// analyzeOffline runs the reference analysis a session response must
// match bit-for-bit.
func analyzeOffline(t *testing.T, req *OpenRequest, res *core.Result) TimingResult {
	t.Helper()
	cfg, err := TimingConfig(req.ClockGHz, core.ConfigName(req.Config), res.Clock, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sta.Analyze(res.Design, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return TimingOf(ref)
}

// mutationRound builds a deterministic batch for round r.
func mutationRound(r, cells int) []Mutation {
	batch := make([]Mutation, 4)
	for m := range batch {
		batch[m] = Mutation{
			ID:   int32((r*37 + m*11 + 5) % cells),
			Kind: MutSetLoc,
			X:    float64(3+r*2+m) * 1.5,
			Y:    float64(7+r+m*3) * 1.25,
		}
	}
	return batch
}

// TestSessionTimingMatchesOffline is the tentpole's core contract: a
// session's incremental timing responses — across several mutation
// rounds — are bit-identical to fresh offline analyses of the same
// netlist state.
func TestSessionTimingMatchesOffline(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.Close()

	req := testWorkload
	info, err := cl.Open(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cells <= 0 || info.Nets <= 0 {
		t.Fatalf("session info = %+v", info)
	}

	twin := offlineTwin(t, &req)
	if n := len(twin.Design.Instances); n != int(info.Cells) {
		t.Fatalf("offline twin has %d instances, session reports %d", n, info.Cells)
	}

	// Round 0 queries the untouched boundary state; later rounds mutate
	// first. Every response must match the offline reference exactly.
	for round := 0; round < 4; round++ {
		if round > 0 {
			muts := mutationRound(round, int(info.Cells))
			mr, err := cl.Mutate(muts)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if int(mr.Applied) != len(muts) {
				t.Fatalf("round %d: applied %d of %d", round, mr.Applied, len(muts))
			}
			applyOffline(t, twin.Design, muts)
		}
		got, err := cl.Timing()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := analyzeOffline(t, &req, twin)
		if !got.SameAnalysis(want) {
			t.Fatalf("round %d: session timing %+v != offline %+v", round, got, want)
		}
		if round > 0 && got.IncrementalUpdates == 0 {
			t.Errorf("round %d: session is not using the incremental engine: %+v", round, got)
		}
	}
}

// TestSessionSnapshotCache: a second identical OPEN must restore from
// the server's snapshot instead of re-running the flow, and still
// produce bit-identical timing.
func TestSessionSnapshotCache(t *testing.T) {
	_, addr := startServer(t, Options{})
	req := testWorkload

	open := func() (*Client, *SessionInfo) {
		cl := dialT(t, addr)
		info, err := cl.Open(&req, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cl, info
	}

	cl1, _ := open()
	t1, err := cl1.Timing()
	if err != nil {
		t.Fatal(err)
	}
	cl1.Close()

	start := time.Now()
	cl2, _ := open()
	defer cl2.Close()
	restoreWall := time.Since(start)
	t2, err := cl2.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if !t1.SameAnalysis(*t2) {
		t.Fatalf("restored session timing %+v != first session %+v", t2, t1)
	}
	// The restore leg skips every stage; it should be far cheaper than
	// a flow. Bound it loosely to catch the cache silently not engaging.
	if restoreWall > 5*time.Second {
		t.Errorf("cached re-open took %v — snapshot cache not engaging?", restoreWall)
	}
}

// TestSessionFromUploadedDB: OPEN with an inline design-database image
// (saved offline) restores the same state as the server-side flow.
func TestSessionFromUploadedDB(t *testing.T) {
	_, addr := startServer(t, Options{})
	req := testWorkload

	// Save the boundary snapshot offline, exactly as cmd/hetero3d
	// -save-design would.
	lib := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.Name(req.Design), lib,
		designs.Params{Scale: req.Scale, Seed: req.Seed})
	if err != nil {
		t.Fatal(err)
	}
	dbPath := t.TempDir() + "/ldpc-place.db"
	opt := core.DefaultOptions(req.ClockGHz)
	opt.Seed = req.Seed
	opt.StopAfter = req.Boundary
	opt.SaveDesign = dbPath
	opt.SaveAfter = req.Boundary
	if _, err := core.Run(context.Background(), src, core.ConfigName(req.Config), opt); err != nil {
		t.Fatal(err)
	}
	image, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}

	up := req
	up.DB = image
	cl := dialT(t, addr)
	defer cl.Close()
	if _, err := cl.Open(&up, nil); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Timing()
	if err != nil {
		t.Fatal(err)
	}
	twin := offlineTwin(t, &req)
	want := analyzeOffline(t, &req, twin)
	if !got.SameAnalysis(want) {
		t.Fatalf("uploaded-db session timing %+v != offline %+v", got, want)
	}

	// A corrupt upload must be refused with a typed corrupt error.
	bad := req
	bad.DB = append(append([]byte(nil), image...), 0x00)
	bad.DB[20] ^= 0xff
	cl2 := dialT(t, addr)
	defer cl2.Close()
	if _, err := cl2.Open(&bad, nil); !errors.Is(err, db.ErrCorrupt) {
		t.Fatalf("corrupt upload: err = %v, want db.ErrCorrupt", err)
	}
}

// TestSessionStateMachine pins the protocol's state errors: operations
// out of order are typed ErrState, malformed parameters ErrBadRequest,
// and none of them kill the connection.
func TestSessionStateMachine(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.Close()

	if _, err := cl.Timing(); !errors.Is(err, ErrState) {
		t.Fatalf("TIMQ before OPEN: err = %v, want ErrState", err)
	}
	if _, err := cl.Mutate([]Mutation{{ID: 0, Kind: MutSetLoc}}); !errors.Is(err, ErrState) {
		t.Fatalf("MUTS before OPEN: err = %v, want ErrState", err)
	}

	bad := testWorkload
	bad.Design = "no-such-design"
	if _, err := cl.Open(&bad, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad design: err = %v, want ErrBadRequest", err)
	}
	bad = testWorkload
	bad.Config = "4D-42T"
	if _, err := cl.Open(&bad, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad config: err = %v, want ErrBadRequest", err)
	}
	bad = testWorkload
	bad.Boundary = "synth"
	if _, err := cl.Open(&bad, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad boundary: err = %v, want ErrBadRequest", err)
	}
	bad = testWorkload
	bad.ClockGHz = -1
	if _, err := cl.Open(&bad, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad clock: err = %v, want ErrBadRequest", err)
	}

	// The connection survived all of that and still opens.
	req := testWorkload
	info, err := cl.Open(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open(&req, nil); !errors.Is(err, ErrState) {
		t.Fatalf("double OPEN: err = %v, want ErrState", err)
	}
	if _, err := cl.RunPPAC(&PPACRequest{Design: "ldpc", Config: "2D-12T", Scale: 0.05, Seed: 1}, nil); !errors.Is(err, ErrState) {
		t.Fatalf("PPAC on session connection: err = %v, want ErrState", err)
	}

	// Batch atomicity: one bad entry rejects the whole batch.
	before, err := cl.Timing()
	if err != nil {
		t.Fatal(err)
	}
	batch := []Mutation{
		{ID: 0, Kind: MutSetLoc, X: 999, Y: 999},
		{ID: info.Cells + 7, Kind: MutSetLoc},
	}
	if _, err := cl.Mutate(batch); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range mutation: err = %v, want ErrBadRequest", err)
	}
	after, err := cl.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if !before.SameAnalysis(*after) {
		t.Fatal("rejected batch still mutated the design")
	}
	if _, err := cl.Mutate([]Mutation{{ID: 0, Kind: MutSetTier, Tier: 1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("tier mutation on a 2-D config: err = %v, want ErrBadRequest", err)
	}
	if _, err := cl.Mutate([]Mutation{{Name: "no/such/inst", Kind: MutSetLoc}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown instance name: err = %v, want ErrBadRequest", err)
	}
}

// TestSessionCapRefusal: the admission limiter refuses OPEN past the
// cap with a typed busy error, and a freed slot admits again.
func TestSessionCapRefusal(t *testing.T) {
	srv, addr := startServer(t, Options{MaxSessions: 1})
	req := testWorkload

	cl1 := dialT(t, addr)
	if _, err := cl1.Open(&req, nil); err != nil {
		t.Fatal(err)
	}
	if got := srv.ActiveSessions(); got != 1 {
		t.Fatalf("ActiveSessions = %d, want 1", got)
	}

	cl2 := dialT(t, addr)
	defer cl2.Close()
	if _, err := cl2.Open(&req, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("OPEN past cap: err = %v, want ErrBusy", err)
	}
	// Graceful refusal: the refused connection is still serviceable.
	if err := cl2.Ping(); err != nil {
		t.Fatalf("ping after refusal: %v", err)
	}

	cl1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session slot not released after close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := cl2.Open(&req, nil); err != nil {
		t.Fatalf("OPEN after slot freed: %v", err)
	}
}

// TestPPACMatchesSuite: a served PPAC evaluation reproduces the
// evaluation suite's numbers for the same unit byte-for-byte — the
// canonical design-database encoding of both records is compared, plus
// the f_max bits.
func TestPPACMatchesSuite(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.Close()

	req := &PPACRequest{
		Design:         "ldpc",
		Config:         "2D-12T",
		Scale:          0.05,
		Seed:           1,
		FmaxIterations: 3,
		Events:         true,
	}
	var events []EventKind
	got, err := cl.RunPPAC(req, func(ev *Event) { events = append(events, ev.Kind) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("no events streamed for an Events=true PPAC")
	}
	sawDone := false
	for _, k := range events {
		if k == EvConfigDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Errorf("event stream %v carries no EvConfigDone", events)
	}

	fmax, suitePPAC := suiteReference(t, req)
	if math.Float64bits(got.FmaxGHz) != math.Float64bits(fmax) {
		t.Fatalf("served fmax %v != suite fmax %v", got.FmaxGHz, fmax)
	}
	wGot, wWant := db.NewWriter(), db.NewWriter()
	core.PutPPAC(wGot, got.PPAC)
	core.PutPPAC(wWant, suitePPAC)
	if !bytes.Equal(wGot.Bytes(), wWant.Bytes()) {
		t.Fatalf("served PPAC differs from the evaluation suite's:\nserved %+v\nsuite  %+v", got.PPAC, suitePPAC)
	}

	// A second request for the same unit hits the fmax cache and must
	// be identical.
	again, err := cl.RunPPAC(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(again.FmaxGHz) != math.Float64bits(fmax) {
		t.Fatalf("cached fmax %v != %v", again.FmaxGHz, fmax)
	}
}

// TestCancelInFlight: an out-of-band CNCL aborts a running evaluation
// with a typed cancelled error and leaves the connection usable.
func TestCancelInFlight(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.Close()

	req := &PPACRequest{
		Design: "aes",
		Config: "Hetero-M3D",
		Scale:  0.2,
		Seed:   1,
		Events: true,
	}
	cancelled := false
	_, err := cl.RunPPAC(req, func(ev *Event) {
		// Cancel as soon as the flow shows life.
		if !cancelled {
			cancelled = true
			if err := cl.Cancel(); err != nil {
				t.Errorf("Cancel: %v", err)
			}
		}
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled PPAC: err = %v, want ErrCancelled", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after cancel: %v", err)
	}
	// The connection is back in idle state: a session opens normally.
	w := testWorkload
	if _, err := cl.Open(&w, nil); err != nil {
		t.Fatalf("open after cancel: %v", err)
	}
}

// suiteReference runs the evaluation suite restricted to one unit and
// returns its fmax and PPAC — the offline numbers cmd/ppac prints.
func suiteReference(t *testing.T, req *PPACRequest) (float64, *core.PPAC) {
	t.Helper()
	s, err := eval.RunSuite(context.Background(), eval.SuiteOptions{
		Scale:          req.Scale,
		Seed:           req.Seed,
		Designs:        []designs.Name{designs.Name(req.Design)},
		Configs:        []core.ConfigName{core.ConfigName(req.Config)},
		FmaxIterations: int(req.FmaxIterations),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Results[designs.Name(req.Design)][core.ConfigName(req.Config)]
	if res == nil || res.PPAC == nil {
		t.Fatalf("suite produced no result for %s/%s", req.Design, req.Config)
	}
	return s.Fmax[designs.Name(req.Design)], res.PPAC
}
