package serve

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
)

// waitGoroutines polls until the process goroutine count settles back to
// at most want, failing with a full stack dump if it never does.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShutdownNoGoroutineLeak: a server that handled real sessions
// drains on Shutdown with every connection goroutine accounted for.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Options{CacheDir: t.TempDir()})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(lis) }()

	// Run a few real session lifecycles plus one connection left open
	// mid-session when Shutdown hits.
	req := testWorkload
	for i := 0; i < 3; i++ {
		cl := dialT(t, lis.Addr().String())
		if _, err := cl.Open(&req, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Timing(); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	idle := dialT(t, lis.Addr().String())
	defer idle.nc.Close()
	if _, err := idle.Open(&req, nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions after drain = %d", got)
	}
	waitGoroutines(t, before)
}

// TestShutdownSendsProtocolRecord: a session left open across Shutdown
// receives the protocol-level BYEE shutdown record — it learns the
// server is going away, not just that the pipe broke.
func TestShutdownSendsProtocolRecord(t *testing.T) {
	s, addr := startServer(t, Options{})
	cl := dialT(t, addr)
	defer cl.nc.Close()

	req := testWorkload
	if _, err := cl.Open(&req, nil); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The next read on the idle session connection must surface the
	// shutdown record as a typed ErrShutdown carrying the reason.
	cl.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	_, err := cl.await(TagPong, nil)
	if !errors.Is(err, ErrShutdown) {
		t.Fatalf("read during drain: err = %v, want ErrShutdown", err)
	}
	if !strings.Contains(err.Error(), "shutdown") {
		t.Fatalf("shutdown record reason missing from %q", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestDisconnectCancelsFlow: a client that vanishes mid-OPEN (flow
// still running) has its work cancelled promptly — the admission slot
// frees without waiting for the flow to finish naturally.
func TestDisconnectCancelsFlow(t *testing.T) {
	s, addr := startServer(t, Options{})

	// A heavier workload so the opening flow is observably in flight;
	// a unique seed so no other test's snapshot can satisfy it.
	req := testWorkload
	req.Scale = 0.4
	req.Seed = 424242
	req.Events = true

	cl := dialT(t, addr)
	if err := cl.writeFrame(TagOpen, req.encode()); err != nil {
		t.Fatal(err)
	}
	// Wait for the first stage event so the flow is provably running,
	// then yank the socket.
	cl.nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	tag, _, err := db.ReadFrame(cl.br, cl.maxFrame)
	if err != nil || tag != TagEvent {
		t.Fatalf("first frame = %s, %v (want EVNT)", tag, err)
	}
	abandoned := time.Now()
	cl.nc.Close()

	deadline := time.Now().Add(15 * time.Second)
	for s.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned flow still holds its admission slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("slot released %v after disconnect", time.Since(abandoned))

	// The server is healthy afterwards.
	cl2 := dialT(t, addr)
	defer cl2.Close()
	if err := cl2.Ping(); err != nil {
		t.Fatalf("ping after abandoned flow: %v", err)
	}
}

// TestServeAfterShutdownRefused: Serve on a drained server refuses
// immediately instead of accepting connections it cannot honor.
func TestServeAfterShutdownRefused(t *testing.T) {
	s := New(Options{CacheDir: t.TempDir()})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(lis); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Serve after Shutdown: err = %v, want ErrShutdown", err)
	}
}
