package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/db"
)

// Client is the wire-protocol client cmd/flowc and the load harness
// drive. A client owns one connection and therefore at most one
// session; its request methods run the frame round-trip synchronously
// and must not be called concurrently (matching the server's strict
// in-order answering). Cancel is the one concurrency-safe method — it
// is meant to be called from another goroutine to abort the request in
// flight.
type Client struct {
	nc       net.Conn
	br       *bufio.Reader
	wmu      sync.Mutex
	maxFrame int
}

// Dial connects to a flowd server and performs the handshake.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c, err := NewClient(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (loopback tests use
// net.Pipe-style pairs) and performs the handshake.
func NewClient(nc net.Conn) (*Client, error) {
	c := &Client{nc: nc, br: bufio.NewReader(nc), maxFrame: DefaultMaxFrame}
	if err := writeHandshake(nc); err != nil {
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	if err := readHandshake(c.br); err != nil {
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	return c, nil
}

// writeFrame sends one request frame; safe against a concurrent Cancel.
func (c *Client) writeFrame(tag string, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return db.WriteFrame(c.nc, tag, payload)
}

// await reads frames until the wanted response arrives, dispatching
// events and converting ERRR/BYEE frames into typed errors.
func (c *Client) await(want string, onEvent func(*Event)) ([]byte, error) {
	for {
		tag, payload, err := db.ReadFrame(c.br, c.maxFrame)
		if err != nil {
			return nil, err
		}
		switch tag {
		case want:
			return payload, nil
		case TagEvent:
			ev, err := decodeEvent(payload)
			if err != nil {
				return nil, err
			}
			if onEvent != nil {
				onEvent(ev)
			}
		case TagError:
			re, err := decodeError(payload)
			if err != nil {
				return nil, err
			}
			return nil, re
		case TagBye:
			reason, err := decodeBye(payload)
			if err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: server closed the connection (%s)", ErrShutdown, reason)
		default:
			return nil, db.Corruptf("unexpected frame %s while awaiting %s", tag, want)
		}
	}
}

func (c *Client) roundTrip(reqTag string, payload []byte, want string, onEvent func(*Event)) ([]byte, error) {
	if err := c.writeFrame(reqTag, payload); err != nil {
		return nil, err
	}
	return c.await(want, onEvent)
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.roundTrip(TagPing, nil, TagPong, nil)
	return err
}

// Open establishes the connection's session. onEvent (optional)
// receives streamed stage events while the opening flow runs, when
// req.Events is set.
func (c *Client) Open(req *OpenRequest, onEvent func(*Event)) (*SessionInfo, error) {
	payload, err := c.roundTrip(TagOpen, req.encode(), TagSession, onEvent)
	if err != nil {
		return nil, err
	}
	return decodeSessionInfo(payload)
}

// Mutate applies a batch of SetLoc/SetTier edits to the session's
// netlist. The batch is atomic: any invalid entry rejects the whole
// batch without touching the design.
func (c *Client) Mutate(muts []Mutation) (*MutateResult, error) {
	payload, err := c.roundTrip(TagMutate, encodeMutations(muts), TagMutateRes, nil)
	if err != nil {
		return nil, err
	}
	return decodeMutateResult(payload)
}

// Timing runs an incremental timing update on the session's persistent
// Timer and returns the analysis.
func (c *Client) Timing() (*TimingResult, error) {
	payload, err := c.roundTrip(TagTiming, nil, TagTimingRes, nil)
	if err != nil {
		return nil, err
	}
	return decodeTimingResult(payload)
}

// RunPPAC asks for a one-shot full evaluation (fmax search + flow).
// Only valid on a connection without an open session.
func (c *Client) RunPPAC(req *PPACRequest, onEvent func(*Event)) (*PPACResult, error) {
	payload, err := c.roundTrip(TagPPAC, req.encode(), TagPPACRes, onEvent)
	if err != nil {
		return nil, err
	}
	return decodePPACResult(payload)
}

// Cancel asks the server to abort the request currently in flight on
// this connection. Best-effort and concurrency-safe: the aborted
// request's own call returns a CodeCancelled RemoteError, or its normal
// response if it won the race.
func (c *Client) Cancel() error {
	return c.writeFrame(TagCancel, nil)
}

// Close performs an orderly shutdown: CLOS, wait for the server's BYEE
// record, close the socket. Safe to call on a connection the server
// already tore down.
func (c *Client) Close() error {
	defer c.nc.Close()
	if err := c.writeFrame(TagClose, nil); err != nil {
		return nil // already torn down
	}
	for {
		tag, payload, err := db.ReadFrame(c.br, c.maxFrame)
		if err != nil {
			return nil // server hung up without the record; socket close wins
		}
		if tag == TagBye {
			if _, err := decodeBye(payload); err != nil {
				return err
			}
			return nil
		}
		// Drain stragglers (late events, a response racing the close).
	}
}
