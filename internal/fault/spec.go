package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the -fault flag grammar into a Plan. A spec is a
// comma-separated list of injections:
//
//	design/config/stage[@occurrence]=class[:modifier[:modifier]]
//
// where design, config, and stage accept "*" as a wildcard, occurrence
// is the 1-based matching-visit index (default 1), class is one of
// panic|error|cancel|timeout|corrupt, and modifiers are "retryable"
// (mark the resulting error transient) and, for corrupt, a target
// ("extraction-cache" or "journal"; default extraction-cache).
//
// Examples:
//
//	*/*/place=panic
//	cpu/Hetero-M3D/timing-repair@2=error:retryable
//	*/*/eco=corrupt:journal
//
// An empty spec returns a nil Plan (no faults armed).
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var injections []Injection
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		in, err := parseInjection(item)
		if err != nil {
			return nil, fmt.Errorf("fault spec %q: %w", item, err)
		}
		injections = append(injections, in)
	}
	if len(injections) == 0 {
		return nil, nil
	}
	return NewPlan(injections...), nil
}

func parseInjection(item string) (Injection, error) {
	var in Injection
	site, action, ok := strings.Cut(item, "=")
	if !ok {
		return in, fmt.Errorf("missing '=': want design/config/stage[@occurrence]=class")
	}
	if occ, rest := "", site; true {
		if s, o, found := strings.Cut(site, "@"); found {
			rest, occ = s, o
		}
		parts := strings.Split(rest, "/")
		if len(parts) != 3 {
			return in, fmt.Errorf("site %q: want design/config/stage", rest)
		}
		in.Design, in.Config, in.Stage = norm(parts[0]), norm(parts[1]), norm(parts[2])
		if occ != "" {
			n, err := strconv.Atoi(occ)
			if err != nil || n < 1 {
				return in, fmt.Errorf("occurrence %q: want a positive integer", occ)
			}
			in.Occurrence = n
		}
	}
	mods := strings.Split(action, ":")
	in.Class = Class(strings.TrimSpace(mods[0]))
	if !validClass(in.Class) {
		return in, fmt.Errorf("unknown class %q (want one of %s)", mods[0], classList())
	}
	for _, m := range mods[1:] {
		m = strings.TrimSpace(m)
		switch {
		case m == "retryable":
			in.Retryable = true
		case in.Class == ClassCorrupt && (m == TargetCache || m == TargetJournal):
			in.Target = m
		default:
			return in, fmt.Errorf("unknown modifier %q", m)
		}
	}
	return in, nil
}

// Spec renders the injection back into the -fault grammar in canonical
// form: wildcards as "*", the occurrence suffix only when it is not the
// default first visit, and modifiers only when they deviate from the
// defaults. ParseSpec(in.Spec()) round-trips to an equal Injection — the
// contract the supervisor relies on when forwarding chaos specs to
// worker processes over their command line.
func (in Injection) Spec() string {
	var b strings.Builder
	b.WriteString(orStar(in.Design))
	b.WriteByte('/')
	b.WriteString(orStar(in.Config))
	b.WriteByte('/')
	b.WriteString(orStar(in.Stage))
	if in.Occurrence > 1 {
		fmt.Fprintf(&b, "@%d", in.Occurrence)
	}
	b.WriteByte('=')
	b.WriteString(string(in.Class))
	if in.Class == ClassCorrupt && in.Target != "" && in.Target != TargetCache {
		b.WriteByte(':')
		b.WriteString(in.Target)
	}
	if in.Retryable {
		b.WriteString(":retryable")
	}
	return b.String()
}

// FormatSpec renders a set of injections as one comma-separated -fault
// spec, the inverse of ParseSpec.
func FormatSpec(injections []Injection) string {
	specs := make([]string, len(injections))
	for i, in := range injections {
		specs[i] = in.Spec()
	}
	return strings.Join(specs, ",")
}

func norm(s string) string {
	s = strings.TrimSpace(s)
	if s == "*" {
		return ""
	}
	return s
}

func validClass(c Class) bool {
	for _, k := range Classes {
		if c == k {
			return true
		}
	}
	return false
}

func classList() string {
	names := make([]string, len(Classes))
	for i, c := range Classes {
		names[i] = string(c)
	}
	return strings.Join(names, "|")
}
