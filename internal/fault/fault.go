// Package fault is the flow engine's deterministic fault-injection
// harness. A Plan arms a set of injections, each registered by (design,
// config, stage, occurrence); its Hook attaches to flow.Context.Fault
// and fires each injection exactly when its site is visited for the
// matching time — so a "3rd visit of cpu/Hetero-M3D/timing-repair"
// fault reproduces bit-for-bit across runs, worker counts, and retry
// attempts (occurrence counting continues across attempts, which is
// what makes an injected fault transient: the retry does not re-hit it
// unless armed again at a later occurrence).
//
// Six fault classes cover the failure taxonomy (DESIGN.md §6.5):
//
//   - panic:   the stage panics with the injection record — exercises
//     the runner's panic barrier and worker-pool isolation.
//   - error:   the stage fails with the injection record as its error.
//   - cancel:  the run's context is cancelled mid-stage — exercises the
//     Canceled polling of long-running stages.
//   - timeout: the stage fails wrapping context.DeadlineExceeded, the
//     shape of an engine-level deadline.
//   - corrupt: a flow-owned engine structure is corrupted through the
//     context's Corrupt hook ("extraction-cache", "journal") —
//     exercises divergence detection and degraded-mode recovery.
//   - stall:   the stage hangs forever at its boundary — the silent
//     wedge only an external watchdog (internal/shard's supervisor)
//     can detect and kill.
//
// Tests build Plans directly; the cmds parse them from a -fault spec
// string (ParseSpec).
package fault

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/flow"
)

// Class names an injected fault's kind.
type Class string

const (
	ClassPanic   Class = "panic"
	ClassError   Class = "error"
	ClassCancel  Class = "cancel"
	ClassTimeout Class = "timeout"
	ClassCorrupt Class = "corrupt"
	// ClassStall hangs the stage indefinitely at its boundary: the hook
	// blocks forever, so the flow makes no further progress and no error
	// ever surfaces — the silent-wedge failure mode only an external
	// watchdog can detect. In-process runs can only abandon the wedged
	// goroutine (it blocks until process exit); the distributed
	// evaluation's supervisor (internal/shard) detects the stalled
	// journal and SIGKILLs the worker process, which is exactly the path
	// this class exists to exercise.
	ClassStall Class = "stall"
)

// Classes lists every fault class, in spec order.
var Classes = []Class{ClassPanic, ClassError, ClassCancel, ClassTimeout, ClassCorrupt, ClassStall}

// Injection is one armed fault: where it fires (wildcards "" or "*"
// match any design/config/stage), on which visit of that site
// (Occurrence, 1-based; 0 means the first), and what happens.
type Injection struct {
	Design, Config, Stage string
	// Occurrence is the 1-based matching-visit index the fault fires on.
	Occurrence int
	Class      Class
	// Target selects the corruption target for ClassCorrupt:
	// "extraction-cache" (default) or "journal".
	Target string
	// Retryable marks the resulting error transient for the per-flow
	// retry policy.
	Retryable bool
}

// site returns the injection's site spec for error messages.
func (in Injection) site() string {
	occ := in.Occurrence
	if occ < 1 {
		occ = 1
	}
	return fmt.Sprintf("%s/%s/%s@%d", orStar(in.Design), orStar(in.Config), orStar(in.Stage), occ)
}

func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

// Injected is the structured error an injection produces (directly for
// error/timeout faults, as the recovered panic value for panic faults).
// It unwraps to context.DeadlineExceeded for the timeout class so
// errors.Is sees the deadline shape, and reports Retryable per the
// injection.
type Injected struct {
	Class     Class
	Site      string // design/config/stage@occurrence that fired
	At        string // the concrete design/config/stage it fired in
	retryable bool
	wrapped   error
}

func (e *Injected) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (armed %s)", e.Class, e.At, e.Site)
}

func (e *Injected) Unwrap() error { return e.wrapped }

// Retryable implements the transient-error marker flow.Retryable reads.
func (e *Injected) Retryable() bool { return e.retryable }

// armed is one injection plus its firing state.
type armed struct {
	Injection
	visits int // matching-site visits seen so far
	fired  bool
}

// Plan is a set of armed injections plus their deterministic firing
// state. One Plan may serve many flows concurrently (the eval worker
// pool shares it); the occurrence counters are guarded by a mutex and
// keyed per (design, config) pair, so parallel flows never perturb each
// other's counts.
type Plan struct {
	mu  sync.Mutex
	inj []*armed
	// visitKey tracks per-(injection, design, config) visit counts so a
	// wildcard injection counts each flow's visits independently —
	// occurrence 2 of "*/*/timing-repair" means the 2nd repair visit of
	// each flow, not a race between flows.
	visits map[visitKey]int
	fired  []Fired
}

type visitKey struct {
	inj            int
	design, config string
}

// Fired records one delivered injection for reporting and tests.
type Fired struct {
	Injection
	Design, Config, At string // the concrete site it fired in (At = stage)
}

// NewPlan arms the given injections.
func NewPlan(injections ...Injection) *Plan {
	p := &Plan{visits: make(map[visitKey]int)}
	for _, in := range injections {
		if in.Occurrence < 1 {
			in.Occurrence = 1
		}
		if in.Class == ClassCorrupt && in.Target == "" {
			in.Target = TargetCache
		}
		p.inj = append(p.inj, &armed{Injection: in})
	}
	return p
}

// Corruption targets for ClassCorrupt.
const (
	// TargetCache poisons the flow's RC-extraction cache: cached entries
	// keep their revision but carry perturbed values, the silent-wrong-
	// data failure the extraction audit exists to catch.
	TargetCache = "extraction-cache"
	// TargetJournal rewinds the design's change-journal topology
	// revision, the stale-engine-view failure ENG-003 exists to catch.
	TargetJournal = "journal"
)

// Fired returns every injection delivered so far, in delivery order.
func (p *Plan) Fired() []Fired {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Fired{}, p.fired...)
}

// Pending returns the armed injections that have not fired yet.
func (p *Plan) Pending() []Injection {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Injection
	for _, a := range p.inj {
		if !a.fired {
			out = append(out, a.Injection)
		}
	}
	return out
}

func match(pat, got string) bool {
	return pat == "" || pat == "*" || pat == got
}

// next returns the injection due at this site visit, advancing the
// occurrence counters. At most one injection fires per stage visit (the
// first armed one in registration order).
func (p *Plan) next(design, config, stage string) *armed {
	p.mu.Lock()
	defer p.mu.Unlock()
	var due *armed
	for i, a := range p.inj {
		if !match(a.Design, design) || !match(a.Config, config) || !match(a.Stage, stage) {
			continue
		}
		k := visitKey{inj: i, design: design, config: config}
		p.visits[k]++
		if !a.fired && due == nil && p.visits[k] == a.Occurrence {
			a.fired = true
			due = a
			p.fired = append(p.fired, Fired{Injection: a.Injection, Design: design, Config: config, At: stage})
		}
	}
	return due
}

// Hook returns the flow.Context.Fault hook delivering the plan's
// injections. Install it via core.Options.Fault; a nil *Plan returns a
// nil hook, so callers can wire it unconditionally.
func (p *Plan) Hook() func(*flow.Context, string) error {
	if p == nil {
		return nil
	}
	return func(c *flow.Context, stage string) error {
		a := p.next(c.Design, c.Config, stage)
		if a == nil {
			return nil
		}
		c.AddStat(flow.StatFaultsInjected, 1)
		inj := &Injected{
			Class:     a.Class,
			Site:      a.site(),
			At:        fmt.Sprintf("%s/%s/%s", c.Design, c.Config, stage),
			retryable: a.Retryable,
		}
		switch a.Class {
		case ClassPanic:
			panic(inj)
		case ClassError:
			return inj
		case ClassCancel:
			// Model an external abort arriving mid-stage: cancel the run
			// and let the stage body's Canceled polling observe it.
			if c.CancelRun != nil {
				c.CancelRun()
				return nil
			}
			inj.wrapped = context.Canceled
			return inj
		case ClassTimeout:
			inj.wrapped = context.DeadlineExceeded
			return inj
		case ClassStall:
			// A hard hang: no return, no error, no cancellation poll. The
			// occurrence counter has already advanced and the injection is
			// recorded in Fired, so a supervisor restarting the process
			// after the watchdog kill re-arms a fresh Plan (or none) —
			// the stall is deterministic per armed plan, not sticky.
			// Sleeping (rather than select{}) keeps the wedge silent even
			// when it blocks every goroutine in the process: the runtime's
			// deadlock detector would turn a bare select into a crash,
			// which is a different, noisier failure than the one this
			// class exists to model.
			for {
				time.Sleep(time.Hour)
			}
		case ClassCorrupt:
			if c.Corrupt == nil {
				inj.wrapped = fmt.Errorf("no corruption targets registered")
				return inj
			}
			if err := c.Corrupt(a.Target); err != nil {
				inj.wrapped = err
				return inj
			}
			// The corruption itself is silent — detection is the flow
			// engine's job (extraction audit, ENG checks).
			return nil
		default:
			inj.wrapped = fmt.Errorf("unknown fault class %q", a.Class)
			return inj
		}
	}
}
