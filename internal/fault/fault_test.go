package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/flow"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want []Injection
		err  bool
	}{
		{spec: "", want: nil},
		{spec: "   ", want: nil},
		{
			spec: "*/*/place=panic",
			want: []Injection{{Stage: "place", Occurrence: 1, Class: ClassPanic}},
		},
		{
			spec: "cpu/Hetero-M3D/timing-repair@2=error:retryable",
			want: []Injection{{Design: "cpu", Config: "Hetero-M3D", Stage: "timing-repair", Occurrence: 2, Class: ClassError, Retryable: true}},
		},
		{
			spec: "*/*/eco=corrupt:journal, */*/cts=cancel",
			want: []Injection{
				{Stage: "eco", Occurrence: 1, Class: ClassCorrupt, Target: TargetJournal},
				{Stage: "cts", Occurrence: 1, Class: ClassCancel},
			},
		},
		{
			spec: "*/*/place=corrupt",
			want: []Injection{{Stage: "place", Occurrence: 1, Class: ClassCorrupt, Target: TargetCache}},
		},
		{spec: "*/*/place", err: true},
		{spec: "*/place=panic", err: true},
		{spec: "*/*/place=explode", err: true},
		{spec: "*/*/place@0=panic", err: true},
		{spec: "*/*/place@x=panic", err: true},
		{spec: "*/*/place=error:journal", err: true},
	}
	for _, tc := range cases {
		p, err := ParseSpec(tc.spec)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got plan %+v", tc.spec, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if tc.want == nil {
			if p != nil {
				t.Errorf("ParseSpec(%q): want nil plan, got %+v", tc.spec, p)
			}
			continue
		}
		got := p.Pending()
		if len(got) != len(tc.want) {
			t.Errorf("ParseSpec(%q): got %d injections, want %d", tc.spec, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseSpec(%q)[%d] = %+v, want %+v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
}

func TestOccurrenceCounting(t *testing.T) {
	p := NewPlan(Injection{Stage: "repair", Occurrence: 3, Class: ClassError})
	hook := p.Hook()
	c := flow.NewContext(context.Background(), "cpu", "M3D", 1)
	for i := 1; i <= 2; i++ {
		if err := hook(c, "repair"); err != nil {
			t.Fatalf("visit %d: fired early: %v", i, err)
		}
	}
	if err := hook(c, "place"); err != nil {
		t.Fatalf("non-matching stage fired: %v", err)
	}
	err := hook(c, "repair")
	if err == nil {
		t.Fatal("visit 3: injection did not fire")
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Class != ClassError {
		t.Fatalf("visit 3: got %v, want *Injected error class", err)
	}
	if inj.At != "cpu/M3D/repair" {
		t.Fatalf("At = %q, want cpu/M3D/repair", inj.At)
	}
	if err := hook(c, "repair"); err != nil {
		t.Fatalf("visit 4: fired twice: %v", err)
	}
	if f := p.Fired(); len(f) != 1 || f[0].At != "repair" {
		t.Fatalf("Fired() = %+v, want one firing at repair", f)
	}
}

// Occurrence counters must be keyed per (design, config): a wildcard
// injection armed at occurrence 2 fires on the 2nd visit of each flow,
// not on the 2nd global visit across parallel flows.
func TestOccurrencePerFlow(t *testing.T) {
	p := NewPlan(Injection{Stage: "repair", Occurrence: 2, Class: ClassError})
	hook := p.Hook()
	a := flow.NewContext(context.Background(), "aes", "2D", 1)
	b := flow.NewContext(context.Background(), "cpu", "2D", 1)
	if err := hook(a, "repair"); err != nil {
		t.Fatalf("aes visit 1 fired: %v", err)
	}
	if err := hook(b, "repair"); err != nil {
		t.Fatalf("cpu visit 1 fired: %v", err)
	}
	if err := hook(a, "repair"); err == nil {
		t.Fatal("aes visit 2 did not fire")
	}
}

func TestPanicClass(t *testing.T) {
	p := NewPlan(Injection{Stage: "place", Class: ClassPanic, Retryable: true})
	hook := p.Hook()
	c := flow.NewContext(context.Background(), "aes", "2D", 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic class did not panic")
		}
		inj, ok := r.(*Injected)
		if !ok || inj.Class != ClassPanic {
			t.Fatalf("panic value = %#v, want *Injected panic", r)
		}
		if !inj.Retryable() {
			t.Fatal("retryable injection lost the marker")
		}
	}()
	_ = hook(c, "place")
}

func TestCancelClass(t *testing.T) {
	p := NewPlan(Injection{Stage: "cts", Class: ClassCancel})
	hook := p.Hook()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := flow.NewContext(ctx, "aes", "2D", 1)
	c.CancelRun = cancel
	if err := hook(c, "cts"); err != nil {
		t.Fatalf("cancel class with CancelRun returned error: %v", err)
	}
	if c.Canceled() == nil {
		t.Fatal("cancel class did not cancel the run")
	}

	// Without CancelRun wired it degrades to a canceled-shaped error.
	p2 := NewPlan(Injection{Stage: "cts", Class: ClassCancel})
	c2 := flow.NewContext(context.Background(), "aes", "2D", 1)
	err := p2.Hook()(c2, "cts")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel class without CancelRun: got %v, want context.Canceled shape", err)
	}
}

func TestTimeoutClass(t *testing.T) {
	p := NewPlan(Injection{Stage: "route", Class: ClassTimeout})
	c := flow.NewContext(context.Background(), "aes", "2D", 1)
	err := p.Hook()(c, "route")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout class: got %v, want DeadlineExceeded shape", err)
	}
	if flow.Retryable(err) {
		t.Fatal("non-retryable timeout reported retryable")
	}
}

func TestCorruptClass(t *testing.T) {
	p := NewPlan(Injection{Stage: "eco", Class: ClassCorrupt, Target: TargetJournal})
	c := flow.NewContext(context.Background(), "aes", "2D", 1)
	var got string
	c.Corrupt = func(target string) error { got = target; return nil }
	if err := p.Hook()(c, "eco"); err != nil {
		t.Fatalf("corrupt class errored: %v", err)
	}
	if got != TargetJournal {
		t.Fatalf("Corrupt called with %q, want %q", got, TargetJournal)
	}

	// With no Corrupt hook registered the injection surfaces as an error
	// instead of silently doing nothing.
	p2 := NewPlan(Injection{Stage: "eco", Class: ClassCorrupt})
	c2 := flow.NewContext(context.Background(), "aes", "2D", 1)
	if err := p2.Hook()(c2, "eco"); err == nil {
		t.Fatal("corrupt class without Corrupt hook returned nil")
	}
}

func TestRetryableMarker(t *testing.T) {
	p := NewPlan(Injection{Stage: "place", Class: ClassError, Retryable: true})
	c := flow.NewContext(context.Background(), "aes", "2D", 1)
	err := p.Hook()(c, "place")
	if !flow.Retryable(err) {
		t.Fatalf("retryable injection not seen by flow.Retryable: %v", err)
	}
	p2 := NewPlan(Injection{Stage: "place", Class: ClassError})
	c2 := flow.NewContext(context.Background(), "aes", "2D", 1)
	if flow.Retryable(p2.Hook()(c2, "place")) {
		t.Fatal("non-retryable injection reported retryable")
	}
}

func TestNilPlanHook(t *testing.T) {
	var p *Plan
	if p.Hook() != nil {
		t.Fatal("nil plan must produce a nil hook")
	}
}

// TestStallClass proves the stall class is a true wedge: the hook
// records the firing but never returns — the shape the shard
// supervisor's watchdog exists to kill. The wedged goroutine stays
// blocked until the test process exits, exactly like a wedged worker
// process stays blocked until SIGKILL.
func TestStallClass(t *testing.T) {
	p := NewPlan(Injection{Stage: "cts", Class: ClassStall})
	hook := p.Hook()
	c := flow.NewContext(context.Background(), "aes", "2D", 1)
	returned := make(chan error, 1)
	go func() { returned <- hook(c, "cts") }()
	select {
	case err := <-returned:
		t.Fatalf("stall hook returned (%v); it must hang forever", err)
	case <-time.After(100 * time.Millisecond):
	}
	f := p.Fired()
	if len(f) != 1 || f[0].Class != ClassStall || f[0].At != "cts" {
		t.Fatalf("Fired() = %+v, want one stall firing at cts", f)
	}
	if len(p.Pending()) != 0 {
		t.Fatal("stalled injection still pending")
	}
}

// TestSpecRoundTrip pins ParseSpec/FormatSpec as exact inverses over the
// canonical form: parse → format → parse yields identical injections,
// for every class and modifier combination.
func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"*/*/place=panic",
		"*/*/cts=stall",
		"cpu/Hetero-M3D/timing-repair@2=error:retryable",
		"*/*/eco=corrupt:journal,*/*/cts=cancel",
		"aes/*/route@3=corrupt:journal:retryable",
		"*/*/signoff=timeout",
		"*/*/place=corrupt",
	}
	for _, spec := range specs {
		p1, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		formatted := FormatSpec(p1.Pending())
		p2, err := ParseSpec(formatted)
		if err != nil {
			t.Fatalf("ParseSpec(FormatSpec(%q)) = ParseSpec(%q): %v", spec, formatted, err)
		}
		got, want := p2.Pending(), p1.Pending()
		if len(got) != len(want) {
			t.Fatalf("%q -> %q: %d injections, want %d", spec, formatted, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%q -> %q: injection %d = %+v, want %+v", spec, formatted, i, got[i], want[i])
			}
		}
		// The canonical form is a fixed point.
		if again := FormatSpec(p2.Pending()); again != formatted {
			t.Errorf("FormatSpec not canonical: %q -> %q", formatted, again)
		}
	}
}
