package flow

import (
	"context"
	"time"
)

// RetryPolicy is the per-flow retry discipline the flow drivers
// (core.RunWithRetry, eval's worker pool) apply to transient failures:
// a flow that fails with a Retryable error is re-attempted up to
// Attempts times with capped exponential backoff between attempts.
//
// Each retry attempt runs with a fresh seed derived from the original
// (AttemptSeed), so a transient condition tied to one random trajectory
// — the congestion-retry exhaustion and Timer-divergence classes — gets
// a genuinely different run instead of replaying the same failure.
type RetryPolicy struct {
	// Attempts is the maximum number of times a flow runs (1 = no
	// retries; 0 behaves like 1).
	Attempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it, capped at MaxDelay. Zero means no sleeping —
	// tests and the deterministic evaluation use that.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = 30s).
	MaxDelay time.Duration
	// SameSeed pins every attempt to the original seed instead of
	// deriving fresh ones — for reproducing a failure rather than
	// recovering from it.
	SameSeed bool
}

// NoRetry is the zero policy: one attempt, no backoff.
var NoRetry = RetryPolicy{Attempts: 1}

// DefaultRetryPolicy matches the evaluation suite's -retries flag: n
// attempts, 100ms base backoff capped at 5s, fresh seeds.
func DefaultRetryPolicy(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// normalized returns the policy with the zero-value defaults applied.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 30 * time.Second
	}
	return p
}

// AttemptSeed derives the seed of attempt n (0-based) from the run's
// base seed: attempt 0 is always the base seed; later attempts mix in a
// large odd constant so sibling designs' derived seeds cannot collide.
func (p RetryPolicy) AttemptSeed(base int64, attempt int) int64 {
	if attempt == 0 || p.SameSeed {
		return base
	}
	return base + int64(attempt)*0x4F1BBCDCBFA53E0B
}

// backoff returns how long to sleep before retry attempt n (1-based
// retry index; attempt 1 sleeps BaseDelay).
func (p RetryPolicy) backoff(retry int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// RetryTrace records what the retry loop did for one flow: how many
// attempts ran and the error of every failed attempt, in order. A clean
// first attempt leaves Attempts == 1 and Failures empty.
type RetryTrace struct {
	Attempts int
	Failures []error
}

// Do runs op under the policy: op(attempt, seed) is called with the
// 0-based attempt index and that attempt's derived seed until it
// succeeds, the error is not Retryable, attempts are exhausted, or ctx
// is cancelled during backoff. The trace records every attempt.
func (p RetryPolicy) Do(ctx context.Context, baseSeed int64, op func(attempt int, seed int64) error) (*RetryTrace, error) {
	p = p.normalized()
	if ctx == nil {
		ctx = context.Background()
	}
	tr := &RetryTrace{}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			if d := p.backoff(attempt); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
					return tr, err // the previous attempt's error, not ctx.Err: it has attribution
				case <-t.C:
				}
			}
		}
		tr.Attempts = attempt + 1
		err = op(attempt, p.AttemptSeed(baseSeed, attempt))
		if err == nil {
			return tr, nil
		}
		tr.Failures = append(tr.Failures, err)
		if !Retryable(err) {
			return tr, err
		}
	}
	return tr, err
}
