package flow

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type recordSink struct {
	events []string
}

func (r *recordSink) StageStart(design, config, stage string) {
	r.events = append(r.events, fmt.Sprintf("start %s/%s/%s", design, config, stage))
}

func (r *recordSink) StageDone(design, config, stage string, m StageMetric, err error) {
	status := "ok"
	if err != nil {
		status = "err"
	}
	r.events = append(r.events, fmt.Sprintf("done %s/%s/%s %s cells=%d", design, config, stage, status, m.Cells))
}

func TestRunOrderAndMetrics(t *testing.T) {
	c := NewContext(context.Background(), "cpu", "2D-12T", 1)
	cells := 0
	c.Cells = func() int { return cells }
	sink := &recordSink{}
	c.Sink = sink

	var order []string
	mk := func(name string, n int) Stage {
		return Stage{Name: name, Run: func(fc *Context) error {
			order = append(order, name)
			cells = n
			return nil
		}}
	}
	if err := Run(c, []Stage{mk("map", 10), mk("place", 12), mk("cts", 15)}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "map" || order[2] != "cts" {
		t.Fatalf("stage order = %v", order)
	}
	ms := c.Metrics()
	if len(ms) != 3 {
		t.Fatalf("got %d metrics", len(ms))
	}
	if ms[1].Name != "place" || ms[1].Cells != 12 {
		t.Errorf("metric[1] = %+v", ms[1])
	}
	if ms[2].Wall < 0 {
		t.Errorf("negative wall time %v", ms[2].Wall)
	}
	if len(sink.events) != 6 {
		t.Fatalf("sink saw %d events: %v", len(sink.events), sink.events)
	}
	if sink.events[0] != "start cpu/2D-12T/map" || sink.events[3] != "done cpu/2D-12T/place ok cells=12" {
		t.Errorf("sink events = %v", sink.events)
	}
}

func TestRunStageError(t *testing.T) {
	c := NewContext(context.Background(), "aes", "Hetero-M3D", 1)
	sink := &recordSink{}
	c.Sink = sink
	boom := errors.New("boom")
	ran := false
	err := Run(c, []Stage{
		{Name: "map", Run: func(*Context) error { return nil }},
		{Name: "partition", Run: func(*Context) error { return boom }},
		{Name: "cts", Run: func(*Context) error { ran = true; return nil }},
	})
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err %T not a *flow.Error: %v", err, err)
	}
	if fe.Design != "aes" || fe.Config != "Hetero-M3D" || fe.Stage != "partition" {
		t.Errorf("attribution = %+v", fe)
	}
	if !errors.Is(err, boom) {
		t.Error("error does not unwrap to cause")
	}
	if ran {
		t.Error("pipeline continued past a failing stage")
	}
	// The failing stage's metric and done event are still recorded.
	if got := len(c.Metrics()); got != 2 {
		t.Errorf("%d metrics after failure", got)
	}
	if last := sink.events[len(sink.events)-1]; last != "done aes/Hetero-M3D/partition err cells=0" {
		t.Errorf("last sink event = %q", last)
	}
}

func TestRunNestedErrorKeepsAttribution(t *testing.T) {
	inner := &Error{Design: "cpu", Config: "2D-9T", Stage: "sta", Err: errors.New("late")}
	c := NewContext(context.Background(), "cpu", "2D-9T", 1)
	err := Run(c, []Stage{{Name: "fmax", Run: func(*Context) error { return inner }}})
	var fe *Error
	if !errors.As(err, &fe) || fe != inner {
		t.Fatalf("nested error re-wrapped: %v", err)
	}
}

func TestRunCancelledBeforeStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewContext(ctx, "ldpc", "M3D-9T", 1)
	ran := false
	err := Run(c, []Stage{{Name: "map", Run: func(*Context) error { ran = true; return nil }}})
	if ran {
		t.Error("stage ran despite cancelled context")
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err %T not a *flow.Error: %v", err, err)
	}
	if fe.Stage != "map" {
		t.Errorf("stage = %q", fe.Stage)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}

func TestContextSeededRNG(t *testing.T) {
	a := NewContext(nil, "d", "c", 42).RNG.Int63()
	b := NewContext(nil, "d", "c", 42).RNG.Int63()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if c := NewContext(nil, "d", "c", 43).RNG.Int63(); c == a {
		t.Error("different seeds coincide")
	}
}

func TestCanceledNilSafe(t *testing.T) {
	var c *Context
	if c.Canceled() != nil {
		t.Error("nil context should report no cancellation")
	}
}
