package flow

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type recordSink struct {
	events []string
}

func (r *recordSink) StageStart(design, config, stage string) {
	r.events = append(r.events, fmt.Sprintf("start %s/%s/%s", design, config, stage))
}

func (r *recordSink) StageDone(design, config, stage string, m StageMetric, err error) {
	status := "ok"
	if err != nil {
		status = "err"
	}
	r.events = append(r.events, fmt.Sprintf("done %s/%s/%s %s cells=%d", design, config, stage, status, m.Cells))
}

func TestRunOrderAndMetrics(t *testing.T) {
	c := NewContext(context.Background(), "cpu", "2D-12T", 1)
	cells := 0
	c.Cells = func() int { return cells }
	sink := &recordSink{}
	c.Sink = sink

	var order []string
	mk := func(name string, n int) Stage {
		return Stage{Name: name, Run: func(fc *Context) error {
			order = append(order, name)
			cells = n
			return nil
		}}
	}
	if err := Run(c, []Stage{mk("map", 10), mk("place", 12), mk("cts", 15)}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "map" || order[2] != "cts" {
		t.Fatalf("stage order = %v", order)
	}
	ms := c.Metrics()
	if len(ms) != 3 {
		t.Fatalf("got %d metrics", len(ms))
	}
	if ms[1].Name != "place" || ms[1].Cells != 12 {
		t.Errorf("metric[1] = %+v", ms[1])
	}
	if ms[2].Wall < 0 {
		t.Errorf("negative wall time %v", ms[2].Wall)
	}
	if len(sink.events) != 6 {
		t.Fatalf("sink saw %d events: %v", len(sink.events), sink.events)
	}
	if sink.events[0] != "start cpu/2D-12T/map" || sink.events[3] != "done cpu/2D-12T/place ok cells=12" {
		t.Errorf("sink events = %v", sink.events)
	}
}

func TestRunStageError(t *testing.T) {
	c := NewContext(context.Background(), "aes", "Hetero-M3D", 1)
	sink := &recordSink{}
	c.Sink = sink
	boom := errors.New("boom")
	ran := false
	err := Run(c, []Stage{
		{Name: "map", Run: func(*Context) error { return nil }},
		{Name: "partition", Run: func(*Context) error { return boom }},
		{Name: "cts", Run: func(*Context) error { ran = true; return nil }},
	})
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err %T not a *flow.Error: %v", err, err)
	}
	if fe.Design != "aes" || fe.Config != "Hetero-M3D" || fe.Stage != "partition" {
		t.Errorf("attribution = %+v", fe)
	}
	if !errors.Is(err, boom) {
		t.Error("error does not unwrap to cause")
	}
	if ran {
		t.Error("pipeline continued past a failing stage")
	}
	// The failing stage's metric and done event are still recorded.
	if got := len(c.Metrics()); got != 2 {
		t.Errorf("%d metrics after failure", got)
	}
	if last := sink.events[len(sink.events)-1]; last != "done aes/Hetero-M3D/partition err cells=0" {
		t.Errorf("last sink event = %q", last)
	}
}

func TestRunNestedErrorKeepsAttribution(t *testing.T) {
	inner := &Error{Design: "cpu", Config: "2D-9T", Stage: "sta", Err: errors.New("late")}
	c := NewContext(context.Background(), "cpu", "2D-9T", 1)
	err := Run(c, []Stage{{Name: "fmax", Run: func(*Context) error { return inner }}})
	var fe *Error
	if !errors.As(err, &fe) || fe != inner {
		t.Fatalf("nested error re-wrapped: %v", err)
	}
}

func TestRunCancelledBeforeStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewContext(ctx, "ldpc", "M3D-9T", 1)
	ran := false
	err := Run(c, []Stage{{Name: "map", Run: func(*Context) error { ran = true; return nil }}})
	if ran {
		t.Error("stage ran despite cancelled context")
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err %T not a *flow.Error: %v", err, err)
	}
	if fe.Stage != "map" {
		t.Errorf("stage = %q", fe.Stage)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}

func TestContextSeededRNG(t *testing.T) {
	a := NewContext(nil, "d", "c", 42).RNG.Int63()
	b := NewContext(nil, "d", "c", 42).RNG.Int63()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if c := NewContext(nil, "d", "c", 43).RNG.Int63(); c == a {
		t.Error("different seeds coincide")
	}
}

func TestCanceledNilSafe(t *testing.T) {
	var c *Context
	if c.Canceled() != nil {
		t.Error("nil context should report no cancellation")
	}
}

func TestAddStatAggregation(t *testing.T) {
	cases := []struct {
		name string
		run  func(*Context)
		want map[string]int64
	}{
		{
			name: "no stats leaves nil map",
			run:  func(*Context) {},
			want: nil,
		},
		{
			name: "zero values are dropped",
			run:  func(c *Context) { c.AddStat(StatSTAFull, 0) },
			want: nil,
		},
		{
			name: "repeated keys accumulate",
			run: func(c *Context) {
				c.AddStat(StatRCHits, 3)
				c.AddStat(StatRCHits, 4)
				c.AddStat(StatRCMisses, 1)
			},
			want: map[string]int64{StatRCHits: 7, StatRCMisses: 1},
		},
		{
			name: "negative deltas accumulate too",
			run: func(c *Context) {
				c.AddStat(StatSTANodes, 10)
				c.AddStat(StatSTANodes, -4)
			},
			want: map[string]int64{StatSTANodes: 6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewContext(context.Background(), "d", "c", 1)
			err := Run(c, []Stage{{Name: "s", Run: func(fc *Context) error {
				tc.run(fc)
				return nil
			}}})
			if err != nil {
				t.Fatal(err)
			}
			ms := c.Metrics()
			if len(ms) != 1 {
				t.Fatalf("got %d metrics", len(ms))
			}
			got := ms[0].Stats
			if len(got) != len(tc.want) {
				t.Fatalf("stats = %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("stats[%s] = %d, want %d", k, got[k], v)
				}
			}
		})
	}
}

func TestAddStatDoesNotLeakAcrossStages(t *testing.T) {
	c := NewContext(context.Background(), "d", "c", 1)
	err := Run(c, []Stage{
		{Name: "a", Run: func(fc *Context) error { fc.AddStat(StatSTAFull, 1); return nil }},
		{Name: "b", Run: func(fc *Context) error { fc.AddStat(StatSTAIncr, 2); return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := c.Metrics()
	if ms[0].Stats[StatSTAFull] != 1 || ms[0].Stats[StatSTAIncr] != 0 {
		t.Errorf("stage a stats = %v", ms[0].Stats)
	}
	if ms[1].Stats[StatSTAIncr] != 2 || ms[1].Stats[StatSTAFull] != 0 {
		t.Errorf("stage b stats = %v", ms[1].Stats)
	}
}

func TestAddStatNilContextSafe(t *testing.T) {
	var c *Context
	c.AddStat(StatSTAFull, 1) // must not panic
}

// TestCheckHook covers the stage-boundary check hook: it must run after
// every successful stage, see the stage's name, and have its AddStat
// calls folded into that same stage's metric (the checker reports
// violation counts this way).
func TestCheckHook(t *testing.T) {
	c := NewContext(context.Background(), "cpu", "2D-12T", 1)
	var checked []string
	c.Check = func(fc *Context, stage string) error {
		checked = append(checked, stage)
		fc.AddStat(StatCheckViolations, 1)
		return nil
	}
	err := Run(c, []Stage{
		{Name: "map", Run: func(fc *Context) error { fc.AddStat(StatSTAFull, 1); return nil }},
		{Name: "place", Run: func(*Context) error { return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(checked) != 2 || checked[0] != "map" || checked[1] != "place" {
		t.Fatalf("check hook saw stages %v", checked)
	}
	ms := c.Metrics()
	// The hook's stats land in the stage it checked, alongside the
	// stage's own stats.
	if ms[0].Stats[StatSTAFull] != 1 || ms[0].Stats[StatCheckViolations] != 1 {
		t.Errorf("map stats = %v", ms[0].Stats)
	}
	if ms[1].Stats[StatCheckViolations] != 1 {
		t.Errorf("place stats = %v", ms[1].Stats)
	}
}

func TestCheckHookErrorFailsStage(t *testing.T) {
	c := NewContext(context.Background(), "aes", "Hetero-M3D", 1)
	sink := &recordSink{}
	c.Sink = sink
	boom := errors.New("ERC-002 violated")
	c.Check = func(fc *Context, stage string) error {
		if stage == "legalize" {
			return boom
		}
		return nil
	}
	ran := false
	err := Run(c, []Stage{
		{Name: "map", Run: func(*Context) error { return nil }},
		{Name: "legalize", Run: func(*Context) error { return nil }},
		{Name: "cts", Run: func(*Context) error { ran = true; return nil }},
	})
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err %T not a *flow.Error: %v", err, err)
	}
	if fe.Design != "aes" || fe.Config != "Hetero-M3D" || fe.Stage != "legalize" {
		t.Errorf("attribution = %+v", fe)
	}
	if !errors.Is(err, boom) {
		t.Error("error does not unwrap to the check failure")
	}
	if ran {
		t.Error("pipeline continued past a failing check")
	}
	// The stage itself succeeded, so its metric and done event exist —
	// marked failed by the check.
	if got := len(c.Metrics()); got != 2 {
		t.Errorf("%d metrics after check failure", got)
	}
	if last := sink.events[len(sink.events)-1]; last != "done aes/Hetero-M3D/legalize err cells=0" {
		t.Errorf("last sink event = %q", last)
	}
}

func TestCheckHookSkippedOnStageError(t *testing.T) {
	c := NewContext(context.Background(), "d", "c", 1)
	called := false
	c.Check = func(*Context, string) error { called = true; return nil }
	boom := errors.New("boom")
	err := Run(c, []Stage{{Name: "map", Run: func(*Context) error { return boom }}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if called {
		t.Error("check hook ran after a failing stage")
	}
}
