// Package flow is the stage-pipeline substrate the core flow engine
// executes on. A flow (2-D, M3D, Hetero-Pin-3D) is expressed as an
// ordered list of named Stages run over a shared Context that carries
// cancellation (context.Context), the run's seeded RNG, per-stage
// wall-time/cell-count metrics, and an optional structured event sink.
//
// The pipeline runner checks for cancellation before every stage and
// attributes any failure — including cancellation — to the exact design,
// configuration, and stage it occurred in via the structured Error type,
// so a parallel evaluation can report "cpu/Hetero-M3D failed in the eco
// stage" instead of an anonymous error.
package flow

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Stage is one named step of a flow pipeline. Run mutates the flow's
// state (closed over by the function) and returns an error to abort the
// pipeline.
type Stage struct {
	Name string
	Run  func(*Context) error
}

// StageMetric records one executed stage: its wall time, the design's
// cell count when the stage finished (0 when unknown), and any engine
// counters the stage reported through AddStat (nil when none).
type StageMetric struct {
	Name  string
	Wall  time.Duration
	Cells int
	Stats map[string]int64
}

// Sink receives structured pipeline events. Implementations must be safe
// for concurrent use: when flows run in parallel (eval's worker pool) a
// single sink observes every run's stages interleaved.
type Sink interface {
	// StageStart fires immediately before a stage runs.
	StageStart(design, config, stage string)
	// StageDone fires after a stage returns, with its metric and error
	// (nil on success).
	StageDone(design, config, stage string, m StageMetric, err error)
}

// Context is the shared state a pipeline threads through its stages.
type Context struct {
	// Ctx carries the run's cancellation and deadline; the pipeline
	// runner checks it before every stage, and long-running stages poll
	// it via Canceled between optimization rounds.
	Ctx context.Context
	// RNG is the run's seeded random source. Stages draw any randomness
	// they need from it so a run is reproducible from its seed alone.
	RNG *rand.Rand
	// Design and Config label the run in events and errors.
	Design, Config string
	// Sink receives stage events (nil = none).
	Sink Sink
	// Cells reports the design's current cell count for metrics
	// (nil = cell counts recorded as 0).
	Cells func() int
	// Check, when non-nil, runs after every successful stage, before the
	// stage's metric is finalized — so any stats it reports through
	// AddStat (violation counts, objects checked) land in that stage's
	// StageMetric. A returned error fails the stage exactly as if the
	// stage itself had failed. The core flows install the design-integrity
	// checker (internal/check) here; report-only callers keep the error
	// nil and read the session's reports afterwards.
	Check func(c *Context, stage string) error

	metrics []StageMetric
	stats   map[string]int64
}

// AddStat accumulates an engine counter into the currently running
// stage's metric (the runner attaches the totals to the StageMetric when
// the stage finishes). Safe on a nil context — engines report stats
// unconditionally and standalone analyses have nowhere to put them.
func (c *Context) AddStat(key string, v int64) {
	if c == nil || v == 0 {
		return
	}
	if c.stats == nil {
		c.stats = make(map[string]int64)
	}
	c.stats[key] += v
}

// NewContext builds a pipeline context for one design/config run with an
// RNG seeded from seed. A nil ctx means no cancellation.
func NewContext(ctx context.Context, design, config string, seed int64) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Context{
		Ctx:    ctx,
		RNG:    rand.New(rand.NewSource(seed)),
		Design: design,
		Config: config,
	}
}

// Canceled returns the underlying context's error (context.Canceled or
// context.DeadlineExceeded) once the run is cancelled, nil otherwise.
// Long stages call it between optimization rounds to abort promptly.
func (c *Context) Canceled() error {
	if c == nil || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Metrics returns the per-stage records of every stage executed so far,
// in execution order.
func (c *Context) Metrics() []StageMetric { return c.metrics }

// Error is a structured flow failure: which design, configuration, and
// stage failed, and why. It wraps the underlying cause, so
// errors.Is(err, context.Canceled) and friends see through it.
type Error struct {
	Design string
	Config string
	Stage  string
	Err    error
}

func (e *Error) Error() string {
	return fmt.Sprintf("flow %s/%s: stage %s: %v", e.Design, e.Config, e.Stage, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Run executes the stages in order over the context. Before each stage it
// checks for cancellation; a cancelled context or a failing stage aborts
// the pipeline with a *Error attributing the design, config, and stage.
// Each executed stage's wall time and cell count are appended to the
// context's metrics, and the sink (if any) observes every start/finish.
func Run(c *Context, stages []Stage) error {
	for _, st := range stages {
		if err := c.Canceled(); err != nil {
			return &Error{Design: c.Design, Config: c.Config, Stage: st.Name, Err: err}
		}
		if c.Sink != nil {
			c.Sink.StageStart(c.Design, c.Config, st.Name)
		}
		start := time.Now()
		c.stats = nil
		err := st.Run(c)
		if err == nil && c.Check != nil {
			err = c.Check(c, st.Name)
		}
		m := StageMetric{Name: st.Name, Wall: time.Since(start), Stats: c.stats}
		c.stats = nil
		if c.Cells != nil {
			m.Cells = c.Cells()
		}
		c.metrics = append(c.metrics, m)
		if c.Sink != nil {
			c.Sink.StageDone(c.Design, c.Config, st.Name, m, err)
		}
		if err != nil {
			if fe, ok := err.(*Error); ok {
				// A nested pipeline already attributed the failure.
				return fe
			}
			return &Error{Design: c.Design, Config: c.Config, Stage: st.Name, Err: err}
		}
	}
	return nil
}
