// Package flow is the stage-pipeline substrate the core flow engine
// executes on. A flow (2-D, M3D, Hetero-Pin-3D) is expressed as an
// ordered list of named Stages run over a shared Context that carries
// cancellation (context.Context), the run's seeded RNG, per-stage
// wall-time/cell-count metrics, and an optional structured event sink.
//
// The pipeline runner checks for cancellation before every stage and
// attributes any failure — including cancellation — to the exact design,
// configuration, and stage it occurred in via the structured Error type,
// so a parallel evaluation can report "cpu/Hetero-M3D failed in the eco
// stage" instead of an anonymous error.
//
// The runner is also the flow engine's fault boundary: a panicking stage
// is recovered into a stage-attributed *Error wrapping a *PanicError
// (value + stack), optional fault-injection and degradation hooks run at
// stage boundaries, and a failing stage whose error the Degrade hook can
// absorb (engine divergence, ENG-class check findings) is re-run instead
// of aborting the flow.
package flow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// Stage is one named step of a flow pipeline. Run mutates the flow's
// state (closed over by the function) and returns an error to abort the
// pipeline.
type Stage struct {
	Name string
	Run  func(*Context) error
}

// StageMetric records one executed stage: its wall time, the design's
// cell count when the stage finished (0 when unknown), and any engine
// counters the stage reported through AddStat (nil when none).
type StageMetric struct {
	Name  string
	Wall  time.Duration
	Cells int
	Stats map[string]int64
}

// Sink receives structured pipeline events. Implementations must be safe
// for concurrent use: when flows run in parallel (eval's worker pool) a
// single sink observes every run's stages interleaved.
type Sink interface {
	// StageStart fires immediately before a stage runs.
	StageStart(design, config, stage string)
	// StageDone fires after a stage returns, with its metric and error
	// (nil on success).
	StageDone(design, config, stage string, m StageMetric, err error)
}

// Context is the shared state a pipeline threads through its stages.
type Context struct {
	// Ctx carries the run's cancellation and deadline; the pipeline
	// runner checks it before every stage, and long-running stages poll
	// it via Canceled between optimization rounds.
	Ctx context.Context
	// RNG is the run's seeded random source. Stages draw any randomness
	// they need from it so a run is reproducible from its seed alone.
	RNG *rand.Rand
	// Design and Config label the run in events and errors.
	Design, Config string
	// Sink receives stage events (nil = none).
	Sink Sink
	// Cells reports the design's current cell count for metrics
	// (nil = cell counts recorded as 0).
	Cells func() int
	// Check, when non-nil, runs after every successful stage, before the
	// stage's metric is finalized — so any stats it reports through
	// AddStat (violation counts, objects checked) land in that stage's
	// StageMetric. A returned error fails the stage exactly as if the
	// stage itself had failed. The core flows install the design-integrity
	// checker (internal/check) here; report-only callers keep the error
	// nil and read the session's reports afterwards.
	Check func(c *Context, stage string) error
	// Fault, when non-nil, runs before every stage body — the
	// fault-injection hook (internal/fault's Plan.Hook). A returned error
	// fails the stage; a panic is recovered exactly like a stage panic.
	// Production runs leave it nil: the hook costs nothing when unset.
	Fault func(c *Context, stage string) error
	// Degrade, when non-nil, is consulted when a stage fails with a
	// non-cancellation error: returning true means the hook absorbed the
	// fault (e.g. by downgrading the timing engine to full recomputes)
	// and the stage should re-run. The runner bounds re-runs per stage
	// and counts them under StatStageReruns.
	Degrade func(c *Context, stage string, err error) bool
	// CancelRun aborts the whole run when invoked (nil when the run's
	// context is not cancellable from inside). core.Run wires it; the
	// fault harness's cancel class uses it to model an external abort
	// arriving mid-stage.
	CancelRun func()
	// Corrupt, when non-nil, applies a named corruption to a flow-owned
	// engine structure ("extraction-cache", "journal"). Only the fault
	// harness calls it; the flow registers targets as the structures come
	// to exist. An unknown or not-yet-available target returns an error.
	Corrupt func(target string) error
	// Snapshot, when non-nil, runs after every successful stage — after
	// the stage's metric is appended, before the sink's StageDone — the
	// stage-boundary persistence hook next to Check. The core flows
	// install the design-database writer here (-save-design). A returned
	// error or panic fails the stage: a snapshot the flow promised but
	// could not write is a failure, not a warning.
	Snapshot func(c *Context, stage string) error

	metrics  []StageMetric
	stats    map[string]int64
	degraded []string
}

// maxStageReruns bounds how many times the Degrade hook may re-run one
// stage execution before its error escapes — a backstop against a
// degradation that cannot actually clear the fault.
const maxStageReruns = 2

// AddStat accumulates an engine counter into the currently running
// stage's metric (the runner attaches the totals to the StageMetric when
// the stage finishes). Safe on a nil context — engines report stats
// unconditionally and standalone analyses have nowhere to put them.
func (c *Context) AddStat(key string, v int64) {
	if c == nil || v == 0 {
		return
	}
	if c.stats == nil {
		c.stats = make(map[string]int64)
	}
	c.stats[key] += v
}

// Degraded-mode reason keys recorded via MarkDegraded.
const (
	// DegradeFullSTA: a retained engine view diverged from ground truth
	// and the flow finished on full-STA recomputes.
	DegradeFullSTA = "full-sta"
	// DegradeUtil: the congestion retry budget ran out and the floorplan
	// was relaxed one extra step past the standard policy.
	DegradeUtil = "utilization"
)

// MarkDegraded records that the flow completed in a degraded mode (the
// reason strings are stable keys like "full-sta" or "utilization"). Safe
// on a nil context. Duplicate reasons collapse to one entry.
func (c *Context) MarkDegraded(reason string) {
	if c == nil {
		return
	}
	for _, r := range c.degraded {
		if r == reason {
			return
		}
	}
	c.degraded = append(c.degraded, reason)
}

// Degradations returns the degraded-mode reasons recorded so far, in
// first-occurrence order (nil when the flow ran clean).
func (c *Context) Degradations() []string {
	if c == nil {
		return nil
	}
	return c.degraded
}

// NewContext builds a pipeline context for one design/config run with an
// RNG seeded from seed. A nil ctx means no cancellation.
func NewContext(ctx context.Context, design, config string, seed int64) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Context{
		Ctx:    ctx,
		RNG:    rand.New(rand.NewSource(seed)),
		Design: design,
		Config: config,
	}
}

// Canceled returns the underlying context's error (context.Canceled or
// context.DeadlineExceeded) once the run is cancelled, nil otherwise.
// Long stages call it between optimization rounds to abort promptly.
func (c *Context) Canceled() error {
	if c == nil || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Metrics returns the per-stage records of every stage executed so far,
// in execution order.
func (c *Context) Metrics() []StageMetric { return c.metrics }

// Error is a structured flow failure: which design, configuration, and
// stage failed, and why. It wraps the underlying cause, so
// errors.Is(err, context.Canceled) and friends see through it.
type Error struct {
	Design string
	Config string
	Stage  string
	Err    error
}

func (e *Error) Error() string {
	return fmt.Sprintf("flow %s/%s: stage %s: %v", e.Design, e.Config, e.Stage, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// PanicError is a recovered stage panic: the panic value plus the stack
// captured at the recovery point. When the panic value is itself an
// error (the fault harness panics with its injection record), Unwrap
// exposes it so errors.Is/As and Retryable see through the recovery.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Unwrap returns the panic value when it is an error, nil otherwise.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// retryableError marks an error as transient for the per-flow retry
// policy.
type retryableError struct{ err error }

func (e *retryableError) Error() string   { return e.err.Error() }
func (e *retryableError) Unwrap() error   { return e.err }
func (e *retryableError) Retryable() bool { return true }

// MarkRetryable wraps err so Retryable reports true for it (nil stays
// nil). Fault classes the injection spec marks ":retryable" and
// transient engine conditions use it.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// Retryable reports whether any error in err's chain declares itself
// transient via a `Retryable() bool` method. Cancellation is never
// retryable: a cancelled run must stay cancelled.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	for err != nil {
		if r, ok := err.(interface{ Retryable() bool }); ok && r.Retryable() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// execStage runs one stage body — fault hook, stage function, check hook
// — behind the panic barrier: a panic anywhere inside surfaces as a
// *PanicError instead of unwinding the caller's goroutine, so one
// crashed flow can never take down a sibling worker.
func (c *Context) execStage(st Stage) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe // a nested barrier already captured the stack
				return
			}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if c.Fault != nil {
		if err := c.Fault(c, st.Name); err != nil {
			return err
		}
	}
	if err := st.Run(c); err != nil {
		return err
	}
	if c.Check != nil {
		return c.Check(c, st.Name)
	}
	return nil
}

// runSnapshot invokes the stage-boundary snapshot hook behind the same
// panic barrier as stage bodies: a panicking writer surfaces as a
// stage-attributed *PanicError, never as a crashed flow goroutine.
func (c *Context) runSnapshot(stage string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return c.Snapshot(c, stage)
}

// SeedMetrics pre-loads stage metrics recorded before this pipeline ran
// — the resume path: a flow restored from a design database seeds the
// saved stages' metrics so Metrics reports the complete run, saved and
// resumed stages alike, in execution order.
func (c *Context) SeedMetrics(ms []StageMetric) {
	c.metrics = append(c.metrics, ms...)
}

// Run executes the stages in order over the context. Before each stage it
// checks for cancellation; a cancelled context or a failing stage aborts
// the pipeline with a *Error attributing the design, config, and stage.
// Each executed stage's wall time and cell count are appended to the
// context's metrics, and the sink (if any) observes every start/finish.
//
// A panicking stage is recovered into a *PanicError and attributed like
// any other failure. When the Degrade hook is set, a failing stage whose
// error it absorbs is re-run (at most maxStageReruns times per stage);
// the re-run's stats accumulate into the same StageMetric together with
// a StatStageReruns count.
func Run(c *Context, stages []Stage) error {
	for _, st := range stages {
		if err := c.Canceled(); err != nil {
			return &Error{Design: c.Design, Config: c.Config, Stage: st.Name, Err: err}
		}
		if c.Sink != nil {
			c.Sink.StageStart(c.Design, c.Config, st.Name)
		}
		start := time.Now()
		c.stats = nil
		err := c.execStage(st)
		if pe := (*PanicError)(nil); errors.As(err, &pe) {
			c.AddStat(StatPanicsRecovered, 1)
		}
		for rerun := 0; err != nil && c.Degrade != nil && rerun < maxStageReruns; rerun++ {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				break // degradation never absorbs an abort
			}
			if !c.Degrade(c, st.Name, err) {
				break
			}
			c.AddStat(StatStageReruns, 1)
			err = c.execStage(st)
		}
		m := StageMetric{Name: st.Name, Wall: time.Since(start), Stats: c.stats}
		c.stats = nil
		if c.Cells != nil {
			m.Cells = c.Cells()
		}
		c.metrics = append(c.metrics, m)
		if err == nil && c.Snapshot != nil {
			// The hook sees the finalized metric list (the design database
			// records every executed stage, this one included).
			err = c.runSnapshot(st.Name)
		}
		if c.Sink != nil {
			c.Sink.StageDone(c.Design, c.Config, st.Name, m, err)
		}
		if err != nil {
			if fe, ok := err.(*Error); ok {
				// A nested pipeline already attributed the failure.
				return fe
			}
			return &Error{Design: c.Design, Config: c.Config, Stage: st.Name, Err: err}
		}
	}
	return nil
}
