package flow

import "sync"

// Gate is the race-safe close gate shared by event-sink adapters. A
// sink that renders pipeline events onto a resource whose lifetime can
// end before the last event arrives — a log writer torn down after a
// cancelled suite returns, a network connection the peer already
// closed — runs every render inside Do and closes the gate when the
// resource dies. Events arriving after Close are dropped without
// touching the resource. This is the post-cancel straggler contract
// eval.LogSink introduced, factored out so the serve wire adapter (and
// any future sink) inherits exactly the same semantics.
//
// The zero value is an open gate, ready for concurrent use.
type Gate struct {
	mu     sync.Mutex
	closed bool
}

// Do runs fn under the gate's lock unless the gate is closed, and
// reports whether fn ran. Holding the lock across fn both serializes
// concurrent renderers and makes Close a true barrier: once Close
// returns, no fn started before it is still running and none will
// start after.
func (g *Gate) Do(fn func()) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	fn()
	return true
}

// Close closes the gate: every subsequent Do is a dropped no-op. Close
// is idempotent and returns only after any in-flight Do has completed.
func (g *Gate) Close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
}

// Closed reports whether the gate has been closed.
func (g *Gate) Closed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}
