package flow

// The stat-key registry: every key passed to Context.AddStat must be one
// of these constants. Keys travel from the engines through StageMetric
// maps into three independent readers (cmd/hetero3d's engine report,
// eval's aggregated engine table, the check report) — a typo'd string
// would silently read as zero, so the statkeys analyzer
// (tools/analyzers) rejects AddStat calls whose key is not a constant
// declared here.
const (
	// Incremental timing engine counters (internal/core's timingEnv).
	StatSTAFull  = "sta_full"  // full timing-graph rebuilds
	StatSTAIncr  = "sta_incr"  // incremental timer updates
	StatSTANodes = "sta_nodes" // timing nodes re-evaluated
	StatRCHits   = "rc_hits"   // RC extraction cache hits
	StatRCMisses = "rc_misses" // RC extraction cache misses

	// Design-integrity checker counters (internal/check via the Check
	// hook).
	StatCheckRules      = "check_rules"      // rules executed at the boundary
	StatCheckObjects    = "check_objects"    // objects examined
	StatCheckViolations = "check_violations" // findings at any severity
	StatCheckErrors     = "check_errors"     // findings at Error severity

	// Robustness counters (the fault harness, the degradation paths, and
	// the congestion-driven placement retry). The resilience report
	// (eval.Suite.ResilienceReport) aggregates these across the suite.
	StatCongestionRetries = "congestion_retries" // place re-runs at relaxed utilization
	StatFaultsInjected    = "faults_injected"    // faults the harness fired in the stage
	StatStageReruns       = "stage_reruns"       // degraded-mode stage re-runs
	StatDegradeFullSTA    = "degrade_full_sta"   // downgrades to full-STA recomputes
	StatDegradeUtil       = "degrade_util"       // extra utilization relaxations past the retry budget
	StatPanicsRecovered   = "panics_recovered"   // stage panics recovered into errors

	// Distributed-evaluation counters (internal/shard's supervisor). These
	// are farm-level events, not per-stage engine work: the supervisor
	// records them on its own synthetic metrics so the resilience report
	// can fold coordination history into the same table as the in-process
	// robustness counters.
	StatWorkerRestarts   = "worker_restarts"   // worker processes restarted after crash or watchdog kill
	StatLeaseExpiries    = "lease_expiries"    // shard leases expired back to the pool
	StatShardQuarantines = "shard_quarantines" // shard journals quarantined (CRC/header validation failure)

	// Intra-flow parallelism counters (internal/par fan-outs inside the
	// place/route/sta/cts kernels). Both count *scheduled* work — fan-out
	// rounds and the items they dispatched — which is identical at any
	// worker count, so surfacing them keeps flow results byte-identical
	// whatever -flow-workers is set to.
	StatParBatches = "par_batches" // parallel fan-out rounds executed
	StatParTasks   = "par_tasks"   // work items dispatched across those rounds
)
