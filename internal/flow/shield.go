package flow

import "runtime/debug"

// Shield runs fn behind the same panic barrier the stage runner uses,
// for work that executes outside a pipeline (suite workers, netlist
// generation, result bookkeeping): a panic surfaces as a *Error
// attributed to (design, config, stage) wrapping a *PanicError, instead
// of unwinding the caller's goroutine. A *PanicError panicking through a
// nested barrier is passed through so the original stack survives.
//
// This is the only sanctioned way to recover outside internal/fault and
// internal/flow — the recoverbare vet pass flags naked recover() calls
// elsewhere so every swallowed panic keeps its attribution.
func Shield(design, config, stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*PanicError)
			if !ok {
				pe = &PanicError{Value: r, Stack: debug.Stack()}
			}
			err = &Error{Design: design, Config: config, Stage: stage, Err: pe}
		}
	}()
	return fn()
}
