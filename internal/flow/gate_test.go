package flow

import (
	"sync"
	"testing"
)

// TestGateDropsAfterClose: Do runs while open, is a dropped no-op after
// Close, and Close is idempotent.
func TestGateDropsAfterClose(t *testing.T) {
	var g Gate
	ran := 0
	if !g.Do(func() { ran++ }) {
		t.Fatal("Do on an open gate reported dropped")
	}
	if g.Closed() {
		t.Fatal("gate reports closed before Close")
	}
	g.Close()
	g.Close()
	if g.Do(func() { ran++ }) {
		t.Fatal("Do on a closed gate reported ran")
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if !g.Closed() {
		t.Fatal("gate reports open after Close")
	}
}

// TestGateCloseBarrier: under -race, concurrent Do calls racing Close
// must serialize — the shared counter is written only under the gate,
// and no Do observes the resource after Close returned.
func TestGateCloseBarrier(t *testing.T) {
	var g Gate
	var n int // guarded by the gate's lock
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				g.Do(func() { n++ })
			}
		}()
	}
	close(start)
	g.Close()
	wg.Wait()
	final := n
	if g.Do(func() { n++ }) {
		t.Fatal("Do ran after Close")
	}
	if n != final {
		t.Fatalf("counter moved after Close: %d -> %d", final, n)
	}
}
