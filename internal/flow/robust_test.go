package flow

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRunPanicRecovered(t *testing.T) {
	c := NewContext(context.Background(), "cpu", "Hetero-M3D", 1)
	err := Run(c, []Stage{
		{Name: "map", Run: func(*Context) error { return nil }},
		{Name: "place", Run: func(*Context) error { panic("index out of range [12]") }},
		{Name: "cts", Run: func(*Context) error { t.Fatal("stage after panic ran"); return nil }},
	})
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("want *flow.Error, got %T: %v", err, err)
	}
	if fe.Design != "cpu" || fe.Config != "Hetero-M3D" || fe.Stage != "place" {
		t.Errorf("attribution = %s/%s/%s", fe.Design, fe.Config, fe.Stage)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError in chain, got %v", err)
	}
	if pe.Value != "index out of range [12]" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	ms := c.Metrics()
	if len(ms) != 2 {
		t.Fatalf("got %d metrics, want 2 (map + the panicking place)", len(ms))
	}
	if ms[1].Stats[StatPanicsRecovered] != 1 {
		t.Errorf("place stats = %v, want %s=1", ms[1].Stats, StatPanicsRecovered)
	}
}

func TestRunPanicWithErrorValueUnwraps(t *testing.T) {
	c := NewContext(context.Background(), "aes", "2D-9T", 1)
	cause := errors.New("injected")
	err := Run(c, []Stage{{Name: "route", Run: func(*Context) error { panic(cause) }}})
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is should see through the recovered panic, got %v", err)
	}
}

func TestRunDegradeRerunSucceeds(t *testing.T) {
	c := NewContext(context.Background(), "cpu", "Hetero-M3D", 1)
	degradeCalls := 0
	c.Degrade = func(fc *Context, stage string, err error) bool {
		degradeCalls++
		fc.MarkDegraded(DegradeFullSTA)
		return true
	}
	runs := 0
	err := Run(c, []Stage{{Name: "repair", Run: func(*Context) error {
		runs++
		if runs == 1 {
			return errors.New("engine diverged")
		}
		return nil
	}}})
	if err != nil {
		t.Fatalf("degraded re-run should succeed: %v", err)
	}
	if runs != 2 || degradeCalls != 1 {
		t.Errorf("runs=%d degradeCalls=%d, want 2/1", runs, degradeCalls)
	}
	ms := c.Metrics()
	if len(ms) != 1 || ms[0].Stats[StatStageReruns] != 1 {
		t.Errorf("metrics = %+v, want one repair metric with %s=1", ms, StatStageReruns)
	}
	if got := c.Degradations(); len(got) != 1 || got[0] != DegradeFullSTA {
		t.Errorf("degradations = %v", got)
	}
}

func TestRunDegradeRerunBounded(t *testing.T) {
	c := NewContext(context.Background(), "cpu", "M3D-12T", 1)
	absorbed := 0
	c.Degrade = func(*Context, string, error) bool { absorbed++; return true }
	boom := errors.New("still broken")
	runs := 0
	err := Run(c, []Stage{{Name: "repair", Run: func(*Context) error { runs++; return boom }}})
	if !errors.Is(err, boom) {
		t.Fatalf("exhausted re-runs must surface the error, got %v", err)
	}
	if runs != 1+maxStageReruns || absorbed != maxStageReruns {
		t.Errorf("runs=%d absorbed=%d, want %d/%d", runs, absorbed, 1+maxStageReruns, maxStageReruns)
	}
	if ms := c.Metrics(); ms[0].Stats[StatStageReruns] != maxStageReruns {
		t.Errorf("stats = %v", ms[0].Stats)
	}
}

func TestRunDegradeNeverAbsorbsCancellation(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		c := NewContext(context.Background(), "cpu", "2D-12T", 1)
		c.Degrade = func(*Context, string, error) bool {
			t.Errorf("degrade consulted for %v", cause)
			return true
		}
		err := Run(c, []Stage{{Name: "place", Run: func(*Context) error {
			return fmt.Errorf("aborted: %w", cause)
		}}})
		if !errors.Is(err, cause) {
			t.Errorf("want %v through, got %v", cause, err)
		}
	}
}

func TestRunDegradeDeclines(t *testing.T) {
	c := NewContext(context.Background(), "ldpc", "2D-9T", 1)
	c.Degrade = func(*Context, string, error) bool { return false }
	boom := errors.New("not absorbable")
	runs := 0
	err := Run(c, []Stage{{Name: "route", Run: func(*Context) error { runs++; return boom }}})
	if !errors.Is(err, boom) || runs != 1 {
		t.Errorf("declined degrade must not re-run: runs=%d err=%v", runs, err)
	}
}

func TestMarkDegradedDedupes(t *testing.T) {
	c := NewContext(context.Background(), "d", "c", 1)
	c.MarkDegraded(DegradeFullSTA)
	c.MarkDegraded(DegradeUtil)
	c.MarkDegraded(DegradeFullSTA)
	got := c.Degradations()
	if len(got) != 2 || got[0] != DegradeFullSTA || got[1] != DegradeUtil {
		t.Errorf("degradations = %v", got)
	}
	var nilC *Context
	nilC.MarkDegraded("x") // must not panic
	if nilC.Degradations() != nil {
		t.Error("nil context should report no degradations")
	}
}

func TestRetryableChain(t *testing.T) {
	base := errors.New("congestion budget exhausted")
	if Retryable(base) {
		t.Error("plain error must not be retryable")
	}
	marked := MarkRetryable(base)
	if !Retryable(marked) {
		t.Error("marked error must be retryable")
	}
	wrapped := &Error{Design: "cpu", Config: "Hetero-M3D", Stage: "place", Err: marked}
	if !Retryable(wrapped) {
		t.Error("Retryable must walk the Unwrap chain")
	}
	if !errors.Is(wrapped, base) {
		t.Error("marking must stay transparent to errors.Is")
	}
	cancelled := MarkRetryable(fmt.Errorf("run: %w", context.Canceled))
	if Retryable(cancelled) {
		t.Error("cancellation is never retryable, even marked")
	}
	if MarkRetryable(nil) != nil {
		t.Error("MarkRetryable(nil) must stay nil")
	}
}

func TestAttemptSeeds(t *testing.T) {
	p := DefaultRetryPolicy(4)
	seen := map[int64]bool{}
	for i := 0; i < 4; i++ {
		s := p.AttemptSeed(7, i)
		if seen[s] {
			t.Errorf("attempt %d reuses seed %d", i, s)
		}
		seen[s] = true
	}
	if p.AttemptSeed(7, 0) != 7 {
		t.Error("attempt 0 must run the original seed")
	}
	pinned := RetryPolicy{Attempts: 3, SameSeed: true}
	if pinned.AttemptSeed(7, 2) != 7 {
		t.Error("SameSeed must pin every attempt to the base seed")
	}
}

func TestRetryPolicyDo(t *testing.T) {
	p := RetryPolicy{Attempts: 3} // no backoff: deterministic and instant
	var seeds []int64
	fails := 2
	trace, err := p.Do(context.Background(), 11, func(attempt int, seed int64) error {
		seeds = append(seeds, seed)
		if attempt < fails {
			return MarkRetryable(errors.New("transient"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
	if trace.Attempts != 3 || len(trace.Failures) != 2 {
		t.Errorf("trace = %+v", trace)
	}
	if seeds[0] != 11 || seeds[1] == 11 || seeds[2] == 11 || seeds[1] == seeds[2] {
		t.Errorf("seeds = %v, want base then distinct derived", seeds)
	}
}

func TestRetryPolicyStopsOnPermanentError(t *testing.T) {
	p := RetryPolicy{Attempts: 5}
	boom := errors.New("permanent")
	calls := 0
	trace, err := p.Do(context.Background(), 1, func(int, int64) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 || trace.Attempts != 1 {
		t.Errorf("permanent error must stop retries: calls=%d trace=%+v err=%v", calls, trace, err)
	}
}

func TestRetryPolicyExhaustsAttempts(t *testing.T) {
	p := RetryPolicy{Attempts: 3}
	boom := MarkRetryable(errors.New("always transient"))
	calls := 0
	trace, err := p.Do(context.Background(), 1, func(int, int64) error { calls++; return boom })
	if err == nil || calls != 3 || trace.Attempts != 3 || len(trace.Failures) != 3 {
		t.Errorf("exhaustion: calls=%d trace=%+v err=%v", calls, trace, err)
	}
}

func TestRetryPolicyBackoffCancellable(t *testing.T) {
	p := RetryPolicy{Attempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	first := MarkRetryable(errors.New("transient"))
	done := make(chan struct{})
	var trace *RetryTrace
	var err error
	go func() {
		defer close(done)
		trace, err = p.Do(ctx, 1, func(int, int64) error { cancel(); return first })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation during backoff")
	}
	if !errors.Is(err, first) || trace.Attempts != 1 {
		t.Errorf("cancelled backoff should return the attempt's error: trace=%+v err=%v", trace, err)
	}
}

func TestBackoffCaps(t *testing.T) {
	p := RetryPolicy{Attempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	if d := p.backoff(1); d != 100*time.Millisecond {
		t.Errorf("backoff(1) = %v", d)
	}
	if d := p.backoff(2); d != 200*time.Millisecond {
		t.Errorf("backoff(2) = %v", d)
	}
	if d := p.backoff(5); d != 400*time.Millisecond {
		t.Errorf("backoff(5) = %v, want the cap", d)
	}
	zero := RetryPolicy{}
	if d := zero.backoff(3); d != 0 {
		t.Errorf("no BaseDelay must mean no sleep, got %v", d)
	}
}
