// Package dense holds the dense-index storage primitives the hot layers
// share: capacity-reusing slice growth and CSR (offsets + flat payload)
// jagged arrays. The refactored kernels iterate int32 indices over flat
// memory instead of chasing per-element pointers; this package keeps
// that idiom in one place.
package dense

// Grow returns s with length n, reusing its backing array when the
// capacity suffices and reallocating otherwise. The contents are
// unspecified; callers must initialize every element they read.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Zero returns s with length n and every element set to the zero value,
// reusing the backing array like Grow.
func Zero[T any](s []T, n int) []T {
	s = Grow(s, n)
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// CSR is a jagged array in compressed-sparse-row form: row r's elements
// are Dat[Off[r]:Off[r+1]]. Building is two-pass — Count every element's
// row, Seal, then Append the elements in their final order — and reuses
// prior storage across builds, so a rebuilt CSR allocates nothing once
// warm.
type CSR[T any] struct {
	Off []int32
	Dat []T
	cur []int32
}

// Reset prepares the CSR for n rows with all counts zero.
func (c *CSR[T]) Reset(n int) { c.Off = Zero(c.Off, n+1) }

// Count registers one element on row r (first pass).
func (c *CSR[T]) Count(r int32) { c.Off[r+1]++ }

// Seal turns the counts into offsets and sizes the payload; call once
// between the counting and appending passes.
func (c *CSR[T]) Seal() {
	n := len(c.Off) - 1
	for i := 0; i < n; i++ {
		c.Off[i+1] += c.Off[i]
	}
	c.Dat = Grow(c.Dat, int(c.Off[n]))
	c.cur = Grow(c.cur, n)
	copy(c.cur, c.Off[:n])
}

// Append places v on row r (second pass, preserving call order within
// the row).
func (c *CSR[T]) Append(r int32, v T) {
	c.Dat[c.cur[r]] = v
	c.cur[r]++
}

// Row returns row r's elements.
func (c *CSR[T]) Row(r int32) []T { return c.Dat[c.Off[r]:c.Off[r+1]] }

// Len returns row r's element count.
func (c *CSR[T]) Len(r int32) int { return int(c.Off[r+1] - c.Off[r]) }

// Rows returns the row count.
func (c *CSR[T]) Rows() int { return len(c.Off) - 1 }
