package dense

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	s := make([]int, 0, 8)
	g := Grow(s, 5)
	if len(g) != 5 || cap(g) != 8 {
		t.Fatalf("Grow kept len=%d cap=%d, want 5/8", len(g), cap(g))
	}
	g2 := Grow(g, 16)
	if len(g2) != 16 {
		t.Fatalf("Grow len=%d, want 16", len(g2))
	}
}

func TestZero(t *testing.T) {
	s := []int{1, 2, 3, 4}
	z := Zero(s, 3)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("Zero[%d] = %d", i, v)
		}
	}
}

func TestCSRBuild(t *testing.T) {
	// Rows: 0 -> {10, 11}, 1 -> {}, 2 -> {12}.
	var c CSR[int]
	for rebuild := 0; rebuild < 3; rebuild++ {
		c.Reset(3)
		c.Count(0)
		c.Count(2)
		c.Count(0)
		c.Seal()
		c.Append(0, 10)
		c.Append(2, 12)
		c.Append(0, 11)
		if got := c.Row(0); len(got) != 2 || got[0] != 10 || got[1] != 11 {
			t.Fatalf("row 0 = %v", got)
		}
		if c.Len(1) != 0 {
			t.Fatalf("row 1 len = %d", c.Len(1))
		}
		if got := c.Row(2); len(got) != 1 || got[0] != 12 {
			t.Fatalf("row 2 = %v", got)
		}
		if c.Rows() != 3 {
			t.Fatalf("rows = %d", c.Rows())
		}
	}
}
