package pdn

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/tech"
)

var lib12 = cell.NewLibrary(tech.Variant12T())

func placedDesign(t *testing.T) (*netlist.Design, geom.Rect, *power.Breakdown) {
	t.Helper()
	d, err := designs.Generate(designs.AES, lib12, designs.Params{Scale: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	outline := geom.R(0, 0, 100, 100)
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%97)+1, float64((i*13)%89)+1)
	}
	pw, err := power.Analyze(d, power.DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	return d, outline, pw
}

func TestAnalyze2D(t *testing.T) {
	d, outline, pw := placedDesign(t)
	reps, err := Analyze(d, outline, 1, pw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reports", len(reps))
	}
	r := reps[0]
	if r.VDD != 0.9 {
		t.Errorf("VDD = %v, want 0.9", r.VDD)
	}
	if r.WorstDroopV <= 0 {
		t.Error("expected positive droop under load")
	}
	if r.WorstDroopV >= r.VDD {
		t.Errorf("droop %v exceeds VDD", r.WorstDroopV)
	}
	if r.AvgDroopV > r.WorstDroopV {
		t.Error("average droop above worst droop")
	}
	if r.CurrentA <= 0 {
		t.Error("no supply current")
	}
	if !outline.ContainsClosed(r.WorstLoc) {
		t.Errorf("worst location %v outside die", r.WorstLoc)
	}
	if r.DroopFrac() <= 0 || r.DroopFrac() > 0.5 {
		t.Errorf("droop fraction %v implausible", r.DroopFrac())
	}
}

func TestTopTierDroopsMore(t *testing.T) {
	d, outline, _ := placedDesign(t)
	// Split tiers evenly; recompute power after the split.
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
	}
	pw, err := power.Analyze(d, power.DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	reps, err := Analyze(d, outline, 2, pw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports", len(reps))
	}
	// The top die pays the through-bottom via resistance: worse droop per
	// ampere. With symmetric tiers the top's droop fraction must exceed
	// the bottom's.
	if reps[1].DroopFrac() <= reps[0].DroopFrac() {
		t.Errorf("top droop %v should exceed bottom %v (via-field resistance)",
			reps[1].DroopFrac(), reps[0].DroopFrac())
	}
}

func TestMorePadsLessDroop(t *testing.T) {
	d, outline, pw := placedDesign(t)
	few := DefaultConfig()
	few.Pads = []geom.Point{outline.Center()}
	many := DefaultConfig()
	for x := 10.0; x < 100; x += 20 {
		for y := 10.0; y < 100; y += 20 {
			many.Pads = append(many.Pads, geom.Pt(x, y))
		}
	}
	rf, err := Analyze(d, outline, 1, pw, few)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Analyze(d, outline, 1, pw, many)
	if err != nil {
		t.Fatal(err)
	}
	if rm[0].WorstDroopV >= rf[0].WorstDroopV {
		t.Errorf("25 pads (%v) should beat 1 pad (%v)", rm[0].WorstDroopV, rf[0].WorstDroopV)
	}
}

func TestHigherPowerMoreDroop(t *testing.T) {
	d, outline, _ := placedDesign(t)
	lo, err := power.Analyze(d, power.DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := power.Analyze(d, power.DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analyze(d, outline, 1, lo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Analyze(d, outline, 1, hi, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rh[0].WorstDroopV <= rl[0].WorstDroopV {
		t.Errorf("4× power should droop more: %v vs %v", rh[0].WorstDroopV, rl[0].WorstDroopV)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	d, outline, pw := placedDesign(t)
	if _, err := Analyze(d, outline, 3, pw, DefaultConfig()); err == nil {
		t.Error("tiers=3 should fail")
	}
	bad := DefaultConfig()
	bad.StrapPitchUM = 0
	if _, err := Analyze(d, outline, 1, pw, bad); err == nil {
		t.Error("zero pitch should fail")
	}
	tiny := DefaultConfig()
	tiny.StrapPitchUM = 500
	if _, err := Analyze(d, outline, 1, pw, tiny); err == nil {
		t.Error("pitch larger than die should fail")
	}
	// Mismatched breakdown.
	other, _ := designs.Generate(designs.LDPC, lib12, designs.Params{Scale: 0.02, Seed: 1})
	pwOther, err := power.Analyze(other, power.DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(d, outline, 1, pwOther, DefaultConfig()); err == nil {
		t.Error("mismatched power breakdown should fail")
	}
}

func TestSolverConverges(t *testing.T) {
	d, outline, pw := placedDesign(t)
	cfg := DefaultConfig()
	reps, err := Analyze(d, outline, 1, pw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Iterations >= cfg.MaxIter {
		t.Errorf("solver hit the iteration cap (%d)", reps[0].Iterations)
	}
}
