// Package pdn analyzes power delivery: a resistive power-grid model with
// per-cell current sinks, solved for static IR drop by successive
// over-relaxation. The paper runs its whole evaluation under *ideal*
// power delivery and explicitly flags PDN analysis of heterogeneous 3-D
// ICs as required future work (Sec. V) — this package is that study's
// substrate: each tier gets its own grid at its own supply voltage, and
// the top tier of a monolithic stack draws its current through the
// bottom die's via field, modeled as extra series resistance at the
// pads.
package pdn

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/tech"
)

// Config tunes the grid model.
type Config struct {
	// StrapPitchUM is the node spacing of the power mesh in µm.
	StrapPitchUM float64
	// StrapResOhm is the resistance of one strap segment between adjacent
	// nodes, in Ω.
	StrapResOhm float64
	// PadResOhm is the series resistance from the package bump into a
	// pad node, in Ω.
	PadResOhm float64
	// TopTierExtraOhm adds series resistance to the top tier's pads: in
	// sequential 3-D the upper die's current threads through the bottom
	// die's power vias.
	TopTierExtraOhm float64
	// Pads are pad locations; empty means the four die corners plus the
	// center.
	Pads []geom.Point
	// MaxIter and Tol control the SOR solve.
	MaxIter int
	Tol     float64
}

// DefaultConfig returns grid parameters typical of a 28 nm mesh.
func DefaultConfig() Config {
	return Config{
		StrapPitchUM:    10,
		StrapResOhm:     0.4,
		PadResOhm:       0.05,
		TopTierExtraOhm: 0.15,
		MaxIter:         4000,
		Tol:             1e-7,
	}
}

// TierReport is the IR-drop result for one die.
type TierReport struct {
	Tier tech.Tier
	// VDD is the tier's nominal supply.
	VDD float64
	// WorstDroopV and AvgDroopV are the maximum and mean node voltage
	// drops below VDD.
	WorstDroopV, AvgDroopV float64
	// WorstLoc is the location of the worst droop.
	WorstLoc geom.Point
	// CurrentA is the tier's total supply current in amperes.
	CurrentA float64
	// Iterations the solver used.
	Iterations int
}

// DroopFrac returns the worst droop as a fraction of VDD — PDN signoff
// usually demands < 5 %.
func (t TierReport) DroopFrac() float64 {
	if t.VDD == 0 {
		return 0
	}
	return t.WorstDroopV / t.VDD
}

// Analyze solves the IR drop of every tier of a placed, power-analyzed
// design. tiers is 1 for 2-D. pw must come from power.Analyze on the same
// design (PerInstance drives the current map).
func Analyze(d *netlist.Design, outline geom.Rect, tiers int, pw *power.Breakdown, cfg Config) ([]TierReport, error) {
	if tiers != 1 && tiers != 2 {
		return nil, fmt.Errorf("pdn: tiers must be 1 or 2, got %d", tiers)
	}
	if len(pw.PerInstance) != len(d.Instances) {
		return nil, fmt.Errorf("pdn: power breakdown does not match the design (%d vs %d instances)",
			len(pw.PerInstance), len(d.Instances))
	}
	if cfg.StrapPitchUM <= 0 || cfg.StrapResOhm <= 0 {
		return nil, fmt.Errorf("pdn: invalid grid parameters %+v", cfg)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 1000
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-7
	}

	var out []TierReport
	for t := 0; t < tiers; t++ {
		rep, err := analyzeTier(d, outline, tech.Tier(t), tiers, pw, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// tierVDD picks the die's supply from its cells' masters (majority by
// power).
func tierVDD(d *netlist.Design, tier tech.Tier, tiers int, pw *power.Breakdown) float64 {
	weights := map[float64]float64{}
	for _, inst := range d.Instances {
		if tiers == 2 && inst.Tier != tier {
			continue
		}
		v := inst.Master.VDD
		if v == 0 {
			v = 0.9
		}
		weights[v] += pw.PerInstance[inst.ID]
	}
	best, bw := 0.9, -1.0
	for v, w := range weights {
		if w > bw {
			best, bw = v, w
		}
	}
	return best
}

func analyzeTier(d *netlist.Design, outline geom.Rect, tier tech.Tier, tiers int, pw *power.Breakdown, cfg Config) (TierReport, error) {
	nx := int(outline.W()/cfg.StrapPitchUM) + 1
	ny := int(outline.H()/cfg.StrapPitchUM) + 1
	if nx < 2 || ny < 2 {
		return TierReport{}, fmt.Errorf("pdn: outline %v too small for pitch %v", outline, cfg.StrapPitchUM)
	}
	vdd := tierVDD(d, tier, tiers, pw)

	// Current sinks per node: cell power / VDD, nearest node. Power in
	// µW, VDD in V → current in µA; convert to A for reporting.
	cur := make([]float64, nx*ny)
	idx := func(ix, iy int) int { return iy*nx + ix }
	locate := func(p geom.Point) int {
		ix := int((p.X - outline.Lx) / cfg.StrapPitchUM)
		iy := int((p.Y - outline.Ly) / cfg.StrapPitchUM)
		if ix < 0 {
			ix = 0
		}
		if iy < 0 {
			iy = 0
		}
		if ix >= nx {
			ix = nx - 1
		}
		if iy >= ny {
			iy = ny - 1
		}
		return idx(ix, iy)
	}
	totalCur := 0.0
	for _, inst := range d.Instances {
		if tiers == 2 && inst.Tier != tier {
			continue
		}
		i := locate(inst.Loc)
		c := pw.PerInstance[inst.ID] / vdd // µA
		cur[i] += c
		totalCur += c
	}

	// Pads: fixed-voltage nodes behind a pad resistance.
	pads := cfg.Pads
	if len(pads) == 0 {
		pads = []geom.Point{
			{X: outline.Lx, Y: outline.Ly},
			{X: outline.Ux, Y: outline.Ly},
			{X: outline.Lx, Y: outline.Uy},
			{X: outline.Ux, Y: outline.Uy},
			outline.Center(),
		}
	}
	padRes := cfg.PadResOhm
	if tier == tech.TierTop && tiers == 2 {
		padRes += cfg.TopTierExtraOhm
	}
	padAt := make(map[int]bool, len(pads))
	for _, p := range pads {
		padAt[locate(p)] = true
	}

	// SOR solve of G·V = I with strap conductance g between neighbours
	// and pad conductance gp to the VDD rail. Work in volts and µA:
	// conductance in µA/V = 1/(Ω·1e-6)... keep Ω and µA: g = 1e6/R? To
	// avoid huge constants, solve in units of (mA, Ω, V): convert sinks
	// to mA.
	g := 1.0 / cfg.StrapResOhm // 1/Ω → V per mA is 1e-3... see below
	gp := 1.0 / math.Max(padRes, 1e-6)
	// Using I in mA and R in Ω gives V in millivolts; report in volts.
	v := make([]float64, nx*ny) // droop below VDD, in mV
	const omega = 1.8
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		maxDelta := 0.0
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := idx(ix, iy)
				var gSum, iSum float64
				// Neighbour straps.
				if ix > 0 {
					gSum += g
					iSum += g * v[idx(ix-1, iy)]
				}
				if ix < nx-1 {
					gSum += g
					iSum += g * v[idx(ix+1, iy)]
				}
				if iy > 0 {
					gSum += g
					iSum += g * v[idx(ix, iy-1)]
				}
				if iy < ny-1 {
					gSum += g
					iSum += g * v[idx(ix, iy+1)]
				}
				// Pad tie to zero droop.
				if padAt[i] {
					gSum += gp
				}
				// Node current sink (µA → mA).
				iSink := cur[i] * 1e-3
				nv := (iSum - iSink) / gSum
				delta := nv - v[i]
				v[i] += omega * delta
				if math.Abs(delta) > maxDelta {
					maxDelta = math.Abs(delta)
				}
			}
		}
		if maxDelta < cfg.Tol*1e3 { // Tol in volts; v is in millivolts
			break
		}
	}

	rep := TierReport{Tier: tier, VDD: vdd, CurrentA: totalCur * 1e-6, Iterations: iters}
	sum := 0.0
	worst := 0.0
	worstIdx := 0
	for i, droop := range v {
		dv := -droop // sinks pull v negative; droop is positive below VDD
		sum += dv
		if dv > worst {
			worst = dv
			worstIdx = i
		}
	}
	rep.WorstDroopV = worst * 1e-3
	rep.AvgDroopV = sum / float64(len(v)) * 1e-3
	wx, wy := worstIdx%nx, worstIdx/nx
	rep.WorstLoc = geom.Pt(outline.Lx+float64(wx)*cfg.StrapPitchUM, outline.Ly+float64(wy)*cfg.StrapPitchUM)
	return rep, nil
}
