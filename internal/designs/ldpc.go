package designs

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// genLDPC builds the wire-dominant LDPC decoder: a bipartite graph of
// variable nodes (VN) and check nodes (CN) where every check node XORs a
// handful of *randomly chosen* variable nodes. The random global
// connectivity is what makes real LDPC decoders routing-limited — "the
// timing paths span the entire chip" and utilization must stay low
// (Sec. IV-B1) — and the generator reproduces exactly that wiring pattern.
func genLDPC(lib *cell.Library, p Params) (*netlist.Design, error) {
	b := newBuilder("ldpc", lib, p.Seed)

	vn := scaleInt(3072, p.Scale, 24)
	cn := scaleInt(2048, p.Scale, 16)
	const dv = 8 // VNs per check equation
	const dc = 6 // CN messages consumed per VN update

	// Variable-node state registers. Each register's next state is a MUX
	// between the channel input (load) and the iterative update computed
	// below — a genuine sequential feedback loop through the check-node
	// network. Only a subset of channels are primary inputs to keep the
	// port count sane.
	nIn := vn / 8
	if nIn < 4 {
		nIn = 4
	}
	inNets := make([]*netlist.Net, nIn)
	for i := range inNets {
		inNets[i] = b.input(fmt.Sprintf("ch%d", i))
	}
	load := b.dff("loadreg", b.input("load"))

	vq := make([]*netlist.Net, vn)
	fb := make([]*netlist.Net, vn) // update feedback, driven later
	for i := 0; i < vn; i++ {
		fb[i] = b.net()
		d := b.gate(cell.FuncMux2, fmt.Sprintf("vin%d", i), inNets[i%nIn], fb[i], load)
		vq[i] = b.dff(fmt.Sprintf("vreg%d", i), d)
	}

	// Check nodes: XOR tree over dv randomly selected variable nodes.
	// The selections are global — this is the long-wire source.
	cnOut := make([]*netlist.Net, cn)
	for c := 0; c < cn; c++ {
		ins := make([]*netlist.Net, dv)
		for k := 0; k < dv; k++ {
			ins[k] = vq[b.rng.Intn(vn)]
		}
		cnOut[c] = b.xorTree(fmt.Sprintf("cn%d", c), ins)
	}

	// Variable-node update: XOR of dc random check messages with the
	// node's own state, closing the iteration loop into the feedback
	// nets allocated above.
	for i := 0; i < vn; i++ {
		ins := make([]*netlist.Net, dc)
		for k := 0; k < dc; k++ {
			ins[k] = cnOut[b.rng.Intn(cn)]
		}
		msg := b.xorTree(fmt.Sprintf("vn%d", i), ins)
		b.gateTo(cell.FuncXor2, fmt.Sprintf("vupd%d", i), fb[i], msg, vq[i])
	}

	// Decoded outputs: a sample of the check results.
	nOut := cn / 64
	if nOut < 2 {
		nOut = 2
	}
	for o := 0; o < nOut; o++ {
		b.output(fmt.Sprintf("dec%d", o), cnOut[(o*cn)/nOut])
	}
	return b.finish()
}
