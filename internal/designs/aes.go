package designs

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// genAES builds the cell-dominant AES-like encryption datapath: 128
// structurally identical bit slices, each running the same ten-round
// substitution/permutation pipeline. Because every bit's functional path
// matches every other bit's, timing criticality is nearly uniform — the
// property the paper blames for AES being the worst fit for heterogeneous
// partitioning (Sec. IV-C).
func genAES(lib *cell.Library, p Params) (*netlist.Design, error) {
	b := newBuilder("aes", lib, p.Seed)

	const rounds = 10
	bits := scaleInt(128, p.Scale, 8)
	keyBits := 32
	if keyBits > bits {
		keyBits = bits
	}

	// Key schedule inputs: registered once, fanned out to every round.
	key := make([]*netlist.Net, keyBits)
	for k := 0; k < keyBits; k++ {
		in := b.input(fmt.Sprintf("key%d", k))
		key[k] = b.dff(fmt.Sprintf("kreg%d", k), in)
	}

	// Input state registers.
	state := make([]*netlist.Net, bits)
	for i := 0; i < bits; i++ {
		in := b.input(fmt.Sprintf("pt%d", i))
		state[i] = b.dff(fmt.Sprintf("inreg%d", i), in)
	}

	// Ten identical rounds. Each bit's round function consumes its own
	// state, two permuted neighbours (ShiftRows/MixColumns stand-in), and
	// a key bit (AddRoundKey), through an S-box-like nonlinear stage.
	for r := 0; r < rounds; r++ {
		next := make([]*netlist.Net, bits)
		for i := 0; i < bits; i++ {
			n1 := state[(i+1)%bits]
			n5 := state[(i+5)%bits]
			kb := key[(i+r)%keyBits]
			pfx := fmt.Sprintf("r%d_b%d", r, i)

			// SubBytes stand-in: a small nonlinear cone.
			t1 := b.gate(cell.FuncXor2, pfx+"_t1", state[i], n1)
			t2 := b.gate(cell.FuncNand2, pfx+"_t2", state[i], n5)
			t3 := b.gate(cell.FuncAoi21, pfx+"_t3", t1, t2, n1)
			t4 := b.gate(cell.FuncXnor2, pfx+"_t4", t3, n5)
			t5 := b.gate(cell.FuncOai21, pfx+"_t5", t4, t1, state[i])
			t6 := b.gate(cell.FuncNor2, pfx+"_t6", t5, t2)
			t7 := b.gate(cell.FuncXor2, pfx+"_t7", t6, t3)
			// MixColumns stand-in.
			m1 := b.gate(cell.FuncXor2, pfx+"_m1", t7, n1)
			m2 := b.gate(cell.FuncXor2, pfx+"_m2", m1, n5)
			m3 := b.gate(cell.FuncMux2, pfx+"_m3", m2, t7, kb)
			// AddRoundKey.
			a1 := b.gate(cell.FuncXor2, pfx+"_a1", m3, kb)
			a2 := b.gate(cell.FuncAnd2, pfx+"_a2", a1, t4)
			a3 := b.gate(cell.FuncXor2, pfx+"_a3", a2, m1)
			next[i] = a3
		}
		// Pipeline register between rounds keeps every stage's depth
		// identical (the symmetric structure the paper describes).
		for i := 0; i < bits; i++ {
			next[i] = b.dff(fmt.Sprintf("r%d_reg%d", r, i), next[i])
		}
		state = next
	}

	for i := 0; i < bits; i++ {
		b.output(fmt.Sprintf("ct%d", i), state[i])
	}
	return b.finish()
}
