package designs

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.Variant12T())

func smallParams() Params { return Params{Scale: 0.02, Seed: 7} }

func genAll(t *testing.T, p Params) map[Name]*netlist.Design {
	t.Helper()
	out := make(map[Name]*netlist.Design)
	for _, n := range All {
		d, err := Generate(n, lib, p)
		if err != nil {
			t.Fatalf("Generate(%s): %v", n, err)
		}
		out[n] = d
	}
	return out
}

func TestGenerateAllValid(t *testing.T) {
	for name, d := range genAll(t, smallParams()) {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		s := d.ComputeStats()
		if s.Cells < 100 {
			t.Errorf("%s: only %d cells", name, s.Cells)
		}
		if s.Sequential == 0 {
			t.Errorf("%s: no registers", name)
		}
		if d.Net("clk") == nil || !d.Net("clk").IsClock {
			t.Errorf("%s: missing clock net", name)
		}
		if len(d.Ports) < 3 {
			t.Errorf("%s: only %d ports", name, len(d.Ports))
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("bogus", lib, smallParams()); err == nil {
		t.Error("unknown design should fail")
	}
	if _, err := Generate(AES, lib, Params{Scale: 0}); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := Generate(AES, lib, Params{Scale: -1}); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestDeterminism(t *testing.T) {
	p := smallParams()
	a1, err := Generate(LDPC, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Generate(LDPC, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := a1.ComputeStats(), a2.ComputeStats()
	if s1 != s2 {
		t.Errorf("stats differ across runs: %+v vs %+v", s1, s2)
	}
	// Spot-check identical connectivity on a random net.
	n1, n2 := a1.Nets[len(a1.Nets)/2], a2.Nets[len(a2.Nets)/2]
	if n1.Name != n2.Name || len(n1.Sinks) != len(n2.Sinks) {
		t.Errorf("net mismatch: %s/%d vs %s/%d", n1.Name, len(n1.Sinks), n2.Name, len(n2.Sinks))
	}
}

func TestScaleGrowsDesign(t *testing.T) {
	small, err := Generate(AES, lib, Params{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(AES, lib, Params{Scale: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.ComputeStats().Cells <= small.ComputeStats().Cells {
		t.Error("larger scale should yield more cells")
	}
}

func TestCPUHasMacros(t *testing.T) {
	d, err := Generate(CPU, lib, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	s := d.ComputeStats()
	if s.Macros != 8 {
		t.Errorf("CPU macros = %d, want 8", s.Macros)
	}
	// Macro area ≈ 0.9× cell area (cache ≈ 40 % of footprint).
	r := s.MacroArea / s.CellArea
	if r < 0.6 || r > 1.3 {
		t.Errorf("macro/cell area ratio = %v, want ≈0.9", r)
	}
	// Macros must be fixed for the placer.
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() && !inst.Fixed {
			t.Errorf("macro %s not fixed", inst.Name)
		}
	}
	// Memory interconnect nets exist: each macro has A driven and Q
	// driving something.
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsMacro() {
			continue
		}
		if d.NetOf(inst, "A") == nil || d.NetOf(inst, "Q") == nil {
			t.Errorf("macro %s not fully connected", inst.Name)
		}
		if len(d.NetOf(inst, "Q").Sinks) == 0 {
			t.Errorf("macro %s output floats", inst.Name)
		}
	}
}

func TestOtherDesignsHaveNoMacros(t *testing.T) {
	p := smallParams()
	for _, n := range []Name{AES, LDPC, Netcard} {
		d, err := Generate(n, lib, p)
		if err != nil {
			t.Fatal(err)
		}
		if s := d.ComputeStats(); s.Macros != 0 {
			t.Errorf("%s has %d macros, want 0", n, s.Macros)
		}
	}
}

// LDPC must be markedly more "global" than netcard: measure the average
// number of distinct driver cones feeding each design's nets by comparing
// average net fanout of combinational nets. The real discriminator —
// wirelength — needs placement, so here we check the structural proxy the
// generators are built around: LDPC check trees draw inputs from the whole
// register population, netcard from neighbours. We verify via register
// reuse: in LDPC a register feeds sinks spread across many different check
// nodes; in netcard a bit register feeds at most a few local gates.
func TestLDPCConnectivityIsGlobal(t *testing.T) {
	p := Params{Scale: 0.05, Seed: 3}
	ld, err := Generate(LDPC, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := Generate(Netcard, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	avgFan := func(d *netlist.Design, prefix string) float64 {
		tot, cnt := 0, 0
		for _, inst := range d.Instances {
			if inst.Master.Function != cell.FuncDFF {
				continue
			}
			if out := d.OutputNet(inst); out != nil {
				tot += len(out.Sinks)
				cnt++
			}
		}
		if cnt == 0 {
			t.Fatalf("no DFFs in %s", prefix)
		}
		return float64(tot) / float64(cnt)
	}
	lf, nf := avgFan(ld, "ldpc"), avgFan(nc, "netcard")
	if lf <= nf {
		t.Errorf("LDPC register fanout %v should exceed netcard %v", lf, nf)
	}
}

func TestAESSymmetry(t *testing.T) {
	d, err := Generate(AES, lib, Params{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every bit slice is identical: the master histogram must be
	// dominated by a handful of gate types in equal proportion per slice.
	h := d.MasterHistogram()
	if len(h) > 12 {
		t.Errorf("AES uses %d distinct masters, expected a small symmetric set", len(h))
	}
}

func TestFullScaleCellCountsApproximatePaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	// Only netcard is checked at full scale here to keep the test fast;
	// its 250 k cells is the paper's headline size claim.
	d, err := Generate(Netcard, lib, Params{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := d.ComputeStats().Cells
	if c < 180_000 || c > 320_000 {
		t.Errorf("netcard full-scale cells = %d, want ≈250k", c)
	}
}
