// Package designs generates the four synthetic benchmark netlists used by
// the paper's evaluation — AES, LDPC, Netcard, and a general-purpose CPU —
// with the topological character the paper attributes to each (Sec. IV):
//
//   - AES: cell-dominant, 128 structurally identical bit slices, so timing
//     paths are symmetric and give poor criticality separation;
//   - LDPC: extremely wire-dominant, random global bipartite connectivity
//     between variable and check nodes, low achievable utilization;
//   - Netcard: large (≈250 k cells at full scale) but simple, mostly local
//     pipeline logic;
//   - CPU: complex IP with diverse block-level timing criticality (a deep
//     multiplier core, shallower periphery) plus memory macros occupying
//     ≈40 % of the footprint.
//
// Generators are deterministic: the same parameters always produce the
// same netlist.
package designs

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Name identifies one of the four benchmark designs.
type Name string

const (
	AES     Name = "aes"
	LDPC    Name = "ldpc"
	Netcard Name = "netcard"
	CPU     Name = "cpu"
)

// All lists the benchmark designs in the paper's table order.
var All = []Name{Netcard, AES, LDPC, CPU}

// Params controls generation.
type Params struct {
	// Scale multiplies the structural size of the design; 1.0 produces
	// paper-comparable cell counts (netcard ≈ 250 k, cpu ≈ 150 k,
	// aes ≈ 20 k, ldpc ≈ 40 k). Tests use small scales for speed.
	Scale float64
	// Seed feeds the deterministic topology randomness (LDPC wiring,
	// netcard control fanout). Same seed → same netlist.
	Seed int64
}

// DefaultParams returns full (paper) scale with the canonical seed.
func DefaultParams() Params { return Params{Scale: 1.0, Seed: 1} }

// Generate builds the named design mapped onto lib.
func Generate(name Name, lib *cell.Library, p Params) (*netlist.Design, error) {
	if p.Scale <= 0 {
		return nil, fmt.Errorf("designs: scale must be positive, got %v", p.Scale)
	}
	switch name {
	case AES:
		return genAES(lib, p)
	case LDPC:
		return genLDPC(lib, p)
	case Netcard:
		return genNetcard(lib, p)
	case CPU:
		return genCPU(lib, p)
	default:
		return nil, fmt.Errorf("designs: unknown design %q", name)
	}
}

// scaleInt scales a full-size count, keeping at least min.
func scaleInt(full int, scale float64, min int) int {
	n := int(math.Round(float64(full) * scale))
	if n < min {
		return min
	}
	return n
}

// builder wraps a Design with generation helpers. All helper methods
// panic-free: generation failures are programming errors in the fixed
// generators, surfaced as errors from Generate via the err field.
type builder struct {
	d    *netlist.Design
	lib  *cell.Library
	rng  *rand.Rand
	clk  *netlist.Net
	nets int
	err  error
}

func newBuilder(name string, lib *cell.Library, seed int64) *builder {
	b := &builder{
		d:   netlist.New(name),
		lib: lib,
		rng: rand.New(rand.NewSource(seed)),
	}
	clk, err := b.d.AddNet("clk")
	if err != nil {
		b.err = err
		return b
	}
	clk.IsClock = true
	if _, err := b.d.AddPort("clk", cell.DirClk, clk); err != nil {
		b.err = err
	}
	b.clk = clk
	return b
}

func (b *builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// net allocates a fresh uniquely named net.
func (b *builder) net() *netlist.Net {
	b.nets++
	n, err := b.d.AddNet(fmt.Sprintf("n%d", b.nets))
	if err != nil {
		b.fail(err)
	}
	return n
}

// input adds a primary input port and returns its net.
func (b *builder) input(name string) *netlist.Net {
	n, err := b.d.AddNet("pi_" + name)
	if err != nil {
		b.fail(err)
		return nil
	}
	if _, err := b.d.AddPort(name, cell.DirIn, n); err != nil {
		b.fail(err)
	}
	return n
}

// output terminates net n at a primary output port.
func (b *builder) output(name string, n *netlist.Net) {
	if b.err != nil || n == nil {
		return
	}
	if _, err := b.d.AddPort(name, cell.DirOut, n); err != nil {
		b.fail(err)
	}
}

// gate instantiates the smallest master of fn, connects its inputs to ins
// in pin order, and returns its output net.
func (b *builder) gate(fn cell.Function, name string, ins ...*netlist.Net) *netlist.Net {
	out := b.net()
	b.gateTo(fn, name, out, ins...)
	if b.err != nil {
		return nil
	}
	return out
}

// gateTo is gate with an explicit, pre-allocated output net — the hook
// that lets generators close sequential feedback loops.
func (b *builder) gateTo(fn cell.Function, name string, out *netlist.Net, ins ...*netlist.Net) {
	if b.err != nil {
		return
	}
	m := b.lib.Smallest(fn)
	if m == nil {
		b.fail(fmt.Errorf("designs: library lacks %v", fn))
		return
	}
	inst, err := b.d.AddInstance(name, m)
	if err != nil {
		b.fail(err)
		return
	}
	pi := 0
	for _, p := range m.Pins {
		if p.Dir != cell.DirIn {
			continue
		}
		if pi >= len(ins) {
			b.fail(fmt.Errorf("designs: %s needs %d inputs, got %d", m.Name, m.Function.InputCount(), len(ins)))
			return
		}
		if ins[pi] == nil {
			b.fail(fmt.Errorf("designs: nil input %d to %s", pi, name))
			return
		}
		if err := b.d.Connect(inst, p.Name, ins[pi]); err != nil {
			b.fail(err)
			return
		}
		pi++
	}
	if out == nil {
		b.fail(fmt.Errorf("designs: nil output net for %s", name))
		return
	}
	if err := b.d.Connect(inst, m.OutputPin(), out); err != nil {
		b.fail(err)
	}
}

// dff instantiates a flip-flop clocked by the global clock, fed by dIn,
// and returns its Q net.
func (b *builder) dff(name string, dIn *netlist.Net) *netlist.Net {
	if b.err != nil {
		return nil
	}
	m := b.lib.Smallest(cell.FuncDFF)
	inst, err := b.d.AddInstance(name, m)
	if err != nil {
		b.fail(err)
		return nil
	}
	if dIn == nil {
		b.fail(fmt.Errorf("designs: nil D input to %s", name))
		return nil
	}
	if err := b.d.Connect(inst, "D", dIn); err != nil {
		b.fail(err)
		return nil
	}
	if err := b.d.Connect(inst, "CK", b.clk); err != nil {
		b.fail(err)
		return nil
	}
	q := b.net()
	if b.err != nil {
		return nil
	}
	if err := b.d.Connect(inst, "Q", q); err != nil {
		b.fail(err)
		return nil
	}
	return q
}

// xorTree reduces ins to one net with a balanced XOR tree.
func (b *builder) xorTree(prefix string, ins []*netlist.Net) *netlist.Net {
	level := 0
	for len(ins) > 1 && b.err == nil {
		var next []*netlist.Net
		for i := 0; i+1 < len(ins); i += 2 {
			next = append(next, b.gate(cell.FuncXor2,
				fmt.Sprintf("%s_x%d_%d", prefix, level, i/2), ins[i], ins[i+1]))
		}
		if len(ins)%2 == 1 {
			next = append(next, ins[len(ins)-1])
		}
		ins = next
		level++
	}
	if len(ins) == 0 {
		b.fail(fmt.Errorf("designs: xorTree with no inputs"))
		return nil
	}
	return ins[0]
}

// finish validates and returns the built design.
func (b *builder) finish() (*netlist.Design, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	return b.d, nil
}
