package designs

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// genCPU builds the general-purpose processor: the one complex IP in the
// suite, with the diverse block-level timing criticality the heterogeneous
// methodology feeds on (Sec. IV-C) — a deep multiplier core whose paths
// dominate timing, medium-depth ALU slices, a shallow wide-fanout decoder,
// a big register file, and cache memory macros that occupy ≈40 % of the
// footprint ("a large area dedicated to the cache", Sec. IV-B1).
func genCPU(lib *cell.Library, p Params) (*netlist.Design, error) {
	b := newBuilder("cpu", lib, p.Seed)

	nMult := scaleInt(8, p.Scale, 1)
	nALU := scaleInt(96, p.Scale, 2)
	nDecode := scaleInt(6000, p.Scale, 40)
	nRegBits := scaleInt(16384, p.Scale, 64)
	nPipe := scaleInt(20000, p.Scale, 30)
	const ramMacros = 8

	// Instruction/data inputs.
	nIns := 32
	ins := make([]*netlist.Net, nIns)
	for i := range ins {
		ins[i] = b.dff(fmt.Sprintf("ifreg%d", i), b.input(fmt.Sprintf("insn%d", i)))
	}

	// --- Decoder: shallow (depth ≈3) but wide-fanout control signals.
	ctrl := make([]*netlist.Net, 0, 16)
	for i := 0; i < nDecode; i++ {
		pfx := fmt.Sprintf("dec%d", i)
		a := ins[i%nIns]
		c := ins[(i*7+3)%nIns]
		t1 := b.gate(cell.FuncNand2, pfx+"_t1", a, c)
		t2 := b.gate(cell.FuncNor2, pfx+"_t2", t1, ins[(i*3+1)%nIns])
		t3 := b.gate(cell.FuncInv, pfx+"_t3", t2)
		if i < 16 {
			ctrl = append(ctrl, b.dff(pfx+"_r", t3))
		} else {
			b.dff(pfx+"_r", t3)
		}
	}

	// --- Register file: DFF bits plus MUX read trees.
	regQ := make([]*netlist.Net, nRegBits)
	for i := 0; i < nRegBits; i++ {
		src := ins[i%nIns]
		if i%3 == 0 {
			src = ctrl[i%len(ctrl)]
		}
		regQ[i] = b.dff(fmt.Sprintf("rf%d", i), src)
	}
	// Read ports: binary MUX trees over 16-bit groups.
	readOut := make([]*netlist.Net, 0, nRegBits/16+1)
	for g := 0; g+16 <= nRegBits; g += 16 {
		cur := regQ[g : g+16]
		lvl := 0
		for len(cur) > 1 {
			var next []*netlist.Net
			for i := 0; i+1 < len(cur); i += 2 {
				sel := ctrl[(g+lvl)%len(ctrl)]
				next = append(next, b.gate(cell.FuncMux2,
					fmt.Sprintf("rp%d_l%d_%d", g, lvl, i/2), cur[i], cur[i+1], sel))
			}
			cur = next
			lvl++
		}
		readOut = append(readOut, cur[0])
	}
	if len(readOut) == 0 {
		readOut = append(readOut, regQ[0])
	}

	// --- Multiplier cores: deep partial-product reduction. These are the
	// timing-critical paths of the design.
	fullAdder := func(pfx string, a, bb, c *netlist.Net) (sum, carry *netlist.Net) {
		s1 := b.gate(cell.FuncXor2, pfx+"_s1", a, bb)
		sum = b.gate(cell.FuncXor2, pfx+"_s", s1, c)
		c1 := b.gate(cell.FuncAnd2, pfx+"_c1", a, bb)
		c2 := b.gate(cell.FuncAnd2, pfx+"_c2", s1, c)
		carry = b.gate(cell.FuncOr2, pfx+"_c", c1, c2)
		return sum, carry
	}
	multOuts := make([]*netlist.Net, 0, nMult)
	const mw = 16 // multiplier width
	for m := 0; m < nMult; m++ {
		// Operand registers fed from the register file reads.
		a := make([]*netlist.Net, mw)
		c := make([]*netlist.Net, mw)
		for i := 0; i < mw; i++ {
			a[i] = b.dff(fmt.Sprintf("m%d_a%d", m, i), readOut[(m*mw+i)%len(readOut)])
			c[i] = b.dff(fmt.Sprintf("m%d_b%d", m, i), readOut[(m*mw+i+7)%len(readOut)])
		}
		// Carry-save partial-product reduction: each row absorbs one
		// partial product with full adders whose carries feed the *next*
		// row (no intra-row ripple), so the depth is ≈2 gates per row ×
		// mw rows plus the final reduction — the deep-but-realistic
		// multiplier core whose paths dominate the CPU's timing.
		row := make([]*netlist.Net, mw)
		carry := make([]*netlist.Net, mw)
		for j := 0; j < mw; j++ {
			row[j] = b.gate(cell.FuncAnd2, fmt.Sprintf("m%d_pp0_%d", m, j), a[j], c[0])
			carry[j] = b.gate(cell.FuncAnd2, fmt.Sprintf("m%d_cc0_%d", m, j), a[j], c[1%mw])
		}
		for i := 1; i < mw; i++ {
			nextCarry := make([]*netlist.Net, mw)
			for j := 0; j < mw; j++ {
				pp := b.gate(cell.FuncAnd2, fmt.Sprintf("m%d_pp%d_%d", m, i, j), a[j], c[i])
				var s *netlist.Net
				s, nextCarry[j] = fullAdder(fmt.Sprintf("m%d_fa%d_%d", m, i, j), row[j], pp, carry[(j+mw-1)%mw])
				row[j] = s
			}
			carry = nextCarry
		}
		out := b.xorTree(fmt.Sprintf("m%d_red", m), append(append([]*netlist.Net{}, row...), carry[0], carry[mw/2]))
		multOuts = append(multOuts, b.dff(fmt.Sprintf("m%d_out", m), out))
	}

	// --- ALU slices: medium-depth 8-bit ripple adders with logic ops
	// (clearly shallower than the multiplier core).
	aluOuts := make([]*netlist.Net, 0, nALU)
	for u := 0; u < nALU; u++ {
		carry := ctrl[u%len(ctrl)]
		var s *netlist.Net
		for i := 0; i < 8; i++ {
			x := readOut[(u*16+i)%len(readOut)]
			y := multOuts[u%len(multOuts)]
			s, carry = fullAdder(fmt.Sprintf("alu%d_fa%d", u, i), x, y, carry)
		}
		lg := b.gate(cell.FuncAoi21, fmt.Sprintf("alu%d_lg", u), s, carry, ctrl[(u+1)%len(ctrl)])
		aluOuts = append(aluOuts, b.dff(fmt.Sprintf("alu%d_out", u), lg))
	}

	// --- Periphery pipelines: bulk medium-depth logic (bus interfaces,
	// debug, timers). Non-critical by construction — shallow stages.
	prev := aluOuts[0]
	for i := 0; i < nPipe; i++ {
		pfx := fmt.Sprintf("per%d", i)
		t1 := b.gate(cell.FuncXor2, pfx+"_t1", prev, readOut[i%len(readOut)])
		t2 := b.gate(cell.FuncOai21, pfx+"_t2", t1, ctrl[i%len(ctrl)], prev)
		q := b.dff(pfx+"_r", t2)
		if i%4 == 3 {
			prev = q
		} else {
			prev = t2
		}
	}

	// --- Cache: RAM macros sized so total macro area ≈ 0.9× the final
	// cell area, putting the cache near 40 % of the footprint. Address
	// and data nets to/from the macros are the "memory interconnects" of
	// Table VIII.
	cellArea := b.d.ComputeStats().CellArea
	// Small headroom for the LSU glue cells added in this block.
	perMacro := 0.9 * cellArea * 1.002 / ramMacros
	side := 1.0
	for side*side < perMacro {
		side *= 1.05
	}
	ram := cell.NewRAMMacro("CACHE_RAM", side, perMacro/side, 0.30, 2.5, 8.0)
	for r := 0; r < ramMacros; r++ {
		inst, err := b.d.AddInstance(fmt.Sprintf("cache%d", r), ram)
		if err != nil {
			return nil, err
		}
		inst.Fixed = true
		// Address from LSU address calc (a few gates deep from ALU outs).
		addr := b.gate(cell.FuncXor2, fmt.Sprintf("lsu%d_ad1", r),
			aluOuts[r%len(aluOuts)], aluOuts[(r+1)%len(aluOuts)])
		addr = b.gate(cell.FuncAnd2, fmt.Sprintf("lsu%d_ad2", r), addr, ctrl[r%len(ctrl)])
		if err := b.d.Connect(inst, "A", addr); err != nil {
			return nil, err
		}
		if err := b.d.Connect(inst, "CK", b.clk); err != nil {
			return nil, err
		}
		dq := b.net()
		if b.err != nil {
			return nil, b.err
		}
		if err := b.d.Connect(inst, "Q", dq); err != nil {
			return nil, err
		}
		// Data return into writeback registers.
		wb := b.gate(cell.FuncXor2, fmt.Sprintf("lsu%d_wb", r), dq, multOuts[r%len(multOuts)])
		b.dff(fmt.Sprintf("lsu%d_reg", r), wb)
	}

	// Outputs.
	for i, m := range multOuts {
		b.output(fmt.Sprintf("mres%d", i), m)
	}
	for i := 0; i < 8 && i < len(aluOuts); i++ {
		b.output(fmt.Sprintf("ares%d", i), aluOuts[i])
	}
	return b.finish()
}
