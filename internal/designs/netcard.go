package designs

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// genNetcard builds the large, simple-logic network-interface design:
// many independent packet channels, each a deep but structurally trivial
// pipeline (CRC-like mixing plus control gating). Connectivity is almost
// entirely local — neighbouring bits and the previous pipeline stage —
// with a per-channel control signal as the only wide fanout. At full scale
// it reaches the paper's ≈250 k cells ("a simple logic RTL with 250k
// cells", Sec. IV-B1).
func genNetcard(lib *cell.Library, p Params) (*netlist.Design, error) {
	b := newBuilder("netcard", lib, p.Seed)

	channels := scaleInt(128, p.Scale, 2)
	const stages = 10
	const width = 48

	cfg := b.input("cfg")
	cfgQ := b.dff("cfgreg", cfg)

	for ch := 0; ch < channels; ch++ {
		// Channel control FSM: a couple of gates deriving per-channel
		// enables from the global config — modest depth, wide fanout.
		en := b.gate(cell.FuncXor2, fmt.Sprintf("c%d_en", ch), cfgQ, cfgQ)
		enq := b.dff(fmt.Sprintf("c%d_enreg", ch), en)

		// Input stage: channels share a pool of 16 data ports.
		var cur [width]*netlist.Net
		var din *netlist.Net
		if ch < 16 {
			din = b.input(fmt.Sprintf("d%d", ch))
		} else {
			din = b.d.Net(fmt.Sprintf("pi_d%d", ch%16))
		}
		for w := 0; w < width; w++ {
			cur[w] = b.dff(fmt.Sprintf("c%d_in%d", ch, w), din)
		}

		for st := 0; st < stages; st++ {
			var next [width]*netlist.Net
			for w := 0; w < width; w++ {
				pfx := fmt.Sprintf("c%d_s%d_b%d", ch, st, w)
				// CRC-ish local mixing: self, right neighbour, control.
				t1 := b.gate(cell.FuncXor2, pfx+"_t1", cur[w], cur[(w+1)%width])
				t2 := b.gate(cell.FuncAnd2, pfx+"_t2", t1, enq)
				t3 := b.gate(cell.FuncXor2, pfx+"_t3", t2, cur[(w+width-1)%width])
				next[w] = b.dff(pfx+"_r", t3)
			}
			cur = next
		}
		// One output bit per channel (packet checksum stand-in).
		b.output(fmt.Sprintf("crc%d", ch), cur[0])
	}
	return b.finish()
}
