package cell

import (
	"fmt"

	"repro/internal/tech"
)

// Function is the logic function of a cell master.
type Function int

const (
	FuncInv Function = iota
	FuncBuf
	FuncNand2
	FuncNor2
	FuncAnd2
	FuncOr2
	FuncXor2
	FuncXnor2
	FuncAoi21
	FuncOai21
	FuncMux2
	FuncDFF      // D flip-flop, rising edge
	FuncClkBuf   // clock buffer
	FuncClkInv   // clock inverter
	FuncLevelSh  // level shifter (used only by the ablation study, Sec. III-B)
	FuncMacroRAM // memory macro (black box)
)

var funcNames = map[Function]string{
	FuncInv:      "INV",
	FuncBuf:      "BUF",
	FuncNand2:    "NAND2",
	FuncNor2:     "NOR2",
	FuncAnd2:     "AND2",
	FuncOr2:      "OR2",
	FuncXor2:     "XOR2",
	FuncXnor2:    "XNOR2",
	FuncAoi21:    "AOI21",
	FuncOai21:    "OAI21",
	FuncMux2:     "MUX2",
	FuncDFF:      "DFF",
	FuncClkBuf:   "CLKBUF",
	FuncClkInv:   "CLKINV",
	FuncLevelSh:  "LVLSH",
	FuncMacroRAM: "RAM",
}

// String implements fmt.Stringer.
func (f Function) String() string {
	if s, ok := funcNames[f]; ok {
		return s
	}
	return fmt.Sprintf("FUNC(%d)", int(f))
}

// IsSequential reports whether the function is a clocked storage element.
func (f Function) IsSequential() bool { return f == FuncDFF }

// IsClockCell reports whether the function belongs to the clock network.
func (f Function) IsClockCell() bool { return f == FuncClkBuf || f == FuncClkInv }

// IsMacro reports whether the function is a hard macro rather than a
// standard cell.
func (f Function) IsMacro() bool { return f == FuncMacroRAM }

// InputCount returns the number of signal (non-clock) inputs.
func (f Function) InputCount() int {
	switch f {
	case FuncInv, FuncBuf, FuncDFF, FuncClkBuf, FuncClkInv, FuncLevelSh:
		return 1
	case FuncNand2, FuncNor2, FuncAnd2, FuncOr2, FuncXor2, FuncXnor2:
		return 2
	case FuncAoi21, FuncOai21, FuncMux2:
		return 3
	case FuncMacroRAM:
		return 0 // variable; macro pins are explicit
	default:
		return 0
	}
}

// Dir is a pin direction.
type Dir int

const (
	DirIn Dir = iota
	DirOut
	DirClk // clock input of a sequential cell
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return "clk"
	}
}

// PinSpec describes one pin of a master.
type PinSpec struct {
	Name string
	Dir  Dir
	// Cap is the pin input capacitance in fF; zero for outputs.
	Cap float64
}

// Master is a standard-cell (or macro) master: the library's description
// of one cell type at one drive strength.
type Master struct {
	Name     string
	Function Function
	// Drive is the drive strength multiple (1, 2, 4, 8, ...).
	Drive int
	// Width and Height in µm; Area = Width × Height.
	Width, Height float64
	Pins          []PinSpec
	// Delay and OutSlew are the NLDM timing tables of the cell's single
	// timing arc (input → output; for a DFF this is the CLK→Q arc).
	Delay   *NLDM
	OutSlew *NLDM
	// Setup and Hold apply only to sequential cells, in ns.
	Setup, Hold float64
	// Leakage is the static power in µW.
	Leakage float64
	// InternalEnergy is the internal energy per output transition in fJ.
	InternalEnergy float64
	// MaxLoad is the maximum output load in fF before the cell is
	// considered overloaded (drives buffering decisions in synth).
	MaxLoad float64
	// Track records which library variant the master belongs to.
	Track tech.Track
	// VDD is the master's supply voltage in volts (from its variant).
	VDD float64
}

// Area returns the footprint in µm².
func (m *Master) Area() float64 { return m.Width * m.Height }

// InputCap returns the capacitance of the named input pin, or the first
// input pin's cap when name is empty.
func (m *Master) InputCap(name string) float64 {
	for _, p := range m.Pins {
		if p.Dir == DirOut {
			continue
		}
		if name == "" || p.Name == name {
			return p.Cap
		}
	}
	return 0
}

// OutputPin returns the name of the output pin ("" if none, e.g. for a
// pure sink macro).
func (m *Master) OutputPin() string {
	for _, p := range m.Pins {
		if p.Dir == DirOut {
			return p.Name
		}
	}
	return ""
}

// ClockPin returns the clock pin name for sequential cells ("" otherwise).
func (m *Master) ClockPin() string {
	for _, p := range m.Pins {
		if p.Dir == DirClk {
			return p.Name
		}
	}
	return ""
}

// Validate checks structural sanity of the master.
func (m *Master) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("cell: master has empty name")
	}
	if m.Width <= 0 || m.Height <= 0 {
		return fmt.Errorf("cell: master %s has non-positive size %vx%v", m.Name, m.Width, m.Height)
	}
	if m.Drive < 1 {
		return fmt.Errorf("cell: master %s has drive %d < 1", m.Name, m.Drive)
	}
	if !m.Function.IsMacro() {
		if m.Delay == nil || m.OutSlew == nil {
			return fmt.Errorf("cell: master %s missing timing tables", m.Name)
		}
		if err := m.Delay.Validate(); err != nil {
			return fmt.Errorf("cell: master %s delay table: %w", m.Name, err)
		}
		if err := m.OutSlew.Validate(); err != nil {
			return fmt.Errorf("cell: master %s slew table: %w", m.Name, err)
		}
	}
	if m.Function.IsSequential() && m.ClockPin() == "" {
		return fmt.Errorf("cell: sequential master %s has no clock pin", m.Name)
	}
	return nil
}
