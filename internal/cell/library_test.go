package cell

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func testVariant9() tech.Variant  { return tech.Variant9T() }
func testVariant12() tech.Variant { return tech.Variant12T() }

func TestNewLibraryComplete(t *testing.T) {
	for _, v := range []tech.Variant{testVariant9(), testVariant12()} {
		lib := NewLibrary(v)
		if err := lib.Validate(); err != nil {
			t.Fatalf("%v library: %v", v.Track, err)
		}
		for _, f := range CombFunctions {
			if len(lib.ByFunction(f)) == 0 {
				t.Errorf("%v library missing %v", v.Track, f)
			}
		}
		if len(lib.ByFunction(FuncDFF)) != 3 {
			t.Errorf("%v library wants 3 DFF drives", v.Track)
		}
		if len(lib.ByFunction(FuncClkBuf)) != 4 {
			t.Errorf("%v library wants 4 CLKBUF drives", v.Track)
		}
	}
}

func TestMasterLookupByName(t *testing.T) {
	lib := NewLibrary(testVariant12())
	m, err := lib.Master("INV_X1_12T")
	if err != nil {
		t.Fatal(err)
	}
	if m.Function != FuncInv || m.Drive != 1 {
		t.Errorf("wrong master: %+v", m)
	}
	if _, err := lib.Master("NOPE"); err == nil {
		t.Error("expected error for unknown master")
	}
}

func TestDriveOrderingAndSelectors(t *testing.T) {
	lib := NewLibrary(testVariant12())
	invs := lib.ByFunction(FuncInv)
	for i := 1; i < len(invs); i++ {
		if invs[i].Drive <= invs[i-1].Drive {
			t.Fatal("ByFunction not ascending by drive")
		}
	}
	if lib.Smallest(FuncInv).Drive != 1 {
		t.Error("Smallest INV should be X1")
	}
	if lib.Strongest(FuncInv).Drive != 8 {
		t.Error("Strongest INV should be X8")
	}
	if got := lib.ForDrive(FuncInv, 3); got.Drive != 4 {
		t.Errorf("ForDrive(3) = X%d, want X4", got.Drive)
	}
	if got := lib.ForDrive(FuncInv, 99); got.Drive != 8 {
		t.Errorf("ForDrive(99) = X%d, want strongest X8", got.Drive)
	}
	if lib.Smallest(FuncMacroRAM) != nil {
		t.Error("library should not contain RAM masters")
	}
	up := lib.NextDriveUp(lib.Smallest(FuncInv))
	if up == nil || up.Drive != 2 {
		t.Errorf("NextDriveUp(X1) = %v", up)
	}
	if lib.NextDriveUp(lib.Strongest(FuncInv)) != nil {
		t.Error("NextDriveUp(strongest) should be nil")
	}
}

func TestTrackRelativeTiming(t *testing.T) {
	l9, l12 := NewLibrary(testVariant9()), NewLibrary(testVariant12())
	// Same gate, same drive, same conditions: the 9-track variant must be
	// substantially slower — the paper reports ≈2.3× average stage delay
	// on critical paths (Table VIII).
	for _, f := range []Function{FuncInv, FuncNand2, FuncDFF} {
		m9, m12 := l9.Smallest(f), l12.Smallest(f)
		d9 := m9.Delay.Lookup(0.05, 10)
		d12 := m12.Delay.Lookup(0.05, 10)
		ratio := d9 / d12
		if ratio < 1.5 || ratio > 4.0 {
			t.Errorf("%v delay ratio 9T/12T = %v, want within [1.5, 4]", f, ratio)
		}
	}
}

func TestTrackRelativeAreaAndPower(t *testing.T) {
	l9, l12 := NewLibrary(testVariant9()), NewLibrary(testVariant12())
	m9, m12 := l9.Smallest(FuncNand2), l12.Smallest(FuncNand2)
	// Same width, 25 % lower height → 25 % smaller area.
	if math.Abs(m9.Width-m12.Width) > 1e-9 {
		t.Errorf("widths differ: %v vs %v", m9.Width, m12.Width)
	}
	if r := m9.Area() / m12.Area(); math.Abs(r-0.75) > 1e-9 {
		t.Errorf("area ratio = %v, want 0.75", r)
	}
	if m9.Leakage >= m12.Leakage {
		t.Error("9T must leak less than 12T")
	}
	if m9.InternalEnergy >= m12.InternalEnergy {
		t.Error("9T must switch cheaper than 12T")
	}
}

func TestEquivalentRetarget(t *testing.T) {
	l9, l12 := NewLibrary(testVariant9()), NewLibrary(testVariant12())
	src, _ := l12.Master("NAND2_X4_12T")
	got, err := l9.Equivalent(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Function != FuncNand2 || got.Drive != 4 || got.Track != tech.Track9 {
		t.Errorf("Equivalent = %+v", got)
	}
	ram := NewRAMMacro("RAM0", 50, 60, 0.3, 2, 5)
	if _, err := l9.Equivalent(ram); err == nil {
		t.Error("macros must not retarget")
	}
}

func TestMasterPins(t *testing.T) {
	lib := NewLibrary(testVariant12())
	dff := lib.Smallest(FuncDFF)
	if dff.ClockPin() != "CK" {
		t.Errorf("DFF clock pin = %q", dff.ClockPin())
	}
	if dff.OutputPin() != "Q" {
		t.Errorf("DFF output pin = %q", dff.OutputPin())
	}
	if dff.Setup <= 0 {
		t.Error("DFF setup must be positive")
	}
	nand := lib.Smallest(FuncNand2)
	if nand.ClockPin() != "" {
		t.Error("NAND2 must have no clock pin")
	}
	if nand.InputCap("A") <= 0 || nand.InputCap("B") <= 0 {
		t.Error("NAND2 input caps must be positive")
	}
	if nand.InputCap("") != nand.InputCap("A") {
		t.Error("empty pin name should return first input cap")
	}
	mux := lib.Smallest(FuncMux2)
	ins := 0
	for _, p := range mux.Pins {
		if p.Dir == DirIn {
			ins++
		}
	}
	if ins != 3 {
		t.Errorf("MUX2 has %d inputs, want 3", ins)
	}
}

func TestSequentialSetupScalesWithSlowness(t *testing.T) {
	l9, l12 := NewLibrary(testVariant9()), NewLibrary(testVariant12())
	if l9.Smallest(FuncDFF).Setup <= l12.Smallest(FuncDFF).Setup {
		t.Error("slower library should have larger setup time")
	}
}

func TestDriveStrengthImprovesDelayAndLoad(t *testing.T) {
	lib := NewLibrary(testVariant12())
	x1 := lib.ForDrive(FuncInv, 1)
	x8 := lib.ForDrive(FuncInv, 8)
	if x8.Delay.Lookup(0.05, 50) >= x1.Delay.Lookup(0.05, 50) {
		t.Error("X8 should be faster than X1 at heavy load")
	}
	if x8.MaxLoad <= x1.MaxLoad {
		t.Error("X8 should drive more load than X1")
	}
	if x8.InputCap("A") <= x1.InputCap("A") {
		t.Error("X8 should present more input cap than X1")
	}
	if x8.Area() <= x1.Area() {
		t.Error("X8 should be bigger than X1")
	}
}

func TestRAMMacro(t *testing.T) {
	ram := NewRAMMacro("RAM_4K", 55, 40, 0.25, 2.5, 8)
	if err := ram.Validate(); err != nil {
		t.Fatal(err)
	}
	if !ram.Function.IsMacro() {
		t.Error("RAM should be a macro")
	}
	if ram.Area() != 55*40 {
		t.Errorf("Area = %v", ram.Area())
	}
	if d := ram.Delay.Lookup(0.01, 10); d < 0.25 {
		t.Errorf("access delay = %v, want >= 0.25", d)
	}
}

func TestMasterValidateErrors(t *testing.T) {
	bad := &Master{Name: "", Width: 1, Height: 1, Drive: 1}
	if err := bad.Validate(); err == nil {
		t.Error("empty name should fail")
	}
	bad = &Master{Name: "X", Width: 0, Height: 1, Drive: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero width should fail")
	}
	bad = &Master{Name: "X", Width: 1, Height: 1, Drive: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero drive should fail")
	}
	bad = &Master{Name: "X", Width: 1, Height: 1, Drive: 1, Function: FuncInv}
	if err := bad.Validate(); err == nil {
		t.Error("missing tables should fail")
	}
}

func TestFunctionPredicates(t *testing.T) {
	if !FuncDFF.IsSequential() || FuncInv.IsSequential() {
		t.Error("IsSequential wrong")
	}
	if !FuncClkBuf.IsClockCell() || !FuncClkInv.IsClockCell() || FuncBuf.IsClockCell() {
		t.Error("IsClockCell wrong")
	}
	if !FuncMacroRAM.IsMacro() || FuncDFF.IsMacro() {
		t.Error("IsMacro wrong")
	}
	if FuncNand2.InputCount() != 2 || FuncAoi21.InputCount() != 3 || FuncInv.InputCount() != 1 {
		t.Error("InputCount wrong")
	}
	if FuncInv.String() != "INV" || Function(99).String() == "" {
		t.Error("Function.String wrong")
	}
	if DirIn.String() != "in" || DirOut.String() != "out" || DirClk.String() != "clk" {
		t.Error("Dir.String wrong")
	}
}
