package cell

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/tech"
)

// Liberty-format interchange.
//
// WriteLiberty serializes a library in the industry-standard Liberty
// syntax (groups, attributes, lu_table templates) so the generated
// libraries can be inspected with ordinary EDA tooling; ReadLiberty
// parses the same subset back. Units follow the repository conventions
// (ns, fF, kΩ, µW) and are declared in the header.

// WriteLiberty serializes the library.
func WriteLiberty(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	name := fmt.Sprintf("hetero3d_%dt", int(l.Variant.Track))
	fmt.Fprintf(bw, "library (%s) {\n", name)
	fmt.Fprintf(bw, "  delay_model : table_lookup;\n")
	fmt.Fprintf(bw, "  time_unit : \"1ns\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  leakage_power_unit : \"1uW\";\n")
	fmt.Fprintf(bw, "  nom_voltage : %.3f;\n", l.Variant.VDD)
	fmt.Fprintf(bw, "  comment : \"track height %d, cell height %.2f um\";\n", int(l.Variant.Track), l.Variant.CellHeight)

	fmt.Fprintf(bw, "  lu_table_template (delay_template) {\n")
	fmt.Fprintf(bw, "    variable_1 : input_net_transition;\n")
	fmt.Fprintf(bw, "    variable_2 : total_output_net_capacitance;\n")
	fmt.Fprintf(bw, "    index_1 (\"%s\");\n", floats(l.SlewAxis))
	fmt.Fprintf(bw, "    index_2 (\"%s\");\n", floats(l.LoadAxis))
	fmt.Fprintf(bw, "  }\n")

	for _, m := range l.Masters() {
		if err := writeLibertyCell(bw, m); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeLibertyCell(bw *bufio.Writer, m *Master) error {
	fmt.Fprintf(bw, "  cell (%s) {\n", m.Name)
	fmt.Fprintf(bw, "    area : %.4f;\n", m.Area())
	fmt.Fprintf(bw, "    cell_leakage_power : %.6f;\n", m.Leakage)
	fmt.Fprintf(bw, "    user_function_info : \"function %s drive X%d width %.4f height %.4f\";\n",
		m.Function, m.Drive, m.Width, m.Height)
	if m.Function.IsSequential() {
		fmt.Fprintf(bw, "    ff (IQ, IQN) { clocked_on : \"%s\"; next_state : \"D\"; }\n", m.ClockPin())
	}
	for _, p := range m.Pins {
		fmt.Fprintf(bw, "    pin (%s) {\n", p.Name)
		switch p.Dir {
		case DirOut:
			fmt.Fprintf(bw, "      direction : output;\n")
			fmt.Fprintf(bw, "      max_capacitance : %.4f;\n", m.MaxLoad)
			if m.Delay != nil {
				fmt.Fprintf(bw, "      timing () {\n")
				fmt.Fprintf(bw, "        related_pin : \"%s\";\n", firstInput(m))
				writeLibertyTable(bw, "cell_rise", m.Delay)
				writeLibertyTable(bw, "rise_transition", m.OutSlew)
				fmt.Fprintf(bw, "      }\n")
			}
			fmt.Fprintf(bw, "      internal_power () { rise_power : %.6f; }\n", m.InternalEnergy)
		case DirClk:
			fmt.Fprintf(bw, "      direction : input;\n")
			fmt.Fprintf(bw, "      clock : true;\n")
			fmt.Fprintf(bw, "      capacitance : %.4f;\n", p.Cap)
		default:
			fmt.Fprintf(bw, "      direction : input;\n")
			fmt.Fprintf(bw, "      capacitance : %.4f;\n", p.Cap)
			if m.Function.IsSequential() && p.Name == "D" {
				fmt.Fprintf(bw, "      timing () { timing_type : setup_rising; rise_constraint : %.6f; fall_constraint : %.6f; }\n",
					m.Setup, m.Hold)
			}
		}
		fmt.Fprintf(bw, "    }\n")
	}
	fmt.Fprintf(bw, "  }\n")
	return nil
}

func writeLibertyTable(bw *bufio.Writer, kind string, t *NLDM) {
	fmt.Fprintf(bw, "        %s (delay_template) {\n", kind)
	fmt.Fprintf(bw, "          values ( \\\n")
	for i, row := range t.Values {
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(bw, "            \"%s\"%s\n", floats(row), sep)
	}
	fmt.Fprintf(bw, "          );\n")
	fmt.Fprintf(bw, "        }\n")
}

func firstInput(m *Master) string {
	for _, p := range m.Pins {
		if p.Dir != DirOut {
			return p.Name
		}
	}
	return ""
}

func floats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', 8, 64)
	}
	return strings.Join(parts, ", ")
}

// --- Liberty reader (subset) ---

// libGroup is a parsed Liberty group: name, arguments, attributes, and
// child groups.
type libGroup struct {
	kind, arg string
	attrs     map[string]string
	children  []*libGroup
}

// ReadLiberty parses a library written by WriteLiberty and reconstructs
// masters with their tables. The tech variant is inferred from the
// library name and header attributes.
func ReadLiberty(r io.Reader) (*Library, error) {
	root, err := parseLibertyGroup(bufio.NewReader(r))
	if err != nil {
		return nil, err
	}
	if root.kind != "library" {
		return nil, fmt.Errorf("cell: top group is %q, want library", root.kind)
	}

	var track int
	if _, err := fmt.Sscanf(root.arg, "hetero3d_%dt", &track); err != nil {
		return nil, fmt.Errorf("cell: unrecognized library name %q", root.arg)
	}
	variant, err := tech.MakeVariant(track)
	if err != nil {
		return nil, err
	}

	lib := &Library{
		Variant: variant,
		byName:  make(map[string]*Master),
		byFunc:  make(map[Function][]*Master),
	}
	for _, g := range root.children {
		switch g.kind {
		case "lu_table_template":
			lib.SlewAxis, err = parseFloatList(stripIndex(g.attrs["index_1"]))
			if err != nil {
				return nil, fmt.Errorf("cell: index_1: %w", err)
			}
			lib.LoadAxis, err = parseFloatList(stripIndex(g.attrs["index_2"]))
			if err != nil {
				return nil, fmt.Errorf("cell: index_2: %w", err)
			}
		case "cell":
			m, err := libertyCell(lib, g)
			if err != nil {
				return nil, err
			}
			lib.add(m)
		}
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

func stripIndex(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	return strings.Trim(strings.TrimSpace(s), "\"")
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.Trim(strings.TrimSpace(tok), "\""))
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// funcByName inverts Function.String.
func funcByName(s string) (Function, bool) {
	for f, n := range funcNames {
		if n == s {
			return f, true
		}
	}
	return 0, false
}

func libertyCell(lib *Library, g *libGroup) (*Master, error) {
	m := &Master{Name: g.arg, Track: lib.Variant.Track, VDD: lib.Variant.VDD}
	// A user attribute carries function/drive/geometry; Liberty proper
	// has no standard slot for them.
	var fn string
	if _, err := fmt.Sscanf(g.attrs["user_function_info"], "function %s drive X%d width %f height %f",
		&fn, &m.Drive, &m.Width, &m.Height); err != nil {
		return nil, fmt.Errorf("cell: cell %s missing user_function_info: %w", g.arg, err)
	}
	f, ok := funcByName(fn)
	if !ok {
		return nil, fmt.Errorf("cell: unknown function %q in %s", fn, g.arg)
	}
	m.Function = f
	if v, err := strconv.ParseFloat(g.attrs["cell_leakage_power"], 64); err == nil {
		m.Leakage = v
	}

	for _, pg := range g.children {
		if pg.kind != "pin" {
			continue
		}
		spec := PinSpec{Name: pg.arg}
		switch {
		case pg.attrs["direction"] == "output":
			spec.Dir = DirOut
			if v, err := strconv.ParseFloat(pg.attrs["max_capacitance"], 64); err == nil {
				m.MaxLoad = v
			}
			for _, tg := range pg.children {
				switch tg.kind {
				case "timing":
					for _, tbl := range tg.children {
						vals, err := parseLibertyValues(tbl.attrs["values"])
						if err != nil {
							return nil, fmt.Errorf("cell: %s/%s: %w", g.arg, tbl.kind, err)
						}
						nl := &NLDM{SlewAxis: lib.SlewAxis, LoadAxis: lib.LoadAxis, Values: vals}
						if tbl.kind == "cell_rise" {
							m.Delay = nl
						} else {
							m.OutSlew = nl
						}
					}
				case "internal_power":
					if v, err := strconv.ParseFloat(tg.attrs["rise_power"], 64); err == nil {
						m.InternalEnergy = v
					}
				}
			}
		case pg.attrs["clock"] == "true":
			spec.Dir = DirClk
		default:
			spec.Dir = DirIn
		}
		if spec.Dir != DirOut {
			if v, err := strconv.ParseFloat(pg.attrs["capacitance"], 64); err == nil {
				spec.Cap = v
			}
			for _, tg := range pg.children {
				if tg.kind == "timing" && tg.attrs["timing_type"] == "setup_rising" {
					if v, err := strconv.ParseFloat(tg.attrs["rise_constraint"], 64); err == nil {
						m.Setup = v
					}
					if v, err := strconv.ParseFloat(tg.attrs["fall_constraint"], 64); err == nil {
						m.Hold = v
					}
				}
			}
		}
		m.Pins = append(m.Pins, spec)
	}
	return m, m.Validate()
}

func parseLibertyValues(s string) ([][]float64, error) {
	s = stripIndex(s)
	var out [][]float64
	for _, rowTxt := range strings.Split(s, "\"") {
		rowTxt = strings.Trim(strings.TrimSpace(rowTxt), ",\\ \t")
		if rowTxt == "" || rowTxt == "," {
			continue
		}
		row, err := parseFloatList(rowTxt)
		if err != nil {
			return nil, err
		}
		if len(row) > 0 {
			out = append(out, row)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cell: empty values table")
	}
	return out, nil
}

// parseLibertyGroup reads one `kind (arg) { ... }` group, recursively.
func parseLibertyGroup(br *bufio.Reader) (*libGroup, error) {
	head, err := readUntil(br, '{')
	if err != nil {
		return nil, err
	}
	g := &libGroup{attrs: map[string]string{}}
	g.kind, g.arg = splitHead(head)
	for {
		tok, delim, err := readStatement(br)
		if err != nil {
			return nil, err
		}
		switch delim {
		case '}':
			if strings.TrimSpace(tok) != "" {
				return nil, fmt.Errorf("cell: dangling text %q before '}'", tok)
			}
			return g, nil
		case ';':
			k, v := splitAttr(tok)
			if k != "" {
				g.attrs[k] = v
			}
		case '{':
			// Nested group: tok is its head. Re-parse its body.
			child := &libGroup{attrs: map[string]string{}}
			child.kind, child.arg = splitHead(tok)
			if err := parseGroupBody(br, child); err != nil {
				return nil, err
			}
			g.children = append(g.children, child)
		}
	}
}

func parseGroupBody(br *bufio.Reader, g *libGroup) error {
	for {
		tok, delim, err := readStatement(br)
		if err != nil {
			return err
		}
		switch delim {
		case '}':
			if strings.TrimSpace(tok) != "" {
				return fmt.Errorf("cell: dangling text %q before '}'", tok)
			}
			return nil
		case ';':
			k, v := splitAttr(tok)
			if k != "" {
				g.attrs[k] = v
			}
		case '{':
			child := &libGroup{attrs: map[string]string{}}
			child.kind, child.arg = splitHead(tok)
			if err := parseGroupBody(br, child); err != nil {
				return err
			}
			g.children = append(g.children, child)
		}
	}
}

// readStatement reads until ';', '{' or '}' outside quotes, handling
// comments and line continuations, and returns the text plus delimiter.
func readStatement(br *bufio.Reader) (string, byte, error) {
	var sb strings.Builder
	inQuote := false
	for {
		c, err := br.ReadByte()
		if err != nil {
			return "", 0, fmt.Errorf("cell: unexpected EOF in liberty")
		}
		switch {
		case c == '"':
			inQuote = !inQuote
			sb.WriteByte(c)
		case inQuote:
			sb.WriteByte(c)
		case c == '\\':
			// line continuation: swallow through end of line
			if _, err := br.ReadString('\n'); err != nil {
				return "", 0, err
			}
		case c == '/':
			if nc, err := br.ReadByte(); err == nil && nc == '*' {
				// block comment: skipped
				if _, err := readBlockComment(br); err != nil {
					return "", 0, err
				}
			} else {
				sb.WriteByte(c)
				if err == nil {
					if err := br.UnreadByte(); err != nil {
						return "", 0, err
					}
				}
			}
		case c == ';' || c == '{' || c == '}':
			return strings.TrimSpace(sb.String()), c, nil
		default:
			sb.WriteByte(c)
		}
	}
}

func readBlockComment(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	prev := byte(0)
	for {
		c, err := br.ReadByte()
		if err != nil {
			return "", fmt.Errorf("cell: unterminated comment")
		}
		if prev == '*' && c == '/' {
			return strings.TrimSpace(strings.TrimSuffix(sb.String(), "*")), nil
		}
		sb.WriteByte(c)
		prev = c
	}
}

func readUntil(br *bufio.Reader, delim byte) (string, error) {
	s, err := br.ReadString(delim)
	if err != nil {
		return "", fmt.Errorf("cell: missing %q in liberty", string(delim))
	}
	return strings.TrimSuffix(s, string(delim)), nil
}

// splitHead splits `kind (arg)` into its parts.
func splitHead(s string) (kind, arg string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '('); i >= 0 {
		kind = strings.TrimSpace(s[:i])
		arg = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s[i+1:]), ")"))
		return kind, arg
	}
	return s, ""
}

// splitAttr splits `key : value` (also handling `key (args)` simple
// attributes and the _comment pseudo-attribute).
func splitAttr(s string) (key, val string) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", ""
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.Trim(strings.TrimSpace(s[i+1:]), "\"")
	}
	if i := strings.IndexByte(s, '('); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i:])
	}
	return s, "true"
}
