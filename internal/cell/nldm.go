// Package cell models standard-cell libraries: cell masters with
// NLDM-style (nonlinear delay model) timing tables, pin capacitances, area,
// and power data, plus a generator that builds complete 9-track and
// 12-track libraries from a tech.Variant.
//
// The libraries are the substitution for the paper's commercial foundry
// 28 nm multi-track libraries (DESIGN.md §1): absolute numbers are
// synthetic but the relative 9T-vs-12T behaviour is calibrated to the
// paper.
package cell

import (
	"fmt"
	"math"
)

// NLDM is a two-dimensional lookup table indexed by input slew (ns) and
// output load (fF), the standard Liberty table form. Lookups use bilinear
// interpolation inside the characterized ranges and clamped linear
// extrapolation outside, mirroring commercial STA behaviour. The paper
// leans on this: boundary-cell slews shifted by ±15 % stay "easily captured
// by the tool" because characterization spans two to three orders of
// magnitude (Sec. II-B).
type NLDM struct {
	SlewAxis []float64 // ascending, ns
	LoadAxis []float64 // ascending, fF
	// Values[i][j] corresponds to SlewAxis[i], LoadAxis[j].
	Values [][]float64
}

// NewNLDM builds a table by evaluating f at every axis point.
func NewNLDM(slewAxis, loadAxis []float64, f func(slew, load float64) float64) *NLDM {
	vals := make([][]float64, len(slewAxis))
	for i, s := range slewAxis {
		row := make([]float64, len(loadAxis))
		for j, l := range loadAxis {
			row[j] = f(s, l)
		}
		vals[i] = row
	}
	return &NLDM{SlewAxis: slewAxis, LoadAxis: loadAxis, Values: vals}
}

// Validate checks table invariants: axes ascending, dimensions consistent.
func (t *NLDM) Validate() error {
	if len(t.SlewAxis) == 0 || len(t.LoadAxis) == 0 {
		return fmt.Errorf("cell: NLDM axes must be non-empty")
	}
	for i := 1; i < len(t.SlewAxis); i++ {
		if t.SlewAxis[i] <= t.SlewAxis[i-1] {
			return fmt.Errorf("cell: NLDM slew axis not ascending at %d", i)
		}
	}
	for j := 1; j < len(t.LoadAxis); j++ {
		if t.LoadAxis[j] <= t.LoadAxis[j-1] {
			return fmt.Errorf("cell: NLDM load axis not ascending at %d", j)
		}
	}
	if len(t.Values) != len(t.SlewAxis) {
		return fmt.Errorf("cell: NLDM has %d rows, want %d", len(t.Values), len(t.SlewAxis))
	}
	for i, row := range t.Values {
		if len(row) != len(t.LoadAxis) {
			return fmt.Errorf("cell: NLDM row %d has %d cols, want %d", i, len(row), len(t.LoadAxis))
		}
	}
	return nil
}

// segment finds the bracketing interval [k, k+1] for x on axis and the
// interpolation fraction within it. Outside the axis it clamps to the edge
// interval, yielding linear extrapolation.
func segment(axis []float64, x float64) (k int, frac float64) {
	n := len(axis)
	if n == 1 {
		return 0, 0
	}
	if x <= axis[0] {
		k = 0
	} else if x >= axis[n-1] {
		k = n - 2
	} else {
		// Binary search for the interval.
		lo, hi := 0, n-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if axis[mid] <= x {
				lo = mid
			} else {
				hi = mid
			}
		}
		k = lo
	}
	frac = (x - axis[k]) / (axis[k+1] - axis[k])
	return k, frac
}

// Lookup evaluates the table at (slew, load) with bilinear interpolation
// and clamped-slope extrapolation beyond the characterized box.
func (t *NLDM) Lookup(slew, load float64) float64 {
	i, fs := segment(t.SlewAxis, slew)
	j, fl := segment(t.LoadAxis, load)
	if len(t.SlewAxis) == 1 && len(t.LoadAxis) == 1 {
		return t.Values[0][0]
	}
	if len(t.SlewAxis) == 1 {
		return lerp(t.Values[0][j], t.Values[0][j+1], fl)
	}
	if len(t.LoadAxis) == 1 {
		return lerp(t.Values[i][0], t.Values[i+1][0], fs)
	}
	v0 := lerp(t.Values[i][j], t.Values[i][j+1], fl)
	v1 := lerp(t.Values[i+1][j], t.Values[i+1][j+1], fl)
	return lerp(v0, v1, fs)
}

func lerp(a, b, f float64) float64 { return a + (b-a)*f }

// MinValue returns the smallest table entry (used by sanity checks).
func (t *NLDM) MinValue() float64 {
	m := math.Inf(1)
	for _, row := range t.Values {
		for _, v := range row {
			if v < m {
				m = v
			}
		}
	}
	return m
}

// LogAxis builds an n-point logarithmically spaced axis from lo to hi,
// the usual shape of Liberty characterization axes.
func LogAxis(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range out {
		out[i] = x
		x *= ratio
	}
	out[n-1] = hi // kill accumulated rounding
	return out
}
