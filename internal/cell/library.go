package cell

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tech"
)

// leParams carries the logical-effort-style generation parameters for one
// function: logical effort g (relative input load / drive resistance),
// parasitic p (intrinsic delay multiple), layout width (µm at X1), and
// scaling factors for leakage and internal energy.
type leParams struct {
	g, p       float64
	width      float64
	leakFactor float64
	enerFactor float64
}

// Classic logical-effort values (Sutherland/Sproull/Harris), with layout
// widths typical of a 28 nm high-density library.
var leTable = map[Function]leParams{
	FuncInv:     {g: 1.00, p: 1.0, width: 0.40, leakFactor: 1.0, enerFactor: 1.0},
	FuncBuf:     {g: 1.00, p: 2.0, width: 0.60, leakFactor: 1.6, enerFactor: 1.8},
	FuncNand2:   {g: 4.0 / 3, p: 2.0, width: 0.50, leakFactor: 1.4, enerFactor: 1.5},
	FuncNor2:    {g: 5.0 / 3, p: 2.0, width: 0.50, leakFactor: 1.4, enerFactor: 1.5},
	FuncAnd2:    {g: 4.0 / 3, p: 3.0, width: 0.70, leakFactor: 1.9, enerFactor: 2.2},
	FuncOr2:     {g: 5.0 / 3, p: 3.0, width: 0.70, leakFactor: 1.9, enerFactor: 2.2},
	FuncXor2:    {g: 4.00, p: 4.0, width: 1.10, leakFactor: 2.8, enerFactor: 3.5},
	FuncXnor2:   {g: 4.00, p: 4.0, width: 1.10, leakFactor: 2.8, enerFactor: 3.5},
	FuncAoi21:   {g: 1.70, p: 2.5, width: 0.80, leakFactor: 2.0, enerFactor: 2.3},
	FuncOai21:   {g: 1.70, p: 2.5, width: 0.80, leakFactor: 2.0, enerFactor: 2.3},
	FuncMux2:    {g: 2.00, p: 3.5, width: 1.00, leakFactor: 2.4, enerFactor: 2.8},
	FuncDFF:     {g: 1.50, p: 3.0, width: 2.20, leakFactor: 4.5, enerFactor: 6.0},
	FuncClkBuf:  {g: 1.00, p: 2.0, width: 0.70, leakFactor: 1.8, enerFactor: 2.0},
	FuncClkInv:  {g: 1.00, p: 1.0, width: 0.45, leakFactor: 1.1, enerFactor: 1.1},
	FuncLevelSh: {g: 2.50, p: 6.0, width: 1.40, leakFactor: 5.0, enerFactor: 7.0},
}

// driveSet returns the drive strengths generated for a function.
func driveSet(f Function) []int {
	switch f {
	case FuncDFF:
		return []int{1, 2, 4}
	case FuncClkBuf, FuncClkInv:
		return []int{2, 4, 8, 16}
	case FuncLevelSh:
		return []int{1, 2, 4}
	default:
		return []int{1, 2, 4, 8}
	}
}

// Library is a complete standard-cell library for one track variant.
type Library struct {
	Variant tech.Variant
	// SlewAxis and LoadAxis are shared by every master's tables.
	SlewAxis, LoadAxis []float64

	byName  map[string]*Master
	byFunc  map[Function][]*Master // ascending drive
	masters []*Master
}

// CombFunctions lists the combinational functions every library provides,
// in deterministic order (used by synthesis and tests).
var CombFunctions = []Function{
	FuncInv, FuncBuf, FuncNand2, FuncNor2, FuncAnd2, FuncOr2,
	FuncXor2, FuncXnor2, FuncAoi21, FuncOai21, FuncMux2,
}

// NewLibrary generates the full library for a track variant. Table axes
// span roughly three decades of slew and load, matching the paper's remark
// that characterization ranges comfortably absorb ±15 % boundary slew
// shifts (Sec. II-B).
func NewLibrary(v tech.Variant) *Library {
	lib := &Library{
		Variant:  v,
		SlewAxis: LogAxis(0.002, 0.600, 7),
		LoadAxis: LogAxis(0.4, 400.0, 7),
		byName:   make(map[string]*Master),
		byFunc:   make(map[Function][]*Master),
	}
	funcs := append(append([]Function{}, CombFunctions...), FuncDFF, FuncClkBuf, FuncClkInv, FuncLevelSh)
	for _, f := range funcs {
		for _, d := range driveSet(f) {
			lib.add(lib.genMaster(f, d))
		}
	}
	return lib
}

func (l *Library) add(m *Master) {
	l.byName[m.Name] = m
	l.byFunc[m.Function] = append(l.byFunc[m.Function], m)
	sort.Slice(l.byFunc[m.Function], func(i, j int) bool {
		return l.byFunc[m.Function][i].Drive < l.byFunc[m.Function][j].Drive
	})
	l.masters = append(l.masters, m)
}

// genMaster builds one master from the logical-effort model.
func (l *Library) genMaster(f Function, drive int) *Master {
	v := l.Variant
	le := leTable[f]
	d := float64(drive)

	// Effective switching resistance of this gate at this drive.
	reff := v.DriveRes * le.g / d
	intrinsic := v.IntrinsicDelay * le.p
	// The level shifter additionally pays a voltage-conversion penalty.
	if f == FuncLevelSh {
		intrinsic *= 1.5
	}

	delay := NewNLDM(l.SlewAxis, l.LoadAxis, func(slew, load float64) float64 {
		return intrinsic + tech.RCps(reff, load) + 0.22*slew
	})
	outSlew := NewNLDM(l.SlewAxis, l.LoadAxis, func(slew, load float64) float64 {
		s := 2.2*tech.RCps(reff, load) + 0.10*slew + 0.3*intrinsic
		return math.Max(s, 0.001)
	})

	width := le.width * (0.6 + 0.4*d)
	inCap := v.InputCap * le.g * (0.55 + 0.45*d)

	name := fmt.Sprintf("%s_X%d_%dT", f, drive, int(v.Track))

	m := &Master{
		Name:           name,
		Function:       f,
		Drive:          drive,
		Width:          width,
		Height:         v.CellHeight,
		Delay:          delay,
		OutSlew:        outSlew,
		Leakage:        v.LeakagePower * le.leakFactor * d,
		InternalEnergy: v.InternalEnergy * le.enerFactor * d,
		MaxLoad:        25 * d / v.DriveRes,
		Track:          v.Track,
		VDD:            v.VDD,
	}

	switch {
	case f.IsSequential():
		m.Pins = []PinSpec{
			{Name: "D", Dir: DirIn, Cap: inCap * 0.8},
			{Name: "CK", Dir: DirClk, Cap: inCap * 0.6},
			{Name: "Q", Dir: DirOut},
		}
		// Slower libraries need longer setup windows.
		m.Setup = 0.018 * v.DriveRes
		m.Hold = 0.002
	case f.InputCount() == 1:
		m.Pins = []PinSpec{
			{Name: "A", Dir: DirIn, Cap: inCap},
			{Name: "Y", Dir: DirOut},
		}
	case f.InputCount() == 2:
		m.Pins = []PinSpec{
			{Name: "A", Dir: DirIn, Cap: inCap},
			{Name: "B", Dir: DirIn, Cap: inCap},
			{Name: "Y", Dir: DirOut},
		}
	default: // 3-input gates
		m.Pins = []PinSpec{
			{Name: "A", Dir: DirIn, Cap: inCap},
			{Name: "B", Dir: DirIn, Cap: inCap},
			{Name: "C", Dir: DirIn, Cap: inCap * 0.8},
			{Name: "Y", Dir: DirOut},
		}
	}
	return m
}

// Master returns the named master, or an error naming the library.
func (l *Library) Master(name string) (*Master, error) {
	if m, ok := l.byName[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("cell: no master %q in %v library", name, l.Variant.Track)
}

// ByFunction returns the masters implementing f, ascending by drive. The
// returned slice is owned by the library; callers must not mutate it.
func (l *Library) ByFunction(f Function) []*Master { return l.byFunc[f] }

// Smallest returns the weakest-drive master for f, or nil.
func (l *Library) Smallest(f Function) *Master {
	ms := l.byFunc[f]
	if len(ms) == 0 {
		return nil
	}
	return ms[0]
}

// Strongest returns the strongest-drive master for f, or nil.
func (l *Library) Strongest(f Function) *Master {
	ms := l.byFunc[f]
	if len(ms) == 0 {
		return nil
	}
	return ms[len(ms)-1]
}

// ForDrive returns the master of function f whose drive is the smallest
// one ≥ want, falling back to the strongest available.
func (l *Library) ForDrive(f Function, want int) *Master {
	ms := l.byFunc[f]
	if len(ms) == 0 {
		return nil
	}
	for _, m := range ms {
		if m.Drive >= want {
			return m
		}
	}
	return ms[len(ms)-1]
}

// NextDriveUp returns the next stronger master of the same function, or
// nil when m is already the strongest.
func (l *Library) NextDriveUp(m *Master) *Master {
	ms := l.byFunc[m.Function]
	for i, c := range ms {
		if c.Drive == m.Drive && i+1 < len(ms) {
			return ms[i+1]
		}
	}
	return nil
}

// Equivalent returns this library's master matching another library's
// master by function and drive — the retargeting primitive used when the
// heterogeneous flow remaps pseudo-3-D 12-track cells onto the 9-track top
// tier (Sec. IV-A2).
func (l *Library) Equivalent(other *Master) (*Master, error) {
	if other.Function.IsMacro() {
		return nil, fmt.Errorf("cell: macros have no library equivalent")
	}
	m := l.ForDrive(other.Function, other.Drive)
	if m == nil {
		return nil, fmt.Errorf("cell: no %v master in %v library", other.Function, l.Variant.Track)
	}
	return m, nil
}

// Masters returns all masters in deterministic generation order.
func (l *Library) Masters() []*Master { return l.masters }

// Validate checks every master in the library.
func (l *Library) Validate() error {
	for _, m := range l.masters {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NewRAMMacro builds a memory hard-macro master. Memory macros keep the
// same size in both technology variants (the paper: "the memories in the
// CPU design are of the same size in both technology variants").
func NewRAMMacro(name string, width, height float64, accessDelay, inCap, leakage float64) *Master {
	return &Master{
		Name:     name,
		Function: FuncMacroRAM,
		Drive:    1,
		Width:    width,
		Height:   height,
		Pins: []PinSpec{
			{Name: "A", Dir: DirIn, Cap: inCap},
			{Name: "CK", Dir: DirClk, Cap: inCap},
			{Name: "Q", Dir: DirOut},
		},
		Delay: NewNLDM([]float64{0.01}, []float64{1, 100}, func(_, load float64) float64 {
			return accessDelay + load*1e-4
		}),
		OutSlew: NewNLDM([]float64{0.01}, []float64{1, 100}, func(_, load float64) float64 {
			return 0.02 + load*2e-4
		}),
		Setup:          0.050,
		Leakage:        leakage,
		InternalEnergy: 50,
		MaxLoad:        200,
		Track:          tech.Track12,
		VDD:            0.9,
	}
}
