package cell

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
)

func TestLibertyWrite(t *testing.T) {
	lib := NewLibrary(tech.Variant9T())
	var sb strings.Builder
	if err := WriteLiberty(&sb, lib); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"library (hetero3d_9t)",
		"lu_table_template (delay_template)",
		"cell (INV_X1_9T)",
		"cell (DFF_X4_9T)",
		"direction : output",
		"clock : true",
		"cell_rise (delay_template)",
		"rise_transition (delay_template)",
		"nom_voltage : 0.810",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("liberty missing %q", want)
		}
	}
}

func TestLibertyRoundtrip(t *testing.T) {
	src := NewLibrary(tech.Variant12T())
	var sb strings.Builder
	if err := WriteLiberty(&sb, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLiberty(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Variant.Track != tech.Track12 {
		t.Fatalf("track = %v", back.Variant.Track)
	}
	if len(back.Masters()) != len(src.Masters()) {
		t.Fatalf("masters: %d vs %d", len(back.Masters()), len(src.Masters()))
	}
	for _, sm := range src.Masters() {
		bm, err := back.Master(sm.Name)
		if err != nil {
			t.Fatalf("master %s lost: %v", sm.Name, err)
		}
		if bm.Function != sm.Function || bm.Drive != sm.Drive {
			t.Errorf("%s identity changed", sm.Name)
		}
		if math.Abs(bm.Area()-sm.Area()) > 1e-6 {
			t.Errorf("%s area %v vs %v", sm.Name, bm.Area(), sm.Area())
		}
		if math.Abs(bm.Leakage-sm.Leakage) > 1e-6 {
			t.Errorf("%s leakage changed", sm.Name)
		}
		if len(bm.Pins) != len(sm.Pins) {
			t.Fatalf("%s pins %d vs %d", sm.Name, len(bm.Pins), len(sm.Pins))
		}
		for i := range sm.Pins {
			if bm.Pins[i].Name != sm.Pins[i].Name || bm.Pins[i].Dir != sm.Pins[i].Dir {
				t.Errorf("%s pin %d changed", sm.Name, i)
			}
			if math.Abs(bm.Pins[i].Cap-sm.Pins[i].Cap) > 1e-4 {
				t.Errorf("%s pin %s cap %v vs %v", sm.Name, sm.Pins[i].Name, bm.Pins[i].Cap, sm.Pins[i].Cap)
			}
		}
		// Timing tables reproduce within print precision at a few lookup
		// points.
		for _, pt := range [][2]float64{{0.01, 2}, {0.1, 50}, {0.4, 300}} {
			want := sm.Delay.Lookup(pt[0], pt[1])
			got := bm.Delay.Lookup(pt[0], pt[1])
			if math.Abs(got-want) > 1e-6+1e-6*want {
				t.Errorf("%s delay(%v,%v) %v vs %v", sm.Name, pt[0], pt[1], got, want)
			}
		}
		if sm.Function.IsSequential() {
			if math.Abs(bm.Setup-sm.Setup) > 1e-6 || math.Abs(bm.Hold-sm.Hold) > 1e-6 {
				t.Errorf("%s setup/hold changed", sm.Name)
			}
		}
	}
}

func TestLibertyReadErrors(t *testing.T) {
	cases := []string{
		"",
		"module (x) { }",
		"library (unknown_name) { }",
		"library (hetero3d_9t) { cell (X) { } }", // missing metadata
	}
	for i, src := range cases {
		if _, err := ReadLiberty(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSplitHelpers(t *testing.T) {
	k, a := splitHead("cell (INV_X1_9T)")
	if k != "cell" || a != "INV_X1_9T" {
		t.Errorf("splitHead = %q %q", k, a)
	}
	k, a = splitHead("timing ()")
	if k != "timing" || a != "" {
		t.Errorf("splitHead() = %q %q", k, a)
	}
	key, val := splitAttr(`time_unit : "1ns"`)
	if key != "time_unit" || val != "1ns" {
		t.Errorf("splitAttr = %q %q", key, val)
	}
	key, val = splitAttr(`index_1 ("1, 2, 3")`)
	if key != "index_1" || !strings.Contains(val, "1, 2, 3") {
		t.Errorf("splitAttr index = %q %q", key, val)
	}
	if vals, err := parseFloatList(`"1.5, 2.5"`); err != nil || len(vals) != 2 || vals[1] != 2.5 {
		t.Errorf("parseFloatList = %v %v", vals, err)
	}
}
