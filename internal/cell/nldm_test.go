package cell

import (
	"math"
	"testing"
	"testing/quick"
)

func linTable() *NLDM {
	// f(s, l) = 2s + 3l: bilinear interpolation must be exact.
	return NewNLDM([]float64{0.01, 0.1, 1.0}, []float64{1, 10, 100},
		func(s, l float64) float64 { return 2*s + 3*l })
}

func TestNLDMValidate(t *testing.T) {
	if err := linTable().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &NLDM{SlewAxis: []float64{1, 1}, LoadAxis: []float64{1}, Values: [][]float64{{1}, {1}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for non-ascending slew axis")
	}
	bad2 := &NLDM{SlewAxis: []float64{1}, LoadAxis: []float64{1, 2}, Values: [][]float64{{1}}}
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for ragged values")
	}
	empty := &NLDM{}
	if err := empty.Validate(); err == nil {
		t.Error("expected error for empty axes")
	}
}

func TestNLDMExactAtGridPoints(t *testing.T) {
	tab := linTable()
	for _, s := range tab.SlewAxis {
		for _, l := range tab.LoadAxis {
			want := 2*s + 3*l
			if got := tab.Lookup(s, l); math.Abs(got-want) > 1e-9 {
				t.Errorf("Lookup(%v,%v) = %v, want %v", s, l, got, want)
			}
		}
	}
}

func TestNLDMInterpolationIsExactForLinear(t *testing.T) {
	tab := linTable()
	f := func(su, lu uint16) bool {
		s := 0.01 + float64(su%1000)/1000*0.99
		l := 1 + float64(lu%1000)/1000*99
		want := 2*s + 3*l
		return math.Abs(tab.Lookup(s, l)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNLDMExtrapolation(t *testing.T) {
	tab := linTable()
	// Beyond the characterized box, the clamped-slope extrapolation keeps
	// the linear model exact.
	if got, want := tab.Lookup(2.0, 200), 2*2.0+3*200.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("extrapolated Lookup = %v, want %v", got, want)
	}
	if got, want := tab.Lookup(0.001, 0.5), 2*0.001+3*0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("low extrapolation = %v, want %v", got, want)
	}
}

func TestNLDMDegenerateAxes(t *testing.T) {
	one := NewNLDM([]float64{0.1}, []float64{5}, func(s, l float64) float64 { return 42 })
	if got := one.Lookup(9, 9); got != 42 {
		t.Errorf("1x1 Lookup = %v, want 42", got)
	}
	row := NewNLDM([]float64{0.1}, []float64{1, 10}, func(s, l float64) float64 { return l })
	if got := row.Lookup(0.5, 5.5); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("1xN Lookup = %v, want 5.5", got)
	}
	col := NewNLDM([]float64{1, 10}, []float64{5}, func(s, l float64) float64 { return s })
	if got := col.Lookup(4, 99); math.Abs(got-4) > 1e-9 {
		t.Errorf("Nx1 Lookup = %v, want 4", got)
	}
}

func TestNLDMMonotoneInLoad(t *testing.T) {
	// Real delay tables must be monotone in load; check a generated one.
	lib := NewLibrary(testVariant12())
	m := lib.Smallest(FuncInv)
	prev := -1.0
	for l := 1.0; l < 300; l *= 1.7 {
		d := m.Delay.Lookup(0.05, l)
		if d <= prev {
			t.Fatalf("delay not increasing in load at %v: %v <= %v", l, d, prev)
		}
		prev = d
	}
}

func TestNLDMMinValue(t *testing.T) {
	tab := linTable()
	want := 2*0.01 + 3*1.0
	if got := tab.MinValue(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MinValue = %v, want %v", got, want)
	}
}

func TestLogAxis(t *testing.T) {
	ax := LogAxis(0.01, 10, 4)
	if len(ax) != 4 {
		t.Fatalf("len = %d", len(ax))
	}
	if ax[0] != 0.01 || ax[3] != 10 {
		t.Errorf("endpoints = %v, %v", ax[0], ax[3])
	}
	// Log spacing: constant ratio.
	r1, r2 := ax[1]/ax[0], ax[2]/ax[1]
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("ratios differ: %v vs %v", r1, r2)
	}
	// Degenerate requests collapse to a single point.
	if got := LogAxis(1, 0.5, 5); len(got) != 1 {
		t.Errorf("descending axis should degrade to single point, got %v", got)
	}
	if got := LogAxis(1, 10, 1); len(got) != 1 {
		t.Errorf("n=1 should return single point, got %v", got)
	}
}
