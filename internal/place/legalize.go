package place

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// LegalizeReport summarizes a legalization run.
type LegalizeReport struct {
	Cells        int
	MaxDisp      float64 // largest cell displacement, µm
	AvgDisp      float64
	RowsUsed     int
	OverflowArea float64 // cell area that had to spill to far rows
}

// Legalize snaps the given cells into non-overlapping row sites inside
// region using a Tetris-style greedy: cells are processed in x order and
// dropped into the nearest row with space. rowHeight is the library cell
// height — for a heterogeneous 3-D design each tier legalizes separately
// with its own height (9-track rows on top, 12-track on the bottom, the
// visible difference in Fig. 3c).
func Legalize(cells []*netlist.Instance, region geom.Rect, rowHeight float64) (*LegalizeReport, error) {
	if rowHeight <= 0 {
		return nil, fmt.Errorf("place: row height %v must be positive", rowHeight)
	}
	if region.Empty() {
		return nil, fmt.Errorf("place: empty legalization region")
	}
	nRows := int(region.H() / rowHeight)
	if nRows < 1 {
		return nil, fmt.Errorf("place: region height %v below one row %v", region.H(), rowHeight)
	}
	rep := &LegalizeReport{Cells: len(cells)}
	if len(cells) == 0 {
		return rep, nil
	}

	rowY := func(r int) float64 { return region.Ly + (float64(r)+0.5)*rowHeight }
	rowW := region.W()

	// ---- Phase 1: assign each cell to a row near its target y, bounded
	// by per-row width capacity.
	used := make([]float64, nRows)
	rows := make([][]*netlist.Instance, nRows)
	order := append([]*netlist.Instance{}, cells...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Loc.Y != order[j].Loc.Y {
			return order[i].Loc.Y < order[j].Loc.Y
		}
		return order[i].ID < order[j].ID
	})
	// Leave a little per-row slack so phase 2 can keep cells near their
	// desired x.
	capW := rowW * 0.99
	for _, c := range order {
		w := c.Master.Width
		target := int((c.Loc.Y - region.Ly) / rowHeight)
		if target < 0 {
			target = 0
		}
		if target >= nRows {
			target = nRows - 1
		}
		r := -1
		for radius := 0; radius < nRows; radius++ {
			if t := target - radius; t >= 0 && used[t]+w <= capW {
				r = t
				break
			}
			if t := target + radius; radius > 0 && t < nRows && used[t]+w <= capW {
				r = t
				break
			}
		}
		if r < 0 {
			// Relax the slack: any row with raw capacity.
			for t := 0; t < nRows; t++ {
				if used[t]+w <= rowW {
					r = t
					break
				}
			}
		}
		if r < 0 {
			var demand float64
			for _, cc := range cells {
				demand += cc.Master.Width
			}
			return nil, fmt.Errorf("place: no row can host cell %s (width %v; %d cells demand %.0f µm of %d×%.0f µm row capacity)",
				c.Name, w, len(cells), demand, nRows, rowW)
		}
		used[r] += w
		rows[r] = append(rows[r], c)
	}

	// ---- Phase 2: within each row, keep cells at their desired x and
	// resolve overlaps with a forward push then a backward pull — the
	// cluster-free core of Abacus-style legalization.
	sumDisp := 0.0
	rowsUsed := 0
	for r, members := range rows {
		if len(members) == 0 {
			continue
		}
		rowsUsed++
		sort.Slice(members, func(i, j int) bool {
			if members[i].Loc.X != members[j].Loc.X {
				return members[i].Loc.X < members[j].Loc.X
			}
			return members[i].ID < members[j].ID
		})
		xs := make([]float64, len(members)) // left edges
		cursor := region.Lx
		for i, c := range members {
			w := c.Master.Width
			x := c.Loc.X - w/2
			if x < cursor {
				x = cursor
			}
			xs[i] = x
			cursor = x + w
		}
		// Pull back anything pushed past the right edge.
		limit := region.Ux
		for i := len(members) - 1; i >= 0; i-- {
			w := members[i].Master.Width
			if xs[i]+w > limit {
				xs[i] = limit - w
			}
			limit = xs[i]
		}
		for i, c := range members {
			w := c.Master.Width
			newLoc := geom.Pt(xs[i]+w/2, rowY(r))
			disp := c.Loc.ManhattanDist(newLoc)
			if disp > rep.MaxDisp {
				rep.MaxDisp = disp
			}
			sumDisp += disp
			if disp > 3*rowHeight+w {
				rep.OverflowArea += c.Master.Area()
			}
			// Journaled move: a no-op for cells that were already legal, so
			// re-legalizing an unchanged region leaves RC caches warm.
			c.SetLoc(newLoc)
		}
	}
	rep.AvgDisp = sumDisp / float64(len(cells))
	rep.RowsUsed = rowsUsed
	return rep, nil
}

// LegalizeTiers legalizes a (possibly heterogeneous) design tier by tier:
// each tier's movable cells snap into rows of that tier's library height.
// 2-D designs call it with one tier's worth of cells on TierBottom.
func LegalizeTiers(d *netlist.Design, core geom.Rect, rowHeight [2]float64, tiers int) ([]*LegalizeReport, error) {
	var reports []*LegalizeReport
	for t := 0; t < tiers; t++ {
		var cells []*netlist.Instance
		for _, inst := range d.Instances {
			if inst.Fixed || inst.Master.Function.IsMacro() {
				continue
			}
			if tiers == 2 && inst.Tier != tech.Tier(t) {
				continue
			}
			cells = append(cells, inst)
		}
		rep, err := Legalize(cells, core, rowHeight[t])
		if err != nil {
			return reports, fmt.Errorf("place: tier %d: %w", t, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// CheckLegal verifies that no two cells of the same tier overlap and that
// every cell is inside region (tolerating eps). It is the test oracle for
// the legalizer.
func CheckLegal(cells []*netlist.Instance, region geom.Rect, eps float64) error {
	type rowKey struct {
		tier tech.Tier
		y    int64
	}
	rows := make(map[rowKey][]*netlist.Instance)
	for _, c := range cells {
		half := c.Master.Width / 2
		if c.Loc.X-half < region.Lx-eps || c.Loc.X+half > region.Ux+eps ||
			c.Loc.Y < region.Ly-eps || c.Loc.Y > region.Uy+eps {
			return fmt.Errorf("place: cell %s at %v outside region %v", c.Name, c.Loc, region)
		}
		k := rowKey{c.Tier, int64(math.Round(c.Loc.Y * 1e6))}
		rows[k] = append(rows[k], c)
	}
	// Check rows in (tier, y) order so the first error named is the same
	// on every run.
	keys := make([]rowKey, 0, len(rows))
	for k := range rows { //maporder:ok collection loop; keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tier != keys[j].tier {
			return keys[i].tier < keys[j].tier
		}
		return keys[i].y < keys[j].y
	})
	for _, k := range keys {
		row := rows[k]
		sort.Slice(row, func(i, j int) bool { return row[i].Loc.X < row[j].Loc.X })
		for i := 1; i < len(row); i++ {
			a, b := row[i-1], row[i]
			if a.Loc.X+a.Master.Width/2 > b.Loc.X-b.Master.Width/2+eps {
				return fmt.Errorf("place: cells %s and %s overlap in row y=%v", a.Name, b.Name, a.Loc.Y)
			}
		}
	}
	return nil
}

// DensityMap bins cell area into an nx × ny histogram over the outline
// for one tier — the data behind the Fig. 3 density/layout views.
func DensityMap(d *netlist.Design, outline geom.Rect, tier tech.Tier, tiers, nx, ny int) (*geom.Histogram, error) {
	grid, err := geom.NewGrid(outline, nx, ny)
	if err != nil {
		return nil, err
	}
	hist := geom.NewHistogram(grid)
	for _, inst := range d.Instances {
		if tiers == 2 && inst.Tier != tier {
			continue
		}
		w, h := inst.Master.Width, inst.Master.Height
		r := geom.R(inst.Loc.X-w/2, inst.Loc.Y-h/2, inst.Loc.X+w/2, inst.Loc.Y+h/2)
		hist.AddRect(r, inst.Master.Area())
	}
	return hist, nil
}
