package place

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// randomCells builds n unconnected cells with random desired locations —
// pure legalizer fodder.
func randomCells(t testing.TB, n int, region geom.Rect, seed int64) []*netlist.Instance {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("rand")
	fns := []cell.Function{cell.FuncInv, cell.FuncNand2, cell.FuncXor2, cell.FuncDFF, cell.FuncMux2}
	var cells []*netlist.Instance
	for i := 0; i < n; i++ {
		m := lib.ForDrive(fns[rng.Intn(len(fns))], 1<<rng.Intn(3))
		inst, err := d.AddInstance("c"+itoa(i), m)
		if err != nil {
			t.Fatal(err)
		}
		inst.Loc = geom.Pt(
			region.Lx+rng.Float64()*region.W(),
			region.Ly+rng.Float64()*region.H(),
		)
		cells = append(cells, inst)
	}
	return cells
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// Property: the legalizer always produces overlap-free, in-bounds,
// row-aligned placements for any random input that fits, and total
// displacement stays finite and reported.
func TestLegalizeRandomProperty(t *testing.T) {
	region := geom.R(0, 0, 60, 60)
	f := func(seed int64, nSel uint8) bool {
		n := 20 + int(nSel)%400
		cells := randomCells(t, n, region, seed)
		// Skip infeasible inputs (too much area for the region).
		area := 0.0
		for _, c := range cells {
			area += c.Master.Area()
		}
		if area > 0.85*region.Area() {
			return true
		}
		rep, err := Legalize(cells, region, lib.Variant.CellHeight)
		if err != nil {
			return false
		}
		if err := CheckLegal(cells, region, 1e-9); err != nil {
			return false
		}
		if rep.Cells != n || rep.MaxDisp < 0 || rep.AvgDisp > rep.MaxDisp+1e-9 {
			return false
		}
		// Row alignment.
		h := lib.Variant.CellHeight
		for _, c := range cells {
			k := (c.Loc.Y - region.Ly) / h
			frac := k - float64(int(k))
			if frac < 0.49 || frac > 0.51 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: legalization is idempotent — a second pass moves nothing
// (every cell is already legal at its position).
func TestLegalizeIdempotent(t *testing.T) {
	region := geom.R(0, 0, 60, 60)
	cells := randomCells(t, 200, region, 11)
	if _, err := Legalize(cells, region, lib.Variant.CellHeight); err != nil {
		t.Fatal(err)
	}
	rep, err := Legalize(cells, region, lib.Variant.CellHeight)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDisp > lib.Variant.CellHeight+2 {
		t.Errorf("second pass displaced cells by %v", rep.MaxDisp)
	}
}

// Property: a hetero floorplan (AreaScale < 1) always yields a smaller
// footprint than the homogeneous 3-D one at the same utilization.
func TestFloorplanAreaScaleMonotone(t *testing.T) {
	d := genDesign(t, "aes", 0.05)
	f := func(scaleSel uint8) bool {
		scale := 0.6 + float64(scaleSel%40)/100 // 0.60..0.99
		fpHet, err := NewFloorplan(d, Options{TargetUtil: 0.7, AspectRatio: 1, Tiers: 2, AreaScale: scale})
		if err != nil {
			return false
		}
		fpHom, err := NewFloorplan(d, Options{TargetUtil: 0.7, AspectRatio: 1, Tiers: 2})
		if err != nil {
			return false
		}
		return fpHet.FootprintArea() < fpHom.FootprintArea()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Aspect-ratio requests are honored by the floorplanner.
func TestFloorplanAspectRatio(t *testing.T) {
	d := genDesign(t, "aes", 0.05)
	for _, ar := range []float64{0.5, 1.0, 2.0} {
		fp, err := NewFloorplan(d, Options{TargetUtil: 0.7, AspectRatio: ar, Tiers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := fp.Outline.H() / fp.Outline.W()
		if got/ar < 0.99 || got/ar > 1.01 {
			t.Errorf("aspect %v: got %v", ar, got)
		}
	}
}
