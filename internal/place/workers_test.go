package place

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/par"
)

// TestGlobalWorkersEquivalence pins the placer's determinism contract:
// the level-synchronous frontier produces byte-identical locations at
// any worker count, because every bisection reads the level-start
// location snapshot and all InitLoc updates apply sequentially in
// region order. Under -race this also proves the frontier fan-out has
// no conflicting accesses. It doubles as the RNG-audit regression for
// this kernel — FM seeds its own rand.Source per call from the
// hypergraph, so a shared-RNG regression would break the equality.
func TestGlobalWorkersEquivalence(t *testing.T) {
	locs := func(workers int) []geom.Point {
		d := genDesign(t, designs.AES, 0.05)
		fp, err := NewFloorplan(d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultGlobalOptions()
		opt.Workers = workers
		opt.Par = &par.Stats{}
		if err := Global(d, fp.Core, opt); err != nil {
			t.Fatal(err)
		}
		if opt.Par.Batches == 0 || opt.Par.Tasks == 0 {
			t.Fatalf("workers %d: no fan-outs recorded: %+v", workers, *opt.Par)
		}
		out := make([]geom.Point, len(d.Instances))
		for i, inst := range d.Instances {
			out[i] = inst.Loc
		}
		return out
	}
	serial := locs(1)
	for _, w := range []int{2, 8} {
		got := locs(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers %d: instance %d placed at %v, serial placed %v", w, i, got[i], serial[i])
			}
		}
	}
}

// TestGlobalWorkersStatsScheduleIndependent pins that the placer's
// fan-out counters count scheduled work, not execution interleavings:
// identical at any worker count so they can surface in flow stats.
func TestGlobalWorkersStatsScheduleIndependent(t *testing.T) {
	stats := func(workers int) par.Stats {
		d := genDesign(t, designs.AES, 0.05)
		fp, err := NewFloorplan(d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultGlobalOptions()
		opt.Workers = workers
		opt.Par = &par.Stats{}
		if err := Global(d, fp.Core, opt); err != nil {
			t.Fatal(err)
		}
		return *opt.Par
	}
	s1, s8 := stats(1), stats(8)
	if s1 != s8 {
		t.Fatalf("placer stats differ across worker counts: %+v vs %+v", s1, s8)
	}
}
