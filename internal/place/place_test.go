package place

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.Variant12T())

func genDesign(t testing.TB, name designs.Name, scale float64) *netlist.Design {
	t.Helper()
	d, err := designs.Generate(name, lib, designs.Params{Scale: scale, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewFloorplan2D(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	fp, err := NewFloorplan(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Outline.Empty() || fp.Core.Empty() {
		t.Fatal("empty floorplan")
	}
	s := d.ComputeStats()
	util := s.CellArea / fp.Core.Area()
	if math.Abs(util-0.70) > 0.02 {
		t.Errorf("achieved util = %v, want 0.70", util)
	}
	// No macros → core is the whole outline.
	if fp.Core != fp.Outline {
		t.Error("macro-free core should equal outline")
	}
	if fp.SiliconArea() != fp.FootprintArea() {
		t.Error("2-D silicon area should equal footprint")
	}
	// Ports must sit on the outline boundary.
	for _, p := range d.Ports {
		if !fp.Outline.ContainsClosed(p.Loc) {
			t.Errorf("port %s at %v outside outline", p.Name, p.Loc)
		}
	}
}

func TestNewFloorplan3DHalvesFootprint(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	opt2 := DefaultOptions()
	fp2, err := NewFloorplan(d, opt2)
	if err != nil {
		t.Fatal(err)
	}
	opt3 := DefaultOptions()
	opt3.Tiers = 2
	fp3, err := NewFloorplan(d, opt3)
	if err != nil {
		t.Fatal(err)
	}
	r := fp3.FootprintArea() / fp2.FootprintArea()
	if math.Abs(r-0.5) > 0.02 {
		t.Errorf("3-D footprint ratio = %v, want 0.5", r)
	}
	// Same silicon area in both (the paper's invariant).
	if math.Abs(fp3.SiliconArea()/fp2.SiliconArea()-1) > 0.02 {
		t.Errorf("Si area ratio = %v, want 1", fp3.SiliconArea()/fp2.SiliconArea())
	}
}

func TestNewFloorplanWithMacros(t *testing.T) {
	d := genDesign(t, designs.CPU, 0.02)
	fp, err := NewFloorplan(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Core.Lx <= fp.Outline.Lx {
		t.Error("macro column should push the core right")
	}
	// Macros placed and fixed.
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			if !inst.Fixed {
				t.Errorf("macro %s not fixed", inst.Name)
			}
			if inst.Loc.X >= fp.Core.Lx {
				t.Errorf("macro %s at %v inside cell core", inst.Name, inst.Loc)
			}
		}
	}
	// Cache ≈ 40 % of footprint (the generator's contract with the
	// paper's CPU description).
	s := d.ComputeStats()
	frac := s.MacroArea / fp.FootprintArea()
	if frac < 0.28 || frac > 0.52 {
		t.Errorf("macro footprint fraction = %v, want ≈0.4", frac)
	}
}

func TestNewFloorplanErrors(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	bad := DefaultOptions()
	bad.TargetUtil = 0
	if _, err := NewFloorplan(d, bad); err == nil {
		t.Error("zero util should fail")
	}
	bad = DefaultOptions()
	bad.Tiers = 3
	if _, err := NewFloorplan(d, bad); err == nil {
		t.Error("3 tiers should fail")
	}
	bad = DefaultOptions()
	bad.AspectRatio = -1
	if _, err := NewFloorplan(d, bad); err == nil {
		t.Error("negative aspect should fail")
	}
}

func hpwl(d *netlist.Design) float64 {
	tot := 0.0
	for _, n := range d.Nets {
		if n.IsClock {
			continue
		}
		var bb geom.BBox
		for _, p := range n.PinLocs() {
			bb.Extend(p)
		}
		tot += bb.HalfPerimeter()
	}
	return tot
}

func TestGlobalPlacementImprovesWirelength(t *testing.T) {
	d := genDesign(t, designs.LDPC, 0.02)
	fp, err := NewFloorplan(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: random scatter.
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(
			fp.Core.Lx+float64((i*7919)%1000)/1000*fp.Core.W(),
			fp.Core.Ly+float64((i*104729)%1000)/1000*fp.Core.H(),
		)
	}
	randWL := hpwl(d)

	if err := Global(d, fp.Core, DefaultGlobalOptions()); err != nil {
		t.Fatal(err)
	}
	placedWL := hpwl(d)
	if placedWL >= randWL {
		t.Errorf("placement WL %v not better than random %v", placedWL, randWL)
	}
	// Everything inside the core.
	for _, inst := range d.Instances {
		if !fp.Core.ContainsClosed(inst.Loc) {
			t.Errorf("cell %s at %v outside core", inst.Name, inst.Loc)
		}
	}
}

func TestGlobalEmptyRegionFails(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	if err := Global(d, geom.Rect{}, DefaultGlobalOptions()); err == nil {
		t.Error("empty region should fail")
	}
}

func TestLegalizeProducesLegalRows(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	fp, err := NewFloorplan(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Global(d, fp.Core, DefaultGlobalOptions()); err != nil {
		t.Fatal(err)
	}
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		if !inst.Fixed {
			cells = append(cells, inst)
		}
	}
	rep, err := Legalize(cells, fp.Core, lib.Variant.CellHeight)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != len(cells) {
		t.Errorf("report cells = %d, want %d", rep.Cells, len(cells))
	}
	if rep.RowsUsed == 0 {
		t.Error("no rows used")
	}
	if err := CheckLegal(cells, fp.Core, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Cells snapped to row centers: y - Ly must be (k+0.5)·h.
	h := lib.Variant.CellHeight
	for _, c := range cells[:10] {
		frac := math.Mod((c.Loc.Y-fp.Core.Ly)/h, 1.0)
		if math.Abs(frac-0.5) > 1e-6 {
			t.Errorf("cell %s not row-aligned: y=%v", c.Name, c.Loc.Y)
		}
	}
}

func TestLegalizeErrors(t *testing.T) {
	if _, err := Legalize(nil, geom.R(0, 0, 10, 10), 0); err == nil {
		t.Error("zero row height should fail")
	}
	if _, err := Legalize(nil, geom.Rect{}, 1); err == nil {
		t.Error("empty region should fail")
	}
	if _, err := Legalize(nil, geom.R(0, 0, 10, 0.5), 1.2); err == nil {
		t.Error("region below one row should fail")
	}
	// Region too small for the cells.
	d := genDesign(t, designs.AES, 0.05)
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		cells = append(cells, inst)
	}
	if _, err := Legalize(cells, geom.R(0, 0, 3, 3), 1.2); err == nil {
		t.Error("overfull region should fail")
	}
}

func TestLegalizeTiersHeteroHeights(t *testing.T) {
	d := genDesign(t, designs.AES, 0.03)
	opt := DefaultOptions()
	opt.Tiers = 2
	fp, err := NewFloorplan(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate tiers, scatter.
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
		inst.Loc = geom.Pt(
			fp.Core.Lx+float64((i*31)%100)/100*fp.Core.W(),
			fp.Core.Ly+float64((i*57)%100)/100*fp.Core.H(),
		)
	}
	h9 := tech.Variant9T().CellHeight
	h12 := tech.Variant12T().CellHeight
	reps, err := LegalizeTiers(d, fp.Core, [2]float64{h12, h9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports", len(reps))
	}
	// Per-tier legality.
	for ti := 0; ti < 2; ti++ {
		var cells []*netlist.Instance
		for _, inst := range d.Instances {
			if inst.Tier == tech.Tier(ti) && !inst.Fixed {
				cells = append(cells, inst)
			}
		}
		if err := CheckLegal(cells, fp.Core, 1e-6); err != nil {
			t.Errorf("tier %d: %v", ti, err)
		}
	}
}

func TestUtilizationAndDensity(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	fp, err := NewFloorplan(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u := Utilization(d, fp, tech.TierBottom)
	if math.Abs(u-0.70) > 0.02 {
		t.Errorf("utilization = %v", u)
	}
	if den := Density(d, fp); math.Abs(den-u) > 1e-9 {
		t.Errorf("2-D density %v should equal utilization %v", den, u)
	}
}

func TestDensityMap(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	fp, err := NewFloorplan(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Global(d, fp.Core, DefaultGlobalOptions()); err != nil {
		t.Fatal(err)
	}
	hist, err := DensityMap(d, fp.Outline, tech.TierBottom, 1, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := d.ComputeStats()
	if math.Abs(hist.Sum()-s.CellArea)/s.CellArea > 0.01 {
		t.Errorf("density map total %v != cell area %v", hist.Sum(), s.CellArea)
	}
	if _, err := DensityMap(d, fp.Outline, tech.TierBottom, 1, 0, 5); err == nil {
		t.Error("bad grid should fail")
	}
}

func TestCheckLegalDetectsOverlap(t *testing.T) {
	d := netlist.New("ov")
	a, _ := d.AddInstance("a", lib.Smallest(cell.FuncInv))
	b, _ := d.AddInstance("b", lib.Smallest(cell.FuncInv))
	a.Loc = geom.Pt(5, 0.6)
	b.Loc = geom.Pt(5.1, 0.6) // overlapping in the same row
	err := CheckLegal([]*netlist.Instance{a, b}, geom.R(0, 0, 10, 10), 1e-9)
	if err == nil {
		t.Error("overlap not detected")
	}
	b.Loc = geom.Pt(6, 0.6)
	if err := CheckLegal([]*netlist.Instance{a, b}, geom.R(0, 0, 10, 10), 1e-9); err != nil {
		t.Errorf("non-overlapping cells flagged: %v", err)
	}
	// Different tiers may share coordinates.
	b.Loc = a.Loc
	b.Tier = tech.TierTop
	if err := CheckLegal([]*netlist.Instance{a, b}, geom.R(0, 0, 10, 10), 1e-9); err != nil {
		t.Errorf("cross-tier overlap flagged: %v", err)
	}
}
