// Package place implements the placement substrate: utilization-driven
// floorplanning (die sizing, macro placement, I/O spreading), recursive
// min-cut bisection global placement, row-based legalization aware of the
// per-tier cell heights of a heterogeneous 3-D design, and density-map
// extraction for the layout figures.
package place

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/tech"
)

// Floorplan is the physical frame of one implementation: the die outline,
// the standard-cell core region, and the achieved target utilization.
type Floorplan struct {
	// Outline is the full die rectangle (µm).
	Outline geom.Rect
	// Core is the region available to standard cells (outline minus the
	// macro block area).
	Core geom.Rect
	// TargetUtil is the requested cell-area/core-area ratio.
	TargetUtil float64
	// Tiers is 1 for 2-D, 2 for 3-D.
	Tiers int
}

// FootprintArea returns the die footprint in µm².
func (f *Floorplan) FootprintArea() float64 { return f.Outline.Area() }

// SiliconArea returns total silicon: footprint × tier count (the paper's
// "Si Area" metric: identical for a 2-D design and its folded 3-D
// counterpart).
func (f *Floorplan) SiliconArea() float64 { return f.FootprintArea() * float64(f.Tiers) }

// Options tunes floorplanning.
type Options struct {
	// TargetUtil is the standard-cell utilization of the core region.
	TargetUtil float64
	// AspectRatio is outline height/width.
	AspectRatio float64
	// Tiers is 1 (2-D) or 2 (3-D); a 3-D floorplan holds the per-tier
	// cell area (≈ half the total) plus per-tier macros on each die.
	Tiers int
	// AreaScale multiplies the standard-cell area when sizing the die
	// (0 means 1). The heterogeneous flow passes 0.875 here: retargeting
	// half the cells to the 25 % smaller 9-track library cuts cell area
	// by 12.5 %, and "the footprint is reduced accordingly to maintain
	// the chip utilization" (Sec. IV-A2).
	AreaScale float64
}

// DefaultOptions returns the evaluation defaults (70 % utilization,
// square die).
func DefaultOptions() Options {
	return Options{TargetUtil: 0.70, AspectRatio: 1.0, Tiers: 1}
}

// NewFloorplan sizes the die for design d, places macros, and spreads the
// I/O ports around the outline. For Tiers=2, cell and macro area are
// assumed to split evenly across the dies (the tier partitioner's balance
// target), so the footprint holds half of each; the same outline serves
// both tiers.
//
// Macros are stacked in a column block on the left die edge (per tier),
// which matches the edge-macro arrangement of the paper's CPU layouts
// (Fig. 3); the remaining rectangle is the standard-cell core.
func NewFloorplan(d *netlist.Design, opt Options) (*Floorplan, error) {
	if opt.TargetUtil <= 0 || opt.TargetUtil > 1 {
		return nil, fmt.Errorf("place: utilization %v out of (0,1]", opt.TargetUtil)
	}
	if opt.AspectRatio <= 0 {
		return nil, fmt.Errorf("place: aspect ratio %v must be positive", opt.AspectRatio)
	}
	if opt.Tiers != 1 && opt.Tiers != 2 {
		return nil, fmt.Errorf("place: tiers must be 1 or 2, got %d", opt.Tiers)
	}
	s := d.ComputeStats()
	tiers := float64(opt.Tiers)
	scale := opt.AreaScale
	if scale <= 0 {
		scale = 1
	}
	cellNeed := s.CellArea * scale / tiers / opt.TargetUtil
	macroNeed := s.MacroArea / tiers
	total := cellNeed + macroNeed
	if total <= 0 {
		return nil, fmt.Errorf("place: design %s has no area", d.Name)
	}

	w := math.Sqrt(total / opt.AspectRatio)
	h := w * opt.AspectRatio
	outline := geom.R(0, 0, w, h)
	core := outline

	if macroNeed > 0 {
		// Macro block column width: macro area / die height, padded 2 %.
		mw := macroNeed / h * 1.02
		if mw >= w*0.8 {
			return nil, fmt.Errorf("place: macros occupy %v of width %v; floorplan infeasible", mw, w)
		}
		// Re-inflate the outline so the core still fits the cells.
		w = mw + cellNeed/h
		outline = geom.R(0, 0, w, h)
		core = geom.R(mw, 0, w, h)
		placeMacros(d, geom.R(0, 0, mw, h), opt.Tiers)
	}

	synth.SpreadPorts(d, outline)
	return &Floorplan{
		Outline:    outline,
		Core:       core,
		TargetUtil: opt.TargetUtil,
		Tiers:      opt.Tiers,
	}, nil
}

// placeMacros stacks macros bottom-up inside the macro block. For a
// two-tier plan, each tier gets its own stack in the same x-column. Macro
// tier assignment must already be done (or defaults to whatever the
// instances carry).
func placeMacros(d *netlist.Design, block geom.Rect, tiers int) {
	var macros []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			macros = append(macros, inst)
		}
	}
	sort.Slice(macros, func(i, j int) bool { return macros[i].Name < macros[j].Name })
	var yCursor [2]float64
	for _, m := range macros {
		t := m.Tier
		if tiers == 1 {
			t = tech.TierBottom
		}
		h := m.Master.Height
		// Scale the macro into the block width if needed (macro aspect is
		// flexible at floorplan time; area is what matters for cost).
		wScale := 1.0
		if m.Master.Width > block.W() {
			wScale = block.W() / m.Master.Width
			h = h / wScale
		}
		m.InitLoc(geom.Pt(block.Lx+m.Master.Width*wScale/2, yCursor[t]+h/2))
		m.Fixed = true
		yCursor[t] += h
	}
}

// Utilization returns achieved cell area / core area for one tier (or the
// whole design when tier < 0).
func Utilization(d *netlist.Design, fp *Floorplan, tier tech.Tier) float64 {
	area := 0.0
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			continue
		}
		if fp.Tiers == 2 && inst.Tier != tier {
			continue
		}
		area += inst.Master.Area()
	}
	coreArea := fp.Core.Area()
	if coreArea <= 0 {
		return 0
	}
	return area / coreArea
}

// Density reports the average cell density across both tiers of a 3-D
// floorplan (the "Density" row of Table VI): mean of per-tier
// utilizations for Tiers=2, plain utilization for 2-D.
func Density(d *netlist.Design, fp *Floorplan) float64 {
	if fp.Tiers == 1 {
		return Utilization(d, fp, tech.TierBottom)
	}
	return (Utilization(d, fp, tech.TierBottom) + Utilization(d, fp, tech.TierTop)) / 2
}
