package place

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// TestBisectAllocs pins the steady-state allocation count of one
// bisection cut — the placer's hot kernel, run once per region per
// recursion level. With the pooled scratch (epoch-stamped index maps,
// storage-retaining hypergraph, reusable FM engine) a warm cut should
// allocate only the FM result snapshot, independent of region size.
func TestBisectAllocs(t *testing.T) {
	d := genDesign(t, designs.AES, 0.05)
	region := geom.R(0, 0, 120, 100)
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Fixed || inst.Master.Function.IsMacro() {
			continue
		}
		cells = append(cells, inst)
		inst.InitLoc(region.Center())
	}
	adj := buildAdjacency(d, 64)
	opt := DefaultGlobalOptions()

	run := func() {
		if _, _, _, _, err := bisect(d, adj, region, cells, opt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm the scratch pool
	}
	allocs := testing.AllocsPerRun(20, run)
	t.Logf("allocs/run: bisect over %d cells=%v", len(cells), allocs)
	if allocs > maxBisectAllocs {
		t.Errorf("bisect allocates %v per run over %d cells, want <= %v",
			allocs, len(cells), maxBisectAllocs)
	}
}

// maxBisectAllocs covers the FM Solution snapshot (struct + side copy)
// plus pool jitter; the pre-refactor kernel allocated thousands per cut
// (maps, per-net pin slices, fresh hypergraphs).
const maxBisectAllocs = 8

// BenchmarkKernelBisect measures one warm bisection cut; its B/op is
// guarded against the committed BENCH_alloc.json baseline by
// tools/benchguard in CI.
func BenchmarkKernelBisect(b *testing.B) {
	d := genDesign(b, designs.AES, 0.05)
	region := geom.R(0, 0, 120, 100)
	var cells []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Fixed || inst.Master.Function.IsMacro() {
			continue
		}
		cells = append(cells, inst)
		inst.InitLoc(region.Center())
	}
	adj := buildAdjacency(d, 64)
	opt := DefaultGlobalOptions()
	run := func() {
		if _, _, _, _, err := bisect(d, adj, region, cells, opt); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
