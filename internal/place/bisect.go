package place

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/partition"
)

// GlobalOptions tunes the recursive min-cut bisection placer.
type GlobalOptions struct {
	// LeafCells stops recursion once a region holds this few cells.
	LeafCells int
	// FM configures the per-cut partitioner.
	FM partition.FMOptions
	// MaxNetDegree excludes huge nets from cut objectives.
	MaxNetDegree int
	// Workers bounds the bisection frontier's parallelism: all regions
	// of one recursion level bisect concurrently against the
	// level-start location estimates, then the estimate updates apply
	// sequentially in region order — so the placement is byte-identical
	// at any worker count. <= 1 runs serially (same level-snapshot
	// semantics).
	Workers int
	// Par accumulates fan-out counters when set (the place stage drains
	// them into its flow stats).
	Par *par.Stats
}

// DefaultGlobalOptions returns the flow defaults.
func DefaultGlobalOptions() GlobalOptions {
	fm := partition.DefaultFMOptions()
	fm.MaxPasses = 6
	fm.Tolerance = 0.1
	return GlobalOptions{LeafCells: 12, FM: fm, MaxNetDegree: 64}
}

// Global runs recursive min-cut bisection placement of every movable
// instance into the core region, writing inst.Loc. Fixed instances
// (macros) keep their locations and act as terminals. Port locations act
// as terminals too (terminal propagation steers the cut).
//
// This is the classic Breuer-style placement that "placement-driven FM
// min-cut" pseudo-3-D flows build on: deterministic, hierarchy-free, and
// fast enough for 250 k-cell netlists.
func Global(d *netlist.Design, region geom.Rect, opt GlobalOptions) error {
	if region.Empty() {
		return fmt.Errorf("place: empty core region")
	}
	if opt.LeafCells < 2 {
		opt.LeafCells = 2
	}
	var movable []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Fixed || inst.Master.Function.IsMacro() {
			continue
		}
		movable = append(movable, inst)
		inst.InitLoc(region.Center()) // initial estimate for terminal propagation
	}
	if len(movable) == 0 {
		return nil
	}

	// Net adjacency once, by instance ID.
	adj := buildAdjacency(d, opt.MaxNetDegree)

	// Level-synchronous recursion: the regions of one level are
	// independent subproblems, so they bisect in parallel — every cut
	// reads the location estimates as of the level start (terminal
	// propagation sees a frozen snapshot), and all estimate updates and
	// leaf spreads apply afterwards, sequentially in region order. The
	// next level therefore has exactly one possible composition,
	// whatever the worker count.
	type job struct {
		region geom.Rect
		cells  []*netlist.Instance
	}
	type split struct {
		left, right []*netlist.Instance
		lr, rr      geom.Rect
		err         error
	}
	level := []job{{region, movable}}
	for len(level) > 0 {
		splits := make([]*split, len(level))
		par.ParallelFor(opt.Workers, len(level), func(i int) {
			j := level[i]
			if len(j.cells) <= opt.LeafCells {
				return // leaf: spread in the apply phase
			}
			s := &split{}
			s.left, s.right, s.lr, s.rr, s.err = bisect(d, adj, j.region, j.cells, opt)
			splits[i] = s
		})
		opt.Par.Note(len(level))
		var next []job
		for i, j := range level {
			s := splits[i]
			if s == nil {
				spreadLeaf(j.region, j.cells)
				continue
			}
			if s.err != nil {
				return s.err
			}
			// Update location estimates to the new subregion centers so
			// the next level's cuts see propagated terminals.
			for _, c := range s.left {
				c.InitLoc(s.lr.Center())
			}
			for _, c := range s.right {
				c.InitLoc(s.rr.Center())
			}
			next = append(next, job{s.lr, s.left}, job{s.rr, s.right})
		}
		level = next
	}
	return nil
}

// adjacency maps instance ID → list of net IDs; nets stored once.
type adjacency struct {
	nets    [][]*netlist.Instance // per kept net: member instances
	ofInst  map[int][]int
	portLoc map[int]geom.Point // net index → representative port location
}

func buildAdjacency(d *netlist.Design, maxDeg int) *adjacency {
	if maxDeg <= 0 {
		maxDeg = 1 << 30
	}
	a := &adjacency{ofInst: make(map[int][]int), portLoc: make(map[int]geom.Point)}
	for _, n := range d.Nets {
		if n.IsClock || n.Degree() > maxDeg || n.Degree() < 2 {
			continue
		}
		var members []*netlist.Instance
		if n.Driver.Valid() {
			members = append(members, n.Driver.Inst)
		}
		for _, s := range n.Sinks {
			members = append(members, s.Inst)
		}
		if len(members) == 0 {
			continue
		}
		idx := len(a.nets)
		a.nets = append(a.nets, members)
		for _, m := range members {
			a.ofInst[m.ID] = append(a.ofInst[m.ID], idx)
		}
		if n.DriverPort != nil {
			a.portLoc[idx] = n.DriverPort.Loc
		} else if len(n.SinkPorts) > 0 {
			a.portLoc[idx] = n.SinkPorts[0].Loc
		}
	}
	return a
}

// bisect splits cells across the longer axis of region using FM with
// terminal propagation, returning the two cell sets and subregions.
func bisect(d *netlist.Design, adj *adjacency, region geom.Rect, cells []*netlist.Instance, opt GlobalOptions) (left, right []*netlist.Instance, lr, rr geom.Rect, err error) {
	vertCut := region.W() >= region.H() // vertical cut line splits x

	// Build the sub-hypergraph over cells, with two virtual terminals.
	local := make(map[int]int, len(cells)) // inst ID → local index
	areas := make([]float64, 0, len(cells)+2)
	totalArea := 0.0
	for i, c := range cells {
		local[c.ID] = i
		a := c.Master.Area()
		areas = append(areas, a)
		totalArea += a
	}
	t0 := len(areas)
	t1 := t0 + 1
	areas = append(areas, 0, 0)
	h := partition.NewHypergraph(areas)
	h.Fixed[t0] = 0
	h.Fixed[t1] = 1

	// Split line position: proportional area split at the midline.
	var mid float64
	if vertCut {
		mid = (region.Lx + region.Ux) / 2
	} else {
		mid = (region.Ly + region.Uy) / 2
	}
	sideOfPoint := func(p geom.Point) uint8 {
		v := p.Y
		if vertCut {
			v = p.X
		}
		if v < mid {
			return 0
		}
		return 1
	}

	seenNet := make(map[int]bool)
	for _, c := range cells {
		for _, ni := range adj.ofInst[c.ID] {
			if seenNet[ni] {
				continue
			}
			seenNet[ni] = true
			members := adj.nets[ni]
			pins := make([]int, 0, len(members)+2)
			hasExt := [2]bool{}
			for _, m := range members {
				if li, ok := local[m.ID]; ok {
					pins = append(pins, li)
				} else {
					hasExt[sideOfPoint(m.Loc)] = true
				}
			}
			if p, ok := adj.portLoc[ni]; ok {
				hasExt[sideOfPoint(p)] = true
			}
			if hasExt[0] {
				pins = append(pins, t0)
			}
			if hasExt[1] {
				pins = append(pins, t1)
			}
			if len(pins) >= 2 {
				h.AddNet(pins...)
			}
		}
	}

	fmOpt := opt.FM
	sol, err := partition.FM(h, nil, fmOpt)
	if err != nil {
		return nil, nil, geom.Rect{}, geom.Rect{}, fmt.Errorf("place: bisect FM: %w", err)
	}

	var areaLeft float64
	for i, c := range cells {
		if sol.Side[i] == 0 {
			left = append(left, c)
			areaLeft += c.Master.Area()
		} else {
			right = append(right, c)
		}
	}
	// Degenerate splits (all cells one side) get a forced even split.
	if len(left) == 0 || len(right) == 0 {
		left, right, areaLeft = forcedSplit(cells, vertCut)
	}

	frac := 0.5
	if totalArea > 0 {
		frac = areaLeft / totalArea
	}
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	if vertCut {
		cut := region.Lx + region.W()*frac
		lr = geom.R(region.Lx, region.Ly, cut, region.Uy)
		rr = geom.R(cut, region.Ly, region.Ux, region.Uy)
	} else {
		cut := region.Ly + region.H()*frac
		lr = geom.R(region.Lx, region.Ly, region.Ux, cut)
		rr = geom.R(region.Lx, cut, region.Ux, region.Uy)
	}
	return left, right, lr, rr, nil
}

// forcedSplit halves the cell list by area when FM degenerates.
func forcedSplit(cells []*netlist.Instance, vertCut bool) (left, right []*netlist.Instance, areaLeft float64) {
	sorted := append([]*netlist.Instance{}, cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	total := 0.0
	for _, c := range sorted {
		total += c.Master.Area()
	}
	for _, c := range sorted {
		if areaLeft < total/2 {
			left = append(left, c)
			areaLeft += c.Master.Area()
		} else {
			right = append(right, c)
		}
	}
	return left, right, areaLeft
}

// spreadLeaf distributes a leaf region's cells on a small grid inside it.
func spreadLeaf(region geom.Rect, cells []*netlist.Instance) {
	n := len(cells)
	if n == 0 {
		return
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	dx := region.W() / float64(cols)
	dy := region.H() / float64(rows)
	// Deterministic order.
	sorted := append([]*netlist.Instance{}, cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, c := range sorted {
		cx := region.Lx + (float64(i%cols)+0.5)*dx
		cy := region.Ly + (float64(i/cols)+0.5)*dy
		c.InitLoc(geom.Pt(cx, cy))
	}
}
