package place

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/dense"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/partition"
)

// GlobalOptions tunes the recursive min-cut bisection placer.
type GlobalOptions struct {
	// LeafCells stops recursion once a region holds this few cells.
	LeafCells int
	// FM configures the per-cut partitioner.
	FM partition.FMOptions
	// MaxNetDegree excludes huge nets from cut objectives.
	MaxNetDegree int
	// Workers bounds the bisection frontier's parallelism: all regions
	// of one recursion level bisect concurrently against the
	// level-start location estimates, then the estimate updates apply
	// sequentially in region order — so the placement is byte-identical
	// at any worker count. <= 1 runs serially (same level-snapshot
	// semantics).
	Workers int
	// Par accumulates fan-out counters when set (the place stage drains
	// them into its flow stats).
	Par *par.Stats
}

// DefaultGlobalOptions returns the flow defaults.
func DefaultGlobalOptions() GlobalOptions {
	fm := partition.DefaultFMOptions()
	fm.MaxPasses = 6
	fm.Tolerance = 0.1
	return GlobalOptions{LeafCells: 12, FM: fm, MaxNetDegree: 64}
}

// Global runs recursive min-cut bisection placement of every movable
// instance into the core region, writing inst.Loc. Fixed instances
// (macros) keep their locations and act as terminals. Port locations act
// as terminals too (terminal propagation steers the cut).
//
// This is the classic Breuer-style placement that "placement-driven FM
// min-cut" pseudo-3-D flows build on: deterministic, hierarchy-free, and
// fast enough for 250 k-cell netlists.
func Global(d *netlist.Design, region geom.Rect, opt GlobalOptions) error {
	if region.Empty() {
		return fmt.Errorf("place: empty core region")
	}
	if opt.LeafCells < 2 {
		opt.LeafCells = 2
	}
	var movable []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Fixed || inst.Master.Function.IsMacro() {
			continue
		}
		movable = append(movable, inst)
		inst.InitLoc(region.Center()) // initial estimate for terminal propagation
	}
	if len(movable) == 0 {
		return nil
	}

	// Net adjacency once, by instance ID.
	adj := buildAdjacency(d, opt.MaxNetDegree)

	// Level-synchronous recursion: the regions of one level are
	// independent subproblems, so they bisect in parallel — every cut
	// reads the location estimates as of the level start (terminal
	// propagation sees a frozen snapshot), and all estimate updates and
	// leaf spreads apply afterwards, sequentially in region order. The
	// next level therefore has exactly one possible composition,
	// whatever the worker count.
	//
	// Each region's cell list is an exclusively-owned subslice of
	// movable: bisect partitions it in place, so the whole recursion
	// shares one backing array and the frontier never reallocates cell
	// lists.
	type job struct {
		region geom.Rect
		cells  []*netlist.Instance
	}
	type split struct {
		left, right []*netlist.Instance
		lr, rr      geom.Rect
		err         error
	}
	level := []job{{region, movable}}
	for len(level) > 0 {
		splits := make([]*split, len(level))
		par.ParallelFor(opt.Workers, len(level), func(i int) {
			j := level[i]
			if len(j.cells) <= opt.LeafCells {
				return // leaf: spread in the apply phase
			}
			s := &split{}
			s.left, s.right, s.lr, s.rr, s.err = bisect(d, adj, j.region, j.cells, opt)
			splits[i] = s
		})
		opt.Par.Note(len(level))
		var next []job
		for i, j := range level {
			s := splits[i]
			if s == nil {
				spreadLeaf(j.region, j.cells)
				continue
			}
			if s.err != nil {
				return s.err
			}
			// Update location estimates to the new subregion centers so
			// the next level's cuts see propagated terminals.
			for _, c := range s.left {
				c.InitLoc(s.lr.Center())
			}
			for _, c := range s.right {
				c.InitLoc(s.rr.Center())
			}
			next = append(next, job{s.lr, s.left}, job{s.rr, s.right})
		}
		level = next
	}
	return nil
}

// adjacency is the placement view of the netlist in CSR form: per kept
// net the member instances, and per instance the incident net indices.
// Flat index slices instead of maps keep the bisection frontier's inner
// loops on contiguous memory.
type adjacency struct {
	// memberDat[memberOff[ni]:memberOff[ni+1]] are net ni's instances.
	memberOff []int32
	memberDat []*netlist.Instance
	// instNets rows are keyed by instance ID; values are net indices in
	// net insertion order.
	instNets dense.CSR[int32]
	// portLoc[ni] is the representative port location of net ni, valid
	// when hasPort[ni].
	portLoc []geom.Point
	hasPort []bool
}

// keepNet reports whether a net participates in the cut objective.
func keepNet(n *netlist.Net, maxDeg int) bool {
	if n.IsClock || n.Degree() > maxDeg || n.Degree() < 2 {
		return false
	}
	return n.Driver.Valid() || len(n.Sinks) > 0
}

func buildAdjacency(d *netlist.Design, maxDeg int) *adjacency {
	if maxDeg <= 0 {
		maxDeg = 1 << 30
	}
	a := &adjacency{}
	nNets, nMembers := 0, 0
	a.instNets.Reset(len(d.Instances))
	for _, n := range d.Nets {
		if !keepNet(n, maxDeg) {
			continue
		}
		nNets++
		if n.Driver.Valid() {
			nMembers++
			a.instNets.Count(int32(n.Driver.Inst.ID))
		}
		for _, s := range n.Sinks {
			nMembers++
			a.instNets.Count(int32(s.Inst.ID))
		}
	}
	a.instNets.Seal()
	a.memberOff = make([]int32, 1, nNets+1)
	a.memberDat = make([]*netlist.Instance, 0, nMembers)
	a.portLoc = make([]geom.Point, nNets)
	a.hasPort = make([]bool, nNets)
	for _, n := range d.Nets {
		if !keepNet(n, maxDeg) {
			continue
		}
		ni := int32(len(a.memberOff) - 1)
		if n.Driver.Valid() {
			a.memberDat = append(a.memberDat, n.Driver.Inst)
			a.instNets.Append(int32(n.Driver.Inst.ID), ni)
		}
		for _, s := range n.Sinks {
			a.memberDat = append(a.memberDat, s.Inst)
			a.instNets.Append(int32(s.Inst.ID), ni)
		}
		a.memberOff = append(a.memberOff, int32(len(a.memberDat)))
		if n.DriverPort != nil {
			a.portLoc[ni], a.hasPort[ni] = n.DriverPort.Loc, true
		} else if len(n.SinkPorts) > 0 {
			a.portLoc[ni], a.hasPort[ni] = n.SinkPorts[0].Loc, true
		}
	}
	return a
}

// members returns net ni's instances.
func (a *adjacency) members(ni int32) []*netlist.Instance {
	return a.memberDat[a.memberOff[ni]:a.memberOff[ni+1]]
}

// bisectScratch is the per-worker reusable state of one cut: the dense
// inst→local-index map and the net-seen set are epoch-stamped (bumping
// the epoch invalidates both in O(1)), and the hypergraph plus FM engine
// recycle their buffers across the whole bisection frontier. References
// die at the bisectPool.Put; the poolescape pass enforces this.
//
//pool:scoped
type bisectScratch struct {
	epoch    uint32
	localIdx []int32  // by instance ID, valid when localEp[id] == epoch
	localEp  []uint32 // by instance ID
	netEp    []uint32 // by adjacency net index
	areas    []float64
	side1    []*netlist.Instance // stable-partition spill buffer
	h        *partition.Hypergraph
	eng      partition.Engine
}

var bisectPool = sync.Pool{New: func() any {
	return &bisectScratch{h: partition.NewHypergraph(nil)}
}}

// begin sizes the stamp arrays and opens a new epoch. Freshly grown
// memory is zeroed by the allocator and reused memory holds only past
// epochs, so stale entries can never match the new epoch.
func (sc *bisectScratch) begin(nInsts, nNets int) uint32 {
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: invalidate everything the slow way
		dense.Zero(sc.localEp, len(sc.localEp))
		dense.Zero(sc.netEp, len(sc.netEp))
		sc.epoch = 1
	}
	sc.localIdx = dense.Grow(sc.localIdx, nInsts)
	sc.localEp = dense.Grow(sc.localEp, nInsts)
	sc.netEp = dense.Grow(sc.netEp, nNets)
	return sc.epoch
}

// bisect splits cells across the longer axis of region using FM with
// terminal propagation, returning the two cell sets and subregions. The
// returned slices partition cells' own storage in place.
//
//hotpath:kernel
func bisect(d *netlist.Design, adj *adjacency, region geom.Rect, cells []*netlist.Instance, opt GlobalOptions) (left, right []*netlist.Instance, lr, rr geom.Rect, err error) {
	vertCut := region.W() >= region.H() // vertical cut line splits x

	sc := bisectPool.Get().(*bisectScratch)
	defer bisectPool.Put(sc)
	ep := sc.begin(len(d.Instances), len(adj.hasPort))

	// Build the sub-hypergraph over cells, with two virtual terminals.
	sc.areas = sc.areas[:0]
	totalArea := 0.0
	for i, c := range cells {
		sc.localIdx[c.ID] = int32(i)
		sc.localEp[c.ID] = ep
		a := c.Master.Area()
		sc.areas = append(sc.areas, a)
		totalArea += a
	}
	t0 := len(sc.areas)
	t1 := t0 + 1
	sc.areas = append(sc.areas, 0, 0)
	h := sc.h
	h.ResetCells(sc.areas)
	h.Fixed[t0] = 0
	h.Fixed[t1] = 1

	// Split line position: proportional area split at the midline.
	var mid float64
	if vertCut {
		mid = (region.Lx + region.Ux) / 2
	} else {
		mid = (region.Ly + region.Uy) / 2
	}
	sideOfPoint := func(p geom.Point) uint8 {
		v := p.Y
		if vertCut {
			v = p.X
		}
		if v < mid {
			return 0
		}
		return 1
	}

	for _, c := range cells {
		for _, ni := range adj.instNets.Row(int32(c.ID)) {
			if sc.netEp[ni] == ep {
				continue
			}
			sc.netEp[ni] = ep
			members := adj.members(ni)
			pins := h.NetBuf(len(members) + 2)
			hasExt := [2]bool{}
			for _, m := range members {
				if sc.localEp[m.ID] == ep {
					pins = append(pins, int(sc.localIdx[m.ID]))
				} else {
					hasExt[sideOfPoint(m.Loc)] = true
				}
			}
			if adj.hasPort[ni] {
				hasExt[sideOfPoint(adj.portLoc[ni])] = true
			}
			if hasExt[0] {
				pins = append(pins, t0)
			}
			if hasExt[1] {
				pins = append(pins, t1)
			}
			if len(pins) >= 2 {
				h.AddNet(pins...) // the hyperedge keeps the buffer
			}
		}
	}

	fmOpt := opt.FM
	sol, err := sc.eng.FM(h, nil, fmOpt)
	if err != nil {
		return nil, nil, geom.Rect{}, geom.Rect{}, fmt.Errorf("place: bisect FM: %w", err)
	}

	// Stable in-place partition: side-0 cells compact to the front in
	// order, side-1 cells spill to scratch and copy back after — the
	// same left/right orders the old append-based split produced.
	nl := 0
	sc.side1 = sc.side1[:0]
	var areaLeft float64
	for i, c := range cells {
		if sol.Side[i] == 0 {
			cells[nl] = c
			nl++
			areaLeft += c.Master.Area()
		} else {
			sc.side1 = append(sc.side1, c)
		}
	}
	copy(cells[nl:], sc.side1)
	left, right = cells[:nl], cells[nl:]
	// Degenerate splits (all cells one side) get a forced even split.
	if len(left) == 0 || len(right) == 0 {
		left, right, areaLeft = forcedSplit(cells)
	}

	frac := 0.5
	if totalArea > 0 {
		frac = areaLeft / totalArea
	}
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	if vertCut {
		cut := region.Lx + region.W()*frac
		lr = geom.R(region.Lx, region.Ly, cut, region.Uy)
		rr = geom.R(cut, region.Ly, region.Ux, region.Uy)
	} else {
		cut := region.Ly + region.H()*frac
		lr = geom.R(region.Lx, region.Ly, region.Ux, cut)
		rr = geom.R(region.Lx, cut, region.Ux, region.Uy)
	}
	return left, right, lr, rr, nil
}

// byID sorts instances by ID in place. IDs are unique, so the result is
// a deterministic total order whatever sort algorithm runs underneath.
func byID(cells []*netlist.Instance) {
	slices.SortFunc(cells, func(a, b *netlist.Instance) int { return a.ID - b.ID })
}

// forcedSplit halves the cell list by area when FM degenerates,
// reordering cells in place (the caller owns the slice exclusively).
func forcedSplit(cells []*netlist.Instance) (left, right []*netlist.Instance, areaLeft float64) {
	byID(cells)
	total := 0.0
	for _, c := range cells {
		total += c.Master.Area()
	}
	k := 0
	for _, c := range cells {
		if areaLeft >= total/2 {
			break
		}
		areaLeft += c.Master.Area()
		k++
	}
	return cells[:k], cells[k:], areaLeft
}

// spreadLeaf distributes a leaf region's cells on a small grid inside it.
func spreadLeaf(region geom.Rect, cells []*netlist.Instance) {
	n := len(cells)
	if n == 0 {
		return
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	dx := region.W() / float64(cols)
	dy := region.H() / float64(rows)
	byID(cells) // deterministic order; in place — the region owns the slice
	for i, c := range cells {
		cx := region.Lx + (float64(i%cols)+0.5)*dx
		cy := region.Ly + (float64(i/cols)+0.5)*dy
		c.InitLoc(geom.Pt(cx, cy))
	}
}
