package spice

import (
	"fmt"

	"repro/internal/tech"
)

// CaseResult is one column of Table II or III.
type CaseResult struct {
	Name   string
	Tier0  string // driver-side library ("fast"/"slow")
	Tier1  string
	M      Measurement
	Phase2 bool // second case pair (slow-driver cases III/IV)
}

// DeltaPct returns the percent change of each metric between two cases,
// in the table's Δ% convention.
func DeltaPct(base, alt Measurement) Measurement {
	d := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return (b - a) / a * 100
	}
	return Measurement{
		RiseSlew:  d(base.RiseSlew, alt.RiseSlew),
		FallSlew:  d(base.FallSlew, alt.FallSlew),
		RiseDelay: d(base.RiseDelay, alt.RiseDelay),
		FallDelay: d(base.FallDelay, alt.FallDelay),
		Leakage:   d(base.Leakage, alt.Leakage),
		TotalPow:  d(base.TotalPow, alt.TotalPow),
	}
}

const fanout = 4

// DriverOutputExperiment reproduces Table II (Fig. 2a): the DUT driver
// sits on Tier-0 and its four load inverters on Tier-1; heterogeneity
// changes the load gate capacitance the driver sees.
//
//	Case I:  fast driver, fast loads     Case II:  fast driver, slow loads
//	Case III: slow driver, slow loads    Case IV:  slow driver, fast loads
func DriverOutputExperiment(fast, slow tech.Variant, opt SimOptions) ([]CaseResult, error) {
	pf, ps := ParamsFor(fast), ParamsFor(slow)
	cases := []struct {
		name        string
		driver      InverterParams
		load        InverterParams
		t0, t1      string
		secondPhase bool
	}{
		{"Case-I", pf, pf, "fast", "fast", false},
		{"Case-II", pf, ps, "fast", "slow", false},
		{"Case-III", ps, ps, "slow", "slow", true},
		{"Case-IV", ps, pf, "slow", "fast", true},
	}
	out := make([]CaseResult, 0, len(cases))
	for _, c := range cases {
		m, err := SimulateFO4(c.driver, fanout*c.load.CGate, c.driver.VDD, opt)
		if err != nil {
			return nil, fmt.Errorf("spice: %s: %w", c.name, err)
		}
		out = append(out, CaseResult{Name: c.name, Tier0: c.t0, Tier1: c.t1, M: m, Phase2: c.secondPhase})
	}
	return out, nil
}

// DriverInputExperiment reproduces Table III (Fig. 2b): driver and loads
// share a tier, but the driver's gate is driven from the other tier, so
// its input swings to the other library's VDD.
//
//	Left pair:  fast cell, input from fast (I) vs slow (II) tier.
//	Right pair: slow cell, input from slow (I) vs fast (II) tier.
func DriverInputExperiment(fast, slow tech.Variant, opt SimOptions) ([]CaseResult, error) {
	pf, ps := ParamsFor(fast), ParamsFor(slow)
	cases := []struct {
		name        string
		dut         InverterParams
		vinHigh     float64
		t0, t1      string
		secondPhase bool
	}{
		{"Case-I", pf, pf.VDD, "fast", "fast", false},
		{"Case-II", pf, ps.VDD, "slow", "fast", false},
		{"Case-I", ps, ps.VDD, "slow", "slow", true},
		{"Case-II", ps, pf.VDD, "fast", "slow", true},
	}
	out := make([]CaseResult, 0, len(cases))
	for _, c := range cases {
		// Input high above the cell's own VDD clamps at VDD (protection
		// diodes); the interesting effect is VDD-overdrive on timing and
		// the sub-VDD case's leakage.
		vin := c.vinHigh
		m, err := SimulateFO4(c.dut, fanout*c.dut.CGate, vin, opt)
		if err != nil {
			return nil, fmt.Errorf("spice: input experiment %s: %w", c.name, err)
		}
		out = append(out, CaseResult{Name: c.name, Tier0: c.t0, Tier1: c.t1, M: m, Phase2: c.secondPhase})
	}
	return out, nil
}

// VoltageCompatible mirrors the paper's level-shifter-free criterion at
// the device level: the input high from the other tier must exceed the
// switching thresholds with margin (V_DDH − V_DDL < 0.3 × V_DDH,
// Sec. II-B).
func VoltageCompatible(a, b tech.Variant) bool {
	return tech.HeteroCompatible(a, b)
}
