package spice

import (
	"fmt"
)

// SimOptions controls the transient simulation.
type SimOptions struct {
	// Dt is the integration step in ns.
	Dt float64
	// InputSlew is the 0→100 % ramp time of the stimulus in ns.
	InputSlew float64
	// HalfPeriod is the time between input edges in ns (must allow full
	// settling).
	HalfPeriod float64
}

// DefaultSimOptions returns settings adequate for 28 nm FO-4 stages.
func DefaultSimOptions() SimOptions {
	return SimOptions{Dt: 5e-5, InputSlew: 0.016, HalfPeriod: 0.5}
}

// Measurement is the FO-4 characterization result. Times in ns, power in
// µW, matching Tables II/III (the paper prints times in picoseconds; the
// table renderer converts).
type Measurement struct {
	RiseSlew  float64 // output 10→90 % rise time
	FallSlew  float64 // output 90→10 % fall time
	RiseDelay float64 // input 50 % fall → output 50 % rise
	FallDelay float64 // input 50 % rise → output 50 % fall
	Leakage   float64 // static power, µW
	TotalPow  float64 // average switching + static power, µW
}

// SimulateFO4 drives one inverter (the DUT) loaded by four load-inverter
// gate capacitances plus its own drain capacitance, with an input ramp
// swinging 0 → vinHigh. The load cells' gate caps come from loadGateCap
// (4× one load inverter input). Returns the measured output transitions
// and power.
//
// Heterogeneity knobs:
//   - different load library → loadGateCap changes (Fig. 2a, Table II);
//   - different input-driver library → vinHigh ≠ DUT VDD (Fig. 2b,
//     Table III).
func SimulateFO4(dut InverterParams, loadGateCap, vinHigh float64, opt SimOptions) (Measurement, error) {
	if err := dut.Validate(); err != nil {
		return Measurement{}, err
	}
	if vinHigh <= dut.VtN {
		return Measurement{}, fmt.Errorf("spice: input high %v below NMOS threshold %v — signal cannot register", vinHigh, dut.VtN)
	}
	if opt.Dt <= 0 || opt.HalfPeriod <= 10*opt.InputSlew {
		return Measurement{}, fmt.Errorf("spice: invalid sim options %+v", opt)
	}

	cOut := dut.CDrain + loadGateCap

	// Input waveform: low until t0, ramp up over InputSlew, high until
	// t0+HalfPeriod, ramp down, low until end. Two edges = one full
	// output fall + rise.
	t0 := 0.05
	tEdge2 := t0 + opt.HalfPeriod
	tEnd := tEdge2 + opt.HalfPeriod
	vin := func(t float64) float64 {
		switch {
		case t < t0:
			return 0
		case t < t0+opt.InputSlew:
			return vinHigh * (t - t0) / opt.InputSlew
		case t < tEdge2:
			return vinHigh
		case t < tEdge2+opt.InputSlew:
			return vinHigh * (1 - (t-tEdge2)/opt.InputSlew)
		default:
			return 0
		}
	}

	// Start at the static high state (input low → output high-ish).
	vout, _ := dut.staticOperatingPoint(0)
	var tr trace
	energy := 0.0 // supply energy, fJ (µA × V × ns)
	for t := 0.0; t < tEnd; t += opt.Dt {
		vi := vin(t)
		// Trapezoidal-ish: two half steps (Heun's method).
		i1 := dut.outputCurrent(vi, vout)
		vPred := vout + i1/cOut*opt.Dt
		vPred = clampV(vPred, dut.VDD)
		i2 := dut.outputCurrent(vin(t+opt.Dt), vPred)
		vout = clampV(vout+(i1+i2)/2/cOut*opt.Dt, dut.VDD)
		iSupply := dut.pmosCurrent(vi, vout)
		energy += iSupply * dut.VDD * opt.Dt // µA × V × ns = µW·ns
		tr.record(t, vi, vout)
	}

	m := Measurement{Leakage: dut.StaticLeakagePower(vinHigh)}
	var err error
	if m.FallDelay, m.FallSlew, err = tr.fallingEdge(t0+opt.InputSlew/2, dut.VDD); err != nil {
		return m, err
	}
	if m.RiseDelay, m.RiseSlew, err = tr.risingEdge(tEdge2+opt.InputSlew/2, dut.VDD); err != nil {
		return m, err
	}
	// Total power: average supply power over the full period plus static
	// leakage (µW·ns / ns = µW).
	m.TotalPow = energy/tEnd + m.Leakage
	return m, nil
}

func clampV(v, vdd float64) float64 {
	if v < 0 {
		return 0
	}
	// Allow a hair above VDD for numeric safety; currents pull it back.
	if v > vdd*1.05 {
		return vdd * 1.05
	}
	return v
}

// trace stores sampled waveforms for post-processing.
type trace struct {
	t, vin, vout []float64
}

func (tr *trace) record(t, vi, vo float64) {
	tr.t = append(tr.t, t)
	tr.vin = append(tr.vin, vi)
	tr.vout = append(tr.vout, vo)
}

// crossAfter finds the first time vout crosses level (in the given
// direction) after tStart, with linear interpolation.
func (tr *trace) crossAfter(tStart, level float64, rising bool) (float64, error) {
	for i := 1; i < len(tr.t); i++ {
		if tr.t[i] < tStart {
			continue
		}
		a, b := tr.vout[i-1], tr.vout[i]
		if rising && a < level && b >= level || !rising && a > level && b <= level {
			f := (level - a) / (b - a)
			return tr.t[i-1] + f*(tr.t[i]-tr.t[i-1]), nil
		}
	}
	return 0, fmt.Errorf("spice: output never crossed %v after %v", level, tStart)
}

// fallingEdge measures the output falling transition launched by the
// input edge at tIn50 (input 50 % crossing).
func (tr *trace) fallingEdge(tIn50, vdd float64) (delay, slew float64, err error) {
	t50, err := tr.crossAfter(tIn50, 0.5*vdd, false)
	if err != nil {
		return 0, 0, err
	}
	t90, err := tr.crossAfter(tIn50, 0.9*vdd, false)
	if err != nil {
		return 0, 0, err
	}
	t10, err := tr.crossAfter(t90, 0.1*vdd, false)
	if err != nil {
		return 0, 0, err
	}
	return t50 - tIn50, t10 - t90, nil
}

// risingEdge measures the output rising transition launched at tIn50.
func (tr *trace) risingEdge(tIn50, vdd float64) (delay, slew float64, err error) {
	t50, err := tr.crossAfter(tIn50, 0.5*vdd, true)
	if err != nil {
		return 0, 0, err
	}
	t10, err := tr.crossAfter(tIn50, 0.1*vdd, true)
	if err != nil {
		return 0, 0, err
	}
	t90, err := tr.crossAfter(t10, 0.9*vdd, true)
	if err != nil {
		return 0, 0, err
	}
	return t50 - tIn50, t90 - t10, nil
}
