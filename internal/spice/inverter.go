// Package spice is a switch-level CMOS transient simulator for the
// paper's FO-4 boundary-cell study (Tables II and III, Fig. 2). It models
// an inverter with alpha-power-law MOSFETs plus subthreshold leakage,
// integrates the FO-4 stage numerically, and measures the slew, delay,
// leakage, and total power shifts caused by heterogeneous driver/load/
// input-voltage combinations.
//
// Units: time ns, voltage V, capacitance fF, current µA (so that
// dV/dt = I/C comes out in V/ns directly).
package spice

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// InverterParams is the electrical personality of one library's unit
// inverter.
type InverterParams struct {
	// VDD is the supply voltage.
	VDD float64
	// VtN and VtP are the device thresholds (positive values).
	VtN, VtP float64
	// KN and KP are the alpha-power drive coefficients in µA/V^Alpha.
	KN, KP float64
	// Alpha is the velocity-saturation exponent (≈1.3 at 28 nm).
	Alpha float64
	// VdsatFrac scales the saturation voltage: Vdsat = VdsatFrac × (Vgs − Vt).
	VdsatFrac float64
	// SubSlope is the subthreshold slope in V per e-fold (≈ n·kT/q).
	SubSlope float64
	// I0 is the subthreshold current at Vgs = Vt, in µA.
	I0 float64
	// CGate is the input (gate) capacitance in fF.
	CGate float64
	// CDrain is the output self-capacitance in fF.
	CDrain float64
}

// ParamsFor derives inverter device parameters from a library variant,
// keeping the same fast/slow, leaky/cold relations as the cell package.
func ParamsFor(v tech.Variant) InverterParams {
	const (
		vtn = 0.32
		vtp = 0.30
		// SubSlope ≈ 120 mV/dec, calibrated so a 0.09 V gate underdrive
		// multiplies the partially-on PMOS current by ≈5.6×, landing the
		// averaged static power near the paper's +250 % (Table III).
		subSlope = 0.052
	)
	// Drive strength inversely follows the variant's DriveRes.
	k := 550.0 / v.DriveRes
	// I0 (defined at Vgs = Vt) set so the fully-off device leaks the
	// library's static power: I_off = I0·exp(−Vt/S) = LeakagePower/VDD.
	i0 := v.LeakagePower / v.VDD * math.Exp(vtn/subSlope)
	return InverterParams{
		VDD:       v.VDD,
		VtN:       vtn,
		VtP:       vtp,
		KN:        k,
		KP:        k * 0.85,
		Alpha:     1.3,
		VdsatFrac: 0.45,
		SubSlope:  subSlope,
		I0:        i0,
		CGate:     v.InputCap,
		CDrain:    v.InputCap * 0.7,
	}
}

// nmosCurrent returns the pull-down current for gate voltage vg and
// output (drain) voltage vout.
func (p InverterParams) nmosCurrent(vg, vout float64) float64 {
	if vout <= 0 {
		return 0
	}
	ov := vg - p.VtN
	if ov <= 0 {
		// Subthreshold conduction with drain saturation.
		sub := p.I0 * math.Exp(ov/p.SubSlope)
		return sub * (1 - math.Exp(-vout/0.026))
	}
	isat := p.KN * math.Pow(ov, p.Alpha)
	vdsat := p.VdsatFrac * ov
	if vout >= vdsat {
		return isat
	}
	return isat * (2 - vout/vdsat) * (vout / vdsat) // smooth triode
}

// pmosCurrent returns the pull-up current for gate voltage vg and output
// voltage vout, with the source at the cell's own VDD.
func (p InverterParams) pmosCurrent(vg, vout float64) float64 {
	if vout >= p.VDD {
		return 0
	}
	ov := (p.VDD - vg) - p.VtP
	vds := p.VDD - vout
	if ov <= 0 {
		sub := p.I0 * math.Exp(ov/p.SubSlope)
		return sub * (1 - math.Exp(-vds/0.026))
	}
	isat := p.KP * math.Pow(ov, p.Alpha)
	vdsat := p.VdsatFrac * ov
	if vds >= vdsat {
		return isat
	}
	return isat * (2 - vds/vdsat) * (vds / vdsat)
}

// outputCurrent returns the net current charging the output node
// (positive = pulling up).
func (p InverterParams) outputCurrent(vin, vout float64) float64 {
	return p.pmosCurrent(vin, vout) - p.nmosCurrent(vin, vout)
}

// staticOperatingPoint solves Iup(Vout) = Idown(Vout) by bisection for a
// constant input voltage, returning the equilibrium output voltage and
// the static (crossbar + subthreshold) current in µA.
func (p InverterParams) staticOperatingPoint(vin float64) (vout, current float64) {
	lo, hi := 0.0, p.VDD
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.outputCurrent(vin, mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	vout = (lo + hi) / 2
	current = p.pmosCurrent(vin, vout)
	if down := p.nmosCurrent(vin, vout); down > current {
		current = down
	}
	return vout, current
}

// StaticLeakagePower returns the average static power of the inverter
// over the two input states {0, vinHigh}, in µW. A vinHigh below the
// cell's own VDD leaves the PMOS partially conducting — the mechanism
// behind the paper's +250 % boundary leakage (Table III).
func (p InverterParams) StaticLeakagePower(vinHigh float64) float64 {
	_, iHigh := p.staticOperatingPoint(vinHigh)
	_, iLow := p.staticOperatingPoint(0)
	return (iHigh + iLow) / 2 * p.VDD
}

// Validate checks device sanity.
func (p InverterParams) Validate() error {
	if p.VDD <= 0 || p.KN <= 0 || p.KP <= 0 || p.CGate <= 0 {
		return fmt.Errorf("spice: invalid inverter params %+v", p)
	}
	if p.VtN <= 0 || p.VtP <= 0 || p.VtN >= p.VDD {
		return fmt.Errorf("spice: invalid thresholds %+v", p)
	}
	return nil
}
