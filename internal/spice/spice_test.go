package spice

import (
	"testing"

	"repro/internal/tech"
)

func fastSlow() (tech.Variant, tech.Variant) {
	return tech.Variant12T(), tech.Variant9T()
}

func TestParamsForRelations(t *testing.T) {
	fast, slow := fastSlow()
	pf, ps := ParamsFor(fast), ParamsFor(slow)
	if err := pf.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	if pf.KN <= ps.KN {
		t.Error("fast library must drive harder")
	}
	if pf.VDD <= ps.VDD {
		t.Error("fast library must run at higher VDD")
	}
	if pf.I0 <= ps.I0 {
		t.Error("fast library must leak more")
	}
}

func TestStaticOperatingPoint(t *testing.T) {
	pf, _ := fastSlow()
	p := ParamsFor(pf)
	// Input low: output settles near VDD.
	v, i := p.staticOperatingPoint(0)
	if v < 0.95*p.VDD {
		t.Errorf("input-low output = %v, want ≈VDD %v", v, p.VDD)
	}
	if i <= 0 {
		t.Error("static current must be positive (leakage)")
	}
	// Input at VDD: output near 0.
	v, _ = p.staticOperatingPoint(p.VDD)
	if v > 0.05*p.VDD {
		t.Errorf("input-high output = %v, want ≈0", v)
	}
}

func TestSubVDDInputExplodesLeakage(t *testing.T) {
	fastV, slowV := fastSlow()
	p := ParamsFor(fastV)
	nominal := p.StaticLeakagePower(p.VDD)
	reduced := p.StaticLeakagePower(ParamsFor(slowV).VDD) // 0.81 V on a 0.9 V cell
	ratio := reduced / nominal
	// Paper Table III: +250 % → ratio ≈ 3.5. Accept a broad band around
	// it: the mechanism (partially-on PMOS) is what matters.
	if ratio < 2 || ratio > 8 {
		t.Errorf("sub-VDD leakage ratio = %v, want ≈3.5", ratio)
	}
	// Conversely an over-VDD input on the slow cell REDUCES leakage.
	ps := ParamsFor(slowV)
	over := ps.StaticLeakagePower(ParamsFor(fastV).VDD)
	nom := ps.StaticLeakagePower(ps.VDD)
	if over >= nom {
		t.Errorf("over-VDD leakage %v should be below nominal %v", over, nom)
	}
}

func TestSimulateFO4Basic(t *testing.T) {
	pf, _ := fastSlow()
	p := ParamsFor(pf)
	m, err := SimulateFO4(p, 4*p.CGate, p.VDD, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	// FO-4 delays at 28 nm land in the ~5–40 ps window.
	for name, v := range map[string]float64{
		"RiseSlew": m.RiseSlew, "FallSlew": m.FallSlew,
		"RiseDelay": m.RiseDelay, "FallDelay": m.FallDelay,
	} {
		if v <= 0.001 || v > 0.2 {
			t.Errorf("%s = %v ns, implausible for FO-4", name, v)
		}
	}
	if m.TotalPow <= m.Leakage {
		t.Error("total power must exceed leakage during switching")
	}
}

func TestSimulateFO4Errors(t *testing.T) {
	pf, _ := fastSlow()
	p := ParamsFor(pf)
	if _, err := SimulateFO4(p, 4, 0.1, DefaultSimOptions()); err == nil {
		t.Error("sub-threshold input high must fail")
	}
	bad := DefaultSimOptions()
	bad.Dt = 0
	if _, err := SimulateFO4(p, 4, p.VDD, bad); err == nil {
		t.Error("zero dt must fail")
	}
	var zero InverterParams
	if _, err := SimulateFO4(zero, 4, 1, DefaultSimOptions()); err == nil {
		t.Error("invalid params must fail")
	}
}

func TestSlowLibraryIsSlower(t *testing.T) {
	fastV, slowV := fastSlow()
	pf, ps := ParamsFor(fastV), ParamsFor(slowV)
	mf, err := SimulateFO4(pf, 4*pf.CGate, pf.VDD, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := SimulateFO4(ps, 4*ps.CGate, ps.VDD, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ms.FallDelay <= mf.FallDelay || ms.RiseDelay <= mf.RiseDelay {
		t.Errorf("slow FO4 delays %v/%v should exceed fast %v/%v",
			ms.RiseDelay, ms.FallDelay, mf.RiseDelay, mf.FallDelay)
	}
	if ms.TotalPow >= mf.TotalPow {
		t.Errorf("slow FO4 power %v should be below fast %v", ms.TotalPow, mf.TotalPow)
	}
}

// Table II shape: fast driver with slow loads gets FASTER (negative
// deltas); slow driver with fast loads gets SLOWER (positive deltas).
func TestDriverOutputExperimentSigns(t *testing.T) {
	fastV, slowV := fastSlow()
	res, err := DriverOutputExperiment(fastV, slowV, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d cases", len(res))
	}
	d12 := DeltaPct(res[0].M, res[1].M) // Case I → II
	if d12.RiseDelay >= 0 || d12.FallDelay >= 0 {
		t.Errorf("fast→slow-load deltas should be negative: %+v", d12)
	}
	if d12.TotalPow >= 0 {
		t.Errorf("fast→slow-load power delta should be negative: %v", d12.TotalPow)
	}
	d34 := DeltaPct(res[2].M, res[3].M) // Case III → IV
	if d34.RiseDelay <= 0 || d34.FallDelay <= 0 {
		t.Errorf("slow→fast-load deltas should be positive: %+v", d34)
	}
	if d34.TotalPow <= 0 {
		t.Errorf("slow→fast-load power delta should be positive: %v", d34.TotalPow)
	}
	// Magnitudes in the paper's ballpark (|Δdelay| ≈ 5–25 %).
	for _, v := range []float64{-d12.RiseDelay, -d12.FallDelay, d34.RiseDelay, d34.FallDelay} {
		if v < 1 || v > 45 {
			t.Errorf("delay delta magnitude %v%% outside plausible band", v)
		}
	}
}

// Table III shape: lower gate voltage on the fast cell slows it slightly
// and explodes leakage; higher gate voltage on the slow cell speeds it up
// and cuts leakage.
func TestDriverInputExperimentSigns(t *testing.T) {
	fastV, slowV := fastSlow()
	res, err := DriverInputExperiment(fastV, slowV, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d cases", len(res))
	}
	left := DeltaPct(res[0].M, res[1].M) // fast cell: VDD → 0.81 input
	if left.FallDelay <= 0 {
		t.Errorf("reduced gate drive should slow the fall: %+v", left)
	}
	if left.Leakage < 100 {
		t.Errorf("leakage delta = %v%%, want ≈+250%%", left.Leakage)
	}
	right := DeltaPct(res[2].M, res[3].M) // slow cell: 0.81 → 0.9 input
	if right.FallDelay >= 0 {
		t.Errorf("over-driven gate should speed the fall: %+v", right)
	}
	if right.Leakage >= 0 {
		t.Errorf("over-driven leakage delta = %v%%, want negative", right.Leakage)
	}
}

func TestVoltageCompatible(t *testing.T) {
	fastV, slowV := fastSlow()
	if !VoltageCompatible(fastV, slowV) {
		t.Error("9T/12T must be level-shifter free")
	}
}
