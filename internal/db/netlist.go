package db

import (
	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// NetlistSection is the NETL section: the full netlist.Snapshot —
// masters (NLDM grids included), instances, nets, ports, and the change
// journal's revision counters, folded into one payload so decoding NETL
// alone is sufficient to rebuild the design every other section
// references.
type NetlistSection struct {
	Snap *netlist.Snapshot
}

// TagNetlist identifies the netlist section of a design file.
const TagNetlist = "NETL"

// Tag implements Section.
func (s *NetlistSection) Tag() string { return TagNetlist }

// PutPoint writes a geom.Point as two float64s.
func (w *Writer) PutPoint(p geom.Point) {
	w.PutF64(p.X)
	w.PutF64(p.Y)
}

// Point reads a geom.Point.
func (r *Reader) Point() (geom.Point, error) {
	x, err := r.F64()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := r.F64()
	return geom.Point{X: x, Y: y}, err
}

// PutRect writes a geom.Rect as four float64s.
func (w *Writer) PutRect(rc geom.Rect) {
	w.PutF64(rc.Lx)
	w.PutF64(rc.Ly)
	w.PutF64(rc.Ux)
	w.PutF64(rc.Uy)
}

// Rect reads a geom.Rect.
func (r *Reader) Rect() (geom.Rect, error) {
	var rc geom.Rect
	var err error
	if rc.Lx, err = r.F64(); err != nil {
		return rc, err
	}
	if rc.Ly, err = r.F64(); err != nil {
		return rc, err
	}
	if rc.Ux, err = r.F64(); err != nil {
		return rc, err
	}
	rc.Uy, err = r.F64()
	return rc, err
}

func putNLDM(w *Writer, t *cell.NLDM) {
	w.PutBool(t != nil)
	if t == nil {
		return
	}
	w.PutF64s(t.SlewAxis)
	w.PutF64s(t.LoadAxis)
	w.PutU32(uint32(len(t.Values)))
	for _, row := range t.Values {
		w.PutF64s(row)
	}
}

func readNLDM(r *Reader) (*cell.NLDM, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return nil, err
	}
	t := &cell.NLDM{}
	if t.SlewAxis, err = r.F64s(); err != nil {
		return nil, err
	}
	if t.LoadAxis, err = r.F64s(); err != nil {
		return nil, err
	}
	rows, err := r.Count(4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		row, err := r.F64s()
		if err != nil {
			return nil, err
		}
		t.Values = append(t.Values, row)
	}
	return t, nil
}

// PutMaster writes a complete cell master, timing tables included.
func PutMaster(w *Writer, m *cell.Master) {
	w.PutString(m.Name)
	w.PutI32(int32(m.Function))
	w.PutI32(int32(m.Drive))
	w.PutF64(m.Width)
	w.PutF64(m.Height)
	w.PutU32(uint32(len(m.Pins)))
	for _, p := range m.Pins {
		w.PutString(p.Name)
		w.PutU8(uint8(p.Dir))
		w.PutF64(p.Cap)
	}
	putNLDM(w, m.Delay)
	putNLDM(w, m.OutSlew)
	w.PutF64(m.Setup)
	w.PutF64(m.Hold)
	w.PutF64(m.Leakage)
	w.PutF64(m.InternalEnergy)
	w.PutF64(m.MaxLoad)
	w.PutI32(int32(m.Track))
	w.PutF64(m.VDD)
}

// ReadMaster reads one cell master. Semantic validation (table shape,
// pin sanity) is the importer's job — netlist.ImportState runs
// Master.Validate on every master it receives.
func ReadMaster(r *Reader) (*cell.Master, error) {
	m := &cell.Master{}
	var err error
	if m.Name, err = r.String(); err != nil {
		return nil, err
	}
	fn, err := r.I32()
	if err != nil {
		return nil, err
	}
	m.Function = cell.Function(fn)
	drive, err := r.I32()
	if err != nil {
		return nil, err
	}
	m.Drive = int(drive)
	if m.Width, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Height, err = r.F64(); err != nil {
		return nil, err
	}
	npins, err := r.Count(13) // name len + dir + cap
	if err != nil {
		return nil, err
	}
	for i := 0; i < npins; i++ {
		var p cell.PinSpec
		if p.Name, err = r.String(); err != nil {
			return nil, err
		}
		dir, err := r.U8()
		if err != nil {
			return nil, err
		}
		if dir > uint8(cell.DirClk) {
			return nil, Corruptf("pin %s has direction %d", p.Name, dir)
		}
		p.Dir = cell.Dir(dir)
		if p.Cap, err = r.F64(); err != nil {
			return nil, err
		}
		m.Pins = append(m.Pins, p)
	}
	if m.Delay, err = readNLDM(r); err != nil {
		return nil, err
	}
	if m.OutSlew, err = readNLDM(r); err != nil {
		return nil, err
	}
	if m.Setup, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Hold, err = r.F64(); err != nil {
		return nil, err
	}
	if m.Leakage, err = r.F64(); err != nil {
		return nil, err
	}
	if m.InternalEnergy, err = r.F64(); err != nil {
		return nil, err
	}
	if m.MaxLoad, err = r.F64(); err != nil {
		return nil, err
	}
	track, err := r.I32()
	if err != nil {
		return nil, err
	}
	m.Track = tech.Track(track)
	m.VDD, err = r.F64()
	return m, err
}

func putPinSnap(w *Writer, p netlist.PinSnap) {
	w.PutI32(p.Inst)
	w.PutI32(p.Pin)
}

func readPinSnap(r *Reader) (netlist.PinSnap, error) {
	var p netlist.PinSnap
	var err error
	if p.Inst, err = r.I32(); err != nil {
		return p, err
	}
	p.Pin, err = r.I32()
	return p, err
}

// Encode implements Section.
func (s *NetlistSection) Encode(w *Writer) error {
	sn := s.Snap
	w.PutString(sn.Name)
	w.PutU32(uint32(len(sn.Masters)))
	for _, m := range sn.Masters {
		PutMaster(w, m)
	}
	w.PutU32(uint32(len(sn.Insts)))
	for i := range sn.Insts {
		is := &sn.Insts[i]
		w.PutString(is.Name)
		w.PutI32(is.Master)
		w.PutU8(uint8(is.Tier))
		w.PutPoint(is.Loc)
		w.PutBool(is.Fixed)
	}
	w.PutU32(uint32(len(sn.Nets)))
	for i := range sn.Nets {
		ns := &sn.Nets[i]
		w.PutString(ns.Name)
		w.PutBool(ns.IsClock)
		putPinSnap(w, ns.Driver)
		w.PutU32(uint32(len(ns.Sinks)))
		for _, sink := range ns.Sinks {
			putPinSnap(w, sink)
		}
	}
	w.PutU32(uint32(len(sn.Ports)))
	for i := range sn.Ports {
		ps := &sn.Ports[i]
		w.PutString(ps.Name)
		w.PutU8(uint8(ps.Dir))
		w.PutI32(ps.Net)
		w.PutPoint(ps.Loc)
		w.PutF64(ps.Cap)
	}
	w.PutU64(sn.Journal.TopoRev)
	w.PutU64(sn.Journal.MaxTopo)
	w.PutU64s(sn.Journal.InstRev)
	w.PutU64s(sn.Journal.NetRev)
	return nil
}

// Decode implements Section. It only rebuilds the Snapshot; replaying
// it into a live Design (netlist.ImportState) is the caller's step, so
// structural validation lives in one place.
func (s *NetlistSection) Decode(r *Reader) error {
	sn := &netlist.Snapshot{}
	var err error
	if sn.Name, err = r.String(); err != nil {
		return err
	}
	nm, err := r.Count(1)
	if err != nil {
		return err
	}
	for i := 0; i < nm; i++ {
		m, err := ReadMaster(r)
		if err != nil {
			return err
		}
		sn.Masters = append(sn.Masters, m)
	}
	ni, err := r.Count(26) // name len + master + tier + loc + fixed
	if err != nil {
		return err
	}
	for i := 0; i < ni; i++ {
		var is netlist.InstSnap
		if is.Name, err = r.String(); err != nil {
			return err
		}
		mi, err := r.I32()
		if err != nil {
			return err
		}
		is.Master = mi
		tier, err := r.U8()
		if err != nil {
			return err
		}
		is.Tier = tech.Tier(tier)
		if is.Loc, err = r.Point(); err != nil {
			return err
		}
		if is.Fixed, err = r.Bool(); err != nil {
			return err
		}
		sn.Insts = append(sn.Insts, is)
	}
	nn, err := r.Count(17) // name len + clock + driver + sink count
	if err != nil {
		return err
	}
	for i := 0; i < nn; i++ {
		var ns netlist.NetSnap
		if ns.Name, err = r.String(); err != nil {
			return err
		}
		if ns.IsClock, err = r.Bool(); err != nil {
			return err
		}
		if ns.Driver, err = readPinSnap(r); err != nil {
			return err
		}
		nsk, err := r.Count(8)
		if err != nil {
			return err
		}
		for j := 0; j < nsk; j++ {
			sink, err := readPinSnap(r)
			if err != nil {
				return err
			}
			ns.Sinks = append(ns.Sinks, sink)
		}
		sn.Nets = append(sn.Nets, ns)
	}
	np, err := r.Count(33) // name len + dir + net + loc + cap
	if err != nil {
		return err
	}
	for i := 0; i < np; i++ {
		var ps netlist.PortSnap
		if ps.Name, err = r.String(); err != nil {
			return err
		}
		dir, err := r.U8()
		if err != nil {
			return err
		}
		ps.Dir = cell.Dir(dir)
		if ps.Net, err = r.I32(); err != nil {
			return err
		}
		if ps.Loc, err = r.Point(); err != nil {
			return err
		}
		if ps.Cap, err = r.F64(); err != nil {
			return err
		}
		sn.Ports = append(sn.Ports, ps)
	}
	if sn.Journal.TopoRev, err = r.U64(); err != nil {
		return err
	}
	if sn.Journal.MaxTopo, err = r.U64(); err != nil {
		return err
	}
	if sn.Journal.InstRev, err = r.U64s(); err != nil {
		return err
	}
	if sn.Journal.NetRev, err = r.U64s(); err != nil {
		return err
	}
	s.Snap = sn
	return nil
}
