package db

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestStreamFrameRoundTrip: frames written by WriteFrame read back
// identically through both ReadFrame and the in-memory FrameIter — the
// wire stream and the file format share one layout.
func TestStreamFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		tag     string
		payload []byte
	}{
		{"AAAA", nil},
		{"BBBB", []byte{}},
		{"CCCC", []byte("hello")},
		{"DDDD", bytes.Repeat([]byte{0xa5}, 1<<16)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f.tag, f.payload); err != nil {
			t.Fatalf("WriteFrame(%s): %v", f.tag, err)
		}
	}

	it := NewFrameIter(buf.Bytes())
	r := bytes.NewReader(buf.Bytes())
	for _, f := range frames {
		tag, payload, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("ReadFrame(%s): %v", f.tag, err)
		}
		itTag, itPayload, itErr := it.Next()
		if itErr != nil {
			t.Fatalf("FrameIter(%s): %v", f.tag, itErr)
		}
		if tag != f.tag || itTag != f.tag {
			t.Fatalf("tag = %q / %q, want %q", tag, itTag, f.tag)
		}
		if !bytes.Equal(payload, f.payload) || !bytes.Equal(itPayload, f.payload) {
			t.Fatalf("payload mismatch on %s", f.tag)
		}
	}
	if _, _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}
}

func TestStreamFrameBadTag(t *testing.T) {
	if err := WriteFrame(io.Discard, "TOOLONG", nil); err == nil {
		t.Fatal("WriteFrame accepted a non-4-byte tag")
	}
}

// TestStreamFrameTruncated: a stream ending mid-header or mid-payload
// yields ErrTruncated (which wraps ErrCorrupt), never a panic.
func TestStreamFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "SECT", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]), 0)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: ErrTruncated must wrap ErrCorrupt", cut)
		}
	}
}

// TestStreamFrameCorrupt: a flipped payload byte fails the CRC with
// ErrCorrupt but not ErrTruncated.
func TestStreamFrameCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "SECT", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[9] ^= 0xff // inside the payload
	_, _, err := ReadFrame(bytes.NewReader(data), 0)
	if !errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want plain ErrCorrupt", err)
	}
}

// TestStreamFrameLengthCap: a hostile length field is refused before
// any allocation of that size happens.
func TestStreamFrameLengthCap(t *testing.T) {
	raw := []byte("SECT")
	raw = appendU32(raw, 0xffffffff)
	_, _, err := ReadFrame(bytes.NewReader(raw), 1<<20)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("error should name the cap: %v", err)
	}
}
