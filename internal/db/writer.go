package db

import "math"

// Writer is an append-only little-endian byte builder — the encode half
// of every codec. It never fails; sizing errors surface on the decode
// side where untrusted input lives.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// PutU8 writes one byte.
func (w *Writer) PutU8(v uint8) { w.buf = append(w.buf, v) }

// PutBool writes a bool as one byte (0 or 1).
func (w *Writer) PutBool(v bool) {
	if v {
		w.PutU8(1)
	} else {
		w.PutU8(0)
	}
}

// PutU32 writes a little-endian uint32.
func (w *Writer) PutU32(v uint32) { w.buf = appendU32(w.buf, v) }

// PutU64 writes a little-endian uint64.
func (w *Writer) PutU64(v uint64) { w.buf = appendU64(w.buf, v) }

// PutI32 writes an int32 in two's complement.
func (w *Writer) PutI32(v int32) { w.PutU32(uint32(v)) }

// PutI64 writes an int64 in two's complement.
func (w *Writer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutF64 writes a float64 as its IEEE-754 bit pattern — values
// round-trip bit-exactly, NaN payloads included.
func (w *Writer) PutF64(v float64) { w.PutU64(math.Float64bits(v)) }

// PutBytes writes a u32 length followed by the raw bytes.
func (w *Writer) PutBytes(b []byte) {
	w.PutU32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// PutString writes a string as PutBytes of its contents.
func (w *Writer) PutString(s string) {
	w.PutU32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// PutF64s writes a counted slice of float64.
func (w *Writer) PutF64s(vs []float64) {
	w.PutU32(uint32(len(vs)))
	for _, v := range vs {
		w.PutF64(v)
	}
}

// PutU64s writes a counted slice of uint64.
func (w *Writer) PutU64s(vs []uint64) {
	w.PutU32(uint32(len(vs)))
	for _, v := range vs {
		w.PutU64(v)
	}
}

// PutI32s writes a counted slice of int32.
func (w *Writer) PutI32s(vs []int32) {
	w.PutU32(uint32(len(vs)))
	for _, v := range vs {
		w.PutI32(v)
	}
}
