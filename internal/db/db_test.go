package db

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// primSection exercises every primitive the Writer/Reader pair offers.
type primSection struct {
	u8   uint8
	b    bool
	u32  uint32
	u64  uint64
	i32  int32
	i64  int64
	f64  float64
	raw  []byte
	str  string
	f64s []float64
	u64s []uint64
	i32s []int32
}

func (s *primSection) Tag() string { return "PRIM" }

func (s *primSection) Encode(w *Writer) error {
	w.PutU8(s.u8)
	w.PutBool(s.b)
	w.PutU32(s.u32)
	w.PutU64(s.u64)
	w.PutI32(s.i32)
	w.PutI64(s.i64)
	w.PutF64(s.f64)
	w.PutBytes(s.raw)
	w.PutString(s.str)
	w.PutF64s(s.f64s)
	w.PutU64s(s.u64s)
	w.PutI32s(s.i32s)
	return nil
}

func (s *primSection) Decode(r *Reader) error {
	var err error
	if s.u8, err = r.U8(); err != nil {
		return err
	}
	if s.b, err = r.Bool(); err != nil {
		return err
	}
	if s.u32, err = r.U32(); err != nil {
		return err
	}
	if s.u64, err = r.U64(); err != nil {
		return err
	}
	if s.i32, err = r.I32(); err != nil {
		return err
	}
	if s.i64, err = r.I64(); err != nil {
		return err
	}
	if s.f64, err = r.F64(); err != nil {
		return err
	}
	if s.raw, err = r.Bytes(); err != nil {
		return err
	}
	if s.str, err = r.String(); err != nil {
		return err
	}
	if s.f64s, err = r.F64s(); err != nil {
		return err
	}
	if s.u64s, err = r.U64s(); err != nil {
		return err
	}
	s.i32s, err = r.I32s()
	return err
}

func testFile(t *testing.T, secs ...Section) []byte {
	t.Helper()
	data, err := Encode(MagicDesign, secs...)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPrimitivesRoundTrip(t *testing.T) {
	in := &primSection{
		u8: 0xab, b: true, u32: 1 << 31, u64: 1 << 60,
		i32: -12345, i64: -1 << 50, f64: -math.Pi,
		raw: []byte{0, 1, 2, 255}, str: "hello, 3-D world",
		f64s: []float64{0, -1.5, math.Inf(1)},
		u64s: []uint64{7, 8},
		i32s: []int32{-1, 0, 1},
	}
	data := testFile(t, in)

	out := &primSection{}
	err := Decode(data, MagicDesign, func(tag string) (Section, error) {
		if tag != "PRIM" {
			t.Fatalf("unexpected tag %q", tag)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Encode the decoded value again: byte identity is the contract.
	if again := testFile(t, out); !bytes.Equal(again, data) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(again), len(data))
	}
	if out.str != in.str || out.u64 != in.u64 || !math.Signbit(out.f64) {
		t.Fatalf("decoded %+v", out)
	}
}

func TestEmptySlicesStayNil(t *testing.T) {
	data := testFile(t, &primSection{})
	out := &primSection{raw: []byte{1}, f64s: []float64{1}}
	err := Decode(data, MagicDesign, func(string) (Section, error) { return out, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out.raw != nil || out.f64s != nil || out.u64s != nil || out.i32s != nil {
		t.Fatalf("zero-length slices must decode to nil: %+v", out)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := testFile(t, &primSection{str: "x", f64s: []float64{1, 2}})
	nop := func(string) (Section, error) { return nil, nil }

	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:4],
		"bad magic":    append([]byte("XXXX"), valid[4:]...),
	}
	for name, data := range cases {
		if err := Decode(data, MagicDesign, nop); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}

	// Wrong version is its own error class.
	future := append([]byte(nil), valid...)
	future[4] = FormatVersion + 1
	if err := Decode(future, MagicDesign, nop); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: got %v, want ErrVersion", err)
	}

	// A complete frame with a flipped payload bit fails its CRC.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-6] ^= 1
	if err := Decode(flipped, MagicDesign, nop); !errors.Is(err, ErrCorrupt) {
		t.Errorf("crc: got %v, want ErrCorrupt", err)
	}

	// Truncation inside the last frame is the distinguished corrupt
	// subclass the journal reader tolerates.
	trunc := valid[:len(valid)-3]
	if err := Decode(trunc, MagicDesign, nop); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: got %v, want ErrTruncated", err)
	}

	// A section that leaves payload bytes unread is corrupt.
	shortDecode := func(string) (Section, error) { return sectionFunc{&primSection{}}, nil }
	if err := Decode(valid, MagicDesign, shortDecode); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

// sectionFunc decodes only the first byte of a PRIM payload, leaving a
// tail — the trailing-bytes misuse the decoder must refuse.
type sectionFunc struct{ s Section }

func (f sectionFunc) Tag() string            { return f.s.Tag() }
func (f sectionFunc) Encode(w *Writer) error { return f.s.Encode(w) }
func (f sectionFunc) Decode(r *Reader) error { _, err := r.U8(); return err }

func TestUnknownSectionsSkipped(t *testing.T) {
	data := testFile(t, &primSection{u32: 9}, &primSection{u32: 10})
	var seen int
	err := Decode(data, MagicDesign, func(tag string) (Section, error) {
		seen++
		if seen == 1 {
			return nil, nil // skip the first
		}
		return &primSection{}, nil
	})
	if err != nil || seen != 2 {
		t.Fatalf("err=%v seen=%d", err, seen)
	}
}

func TestList(t *testing.T) {
	data := testFile(t, &primSection{raw: make([]byte, 100)})
	magic, infos, err := List(data)
	if err != nil {
		t.Fatal(err)
	}
	if magic != MagicDesign || len(infos) != 1 || infos[0].Tag != "PRIM" || infos[0].Len < 100 {
		t.Fatalf("magic %q infos %+v", magic, infos)
	}
	if _, _, err := List([]byte("bogus!")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bogus list: %v", err)
	}
}

func TestCountGuardsAllocation(t *testing.T) {
	// A frame claiming 2^31 elements of 8 bytes each must fail cleanly
	// (not allocate), because the payload cannot possibly hold them.
	w := NewWriter()
	w.PutU32(1 << 31)
	r := NewReader(w.Bytes())
	if _, err := r.F64s(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized count: %v", err)
	}
}
