package db

import (
	"hash/crc32"
	"io"
)

// MaxStreamFrame is the payload cap WriteFrame/ReadFrame fall back to
// when the caller passes a non-positive limit: large enough for a full
// design-database upload, small enough that a hostile length field
// cannot provoke an unbounded allocation.
const MaxStreamFrame = 64 << 20

// WriteFrame writes one tag/len/payload/CRC frame — the same layout
// FrameIter reads — to a stream. The frame is assembled first and
// written with a single Write call, so a frame never interleaves with
// a concurrent writer that serializes at the same io.Writer.
func WriteFrame(w io.Writer, tag string, payload []byte) error {
	buf, err := AppendFrame(make([]byte, 0, 12+len(payload)), tag, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from a stream. max caps the accepted
// payload length (non-positive means MaxStreamFrame) so a corrupt or
// adversarial length field cannot provoke an unbounded allocation.
// Error typing mirrors FrameIter.Next: io.EOF at a clean boundary
// between frames, ErrTruncated when the stream ends mid-frame, and
// ErrCorrupt on a CRC mismatch or an oversized length.
func ReadFrame(r io.Reader, max int) (tag string, payload []byte, err error) {
	if max <= 0 {
		max = MaxStreamFrame
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, ErrTruncated
	}
	tag = string(hdr[:4])
	n := int(leU32(hdr[4:]))
	if n < 0 || n > max {
		return tag, nil, Corruptf("frame %s: payload length %d exceeds the %d-byte cap", tag, n, max)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return tag, nil, ErrTruncated
	}
	payload = buf[:n]
	want := leU32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return tag, nil, Corruptf("frame %s: CRC mismatch (stored %08x, computed %08x)", tag, want, got)
	}
	return tag, payload, nil
}
