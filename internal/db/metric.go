package db

import (
	"sort"
	"time"

	"repro/internal/flow"
)

// PutStageMetric writes one flow stage metric. The stats map is emitted
// as sorted (key, value) pairs so encoding stays canonical regardless
// of map iteration order. Wall time is serialized for checkpoint parity
// — a resumed flow reports the saved stages' real durations — which is
// also why tests pinning file digests must hash with Wall zeroed.
func PutStageMetric(w *Writer, m flow.StageMetric) {
	w.PutString(m.Name)
	w.PutI64(int64(m.Wall))
	w.PutI32(int32(m.Cells))
	keys := make([]string, 0, len(m.Stats))
	for k := range m.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.PutU32(uint32(len(keys)))
	for _, k := range keys {
		w.PutString(k)
		w.PutI64(m.Stats[k])
	}
}

// ReadStageMetric reads one flow stage metric. An empty stats map
// decodes to nil, matching what a stage that recorded no stats carries.
func ReadStageMetric(r *Reader) (flow.StageMetric, error) {
	var m flow.StageMetric
	var err error
	if m.Name, err = r.String(); err != nil {
		return m, err
	}
	wall, err := r.I64()
	if err != nil {
		return m, err
	}
	m.Wall = time.Duration(wall)
	cells, err := r.I32()
	if err != nil {
		return m, err
	}
	m.Cells = int(cells)
	n, err := r.Count(12)
	if err != nil {
		return m, err
	}
	if n > 0 {
		m.Stats = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			k, err := r.String()
			if err != nil {
				return m, err
			}
			v, err := r.I64()
			if err != nil {
				return m, err
			}
			m.Stats[k] = v
		}
	}
	return m, nil
}
