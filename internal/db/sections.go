package db

import (
	"sort"

	"repro/internal/check"
	"repro/internal/cts"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sta"
)

// Section tags of the per-layer design-file sections. Core adds its own
// flow-owned tags (metadata, stage metrics, PPAC) on top of these.
const (
	TagFloorplan = "PLAC"
	TagCTS       = "CTSR"
	TagSTA       = "STAR"
	TagRoute     = "ROUT"
	TagChecks    = "CHKS"
)

// FloorplanSection is the PLAC section: the die/core outline and
// placement parameters.
type FloorplanSection struct {
	FP *place.Floorplan
}

// Tag implements Section.
func (s *FloorplanSection) Tag() string { return TagFloorplan }

// Encode implements Section.
func (s *FloorplanSection) Encode(w *Writer) error {
	w.PutRect(s.FP.Outline)
	w.PutRect(s.FP.Core)
	w.PutF64(s.FP.TargetUtil)
	w.PutI32(int32(s.FP.Tiers))
	return nil
}

// Decode implements Section.
func (s *FloorplanSection) Decode(r *Reader) error {
	fp := &place.Floorplan{}
	var err error
	if fp.Outline, err = r.Rect(); err != nil {
		return err
	}
	if fp.Core, err = r.Rect(); err != nil {
		return err
	}
	if fp.TargetUtil, err = r.F64(); err != nil {
		return err
	}
	tiers, err := r.I32()
	if err != nil {
		return err
	}
	if tiers < 1 || tiers > 2 {
		return Corruptf("floorplan has %d tiers", tiers)
	}
	fp.Tiers = int(tiers)
	s.FP = fp
	return nil
}

// CTSSection is the CTSR section: the clock-tree result with buffer
// references flattened to dense instance IDs and the latency map as
// sorted (id, latency) pairs — the map's iteration order never touches
// the wire, so encoding stays canonical. Decode needs the restored
// design (D) to resolve buffer IDs back to instances.
type CTSSection struct {
	D   *netlist.Design
	Res *cts.Result
}

// Tag implements Section.
func (s *CTSSection) Tag() string { return TagCTS }

// Encode implements Section.
func (s *CTSSection) Encode(w *Writer) error {
	ct := s.Res
	w.PutU32(uint32(len(ct.Buffers)))
	for _, b := range ct.Buffers {
		w.PutI32(int32(b.ID))
	}
	ids := make([]int, 0, len(ct.Latency))
	for id := range ct.Latency {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.PutU32(uint32(len(ids)))
	for _, id := range ids {
		w.PutI32(int32(id))
		w.PutF64(ct.Latency[id])
	}
	w.PutF64(ct.MaxLatency)
	w.PutF64(ct.MinLatency)
	w.PutF64(ct.MaxSkew)
	w.PutF64(ct.BufferArea)
	w.PutF64(ct.Wirelength)
	w.PutI32(int32(ct.CountByTier[0]))
	w.PutI32(int32(ct.CountByTier[1]))
	w.PutI32(int32(ct.Levels))
	return nil
}

// Decode implements Section.
func (s *CTSSection) Decode(r *Reader) error {
	ct := &cts.Result{}
	nb, err := r.Count(4)
	if err != nil {
		return err
	}
	for i := 0; i < nb; i++ {
		id, err := r.I32()
		if err != nil {
			return err
		}
		if id < 0 || int(id) >= len(s.D.Instances) {
			return Corruptf("clock buffer references instance %d of %d", id, len(s.D.Instances))
		}
		ct.Buffers = append(ct.Buffers, s.D.Instances[id])
	}
	nl, err := r.Count(12)
	if err != nil {
		return err
	}
	ct.Latency = make(map[int]float64, nl)
	for i := 0; i < nl; i++ {
		id, err := r.I32()
		if err != nil {
			return err
		}
		if id < 0 || int(id) >= len(s.D.Instances) {
			return Corruptf("clock latency references instance %d of %d", id, len(s.D.Instances))
		}
		v, err := r.F64()
		if err != nil {
			return err
		}
		ct.Latency[int(id)] = v
	}
	if ct.MaxLatency, err = r.F64(); err != nil {
		return err
	}
	if ct.MinLatency, err = r.F64(); err != nil {
		return err
	}
	if ct.MaxSkew, err = r.F64(); err != nil {
		return err
	}
	if ct.BufferArea, err = r.F64(); err != nil {
		return err
	}
	if ct.Wirelength, err = r.F64(); err != nil {
		return err
	}
	for t := 0; t < 2; t++ {
		v, err := r.I32()
		if err != nil {
			return err
		}
		ct.CountByTier[t] = int(v)
	}
	levels, err := r.I32()
	if err != nil {
		return err
	}
	ct.Levels = int(levels)
	s.Res = ct
	return nil
}

// STASection is the STAR section: a full sta.Snapshot — summary
// numbers, per-instance arrival/required/delay/slew/wire arrays,
// predecessors, and the endpoint slack table.
type STASection struct {
	Snap *sta.Snapshot
}

// Tag implements Section.
func (s *STASection) Tag() string { return TagSTA }

// Encode implements Section.
func (s *STASection) Encode(w *Writer) error {
	sn := s.Snap
	w.PutF64(sn.Period)
	w.PutF64(sn.WNS)
	w.PutF64(sn.TNS)
	w.PutF64(sn.HoldWNS)
	w.PutF64(sn.HoldTNS)
	w.PutI32(int32(sn.Endpoints))
	w.PutI32(int32(sn.FailingEndpoints))
	w.PutI32(int32(sn.FailingHoldEndpoints))
	w.PutF64s(sn.ArrOut)
	w.PutF64s(sn.ReqOut)
	w.PutF64s(sn.Delay)
	w.PutF64s(sn.SlewOut)
	w.PutF64s(sn.InWire)
	w.PutI32s(sn.Pred)
	w.PutU32(uint32(len(sn.Ends)))
	for _, e := range sn.Ends {
		w.PutI32(e.Inst)
		w.PutI32(e.Port)
		w.PutI32(e.From)
		w.PutF64(e.Slack)
		w.PutF64(e.Hold)
	}
	return nil
}

// Decode implements Section.
func (s *STASection) Decode(r *Reader) error {
	sn := &sta.Snapshot{}
	var err error
	if sn.Period, err = r.F64(); err != nil {
		return err
	}
	if sn.WNS, err = r.F64(); err != nil {
		return err
	}
	if sn.TNS, err = r.F64(); err != nil {
		return err
	}
	if sn.HoldWNS, err = r.F64(); err != nil {
		return err
	}
	if sn.HoldTNS, err = r.F64(); err != nil {
		return err
	}
	var v int32
	if v, err = r.I32(); err != nil {
		return err
	}
	sn.Endpoints = int(v)
	if v, err = r.I32(); err != nil {
		return err
	}
	sn.FailingEndpoints = int(v)
	if v, err = r.I32(); err != nil {
		return err
	}
	sn.FailingHoldEndpoints = int(v)
	if sn.ArrOut, err = r.F64s(); err != nil {
		return err
	}
	if sn.ReqOut, err = r.F64s(); err != nil {
		return err
	}
	if sn.Delay, err = r.F64s(); err != nil {
		return err
	}
	if sn.SlewOut, err = r.F64s(); err != nil {
		return err
	}
	if sn.InWire, err = r.F64s(); err != nil {
		return err
	}
	if sn.Pred, err = r.I32s(); err != nil {
		return err
	}
	ne, err := r.Count(28)
	if err != nil {
		return err
	}
	for i := 0; i < ne; i++ {
		var e sta.EndpointSnap
		if e.Inst, err = r.I32(); err != nil {
			return err
		}
		if e.Port, err = r.I32(); err != nil {
			return err
		}
		if e.From, err = r.I32(); err != nil {
			return err
		}
		if e.Slack, err = r.F64(); err != nil {
			return err
		}
		if e.Hold, err = r.F64(); err != nil {
			return err
		}
		sn.Ends = append(sn.Ends, e)
	}
	s.Snap = sn
	return nil
}

// RouteSection is the ROUT section: the valid extraction-cache entries
// in net-ID order, each keyed on the journal revision it was extracted
// at. A resumed flow installs them into a fresh cache; any entry whose
// net has since moved simply misses and re-extracts — determinism rests
// on the extraction being a pure function of the design, the entries
// only keep the cache warm.
type RouteSection struct {
	Entries []route.CacheEntry
}

// Tag implements Section.
func (s *RouteSection) Tag() string { return TagRoute }

// Encode implements Section.
func (s *RouteSection) Encode(w *Writer) error {
	w.PutU32(uint32(len(s.Entries)))
	for _, e := range s.Entries {
		w.PutI32(int32(e.Net))
		w.PutU64(e.Rev)
		w.PutF64(e.RC.WireLen)
		w.PutF64(e.RC.WireCap)
		w.PutF64s(e.RC.SinkR)
		w.PutF64s(e.RC.SinkCapShare)
		w.PutI32(int32(e.RC.MIVs))
	}
	return nil
}

// Decode implements Section.
func (s *RouteSection) Decode(r *Reader) error {
	n, err := r.Count(40)
	if err != nil {
		return err
	}
	s.Entries = nil
	for i := 0; i < n; i++ {
		var e route.CacheEntry
		id, err := r.I32()
		if err != nil {
			return err
		}
		e.Net = int(id)
		if e.Rev, err = r.U64(); err != nil {
			return err
		}
		rc := &route.NetRC{}
		if rc.WireLen, err = r.F64(); err != nil {
			return err
		}
		if rc.WireCap, err = r.F64(); err != nil {
			return err
		}
		if rc.SinkR, err = r.F64s(); err != nil {
			return err
		}
		if rc.SinkCapShare, err = r.F64s(); err != nil {
			return err
		}
		mivs, err := r.I32()
		if err != nil {
			return err
		}
		rc.MIVs = int(mivs)
		e.RC = rc //poolescape:ignore deserialization builds a fresh heap shell, never drawn from the pool
		s.Entries = append(s.Entries, e)
	}
	return nil
}

// PutCheckReport writes one design-integrity report.
func PutCheckReport(w *Writer, rep *check.Report) {
	w.PutString(rep.Design)
	w.PutString(rep.Stage)
	w.PutU32(uint32(len(rep.Stats)))
	for _, st := range rep.Stats {
		w.PutString(st.ID)
		w.PutString(st.Title)
		w.PutU8(uint8(st.Severity))
		w.PutI32(int32(st.Checked))
		w.PutI32(int32(st.Violations))
	}
	w.PutU32(uint32(len(rep.Violations)))
	for _, v := range rep.Violations {
		w.PutString(v.Rule)
		w.PutU8(uint8(v.Severity))
		w.PutString(v.Obj)
		w.PutString(v.Msg)
	}
}

// ReadCheckReport reads one design-integrity report.
func ReadCheckReport(r *Reader) (*check.Report, error) {
	rep := &check.Report{}
	var err error
	if rep.Design, err = r.String(); err != nil {
		return nil, err
	}
	if rep.Stage, err = r.String(); err != nil {
		return nil, err
	}
	readSeverity := func() (check.Severity, error) {
		v, err := r.U8()
		if err != nil {
			return 0, err
		}
		if v > uint8(check.Error) {
			return 0, Corruptf("severity byte %d", v)
		}
		return check.Severity(v), nil
	}
	ns, err := r.Count(17)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ns; i++ {
		var st check.RuleStat
		if st.ID, err = r.String(); err != nil {
			return nil, err
		}
		if st.Title, err = r.String(); err != nil {
			return nil, err
		}
		if st.Severity, err = readSeverity(); err != nil {
			return nil, err
		}
		v, err := r.I32()
		if err != nil {
			return nil, err
		}
		st.Checked = int(v)
		if v, err = r.I32(); err != nil {
			return nil, err
		}
		st.Violations = int(v)
		rep.Stats = append(rep.Stats, st)
	}
	nv, err := r.Count(13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nv; i++ {
		var v check.Violation
		if v.Rule, err = r.String(); err != nil {
			return nil, err
		}
		if v.Severity, err = readSeverity(); err != nil {
			return nil, err
		}
		if v.Obj, err = r.String(); err != nil {
			return nil, err
		}
		if v.Msg, err = r.String(); err != nil {
			return nil, err
		}
		rep.Violations = append(rep.Violations, v)
	}
	return rep, nil
}

// ChecksSection is the CHKS section: the check session's stage-boundary
// context (the ENG-003 monotonicity baseline) plus every boundary
// report produced so far, so a resumed flow reports and enforces
// exactly what a continuous one would.
type ChecksSection struct {
	State   check.SessionState
	Reports []*check.Report
}

// Tag implements Section.
func (s *ChecksSection) Tag() string { return TagChecks }

// Encode implements Section.
func (s *ChecksSection) Encode(w *Writer) error {
	w.PutBool(s.State.Seen)
	w.PutString(s.State.PrevStage)
	w.PutU64(s.State.PrevTopo)
	w.PutI32(int32(s.State.PrevInsts))
	w.PutI32(int32(s.State.PrevNets))
	w.PutU32(uint32(len(s.Reports)))
	for _, rep := range s.Reports {
		PutCheckReport(w, rep)
	}
	return nil
}

// Decode implements Section.
func (s *ChecksSection) Decode(r *Reader) error {
	var err error
	if s.State.Seen, err = r.Bool(); err != nil {
		return err
	}
	if s.State.PrevStage, err = r.String(); err != nil {
		return err
	}
	if s.State.PrevTopo, err = r.U64(); err != nil {
		return err
	}
	var v int32
	if v, err = r.I32(); err != nil {
		return err
	}
	s.State.PrevInsts = int(v)
	if v, err = r.I32(); err != nil {
		return err
	}
	s.State.PrevNets = int(v)
	nr, err := r.Count(16)
	if err != nil {
		return err
	}
	s.Reports = nil
	for i := 0; i < nr; i++ {
		rep, err := ReadCheckReport(r)
		if err != nil {
			return err
		}
		s.Reports = append(s.Reports, rep)
	}
	return nil
}
