// Package db is the binary design database: a compact, versioned,
// reflection-free serialization substrate for mid-flow design state.
// Netlists, placements, clock trees, routing caches, and STA snapshots
// round-trip through explicit per-type Put*/Read* codecs over
// length-prefixed, CRC-framed sections — no encoding/gob, no reflection,
// no struct tags. Encoding is canonical: encode → decode → encode is
// byte-identical, which is what lets the golden tests pin file digests
// and `designdb verify` prove a file re-encodes to itself.
//
// File layout (DESIGN.md §6.7):
//
//	magic[4] version[u32]            — file header
//	repeat:                          — sections, in writer order
//	  tag[4] len[u32] payload[len] crc32[u32]
//
// All integers are little-endian; floats are IEEE-754 bits via
// math.Float64bits, so values survive bit-exactly. Strings are a u32
// length followed by raw bytes. Unknown section tags are skipped on
// decode (forward compatibility within a format version); an unknown
// format version is refused with ErrVersion.
//
// Two file kinds share the framing: design databases (MagicDesign,
// written by the flow's -save-design hook) and streamed evaluation
// journals (MagicJournal, the binary sibling of the JSONL checkpoint).
// Journals are append-only: each record is one frame, written in a
// single O_APPEND write, and a truncated final frame is reported as
// ErrTruncated so loaders can tolerate a run killed mid-append without
// accepting mid-file corruption.
//
// Every decode failure is typed: errors.Is(err, ErrCorrupt) for damaged
// or adversarial input, errors.Is(err, ErrVersion) for an incompatible
// format version. Decoders never panic on arbitrary bytes — FuzzDBDecode
// holds them to that.
package db

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// MagicDesign opens a design-database file (cmd/ppac -save-design,
	// cmd/hetero3d -save-design, the flow's stage-boundary snapshots).
	MagicDesign = "H3DB"
	// MagicJournal opens a binary evaluation journal (the streamed
	// sibling of the JSONL checkpoint).
	MagicJournal = "H3CK"
	// FormatVersion is the current wire-format version; bumped on any
	// incompatible layout change. Readers refuse other versions with
	// ErrVersion.
	FormatVersion = 1
	// TagLease frames one shard-coordination lease record inside an
	// evaluation journal: the grant/renew/release/expire/quarantine
	// lifecycle internal/shard's supervisor appends around the worker
	// processes' fmax/flow records. Defined here with the file kinds so
	// inspection tooling can name the frame without importing the
	// evaluation layer; internal/eval owns the payload codec.
	TagLease = "LEAS"
)

var (
	// ErrCorrupt reports damaged, truncated, or adversarial input: bad
	// magic, a failed CRC, an out-of-range count, or section contents
	// that fail semantic validation on import.
	ErrCorrupt = errors.New("db: corrupt data")
	// ErrVersion reports a file whose format version this reader does
	// not understand.
	ErrVersion = errors.New("db: unsupported format version")
	// ErrTruncated reports a frame cut short by the end of input — the
	// partial-final-write case an append-only journal loader tolerates.
	// It wraps ErrCorrupt: callers that do not care about the
	// distinction still see corrupt data.
	ErrTruncated = fmt.Errorf("%w: truncated frame", ErrCorrupt)
)

// Corruptf builds an ErrCorrupt-wrapping error with context.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Section is the snapshot/restore surface every persisted flow layer
// implements: the netlist, floorplan, clock tree, STA, routing-cache,
// and check-session sections in this package, plus the flow-owned
// metadata sections in internal/core. Tag returns the section's 4-byte
// identifier; Encode writes the payload; Decode reads one back from a
// payload-bounded Reader.
type Section interface {
	Tag() string
	Encode(w *Writer) error
	Decode(r *Reader) error
}

// tagBytes validates and returns a 4-byte section tag.
func tagBytes(tag string) ([]byte, error) {
	if len(tag) != 4 {
		return nil, fmt.Errorf("db: section tag %q must be exactly 4 bytes", tag)
	}
	return []byte(tag), nil
}

// Header returns the file header for the given magic.
func Header(magic string) []byte {
	h := make([]byte, 0, 8)
	h = append(h, magic...)
	return appendU32(h, FormatVersion)
}

// ParseHeader validates the file header against the expected magic and
// the supported format version, returning the remaining bytes.
func ParseHeader(data []byte, magic string) ([]byte, error) {
	if len(data) < 8 {
		return nil, Corruptf("file shorter than its %d-byte header", 8)
	}
	if string(data[:4]) != magic {
		return nil, Corruptf("bad magic %q (want %q)", data[:4], magic)
	}
	v := leU32(data[4:8])
	if v != FormatVersion {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, FormatVersion)
	}
	return data[8:], nil
}

// AppendFrame appends one framed section — tag, length, payload, CRC —
// to dst and returns it. The frame layout is shared by design-file
// sections and journal records.
func AppendFrame(dst []byte, tag string, payload []byte) ([]byte, error) {
	tb, err := tagBytes(tag)
	if err != nil {
		return nil, err
	}
	dst = append(dst, tb...)
	dst = appendU32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return appendU32(dst, crc32.ChecksumIEEE(payload)), nil
}

// Encode serializes sections into a complete file image: header plus
// one frame per section, in argument order.
func Encode(magic string, secs ...Section) ([]byte, error) {
	out := Header(magic)
	for _, s := range secs {
		w := NewWriter()
		if err := s.Encode(w); err != nil {
			return nil, fmt.Errorf("db: encode section %s: %w", s.Tag(), err)
		}
		var err error
		out, err = AppendFrame(out, s.Tag(), w.Bytes())
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FrameIter walks the frames of a byte stream (after the file header).
// Next returns io.EOF at a clean end, ErrTruncated when the input ends
// mid-frame (the tolerated partial-final-append case), and ErrCorrupt
// on a CRC mismatch of a fully present frame.
type FrameIter struct {
	data []byte
	off  int
}

// NewFrameIter iterates frames over data, which must start at the
// first frame (use ParseHeader to strip the file header).
func NewFrameIter(data []byte) *FrameIter { return &FrameIter{data: data} }

// Offset returns the byte offset of the next unread frame.
func (it *FrameIter) Offset() int { return it.off }

// Next returns the next frame's tag and payload.
func (it *FrameIter) Next() (tag string, payload []byte, err error) {
	rest := it.data[it.off:]
	if len(rest) == 0 {
		return "", nil, io.EOF
	}
	if len(rest) < 8 {
		return "", nil, ErrTruncated
	}
	tag = string(rest[:4])
	n := int(leU32(rest[4:8]))
	if n < 0 || len(rest) < 8+n+4 {
		return tag, nil, ErrTruncated
	}
	payload = rest[8 : 8+n]
	want := leU32(rest[8+n : 8+n+4])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return tag, nil, Corruptf("section %s: CRC mismatch (stored %08x, computed %08x)", tag, want, got)
	}
	it.off += 8 + n + 4
	return tag, payload, nil
}

// SectionInfo describes one frame of a file for inspection tooling.
type SectionInfo struct {
	Tag string
	// Offset and Len locate the payload within the file.
	Offset, Len int
	CRC         uint32
}

// List parses a file's header (either known magic) and enumerates its
// frames without decoding payloads. The magic is returned so callers
// can report the file kind.
func List(data []byte) (magic string, secs []SectionInfo, err error) {
	for _, m := range []string{MagicDesign, MagicJournal} {
		if len(data) >= 4 && string(data[:4]) == m {
			magic = m
			break
		}
	}
	if magic == "" {
		return "", nil, Corruptf("unknown magic (not a design database or evaluation journal)")
	}
	body, err := ParseHeader(data, magic)
	if err != nil {
		return magic, nil, err
	}
	it := NewFrameIter(body)
	for {
		off := it.Offset()
		tag, payload, err := it.Next()
		if err == io.EOF {
			return magic, secs, nil
		}
		if err != nil {
			return magic, secs, err
		}
		secs = append(secs, SectionInfo{
			Tag:    tag,
			Offset: 8 + off + 8, // file header + frame offset + frame header
			Len:    len(payload),
			CRC:    crc32.ChecksumIEEE(payload),
		})
	}
}

// Decode walks a file's frames in order, resolving each tag to a
// Section through lookup and decoding the payload into it. A nil
// Section from lookup skips the frame (unknown tags stay forward
// compatible); any error from lookup or Decode aborts. Frames must be
// complete: a truncated design file is corrupt, not resumable.
func Decode(data []byte, magic string, lookup func(tag string) (Section, error)) error {
	body, err := ParseHeader(data, magic)
	if err != nil {
		return err
	}
	it := NewFrameIter(body)
	for {
		tag, payload, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		sec, err := lookup(tag)
		if err != nil {
			return err
		}
		if sec == nil {
			continue
		}
		r := NewReader(payload)
		if err := sec.Decode(r); err != nil {
			return fmt.Errorf("db: section %s: %w", tag, err)
		}
		if r.Remaining() != 0 {
			return Corruptf("section %s: %d trailing bytes after decode", tag, r.Remaining())
		}
	}
}
