package db

import "math"

// Reader is the bounds-checked decode counterpart of Writer: every read
// validates the remaining length and returns ErrCorrupt on truncation,
// and element counts are capped against the bytes actually present —
// an adversarial header claiming 2³¹ elements cannot force a huge
// allocation or a panic.
type Reader struct {
	data []byte
	off  int
}

// NewReader reads from data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) take(n int) ([]byte, error) {
	if n < 0 || r.Remaining() < n {
		return nil, Corruptf("need %d bytes, %d remain", n, r.Remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// U8 reads one byte.
func (r *Reader) U8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Bool reads one byte as a bool; any value other than 0 or 1 is
// corrupt (a canonical encoder only emits those).
func (r *Reader) Bool() (bool, error) {
	v, err := r.U8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, Corruptf("bool byte %d", v)
	}
	return v == 1, nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return leU32(b), nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return leU64(b), nil
}

// I32 reads a two's-complement int32.
func (r *Reader) I32() (int32, error) {
	v, err := r.U32()
	return int32(v), err
}

// I64 reads a two's-complement int64.
func (r *Reader) I64() (int64, error) {
	v, err := r.U64()
	return int64(v), err
}

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// Count reads a u32 element count and validates it against the bytes
// remaining: each element needs at least elemSize bytes, so a count
// exceeding Remaining()/elemSize is corrupt. elemSize must be >= 1
// (variable-size elements pass their minimum encoding size).
func (r *Reader) Count(elemSize int) (int, error) {
	if elemSize < 1 {
		elemSize = 1
	}
	v, err := r.U32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n > r.Remaining()/elemSize {
		return 0, Corruptf("count %d exceeds remaining input (%d bytes, >= %d each)", n, r.Remaining(), elemSize)
	}
	return n, nil
}

// Bytes reads a counted byte slice (a copy — the reader's backing array
// is not aliased).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Count(1)
	if err != nil {
		return nil, err
	}
	b, err := r.take(n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// String reads a counted string.
func (r *Reader) String() (string, error) {
	n, err := r.Count(1)
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// F64s reads a counted slice of float64 (nil when the count is 0, so
// empty slices round-trip canonically).
func (r *Reader) F64s() ([]float64, error) {
	n, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.F64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// U64s reads a counted slice of uint64 (nil when the count is 0).
func (r *Reader) U64s() ([]uint64, error) {
	n, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.U64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// I32s reads a counted slice of int32 (nil when the count is 0).
func (r *Reader) I32s() ([]int32, error) {
	n, err := r.Count(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int32, n)
	for i := range out {
		if out[i], err = r.I32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
