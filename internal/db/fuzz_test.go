package db

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sta"
)

// fuzzLookup resolves every section tag the database format defines to
// a fresh decoder, so arbitrary input exercises the full decode
// surface (the CTS section is skipped: it needs a live design to
// resolve buffer IDs against, which List-level fuzzing cannot supply).
func fuzzLookup(tag string) (Section, error) {
	switch tag {
	case TagNetlist:
		return &NetlistSection{Snap: &netlist.Snapshot{}}, nil
	case TagFloorplan:
		return &FloorplanSection{FP: &place.Floorplan{}}, nil
	case TagSTA:
		return &STASection{Snap: &sta.Snapshot{}}, nil
	case TagRoute:
		return &RouteSection{}, nil
	case TagChecks:
		return &ChecksSection{}, nil
	case "PRIM":
		return &primSection{}, nil
	default:
		return nil, nil
	}
}

// FuzzDBDecode feeds arbitrary bytes through the frame walker and every
// section decoder. The contract under test: the decoder never panics,
// and every failure is typed ErrCorrupt (or its ErrTruncated subclass)
// or ErrVersion — never an untyped error that a caller could not
// classify.
func FuzzDBDecode(f *testing.F) {
	// Seed with well-formed files of each section so mutations start
	// from deep in the format rather than failing at the magic.
	fp := &place.Floorplan{TargetUtil: 0.7, Tiers: 2}
	snap := &sta.Snapshot{
		Period: 2, ArrOut: []float64{1}, ReqOut: []float64{2}, Delay: []float64{0.5},
		SlewOut: []float64{0.1}, InWire: []float64{0}, Pred: []int32{-1},
		Ends: []sta.EndpointSnap{{Inst: 0, Port: -1, From: -1, Slack: 1, Hold: 0.5}},
	}
	routes := []route.CacheEntry{{Net: 3, Rev: 9, RC: &route.NetRC{WireLen: 10, WireCap: 1e-15, MIVs: 2,
		SinkR: []float64{100}, SinkCapShare: []float64{1e-15}}}}
	chk := &ChecksSection{
		State: check.SessionState{Seen: true, PrevStage: "cts", PrevTopo: 7, PrevInsts: 3, PrevNets: 2},
	}
	secs := []Section{
		&primSection{u8: 1, str: "seed", f64s: []float64{1, 2}, i32s: []int32{-1}},
		&FloorplanSection{FP: fp},
		&STASection{Snap: snap},
		&RouteSection{Entries: routes},
		chk,
	}
	for _, sec := range secs {
		data, err := Encode(MagicDesign, sec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	all, err := Encode(MagicDesign, secs...)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(all)
	f.Add([]byte(MagicDesign))
	f.Add([]byte(MagicJournal))
	f.Add(Header(MagicJournal))

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := List(data); err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("List: untyped error %v", err)
		}
		for _, magic := range []string{MagicDesign, MagicJournal} {
			err := Decode(data, magic, fuzzLookup)
			if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode(%s): untyped error %v", magic, err)
			}
		}
	})
}
