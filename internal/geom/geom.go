// Package geom provides the 2-D geometric primitives used throughout the
// physical-design substrates: points, rectangles, and spatial bin grids.
//
// All coordinates are in micrometers (µm) unless stated otherwise. The
// package is deliberately free of any EDA semantics so that placement,
// routing, and clock-tree code can share one vocabulary.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the die plane, in µm.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// ManhattanDist returns the L1 distance between p and q, the natural
// metric for rectilinear on-chip wiring.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// EuclideanDist returns the L2 distance between p and q.
func (p Point) EuclideanDist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with inclusive lower-left corner
// (Lx, Ly) and exclusive upper-right corner (Ux, Uy).
type Rect struct {
	Lx, Ly, Ux, Uy float64
}

// R is shorthand for Rect{lx, ly, ux, uy}.
func R(lx, ly, ux, uy float64) Rect { return Rect{Lx: lx, Ly: ly, Ux: ux, Uy: uy} }

// W returns the rectangle width (may be negative for an invalid rect).
func (r Rect) W() float64 { return r.Ux - r.Lx }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Uy - r.Ly }

// Area returns width × height; zero for degenerate rectangles.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r has non-positive extent in either dimension.
func (r Rect) Empty() bool { return r.Ux <= r.Lx || r.Uy <= r.Ly }

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Point{(r.Lx + r.Ux) / 2, (r.Ly + r.Uy) / 2} }

// Contains reports whether p lies inside r (lower-inclusive, upper-exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lx && p.X < r.Ux && p.Y >= r.Ly && p.Y < r.Uy
}

// ContainsClosed reports whether p lies inside r with all edges inclusive.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Lx && p.X <= r.Ux && p.Y >= r.Ly && p.Y <= r.Uy
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Lx: math.Max(r.Lx, s.Lx),
		Ly: math.Max(r.Ly, s.Ly),
		Ux: math.Min(r.Ux, s.Ux),
		Uy: math.Min(r.Uy, s.Uy),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and s. A degenerate rect is treated
// as absent.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Lx: math.Min(r.Lx, s.Lx),
		Ly: math.Min(r.Ly, s.Ly),
		Ux: math.Max(r.Ux, s.Ux),
		Uy: math.Max(r.Uy, s.Uy),
	}
}

// Expand grows r by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{Lx: r.Lx - d, Ly: r.Ly - d, Ux: r.Ux + d, Uy: r.Uy + d}
}

// Clamp returns p moved to the nearest location inside (or on the border
// of) r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Lx), r.Ux),
		Y: math.Min(math.Max(p.Y, r.Ly), r.Uy),
	}
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Intersect(s).Empty()
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f)x[%.3f,%.3f)", r.Lx, r.Ux, r.Ly, r.Uy)
}

// BBox is an accumulating bounding box. The zero value is "empty"; Extend
// points into it and read Rect() at the end. It is the standard way to
// compute net bounding boxes for HPWL.
type BBox struct {
	r     Rect
	valid bool
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	if !b.valid {
		b.r = Rect{Lx: p.X, Ly: p.Y, Ux: p.X, Uy: p.Y}
		b.valid = true
		return
	}
	b.r.Lx = math.Min(b.r.Lx, p.X)
	b.r.Ly = math.Min(b.r.Ly, p.Y)
	b.r.Ux = math.Max(b.r.Ux, p.X)
	b.r.Uy = math.Max(b.r.Uy, p.Y)
}

// Valid reports whether any point has been added.
func (b *BBox) Valid() bool { return b.valid }

// Rect returns the accumulated box; the zero Rect if no points were added.
func (b *BBox) Rect() Rect {
	if !b.valid {
		return Rect{}
	}
	return b.r
}

// HalfPerimeter returns the half-perimeter wirelength of the box, the
// classic HPWL net-length lower bound.
func (b *BBox) HalfPerimeter() float64 {
	if !b.valid {
		return 0
	}
	return b.r.W() + b.r.H()
}
