package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, 5)
	if got := p.Add(q); got != Pt(4, 7) {
		t.Errorf("Add = %v, want (4,7)", got)
	}
	if got := q.Sub(p); got != Pt(2, 3) {
		t.Errorf("Sub = %v, want (2,3)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := p.ManhattanDist(q); !almostEq(got, 5) {
		t.Errorf("ManhattanDist = %v, want 5", got)
	}
	if got := p.EuclideanDist(q); !almostEq(got, math.Sqrt(13)) {
		t.Errorf("EuclideanDist = %v, want sqrt(13)", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 10, 4)
	if !almostEq(r.W(), 10) || !almostEq(r.H(), 4) {
		t.Fatalf("W/H = %v/%v", r.W(), r.H())
	}
	if !almostEq(r.Area(), 40) {
		t.Errorf("Area = %v, want 40", r.Area())
	}
	if r.Empty() {
		t.Error("r should not be empty")
	}
	if c := r.Center(); c != Pt(5, 2) {
		t.Errorf("Center = %v, want (5,2)", c)
	}
	if !r.Contains(Pt(0, 0)) {
		t.Error("lower-left corner should be contained")
	}
	if r.Contains(Pt(10, 4)) {
		t.Error("upper-right corner should be excluded")
	}
	if !r.ContainsClosed(Pt(10, 4)) {
		t.Error("ContainsClosed should include upper-right corner")
	}
}

func TestRectEmptyAndDegenerate(t *testing.T) {
	deg := R(5, 5, 5, 9)
	if !deg.Empty() {
		t.Error("zero-width rect should be empty")
	}
	if deg.Area() != 0 {
		t.Errorf("degenerate Area = %v, want 0", deg.Area())
	}
	inv := R(3, 3, 1, 1)
	if !inv.Empty() {
		t.Error("inverted rect should be empty")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a, b := R(0, 0, 10, 10), R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if u := a.Union(b); u != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", u)
	}
	disjoint := a.Intersect(R(20, 20, 30, 30))
	if !disjoint.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", disjoint)
	}
	// Union with an empty rect returns the other operand.
	if u := a.Union(Rect{}); u != a {
		t.Errorf("Union with empty = %v, want %v", u, a)
	}
	if u := (Rect{}).Union(b); u != b {
		t.Errorf("empty Union = %v, want %v", u, b)
	}
}

func TestRectExpandClampOverlaps(t *testing.T) {
	r := R(2, 2, 4, 4)
	if e := r.Expand(1); e != R(1, 1, 5, 5) {
		t.Errorf("Expand = %v", e)
	}
	if p := r.Clamp(Pt(-1, 10)); p != Pt(2, 4) {
		t.Errorf("Clamp = %v, want (2,4)", p)
	}
	if p := r.Clamp(Pt(3, 3)); p != Pt(3, 3) {
		t.Errorf("Clamp interior point moved: %v", p)
	}
	if !r.Overlaps(R(3, 3, 9, 9)) {
		t.Error("expected overlap")
	}
	if r.Overlaps(R(4, 4, 9, 9)) {
		t.Error("edge-touching rects should not overlap")
	}
}

func TestBBox(t *testing.T) {
	var b BBox
	if b.Valid() {
		t.Fatal("zero BBox should be invalid")
	}
	if b.HalfPerimeter() != 0 {
		t.Fatal("empty BBox HPWL should be 0")
	}
	b.Extend(Pt(1, 1))
	if !b.Valid() {
		t.Fatal("BBox should be valid after Extend")
	}
	if hp := b.HalfPerimeter(); hp != 0 {
		t.Errorf("single-point HPWL = %v, want 0", hp)
	}
	b.Extend(Pt(4, 5))
	b.Extend(Pt(2, 0))
	want := R(1, 0, 4, 5)
	if b.Rect() != want {
		t.Errorf("Rect = %v, want %v", b.Rect(), want)
	}
	if hp := b.HalfPerimeter(); !almostEq(hp, 3+5) {
		t.Errorf("HPWL = %v, want 8", hp)
	}
}

// Property: intersection area never exceeds either operand's area, and
// union always contains both.
func TestRectIntersectUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := R(float64(ax), float64(ay), float64(ax)+float64(aw%32)+1, float64(ay)+float64(ah%32)+1)
		b := R(float64(bx), float64(by), float64(bx)+float64(bw%32)+1, float64(by)+float64(bh%32)+1)
		in := a.Intersect(b)
		if in.Area() > a.Area()+1e-9 || in.Area() > b.Area()+1e-9 {
			return false
		}
		u := a.Union(b)
		return u.Area() >= a.Area()-1e-9 && u.Area() >= b.Area()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(R(0, 0, 10, 10), 0, 5); err == nil {
		t.Error("expected error for zero nx")
	}
	if _, err := NewGrid(Rect{}, 2, 2); err == nil {
		t.Error("expected error for empty region")
	}
}

func TestGridLocate(t *testing.T) {
	g, err := NewGrid(R(0, 0, 10, 10), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, iy := g.Locate(Pt(0.5, 9.5))
	if ix != 0 || iy != 4 {
		t.Errorf("Locate = (%d,%d), want (0,4)", ix, iy)
	}
	// Out-of-region points clamp to border bins.
	ix, iy = g.Locate(Pt(-5, 100))
	if ix != 0 || iy != 4 {
		t.Errorf("clamped Locate = (%d,%d), want (0,4)", ix, iy)
	}
	if got := g.Bins(); got != 25 {
		t.Errorf("Bins = %d, want 25", got)
	}
	i := g.Index(3, 2)
	cx, cy := g.Coord(i)
	if cx != 3 || cy != 2 {
		t.Errorf("Coord(Index(3,2)) = (%d,%d)", cx, cy)
	}
}

func TestGridBinRect(t *testing.T) {
	g, _ := NewGrid(R(0, 0, 10, 20), 2, 4)
	r := g.BinRect(1, 3)
	if r != R(5, 15, 10, 20) {
		t.Errorf("BinRect = %v", r)
	}
	if c := g.BinCenter(0, 0); c != Pt(2.5, 2.5) {
		t.Errorf("BinCenter = %v", c)
	}
	dx, dy := g.BinSize()
	if !almostEq(dx, 5) || !almostEq(dy, 5) {
		t.Errorf("BinSize = %v,%v", dx, dy)
	}
}

func TestHistogramAddPoint(t *testing.T) {
	g, _ := NewGrid(R(0, 0, 10, 10), 2, 2)
	h := NewHistogram(g)
	h.AddPoint(Pt(1, 1), 2)
	h.AddPoint(Pt(9, 9), 3)
	if !almostEq(h.Sum(), 5) {
		t.Errorf("Sum = %v, want 5", h.Sum())
	}
	if !almostEq(h.Max(), 3) {
		t.Errorf("Max = %v, want 3", h.Max())
	}
	if !almostEq(h.Mean(), 5.0/4) {
		t.Errorf("Mean = %v", h.Mean())
	}
}

// AddRect must conserve the total weight regardless of how the rectangle
// straddles bins.
func TestHistogramAddRectConservation(t *testing.T) {
	g, _ := NewGrid(R(0, 0, 100, 100), 7, 9)
	h := NewHistogram(g)
	h.AddRect(R(3.3, 4.4, 55.5, 66.6), 10)
	if !almostEq(h.Sum(), 10) {
		t.Errorf("Sum = %v, want 10", h.Sum())
	}
	// A rect fully inside one bin lands entirely there.
	h2 := NewHistogram(g)
	h2.AddRect(R(1, 1, 2, 2), 4)
	ix, iy := g.Locate(Pt(1.5, 1.5))
	if got := h2.Vals[g.Index(ix, iy)]; !almostEq(got, 4) {
		t.Errorf("in-bin weight = %v, want 4", got)
	}
}

func TestHistogramAddRectProperties(t *testing.T) {
	g, _ := NewGrid(R(0, 0, 64, 64), 8, 8)
	f := func(x, y, w, hgt uint8) bool {
		h := NewHistogram(g)
		r := R(float64(x%48), float64(y%48), float64(x%48)+float64(w%15)+0.5, float64(y%48)+float64(hgt%15)+0.5)
		h.AddRect(r, 1)
		return math.Abs(h.Sum()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramZeroWeight(t *testing.T) {
	g, _ := NewGrid(R(0, 0, 10, 10), 2, 2)
	h := NewHistogram(g)
	h.AddRect(R(1, 1, 3, 3), 0)
	h.AddRect(Rect{}, 5)
	if h.Sum() != 0 {
		t.Errorf("Sum = %v, want 0", h.Sum())
	}
}
