package geom

import "fmt"

// Grid overlays a rectangular region with Nx × Ny uniform bins and maps
// continuous coordinates to bin indices. Placement binning, congestion
// estimation, and density maps all ride on this type.
type Grid struct {
	Region Rect
	Nx, Ny int
	dx, dy float64
}

// NewGrid builds a grid over region with nx × ny bins. nx and ny must be
// positive and the region non-empty.
func NewGrid(region Rect, nx, ny int) (*Grid, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("geom: grid dimensions must be positive, got %dx%d", nx, ny)
	}
	if region.Empty() {
		return nil, fmt.Errorf("geom: grid region %v is empty", region)
	}
	return &Grid{
		Region: region,
		Nx:     nx,
		Ny:     ny,
		dx:     region.W() / float64(nx),
		dy:     region.H() / float64(ny),
	}, nil
}

// BinSize returns the (width, height) of one bin.
func (g *Grid) BinSize() (float64, float64) { return g.dx, g.dy }

// Bins returns the total bin count Nx*Ny.
func (g *Grid) Bins() int { return g.Nx * g.Ny }

// Index maps a bin coordinate (ix, iy) to a flat index.
func (g *Grid) Index(ix, iy int) int { return iy*g.Nx + ix }

// Coord maps a flat index back to (ix, iy).
func (g *Grid) Coord(i int) (ix, iy int) { return i % g.Nx, i / g.Nx }

// Locate returns the bin containing p, clamping out-of-region points onto
// the border bins so that slightly off-die cells still land somewhere sane.
func (g *Grid) Locate(p Point) (ix, iy int) {
	ix = int((p.X - g.Region.Lx) / g.dx)
	iy = int((p.Y - g.Region.Ly) / g.dy)
	if ix < 0 {
		ix = 0
	}
	if ix >= g.Nx {
		ix = g.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.Ny {
		iy = g.Ny - 1
	}
	return ix, iy
}

// BinRect returns the rectangle of bin (ix, iy).
func (g *Grid) BinRect(ix, iy int) Rect {
	lx := g.Region.Lx + float64(ix)*g.dx
	ly := g.Region.Ly + float64(iy)*g.dy
	return Rect{Lx: lx, Ly: ly, Ux: lx + g.dx, Uy: ly + g.dy}
}

// BinCenter returns the center of bin (ix, iy).
func (g *Grid) BinCenter(ix, iy int) Point { return g.BinRect(ix, iy).Center() }

// Histogram accumulates a float64 per grid bin. It is the shared
// implementation behind density and congestion maps.
type Histogram struct {
	Grid *Grid
	Vals []float64
}

// NewHistogram builds a zeroed histogram over g.
func NewHistogram(g *Grid) *Histogram {
	return &Histogram{Grid: g, Vals: make([]float64, g.Bins())}
}

// AddPoint adds w to the bin containing p.
func (h *Histogram) AddPoint(p Point, w float64) {
	ix, iy := h.Grid.Locate(p)
	h.Vals[h.Grid.Index(ix, iy)] += w
}

// AddRect distributes w over every bin overlapping r, proportional to the
// overlap area. Used to smear cell area into density bins.
func (h *Histogram) AddRect(r Rect, w float64) {
	if r.Empty() || w == 0 {
		return
	}
	total := r.Area()
	ix0, iy0 := h.Grid.Locate(Point{r.Lx, r.Ly})
	// Upper corner is exclusive; nudge inward so a rect ending exactly on
	// a bin boundary does not spill into the next bin.
	ix1, iy1 := h.Grid.Locate(Point{r.Ux - 1e-9, r.Uy - 1e-9})
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			ov := h.Grid.BinRect(ix, iy).Intersect(r).Area()
			if ov > 0 {
				h.Vals[h.Grid.Index(ix, iy)] += w * ov / total
			}
		}
	}
}

// Max returns the maximum bin value (0 for an all-zero histogram).
func (h *Histogram) Max() float64 {
	m := 0.0
	for _, v := range h.Vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the total across all bins.
func (h *Histogram) Sum() float64 {
	s := 0.0
	for _, v := range h.Vals {
		s += v
	}
	return s
}

// Mean returns the average bin value.
func (h *Histogram) Mean() float64 { return h.Sum() / float64(len(h.Vals)) }
