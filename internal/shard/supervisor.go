package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/eval"
)

// Chaos configures deliberate failure injection into the farm — the
// harness the crash-safety tests and the CI chaos job drive. Both
// channels apply only to a shard's FIRST attempt: a deterministic fault
// re-armed on every restart would re-fire forever and wedge the farm in
// a kill loop, so restarts always run clean.
type Chaos struct {
	// Kill lists shard indices to SIGKILL as soon as their journal
	// holds at least one completed work record — a guaranteed mid-run
	// kill with partial progress to resume from.
	Kill []int
	// FaultSpec is an internal/fault spec forwarded to workers (e.g.
	// "aes/*/cts=stall" to wedge the shard carrying aes until the
	// watchdog kills it).
	FaultSpec string
}

// Options configures a supervisor run.
type Options struct {
	// Suite defines the full evaluation matrix and the result-defining
	// options. Checkpoint, Units, Fault, and Events are supervisor-owned
	// and ignored here: journals live under Dir, sharding sets Units,
	// and Chaos.FaultSpec is the only supported injection channel (a
	// func cannot cross a process boundary).
	Suite eval.SuiteOptions
	// Dir holds every journal of the farm: the coordination journal
	// (farm.ckpt), one shard journal per shard (shard-N.ckpt), the
	// quarantined copies, and the merged result (merged.ckpt).
	Dir string
	// Shards is the number of shards to split the matrix into
	// (default 4 — one per paper design at the default matrix, which
	// minimizes duplicate f_max searches). Capped at the unit count.
	Shards int
	// Procs bounds concurrently live worker processes (default: all
	// shards at once).
	Procs int
	// Binary selects the binary journal framing (.db) over JSONL for
	// every journal the farm writes.
	Binary bool
	// StallTimeout is how long a worker's journal may stop growing
	// before the watchdog presumes it wedged and kills it (default 30s).
	StallTimeout time.Duration
	// PollInterval is the watchdog's liveness-check cadence
	// (default 100ms).
	PollInterval time.Duration
	// MaxRestarts caps restarts per shard (default 2): a shard failing
	// its initial attempt plus MaxRestarts restarts fails the farm with
	// the worker's attributed exit cause and stderr tail.
	MaxRestarts int
	// Chaos injects deliberate failures (first attempts only).
	Chaos Chaos
	// Command builds the worker process for a serialized WorkerSpec.
	// The supervisor sets SpecEnv in the child's environment and owns
	// stderr capture; Command chooses the binary and arguments —
	// cmd/evalfarm re-invokes itself, tests re-invoke the test binary.
	Command func(spec string) (*exec.Cmd, error)
	// Log receives human-oriented progress lines (nil = silent).
	Log func(format string, args ...any)
}

// exitEvent is one reaped worker process.
type exitEvent struct {
	idx int
	err error
}

// running is one live worker process under supervision.
type running struct {
	sr           *shardRun
	cmd          *exec.Cmd
	stderr       *tailBuffer
	lastSize     int64
	lastProgress time.Time
	killReason   string // set before a deliberate kill (watchdog, chaos)
	chaosKill    bool   // armed to SIGKILL on first journal progress
}

// shardRun is the supervisor's per-shard ledger.
type shardRun struct {
	idx         int
	units       []eval.Unit
	attempt     int // grants so far (1 = first attempt)
	quarantines int
	notBefore   time.Time // backoff gate for the next grant
	owner       string    // current / last owner token
	outcome     string
	stderrTail  string
	done        bool
}

// Run executes the farm: shard the matrix, lease shards to worker
// processes, watchdog them to completion, merge the shard journals, and
// rehydrate the merged suite. The returned Farm carries the suite
// (every result checkpoint-restored from the merged journal — Tables
// I–VIII render byte-identical to a single-process run), the merged
// journal path, and the full coordination history.
//
// Run is itself crash-safe: killed and re-invoked with the same Options
// it revalidates every shard journal, marks complete shards done
// without spawning anything, and resumes the rest — the supervisor's
// own state lives in the journals, not in memory.
func Run(ctx context.Context, o Options) (*Farm, error) {
	if o.Command == nil {
		return nil, fmt.Errorf("shard: Options.Command is required")
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("shard: Options.Dir is required")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Supervisor-owned fields; see Options.Suite.
	o.Suite.Checkpoint = ""
	o.Suite.Units = nil
	o.Suite.Fault = nil
	o.Suite.Events = nil

	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	ext := ".ckpt"
	if o.Binary {
		ext = ".db"
	}
	shardPath := func(idx int) string {
		return filepath.Join(o.Dir, fmt.Sprintf("shard-%d%s", idx, ext))
	}

	units := o.Suite.MatrixUnits()
	nshards := o.Shards
	if nshards <= 0 {
		nshards = 4
	}
	parts := Split(units, nshards)
	procs := o.Procs
	if procs <= 0 {
		procs = len(parts)
	}
	stallTimeout := o.StallTimeout
	if stallTimeout <= 0 {
		stallTimeout = 30 * time.Second
	}
	poll := o.PollInterval
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	maxRestarts := o.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 2
	}

	coord, err := eval.OpenCheckpoint(filepath.Join(o.Dir, "farm"+ext), o.Suite)
	if err != nil {
		return nil, fmt.Errorf("shard: coordination journal: %w", err)
	}
	defer coord.Close()

	farm := &Farm{}
	shards := make([]*shardRun, len(parts))
	var pending []int
	for i, p := range parts {
		shards[i] = &shardRun{idx: i, units: p}
		pending = append(pending, i)
	}
	live := make(map[int]*running, procs)
	exits := make(chan exitEvent, len(parts))
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	doneCount := 0

	// killAll tears down every live worker and reaps it — the terminal
	// path for cancellation and farm-fatal errors. Expiries are still
	// journaled so a later resume sees a consistent lease history.
	killAll := func(reason string) {
		for _, r := range live {
			r.killReason = reason
			if r.cmd.Process != nil {
				_ = r.cmd.Process.Kill()
			}
		}
		for len(live) > 0 {
			ev := <-exits
			r := live[ev.idx]
			delete(live, ev.idx)
			_ = coord.PutLease(eval.Lease{
				Shard: ev.idx, Action: eval.LeaseExpire,
				Owner: r.sr.owner, Attempt: r.sr.attempt, Reason: reason,
			})
		}
	}

	// launch grants shard idx to a fresh owner: it validates (and if
	// need be quarantines) the shard journal, short-circuits shards the
	// journal already completes, and otherwise spawns the worker.
	launch := func(idx int) error {
		sr := shards[idx]
		path := shardPath(idx)
		jopt := o.Suite
		jopt.Units = sr.units

		_, missing, missingFmax, jerr := eval.JournalStatus(path, jopt)
		if jerr != nil {
			// Refuse-and-reassign: a journal that fails CRC or header
			// validation is set aside untouched for the post-mortem and
			// the shard restarts from nothing.
			sr.quarantines++
			qpath := fmt.Sprintf("%s.quarantined-%d", path, sr.quarantines)
			if rerr := os.Rename(path, qpath); rerr != nil {
				return fmt.Errorf("shard %d: quarantine rename: %w", idx, rerr)
			}
			if err := coord.PutLease(eval.Lease{
				Shard: idx, Action: eval.LeaseQuarantine,
				Owner: sr.owner, Attempt: sr.attempt, Reason: jerr.Error(),
			}); err != nil {
				return err
			}
			farm.Quarantines++
			logf("shard %d: journal quarantined to %s (%v)", idx, filepath.Base(qpath), jerr)
			missing, missingFmax = sr.units, nil // fresh journal: all work open
		}

		sr.attempt++
		sr.owner = fmt.Sprintf("s%d-a%d", idx, sr.attempt)
		if sr.attempt > 1 {
			farm.Restarts++
		}
		if err := coord.PutLease(eval.Lease{
			Shard: idx, Action: eval.LeaseGrant,
			Owner: sr.owner, Attempt: sr.attempt, Units: sr.units,
		}); err != nil {
			return err
		}

		if len(missing) == 0 && len(missingFmax) == 0 {
			// Everything the shard owes is already journaled (a prior
			// farm run, or a worker that died after its last record).
			if err := coord.PutLease(eval.Lease{
				Shard: idx, Action: eval.LeaseRelease,
				Owner: sr.owner, Attempt: sr.attempt, Reason: "complete in journal",
			}); err != nil {
				return err
			}
			sr.done = true
			sr.outcome = fmt.Sprintf("complete (journal, attempt %d)", sr.attempt)
			doneCount++
			logf("shard %d: already complete in journal", idx)
			return nil
		}

		spec := WorkerSpec{
			Journal:        path,
			Shard:          idx,
			Owner:          sr.owner,
			Attempt:        sr.attempt,
			Scale:          o.Suite.Scale,
			Seed:           o.Suite.Seed,
			FmaxIterations: o.Suite.FmaxIterations,
			Check:          string(o.Suite.Check),
			Workers:        o.Suite.Workers,
			FlowWorkers:    o.Suite.FlowWorkers,
			Units:          sr.units,
		}
		for _, d := range o.Suite.Designs {
			spec.Designs = append(spec.Designs, string(d))
		}
		for _, c := range o.Suite.Configs {
			spec.Configs = append(spec.Configs, string(c))
		}
		if sr.attempt == 1 {
			spec.Fault = o.Chaos.FaultSpec
		}
		raw, err := spec.Encode()
		if err != nil {
			return err
		}
		cmd, err := o.Command(raw)
		if err != nil {
			return fmt.Errorf("shard %d: build worker command: %w", idx, err)
		}
		tail := newTailBuffer(4096)
		cmd.Stderr = tail
		env := cmd.Env
		if env == nil {
			env = os.Environ()
		}
		cmd.Env = append(env, SpecEnv+"="+raw)
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("shard %d: start worker: %w", idx, err)
		}
		r := &running{
			sr:           sr,
			cmd:          cmd,
			stderr:       tail,
			lastProgress: time.Now(),
			chaosKill:    sr.attempt == 1 && containsInt(o.Chaos.Kill, idx),
		}
		if fi, err := os.Stat(path); err == nil {
			r.lastSize = fi.Size()
		}
		live[idx] = r
		go func() { exits <- exitEvent{idx: idx, err: cmd.Wait()} }()
		logf("shard %d: granted to %s (attempt %d, pid %d, %d unit(s))",
			idx, sr.owner, sr.attempt, cmd.Process.Pid, len(sr.units))
		return nil
	}

	// handleExit reaps one worker and decides release / expire+requeue /
	// farm failure. The old process is already dead and reaped here, so
	// appending the expiry that frees the shard cannot race a writer.
	handleExit := func(ev exitEvent) error {
		r := live[ev.idx]
		delete(live, ev.idx)
		sr := r.sr
		sr.stderrTail = r.stderr.String()

		jopt := o.Suite
		jopt.Units = sr.units
		_, missing, missingFmax, jerr := eval.JournalStatus(shardPath(ev.idx), jopt)
		complete := jerr == nil && len(missing) == 0 && len(missingFmax) == 0
		if complete && ev.err == nil && r.killReason == "" {
			if err := coord.PutLease(eval.Lease{
				Shard: ev.idx, Action: eval.LeaseRelease,
				Owner: sr.owner, Attempt: sr.attempt,
			}); err != nil {
				return err
			}
			sr.done = true
			sr.outcome = fmt.Sprintf("complete (attempt %d)", sr.attempt)
			doneCount++
			logf("shard %d: complete (attempt %d)", ev.idx, sr.attempt)
			return nil
		}

		reason := exitReason(r, ev.err)
		if err := coord.PutLease(eval.Lease{
			Shard: ev.idx, Action: eval.LeaseExpire,
			Owner: sr.owner, Attempt: sr.attempt, Reason: reason,
		}); err != nil {
			return err
		}
		farm.Expiries++
		if sr.attempt > maxRestarts {
			return fmt.Errorf("shard %d: failed after %d attempt(s): %s\n--- worker stderr tail ---\n%s",
				ev.idx, sr.attempt, reason, sr.stderrTail)
		}
		sr.notBefore = time.Now().Add(restartBackoff(sr.attempt))
		pending = append(pending, ev.idx)
		logf("shard %d: lease expired (%s); requeued for attempt %d", ev.idx, reason, sr.attempt+1)
		return nil
	}

	// watchdog runs once per poll: journal growth renews leases (and
	// triggers armed chaos kills); a journal silent past the stall
	// timeout gets its owner killed.
	watchdog := func() {
		now := time.Now()
		for idx, r := range live {
			fi, err := os.Stat(shardPath(idx))
			if err != nil {
				continue // worker has not created its journal yet
			}
			if fi.Size() > r.lastSize {
				r.lastSize = fi.Size()
				r.lastProgress = now
				_ = coord.PutLease(eval.Lease{
					Shard: idx, Action: eval.LeaseRenew,
					Owner: r.sr.owner, Attempt: r.sr.attempt,
				})
				if r.chaosKill && journalHasWork(shardPath(idx), o.Suite, r.sr.units) {
					r.chaosKill = false
					r.killReason = "chaos: killed mid-run"
					logf("shard %d: chaos SIGKILL (journal has work records)", idx)
					if r.cmd.Process != nil {
						_ = r.cmd.Process.Kill()
					}
				}
				continue
			}
			if now.Sub(r.lastProgress) > stallTimeout && r.killReason == "" {
				r.killReason = "stalled"
				logf("shard %d: no journal progress for %v; killing %s", idx, stallTimeout, r.sr.owner)
				if r.cmd.Process != nil {
					_ = r.cmd.Process.Kill()
				}
			}
		}
	}

	for doneCount < len(parts) {
		// Grant as many due shards as the process budget allows.
		now := time.Now()
		for len(live) < procs {
			picked := -1
			for i, idx := range pending {
				if !now.Before(shards[idx].notBefore) {
					picked = i
					break
				}
			}
			if picked < 0 {
				break
			}
			idx := pending[picked]
			pending = append(pending[:picked], pending[picked+1:]...)
			if err := launch(idx); err != nil {
				killAll("supervisor error: " + err.Error())
				return nil, fmt.Errorf("shard: %w", err)
			}
		}
		if doneCount == len(parts) {
			break
		}
		select {
		case <-ctx.Done():
			killAll("supervisor cancelled")
			return nil, ctx.Err()
		case ev := <-exits:
			if err := handleExit(ev); err != nil {
				killAll("farm failed: shard " + fmt.Sprint(ev.idx))
				return nil, fmt.Errorf("shard: %w", err)
			}
		case <-ticker.C:
			watchdog()
		}
	}

	// Merge the shard journals into the canonical result journal and
	// rehydrate the suite from it — every result restored, zero re-runs.
	merged := filepath.Join(o.Dir, "merged"+ext)
	paths := make([]string, len(parts))
	for i := range parts {
		paths[i] = shardPath(i)
	}
	if err := eval.MergeCheckpoints(merged, o.Suite, paths...); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	ropt := o.Suite
	ropt.Checkpoint = merged
	suite, err := eval.RunSuite(ctx, ropt)
	if err != nil {
		return nil, fmt.Errorf("shard: rehydrate merged journal: %w", err)
	}
	farm.Suite = suite
	farm.Merged = merged
	farm.Leases = coord.Leases()
	for _, sr := range shards {
		farm.Shards = append(farm.Shards, ShardState{
			Index:       sr.idx,
			Units:       sr.units,
			Attempts:    sr.attempt,
			Owner:       sr.owner,
			Quarantines: sr.quarantines,
			Outcome:     sr.outcome,
			StderrTail:  sr.stderrTail,
		})
	}
	logf("farm complete: %d shard(s), %d restart(s), %d expiry(ies), %d quarantine(s)",
		len(parts), farm.Restarts, farm.Expiries, farm.Quarantines)
	return farm, nil
}

// journalHasWork reports whether the shard journal holds at least one
// completed work record (an f_max search or a flow) — the chaos kill's
// "mid-run with partial progress" trigger. Concurrent reads are safe:
// both journal formats tolerate a truncated final append.
func journalHasWork(path string, opt eval.SuiteOptions, units []eval.Unit) bool {
	opt.Units = units
	done, _, missingFmax, err := eval.JournalStatus(path, opt)
	if err != nil {
		return false
	}
	if len(done) > 0 {
		return true
	}
	return len(missingFmax) < countDesigns(units)
}

func countDesigns(units []eval.Unit) int {
	n := 0
	for i, u := range units {
		fresh := true
		for _, v := range units[:i] {
			if v.Design == u.Design {
				fresh = false
				break
			}
		}
		if fresh {
			n++
		}
	}
	return n
}

// exitReason attributes a worker's death for the expiry record: the
// exit code or signal, prefixed with the supervisor's cause when the
// kill was deliberate ("stalled (signal: killed)"), and "exited
// incomplete" for a clean exit that left work unfinished.
func exitReason(r *running, exitErr error) string {
	cause := "exited incomplete"
	switch ee := exitErr.(type) {
	case nil:
	case *exec.ExitError:
		if code := ee.ExitCode(); code >= 0 {
			cause = fmt.Sprintf("exit %d", code)
		} else {
			cause = ee.ProcessState.String() // "signal: killed"
		}
	default:
		cause = exitErr.Error()
	}
	if r.killReason != "" {
		return r.killReason + " (" + cause + ")"
	}
	return cause
}

// restartBackoff is the capped exponential delay before re-granting a
// shard whose attempt'th lease just expired: 100ms, 200ms, 400ms, …
// capped at 2s.
func restartBackoff(attempt int) time.Duration {
	d := 100 * time.Millisecond
	for i := 1; i < attempt && d < 2*time.Second; i++ {
		d *= 2
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// tailBuffer keeps the last cap bytes written — enough stderr to
// attribute a dead worker without buffering an unbounded stream.
type tailBuffer struct {
	mu  sync.Mutex
	cap int
	buf []byte
}

func newTailBuffer(capacity int) *tailBuffer {
	return &tailBuffer{cap: capacity}
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.cap {
		t.buf = t.buf[len(t.buf)-t.cap:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}
