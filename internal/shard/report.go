package shard

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/report"
)

// Farm is a completed distributed evaluation: the merged suite plus the
// coordination history the resilience story is judged by.
type Farm struct {
	// Suite is the evaluation rehydrated from the merged journal; every
	// result is checkpoint-restored, so its Tables I–VIII are the exact
	// bytes a single-process run renders.
	Suite *eval.Suite
	// Merged is the merged journal path.
	Merged string
	// Shards is the per-shard outcome ledger.
	Shards []ShardState
	// Leases is the full coordination history in append order.
	Leases []eval.Lease
	// Restarts counts re-grants (any lease granted at attempt > 1);
	// Expiries counts leases that expired back to the pool; Quarantines
	// counts shard journals set aside after failing validation.
	Restarts, Expiries, Quarantines int
}

// ShardState is one shard's final ledger entry.
type ShardState struct {
	Index       int
	Units       []eval.Unit
	Attempts    int
	Owner       string // final owner token
	Quarantines int
	Outcome     string
	// StderrTail is the last worker's captured stderr tail (attribution
	// for the post-mortem; empty for shards that never misbehaved).
	StderrTail string
}

// Metrics exposes the farm's coordination counters under the registered
// stat keys (internal/flow/statkeys.go), the same vocabulary the
// in-process robustness counters use — so the CI chaos job and the
// resilience report read one namespace for both.
func (f *Farm) Metrics() map[string]int64 {
	return map[string]int64{
		flow.StatWorkerRestarts:   int64(f.Restarts),
		flow.StatLeaseExpiries:    int64(f.Expiries),
		flow.StatShardQuarantines: int64(f.Quarantines),
	}
}

// Report renders the farm ledger: one row per shard plus a totals row
// carrying the restart/expiry/quarantine counters.
func (f *Farm) Report() *report.Table {
	t := report.NewTable("Distributed evaluation — shard farm",
		"Shard", "Units", "Attempts", "Final owner", "Outcome")
	for _, s := range f.Shards {
		t.AddRowf(
			fmt.Sprintf("%d", s.Index),
			unitsLabel(s.Units),
			fmt.Sprintf("%d", s.Attempts),
			s.Owner,
			s.Outcome,
		)
	}
	t.AddRowf("totals",
		fmt.Sprintf("%d", f.totalUnits()),
		fmt.Sprintf("%d", f.totalAttempts()),
		"",
		fmt.Sprintf("%d restart(s), %d expiry(ies), %d quarantine(s)",
			f.Restarts, f.Expiries, f.Quarantines),
	)
	return t
}

func (f *Farm) totalUnits() int {
	n := 0
	for _, s := range f.Shards {
		n += len(s.Units)
	}
	return n
}

func (f *Farm) totalAttempts() int {
	n := 0
	for _, s := range f.Shards {
		n += s.Attempts
	}
	return n
}

// unitsLabel compresses a shard's unit list for the table: contiguous
// single-design shards read "aes (5 cfgs)", mixed shards list the span.
func unitsLabel(units []eval.Unit) string {
	if len(units) == 0 {
		return "none"
	}
	single := true
	for _, u := range units[1:] {
		if u.Design != units[0].Design {
			single = false
			break
		}
	}
	if single {
		return fmt.Sprintf("%s (%d cfgs)", units[0].Design, len(units))
	}
	return fmt.Sprintf("%s … %s (%d units)", units[0], units[len(units)-1], len(units))
}

// LeaseHistory renders the coordination journal for logs and tests.
func (f *Farm) LeaseHistory() string {
	var b strings.Builder
	for _, l := range f.Leases {
		fmt.Fprintf(&b, "shard %d %-10s owner=%s attempt=%d", l.Shard, l.Action, l.Owner, l.Attempt)
		if l.Reason != "" {
			fmt.Fprintf(&b, " (%s)", l.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
