// Package shard is the crash-safe distributed evaluation: a supervisor
// splits the design×config matrix into shards, leases each shard to a
// worker OS process, and merges the per-shard checkpoint journals back
// into one journal whose Tables I–VIII are byte-identical to a
// single-process run.
//
// The coordination model (DESIGN.md §6.10) is lease-based and
// journal-backed:
//
//   - The supervisor is the single appender of the coordination journal
//     (farm.ckpt): every shard's grant → renew* → (release | expire |
//     quarantine) lifecycle is an eval.Lease record, so a killed and
//     restarted supervisor reconstructs ownership from the journal and
//     the farm's history is auditable after the fact.
//   - Each worker process owns exactly one shard journal. Single-writer
//     is enforced structurally: the supervisor kills and reaps the old
//     process before appending the expiry that frees the shard, so no
//     two owners of one journal are ever alive at once.
//   - Liveness is journal progress, not heartbeats: a worker that stops
//     growing its journal for longer than the stall timeout is presumed
//     wedged (the fault harness's stall class is exactly this shape),
//     SIGKILLed, and its lease expired back to the pool.
//   - A shard journal that fails validation on reclaim — CRC damage,
//     header written under different options — is quarantined (renamed
//     aside) and the shard restarts from a fresh journal rather than
//     resuming from bytes that cannot be trusted.
//
// Every flow is a pure function of (design, config, scale, seed), so a
// unit computes the same bytes whichever shard runs it, however many
// times it is restarted; MergeCheckpoints exploits that to refuse
// divergent duplicates and to emit records in canonical order.
package shard

import "repro/internal/eval"

// Split partitions units into at most n contiguous shards in canonical
// (design-major) order, sized as evenly as possible — the first
// len(units) mod n shards carry one extra unit. Contiguity keeps a
// design's configurations together, which minimizes how many shards
// must redundantly compute that design's f_max target. Empty shards are
// never returned: fewer units than n yields len(units) singleton shards.
func Split(units []eval.Unit, n int) [][]eval.Unit {
	if len(units) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(units) {
		n = len(units)
	}
	base, rem := len(units)/n, len(units)%n
	out := make([][]eval.Unit, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, units[off:off+size])
		off += size
	}
	return out
}
