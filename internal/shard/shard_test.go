package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/eval"
)

// TestMain doubles as the worker binary: the supervisor re-invokes the
// test executable with SpecEnv set, and this intercept runs the shard
// instead of the test suite — the same re-exec pattern cmd/evalfarm
// uses in production.
func TestMain(m *testing.M) {
	if os.Getenv("SHARD_TEST_DIE") != "" {
		// The always-dying worker of TestFarmFailsAfterMaxRestarts.
		fmt.Fprintln(os.Stderr, "worker: deliberate death for the restart-cap test")
		os.Exit(3)
	}
	if spec, ok, err := SpecFromEnv(); ok {
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(2)
		}
		if err := RunWorker(context.Background(), spec); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerCommand re-invokes this test binary; SpecEnv (set by the
// supervisor) routes it into the TestMain worker intercept.
func workerCommand(string) (*exec.Cmd, error) {
	return exec.Command(os.Args[0]), nil
}

func testOpts() eval.SuiteOptions {
	opt := eval.DefaultSuiteOptions(0.05)
	opt.FmaxIterations = 3
	// CI proves worker-count independence by running this package at
	// FLOW_WORKERS=1 and 8, same as the golden suite.
	if v := os.Getenv("FLOW_WORKERS"); v != "" {
		if fw, err := strconv.Atoi(v); err == nil {
			opt.FlowWorkers = fw
		}
	}
	return opt
}

// renderTables renders all eight paper tables from a suite.
func renderTables(t *testing.T, s *eval.Suite) map[string]string {
	t.Helper()
	t2, err := eval.TableII()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := eval.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	t5, err := eval.TableV(s.Opt.Scale, s.Opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := s.TableVIII()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]string{
		"table_i":    s.TableI().String(),
		"table_ii":   t2.String(),
		"table_iii":  t3.String(),
		"table_iv":   eval.TableIV().String(),
		"table_v":    t5.String(),
		"table_vi":   s.TableVI().String(),
		"table_vii":  s.TableVII().String(),
		"table_viii": t8.String(),
	}
}

func TestSplit(t *testing.T) {
	units := eval.DefaultSuiteOptions(0.05).MatrixUnits()
	if len(units) != 20 {
		t.Fatalf("default matrix has %d units, want 20", len(units))
	}
	parts := Split(units, 4)
	if len(parts) != 4 {
		t.Fatalf("4-way split yielded %d shards", len(parts))
	}
	var flat []eval.Unit
	for _, p := range parts {
		if len(p) != 5 {
			t.Errorf("uneven shard: %d units", len(p))
		}
		for _, u := range p[1:] {
			if u.Design != p[0].Design {
				t.Errorf("contiguous split mixed designs in one shard: %v", p)
			}
		}
		flat = append(flat, p...)
	}
	for i := range units {
		if flat[i] != units[i] {
			t.Fatalf("split reordered units at %d: %v != %v", i, flat[i], units[i])
		}
	}
	// More shards than units: singletons, never empties.
	parts = Split(units[:3], 8)
	if len(parts) != 3 {
		t.Fatalf("oversplit yielded %d shards, want 3", len(parts))
	}
	for _, p := range parts {
		if len(p) != 1 {
			t.Errorf("oversplit shard has %d units", len(p))
		}
	}
	if Split(nil, 4) != nil {
		t.Error("empty unit list must yield no shards")
	}
}

func TestWorkerSpecRoundTrip(t *testing.T) {
	spec := WorkerSpec{
		Journal: "/tmp/shard-0.ckpt", Shard: 2, Owner: "s2-a3", Attempt: 3,
		Scale: 0.05, Seed: 1, FmaxIterations: 3, Check: "full",
		Designs: []string{"aes"}, Configs: []string{"2D-12T"},
		Units:   []eval.Unit{{Design: designs.AES, Config: core.Config2D12T}},
		Workers: 2, FlowWorkers: 1, Fault: "aes/*/cts=stall",
	}
	raw, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseWorkerSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Journal != spec.Journal || got.Owner != spec.Owner || got.Attempt != spec.Attempt ||
		got.Scale != spec.Scale || got.Fault != spec.Fault || len(got.Units) != 1 ||
		got.Units[0] != spec.Units[0] || got.Check != spec.Check {
		t.Fatalf("round trip: %+v != %+v", got, spec)
	}
	opt, err := got.SuiteOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Checkpoint != spec.Journal || opt.Fault == nil || len(opt.Units) != 1 {
		t.Fatalf("SuiteOptions lost fields: %+v", opt)
	}

	for name, bad := range map[string]WorkerSpec{
		"no journal": {Scale: 0.05, Owner: "x", Units: spec.Units},
		"no scale":   {Journal: "j", Owner: "x", Units: spec.Units},
		"no units":   {Journal: "j", Owner: "x", Scale: 0.05},
		"no owner":   {Journal: "j", Scale: 0.05, Units: spec.Units},
	} {
		raw, err := bad.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseWorkerSpec(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseWorkerSpec("not json"); err == nil {
		t.Error("garbage spec accepted")
	}
}

// TestFarmChaosKillAndResume is the acceptance test of the distributed
// evaluation: four worker processes, one SIGKILLed mid-flow by chaos,
// one wedged by an injected stall until the watchdog kills it — and the
// merged journal still renders every paper table byte-identical to a
// single-process run.
func TestFarmChaosKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process farm over the scale-0.05 suite")
	}
	opt := testOpts()

	// Single-process reference, same options.
	ref, err := eval.RunSuite(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTables(t, ref)

	// Shards are design-contiguous: shard 1 carries aes (stalled via
	// fault injection), shard 3 carries cpu (chaos-SIGKILLed once its
	// journal shows progress).
	dir := t.TempDir()
	farm, err := Run(context.Background(), Options{
		Suite:        opt,
		Dir:          dir,
		Shards:       4,
		StallTimeout: 30 * time.Second,
		PollInterval: 50 * time.Millisecond,
		MaxRestarts:  2,
		Chaos: Chaos{
			Kill:      []int{3},
			FaultSpec: "aes/*/cts=stall",
		},
		Command: workerCommand,
		Log:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if farm.Restarts < 2 {
		t.Errorf("Restarts = %d, want >= 2 (one killed, one stalled shard)", farm.Restarts)
	}
	if farm.Expiries < 2 {
		t.Errorf("Expiries = %d, want >= 2", farm.Expiries)
	}
	history := farm.LeaseHistory()
	if !strings.Contains(history, "signal: killed") {
		t.Errorf("no SIGKILL attribution in lease history:\n%s", history)
	}
	if !strings.Contains(history, "stalled") {
		t.Errorf("no stall attribution in lease history:\n%s", history)
	}
	m := farm.Metrics()
	if m["worker_restarts"] != int64(farm.Restarts) || m["lease_expiries"] != int64(farm.Expiries) {
		t.Errorf("Metrics() disagrees with counters: %v", m)
	}

	// Every result must be checkpoint-restored — the farm reruns
	// nothing while rehydrating the merged journal.
	for d, cfgs := range farm.Suite.Results {
		for c, r := range cfgs {
			if r != nil && !r.Restored {
				t.Errorf("%s/%s was re-run during rehydration", d, c)
			}
		}
	}

	got := renderTables(t, farm.Suite)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s differs between single-process and farm run:\n--- single\n%s\n--- farm\n%s",
				name, w, got[name])
		}
	}

	// The farm report renders and carries the counters.
	rep := farm.Report().String()
	if !strings.Contains(rep, "restart(s)") || !strings.Contains(rep, "quarantine(s)") {
		t.Errorf("farm report missing counters:\n%s", rep)
	}
}

// TestFarmQuarantineAndResume proves the refuse-and-reassign path for a
// journal that fails option-fingerprint validation, then that a second
// farm over the same directory spawns nothing and reuses every result.
func TestFarmQuarantineAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	opt := testOpts()
	opt.Designs = []designs.Name{designs.AES}
	opt.Configs = []core.ConfigName{core.Config2D12T}
	dir := t.TempDir()

	// Poison shard 0's journal: a valid journal written under a
	// different seed — resuming from it would mix incompatible results,
	// so the supervisor must quarantine it, not trust it.
	foreign := opt
	foreign.Seed = 99
	ck, err := eval.OpenCheckpoint(filepath.Join(dir, "shard-0.ckpt"), foreign)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()

	o := Options{
		Suite:        opt,
		Dir:          dir,
		Shards:       1,
		StallTimeout: 60 * time.Second,
		PollInterval: 50 * time.Millisecond,
		Command:      workerCommand,
		Log:          t.Logf,
	}
	farm, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if farm.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", farm.Quarantines)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0.ckpt.quarantined-1")); err != nil {
		t.Errorf("quarantined journal not preserved: %v", err)
	}
	if !strings.Contains(farm.LeaseHistory(), "quarantine") {
		t.Errorf("no quarantine record in lease history:\n%s", farm.LeaseHistory())
	}
	if r := farm.Suite.Results[designs.AES][core.Config2D12T]; r == nil {
		t.Fatal("quarantined shard's unit missing from merged suite")
	}
	want := farm.Suite.TableI().String()

	// Second farm over the same directory: everything is already in the
	// shard journal, so no worker spawns and no lease expires.
	farm2, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if farm2.Restarts != 0 || farm2.Expiries != 0 || farm2.Quarantines != 0 {
		t.Errorf("resume farm did extra work: restarts=%d expiries=%d quarantines=%d",
			farm2.Restarts, farm2.Expiries, farm2.Quarantines)
	}
	if len(farm2.Shards) != 1 || !strings.Contains(farm2.Shards[0].Outcome, "journal") {
		t.Errorf("resume outcome = %+v, want complete-in-journal", farm2.Shards)
	}
	if got := farm2.Suite.TableI().String(); got != want {
		t.Errorf("resumed farm's Table I drifted:\n%s\nvs\n%s", got, want)
	}
}

// TestFarmFailsAfterMaxRestarts proves a shard that dies on every
// attempt fails the farm with attribution instead of looping forever.
func TestFarmFailsAfterMaxRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	opt := testOpts()
	opt.Designs = []designs.Name{designs.AES}
	opt.Configs = []core.ConfigName{core.Config2D12T}
	dir := t.TempDir()
	_, err := Run(context.Background(), Options{
		Suite:        opt,
		Dir:          dir,
		Shards:       1,
		StallTimeout: 60 * time.Second,
		PollInterval: 50 * time.Millisecond,
		MaxRestarts:  1,
		Command: func(string) (*exec.Cmd, error) {
			// A worker that exits 3 immediately, every attempt: the
			// SHARD_TEST_DIE marker short-circuits TestMain before the
			// worker intercept.
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "SHARD_TEST_DIE=1")
			return cmd, nil
		},
		Log: t.Logf,
	})
	if err == nil {
		t.Fatal("farm succeeded with a worker that always dies")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempt(s)") {
		t.Errorf("error lacks attempt attribution: %v", err)
	}
	if !strings.Contains(err.Error(), "exit 3") {
		t.Errorf("error lacks exit-code attribution: %v", err)
	}
	if !strings.Contains(err.Error(), "deliberate death") {
		t.Errorf("error lacks the worker's stderr tail: %v", err)
	}
}
