package shard

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/eval"
	"repro/internal/fault"
)

// SuiteOptions reconstructs the eval options a worker runs under. The
// result-defining fields come straight from the spec so the shard
// journal's header is byte-for-byte the header the supervisor and the
// merge derive from the same options.
func (s WorkerSpec) SuiteOptions() (eval.SuiteOptions, error) {
	opt := eval.SuiteOptions{
		Scale:          s.Scale,
		Seed:           s.Seed,
		FmaxIterations: s.FmaxIterations,
		Check:          core.CheckMode(s.Check),
		Workers:        s.Workers,
		FlowWorkers:    s.FlowWorkers,
		Checkpoint:     s.Journal,
		Units:          append([]eval.Unit{}, s.Units...),
	}
	for _, d := range s.Designs {
		opt.Designs = append(opt.Designs, designs.Name(d))
	}
	for _, c := range s.Configs {
		opt.Configs = append(opt.Configs, core.ConfigName(c))
	}
	if s.Fault != "" {
		plan, err := fault.ParseSpec(s.Fault)
		if err != nil {
			return opt, fmt.Errorf("shard: worker %s: %w", s.Owner, err)
		}
		opt.Fault = plan.Hook()
	}
	return opt, nil
}

// RunWorker executes one shard in this process: it opens (or resumes)
// the shard's private journal and runs the suite restricted to the
// shard's units. Exit discipline for worker processes: return nil →
// exit 0 (the supervisor then verifies the journal is complete before
// releasing the lease); any error → non-zero exit, and the supervisor
// attributes it from the exit code plus the captured stderr tail. A
// worker never touches the coordination journal.
func RunWorker(ctx context.Context, spec WorkerSpec) error {
	opt, err := spec.SuiteOptions()
	if err != nil {
		return err
	}
	if _, err := eval.RunSuite(ctx, opt); err != nil {
		return fmt.Errorf("shard %d (owner %s, attempt %d): %w",
			spec.Shard, spec.Owner, spec.Attempt, err)
	}
	return nil
}
