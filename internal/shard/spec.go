package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/eval"
)

// SpecEnv is the environment variable carrying a worker's serialized
// WorkerSpec. The supervisor re-invokes its own binary in worker mode
// with this set; the worker entry point (cmd/evalfarm, or a test
// binary's TestMain) decodes it and calls RunWorker.
const SpecEnv = "EVALFARM_SPEC"

// WorkerSpec is everything a worker process needs to run its shard:
// the suite options that define the results (they must reproduce the
// supervisor's checkpoint header exactly), the shard's unit filter, its
// private journal path, and the lease identity it runs under. The spec
// travels as one JSON document in SpecEnv — no flag parsing, no
// positional coupling between supervisor and worker versions.
type WorkerSpec struct {
	// Journal is the shard's private checkpoint path. The worker is the
	// only writer; the supervisor only ever reads it (liveness, status)
	// until the worker has been killed and reaped.
	Journal string `json:"journal"`
	// Shard and Owner identify the lease this process runs under;
	// Attempt is 1 on the first grant and increments on every restart.
	Shard   int    `json:"shard"`
	Owner   string `json:"owner"`
	Attempt int    `json:"attempt"`

	// Result-defining options — the worker reconstructs SuiteOptions
	// from these, and empty design/config lists default identically on
	// both sides, so every shard journal carries the same header.
	Scale          float64  `json:"scale"`
	Seed           int64    `json:"seed"`
	FmaxIterations int      `json:"fmaxIterations"`
	Check          string   `json:"check,omitempty"`
	Designs        []string `json:"designs,omitempty"`
	Configs        []string `json:"configs,omitempty"`

	// Units is the shard's slice of the matrix.
	Units []eval.Unit `json:"units"`

	// Execution shape (never part of the journal header): in-process
	// suite workers and intra-flow parallelism for this process.
	Workers     int `json:"workers,omitempty"`
	FlowWorkers int `json:"flowWorkers,omitempty"`

	// Fault is a fault-injection spec (internal/fault grammar) armed in
	// the worker — the chaos channel. The supervisor only forwards it on
	// a shard's first attempt, so deterministic faults cannot re-fire on
	// every restart and wedge the farm in a kill loop.
	Fault string `json:"fault,omitempty"`
}

// Encode serializes the spec for SpecEnv.
func (s WorkerSpec) Encode() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("shard: encode worker spec: %w", err)
	}
	return string(b), nil
}

// ParseWorkerSpec decodes and validates a serialized WorkerSpec.
func ParseWorkerSpec(raw string) (WorkerSpec, error) {
	var s WorkerSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		return s, fmt.Errorf("shard: parse worker spec: %w", err)
	}
	if s.Journal == "" {
		return s, fmt.Errorf("shard: worker spec: missing journal path")
	}
	if s.Scale <= 0 {
		return s, fmt.Errorf("shard: worker spec: scale must be positive (got %v)", s.Scale)
	}
	if len(s.Units) == 0 {
		return s, fmt.Errorf("shard: worker spec: empty unit set")
	}
	if s.Owner == "" {
		return s, fmt.Errorf("shard: worker spec: missing owner token")
	}
	return s, nil
}

// SpecFromEnv reports whether the process was invoked as a farm worker
// (SpecEnv is set) and decodes the spec when it was. Worker entry
// points call this first and fall through to normal operation when ok
// is false.
func SpecFromEnv() (spec WorkerSpec, ok bool, err error) {
	raw := os.Getenv(SpecEnv)
	if raw == "" {
		return WorkerSpec{}, false, nil
	}
	spec, err = ParseWorkerSpec(raw)
	return spec, true, err
}
