package tech

import "fmt"

// Layer is one BEOL routing layer with its electrical and geometric
// parameters.
type Layer struct {
	Name string
	// Pitch is the routing track pitch in µm.
	Pitch float64
	// ROhmPerUm is wire resistance in kΩ per µm.
	ROhmPerUm float64
	// CfFPerUm is wire capacitance in fF per µm.
	CfFPerUm float64
	// Horizontal reports the preferred routing direction.
	Horizontal bool
}

// Stack is a BEOL metal stack for one die/tier. The paper's setup uses six
// signal routing layers per tier, identical to the first six signal layers
// of the 2-D BEOL (Sec. IV-A1).
type Stack struct {
	Layers []Layer
}

// SignalLayers is the number of signal routing layers per tier in both the
// 2-D and the per-tier 3-D stacks.
const SignalLayers = 6

// NewSignalStack returns the standard six-layer signal stack of the 28 nm
// node (M2..M7; M1 is cell-internal). Values follow typical 28 nm wire
// scaling: lower layers are thin/resistive at tight pitch, upper layers
// fatter and faster.
func NewSignalStack() Stack {
	return Stack{Layers: []Layer{
		{Name: "M2", Pitch: 0.10, ROhmPerUm: 4.0e-3, CfFPerUm: 0.20, Horizontal: true},
		{Name: "M3", Pitch: 0.10, ROhmPerUm: 4.0e-3, CfFPerUm: 0.20, Horizontal: false},
		{Name: "M4", Pitch: 0.14, ROhmPerUm: 2.2e-3, CfFPerUm: 0.21, Horizontal: true},
		{Name: "M5", Pitch: 0.14, ROhmPerUm: 2.2e-3, CfFPerUm: 0.21, Horizontal: false},
		{Name: "M6", Pitch: 0.28, ROhmPerUm: 0.9e-3, CfFPerUm: 0.23, Horizontal: true},
		{Name: "M7", Pitch: 0.28, ROhmPerUm: 0.9e-3, CfFPerUm: 0.23, Horizontal: false},
	}}
}

// AvgR returns the average wire resistance per µm across the stack, the
// figure the lumped extraction uses for average-layer routing.
func (s Stack) AvgR() float64 {
	if len(s.Layers) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range s.Layers {
		sum += l.ROhmPerUm
	}
	return sum / float64(len(s.Layers))
}

// AvgC returns the average wire capacitance per µm across the stack.
func (s Stack) AvgC() float64 {
	if len(s.Layers) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range s.Layers {
		sum += l.CfFPerUm
	}
	return sum / float64(len(s.Layers))
}

// Layer returns the named layer.
func (s Stack) Layer(name string) (Layer, error) {
	for _, l := range s.Layers {
		if l.Name == name {
			return l, nil
		}
	}
	return Layer{}, fmt.Errorf("tech: no BEOL layer %q", name)
}

// RoutingCapacityPerUm returns the number of routing tracks per µm of die
// width summed over layers of one direction; the congestion model divides
// demand by this supply.
func (s Stack) RoutingCapacityPerUm(horizontal bool) float64 {
	cap := 0.0
	for _, l := range s.Layers {
		if l.Horizontal == horizontal && l.Pitch > 0 {
			cap += 1.0 / l.Pitch
		}
	}
	return cap
}

// MIV is the monolithic inter-tier via model. Sequential 3-D integration
// gives nano-scale vias that are electrically almost free, which is what
// enables gate-level partitioning in the first place (Sec. I).
type MIV struct {
	// R is the via resistance in kΩ.
	R float64
	// C is the via capacitance in fF.
	C float64
	// Pitch is the minimum MIV pitch in µm, bounding 3-D connection
	// density.
	Pitch float64
}

// DefaultMIV returns the MIV parameters used throughout the evaluation.
func DefaultMIV() MIV {
	return MIV{R: 2.0e-3, C: 0.05, Pitch: 0.2}
}
