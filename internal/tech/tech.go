// Package tech describes the process technology used by the physical-design
// substrates: standard-cell track variants (the paper's 9-track and 12-track
// libraries of a commercial 28 nm node), the BEOL metal stack, the
// monolithic inter-tier via (MIV), and the heterogeneous boundary-cell
// derate model calibrated from the paper's FO-4 SPICE study (Tables II/III).
//
// Unit conventions used across the repository:
//
//	length      µm
//	time        ns
//	capacitance fF
//	resistance  kΩ   (so R·C = kΩ·fF = ps·10⁻³ ... see note below)
//	power       µW
//	energy      pJ
//	voltage     V
//
// With R in kΩ and C in fF, the product R·C is in picoseconds; helpers in
// this package and in sta convert to ns explicitly so no hidden factors
// float around the code base.
package tech

import (
	"fmt"
	"math"
)

// Track identifies a standard-cell track-height variant. The paper uses
// multi-track variants of a single 28 nm node as a stand-in for
// heterogeneous technologies (Sec. II-A).
type Track int

const (
	// Track9 is the 9-track library: smallest cell height, slow,
	// low-power, low-cost, operated at the reduced 0.81 V supply.
	Track9 Track = 9
	// Track12 is the 12-track library: tallest cells, fast, power-hungry,
	// higher die cost, operated at the nominal 0.90 V supply.
	Track12 Track = 12
)

// String implements fmt.Stringer.
func (t Track) String() string { return fmt.Sprintf("%d-track", int(t)) }

// M1Pitch is the metal-1 routing track pitch of the 28 nm node, in µm.
// Cell height = track count × M1Pitch.
const M1Pitch = 0.1

// RCps converts an R(kΩ)·C(fF) product to nanoseconds.
func RCps(rkohm, cff float64) float64 { return rkohm * cff * 1e-3 }

// Variant captures the physical and electrical personality of one
// track-height library. The constants are calibrated so that the
// *relative* behaviour between Track9 and Track12 matches what the paper
// reports: 9-track cells are 25 % shorter, roughly 2.3× slower per stage on
// critical paths (Table VIII: 19 ps vs 45 ps average stage delay), burn far
// less leakage (Table II: 0.093 µW vs 0.003 µW for the FO-4), and run at
// 0.81 V vs 0.90 V (Sec. IV-A1).
type Variant struct {
	Track Track
	// VDD is the supply voltage in volts.
	VDD float64
	// CellHeight is the placement row height in µm.
	CellHeight float64
	// AreaScale multiplies a cell's nominal footprint. The 9-track cell
	// is 25 % smaller at equal drive (Sec. IV-A2).
	AreaScale float64
	// DriveRes is the switching resistance of a unit-drive (X1) inverter
	// in kΩ; larger means slower.
	DriveRes float64
	// InputCap is the input capacitance of a unit-drive inverter input
	// pin in fF.
	InputCap float64
	// IntrinsicDelay is the parasitic self-delay of a unit inverter in ns.
	IntrinsicDelay float64
	// LeakagePower is the leakage of a unit inverter in µW.
	LeakagePower float64
	// InternalEnergy is the short-circuit + internal switching energy of
	// a unit inverter per output transition, in fJ (1e-3 pJ).
	InternalEnergy float64
	// WireCostScale scales FEOL die cost attributable to this library;
	// identical here because the track variants share the node and BEOL
	// (Sec. II-A), but kept as a knob for true multi-node heterogeneity.
	WireCostScale float64
}

// Variant9T returns the 9-track library personality.
func Variant9T() Variant {
	return Variant{
		Track:          Track9,
		VDD:            0.81,
		CellHeight:     9 * M1Pitch,
		AreaScale:      0.75,
		DriveRes:       2.30, // ≈2.3× the 12T unit drive resistance
		InputCap:       0.80,
		IntrinsicDelay: 0.0100, // ≈1.7× the 12T parasitic delay; the 2.3× stage ratio appears under load
		LeakagePower:   0.0008, // ≈1/30 of the 12T leakage (Table II)
		InternalEnergy: 0.55,
		WireCostScale:  1.0,
	}
}

// Variant12T returns the 12-track library personality.
func Variant12T() Variant {
	return Variant{
		Track:          Track12,
		VDD:            0.90,
		CellHeight:     12 * M1Pitch,
		AreaScale:      1.0,
		DriveRes:       1.00,
		InputCap:       1.10,
		IntrinsicDelay: 0.0060,
		LeakagePower:   0.0233,
		InternalEnergy: 0.95,
		WireCostScale:  1.0,
	}
}

// VariantFor returns the canonical Variant for a track value.
func VariantFor(t Track) (Variant, error) {
	switch t {
	case Track9:
		return Variant9T(), nil
	case Track12:
		return Variant12T(), nil
	default:
		return Variant{}, fmt.Errorf("tech: unsupported track variant %d", int(t))
	}
}

// MakeVariant synthesizes a track-height variant between the two anchor
// libraries by interpolation: electrical quantities with multiplicative
// scaling interpolate geometrically, additive ones linearly. The paper's
// conclusion calls the 9+12 mix a manual choice and asks for "more
// exploration" — this is the generator behind the track-mix study
// (tracks 9–12 supported; 9 and 12 return the anchors exactly).
func MakeVariant(tracks int) (Variant, error) {
	if tracks < 9 || tracks > 12 {
		return Variant{}, fmt.Errorf("tech: track height %d outside the 9–12 family", tracks)
	}
	v9, v12 := Variant9T(), Variant12T()
	switch tracks {
	case 9:
		return v9, nil
	case 12:
		return v12, nil
	}
	f := float64(tracks-9) / 3
	lin := func(a, b float64) float64 { return a + (b-a)*f }
	geo := func(a, b float64) float64 { return a * math.Pow(b/a, f) }
	return Variant{
		Track:          Track(tracks),
		VDD:            lin(v9.VDD, v12.VDD),
		CellHeight:     float64(tracks) * M1Pitch,
		AreaScale:      float64(tracks) / 12,
		DriveRes:       geo(v9.DriveRes, v12.DriveRes),
		InputCap:       lin(v9.InputCap, v12.InputCap),
		IntrinsicDelay: lin(v9.IntrinsicDelay, v12.IntrinsicDelay),
		LeakagePower:   geo(v9.LeakagePower, v12.LeakagePower),
		InternalEnergy: lin(v9.InternalEnergy, v12.InternalEnergy),
		WireCostScale:  1.0,
	}, nil
}

// MaxHeteroVoltageRatio is the paper's safe-heterogeneity bound:
// V_DDH − V_DDL must stay below 0.3 × V_DDH or signal levels stop
// registering without level shifters (Sec. II-B).
const MaxHeteroVoltageRatio = 0.3

// HeteroCompatible reports whether two library variants can be mixed in a
// level-shifter-free monolithic 3-D design, per the paper's voltage rule.
func HeteroCompatible(a, b Variant) bool {
	hi, lo := a.VDD, b.VDD
	if hi < lo {
		hi, lo = lo, hi
	}
	return hi-lo < MaxHeteroVoltageRatio*hi
}

// Tier identifies one die of the 3-D stack.
type Tier int

const (
	// TierBottom is the bottom die. In the paper's heterogeneous
	// arrangement this carries the fast 12-track cells.
	TierBottom Tier = 0
	// TierTop is the top die, carrying the slow low-power 9-track cells
	// in the heterogeneous arrangement.
	TierTop Tier = 1
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	if t == TierBottom {
		return "bottom"
	}
	return "top"
}

// Other returns the opposite tier.
func (t Tier) Other() Tier {
	if t == TierBottom {
		return TierTop
	}
	return TierBottom
}
