package tech

import (
	"math"
	"testing"
)

func TestVariantRelations(t *testing.T) {
	v9, v12 := Variant9T(), Variant12T()

	if v9.VDD >= v12.VDD {
		t.Errorf("9T VDD %v should be below 12T VDD %v", v9.VDD, v12.VDD)
	}
	if v9.CellHeight >= v12.CellHeight {
		t.Errorf("9T height %v should be below 12T height %v", v9.CellHeight, v12.CellHeight)
	}
	// The paper states 9-track cells are 25 % smaller (Sec. IV-A2).
	if math.Abs(v9.AreaScale-0.75) > 1e-9 {
		t.Errorf("9T AreaScale = %v, want 0.75", v9.AreaScale)
	}
	if v9.DriveRes <= v12.DriveRes {
		t.Errorf("9T must be slower: DriveRes %v vs %v", v9.DriveRes, v12.DriveRes)
	}
	if v9.LeakagePower >= v12.LeakagePower {
		t.Errorf("9T must leak less: %v vs %v", v9.LeakagePower, v12.LeakagePower)
	}
	// Leakage ratio should be extreme, matching Table II (~30×).
	ratio := v12.LeakagePower / v9.LeakagePower
	if ratio < 10 || ratio > 100 {
		t.Errorf("12T/9T leakage ratio = %v, want within [10,100]", ratio)
	}
	// Cell heights derive from track counts.
	if math.Abs(v9.CellHeight-0.9) > 1e-9 || math.Abs(v12.CellHeight-1.2) > 1e-9 {
		t.Errorf("cell heights = %v, %v", v9.CellHeight, v12.CellHeight)
	}
}

func TestVariantFor(t *testing.T) {
	v, err := VariantFor(Track9)
	if err != nil || v.Track != Track9 {
		t.Errorf("VariantFor(Track9) = %v, %v", v, err)
	}
	v, err = VariantFor(Track12)
	if err != nil || v.Track != Track12 {
		t.Errorf("VariantFor(Track12) = %v, %v", v, err)
	}
	if _, err := VariantFor(Track(7)); err == nil {
		t.Error("expected error for unsupported track")
	}
}

func TestTrackString(t *testing.T) {
	if Track9.String() != "9-track" || Track12.String() != "12-track" {
		t.Errorf("Track strings: %q, %q", Track9, Track12)
	}
}

func TestHeteroCompatible(t *testing.T) {
	v9, v12 := Variant9T(), Variant12T()
	// 0.90 − 0.81 = 0.09 < 0.3 × 0.90: compatible without level shifters.
	if !HeteroCompatible(v9, v12) {
		t.Error("9T/12T should be hetero-compatible")
	}
	if !HeteroCompatible(v12, v9) {
		t.Error("compatibility must be symmetric")
	}
	// A hypothetical 0.5 V library against 0.9 V violates the rule.
	low := v9
	low.VDD = 0.5
	if HeteroCompatible(low, v12) {
		t.Error("0.5V/0.9V should need level shifters")
	}
}

func TestTier(t *testing.T) {
	if TierBottom.Other() != TierTop || TierTop.Other() != TierBottom {
		t.Error("Tier.Other is broken")
	}
	if TierBottom.String() != "bottom" || TierTop.String() != "top" {
		t.Errorf("Tier strings: %q, %q", TierBottom, TierTop)
	}
}

func TestRCps(t *testing.T) {
	// 1 kΩ × 1 fF = 1 ps = 1e-3 ns.
	if got := RCps(1, 1); math.Abs(got-1e-3) > 1e-15 {
		t.Errorf("RCps(1,1) = %v, want 1e-3", got)
	}
}

func TestSignalStack(t *testing.T) {
	s := NewSignalStack()
	if len(s.Layers) != SignalLayers {
		t.Fatalf("stack has %d layers, want %d", len(s.Layers), SignalLayers)
	}
	if s.AvgR() <= 0 || s.AvgC() <= 0 {
		t.Errorf("AvgR/AvgC = %v/%v, want positive", s.AvgR(), s.AvgC())
	}
	// Lower layers must be more resistive than upper ones.
	m2, err := s.Layer("M2")
	if err != nil {
		t.Fatal(err)
	}
	m7, err := s.Layer("M7")
	if err != nil {
		t.Fatal(err)
	}
	if m2.ROhmPerUm <= m7.ROhmPerUm {
		t.Errorf("M2 R %v should exceed M7 R %v", m2.ROhmPerUm, m7.ROhmPerUm)
	}
	if _, err := s.Layer("M99"); err == nil {
		t.Error("expected error for unknown layer")
	}
	// Directions alternate: three horizontal, three vertical.
	h := s.RoutingCapacityPerUm(true)
	v := s.RoutingCapacityPerUm(false)
	if h <= 0 || v <= 0 {
		t.Errorf("routing capacity h=%v v=%v", h, v)
	}
	if math.Abs(h-v) > 1e-9 {
		t.Errorf("balanced stack should have equal h/v capacity, got %v vs %v", h, v)
	}
}

func TestEmptyStackAverages(t *testing.T) {
	var s Stack
	if s.AvgR() != 0 || s.AvgC() != 0 {
		t.Error("empty stack averages should be 0")
	}
}

func TestDefaultMIV(t *testing.T) {
	m := DefaultMIV()
	if m.R <= 0 || m.C <= 0 || m.Pitch <= 0 {
		t.Errorf("MIV parameters must be positive: %+v", m)
	}
	// MIVs are nearly free compared to even 10 µm of M2 wire.
	s := NewSignalStack()
	if m.C > 10*s.AvgC() {
		t.Errorf("MIV C %v should be far below 10 µm of wire C %v", m.C, 10*s.AvgC())
	}
}

func TestDefaultDeratesSigns(t *testing.T) {
	m := DefaultDerates()

	// Fast driver with slow load on the other tier gets FASTER (Table II,
	// Case I→II deltas are negative).
	if m.OutFastToSlow.Delay >= 1 {
		t.Errorf("OutFastToSlow.Delay = %v, want < 1", m.OutFastToSlow.Delay)
	}
	// Slow driver with fast load gets SLOWER (Case III→IV positive).
	if m.OutSlowToFast.Delay <= 1 {
		t.Errorf("OutSlowToFast.Delay = %v, want > 1", m.OutSlowToFast.Delay)
	}
	// Lower gate voltage on a fast cell explodes leakage by ~3.5×.
	if m.InSlowGateOnFast.Leakage < 3 || m.InSlowGateOnFast.Leakage > 4 {
		t.Errorf("InSlowGateOnFast.Leakage = %v, want ≈3.5", m.InSlowGateOnFast.Leakage)
	}
	// Higher gate voltage on a slow cell nearly halves leakage.
	if m.InFastGateOnSlow.Leakage >= 0.6 {
		t.Errorf("InFastGateOnSlow.Leakage = %v, want ≈0.55", m.InFastGateOnSlow.Leakage)
	}
	// Input-boundary delay deltas are small and of opposite sign, which is
	// why path-level error cancels (Sec. II-B).
	if m.InSlowGateOnFast.Delay <= 1 || m.InFastGateOnSlow.Delay >= 1 {
		t.Errorf("input-boundary delay derates have wrong signs: %v, %v",
			m.InSlowGateOnFast.Delay, m.InFastGateOnSlow.Delay)
	}
}

func TestDerateSelectorsAndCompose(t *testing.T) {
	m := DefaultDerates()
	if m.ForOutputBoundary(true) != m.OutFastToSlow {
		t.Error("ForOutputBoundary(fast) mismatch")
	}
	if m.ForOutputBoundary(false) != m.OutSlowToFast {
		t.Error("ForOutputBoundary(slow) mismatch")
	}
	if m.ForInputBoundary(true) != m.InSlowGateOnFast {
		t.Error("ForInputBoundary(fast) mismatch")
	}
	if m.ForInputBoundary(false) != m.InFastGateOnSlow {
		t.Error("ForInputBoundary(slow) mismatch")
	}

	u := Unity()
	d := Derate{Slew: 1.1, Delay: 1.2, Leakage: 2, Power: 0.9}
	if got := d.Compose(u); got != d {
		t.Errorf("Compose with unity = %v, want %v", got, d)
	}
	got := d.Compose(d)
	if math.Abs(got.Delay-1.44) > 1e-9 || math.Abs(got.Leakage-4) > 1e-9 {
		t.Errorf("Compose = %+v", got)
	}
}
