package tech

import (
	"math"
	"testing"
)

func TestMakeVariantAnchors(t *testing.T) {
	v9, err := MakeVariant(9)
	if err != nil {
		t.Fatal(err)
	}
	if v9 != Variant9T() {
		t.Errorf("MakeVariant(9) = %+v, want the 9T anchor", v9)
	}
	v12, err := MakeVariant(12)
	if err != nil {
		t.Fatal(err)
	}
	if v12 != Variant12T() {
		t.Errorf("MakeVariant(12) = %+v, want the 12T anchor", v12)
	}
}

func TestMakeVariantMonotone(t *testing.T) {
	var prev Variant
	for tr := 9; tr <= 12; tr++ {
		v, err := MakeVariant(tr)
		if err != nil {
			t.Fatal(err)
		}
		if tr > 9 {
			if v.VDD <= prev.VDD {
				t.Errorf("VDD not increasing at %d tracks", tr)
			}
			if v.DriveRes >= prev.DriveRes {
				t.Errorf("DriveRes not decreasing at %d tracks", tr)
			}
			if v.LeakagePower <= prev.LeakagePower {
				t.Errorf("leakage not increasing at %d tracks", tr)
			}
			if v.CellHeight <= prev.CellHeight {
				t.Errorf("height not increasing at %d tracks", tr)
			}
		}
		if math.Abs(v.CellHeight-float64(tr)*M1Pitch) > 1e-12 {
			t.Errorf("%d tracks: height %v", tr, v.CellHeight)
		}
		// Every family member is level-shifter free against the 12T die.
		if !HeteroCompatible(v, Variant12T()) {
			t.Errorf("%d tracks not hetero-compatible", tr)
		}
		prev = v
	}
}

func TestMakeVariantBounds(t *testing.T) {
	if _, err := MakeVariant(8); err == nil {
		t.Error("8 tracks should fail")
	}
	if _, err := MakeVariant(13); err == nil {
		t.Error("13 tracks should fail")
	}
}
