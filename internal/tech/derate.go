package tech

// Boundary-cell derate model.
//
// When a monolithic heterogeneous design splits a timing path across tiers
// with different supply voltages, two boundary situations arise (paper
// Fig. 2):
//
//   - heterogeneity at the driver OUTPUT: the driver and its load sit on
//     different tiers, so the driver sees a load characterized for another
//     voltage/technology (Table II);
//   - heterogeneity at the driver INPUT: driver and load share a tier but
//     the driver's gate is driven from the other tier, i.e. at the other
//     tier's voltage level (Table III).
//
// Rather than re-characterizing every cell at every foreign slew/voltage,
// the flow applies multiplicative derates calibrated from the paper's FO-4
// SPICE study. Signs matter: fast→slow boundaries speed up the fast driver
// (smaller load) while slow→fast boundaries slow the slow driver, and a
// reduced gate voltage on a fast cell explodes its leakage (+250 %) while
// an elevated gate voltage on a slow cell nearly halves it (−44.9 %).

// BoundaryKind distinguishes the two FO-4 boundary configurations.
type BoundaryKind int

const (
	// BoundaryAtOutput: driver on one tier, load on the other (Fig. 2a).
	BoundaryAtOutput BoundaryKind = iota
	// BoundaryAtInput: driver's input net crosses tiers (Fig. 2b).
	BoundaryAtInput
)

// Derate is a set of multiplicative factors applied to a boundary cell's
// characterized timing and power. A factor of 1.0 means "unchanged".
type Derate struct {
	Slew    float64 // output slew multiplier
	Delay   float64 // stage delay multiplier
	Leakage float64 // leakage power multiplier
	Power   float64 // total (dynamic) power multiplier
}

// Unity is the no-op derate.
func Unity() Derate { return Derate{Slew: 1, Delay: 1, Leakage: 1, Power: 1} }

// Compose returns the element-wise product of two derates, for cells that
// suffer both an input and an output boundary.
func (d Derate) Compose(e Derate) Derate {
	return Derate{
		Slew:    d.Slew * e.Slew,
		Delay:   d.Delay * e.Delay,
		Leakage: d.Leakage * e.Leakage,
		Power:   d.Power * e.Power,
	}
}

// DerateModel yields boundary derates for a given driver/neighbour tier
// speed relation. "Fast" below means the 12-track (higher-VDD) library.
type DerateModel struct {
	// OutFastToSlow: fast driver, slow load on the other tier
	// (Table II, Case I→II: rise/fall delay −13.1/−18.1 %).
	OutFastToSlow Derate
	// OutSlowToFast: slow driver, fast load on the other tier
	// (Table II, Case III→IV: rise/fall delay +6.4/+22.3 %).
	OutSlowToFast Derate
	// InSlowGateOnFast: fast driver whose gate is driven at the slow
	// tier's lower VDD (Table III, left: delay +3.4/+4.1 %, leakage +250 %).
	InSlowGateOnFast Derate
	// InFastGateOnSlow: slow driver whose gate is driven at the fast
	// tier's higher VDD (Table III, right: delay −5.3/−5.1 %, leakage −44.9 %).
	InFastGateOnSlow Derate
}

// DefaultDerates returns the model calibrated from Tables II and III.
// Each factor is the average of the paper's rise/fall deltas.
func DefaultDerates() DerateModel {
	return DerateModel{
		OutFastToSlow: Derate{
			Slew:    1 - (0.067+0.169)/2, // −6.7 %, −16.9 %
			Delay:   1 - (0.131+0.181)/2, // −13.1 %, −18.1 %
			Leakage: 1 - 0.003,
			Power:   1 - 0.043,
		},
		OutSlowToFast: Derate{
			Slew:    1 + (0.142+0.081)/2, // +14.2 %, +8.1 %
			Delay:   1 + (0.064+0.223)/2, // +6.4 %, +22.3 %
			Leakage: 1 - 0.013,
			Power:   1 + 0.090,
		},
		InSlowGateOnFast: Derate{
			Slew:    1 + (0.081+0.066)/2, // +8.1 %, +6.6 %
			Delay:   1 + (0.034+0.041)/2, // +3.4 %, +4.1 %
			Leakage: 1 + 2.50,            // +250 %
			Power:   1 + 0.092,
		},
		InFastGateOnSlow: Derate{
			Slew:    1 - (0.099+0.081)/2, // −9.9 %, −8.1 %
			Delay:   1 - (0.053+0.051)/2, // −5.3 %, −5.1 %
			Leakage: 1 - 0.449,
			Power:   1 - 0.006,
		},
	}
}

// ForOutputBoundary returns the derate for a driver whose load sits on the
// other tier. driverFast reports whether the driver's library is the
// higher-VDD (12-track) one.
func (m DerateModel) ForOutputBoundary(driverFast bool) Derate {
	if driverFast {
		return m.OutFastToSlow
	}
	return m.OutSlowToFast
}

// ForInputBoundary returns the derate for a driver whose input net is
// driven from the other tier. driverFast reports whether the *driver's*
// library is the higher-VDD one (its gate then sees a lower voltage).
func (m DerateModel) ForInputBoundary(driverFast bool) Derate {
	if driverFast {
		return m.InSlowGateOnFast
	}
	return m.InFastGateOnSlow
}
