package sta

import (
	"fmt"

	"repro/internal/netlist"
)

// Snapshot is the pure-data export of a timing Result: the summary
// numbers, every per-instance array, and the endpoint slack table with
// instance/port references flattened to dense IDs. It carries enough to
// restore a Result whose every accessor — CellSlack, SlackMap,
// EffectiveDelay, CriticalPaths — answers bit-identically to the
// original, without rerunning analysis.
type Snapshot struct {
	// Period is the clock period the analysis ran at (cfg.Period);
	// EffectiveDelay needs it.
	Period                                 float64
	WNS, TNS                               float64
	HoldWNS, HoldTNS                       float64
	Endpoints, FailingEndpoints            int
	FailingHoldEndpoints                   int
	ArrOut, ReqOut, Delay, SlewOut, InWire []float64
	Pred                                   []int32
	Ends                                   []EndpointSnap
}

// EndpointSnap is one endpoint-slack entry with references by dense
// index: Inst indexes Design.Instances (-1 for an output-port
// endpoint), Port indexes Design.Ports (-1 when absent).
type EndpointSnap struct {
	Inst  int32
	Port  int32
	From  int32
	Slack float64
	Hold  float64
}

// Snapshot exports the result for serialization. Slices are copied; the
// snapshot does not alias the result.
func (res *Result) Snapshot() *Snapshot {
	s := &Snapshot{
		Period:               res.cfg.Period,
		WNS:                  res.WNS,
		TNS:                  res.TNS,
		HoldWNS:              res.HoldWNS,
		HoldTNS:              res.HoldTNS,
		Endpoints:            res.Endpoints,
		FailingEndpoints:     res.FailingEndpoints,
		FailingHoldEndpoints: res.FailingHoldEndpoints,
		ArrOut:               append([]float64(nil), res.arrOut...),
		ReqOut:               append([]float64(nil), res.reqOut...),
		Delay:                append([]float64(nil), res.delay...),
		SlewOut:              append([]float64(nil), res.slewOut...),
		InWire:               append([]float64(nil), res.inWire...),
		Pred:                 append([]int32(nil), res.pred...),
	}
	for _, e := range res.endSlack {
		es := EndpointSnap{Inst: -1, Port: -1, From: e.from, Slack: e.slack, Hold: e.hold}
		if e.inst != nil {
			es.Inst = int32(e.inst.ID)
		}
		if e.port != nil {
			for i, p := range res.d.Ports {
				if p == e.port {
					es.Port = int32(i)
					break
				}
			}
		}
		s.Ends = append(s.Ends, es)
	}
	return s
}

// RestoreResult rebuilds a Result over d from a snapshot, validating
// every index and array length against the design. The restored result
// is a read-only view — path tracing and slack queries work; it is not
// attached to a Timer.
func RestoreResult(d *netlist.Design, s *Snapshot) (*Result, error) {
	n := len(d.Instances)
	arrays := []struct {
		name string
		arr  []float64
	}{
		{"arrival", s.ArrOut}, {"required", s.ReqOut}, {"delay", s.Delay},
		{"slew", s.SlewOut}, {"wire", s.InWire},
	}
	for _, a := range arrays {
		if len(a.arr) != n {
			return nil, fmt.Errorf("sta: restore: %s array covers %d instances, design has %d", a.name, len(a.arr), n)
		}
	}
	if len(s.Pred) != n {
		return nil, fmt.Errorf("sta: restore: predecessor array covers %d instances, design has %d", len(s.Pred), n)
	}
	for i, p := range s.Pred {
		if p < -1 || int(p) >= n {
			return nil, fmt.Errorf("sta: restore: predecessor %d of instance %d out of range", p, i)
		}
	}
	res := &Result{
		WNS:                  s.WNS,
		TNS:                  s.TNS,
		HoldWNS:              s.HoldWNS,
		HoldTNS:              s.HoldTNS,
		Endpoints:            s.Endpoints,
		FailingEndpoints:     s.FailingEndpoints,
		FailingHoldEndpoints: s.FailingHoldEndpoints,
		cfg:                  DefaultConfig(s.Period),
		d:                    d,
		arrOut:               append([]float64(nil), s.ArrOut...),
		reqOut:               append([]float64(nil), s.ReqOut...),
		delay:                append([]float64(nil), s.Delay...),
		slewOut:              append([]float64(nil), s.SlewOut...),
		inWire:               append([]float64(nil), s.InWire...),
		pred:                 append([]int32(nil), s.Pred...),
	}
	for i, es := range s.Ends {
		e := endpoint{from: es.From, slack: es.Slack, hold: es.Hold}
		if es.Inst >= 0 {
			if int(es.Inst) >= n {
				return nil, fmt.Errorf("sta: restore: endpoint %d references instance %d of %d", i, es.Inst, n)
			}
			e.inst = d.Instances[es.Inst]
		}
		if es.Port >= 0 {
			if int(es.Port) >= len(d.Ports) {
				return nil, fmt.Errorf("sta: restore: endpoint %d references port %d of %d", i, es.Port, len(d.Ports))
			}
			e.port = d.Ports[es.Port]
		}
		if es.From < -1 || int(es.From) >= n {
			return nil, fmt.Errorf("sta: restore: endpoint %d references driver %d of %d", i, es.From, n)
		}
		res.endSlack = append(res.endSlack, e)
	}
	return res, nil
}
