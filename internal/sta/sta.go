package sta

import (
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// Config parameterizes one timing analysis.
type Config struct {
	// Period is the clock period in ns.
	Period float64
	// Router supplies the RC extraction; nil uses route.New(). Wrap it in
	// a route.Cache to share extraction across repeated analyses.
	Router route.Extractor
	// InputSlew is the transition time assumed at primary inputs and
	// register clock pins, in ns.
	InputSlew float64
	// Latency returns the clock-tree arrival time at a sequential cell's
	// clock pin; nil means an ideal (zero-latency, zero-skew) clock.
	Latency func(*netlist.Instance) float64
	// Hetero enables the boundary-cell derates for cross-tier nets.
	Hetero bool
	// Derates is the boundary derate model (DefaultDerates if zero and
	// Hetero is set).
	Derates tech.DerateModel
	// FastTrack identifies the fast (higher-VDD) library of the pair.
	FastTrack tech.Track
	// ForceFull disables incremental updates on a Timer: every Update
	// recomputes from scratch. One-shot Analyze is always full.
	ForceFull bool
	// Workers bounds the full pass's intra-analysis parallelism: RC
	// extraction fans out per net and the forward/backward sweeps run
	// per topological level. Results are byte-identical at any value
	// (every work item writes only its own index-addressed slots);
	// <= 1 runs serially. Incremental updates are always serial — their
	// frontier is small by construction.
	Workers int
}

// DefaultConfig returns a Config for an ideal clock at the given period.
func DefaultConfig(period float64) Config {
	return Config{
		Period:    period,
		InputSlew: 0.02,
		FastTrack: tech.Track12,
	}
}

// Result carries the outcome of one analysis. Slices are indexed by
// instance ID.
type Result struct {
	// WNS is the worst (minimum) endpoint slack in ns — positive when
	// timing is met. TNS sums the negative endpoint slacks (0 when met).
	WNS, TNS float64
	// HoldWNS and HoldTNS are the min-path (hold) counterparts: the
	// earliest D-pin arrival against capture latency plus the library
	// hold requirement.
	HoldWNS, HoldTNS float64
	// Endpoints and FailingEndpoints count setup-check points.
	Endpoints, FailingEndpoints int
	// FailingHoldEndpoints counts hold violations.
	FailingHoldEndpoints int

	cfg     Config
	d       *netlist.Design
	arrOut  []float64 // arrival at each instance's output pin
	reqOut  []float64 // required time at each instance's output pin
	delay   []float64 // cell (stage) delay per instance
	slewOut []float64 // output slew per instance
	inWire  []float64 // wire delay of the worst incoming edge
	pred    []int32   // worst-arrival predecessor instance ID (-1 = source/port)

	// endpoint slacks for path tracing: instance endpoints (DFF D, macro
	// A) and output ports.
	endSlack []endpoint
}

type endpoint struct {
	inst  *netlist.Instance // nil for output ports
	port  *netlist.Port
	from  int32 // driving instance ID (-1 if port-driven net)
	slack float64
	// hold is the hold-check slack (registered endpoints only); output
	// ports carry +Inf.
	hold float64
}

// Analyze runs full STA on the design: a one-shot Timer session —
// construct, update once, detach.
func Analyze(d *netlist.Design, cfg Config) (*Result, error) {
	t, err := NewTimer(d, cfg)
	if err != nil {
		return nil, err
	}
	defer t.Close()
	return t.Update()
}

// applyDerates multiplies the boundary-cell derates into a stage's delay
// and slew when hetero analysis is on (Sec. II-B): an output boundary when
// the cell's output net crosses tiers, an input boundary when any input
// net's driver sits on the other tier.
func (res *Result) applyDerates(inst *netlist.Instance, out *netlist.Net, d *netlist.Design, delay, slew float64) (float64, float64) {
	cfg := &res.cfg
	if !cfg.Hetero {
		return delay, slew
	}
	fast := inst.Master.Track == cfg.FastTrack
	der := tech.Unity()
	if out != nil && out.CrossesTiers() {
		der = der.Compose(cfg.Derates.ForOutputBoundary(fast))
	}
	// Conn's rows are shared slices — no per-node allocation here, and
	// this runs once per instance per analysis.
	for _, in := range d.Conn().InputNets(inst) {
		if in.IsClock {
			continue
		}
		if in.Driver.Valid() && in.Driver.Inst.Tier != inst.Tier {
			der = der.Compose(cfg.Derates.ForInputBoundary(fast))
			break
		}
	}
	return delay * der.Delay, slew * der.Slew
}

// CellSlack returns the worst slack among all paths through the instance
// — the cell-based criticality measure the timing-driven partitioner uses
// ("we visit the cells individually and find the worst slack among the
// paths going through the cell", Sec. III-A1).
func (res *Result) CellSlack(inst *netlist.Instance) float64 {
	s := res.reqOut[inst.ID] - res.arrOut[inst.ID]
	// Endpoint cells: include their own capture check.
	for _, e := range res.endSlack {
		if e.inst == inst && e.slack < s {
			s = e.slack
		}
	}
	if math.IsInf(s, 1) {
		// No constrained fanout (e.g. dangling output): unconstrained.
		return math.Inf(1)
	}
	return s
}

// SlackMap materializes CellSlack for every instance, resolving endpoint
// checks in one pass (CellSlack's per-endpoint scan is fine for single
// queries; flows use this bulk version).
func (res *Result) SlackMap() []float64 {
	out := make([]float64, len(res.d.Instances))
	for i := range out {
		out[i] = res.reqOut[i] - res.arrOut[i]
	}
	for _, e := range res.endSlack {
		if e.inst != nil && e.slack < out[e.inst.ID] {
			out[e.inst.ID] = e.slack
		}
	}
	return out
}

// EffectiveDelay returns clock period − worst slack, the paper's PDP
// denominator metric (negative slack inflates it past the period).
func (res *Result) EffectiveDelay() float64 { return res.cfg.Period - res.WNS }

// ArrivalOut returns the output-pin arrival time of an instance.
func (res *Result) ArrivalOut(inst *netlist.Instance) float64 { return res.arrOut[inst.ID] }

// StageDelay returns the instance's computed cell delay.
func (res *Result) StageDelay(inst *netlist.Instance) float64 { return res.delay[inst.ID] }

// OutputSlew returns the instance's computed output transition time —
// the quantity max-transition DRC fixing acts on.
func (res *Result) OutputSlew(inst *netlist.Instance) float64 { return res.slewOut[inst.ID] }

// WorstEndpoints returns the k endpoints with smallest slack.
func (res *Result) WorstEndpoints(k int) []float64 {
	sl := make([]float64, len(res.endSlack))
	for i, e := range res.endSlack {
		sl[i] = e.slack
	}
	sort.Float64s(sl)
	if k > len(sl) {
		k = len(sl)
	}
	return sl[:k]
}
