package sta

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// Config parameterizes one timing analysis.
type Config struct {
	// Period is the clock period in ns.
	Period float64
	// Router supplies the RC extraction; nil uses route.New().
	Router *route.Router
	// InputSlew is the transition time assumed at primary inputs and
	// register clock pins, in ns.
	InputSlew float64
	// Latency returns the clock-tree arrival time at a sequential cell's
	// clock pin; nil means an ideal (zero-latency, zero-skew) clock.
	Latency func(*netlist.Instance) float64
	// Hetero enables the boundary-cell derates for cross-tier nets.
	Hetero bool
	// Derates is the boundary derate model (DefaultDerates if zero and
	// Hetero is set).
	Derates tech.DerateModel
	// FastTrack identifies the fast (higher-VDD) library of the pair.
	FastTrack tech.Track
}

// DefaultConfig returns a Config for an ideal clock at the given period.
func DefaultConfig(period float64) Config {
	return Config{
		Period:    period,
		InputSlew: 0.02,
		FastTrack: tech.Track12,
	}
}

// Result carries the outcome of one analysis. Slices are indexed by
// instance ID.
type Result struct {
	// WNS is the worst (minimum) endpoint slack in ns — positive when
	// timing is met. TNS sums the negative endpoint slacks (0 when met).
	WNS, TNS float64
	// HoldWNS and HoldTNS are the min-path (hold) counterparts: the
	// earliest D-pin arrival against capture latency plus the library
	// hold requirement.
	HoldWNS, HoldTNS float64
	// Endpoints and FailingEndpoints count setup-check points.
	Endpoints, FailingEndpoints int
	// FailingHoldEndpoints counts hold violations.
	FailingHoldEndpoints int

	cfg     Config
	d       *netlist.Design
	arrOut  []float64 // arrival at each instance's output pin
	reqOut  []float64 // required time at each instance's output pin
	delay   []float64 // cell (stage) delay per instance
	slewOut []float64 // output slew per instance
	inWire  []float64 // wire delay of the worst incoming edge
	pred    []int32   // worst-arrival predecessor instance ID (-1 = source/port)

	// endpoint slacks for path tracing: instance endpoints (DFF D, macro
	// A) and output ports.
	endSlack []endpoint
}

type endpoint struct {
	inst  *netlist.Instance // nil for output ports
	port  *netlist.Port
	from  int32 // driving instance ID (-1 if port-driven net)
	slack float64
	// hold is the hold-check slack (registered endpoints only); output
	// ports carry +Inf.
	hold float64
}

// Analyze runs full STA on the design.
func Analyze(d *netlist.Design, cfg Config) (*Result, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("sta: period %v must be positive", cfg.Period)
	}
	if cfg.Router == nil {
		cfg.Router = route.New()
	}
	if cfg.InputSlew <= 0 {
		cfg.InputSlew = 0.02
	}
	if cfg.Hetero && cfg.Derates == (tech.DerateModel{}) {
		cfg.Derates = tech.DefaultDerates()
	}
	if cfg.FastTrack == 0 {
		cfg.FastTrack = tech.Track12
	}
	g, err := buildGraph(d)
	if err != nil {
		return nil, err
	}
	ex := extractAll(d, cfg.Router)

	n := len(d.Instances)
	res := &Result{
		cfg:    cfg,
		d:      d,
		arrOut: make([]float64, n),
		reqOut: make([]float64, n),
		delay:  make([]float64, n),
		inWire: make([]float64, n),
		pred:   make([]int32, n),
	}
	arrIn := make([]float64, n) // worst arrival at any input pin
	arrMinIn := make([]float64, n)
	arrMinOut := make([]float64, n)
	slewIn := make([]float64, n) // worst input slew
	res.slewOut = make([]float64, n)
	slewOut := res.slewOut
	for i := range arrIn {
		arrIn[i] = 0
		arrMinIn[i] = math.Inf(1)
		slewIn[i] = cfg.InputSlew
		res.pred[i] = -1
		res.reqOut[i] = math.Inf(1)
	}
	// Instances with a port-driven or floating signal input can switch as
	// early as t=0 on the min path.
	for _, inst := range d.Instances {
		for i, pin := range inst.Master.Pins {
			if pin.Dir != cell.DirIn {
				continue
			}
			nn := d.NetAt(inst, i)
			if nn == nil || nn.DriverPort != nil {
				arrMinIn[inst.ID] = 0
				break
			}
		}
	}

	lat := cfg.Latency
	if lat == nil {
		lat = func(*netlist.Instance) float64 { return 0 }
	}

	// ---------- Forward pass: arrivals and slews ----------
	for _, inst := range g.order {
		f := inst.Master.Function
		out := d.OutputNet(inst)

		var load float64
		var rc *route.NetRC
		if out != nil {
			rc = ex.rc[out.ID]
			if rc != nil {
				load = rc.WireCap + out.TotalPinCap()
			} else {
				load = out.TotalPinCap()
			}
		}

		var arr, arrMin, slw float64
		switch {
		case f.IsSequential() || f.IsMacro():
			// Launch: clock latency + CLK→Q (or access) delay.
			d0 := inst.Master.Delay.Lookup(cfg.InputSlew, load)
			s0 := inst.Master.OutSlew.Lookup(cfg.InputSlew, load)
			d0, s0 = res.applyDerates(inst, out, d, d0, s0)
			arr = lat(inst) + d0
			arrMin = arr
			slw = s0
			res.delay[inst.ID] = d0
		default:
			d0 := inst.Master.Delay.Lookup(slewIn[inst.ID], load)
			s0 := inst.Master.OutSlew.Lookup(slewIn[inst.ID], load)
			d0, s0 = res.applyDerates(inst, out, d, d0, s0)
			arr = arrIn[inst.ID] + d0
			am := arrMinIn[inst.ID]
			if math.IsInf(am, 1) {
				am = 0
			}
			arrMin = am + d0
			slw = s0
			res.delay[inst.ID] = d0
		}
		res.arrOut[inst.ID] = arr
		arrMinOut[inst.ID] = arrMin
		slewOut[inst.ID] = slw

		// Push to sinks.
		if out == nil || rc == nil {
			continue
		}
		for i, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				continue
			}
			wd := tech.RCps(rc.SinkR[i], rc.SinkCapShare[i]+s.Spec().Cap)
			a := arr + wd
			sk := s.Inst.ID
			if a > arrIn[sk] {
				arrIn[sk] = a
				res.pred[sk] = int32(inst.ID)
				res.inWire[sk] = wd
			}
			if am := arrMin + wd; am < arrMinIn[sk] {
				arrMinIn[sk] = am
			}
			if sw := slw + wd; sw > slewIn[sk] {
				slewIn[sk] = sw
			}
		}
	}

	// ---------- Endpoint checks and backward required pass ----------
	// Process instances in reverse topological order, accumulating
	// required times through each net.
	for i := len(g.order) - 1; i >= 0; i-- {
		inst := g.order[i]
		out := d.OutputNet(inst)
		if out == nil {
			continue
		}
		rc := ex.rc[out.ID]
		if rc == nil {
			continue
		}
		req := math.Inf(1)
		si := 0
		for _, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				si++
				continue
			}
			wd := tech.RCps(rc.SinkR[si], rc.SinkCapShare[si]+s.Spec().Cap)
			si++
			sk := s.Inst
			var cand float64
			switch {
			case sk.Master.Function.IsSequential() || sk.Master.Function.IsMacro():
				// Setup endpoint at the D/A pin, plus the hold check on
				// the earliest arrival.
				endReq := cfg.Period + lat(sk) - sk.Master.Setup
				arrD := res.arrOut[inst.ID] + wd
				slack := endReq - arrD
				holdSlack := arrMinOut[inst.ID] + wd - lat(sk) - sk.Master.Hold
				res.endSlack = append(res.endSlack, endpoint{inst: sk, from: int32(inst.ID), slack: slack, hold: holdSlack})
				cand = endReq - wd
			default:
				cand = res.reqOut[sk.ID] - res.delay[sk.ID] - wd
			}
			if cand < req {
				req = cand
			}
		}
		for pi, p := range out.SinkPorts {
			// Extract appends ports after every instance sink.
			ri := len(out.Sinks) + pi
			wd := tech.RCps(rc.SinkR[ri], rc.SinkCapShare[ri]+p.Cap)
			arrP := res.arrOut[inst.ID] + wd
			slack := cfg.Period - arrP
			res.endSlack = append(res.endSlack, endpoint{port: p, from: int32(inst.ID), slack: slack, hold: math.Inf(1)})
			if cand := cfg.Period - wd; cand < req {
				req = cand
			}
		}
		if req < res.reqOut[inst.ID] {
			res.reqOut[inst.ID] = req
		}
	}

	// ---------- Summaries ----------
	res.WNS = math.Inf(1)
	res.HoldWNS = math.Inf(1)
	for _, e := range res.endSlack {
		res.Endpoints++
		if e.slack < res.WNS {
			res.WNS = e.slack
		}
		if e.slack < 0 {
			res.FailingEndpoints++
			res.TNS += e.slack
		}
		if e.hold < res.HoldWNS {
			res.HoldWNS = e.hold
		}
		if e.hold < 0 {
			res.FailingHoldEndpoints++
			res.HoldTNS += e.hold
		}
	}
	if res.Endpoints == 0 {
		res.WNS = 0 // unconstrained design
	}
	if math.IsInf(res.HoldWNS, 1) {
		res.HoldWNS = 0 // no registered endpoints
	}
	return res, nil
}

// applyDerates multiplies the boundary-cell derates into a stage's delay
// and slew when hetero analysis is on (Sec. II-B): an output boundary when
// the cell's output net crosses tiers, an input boundary when any input
// net's driver sits on the other tier.
func (res *Result) applyDerates(inst *netlist.Instance, out *netlist.Net, d *netlist.Design, delay, slew float64) (float64, float64) {
	cfg := &res.cfg
	if !cfg.Hetero {
		return delay, slew
	}
	fast := inst.Master.Track == cfg.FastTrack
	der := tech.Unity()
	if out != nil && out.CrossesTiers() {
		der = der.Compose(cfg.Derates.ForOutputBoundary(fast))
	}
	for _, in := range d.InputNets(inst) {
		if in.IsClock {
			continue
		}
		if in.Driver.Valid() && in.Driver.Inst.Tier != inst.Tier {
			der = der.Compose(cfg.Derates.ForInputBoundary(fast))
			break
		}
	}
	return delay * der.Delay, slew * der.Slew
}

// CellSlack returns the worst slack among all paths through the instance
// — the cell-based criticality measure the timing-driven partitioner uses
// ("we visit the cells individually and find the worst slack among the
// paths going through the cell", Sec. III-A1).
func (res *Result) CellSlack(inst *netlist.Instance) float64 {
	s := res.reqOut[inst.ID] - res.arrOut[inst.ID]
	// Endpoint cells: include their own capture check.
	for _, e := range res.endSlack {
		if e.inst == inst && e.slack < s {
			s = e.slack
		}
	}
	if math.IsInf(s, 1) {
		// No constrained fanout (e.g. dangling output): unconstrained.
		return math.Inf(1)
	}
	return s
}

// SlackMap materializes CellSlack for every instance, resolving endpoint
// checks in one pass (CellSlack's per-endpoint scan is fine for single
// queries; flows use this bulk version).
func (res *Result) SlackMap() []float64 {
	out := make([]float64, len(res.d.Instances))
	for i := range out {
		out[i] = res.reqOut[i] - res.arrOut[i]
	}
	for _, e := range res.endSlack {
		if e.inst != nil && e.slack < out[e.inst.ID] {
			out[e.inst.ID] = e.slack
		}
	}
	return out
}

// EffectiveDelay returns clock period − worst slack, the paper's PDP
// denominator metric (negative slack inflates it past the period).
func (res *Result) EffectiveDelay() float64 { return res.cfg.Period - res.WNS }

// ArrivalOut returns the output-pin arrival time of an instance.
func (res *Result) ArrivalOut(inst *netlist.Instance) float64 { return res.arrOut[inst.ID] }

// StageDelay returns the instance's computed cell delay.
func (res *Result) StageDelay(inst *netlist.Instance) float64 { return res.delay[inst.ID] }

// OutputSlew returns the instance's computed output transition time —
// the quantity max-transition DRC fixing acts on.
func (res *Result) OutputSlew(inst *netlist.Instance) float64 { return res.slewOut[inst.ID] }

// WorstEndpoints returns the k endpoints with smallest slack.
func (res *Result) WorstEndpoints(k int) []float64 {
	sl := make([]float64, len(res.endSlack))
	for i, e := range res.endSlack {
		sl[i] = e.slack
	}
	sort.Float64s(sl)
	if k > len(sl) {
		k = len(sl)
	}
	return sl[:k]
}
