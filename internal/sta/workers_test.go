package sta

import (
	"math/rand"
	"testing"

	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/tech"
)

// TestAnalyzeWorkersEquivalence pins the parallel full pass's determinism
// contract: an analysis at any Config.Workers value is bit-identical to
// the serial one — summaries, every per-instance array, the endpoint
// table, slack maps, and critical paths. Run with -race this also proves
// the level schedule has no conflicting accesses.
func TestAnalyzeWorkersEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := randomDAG(t, seed)
		rng := rand.New(rand.NewSource(seed * 3))
		for _, inst := range d.Instances {
			if rng.Intn(3) == 0 {
				inst.Tier = tech.TierTop
			}
		}
		cfg := DefaultConfig(0.7)
		if seed%2 == 1 {
			cfg.Hetero = true
		}
		serial, err := Analyze(d, cfg)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, w := range []int{2, 8} {
			pcfg := cfg
			pcfg.Workers = w
			got, err := Analyze(d, pcfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			requireEqualResults(t, "dag"+itoa(int(seed))+"/w"+itoa(w), d, got, serial)
		}
	}
}

// TestAnalyzeWorkersEquivalenceGenerated runs the same property on a
// generated benchmark (deeper levels, wider fan-out, shared cache), with
// the extraction served through a route.Cache so the parallel fan-out
// exercises the singleflight fill path.
func TestAnalyzeWorkersEquivalenceGenerated(t *testing.T) {
	d, err := designs.Generate(designs.AES, lib12, designs.Params{Scale: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for _, inst := range d.Instances {
		inst.Loc = geom.Pt(rng.Float64()*80, rng.Float64()*80)
	}
	cfg := DefaultConfig(0.8)
	serial, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Workers = 8
	pcfg.Router = route.NewCache(route.New(), d)
	got, err := Analyze(d, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "aes/w8", d, got, serial)
}

// TestTimerWorkersStatsScheduleIndependent pins that the parallel-fanout
// counters count scheduled work: identical at any worker count, so they
// can surface in deterministic flow outputs.
func TestTimerWorkersStatsScheduleIndependent(t *testing.T) {
	stats := func(workers int) TimerStats {
		d := randomDAG(t, 21)
		cfg := DefaultConfig(0.7)
		cfg.Workers = workers
		tm, err := NewTimer(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tm.Close()
		if _, err := tm.Update(); err != nil {
			t.Fatal(err)
		}
		return tm.Stats()
	}
	s1, s8 := stats(1), stats(8)
	if s1 != s8 {
		t.Fatalf("timer stats differ across worker counts: %+v vs %+v", s1, s8)
	}
	if s1.ParBatches == 0 || s1.ParTasks == 0 {
		t.Fatalf("full update recorded no fan-outs: %+v", s1)
	}
}
