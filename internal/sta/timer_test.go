package sta

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// requireEqualResults asserts got (a Timer's retained result) matches want
// (a fresh full analysis) bit for bit: summaries, every per-instance
// array, the endpoint table, the slack map, and the worst paths.
func requireEqualResults(t *testing.T, tag string, d *netlist.Design, got, want *Result) {
	t.Helper()
	fail := func(format string, args ...interface{}) {
		t.Helper()
		t.Fatalf("%s: "+format, append([]interface{}{tag}, args...)...)
	}
	if got.WNS != want.WNS || got.TNS != want.TNS {
		fail("WNS/TNS = %v/%v, want %v/%v", got.WNS, got.TNS, want.WNS, want.TNS)
	}
	if got.HoldWNS != want.HoldWNS || got.HoldTNS != want.HoldTNS {
		fail("hold WNS/TNS = %v/%v, want %v/%v", got.HoldWNS, got.HoldTNS, want.HoldWNS, want.HoldTNS)
	}
	if got.Endpoints != want.Endpoints || got.FailingEndpoints != want.FailingEndpoints ||
		got.FailingHoldEndpoints != want.FailingHoldEndpoints {
		fail("endpoint counts = %d/%d/%d, want %d/%d/%d",
			got.Endpoints, got.FailingEndpoints, got.FailingHoldEndpoints,
			want.Endpoints, want.FailingEndpoints, want.FailingHoldEndpoints)
	}
	for _, inst := range d.Instances {
		id := inst.ID
		if got.arrOut[id] != want.arrOut[id] {
			fail("arrOut[%s] = %v, want %v", inst.Name, got.arrOut[id], want.arrOut[id])
		}
		if got.reqOut[id] != want.reqOut[id] {
			fail("reqOut[%s] = %v, want %v", inst.Name, got.reqOut[id], want.reqOut[id])
		}
		if got.delay[id] != want.delay[id] {
			fail("delay[%s] = %v, want %v", inst.Name, got.delay[id], want.delay[id])
		}
		if got.slewOut[id] != want.slewOut[id] {
			fail("slewOut[%s] = %v, want %v", inst.Name, got.slewOut[id], want.slewOut[id])
		}
		if got.inWire[id] != want.inWire[id] {
			fail("inWire[%s] = %v, want %v", inst.Name, got.inWire[id], want.inWire[id])
		}
		if got.pred[id] != want.pred[id] {
			fail("pred[%s] = %d, want %d", inst.Name, got.pred[id], want.pred[id])
		}
	}
	if len(got.endSlack) != len(want.endSlack) {
		fail("endpoint table length %d, want %d", len(got.endSlack), len(want.endSlack))
	}
	for i := range got.endSlack {
		g, w := got.endSlack[i], want.endSlack[i]
		if g != w {
			fail("endSlack[%d] = %+v, want %+v", i, g, w)
		}
	}
	gm, wm := got.SlackMap(), want.SlackMap()
	for i := range gm {
		if gm[i] != wm[i] {
			fail("SlackMap[%d] = %v, want %v", i, gm[i], wm[i])
		}
	}
	gp, wp := got.CriticalPaths(3), want.CriticalPaths(3)
	if len(gp) != len(wp) {
		fail("CriticalPaths count %d, want %d", len(gp), len(wp))
	}
	for i := range gp {
		if gp[i].Slack != wp[i].Slack || gp[i].Endpoint != wp[i].Endpoint {
			fail("path %d head = (%v,%v), want (%v,%v)", i, gp[i].Slack, gp[i].Endpoint, wp[i].Slack, wp[i].Endpoint)
		}
		if len(gp[i].Stages) != len(wp[i].Stages) {
			fail("path %d has %d stages, want %d", i, len(gp[i].Stages), len(wp[i].Stages))
		}
		for j := range gp[i].Stages {
			gs, ws := gp[i].Stages[j], wp[i].Stages[j]
			if gs.Inst != ws.Inst || gs.CellDelay != ws.CellDelay || gs.WireDelay != ws.WireDelay {
				fail("path %d stage %d = %+v, want %+v", i, j, gs, ws)
			}
		}
	}
}

// mutate applies one random journaled edit to the design. bufN names
// inserted buffers uniquely across calls.
func mutate(t *testing.T, d *netlist.Design, rng *rand.Rand, bufN *int) {
	t.Helper()
	switch rng.Intn(5) {
	case 0: // upsize a combinational cell
		for tries := 0; tries < 10; tries++ {
			inst := d.Instances[rng.Intn(len(d.Instances))]
			if inst.Master.Function.IsSequential() || inst.Master.Function.IsMacro() {
				continue
			}
			if up := lib12.NextDriveUp(inst.Master); up != nil {
				if err := d.ReplaceMaster(inst, up); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
	case 1: // downsize back to the weakest drive
		inst := d.Instances[rng.Intn(len(d.Instances))]
		if m := lib12.Smallest(inst.Master.Function); m != nil && m != inst.Master {
			if err := d.ReplaceMaster(inst, m); err != nil {
				t.Fatal(err)
			}
		}
	case 2: // placement move
		inst := d.Instances[rng.Intn(len(d.Instances))]
		inst.SetLoc(geom.Pt(rng.Float64()*60, rng.Float64()*40))
	case 3: // tier flip
		inst := d.Instances[rng.Intn(len(d.Instances))]
		inst.SetTier(inst.Tier.Other())
	case 4: // buffer insertion: structural, forces the exact fallback
		for tries := 0; tries < 10; tries++ {
			n := d.Nets[rng.Intn(len(d.Nets))]
			if n.IsClock || len(n.Sinks) == 0 {
				continue
			}
			moved := append([]netlist.PinRef{}, n.Sinks[:(len(n.Sinks)+1)/2]...)
			*bufN++
			if _, _, err := d.InsertBuffer(n, moved, lib12.Smallest(cell.FuncBuf), "tb"+itoa(*bufN)); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
}

// runEquivalence drives a Timer (with a journal-keyed RC cache) through a
// mutation sequence, checking after every edit that its retained result is
// bit-identical to a fresh full Analyze using an uncached router — so a
// stale cache entry or a missed invalidation shows up as a mismatch.
func runEquivalence(t *testing.T, tag string, d *netlist.Design, cfg Config, mk func() route.Extractor, rng *rand.Rand, steps int) {
	t.Helper()
	tcfg := cfg
	tcfg.Router = route.NewCache(mk(), d)
	tm, err := NewTimer(d, tcfg)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	defer tm.Close()

	fcfg := cfg
	fcfg.Router = mk()

	bufN := 0
	for step := 0; step <= steps; step++ {
		if step > 0 {
			mutate(t, d, rng, &bufN)
		}
		got, err := tm.Update()
		if err != nil {
			t.Fatalf("%s step %d: timer: %v", tag, step, err)
		}
		want, err := Analyze(d, fcfg)
		if err != nil {
			t.Fatalf("%s step %d: fresh: %v", tag, step, err)
		}
		requireEqualResults(t, tag+"/step"+itoa(step), d, got, want)
	}
}

// TestTimerEquivalenceRandomDAGs fuzzes the incremental engine across many
// random topologies, with geometric extraction, ideal and non-ideal use of
// tiers, and the hetero derate path.
func TestTimerEquivalenceRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		d := randomDAG(t, seed)
		rng := rand.New(rand.NewSource(seed * 7))
		// Scatter tiers before the session starts so cross-tier derates and
		// MIV resistances are live from the first update.
		for _, inst := range d.Instances {
			if rng.Intn(3) == 0 {
				inst.Tier = tech.TierTop
			}
		}
		cfg := DefaultConfig(0.7)
		if seed%2 == 1 {
			cfg.Hetero = true
		}
		runEquivalence(t, "dag"+itoa(int(seed)), d, cfg, func() route.Extractor { return route.New() }, rng, 10)
	}
}

// TestTimerEquivalenceWLM covers the wireload-model extraction used by the
// pre-placement sizing loop.
func TestTimerEquivalenceWLM(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		d := randomDAG(t, seed)
		rng := rand.New(rand.NewSource(seed))
		mk := func() route.Extractor {
			r := route.New()
			r.WLMPerSinkFF = 2.5
			return r
		}
		runEquivalence(t, "wlm"+itoa(int(seed)), d, DefaultConfig(0.9), mk, rng, 8)
	}
}

// TestTimerEquivalenceGeneratedDesigns runs the property on AES and LDPC
// scaled benchmarks — large enough that single-cell edits stay far below
// the full-recompute threshold, so the incremental frontier path is what
// gets exercised.
func TestTimerEquivalenceGeneratedDesigns(t *testing.T) {
	for _, name := range []designs.Name{designs.AES, designs.LDPC} {
		d, err := designs.Generate(name, lib12, designs.Params{Scale: 0.04, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for _, inst := range d.Instances {
			inst.Loc = geom.Pt(rng.Float64()*80, rng.Float64()*80)
		}
		runEquivalence(t, string(name), d, DefaultConfig(0.8), func() route.Extractor { return route.New() }, rng, 12)
	}
}

// TestTimerStats pins down which update kinds the engine chooses: full on
// the first pass and after structural edits, incremental for local moves,
// and full always under ForceFull.
func TestTimerStats(t *testing.T) {
	d := randomDAG(t, 42)
	tm, err := NewTimer(d, DefaultConfig(0.7))
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()

	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}
	if s := tm.Stats(); s.FullUpdates != 1 || s.IncrementalUpdates != 0 {
		t.Fatalf("first update stats = %+v, want one full", s)
	}
	nodes := tm.Stats().NodesReevaluated
	if nodes != int64(len(d.Instances)) {
		t.Errorf("full update re-evaluated %d nodes, want %d", nodes, len(d.Instances))
	}

	// One placement move: incremental, touching fewer nodes than a full
	// pass would.
	var comb *netlist.Instance
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsSequential() {
			comb = inst
			break
		}
	}
	comb.SetLoc(geom.Pt(3, 3))
	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}
	if s := tm.Stats(); s.IncrementalUpdates != 1 {
		t.Fatalf("after move stats = %+v, want one incremental", s)
	}

	// A buffer insertion is structural: exact fallback to full.
	n := d.OutputNet(comb)
	if _, _, err := d.InsertBuffer(n, append([]netlist.PinRef{}, n.Sinks...), lib12.Smallest(cell.FuncBuf), "sb"); err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}
	if s := tm.Stats(); s.FullUpdates != 2 {
		t.Fatalf("after insert stats = %+v, want a second full", s)
	}

	// ForceFull pins every update to the full path.
	cfg := DefaultConfig(0.7)
	cfg.ForceFull = true
	tf, err := NewTimer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if _, err := tf.Update(); err != nil {
		t.Fatal(err)
	}
	comb.SetLoc(geom.Pt(4, 4))
	if _, err := tf.Update(); err != nil {
		t.Fatal(err)
	}
	if s := tf.Stats(); s.FullUpdates != 2 || s.IncrementalUpdates != 0 {
		t.Fatalf("ForceFull stats = %+v, want two fulls", s)
	}
}

// TestTimerSharedCacheWithPower checks the intended wiring: one cache
// serving both the timing session and power analysis, staying warm across
// a resize and re-extracting after a move.
func TestTimerSharedCacheWithPower(t *testing.T) {
	d := randomDAG(t, 7)
	cache := route.NewCache(route.New(), d)
	cfg := DefaultConfig(0.7)
	cfg.Router = cache
	tm, err := NewTimer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}
	m0 := cache.Stats().Misses

	var comb *netlist.Instance
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsSequential() {
			comb = inst
			break
		}
	}
	if up := lib12.NextDriveUp(comb.Master); up != nil {
		if err := d.ReplaceMaster(comb, up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != m0 {
		t.Errorf("resize caused %d extra extractions", got-m0)
	}
	comb.SetLoc(geom.Pt(9, 9))
	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got == m0 {
		t.Errorf("move did not re-extract")
	}
}
