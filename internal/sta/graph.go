// Package sta implements graph-based static timing analysis over a placed
// and extracted design: NLDM delay/slew lookup, Elmore wire delays, slew
// propagation, setup checks against a clock with per-register latency,
// WNS/TNS, per-cell worst slack (the criticality metric feeding the
// timing-based partitioner), and K-worst critical path extraction.
//
// Heterogeneous 3-D designs get the paper's boundary-cell derates
// (Tables II/III) applied to any cell whose input or output nets cross
// tiers.
package sta

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/dense"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/route"
)

// node indices: one timing node per instance (its output pin). Ports and
// register D-pins are handled as graph sources/endpoints rather than
// separate nodes.

// graph is the levelized combinational view of a design. rebuild reuses
// the order/count storage, so a persistent Timer re-levelizing after a
// structural edit allocates nothing once warm.
type graph struct {
	d *netlist.Design
	// order lists combinational instances in topological order.
	order []*netlist.Instance
	// fanin[id] lists the driving instances of instance id's inputs
	// (excluding clock pins and port-driven inputs).
	faninCount []int
	remaining  []int
}

// buildGraph levelizes the combinational portion of the design.
func buildGraph(d *netlist.Design) (*graph, error) {
	g := &graph{}
	if err := g.rebuild(d); err != nil {
		return nil, err
	}
	return g, nil
}

// rebuild levelizes d into g, reusing g's storage. Sequential cells and
// macros are timing sources (their outputs launch) and sinks (their D
// inputs capture); combinational loops are an error.
func (g *graph) rebuild(d *netlist.Design) error {
	g.d = d
	conn := d.Conn()
	g.faninCount = dense.Zero(g.faninCount, len(d.Instances))

	isSource := func(inst *netlist.Instance) bool {
		f := inst.Master.Function
		return f.IsSequential() || f.IsMacro()
	}

	// Count combinational fanins per instance.
	for _, inst := range d.Instances {
		if isSource(inst) {
			continue // sources enter the order immediately
		}
		for i, p := range inst.Master.Pins {
			if p.Dir != cell.DirIn {
				continue
			}
			n := d.NetAt(inst, i)
			if n == nil || !n.Driver.Valid() {
				continue // port-driven or floating
			}
			if !isSource(n.Driver.Inst) {
				g.faninCount[inst.ID]++
			}
		}
	}

	// Kahn's algorithm: sources first, then zero-fanin combinational.
	// g.order doubles as the FIFO queue — every queued instance lands in
	// the order exactly once, in pop order, so a read cursor over the
	// growing slice is the queue.
	g.remaining = dense.Grow(g.remaining, len(d.Instances))
	copy(g.remaining, g.faninCount)
	g.order = g.order[:0]
	for _, inst := range d.Instances {
		if isSource(inst) || g.remaining[inst.ID] == 0 {
			g.order = append(g.order, inst)
		}
	}
	for qi := 0; qi < len(g.order); qi++ {
		inst := g.order[qi]
		out := conn.OutputNet(inst)
		if out == nil {
			continue
		}
		for _, s := range out.Sinks {
			sk := s.Inst
			if isSource(sk) || s.Spec().Dir == cell.DirClk {
				continue
			}
			g.remaining[sk.ID]--
			if g.remaining[sk.ID] == 0 {
				g.order = append(g.order, sk)
			}
		}
	}
	if len(g.order) != len(d.Instances) {
		return fmt.Errorf("sta: combinational cycle detected (%d of %d instances levelized)",
			len(g.order), len(d.Instances))
	}
	return nil
}

// TopoOrder returns the design's instances levelized source-first:
// sequential cells and macros lead, then combinational cells in
// dependency order. Power analysis reuses this for activity propagation.
func TopoOrder(d *netlist.Design) ([]*netlist.Instance, error) {
	g, err := buildGraph(d)
	if err != nil {
		return nil, err
	}
	return g.order, nil
}

// extraction caches per-net RC data for one analysis run.
type extraction struct {
	rc []*route.NetRC // by net ID
}

// extractAll extracts every non-clock net, fanning out per net when
// workers > 1. Each net writes only its own rc slot, so the result is
// identical at any worker count; r must be safe for concurrent Extract
// (Router is pure, Cache is singleflight).
func extractAll(d *netlist.Design, r route.Extractor, workers int) *extraction {
	ex := &extraction{rc: make([]*route.NetRC, len(d.Nets))}
	par.ParallelFor(workers, len(d.Nets), func(i int) {
		n := d.Nets[i]
		if n.IsClock {
			return // clock timing comes from the CTS latency model
		}
		ex.rc[n.ID] = r.Extract(n) //poolescape:ignore reference table keeps extractor-owned results for its whole (test-scoped) lifetime
	})
	return ex
}
