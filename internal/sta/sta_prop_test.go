package sta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// randomDAG builds a random register-bounded combinational DAG: layers of
// gates with connections only to earlier layers, launch/capture FFs at
// the edges.
func randomDAG(t testing.TB, seed int64) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("dag")
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}

	// Launch registers.
	nLaunch := 2 + rng.Intn(4)
	var nets []*netlist.Net
	for i := 0; i < nLaunch; i++ {
		in, _ := d.AddNet("pi" + itoa(i))
		if _, err := d.AddPort("pi"+itoa(i), cell.DirIn, in); err != nil {
			t.Fatal(err)
		}
		ff, _ := d.AddInstance("lff"+itoa(i), lib12.Smallest(cell.FuncDFF))
		ff.Loc = geom.Pt(0, float64(i)*3)
		if err := d.Connect(ff, "D", in); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(ff, "CK", clk); err != nil {
			t.Fatal(err)
		}
		q, _ := d.AddNet("lq" + itoa(i))
		if err := d.Connect(ff, "Q", q); err != nil {
			t.Fatal(err)
		}
		nets = append(nets, q)
	}

	// Gate layers.
	gates := []cell.Function{cell.FuncInv, cell.FuncNand2, cell.FuncXor2, cell.FuncAoi21}
	nGates := 5 + rng.Intn(30)
	for g := 0; g < nGates; g++ {
		fn := gates[rng.Intn(len(gates))]
		m := lib12.Smallest(fn)
		inst, _ := d.AddInstance("g"+itoa(g), m)
		inst.Loc = geom.Pt(float64(g%7)*4+4, float64(g/7)*3)
		for _, p := range m.Pins {
			if p.Dir != cell.DirIn {
				continue
			}
			if err := d.Connect(inst, p.Name, nets[rng.Intn(len(nets))]); err != nil {
				t.Fatal(err)
			}
		}
		o, _ := d.AddNet("go" + itoa(g))
		if err := d.Connect(inst, m.OutputPin(), o); err != nil {
			t.Fatal(err)
		}
		nets = append(nets, o)
	}

	// Capture register on the last net.
	ff, _ := d.AddInstance("cff", lib12.Smallest(cell.FuncDFF))
	ff.Loc = geom.Pt(40, 0)
	if err := d.Connect(ff, "D", nets[len(nets)-1]); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "CK", clk); err != nil {
		t.Fatal(err)
	}
	q, _ := d.AddNet("cq")
	if err := d.Connect(ff, "Q", q); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out", cell.DirOut, q); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// Property: on random DAGs, analysis succeeds; every cell's arrival is at
// least its stage delay; WNS equals the minimum endpoint slack; and the
// worst extracted path's slack equals WNS.
func TestAnalyzeRandomDAGInvariants(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(t, seed)
		res, err := Analyze(d, DefaultConfig(0.7))
		if err != nil {
			return false
		}
		for _, inst := range d.Instances {
			if res.ArrivalOut(inst) < res.StageDelay(inst)-1e-9 {
				return false
			}
			if res.StageDelay(inst) <= 0 {
				return false
			}
			if res.OutputSlew(inst) <= 0 {
				return false
			}
		}
		paths := res.CriticalPaths(1)
		if len(paths) == 0 {
			return false
		}
		if paths[0].Slack != res.WNS {
			return false
		}
		// Worst endpoints list agrees with WNS.
		w := res.WorstEndpoints(1)
		return len(w) == 1 && w[0] == res.WNS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a longer clock period never reduces slack (monotonicity of
// setup checks in the period).
func TestAnalyzePeriodMonotone(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(t, seed)
		r1, err := Analyze(d, DefaultConfig(0.5))
		if err != nil {
			return false
		}
		r2, err := Analyze(d, DefaultConfig(1.0))
		if err != nil {
			return false
		}
		// Period 2 ns vs 1 ns: every endpoint gains exactly the period
		// difference, so WNS must rise by it.
		return r2.WNS+1e-9 >= r1.WNS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: upsizing any single combinational cell never makes the
// design's WNS dramatically worse (the bounded-impact sanity of sizing:
// small input-cap increase vs drive improvement). We assert a loose bound
// rather than strict monotonicity, which sizing does not guarantee.
func TestAnalyzeUpsizeBoundedImpact(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(t, seed)
		res, err := Analyze(d, DefaultConfig(0.7))
		if err != nil {
			return false
		}
		// Upsize the first upsizable gate.
		for _, inst := range d.Instances {
			if inst.Master.Function.IsSequential() {
				continue
			}
			up := lib12.NextDriveUp(inst.Master)
			if up == nil {
				continue
			}
			if err := d.ReplaceMaster(inst, up); err != nil {
				return false
			}
			break
		}
		res2, err := Analyze(d, DefaultConfig(0.7))
		if err != nil {
			return false
		}
		return res2.WNS > res.WNS-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hold and setup slacks are consistent — an endpoint cannot
// fail hold on a min path longer than the period (that would mean the
// min path exceeds the max path).
func TestHoldSetupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(t, seed)
		res, err := Analyze(d, DefaultConfig(0.7))
		if err != nil {
			return false
		}
		// min-path arrival ≤ max-path arrival implies:
		// holdSlack + hold = arrMin ≤ arrMax = period + lat − setup − slack
		// With ideal clock (lat 0), holdSlack ≤ period − slack − setup + hold.
		period := 1 / 0.7
		return res.HoldWNS <= period-res.WNS+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
