package sta

import (
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/dense"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/tech"
)

// ErrDiverged reports that the incremental engine's retained view no
// longer matches ground truth — a corrupted extraction cache, a rewound
// journal, or any other silent-wrong-data condition an audit caught.
// The flow's degradation path reacts by invalidating caches, forcing
// full-STA recomputes, and re-running the stage.
var ErrDiverged = fmt.Errorf("sta: incremental engine diverged from ground truth")

// TimerStats counts engine work for the observability report.
type TimerStats struct {
	// FullUpdates and IncrementalUpdates count Update calls by kind.
	FullUpdates, IncrementalUpdates int64
	// NodesReevaluated totals per-instance forward recomputations across
	// all updates (a full update counts every instance).
	NodesReevaluated int64
	// ParBatches and ParTasks count the full pass's parallel fan-outs
	// (extraction, forward levels, pred replay, backward levels) and the
	// work items they dispatched. Both count scheduled work, so they are
	// identical at any Config.Workers value.
	ParBatches, ParTasks int64
}

// faninEdge is one timing arc into an instance: driver, the net carrying
// it, and the sink's index on that net (which is also its index into the
// extraction's SinkR/SinkCapShare arrays).
type faninEdge struct {
	drv int32
	net *netlist.Net
	idx int32
}

// Timer is a persistent incremental timing session over one design. It
// observes the design's change journal: master swaps, placement moves and
// tier changes re-propagate only from the affected cells outward, while
// structural edits (buffer insertion, reconnection) fall back to an exact
// full recompute. Every Update leaves the retained Result in the state a
// fresh Analyze would produce — bit for bit, including tie-breaks.
//
// A Timer belongs to one flow and is not safe for concurrent use. Call
// Close when done to detach it from the design's journal.
type Timer struct {
	d   *netlist.Design
	cfg Config
	res *Result
	lat func(*netlist.Instance) float64

	g       *graph
	topoRev uint64
	rc      []*route.NetRC // by net ID, refreshed as the journal dictates
	rec     *route.Cache   // recycling guard when Router is a Cache
	pooled  bool           // Router is a bare *route.Router (pool-backed)
	pos     []int32        // instance ID → topological position
	minZero []bool         // instance has a port-driven or floating input
	// fanin holds every instance's timing arcs (rows by instance ID) in
	// global push order, as one flat CSR payload.
	fanin dense.CSR[faninEdge]
	// endStart/endCount locate each driver's endpoint entries inside
	// res.endSlack so incremental updates can rewrite them in place.
	endStart, endCount []int32
	// flev/blev group topological positions into dependency levels of
	// the position-gated forward and backward sweeps: nodes within a
	// level are mutually independent, so the full pass runs each level
	// as one parallel fan-out over the level's flat row. Rebuilt with
	// the graph (purely structural), keyed on topoRev like fanin.
	flev, blev dense.CSR[int32]
	lvl        []int32 // per-instance level, buildLevels scratch
	// endScratch holds each driver's endpoint entries from the parallel
	// backward sweep until the sequential assembly appends them to
	// res.endSlack in the reference order. Indexed by instance ID.
	endScratch [][]endpoint

	// Forward-pass state the push model accumulates at input pins. Kept
	// outside Result: only combinational instances' entries carry meaning.
	arrIn, arrMinIn, slewIn, arrMinOut []float64

	// Per-Update work-set buffers, reused across calls.
	seedMarked          []bool
	seeds               []int32
	dirty, inB, predFix []bool
	incScratch          []endpoint

	fresh      bool // no update has run yet
	structural bool // a ChangeStructure arrived since the last update
	overflow   bool // too many journal entries to bother being selective
	changes    []netlist.Change
	stats      TimerStats
}

// NewTimer validates and defaults cfg exactly like Analyze, attaches to
// the design's change journal, and returns a session whose first Update
// performs a full analysis.
func NewTimer(d *netlist.Design, cfg Config) (*Timer, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("sta: period %v must be positive", cfg.Period)
	}
	if cfg.Router == nil {
		cfg.Router = route.New()
	}
	if cfg.InputSlew <= 0 {
		cfg.InputSlew = 0.02
	}
	if cfg.Hetero && cfg.Derates == (tech.DerateModel{}) {
		cfg.Derates = tech.DefaultDerates()
	}
	if cfg.FastTrack == 0 {
		cfg.FastTrack = tech.Track12
	}
	lat := cfg.Latency
	if lat == nil {
		lat = func(*netlist.Instance) float64 { return 0 }
	}
	t := &Timer{
		d:     d,
		cfg:   cfg,
		res:   &Result{cfg: cfg, d: d},
		lat:   lat,
		fresh: true,
	}
	t.rec, _ = cfg.Router.(*route.Cache)
	_, t.pooled = cfg.Router.(*route.Router)
	d.Observe(t)
	return t, nil
}

// DesignChanged implements netlist.Observer.
func (t *Timer) DesignChanged(c netlist.Change) {
	if c.Kind == netlist.ChangeStructure {
		t.structural = true
		t.changes = t.changes[:0]
		return
	}
	if t.structural || t.overflow {
		return
	}
	if len(t.changes) > len(t.d.Instances) {
		// More journal entries than instances: a full pass is cheaper than
		// bookkeeping, so stop recording.
		t.overflow = true
		t.changes = t.changes[:0]
		return
	}
	t.changes = append(t.changes, c)
}

// Close detaches the timer from the design's journal. The retained Result
// stays readable but no longer tracks the design.
func (t *Timer) Close() {
	if t.d != nil {
		t.d.Unobserve(t)
	}
}

// Stats returns cumulative engine counters.
func (t *Timer) Stats() TimerStats { return t.stats }

// Result returns the retained result of the last Update (zero-valued
// before the first).
func (t *Timer) Result() *Result { return t.res }

// Update brings the retained Result up to date with the design and
// returns it. Pure master/placement/tier changes re-propagate from the
// dirty frontier; anything structural — or a frontier so wide that
// selectivity stops paying — recomputes from scratch. Either way the
// result is exactly what a fresh Analyze would report.
func (t *Timer) Update() (*Result, error) {
	full := t.fresh || t.structural || t.overflow || t.cfg.ForceFull ||
		t.topoRev != t.d.TopoRev()
	done := false
	if !full {
		seeds := t.resolveSeeds()
		// Past half the design, frontier bookkeeping costs more than it
		// saves.
		if len(seeds)*2 > len(t.d.Instances) {
			full = true
		} else {
			done = t.incremental(seeds)
		}
	}
	if !done {
		if err := t.fullUpdate(); err != nil {
			return nil, err
		}
	}
	t.changes = t.changes[:0]
	t.structural, t.overflow, t.fresh = false, false, false
	t.summarize()
	return t.res, nil
}

func timingSource(inst *netlist.Instance) bool {
	f := inst.Master.Function
	return f.IsSequential() || f.IsMacro()
}

// resolveSeeds turns the recorded journal entries into the set of
// instances whose forward state must be recomputed, and refreshes the
// extraction of every net a move touched. The seed set is deliberately a
// superset: the changed instance plus every driver and sink of each of
// its nets — that covers load changes at drivers, wire-delay changes at
// sibling sinks, and the derate dependencies that reach one net away in
// both directions.
func (t *Timer) resolveSeeds() []int32 {
	t.seedMarked = dense.Zero(t.seedMarked, len(t.d.Instances))
	marked := t.seedMarked
	seeds := t.seeds[:0]
	add := func(id int) {
		if !marked[id] {
			marked[id] = true
			seeds = append(seeds, int32(id))
		}
	}
	for _, c := range t.changes {
		inst := c.Inst
		add(inst.ID)
		moved := c.Kind == netlist.ChangeLoc || c.Kind == netlist.ChangeTier
		for pi := range inst.Master.Pins {
			n := t.d.NetAt(inst, pi)
			if n == nil {
				continue
			}
			if n.Driver.Valid() {
				add(n.Driver.Inst.ID)
			}
			for _, s := range n.Sinks {
				add(s.Inst.ID)
			}
			if moved && !n.IsClock && n.ID < len(t.rc) {
				old := t.rc[n.ID]
				t.rc[n.ID] = t.cfg.Router.Extract(n) //poolescape:ignore timer rc table is the audited epoch store; recycle() below retires the old shell
				t.recycle(n, old)
			}
		}
	}
	t.seeds = seeds
	return seeds
}

// recycle returns a replaced extraction to the route free list. The
// timer owns the pointers it holds in t.rc once it has replaced them —
// nothing else retains a per-net RC across calls — but when the
// extractor is a Cache the entry (or an in-flight fill) may still hold
// the same pointer, so the guarded Cache.Recycle decides there. Unknown
// extractor implementations (which may return shared storage) are never
// recycled.
func (t *Timer) recycle(n *netlist.Net, old *route.NetRC) {
	if old == nil || old == t.rc[n.ID] {
		return
	}
	if t.rec != nil {
		t.rec.Recycle(n, old)
	} else if t.pooled {
		route.RecycleRC(old)
	}
}

// fullUpdate recomputes everything: graph (when the topology revision
// moved), extraction, forward arrivals, and the backward required pass.
// This is the reference computation — Analyze is exactly one of these.
//
// With Config.Workers > 1 the expensive phases fan out without changing
// a single bit of the result: extraction is per-net independent; the
// forward sweep runs level-by-level over flevels, where a node's
// replayEffective reads only strictly-earlier-position drivers (all in
// lower levels, final) and computeNode writes only the node's own
// slots; the pred replay runs after every arrival is final, per node;
// the backward sweep runs level-by-level over blevels with each
// driver's endpoint entries parked in endScratch, then a sequential
// assembly appends them to res.endSlack in exactly the reference
// (reverse-position) order.
func (t *Timer) fullUpdate() error {
	d := t.d
	if t.g == nil || t.topoRev != d.TopoRev() {
		if t.g == nil {
			t.g = &graph{}
		}
		if err := t.g.rebuild(d); err != nil {
			return err
		}
		t.topoRev = d.TopoRev()
		t.pos = dense.Grow(t.pos, len(d.Instances))
		for p, inst := range t.g.order {
			t.pos[inst.ID] = int32(p)
		}
		t.buildFanin()
		t.buildLevels()
	}
	workers := t.cfg.Workers
	// Extract in place over the retained per-net slots, handing each
	// replaced extraction back to the route free list. Each net touches
	// only its own slot, so the fan-out stays deterministic.
	nNets := len(d.Nets)
	if cap(t.rc) < nNets {
		grown := make([]*route.NetRC, nNets)
		copy(grown, t.rc)
		t.rc = grown
	} else {
		t.rc = t.rc[:nNets]
	}
	par.ParallelFor(workers, nNets, func(i int) {
		n := d.Nets[i]
		old := t.rc[i]
		if n.IsClock {
			t.rc[i] = nil // clock timing comes from the CTS latency model
		} else {
			t.rc[i] = t.cfg.Router.Extract(n) //poolescape:ignore timer rc table is the audited epoch store; recycle() below retires the old shell
		}
		t.recycle(n, old)
	})
	t.noteFanout(nNets)

	n := len(d.Instances)
	res := t.res
	if len(res.arrOut) != n {
		res.arrOut = dense.Grow(res.arrOut, n)
		res.reqOut = dense.Grow(res.reqOut, n)
		res.delay = dense.Grow(res.delay, n)
		res.slewOut = dense.Grow(res.slewOut, n)
		res.inWire = dense.Grow(res.inWire, n)
		res.pred = dense.Grow(res.pred, n)
		t.arrIn = dense.Grow(t.arrIn, n)
		t.arrMinIn = dense.Grow(t.arrMinIn, n)
		t.slewIn = dense.Grow(t.slewIn, n)
		t.arrMinOut = dense.Grow(t.arrMinOut, n)
		t.minZero = dense.Grow(t.minZero, n)
		t.endStart = dense.Grow(t.endStart, n)
		t.endCount = dense.Grow(t.endCount, n)
	}
	res.endSlack = res.endSlack[:0]
	for i := 0; i < n; i++ {
		t.arrIn[i] = 0
		t.arrMinIn[i] = math.Inf(1)
		t.slewIn[i] = t.cfg.InputSlew
		res.pred[i] = -1
		res.inWire[i] = 0
		res.reqOut[i] = math.Inf(1)
		t.minZero[i] = false
		t.endStart[i] = 0
		t.endCount[i] = 0
	}
	// Instances with a port-driven or floating signal input can switch as
	// early as t=0 on the min path.
	for _, inst := range d.Instances {
		for i, pin := range inst.Master.Pins {
			if pin.Dir != cell.DirIn {
				continue
			}
			nn := d.NetAt(inst, i)
			if nn == nil || nn.DriverPort != nil {
				t.minZero[inst.ID] = true
				t.arrMinIn[inst.ID] = 0
				break
			}
		}
	}

	// ---------- Forward pass: arrivals and slews ----------
	// Levels run in order; nodes within a level are independent (their
	// landed fanin arcs all come from lower levels) and write only their
	// own index-addressed state.
	for lv := 0; lv < t.flev.Rows(); lv++ {
		level := t.flev.Row(int32(lv))
		par.ParallelFor(workers, len(level), func(k int) {
			inst := t.g.order[level[k]]
			if !timingSource(inst) {
				t.replayEffective(inst)
			}
			t.computeNode(inst)
		})
		t.noteFanout(len(level))
	}
	// Pred bookkeeping scans every fanin arc against final arrivals —
	// all reads, one own-slot write, so the whole order fans out at once.
	par.ParallelFor(workers, len(t.g.order), func(i int) {
		if inst := t.g.order[i]; !timingSource(inst) {
			t.replayPred(inst)
		}
	})
	t.noteFanout(len(t.g.order))

	// ---------- Endpoint checks and backward required pass ----------
	// Backward levels: a driver's required time depends only on
	// later-position combinational sinks that themselves run the
	// backward computation — all in lower backward levels, final when
	// the driver computes. Endpoint entries park in per-driver scratch.
	if len(t.endScratch) != n {
		t.endScratch = dense.Grow(t.endScratch, n)
	}
	for lv := 0; lv < t.blev.Rows(); lv++ {
		level := t.blev.Row(int32(lv))
		par.ParallelFor(workers, len(level), func(k int) {
			inst := t.g.order[level[k]]
			out := d.OutputNet(inst)
			if out == nil || t.rc[out.ID] == nil {
				t.endScratch[inst.ID] = t.endScratch[inst.ID][:0]
				return
			}
			var req float64
			req, t.endScratch[inst.ID] = t.computeRequired(inst, t.endScratch[inst.ID][:0])
			if req < res.reqOut[inst.ID] {
				res.reqOut[inst.ID] = req
			}
		})
		t.noteFanout(len(level))
	}
	// Sequential assembly in the reference order (reverse topological
	// position), so endSlack bytes match the serial sweep exactly.
	for i := len(t.g.order) - 1; i >= 0; i-- {
		inst := t.g.order[i]
		out := d.OutputNet(inst)
		if out == nil || t.rc[out.ID] == nil {
			continue
		}
		scratch := t.endScratch[inst.ID]
		t.endStart[inst.ID] = int32(len(res.endSlack))
		t.endCount[inst.ID] = int32(len(scratch))
		res.endSlack = append(res.endSlack, scratch...)
	}
	t.stats.FullUpdates++
	t.stats.NodesReevaluated += int64(len(t.g.order))
	return nil
}

// noteFanout records one scheduled parallel fan-out of n items (counted
// the same at any worker count — see TimerStats).
func (t *Timer) noteFanout(n int) {
	t.stats.ParBatches++
	t.stats.ParTasks += int64(n)
}

// buildLevels derives the dependency levels of the position-gated
// sweeps from the fanin arcs — purely structural, rebuilt with the
// graph.
//
// Forward: flevel(v) = 1 + max flevel(d) over v's *landed* fanin arcs
// (drivers at earlier topological positions — exactly the prefix
// replayEffective consumes); sources and nodes with only late arcs sit
// at level 0. Backward: blevel(v) = 1 + max blevel(s) over v's
// later-position combinational sinks that run the backward computation
// (have a non-clock output net); everything else reads as +Inf/absent
// exactly like the serial sweep. Levels hold topological positions in
// ascending (forward) / descending (backward) position order.
func (t *Timer) buildLevels() {
	d := t.d
	order := t.g.order
	t.lvl = dense.Zero(t.lvl, len(d.Instances))
	level := t.lvl

	maxF := int32(0)
	for p, inst := range order {
		lv := int32(0)
		if !timingSource(inst) {
			kpos := int32(p)
			for _, e := range t.fanin.Row(int32(inst.ID)) {
				if t.pos[e.drv] > kpos {
					break
				}
				if l := level[e.drv] + 1; l > lv {
					lv = l
				}
			}
		}
		level[inst.ID] = lv
		if lv > maxF {
			maxF = lv
		}
	}
	t.flev.Reset(int(maxF) + 1)
	for _, inst := range order {
		t.flev.Count(level[inst.ID])
	}
	t.flev.Seal()
	for p, inst := range order {
		t.flev.Append(level[inst.ID], int32(p))
	}

	// participates mirrors the runtime rc guard: extraction covers every
	// non-clock net, so rc[out.ID] == nil exactly when the output net is
	// a clock (or absent).
	participates := func(inst *netlist.Instance) *netlist.Net {
		out := d.OutputNet(inst)
		if out == nil || out.IsClock {
			return nil
		}
		return out
	}
	for i := range level {
		level[i] = 0
	}
	maxB := int32(-1)
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		out := participates(inst)
		if out == nil {
			continue
		}
		lv := int32(0)
		for _, s := range out.Sinks {
			sk := s.Inst
			if s.Spec().Dir == cell.DirClk || timingSource(sk) {
				continue
			}
			if t.pos[sk.ID] <= int32(i) || participates(sk) == nil {
				continue
			}
			if l := level[sk.ID] + 1; l > lv {
				lv = l
			}
		}
		level[inst.ID] = lv
		if lv > maxB {
			maxB = lv
		}
	}
	t.blev.Reset(int(maxB) + 1)
	for _, inst := range order {
		if participates(inst) != nil {
			t.blev.Count(level[inst.ID])
		}
	}
	t.blev.Seal()
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if participates(inst) == nil {
			continue
		}
		t.blev.Append(level[inst.ID], int32(i))
	}
}

// incremental re-propagates from the seed frontier. Returns false when it
// detects drift it cannot handle in place (the caller then runs a full
// update).
func (t *Timer) incremental(seeds []int32) bool {
	d := t.d
	n := len(d.Instances)
	res := t.res
	t.dirty = dense.Zero(t.dirty, n)     // indexed by topological position
	t.inB = dense.Zero(t.inB, n)         // backward work set, same indexing
	t.predFix = dense.Zero(t.predFix, n) // nodes needing a final pred replay
	dirty, inB, predFix := t.dirty, t.inB, t.predFix
	for _, id := range seeds {
		dirty[t.pos[id]] = true
	}

	// Forward sweep in topological order: a node's effective inputs come
	// only from drivers at earlier positions, all final when it replays.
	// Expansion follows data arcs to combinational sinks — later-position
	// sinks recompute; earlier-position ones (the levelizer's late arcs)
	// never consume this node's arrival, only their pred bookkeeping can
	// move. Sequential sinks hold no live input state; their capture
	// checks are redone by their drivers below.
	for p := 0; p < n; p++ {
		if !dirty[p] {
			continue
		}
		inst := t.g.order[p]
		if !timingSource(inst) {
			t.replayEffective(inst)
			predFix[p] = true
		}
		changed := t.computeNode(inst)
		t.stats.NodesReevaluated++
		inB[p] = true
		// The node's fanin drivers read its stage delay and required time
		// in their backward recompute, so they always join the work set.
		for _, e := range t.fanin.Row(int32(inst.ID)) {
			inB[t.pos[e.drv]] = true
		}
		if !changed {
			continue
		}
		out := d.OutputNet(inst)
		if out == nil || t.rc[out.ID] == nil {
			continue
		}
		for _, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				continue
			}
			if !timingSource(s.Inst) {
				if sp := t.pos[s.Inst.ID]; sp > int32(p) {
					dirty[sp] = true
				} else {
					predFix[sp] = true
				}
			}
		}
	}

	// Pred bookkeeping replays against final arrivals, so it runs after
	// the whole sweep.
	for p := 0; p < n; p++ {
		if predFix[p] {
			t.replayPred(t.g.order[p])
		}
	}

	// Backward sweep in reverse topological order: requireds flow from
	// sinks to drivers, so every position this loop adds to the work set
	// is one it has not passed yet.
	scratch := t.incScratch
	defer func() { t.incScratch = scratch[:0] }()
	for p := n - 1; p >= 0; p-- {
		if !inB[p] {
			continue
		}
		inst := t.g.order[p]
		out := d.OutputNet(inst)
		if out == nil {
			continue
		}
		if t.rc[out.ID] == nil {
			continue
		}
		var req float64
		req, scratch = t.computeRequired(inst, scratch[:0])
		if int32(len(scratch)) != t.endCount[inst.ID] {
			// Endpoint membership drifted without a structural notice;
			// hand the update to the full pass.
			return false
		}
		copy(res.endSlack[t.endStart[inst.ID]:], scratch)
		if req != res.reqOut[inst.ID] {
			res.reqOut[inst.ID] = req
			if !timingSource(inst) {
				for _, e := range t.fanin.Row(int32(inst.ID)) {
					inB[t.pos[e.drv]] = true
				}
			}
		}
	}
	t.stats.IncrementalUpdates++
	return true
}

// buildFanin records every data arc in (driver topological position, sink
// index) order — exactly the order the full pass pushes arrivals — so a
// replay reproduces its strict-comparison tie-breaks. The arcs live in
// one flat CSR payload keyed by sink instance ID; the two-pass build
// preserves the push order within each row and reallocates nothing once
// the storage is warm.
func (t *Timer) buildFanin() {
	conn := t.d.Conn()
	t.fanin.Reset(len(t.d.Instances))
	for _, inst := range t.g.order {
		out := conn.OutputNet(inst)
		if out == nil || out.IsClock {
			continue
		}
		for _, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				continue
			}
			t.fanin.Count(int32(s.Inst.ID))
		}
	}
	t.fanin.Seal()
	for _, inst := range t.g.order {
		out := conn.OutputNet(inst)
		if out == nil || out.IsClock {
			continue
		}
		for i, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				continue
			}
			t.fanin.Append(int32(s.Inst.ID),
				faninEdge{drv: int32(inst.ID), net: out, idx: int32(i)})
		}
	}
}

// replayEffective rebuilds the input-pin state a combinational instance
// consumes when it computes its outputs. The push model delivers arrivals
// as each driver is processed, so only arcs from drivers at earlier
// topological positions have landed by the time the instance runs — and
// the levelizer's order is not always a strict topological sort (an arc
// whose driver was released late stays in flight past its sink). The
// fanin list is sorted by driver position, so the landed arcs are a
// prefix.
//
//hotpath:kernel
func (t *Timer) replayEffective(inst *netlist.Instance) {
	id := inst.ID
	kpos := t.pos[id]
	ai, si := 0.0, t.cfg.InputSlew
	ami := math.Inf(1)
	if t.minZero[id] {
		ami = 0
	}
	for _, e := range t.fanin.Row(int32(id)) {
		if t.pos[e.drv] > kpos {
			break
		}
		rc := t.rc[e.net.ID]
		s := e.net.Sinks[e.idx]
		wd := tech.RCps(rc.SinkR[e.idx], rc.SinkCapShare[e.idx]+s.Spec().Cap)
		if a := t.res.arrOut[e.drv] + wd; a > ai {
			ai = a
		}
		if am := t.arrMinOut[e.drv] + wd; am < ami {
			ami = am
		}
		if sw := t.res.slewOut[e.drv] + wd; sw > si {
			si = sw
		}
	}
	t.arrIn[id], t.arrMinIn[id], t.slewIn[id] = ai, ami, si
}

// replayPred rebuilds a combinational instance's worst-arrival
// predecessor and incoming wire delay. Unlike the output computation,
// the push model keeps updating these as later drivers deliver their
// arcs, so the final values come from a scan over every fanin arc in
// push order — including arcs that landed after the instance computed
// its outputs. Call it only once every driver's arrival is final.
func (t *Timer) replayPred(inst *netlist.Instance) {
	id := inst.ID
	ai := 0.0
	pred, inw := int32(-1), 0.0
	for _, e := range t.fanin.Row(int32(id)) {
		rc := t.rc[e.net.ID]
		s := e.net.Sinks[e.idx]
		wd := tech.RCps(rc.SinkR[e.idx], rc.SinkCapShare[e.idx]+s.Spec().Cap)
		if a := t.res.arrOut[e.drv] + wd; a > ai {
			ai = a
			pred = e.drv
			inw = wd
		}
	}
	t.res.pred[id], t.res.inWire[id] = pred, inw
}

// computeNode recomputes one instance's stage delay, output arrival,
// min-path arrival, and output slew, reporting whether any propagated
// quantity moved (bitwise).
//
//hotpath:kernel
func (t *Timer) computeNode(inst *netlist.Instance) bool {
	d, res, cfg := t.d, t.res, &t.cfg
	id := inst.ID
	out := d.OutputNet(inst)

	var load float64
	var rc *route.NetRC
	if out != nil {
		rc = t.rc[out.ID]
		if rc != nil {
			load = rc.WireCap + out.TotalPinCap()
		} else {
			load = out.TotalPinCap()
		}
	}

	var arr, arrMin, slw, d0 float64
	if timingSource(inst) {
		// Launch: clock latency + CLK→Q (or access) delay.
		d0 = inst.Master.Delay.Lookup(cfg.InputSlew, load)
		s0 := inst.Master.OutSlew.Lookup(cfg.InputSlew, load)
		d0, s0 = res.applyDerates(inst, out, d, d0, s0)
		arr = t.lat(inst) + d0
		arrMin = arr
		slw = s0
	} else {
		d0 = inst.Master.Delay.Lookup(t.slewIn[id], load)
		s0 := inst.Master.OutSlew.Lookup(t.slewIn[id], load)
		d0, s0 = res.applyDerates(inst, out, d, d0, s0)
		arr = t.arrIn[id] + d0
		am := t.arrMinIn[id]
		if math.IsInf(am, 1) {
			am = 0
		}
		arrMin = am + d0
		slw = s0
	}
	changed := arr != res.arrOut[id] || arrMin != t.arrMinOut[id] || slw != res.slewOut[id]
	res.delay[id] = d0
	res.arrOut[id] = arr
	t.arrMinOut[id] = arrMin
	res.slewOut[id] = slw
	return changed
}

// computeRequired redoes one driver's endpoint checks and required-time
// accumulation, appending its endpoint entries (sinks in net order, then
// ports) to scratch.
func (t *Timer) computeRequired(inst *netlist.Instance, scratch []endpoint) (float64, []endpoint) {
	res, cfg := t.res, &t.cfg
	out := t.d.OutputNet(inst)
	rc := t.rc[out.ID]
	req := math.Inf(1)
	si := 0
	for _, s := range out.Sinks {
		if s.Spec().Dir == cell.DirClk {
			si++
			continue
		}
		wd := tech.RCps(rc.SinkR[si], rc.SinkCapShare[si]+s.Spec().Cap)
		si++
		sk := s.Inst
		var cand float64
		if timingSource(sk) {
			// Setup endpoint at the D/A pin, plus the hold check on the
			// earliest arrival.
			endReq := cfg.Period + t.lat(sk) - sk.Master.Setup
			arrD := res.arrOut[inst.ID] + wd
			slack := endReq - arrD
			holdSlack := t.arrMinOut[inst.ID] + wd - t.lat(sk) - sk.Master.Hold
			scratch = append(scratch, endpoint{inst: sk, from: int32(inst.ID), slack: slack, hold: holdSlack})
			cand = endReq - wd
		} else if t.pos[sk.ID] > t.pos[inst.ID] {
			cand = res.reqOut[sk.ID] - res.delay[sk.ID] - wd
		} else {
			// A sink the levelizer released before its driver: the reverse
			// sweep visits it after the driver, so the driver reads its
			// required time at the +Inf initial value. Preserve that here —
			// in an incremental pass the stored value is finite and must
			// not leak in.
			cand = math.Inf(1)
		}
		if cand < req {
			req = cand
		}
	}
	for pi, p := range out.SinkPorts {
		// Extract appends ports after every instance sink.
		ri := len(out.Sinks) + pi
		wd := tech.RCps(rc.SinkR[ri], rc.SinkCapShare[ri]+p.Cap)
		arrP := res.arrOut[inst.ID] + wd
		slack := cfg.Period - arrP
		scratch = append(scratch, endpoint{port: p, from: int32(inst.ID), slack: slack, hold: math.Inf(1)})
		if cand := cfg.Period - wd; cand < req {
			req = cand
		}
	}
	return req, scratch
}

// summarize rebuilds the WNS/TNS/hold rollups from the endpoint table,
// iterating in slice order so accumulation matches a fresh analysis.
func (t *Timer) summarize() {
	res := t.res
	res.WNS = math.Inf(1)
	res.HoldWNS = math.Inf(1)
	res.TNS, res.HoldTNS = 0, 0
	res.Endpoints, res.FailingEndpoints, res.FailingHoldEndpoints = 0, 0, 0
	for _, e := range res.endSlack {
		res.Endpoints++
		if e.slack < res.WNS {
			res.WNS = e.slack
		}
		if e.slack < 0 {
			res.FailingEndpoints++
			res.TNS += e.slack
		}
		if e.hold < res.HoldWNS {
			res.HoldWNS = e.hold
		}
		if e.hold < 0 {
			res.FailingHoldEndpoints++
			res.HoldTNS += e.hold
		}
	}
	if res.Endpoints == 0 {
		res.WNS = 0 // unconstrained design
	}
	if math.IsInf(res.HoldWNS, 1) {
		res.HoldWNS = 0 // no registered endpoints
	}
}
