package sta

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// Analyze runs full STA on the design.
func analyzeReference(d *netlist.Design, cfg Config) (*Result, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("sta: period %v must be positive", cfg.Period)
	}
	if cfg.Router == nil {
		cfg.Router = route.New()
	}
	if cfg.InputSlew <= 0 {
		cfg.InputSlew = 0.02
	}
	if cfg.Hetero && cfg.Derates == (tech.DerateModel{}) {
		cfg.Derates = tech.DefaultDerates()
	}
	if cfg.FastTrack == 0 {
		cfg.FastTrack = tech.Track12
	}
	g, err := buildGraph(d)
	if err != nil {
		return nil, err
	}
	ex := extractAll(d, cfg.Router, 1)

	n := len(d.Instances)
	res := &Result{
		cfg:    cfg,
		d:      d,
		arrOut: make([]float64, n),
		reqOut: make([]float64, n),
		delay:  make([]float64, n),
		inWire: make([]float64, n),
		pred:   make([]int32, n),
	}
	arrIn := make([]float64, n) // worst arrival at any input pin
	arrMinIn := make([]float64, n)
	arrMinOut := make([]float64, n)
	slewIn := make([]float64, n) // worst input slew
	res.slewOut = make([]float64, n)
	slewOut := res.slewOut
	for i := range arrIn {
		arrIn[i] = 0
		arrMinIn[i] = math.Inf(1)
		slewIn[i] = cfg.InputSlew
		res.pred[i] = -1
		res.reqOut[i] = math.Inf(1)
	}
	// Instances with a port-driven or floating signal input can switch as
	// early as t=0 on the min path.
	for _, inst := range d.Instances {
		for i, pin := range inst.Master.Pins {
			if pin.Dir != cell.DirIn {
				continue
			}
			nn := d.NetAt(inst, i)
			if nn == nil || nn.DriverPort != nil {
				arrMinIn[inst.ID] = 0
				break
			}
		}
	}

	lat := cfg.Latency
	if lat == nil {
		lat = func(*netlist.Instance) float64 { return 0 }
	}

	// ---------- Forward pass: arrivals and slews ----------
	for _, inst := range g.order {
		f := inst.Master.Function
		out := d.OutputNet(inst)

		var load float64
		var rc *route.NetRC
		if out != nil {
			rc = ex.rc[out.ID]
			if rc != nil {
				load = rc.WireCap + out.TotalPinCap()
			} else {
				load = out.TotalPinCap()
			}
		}

		var arr, arrMin, slw float64
		switch {
		case f.IsSequential() || f.IsMacro():
			// Launch: clock latency + CLK→Q (or access) delay.
			d0 := inst.Master.Delay.Lookup(cfg.InputSlew, load)
			s0 := inst.Master.OutSlew.Lookup(cfg.InputSlew, load)
			d0, s0 = res.applyDerates(inst, out, d, d0, s0)
			arr = lat(inst) + d0
			arrMin = arr
			slw = s0
			res.delay[inst.ID] = d0
		default:
			d0 := inst.Master.Delay.Lookup(slewIn[inst.ID], load)
			s0 := inst.Master.OutSlew.Lookup(slewIn[inst.ID], load)
			d0, s0 = res.applyDerates(inst, out, d, d0, s0)
			arr = arrIn[inst.ID] + d0
			am := arrMinIn[inst.ID]
			if math.IsInf(am, 1) {
				am = 0
			}
			arrMin = am + d0
			slw = s0
			res.delay[inst.ID] = d0
		}
		res.arrOut[inst.ID] = arr
		arrMinOut[inst.ID] = arrMin
		slewOut[inst.ID] = slw

		// Push to sinks.
		if out == nil || rc == nil {
			continue
		}
		for i, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				continue
			}
			wd := tech.RCps(rc.SinkR[i], rc.SinkCapShare[i]+s.Spec().Cap)
			a := arr + wd
			sk := s.Inst.ID
			if a > arrIn[sk] {
				arrIn[sk] = a
				res.pred[sk] = int32(inst.ID)
				res.inWire[sk] = wd
			}
			if am := arrMin + wd; am < arrMinIn[sk] {
				arrMinIn[sk] = am
			}
			if sw := slw + wd; sw > slewIn[sk] {
				slewIn[sk] = sw
			}
		}
	}

	// ---------- Endpoint checks and backward required pass ----------
	// Process instances in reverse topological order, accumulating
	// required times through each net.
	for i := len(g.order) - 1; i >= 0; i-- {
		inst := g.order[i]
		out := d.OutputNet(inst)
		if out == nil {
			continue
		}
		rc := ex.rc[out.ID]
		if rc == nil {
			continue
		}
		req := math.Inf(1)
		si := 0
		for _, s := range out.Sinks {
			if s.Spec().Dir == cell.DirClk {
				si++
				continue
			}
			wd := tech.RCps(rc.SinkR[si], rc.SinkCapShare[si]+s.Spec().Cap)
			si++
			sk := s.Inst
			var cand float64
			switch {
			case sk.Master.Function.IsSequential() || sk.Master.Function.IsMacro():
				// Setup endpoint at the D/A pin, plus the hold check on
				// the earliest arrival.
				endReq := cfg.Period + lat(sk) - sk.Master.Setup
				arrD := res.arrOut[inst.ID] + wd
				slack := endReq - arrD
				holdSlack := arrMinOut[inst.ID] + wd - lat(sk) - sk.Master.Hold
				res.endSlack = append(res.endSlack, endpoint{inst: sk, from: int32(inst.ID), slack: slack, hold: holdSlack})
				cand = endReq - wd
			default:
				cand = res.reqOut[sk.ID] - res.delay[sk.ID] - wd
			}
			if cand < req {
				req = cand
			}
		}
		for pi, p := range out.SinkPorts {
			// Extract appends ports after every instance sink.
			ri := len(out.Sinks) + pi
			wd := tech.RCps(rc.SinkR[ri], rc.SinkCapShare[ri]+p.Cap)
			arrP := res.arrOut[inst.ID] + wd
			slack := cfg.Period - arrP
			res.endSlack = append(res.endSlack, endpoint{port: p, from: int32(inst.ID), slack: slack, hold: math.Inf(1)})
			if cand := cfg.Period - wd; cand < req {
				req = cand
			}
		}
		if req < res.reqOut[inst.ID] {
			res.reqOut[inst.ID] = req
		}
	}

	// ---------- Summaries ----------
	res.WNS = math.Inf(1)
	res.HoldWNS = math.Inf(1)
	for _, e := range res.endSlack {
		res.Endpoints++
		if e.slack < res.WNS {
			res.WNS = e.slack
		}
		if e.slack < 0 {
			res.FailingEndpoints++
			res.TNS += e.slack
		}
		if e.hold < res.HoldWNS {
			res.HoldWNS = e.hold
		}
		if e.hold < 0 {
			res.FailingHoldEndpoints++
			res.HoldTNS += e.hold
		}
	}
	if res.Endpoints == 0 {
		res.WNS = 0 // unconstrained design
	}
	if math.IsInf(res.HoldWNS, 1) {
		res.HoldWNS = 0 // no registered endpoints
	}
	return res, nil
}

// TestAnalyzeMatchesSeedReference pits the replay-based engine against a
// verbatim copy of the original push-based Analyze.
func TestAnalyzeMatchesSeedReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		d := randomDAG(t, seed)
		for i, inst := range d.Instances {
			if i%3 == 0 {
				inst.Tier = tech.TierTop
			}
		}
		cfg := DefaultConfig(0.7)
		cfg.Hetero = seed%2 == 1
		want, err := analyzeReference(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Analyze(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range d.Instances {
			id := inst.ID
			if got.arrOut[id] != want.arrOut[id] || got.reqOut[id] != want.reqOut[id] ||
				got.delay[id] != want.delay[id] || got.slewOut[id] != want.slewOut[id] {
				t.Fatalf("seed %d: inst %s: got arr/req/delay/slew %v/%v/%v/%v want %v/%v/%v/%v",
					seed, inst.Name, got.arrOut[id], got.reqOut[id], got.delay[id], got.slewOut[id],
					want.arrOut[id], want.reqOut[id], want.delay[id], want.slewOut[id])
			}
			f := inst.Master.Function
			if !(f.IsSequential() || f.IsMacro()) {
				if got.pred[id] != want.pred[id] || got.inWire[id] != want.inWire[id] {
					t.Fatalf("seed %d: inst %s: pred/inWire %d/%v want %d/%v",
						seed, inst.Name, got.pred[id], got.inWire[id], want.pred[id], want.inWire[id])
				}
			}
		}
		if got.WNS != want.WNS || got.TNS != want.TNS || got.HoldWNS != want.HoldWNS || got.HoldTNS != want.HoldTNS {
			t.Fatalf("seed %d: summaries differ: %v/%v/%v/%v vs %v/%v/%v/%v", seed,
				got.WNS, got.TNS, got.HoldWNS, got.HoldTNS, want.WNS, want.TNS, want.HoldWNS, want.HoldTNS)
		}
		if len(got.endSlack) != len(want.endSlack) {
			t.Fatalf("seed %d: endSlack %d vs %d", seed, len(got.endSlack), len(want.endSlack))
		}
		for i := range got.endSlack {
			if got.endSlack[i] != want.endSlack[i] {
				t.Fatalf("seed %d: endSlack[%d] %+v vs %+v", seed, i, got.endSlack[i], want.endSlack[i])
			}
		}
	}
}

var _ = fmt.Sprintf
