package sta

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/route"
)

// TestIncrementalUpdateAllocs pins the steady-state allocation count of
// the incremental Timer update: after the first full pass, a small
// placement perturbation plus Update must run almost entirely on the
// Timer's reused buffers (dirty/frontier marks, endpoint scratch,
// pooled RC replacements). Timing repair and sizing loops call this
// thousands of times per flow.
func TestIncrementalUpdateAllocs(t *testing.T) {
	d, err := designs.Generate(designs.AES, lib12, designs.Params{Scale: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%71), float64((i*13)%67))
	}
	cfg := DefaultConfig(1.0)
	cfg.Router = route.New() // bare Router: replaced RCs recycle to the pool
	tm, err := NewTimer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	if _, err := tm.Update(); err != nil {
		t.Fatal(err)
	}

	// One movable instance nudged back and forth between two spots; each
	// Update sees a one-cell frontier.
	inst := d.Instances[len(d.Instances)/2]
	flip := false
	step := func() {
		flip = !flip
		p := geom.Pt(30, 20)
		if flip {
			p = geom.Pt(31, 21)
		}
		inst.SetLoc(p)
		if _, err := tm.Update(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		step() // warm the scratch buffers and pools
	}
	allocs := testing.AllocsPerRun(20, step)
	t.Logf("allocs/run: SetLoc+incremental Update=%v", allocs)
	// Steady state measures 0; the tiny ceiling only absorbs a GC
	// clearing a sync.Pool mid-measurement. A dropped buffer reuse jumps
	// far past it.
	if allocs > maxIncrementalAllocs {
		t.Errorf("incremental update allocates %v per run, want <= %v", allocs, maxIncrementalAllocs)
	}
}

const maxIncrementalAllocs = 4

// BenchmarkKernelIncrementalUpdate measures a warm one-cell-frontier
// Timer update; its B/op is guarded against the committed
// BENCH_alloc.json baseline by tools/benchguard in CI.
func BenchmarkKernelIncrementalUpdate(b *testing.B) {
	d, err := designs.Generate(designs.AES, lib12, designs.Params{Scale: 0.05, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%71), float64((i*13)%67))
	}
	cfg := DefaultConfig(1.0)
	cfg.Router = route.New()
	tm, err := NewTimer(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer tm.Close()
	if _, err := tm.Update(); err != nil {
		b.Fatal(err)
	}
	inst := d.Instances[len(d.Instances)/2]
	flip := false
	step := func() {
		flip = !flip
		p := geom.Pt(30, 20)
		if flip {
			p = geom.Pt(31, 21)
		}
		inst.SetLoc(p)
		if _, err := tm.Update(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
