package sta

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// PathStage is one cell on an extracted timing path.
type PathStage struct {
	Inst *netlist.Instance
	// CellDelay is the stage's cell delay in ns.
	CellDelay float64
	// WireDelay is the delay of the wire into this stage in ns.
	WireDelay float64
}

// Path is one extracted worst path, launch to capture.
type Path struct {
	// Stages run launch-first; the last stage is the endpoint's driver,
	// with Endpoint naming the capturing element.
	Stages []PathStage
	// Endpoint is the capturing register/macro (nil for output ports).
	Endpoint *netlist.Instance
	// Slack is the endpoint setup slack in ns.
	Slack float64
}

// CellDelaySum returns the total cell delay along the path.
func (p *Path) CellDelaySum() float64 {
	t := 0.0
	for _, s := range p.Stages {
		t += s.CellDelay
	}
	return t
}

// WireDelaySum returns the total wire delay along the path.
func (p *Path) WireDelaySum() float64 {
	t := 0.0
	for _, s := range p.Stages {
		t += s.WireDelay
	}
	return t
}

// Delay returns the total path delay (cells + wires).
func (p *Path) Delay() float64 { return p.CellDelaySum() + p.WireDelaySum() }

// CellsOnTier counts path stages on the given tier.
func (p *Path) CellsOnTier(t tech.Tier) int {
	n := 0
	for _, s := range p.Stages {
		if s.Inst.Tier == t {
			n++
		}
	}
	return n
}

// CellDelayOnTier sums cell delay of stages on the given tier.
func (p *Path) CellDelayOnTier(t tech.Tier) float64 {
	d := 0.0
	for _, s := range p.Stages {
		if s.Inst.Tier == t {
			d += s.CellDelay
		}
	}
	return d
}

// TierCrossings counts tier changes between consecutive stages — the MIV
// count of the path's route.
func (p *Path) TierCrossings() int {
	n := 0
	for i := 1; i < len(p.Stages); i++ {
		if p.Stages[i].Inst.Tier != p.Stages[i-1].Inst.Tier {
			n++
		}
	}
	return n
}

// Wirelength sums the Manhattan stage-to-stage distance along the path —
// the critical-path wirelength row of Table VIII.
func (p *Path) Wirelength() float64 {
	wl := 0.0
	for i := 1; i < len(p.Stages); i++ {
		wl += p.Stages[i].Inst.Loc.ManhattanDist(p.Stages[i-1].Inst.Loc)
	}
	return wl
}

// WirelengthOnTier attributes each stage-to-stage hop to the tier of its
// receiving stage.
func (p *Path) WirelengthOnTier(t tech.Tier) float64 {
	wl := 0.0
	for i := 1; i < len(p.Stages); i++ {
		if p.Stages[i].Inst.Tier == t {
			wl += p.Stages[i].Inst.Loc.ManhattanDist(p.Stages[i-1].Inst.Loc)
		}
	}
	return wl
}

// CriticalPaths extracts up to k worst paths by endpoint slack, tracing
// each endpoint's worst-arrival chain back to its launch point. One path
// per endpoint (the standard "max_paths k, nworst 1" report).
func (res *Result) CriticalPaths(k int) []Path {
	eps := append([]endpoint{}, res.endSlack...)
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].slack != eps[j].slack {
			return eps[i].slack < eps[j].slack
		}
		// Deterministic tie-break.
		ii, ij := endpointID(eps[i]), endpointID(eps[j])
		return ii < ij
	})
	if k > len(eps) {
		k = len(eps)
	}
	out := make([]Path, 0, k)
	for _, e := range eps[:k] {
		p := Path{Endpoint: e.inst, Slack: e.slack}
		// Walk the worst-arrival predecessor chain from the endpoint's
		// driver back to a launch point.
		var rev []PathStage
		id := e.from
		for id >= 0 {
			inst := res.d.Instances[id]
			rev = append(rev, PathStage{
				Inst:      inst,
				CellDelay: res.delay[id],
				WireDelay: res.inWire[id],
			})
			f := inst.Master.Function
			if f.IsSequential() || f.IsMacro() {
				// The launch stage has no incoming data wire; its inWire
				// slot belongs to the D-pin edge of the *previous* cycle.
				rev[len(rev)-1].WireDelay = 0
				break
			}
			id = res.pred[id]
			if len(rev) > len(res.d.Instances) {
				break // defensive: corrupt pred chain
			}
		}
		// Reverse to launch-first order.
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		p.Stages = rev
		out = append(out, p)
	}
	return out
}

func endpointID(e endpoint) int {
	if e.inst != nil {
		return e.inst.ID
	}
	return 1 << 30
}
