package sta

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var (
	lib12 = cell.NewLibrary(tech.Variant12T())
	lib9  = cell.NewLibrary(tech.Variant9T())
)

// chainDesign: in → FF → inv × depth → FF → out, all placed on a line.
func chainDesign(t *testing.T, depth int, l *cell.Library) *netlist.Design {
	t.Helper()
	d := netlist.New("chain")
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}

	ff0, _ := d.AddInstance("ff0", l.Smallest(cell.FuncDFF))
	ff0.Loc = geom.Pt(0, 0)
	if err := d.Connect(ff0, "D", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff0, "CK", clk); err != nil {
		t.Fatal(err)
	}
	cur, _ := d.AddNet("q0")
	if err := d.Connect(ff0, "Q", cur); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < depth; i++ {
		inv, _ := d.AddInstance("inv"+itoa(i), l.Smallest(cell.FuncInv))
		inv.Loc = geom.Pt(float64(i+1)*2, 0)
		if err := d.Connect(inv, "A", cur); err != nil {
			t.Fatal(err)
		}
		nxt, _ := d.AddNet("n" + itoa(i))
		if err := d.Connect(inv, "Y", nxt); err != nil {
			t.Fatal(err)
		}
		cur = nxt
	}

	ff1, _ := d.AddInstance("ff1", l.Smallest(cell.FuncDFF))
	ff1.Loc = geom.Pt(float64(depth+1)*2, 0)
	if err := d.Connect(ff1, "D", cur); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff1, "CK", clk); err != nil {
		t.Fatal(err)
	}
	q1, _ := d.AddNet("q1")
	if err := d.Connect(ff1, "Q", q1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out", cell.DirOut, q1); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

func TestAnalyzeChainMeetsRelaxedClock(t *testing.T) {
	d := chainDesign(t, 10, lib12)
	res, err := Analyze(d, DefaultConfig(5.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.WNS < 0 {
		t.Errorf("relaxed clock should meet timing, WNS = %v", res.WNS)
	}
	if res.TNS != 0 || res.FailingEndpoints != 0 {
		t.Errorf("TNS = %v, failing = %d", res.TNS, res.FailingEndpoints)
	}
	if res.Endpoints < 2 { // ff1.D and out port
		t.Errorf("endpoints = %d", res.Endpoints)
	}
	if res.EffectiveDelay() != 5.0-res.WNS {
		t.Error("EffectiveDelay mismatch")
	}
}

func TestAnalyzeChainFailsTightClock(t *testing.T) {
	d := chainDesign(t, 40, lib12)
	res, err := Analyze(d, DefaultConfig(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.WNS >= 0 {
		t.Errorf("tight clock should fail, WNS = %v", res.WNS)
	}
	if res.TNS >= 0 || res.FailingEndpoints == 0 {
		t.Errorf("TNS = %v, failing = %d", res.TNS, res.FailingEndpoints)
	}
	if res.TNS > res.WNS {
		t.Error("TNS must be ≤ WNS")
	}
}

func TestArrivalMonotoneAlongChain(t *testing.T) {
	d := chainDesign(t, 12, lib12)
	res, err := Analyze(d, DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	prev := res.ArrivalOut(d.Instance("ff0"))
	for i := 0; i < 12; i++ {
		a := res.ArrivalOut(d.Instance("inv" + itoa(i)))
		if a <= prev {
			t.Fatalf("arrival not increasing at inv%d: %v <= %v", i, a, prev)
		}
		prev = a
	}
}

func TestSlowerLibraryFailsFirst(t *testing.T) {
	d12 := chainDesign(t, 30, lib12)
	d9 := chainDesign(t, 30, lib9)
	r12, err := Analyze(d12, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	r9, err := Analyze(d9, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if r9.WNS >= r12.WNS {
		t.Errorf("9-track WNS %v should be worse than 12-track %v", r9.WNS, r12.WNS)
	}
}

func TestCellSlackIdentifiesCriticalCells(t *testing.T) {
	// Two parallel paths of different depth between the same registers:
	// cells on the deep path must be more critical.
	d := netlist.New("two")
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	ff0, _ := d.AddInstance("ff0", lib12.Smallest(cell.FuncDFF))
	if err := d.Connect(ff0, "D", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff0, "CK", clk); err != nil {
		t.Fatal(err)
	}
	q, _ := d.AddNet("q")
	if err := d.Connect(ff0, "Q", q); err != nil {
		t.Fatal(err)
	}
	// Short path: 1 inverter. Deep path: 8 inverters.
	short, _ := d.AddInstance("s0", lib12.Smallest(cell.FuncInv))
	if err := d.Connect(short, "A", q); err != nil {
		t.Fatal(err)
	}
	sq, _ := d.AddNet("sq")
	if err := d.Connect(short, "Y", sq); err != nil {
		t.Fatal(err)
	}
	cur := q
	for i := 0; i < 8; i++ {
		inv, _ := d.AddInstance("d"+itoa(i), lib12.Smallest(cell.FuncInv))
		if err := d.Connect(inv, "A", cur); err != nil {
			t.Fatal(err)
		}
		nn, _ := d.AddNet("dn" + itoa(i))
		if err := d.Connect(inv, "Y", nn); err != nil {
			t.Fatal(err)
		}
		cur = nn
	}
	for i, n := range []*netlist.Net{sq, cur} {
		ff, _ := d.AddInstance("cap"+itoa(i), lib12.Smallest(cell.FuncDFF))
		if err := d.Connect(ff, "D", n); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(ff, "CK", clk); err != nil {
			t.Fatal(err)
		}
		qq, _ := d.AddNet("qq" + itoa(i))
		if err := d.Connect(ff, "Q", qq); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AddPort("o"+itoa(i), cell.DirOut, qq); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Analyze(d, DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.CellSlack(d.Instance("d0")) >= res.CellSlack(d.Instance("s0")) {
		t.Errorf("deep-path cell slack %v should be below short-path %v",
			res.CellSlack(d.Instance("d0")), res.CellSlack(d.Instance("s0")))
	}
	// SlackMap agrees with CellSlack.
	sm := res.SlackMap()
	for _, name := range []string{"d0", "s0", "ff0"} {
		inst := d.Instance(name)
		if math.Abs(sm[inst.ID]-res.CellSlack(inst)) > 1e-12 {
			t.Errorf("SlackMap disagrees for %s", name)
		}
	}
}

func TestClockLatencySkewAffectsSlack(t *testing.T) {
	d := chainDesign(t, 10, lib12)
	base, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Useful skew: capture register's clock arrives late → more slack.
	cfg := DefaultConfig(1.0)
	cfg.Latency = func(i *netlist.Instance) float64 {
		if i.Name == "ff1" {
			return 0.1
		}
		return 0
	}
	help, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if help.WNS <= base.WNS {
		t.Errorf("useful skew should improve WNS: %v vs %v", help.WNS, base.WNS)
	}
	// Harmful skew: launch late, capture on time.
	cfg.Latency = func(i *netlist.Instance) float64 {
		if i.Name == "ff0" {
			return 0.1
		}
		return 0
	}
	hurt, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hurt.WNS >= base.WNS {
		t.Errorf("harmful skew should hurt WNS: %v vs %v", hurt.WNS, base.WNS)
	}
}

func TestHeteroDeratesShiftTiming(t *testing.T) {
	d := chainDesign(t, 16, lib12)
	// Alternate tiers down the chain: every cell is a boundary cell.
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
	}
	plain, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1.0)
	cfg.Hetero = true
	het, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All cells are fast-library; fast-cell derates at output boundaries
	// are < 1, so the hetero analysis must differ from the plain one.
	if plain.WNS == het.WNS {
		t.Error("hetero derates had no effect")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	d := netlist.New("cyc")
	a, _ := d.AddInstance("a", lib12.Smallest(cell.FuncInv))
	b, _ := d.AddInstance("b", lib12.Smallest(cell.FuncInv))
	n1, _ := d.AddNet("n1")
	n2, _ := d.AddNet("n2")
	if err := d.Connect(a, "Y", n1); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(b, "A", n1); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(b, "Y", n2); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(a, "A", n2); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(d, DefaultConfig(1.0)); err == nil {
		t.Error("combinational cycle should fail")
	}
}

func TestAnalyzeBadPeriod(t *testing.T) {
	d := chainDesign(t, 2, lib12)
	if _, err := Analyze(d, DefaultConfig(0)); err == nil {
		t.Error("zero period should fail")
	}
}

func TestCriticalPathsStructure(t *testing.T) {
	d := chainDesign(t, 10, lib12)
	res, err := Analyze(d, DefaultConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	paths := res.CriticalPaths(3)
	if len(paths) == 0 {
		t.Fatal("no paths extracted")
	}
	p := paths[0]
	// Worst path ends at ff1.D through the inverter chain: launch ff0,
	// 10 inverters.
	if p.Endpoint == nil || p.Endpoint.Name != "ff1" {
		t.Fatalf("endpoint = %+v", p.Endpoint)
	}
	if len(p.Stages) != 11 { // ff0 + 10 inverters
		t.Errorf("stages = %d, want 11", len(p.Stages))
	}
	if p.Stages[0].Inst.Name != "ff0" {
		t.Errorf("path starts at %s, want ff0", p.Stages[0].Inst.Name)
	}
	if p.Stages[0].WireDelay != 0 {
		t.Error("launch stage must have zero incoming wire delay")
	}
	if p.Slack != res.WNS {
		t.Errorf("worst path slack %v != WNS %v", p.Slack, res.WNS)
	}
	if p.Delay() <= 0 || p.CellDelaySum() <= 0 {
		t.Error("path delay must be positive")
	}
	if p.Delay() < p.CellDelaySum() {
		t.Error("total delay must include wire delay")
	}
	// Paths are sorted by slack.
	for i := 1; i < len(paths); i++ {
		if paths[i].Slack < paths[i-1].Slack {
			t.Error("paths not sorted by slack")
		}
	}
}

func TestPathTierBreakdown(t *testing.T) {
	d := chainDesign(t, 9, lib12)
	for i, inst := range d.Instances {
		inst.Tier = tech.Tier(i % 2)
	}
	res, err := Analyze(d, DefaultConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	p := res.CriticalPaths(1)[0]
	b := p.CellsOnTier(tech.TierBottom)
	tt := p.CellsOnTier(tech.TierTop)
	if b+tt != len(p.Stages) {
		t.Errorf("tier split %d+%d != %d stages", b, tt, len(p.Stages))
	}
	if p.TierCrossings() == 0 {
		t.Error("alternating tiers must cross")
	}
	sum := p.CellDelayOnTier(tech.TierBottom) + p.CellDelayOnTier(tech.TierTop)
	if math.Abs(sum-p.CellDelaySum()) > 1e-12 {
		t.Error("per-tier delays don't sum")
	}
	if p.Wirelength() <= 0 {
		t.Error("path wirelength must be positive")
	}
	wsum := p.WirelengthOnTier(tech.TierBottom) + p.WirelengthOnTier(tech.TierTop)
	if math.Abs(wsum-p.Wirelength()) > 1e-9 {
		t.Error("per-tier wirelength doesn't sum")
	}
}

func TestWorstEndpoints(t *testing.T) {
	d := chainDesign(t, 10, lib12)
	res, err := Analyze(d, DefaultConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	w := res.WorstEndpoints(2)
	if len(w) != 2 {
		t.Fatalf("got %d endpoints", len(w))
	}
	if w[0] != res.WNS {
		t.Errorf("worst endpoint %v != WNS %v", w[0], res.WNS)
	}
	if w[1] < w[0] {
		t.Error("endpoints not sorted")
	}
	// Request beyond available clamps.
	if got := res.WorstEndpoints(1000); len(got) != res.Endpoints {
		t.Errorf("clamped endpoints = %d, want %d", len(got), res.Endpoints)
	}
}

func TestAnalyzeOnGeneratedDesign(t *testing.T) {
	d, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Scatter placement.
	for i, inst := range d.Instances {
		inst.Loc = geom.Pt(float64(i%103), float64((i*7)%97))
	}
	res, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Endpoints == 0 {
		t.Fatal("no endpoints on CPU")
	}
	// The multiplier's deep paths must dominate: worst path has many
	// stages.
	p := res.CriticalPaths(1)[0]
	if len(p.Stages) < 10 {
		t.Errorf("CPU worst path only %d stages", len(p.Stages))
	}
}

func TestStageDelayPositive(t *testing.T) {
	d := chainDesign(t, 4, lib12)
	res, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range d.Instances {
		if res.StageDelay(inst) <= 0 {
			t.Errorf("stage delay of %s = %v", inst.Name, res.StageDelay(inst))
		}
	}
}
