package sta

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// shiftRegister builds ff0.Q → ff1.D back to back with no logic — the
// classic hold-risk structure.
func shiftRegister(t *testing.T) *netlist.Design {
	t.Helper()
	d := netlist.New("shift")
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	dff := lib12.Smallest(cell.FuncDFF)
	ff0, _ := d.AddInstance("ff0", dff)
	ff1, _ := d.AddInstance("ff1", dff)
	ff0.Loc = geom.Pt(0, 0)
	ff1.Loc = geom.Pt(1, 0)
	q0, _ := d.AddNet("q0")
	q1, _ := d.AddNet("q1")
	for _, c := range []struct {
		i   *netlist.Instance
		pin string
		n   *netlist.Net
	}{
		{ff0, "D", in}, {ff0, "CK", clk}, {ff0, "Q", q0},
		{ff1, "D", q0}, {ff1, "CK", clk}, {ff1, "Q", q1},
	} {
		if err := d.Connect(c.i, c.pin, c.n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddPort("out", cell.DirOut, q1); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHoldMetWithBalancedClock(t *testing.T) {
	d := shiftRegister(t)
	res, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Clk→Q delay comfortably exceeds the 2 ps hold requirement.
	if res.HoldWNS <= 0 {
		t.Errorf("hold should be met on a zero-skew shift register: %v", res.HoldWNS)
	}
	if res.FailingHoldEndpoints != 0 || res.HoldTNS != 0 {
		t.Errorf("unexpected hold failures: %d / %v", res.FailingHoldEndpoints, res.HoldTNS)
	}
}

func TestHoldViolationUnderSkew(t *testing.T) {
	d := shiftRegister(t)
	cfg := DefaultConfig(1.0)
	// Capture clock arrives much later than launch: classic hold hazard.
	cfg.Latency = func(i *netlist.Instance) float64 {
		if i.Name == "ff1" {
			return 0.2
		}
		return 0
	}
	res, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HoldWNS >= 0 {
		t.Errorf("0.2 ns capture skew over a direct Q→D hop must violate hold, got %v", res.HoldWNS)
	}
	if res.FailingHoldEndpoints == 0 {
		t.Error("no failing hold endpoints recorded")
	}
	if res.HoldTNS >= 0 {
		t.Error("hold TNS should be negative")
	}
	// Setup benefits from the same skew.
	if res.WNS <= 0 {
		t.Errorf("setup should be comfortably met, WNS = %v", res.WNS)
	}
}

func TestHoldMinPathSelectsShortBranch(t *testing.T) {
	// ff0 → (direct) ff1 and ff0 → 6 inverters → ff2: the direct branch
	// sets ff1's hold slack, the long branch gives ff2 much more margin.
	d := shiftRegister(t)
	clk := d.Net("clk")
	cur := d.Net("q0")
	for i := 0; i < 6; i++ {
		inv, _ := d.AddInstance("i"+itoa(i), lib12.Smallest(cell.FuncInv))
		if err := d.Connect(inv, "A", cur); err != nil {
			t.Fatal(err)
		}
		nn, _ := d.AddNet("nn" + itoa(i))
		if err := d.Connect(inv, "Y", nn); err != nil {
			t.Fatal(err)
		}
		cur = nn
	}
	ff2, _ := d.AddInstance("ff2", lib12.Smallest(cell.FuncDFF))
	if err := d.Connect(ff2, "D", cur); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff2, "CK", clk); err != nil {
		t.Fatal(err)
	}
	q2, _ := d.AddNet("q2")
	if err := d.Connect(ff2, "Q", q2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out2", cell.DirOut, q2); err != nil {
		t.Fatal(err)
	}

	res, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Worst hold still comes from the direct hop, not the six-inverter
	// branch (which would have ≥6 stage delays of margin): the
	// design-wide HoldWNS stays within a couple of picoseconds of the
	// bare shift register's (the extra q0 load slows clk→Q slightly).
	base, err := Analyze(shiftRegister(t), DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.HoldWNS > base.HoldWNS+0.005 {
		t.Errorf("worst hold should track the direct hop: %v vs %v", res.HoldWNS, base.HoldWNS)
	}
}

func TestHoldUnconstrainedDesign(t *testing.T) {
	// Pure combinational design: no registered endpoints → hold trivially
	// clean.
	d := netlist.New("comb")
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	inv, _ := d.AddInstance("u", lib12.Smallest(cell.FuncInv))
	if err := d.Connect(inv, "A", in); err != nil {
		t.Fatal(err)
	}
	o, _ := d.AddNet("o")
	if err := d.Connect(inv, "Y", o); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out", cell.DirOut, o); err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(d, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailingHoldEndpoints != 0 {
		t.Error("combinational design cannot fail hold")
	}
}
