// Package prof is the shared -cpuprofile/-memprofile wiring of the
// command-line tools: standard runtime/pprof profiles, so the CPU and
// allocation numbers behind BENCH_scale.json are reproducible from any
// flow invocation.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the open profile outputs of one tool run.
type Session struct {
	cpu *os.File
	mem string
}

// Start begins CPU profiling into cpuPath (empty = off) and remembers
// memPath for the heap snapshot Stop writes. Call Stop before the
// process exits; the usual pattern is
//
//	sess, err := prof.Start(*cpuprofile, *memprofile)
//	...
//	defer sess.Stop()
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{mem: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
		s.cpu = f
	}
	return s, nil
}

// Stop ends the CPU profile and writes the allocation profile (the
// "allocs" profile: every allocation since process start, not just live
// heap) to the memprofile path given to Start. Safe on a nil session.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			return fmt.Errorf("prof: close cpu profile: %w", err)
		}
		s.cpu = nil
	}
	if s.mem != "" {
		f, err := os.Create(s.mem)
		if err != nil {
			return fmt.Errorf("prof: create mem profile: %w", err)
		}
		runtime.GC() // materialize the final live set before snapshotting
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("prof: write mem profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("prof: close mem profile: %w", err)
		}
		s.mem = ""
	}
	return nil
}
