package eval

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/designs"
)

// One tiny suite shared by all tests in this package (building it runs
// ten full flows).
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		opt := DefaultSuiteOptions(0.05)
		opt.FmaxIterations = 3
		suiteVal, suiteErr = RunSuite(context.Background(), opt)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestRunSuiteComplete(t *testing.T) {
	s := testSuite(t)
	if len(s.Results) != 4 {
		t.Fatalf("suite covered %d designs", len(s.Results))
	}
	for _, dn := range designs.All {
		if s.Fmax[dn] <= 0 {
			t.Errorf("%s: fmax = %v", dn, s.Fmax[dn])
		}
		if len(s.Results[dn]) != 5 {
			t.Errorf("%s: %d configs", dn, len(s.Results[dn]))
		}
	}
	order := s.DesignsInOrder()
	if len(order) != 4 || order[0] != designs.Netcard {
		t.Errorf("order = %v", order)
	}
	if s.Hetero(designs.CPU) == nil {
		t.Error("hetero accessor broken")
	}
}

func TestRunSuiteErrors(t *testing.T) {
	if _, err := RunSuite(context.Background(), SuiteOptions{Scale: 0}); err == nil {
		t.Error("zero scale should fail")
	}
}

func TestTableI(t *testing.T) {
	s := testSuite(t)
	out := s.TableI().String()
	for _, want := range []string{"Frequency", "Die Cost", "Hetero"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIandIII(t *testing.T) {
	t2, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []string{t2.String(), t3.String()} {
		for _, want := range []string{"Rise Slew", "Lkg. Pow.", "Case-I", "Δ%"} {
			if !strings.Contains(tb, want) {
				t.Errorf("FO-4 table missing %q:\n%s", want, tb)
			}
		}
	}
}

func TestTableIV(t *testing.T) {
	out := TableIV().String()
	for _, want := range []string{"0.96 × C'", "1.97 × C'", "Defect density", "Die cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestTableV(t *testing.T) {
	tb, err := TableV(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Pin-3D", "Hetero-Pin-3D", "WNS", "Total Power"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V missing %q:\n%s", want, out)
		}
	}
}

func TestTableVIandVII(t *testing.T) {
	s := testSuite(t)
	t6 := s.TableVI().String()
	for _, want := range []string{"netcard", "PPC", "# MIVs", "Effective Delay"} {
		if !strings.Contains(t6, want) {
			t.Errorf("Table VI missing %q", want)
		}
	}
	t7 := s.TableVII().String()
	for _, want := range []string{"Si Area", "2D-9T/netcard", "M3D-12T/cpu", "PPC"} {
		if !strings.Contains(t7, want) {
			t.Errorf("Table VII missing %q", want)
		}
	}
}

func TestTableVIII(t *testing.T) {
	s := testSuite(t)
	tb, err := s.TableVIII()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Memory Interconnects", "Clock Network", "Critical Path", "Avg. Top Delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table VIII missing %q", want)
		}
	}
}

func TestFigs(t *testing.T) {
	s := testSuite(t)
	dir := t.TempDir()
	f3, err := s.Fig3(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3, "tier-1") {
		t.Errorf("Fig. 3 missing hetero tier view:\n%s", f3)
	}
	f4, err := s.Fig4(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4, "critical path") {
		t.Errorf("Fig. 4 missing path summary:\n%s", f4)
	}
}

// The suite-level shape checks of DESIGN.md §4. At this toy scale (tiny
// dies, yield ≈ κ, generator minimum-size clamps) the per-design deltas
// are noisy, so the test pins the claims the paper itself calls robust:
// the heterogeneous methodology "works best with complex IPs" — the CPU
// — while AES is its stated worst case. The full four-design sweep at
// paper-comparable scale lives in the bench harness (EXPERIMENTS.md).
func TestSuiteHeadlineShape(t *testing.T) {
	s := testSuite(t)
	cpu := s.Results[designs.CPU]
	het := cpu[core.ConfigHetero].PPAC

	// CPU: hetero has the best PDP of all five configurations.
	for cfg, r := range cpu {
		if cfg == core.ConfigHetero {
			continue
		}
		if het.PDPpJ >= r.PPAC.PDPpJ {
			t.Errorf("CPU hetero PDP %v should beat %s %v", het.PDPpJ, cfg, r.PPAC.PDPpJ)
		}
	}
	// CPU: hetero PPC beats both 12-track configurations.
	for _, cfg := range []core.ConfigName{core.Config2D12T, core.ConfigM3D12T} {
		if het.PPC <= cpu[cfg].PPAC.PPC {
			t.Errorf("CPU hetero PPC %v should beat %s %v", het.PPC, cfg, cpu[cfg].PPAC.PPC)
		}
	}
	// CPU: hetero closes timing within the paper's criterion while the
	// 9-track configs fail badly.
	if !het.TimingMet() {
		t.Errorf("CPU hetero WNS %v not met", het.WNS)
	}
	if cpu[core.Config2D9T].PPAC.TimingMet() {
		t.Error("CPU 2D-9T should fail the 12-track f_max")
	}

	// Across designs: hetero Si area never exceeds the 12-track configs'
	// (the 12.5 % shrink), and the 3-D cost/cm² premium holds everywhere.
	for _, dn := range s.DesignsInOrder() {
		h := s.Results[dn][core.ConfigHetero].PPAC
		for _, cfg := range []core.ConfigName{core.Config2D12T, core.ConfigM3D12T} {
			if h.SiAreaMM2 >= s.Results[dn][cfg].PPAC.SiAreaMM2 {
				t.Errorf("%s: hetero Si %v should undercut %s %v", dn, h.SiAreaMM2, cfg, s.Results[dn][cfg].PPAC.SiAreaMM2)
			}
		}
		if h.CostPerCm2 <= s.Results[dn][core.Config2D12T].PPAC.CostPerCm2 {
			t.Errorf("%s: hetero cost/cm² %v should exceed 2-D %v", dn, h.CostPerCm2, s.Results[dn][core.Config2D12T].PPAC.CostPerCm2)
		}
	}
}
