package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/designs"
	"repro/internal/flow"
)

// The evaluation checkpoint is an append-only JSONL journal: a header
// line binding the file to the suite options that produced it, then one
// record per completed unit of work (an f_max search or a finished flow).
// RunSuite appends records as flows finish and, on resume, serves
// completed work from the journal instead of re-running it.
//
// Only what the tables consume is persisted: the PPAC record (with the
// non-serializable clock-tree pointer dropped), the per-stage metrics,
// the degraded-mode flags, the stage-boundary check reports, and the
// precomputed Table VIII deep dive. The floats survive the JSON round
// trip exactly (encoding/json emits shortest-round-trip float64), which
// is what makes a resumed suite's Tables I–VIII byte-identical to an
// uninterrupted run. The live Design/Timing/Power state is not
// persisted; figure rendering detects restored results and says so
// instead of failing.
//
// A record is one line, written with O_APPEND in a single Write call; a
// run killed mid-write leaves at most one truncated final line, which
// loading tolerates (the half-written record's work re-runs).

// ckptVersion is bumped whenever the record schema changes shape
// incompatibly.
const ckptVersion = 1

type ckptHeader struct {
	Kind           string   `json:"kind"`
	Version        int      `json:"version"`
	Scale          float64  `json:"scale"`
	Seed           int64    `json:"seed"`
	Designs        []string `json:"designs"`
	Configs        []string `json:"configs"`
	FmaxIterations int      `json:"fmaxIterations"`
	Check          string   `json:"check,omitempty"`
}

type ckptFmax struct {
	Kind    string  `json:"kind"`
	Design  string  `json:"design"`
	Cells   int     `json:"cells"`
	FmaxGHz float64 `json:"fmaxGHz"`
}

type ckptFlow struct {
	Kind     string             `json:"kind"`
	Design   string             `json:"design"`
	Config   string             `json:"config"`
	PPAC     *core.PPAC         `json:"ppac"`
	Stages   []flow.StageMetric `json:"stages,omitempty"`
	Degraded []string           `json:"degraded,omitempty"`
	Dive     *core.DeepDive     `json:"dive,omitempty"`
	Checks   []*check.Report    `json:"checks,omitempty"`
}

// Lease actions, in lifecycle order. A shard's lease history reads
// grant → renew* → (release | expire | quarantine); expire and
// quarantine return the shard to the pool for a fresh grant.
const (
	LeaseGrant      = "grant"      // shard claimed by an owner for one attempt
	LeaseRenew      = "renew"      // liveness: the owner's journal made progress
	LeaseRelease    = "release"    // the shard completed; the lease retires
	LeaseExpire     = "expire"     // the owner died or stalled; work returns to the pool
	LeaseQuarantine = "quarantine" // the shard's journal failed validation and was set aside
)

// Lease is one shard-coordination record of the journal: the supervisor
// (internal/shard) appends the full lease lifecycle of every shard so a
// killed-and-restarted supervisor can reconstruct ownership, and so the
// farm's restarts/expiries/quarantines are auditable after the fact.
// Owner tokens make the single-writer-per-shard discipline visible: every
// grant names a fresh token, and no two grants of one shard are ever
// live at once (the supervisor kills and reaps the old process before
// appending the expiry that frees the shard).
type Lease struct {
	Kind    string `json:"kind"`
	Shard   int    `json:"shard"`
	Action  string `json:"action"`
	Owner   string `json:"owner"`
	Attempt int    `json:"attempt"`
	// Reason qualifies expire ("stalled", "signal: killed", "exit 2") and
	// quarantine ("crc mismatch", "option mismatch") records.
	Reason string `json:"reason,omitempty"`
	// Units is the shard's work set, recorded on the grant so the journal
	// is self-describing and a resumed supervisor can verify the sharding
	// still matches.
	Units []Unit `json:"units,omitempty"`
}

type flowKey struct {
	design designs.Name
	config core.ConfigName
}

// ckptRecord is one journal entry in file order — exactly one of its
// fields is set. Both formats parse to this, which is what lets
// ConvertCheckpoint translate between them without loss.
type ckptRecord struct {
	fmax  *ckptFmax
	flow  *ckptFlow
	lease *Lease
}

// Checkpoint is an open evaluation journal: the completed work loaded
// from it plus an append handle for new completions. Safe for concurrent
// use by the suite's worker pool.
type Checkpoint struct {
	path string
	// bin selects the length-prefixed binary framing (internal/db,
	// magic "H3CK") over JSONL. Decided by sniffing an existing file's
	// first bytes, or by extension (.db/.bin) for a fresh one.
	bin bool

	mu     sync.Mutex
	f      *os.File
	fmax   map[designs.Name]ckptFmax
	flows  map[flowKey]*ckptFlow
	leases []Lease
}

// headerFor derives the journal header binding a checkpoint to the
// options that produce its results.
func headerFor(opt SuiteOptions) ckptHeader {
	h := ckptHeader{
		Kind:           "header",
		Version:        ckptVersion,
		Scale:          opt.Scale,
		Seed:           opt.Seed,
		FmaxIterations: opt.FmaxIterations,
		Check:          string(opt.Check),
	}
	for _, d := range opt.Designs {
		h.Designs = append(h.Designs, string(d))
	}
	for _, c := range opt.Configs {
		h.Configs = append(h.Configs, string(c))
	}
	return h
}

// headerDiff reports exactly which header fields differ between a
// journal's header (file) and the options of the run trying to use it
// (run), one "field: file X, run Y" clause per mismatch. Empty means the
// headers agree.
func headerDiff(file, run ckptHeader) []string {
	var diffs []string
	add := func(field string, a, b any) {
		diffs = append(diffs, fmt.Sprintf("%s: file %v, run %v", field, a, b))
	}
	if file.Version != run.Version {
		add("format version", file.Version, run.Version)
	}
	if file.Scale != run.Scale {
		add("scale", file.Scale, run.Scale)
	}
	if file.Seed != run.Seed {
		add("seed", file.Seed, run.Seed)
	}
	if file.FmaxIterations != run.FmaxIterations {
		add("fmax iterations", file.FmaxIterations, run.FmaxIterations)
	}
	if fc, rc := orOff(file.Check), orOff(run.Check); fc != rc {
		add("check mode", fc, rc)
	}
	if !sameStrings(file.Designs, run.Designs) {
		add("design set", strings.Join(file.Designs, ","), strings.Join(run.Designs, ","))
	}
	if !sameStrings(file.Configs, run.Configs) {
		add("config set", strings.Join(file.Configs, ","), strings.Join(run.Configs, ","))
	}
	return diffs
}

func orOff(check string) string {
	if check == "" {
		return "off"
	}
	return check
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameHeader(a, b ckptHeader) bool { return len(headerDiff(a, b)) == 0 }

// binaryExt reports whether a fresh checkpoint at path should use the
// binary framing (existing files are sniffed instead).
func binaryExt(path string) bool {
	switch filepath.Ext(path) {
	case ".db", ".bin":
		return true
	}
	return false
}

// parseCheckpoint dispatches on the file's first bytes: the journal
// magic selects the binary framing, anything else parses as JSONL (a
// JSONL journal starts with '{').
func parseCheckpoint(data []byte) (hdr ckptHeader, recs []ckptRecord, bin bool, err error) {
	if len(data) >= 4 && string(data[:4]) == db.MagicJournal {
		hdr, recs, err = parseBinaryCkpt(data)
		return hdr, recs, true, err
	}
	hdr, recs, err = parseJSONLCkpt(data)
	return hdr, recs, false, err
}

// errDifferentOptions builds the option-mismatch refusal, naming exactly
// which header fields differ so the operator can tell a wrong flag from a
// wrong file. Shared by both formats so callers see one message
// regardless of encoding.
func errDifferentOptions(diffs []string) error {
	return fmt.Errorf("journal was written under different suite options — %s — delete it or rerun with the original options",
		strings.Join(diffs, "; "))
}

// OpenCheckpoint opens (or creates) the journal at path for the given
// suite options. An existing journal written under different options is
// refused — resuming it would silently mix incompatible results. The
// journal format is auto-detected for existing files; fresh journals
// are binary when the path ends in .db or .bin, JSONL otherwise.
func OpenCheckpoint(path string, opt SuiteOptions) (*Checkpoint, error) {
	opt = opt.withDefaults()
	c := &Checkpoint{
		path:  path,
		bin:   binaryExt(path),
		fmax:  make(map[designs.Name]ckptFmax),
		flows: make(map[flowKey]*ckptFlow),
	}
	want := headerFor(opt)

	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(data) == 0):
		// Fresh journal: write the header first.
	case err != nil:
		return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
	default:
		hdr, recs, bin, err := parseCheckpoint(data)
		if err != nil {
			return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
		}
		if diffs := headerDiff(hdr, want); len(diffs) > 0 {
			return nil, fmt.Errorf("eval: checkpoint %s: %w", path, errDifferentOptions(diffs))
		}
		c.bin = bin
		c.index(recs)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
	}
	c.f = f
	if len(data) == 0 {
		if err := c.appendHeader(want); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// index installs parsed records into the completion maps (later records
// win, mirroring append order).
func (c *Checkpoint) index(recs []ckptRecord) {
	for _, rec := range recs {
		switch {
		case rec.fmax != nil:
			c.fmax[designs.Name(rec.fmax.Design)] = *rec.fmax
		case rec.flow != nil:
			c.flows[flowKey{designs.Name(rec.flow.Design), core.ConfigName(rec.flow.Config)}] = rec.flow
		case rec.lease != nil:
			c.leases = append(c.leases, *rec.lease)
		}
	}
}

// parseJSONLCkpt parses the line-oriented format. A truncated or
// malformed final line is tolerated (the journal may have been killed
// mid-append); a malformed line anywhere else is an error.
func parseJSONLCkpt(data []byte) (ckptHeader, []ckptRecord, error) {
	var (
		hdr  ckptHeader
		recs []ckptRecord
	)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	bad := -1 // line number of a malformed record, if any
	sawHeader := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if bad >= 0 {
			return hdr, nil, fmt.Errorf("malformed record at line %d (only the final line may be truncated)", bad)
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			bad = line
			continue
		}
		switch kind.Kind {
		case "header":
			var h ckptHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				bad = line
				continue
			}
			if sawHeader {
				return hdr, nil, fmt.Errorf("duplicate header at line %d", line)
			}
			sawHeader = true
			hdr = h
		case "fmax":
			var r ckptFmax
			if err := json.Unmarshal(raw, &r); err != nil {
				bad = line
				continue
			}
			recs = append(recs, ckptRecord{fmax: &r})
		case "flow":
			var r ckptFlow
			if err := json.Unmarshal(raw, &r); err != nil || r.PPAC == nil {
				bad = line
				continue
			}
			recs = append(recs, ckptRecord{flow: &r})
		case "lease":
			var r Lease
			if err := json.Unmarshal(raw, &r); err != nil || !validLeaseAction(r.Action) {
				bad = line
				continue
			}
			recs = append(recs, ckptRecord{lease: &r})
		default:
			bad = line
		}
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	if !sawHeader {
		return hdr, nil, fmt.Errorf("no header record — not an evaluation checkpoint")
	}
	return hdr, recs, nil
}

// appendHeader writes the journal's first record.
func (c *Checkpoint) appendHeader(h ckptHeader) error {
	if c.bin {
		return c.appendRaw(db.Header(db.MagicJournal), func() ([]byte, error) {
			return appendHeaderFrame(nil, h)
		})
	}
	return c.append(h)
}

// append marshals one record and writes it with a single Write call.
// Callers hold no lock; append takes it.
func (c *Checkpoint) append(rec any) error {
	if c.bin {
		return c.appendRaw(nil, func() ([]byte, error) {
			return appendRecordFrame(nil, rec)
		})
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("eval: checkpoint %s: %w", c.path, err)
	}
	return c.write(append(b, '\n'))
}

// appendRaw builds prefix+frame and writes it in one call.
func (c *Checkpoint) appendRaw(prefix []byte, frame func() ([]byte, error)) error {
	b, err := frame()
	if err != nil {
		return fmt.Errorf("eval: checkpoint %s: %w", c.path, err)
	}
	return c.write(append(prefix, b...))
}

func (c *Checkpoint) write(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("eval: checkpoint %s: closed", c.path)
	}
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("eval: checkpoint %s: %w", c.path, err)
	}
	return nil
}

// Fmax returns a design's checkpointed f_max search result, if present.
func (c *Checkpoint) Fmax(n designs.Name) (fmaxGHz float64, cells int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.fmax[n]
	return r.FmaxGHz, r.Cells, ok
}

// PutFmax records a completed f_max search.
func (c *Checkpoint) PutFmax(n designs.Name, cells int, fmaxGHz float64) error {
	rec := ckptFmax{Kind: "fmax", Design: string(n), Cells: cells, FmaxGHz: fmaxGHz}
	if err := c.append(rec); err != nil {
		return err
	}
	c.mu.Lock()
	c.fmax[n] = rec
	c.mu.Unlock()
	return nil
}

// Flow rehydrates a checkpointed flow result, if present. The restored
// result carries everything the tables consume (PPAC, stage metrics,
// check reports, degraded flags, the precomputed deep dive) but no live
// design state: Result.Design, Timing, Power, Clock, and Router are nil,
// and Restored reports true for it.
func (c *Checkpoint) Flow(design designs.Name, cfg core.ConfigName) (*core.Result, bool) {
	c.mu.Lock()
	rec, ok := c.flows[flowKey{design, cfg}]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	p := *rec.PPAC
	return &core.Result{
		PPAC:     &p,
		Stages:   append([]flow.StageMetric{}, rec.Stages...),
		Degraded: append([]string{}, rec.Degraded...),
		Dive:     rec.Dive,
		Checks:   rec.Checks,
		Restored: true,
	}, true
}

// PutFlow records a completed flow. The deep dive is computed here,
// while the live timing/clock/power state still exists, so a restored
// result can serve Table VIII without it.
func (c *Checkpoint) PutFlow(design designs.Name, cfg core.ConfigName, r *core.Result) error {
	// Best-effort: 2-D and 3-D results alike carry the state DeepAnalyze
	// needs right after a run; if a caller checkpoints a partial result,
	// the dive is simply absent and Table VIII will say so on resume.
	dive, _ := core.DeepAnalyze(r)
	p := *r.PPAC
	p.Clock = nil // pointer-rich clock tree is not serializable
	rec := &ckptFlow{
		Kind:     "flow",
		Design:   string(design),
		Config:   string(cfg),
		PPAC:     &p,
		Stages:   r.Stages,
		Degraded: r.Degraded,
		Dive:     dive,
		Checks:   r.Checks,
	}
	if err := c.append(rec); err != nil {
		return err
	}
	c.mu.Lock()
	c.flows[flowKey{design, cfg}] = rec
	c.mu.Unlock()
	return nil
}

// validLeaseAction gates the lease-action vocabulary on parse so a
// corrupted action string is caught at load, not at supervisor-resume.
func validLeaseAction(a string) bool {
	switch a {
	case LeaseGrant, LeaseRenew, LeaseRelease, LeaseExpire, LeaseQuarantine:
		return true
	}
	return false
}

// PutLease appends one shard-coordination record. The Kind field is
// normalized; callers fill everything else.
func (c *Checkpoint) PutLease(l Lease) error {
	if !validLeaseAction(l.Action) {
		return fmt.Errorf("eval: checkpoint %s: invalid lease action %q", c.path, l.Action)
	}
	l.Kind = "lease"
	if err := c.append(&l); err != nil {
		return err
	}
	c.mu.Lock()
	c.leases = append(c.leases, l)
	c.mu.Unlock()
	return nil
}

// Leases returns every lease record in append order (loaded and newly
// written alike).
func (c *Checkpoint) Leases() []Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Lease{}, c.leases...)
}

// Completed reports how many f_max searches and flows the journal holds.
func (c *Checkpoint) Completed() (fmax, flows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fmax), len(c.flows)
}

// Close closes the append handle; the loaded records stay readable.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
