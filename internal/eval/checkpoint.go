package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/flow"
)

// The evaluation checkpoint is an append-only JSONL journal: a header
// line binding the file to the suite options that produced it, then one
// record per completed unit of work (an f_max search or a finished flow).
// RunSuite appends records as flows finish and, on resume, serves
// completed work from the journal instead of re-running it.
//
// Only what the tables consume is persisted: the PPAC record (with the
// non-serializable clock-tree pointer dropped), the per-stage metrics,
// the degraded-mode flags, the stage-boundary check reports, and the
// precomputed Table VIII deep dive. The floats survive the JSON round
// trip exactly (encoding/json emits shortest-round-trip float64), which
// is what makes a resumed suite's Tables I–VIII byte-identical to an
// uninterrupted run. The live Design/Timing/Power state is not
// persisted; figure rendering detects restored results and says so
// instead of failing.
//
// A record is one line, written with O_APPEND in a single Write call; a
// run killed mid-write leaves at most one truncated final line, which
// loading tolerates (the half-written record's work re-runs).

// ckptVersion is bumped whenever the record schema changes shape
// incompatibly.
const ckptVersion = 1

type ckptHeader struct {
	Kind           string   `json:"kind"`
	Version        int      `json:"version"`
	Scale          float64  `json:"scale"`
	Seed           int64    `json:"seed"`
	Designs        []string `json:"designs"`
	Configs        []string `json:"configs"`
	FmaxIterations int      `json:"fmaxIterations"`
	Check          string   `json:"check,omitempty"`
}

type ckptFmax struct {
	Kind    string  `json:"kind"`
	Design  string  `json:"design"`
	Cells   int     `json:"cells"`
	FmaxGHz float64 `json:"fmaxGHz"`
}

type ckptFlow struct {
	Kind     string             `json:"kind"`
	Design   string             `json:"design"`
	Config   string             `json:"config"`
	PPAC     *core.PPAC         `json:"ppac"`
	Stages   []flow.StageMetric `json:"stages,omitempty"`
	Degraded []string           `json:"degraded,omitempty"`
	Dive     *core.DeepDive     `json:"dive,omitempty"`
	Checks   []*check.Report    `json:"checks,omitempty"`
}

type flowKey struct {
	design designs.Name
	config core.ConfigName
}

// Checkpoint is an open evaluation journal: the completed work loaded
// from it plus an append handle for new completions. Safe for concurrent
// use by the suite's worker pool.
type Checkpoint struct {
	path string

	mu    sync.Mutex
	f     *os.File
	fmax  map[designs.Name]ckptFmax
	flows map[flowKey]*ckptFlow
}

// headerFor derives the journal header binding a checkpoint to the
// options that produce its results.
func headerFor(opt SuiteOptions) ckptHeader {
	h := ckptHeader{
		Kind:           "header",
		Version:        ckptVersion,
		Scale:          opt.Scale,
		Seed:           opt.Seed,
		FmaxIterations: opt.FmaxIterations,
		Check:          string(opt.Check),
	}
	for _, d := range opt.Designs {
		h.Designs = append(h.Designs, string(d))
	}
	for _, c := range opt.Configs {
		h.Configs = append(h.Configs, string(c))
	}
	return h
}

func sameHeader(a, b ckptHeader) bool {
	if a.Version != b.Version || a.Scale != b.Scale || a.Seed != b.Seed ||
		a.FmaxIterations != b.FmaxIterations || a.Check != b.Check ||
		len(a.Designs) != len(b.Designs) || len(a.Configs) != len(b.Configs) {
		return false
	}
	for i := range a.Designs {
		if a.Designs[i] != b.Designs[i] {
			return false
		}
	}
	for i := range a.Configs {
		if a.Configs[i] != b.Configs[i] {
			return false
		}
	}
	return true
}

// OpenCheckpoint opens (or creates) the journal at path for the given
// suite options. An existing journal written under different options is
// refused — resuming it would silently mix incompatible results.
func OpenCheckpoint(path string, opt SuiteOptions) (*Checkpoint, error) {
	opt = opt.withDefaults()
	c := &Checkpoint{
		path:  path,
		fmax:  make(map[designs.Name]ckptFmax),
		flows: make(map[flowKey]*ckptFlow),
	}
	want := headerFor(opt)

	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(data) == 0):
		// Fresh journal: write the header first.
	case err != nil:
		return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
	default:
		if err := c.load(data, want); err != nil {
			return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eval: checkpoint %s: %w", path, err)
	}
	c.f = f
	if len(data) == 0 {
		if err := c.append(want); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// load parses the journal, validates its header, and indexes the
// records. A truncated or malformed final line is tolerated (the journal
// may have been killed mid-append); a malformed line anywhere else is an
// error.
func (c *Checkpoint) load(data []byte, want ckptHeader) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	bad := -1 // line number of a malformed record, if any
	sawHeader := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if bad >= 0 {
			return fmt.Errorf("malformed record at line %d (only the final line may be truncated)", bad)
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			bad = line
			continue
		}
		switch kind.Kind {
		case "header":
			var h ckptHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				bad = line
				continue
			}
			if sawHeader {
				return fmt.Errorf("duplicate header at line %d", line)
			}
			sawHeader = true
			if !sameHeader(h, want) {
				return fmt.Errorf("journal was written under different suite options (scale/seed/designs/configs/check) — delete it or rerun with the original options")
			}
		case "fmax":
			var r ckptFmax
			if err := json.Unmarshal(raw, &r); err != nil {
				bad = line
				continue
			}
			c.fmax[designs.Name(r.Design)] = r
		case "flow":
			var r ckptFlow
			if err := json.Unmarshal(raw, &r); err != nil || r.PPAC == nil {
				bad = line
				continue
			}
			c.flows[flowKey{designs.Name(r.Design), core.ConfigName(r.Config)}] = &r
		default:
			bad = line
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("no header record — not an evaluation checkpoint")
	}
	return nil
}

// append marshals one record and writes it as a single line. Callers
// hold no lock; append takes it.
func (c *Checkpoint) append(rec any) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("eval: checkpoint %s: %w", c.path, err)
	}
	b = append(b, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("eval: checkpoint %s: closed", c.path)
	}
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("eval: checkpoint %s: %w", c.path, err)
	}
	return nil
}

// Fmax returns a design's checkpointed f_max search result, if present.
func (c *Checkpoint) Fmax(n designs.Name) (fmaxGHz float64, cells int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.fmax[n]
	return r.FmaxGHz, r.Cells, ok
}

// PutFmax records a completed f_max search.
func (c *Checkpoint) PutFmax(n designs.Name, cells int, fmaxGHz float64) error {
	rec := ckptFmax{Kind: "fmax", Design: string(n), Cells: cells, FmaxGHz: fmaxGHz}
	if err := c.append(rec); err != nil {
		return err
	}
	c.mu.Lock()
	c.fmax[n] = rec
	c.mu.Unlock()
	return nil
}

// Flow rehydrates a checkpointed flow result, if present. The restored
// result carries everything the tables consume (PPAC, stage metrics,
// check reports, degraded flags, the precomputed deep dive) but no live
// design state: Result.Design, Timing, Power, Clock, and Router are nil,
// and Restored reports true for it.
func (c *Checkpoint) Flow(design designs.Name, cfg core.ConfigName) (*core.Result, bool) {
	c.mu.Lock()
	rec, ok := c.flows[flowKey{design, cfg}]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	p := *rec.PPAC
	return &core.Result{
		PPAC:     &p,
		Stages:   append([]flow.StageMetric{}, rec.Stages...),
		Degraded: append([]string{}, rec.Degraded...),
		Dive:     rec.Dive,
		Checks:   rec.Checks,
		Restored: true,
	}, true
}

// PutFlow records a completed flow. The deep dive is computed here,
// while the live timing/clock/power state still exists, so a restored
// result can serve Table VIII without it.
func (c *Checkpoint) PutFlow(design designs.Name, cfg core.ConfigName, r *core.Result) error {
	// Best-effort: 2-D and 3-D results alike carry the state DeepAnalyze
	// needs right after a run; if a caller checkpoints a partial result,
	// the dive is simply absent and Table VIII will say so on resume.
	dive, _ := core.DeepAnalyze(r)
	p := *r.PPAC
	p.Clock = nil // pointer-rich clock tree is not serializable
	rec := &ckptFlow{
		Kind:     "flow",
		Design:   string(design),
		Config:   string(cfg),
		PPAC:     &p,
		Stages:   r.Stages,
		Degraded: r.Degraded,
		Dive:     dive,
		Checks:   r.Checks,
	}
	if err := c.append(rec); err != nil {
		return err
	}
	c.mu.Lock()
	c.flows[flowKey{design, cfg}] = rec
	c.mu.Unlock()
	return nil
}

// Completed reports how many f_max searches and flows the journal holds.
func (c *Checkpoint) Completed() (fmax, flows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fmax), len(c.flows)
}

// Close closes the append handle; the loaded records stay readable.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
