package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/flow"
)

// testFlowResult builds a small but fully populated flow result for
// journal tests; vary freq to make two results provably different.
func testFlowResult(design string, cfg core.ConfigName, freq float64) *core.Result {
	return &core.Result{
		PPAC: &core.PPAC{Design: design, Config: cfg, FreqGHz: freq,
			PowerMW: 12.5, WNS: -0.031, WLm: 0.25},
		Stages: []flow.StageMetric{{Name: "place", Cells: 1234,
			Stats: map[string]int64{flow.StatCongestionRetries: 1}}},
	}
}

// TestLeaseRoundTrip proves the full lease lifecycle survives a journal
// round trip in both framings, interleaved with work records.
func TestLeaseRoundTrip(t *testing.T) {
	for _, ext := range []string{".jsonl", ".db"} {
		t.Run(ext, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "farm"+ext)
			opt := ckptOpts()
			ck, err := OpenCheckpoint(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			leases := []Lease{
				{Shard: 0, Action: LeaseGrant, Owner: "s0-a1", Attempt: 1,
					Units: []Unit{{Design: designs.CPU, Config: core.ConfigHetero}}},
				{Shard: 0, Action: LeaseRenew, Owner: "s0-a1", Attempt: 1},
				{Shard: 0, Action: LeaseExpire, Owner: "s0-a1", Attempt: 1, Reason: "signal: killed"},
				{Shard: 1, Action: LeaseQuarantine, Owner: "s1-a1", Attempt: 1, Reason: "crc mismatch"},
				{Shard: 0, Action: LeaseGrant, Owner: "s0-a2", Attempt: 2,
					Units: []Unit{{Design: designs.CPU, Config: core.ConfigHetero}}},
				{Shard: 0, Action: LeaseRelease, Owner: "s0-a2", Attempt: 2},
			}
			for i, l := range leases {
				if i == 2 { // a work record between coordination records
					if err := ck.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
						t.Fatal(err)
					}
				}
				if err := ck.PutLease(l); err != nil {
					t.Fatal(err)
				}
			}
			if err := ck.PutLease(Lease{Shard: 9, Action: "bogus"}); err == nil {
				t.Fatal("invalid lease action accepted")
			}
			if err := ck.Close(); err != nil {
				t.Fatal(err)
			}

			ck2, err := OpenCheckpoint(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer ck2.Close()
			got := ck2.Leases()
			if len(got) != len(leases) {
				t.Fatalf("reloaded %d leases, want %d", len(got), len(leases))
			}
			for i := range leases {
				want := leases[i]
				want.Kind = "lease"
				g := got[i]
				if g.Shard != want.Shard || g.Action != want.Action || g.Owner != want.Owner ||
					g.Attempt != want.Attempt || g.Reason != want.Reason || len(g.Units) != len(want.Units) {
					t.Errorf("lease %d = %+v, want %+v", i, g, want)
				}
				for j := range want.Units {
					if g.Units[j] != want.Units[j] {
						t.Errorf("lease %d unit %d = %v, want %v", i, j, g.Units[j], want.Units[j])
					}
				}
			}
			if _, _, ok := ck2.Fmax(designs.CPU); !ok {
				t.Error("work record lost among leases")
			}
		})
	}
}

// TestLeaseConvertBetweenFormats proves leases survive the
// JSONL<->binary conversion both ways.
func TestLeaseConvertBetweenFormats(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	opt := ckptOpts()
	ck, err := OpenCheckpoint(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	lease := Lease{Shard: 3, Action: LeaseExpire, Owner: "s3-a1", Attempt: 1, Reason: "stalled"}
	if err := ck.PutLease(lease); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	bin := filepath.Join(dir, "conv.db")
	if err := ConvertCheckpoint(src, bin); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.jsonl")
	if err := ConvertCheckpoint(bin, back); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{bin, back} {
		ck2, err := OpenCheckpoint(p, opt)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		got := ck2.Leases()
		ck2.Close()
		if len(got) != 1 || got[0].Action != LeaseExpire || got[0].Reason != "stalled" ||
			got[0].Owner != "s3-a1" || got[0].Shard != 3 {
			t.Errorf("%s: leases = %+v", filepath.Base(p), got)
		}
	}
}

// TestMergeCheckpoints proves the merge invariants: shard journals in
// any order, with overlapping (identical) records and interleaved
// leases, merge to byte-identical canonical journals equal to what a
// single journal holding the same records contains.
func TestMergeCheckpoints(t *testing.T) {
	for _, ext := range []string{".jsonl", ".db"} {
		t.Run(ext, func(t *testing.T) {
			dir := t.TempDir()
			opt := ckptOpts()
			cpuFlow := testFlowResult("cpu", core.ConfigHetero, 0.4375)
			aesFlow := testFlowResult("aes", core.Config2D12T, 0.9)

			// Shard A: cpu fmax + cpu flow, plus coordination noise.
			a := filepath.Join(dir, "shard-a"+ext)
			ckA, err := OpenCheckpoint(a, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := ckA.PutLease(Lease{Shard: 0, Action: LeaseGrant, Owner: "s0-a1", Attempt: 1}); err != nil {
				t.Fatal(err)
			}
			if err := ckA.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
				t.Fatal(err)
			}
			if err := ckA.PutFlow(designs.CPU, core.ConfigHetero, cpuFlow); err != nil {
				t.Fatal(err)
			}
			ckA.Close()

			// Shard B: aes work plus a DUPLICATE of the cpu fmax record
			// (two shards sharing a design both compute its target).
			b := filepath.Join(dir, "shard-b"+ext)
			ckB, err := OpenCheckpoint(b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := ckB.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
				t.Fatal(err)
			}
			if err := ckB.PutFmax(designs.AES, 900, 0.9); err != nil {
				t.Fatal(err)
			}
			if err := ckB.PutFlow(designs.AES, core.Config2D12T, aesFlow); err != nil {
				t.Fatal(err)
			}
			ckB.Close()

			m1 := filepath.Join(dir, "merged1"+ext)
			if err := MergeCheckpoints(m1, opt, a, b); err != nil {
				t.Fatal(err)
			}
			m2 := filepath.Join(dir, "merged2"+ext)
			if err := MergeCheckpoints(m2, opt, b, a); err != nil {
				t.Fatal(err)
			}
			d1, _ := os.ReadFile(m1)
			d2, _ := os.ReadFile(m2)
			if !bytes.Equal(d1, d2) {
				t.Error("merge is source-order dependent")
			}

			// The merged journal resumes cleanly and holds everything.
			ck, err := OpenCheckpoint(m1, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer ck.Close()
			if _, _, ok := ck.Fmax(designs.CPU); !ok {
				t.Error("cpu fmax missing after merge")
			}
			if _, _, ok := ck.Fmax(designs.AES); !ok {
				t.Error("aes fmax missing after merge")
			}
			if _, ok := ck.Flow(designs.CPU, core.ConfigHetero); !ok {
				t.Error("cpu flow missing after merge")
			}
			if _, ok := ck.Flow(designs.AES, core.Config2D12T); !ok {
				t.Error("aes flow missing after merge")
			}
			if n := len(ck.Leases()); n != 0 {
				t.Errorf("%d lease records leaked into the merged journal", n)
			}
		})
	}
}

// TestMergeRefusesDivergentDuplicates proves the merge never picks a
// winner between conflicting duplicates.
func TestMergeRefusesDivergentDuplicates(t *testing.T) {
	dir := t.TempDir()
	opt := ckptOpts()
	write := func(name string, fmax float64) string {
		path := filepath.Join(dir, name)
		ck, err := OpenCheckpoint(path, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := ck.PutFmax(designs.CPU, 1234, fmax); err != nil {
			t.Fatal(err)
		}
		ck.Close()
		return path
	}
	a := write("a.jsonl", 0.4375)
	b := write("b.jsonl", 0.5) // diverged: determinism bug or corruption
	err := MergeCheckpoints(filepath.Join(dir, "m.jsonl"), opt, a, b)
	if err == nil || !strings.Contains(err.Error(), "divergent duplicate") {
		t.Fatalf("divergent duplicate accepted: %v", err)
	}
}

// TestMergeRefusesForeignHeader proves a shard journal written under
// different options cannot sneak into a merge.
func TestMergeRefusesForeignHeader(t *testing.T) {
	dir := t.TempDir()
	opt := ckptOpts()
	foreign := opt
	foreign.Seed = 99
	path := filepath.Join(dir, "foreign.jsonl")
	ck, err := OpenCheckpoint(path, foreign)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	err = MergeCheckpoints(filepath.Join(dir, "m.jsonl"), opt, path)
	if err == nil || !strings.Contains(err.Error(), "different suite options") {
		t.Fatalf("foreign header accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "seed") {
		t.Errorf("mismatch error does not name the differing field: %v", err)
	}
}

// TestOptionMismatchNamesFields pins the satellite contract: the
// option-mismatch refusal reports exactly which header fields differ,
// with both values, and nothing about fields that agree.
func TestOptionMismatchNamesFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	opt := ckptOpts()
	ck, err := OpenCheckpoint(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()

	other := opt
	other.Scale = 0.25
	other.Seed = 7
	other.Check = core.CheckFull
	_, err = OpenCheckpoint(path, other)
	if err == nil {
		t.Fatal("mismatched options accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		"scale: file 0.05, run 0.25",
		"seed: file 1, run 7",
		"check mode: file off, run full",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing clause %q", msg, want)
		}
	}
	for _, stray := range []string{"design set", "config set", "fmax iterations", "format version"} {
		if strings.Contains(msg, stray) {
			t.Errorf("error %q names agreeing field %q", msg, stray)
		}
	}

	// A design-set difference is named with both sets.
	narrowed := opt
	narrowed.Designs = []designs.Name{designs.CPU}
	_, err = OpenCheckpoint(path, narrowed)
	if err == nil || !strings.Contains(err.Error(), "design set") {
		t.Errorf("design-set mismatch not named: %v", err)
	}
}

// TestJournalStatus exercises the shard planner's resume probe.
func TestJournalStatus(t *testing.T) {
	dir := t.TempDir()
	opt := ckptOpts()
	path := filepath.Join(dir, "shard.jsonl")
	units := []Unit{
		{Design: designs.CPU, Config: core.ConfigHetero},
		{Design: designs.CPU, Config: core.Config2D12T},
	}
	sopt := opt
	sopt.Units = units

	// Missing file: everything missing.
	done, missing, missingFmax, err := JournalStatus(path, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 || len(missing) != 2 || len(missingFmax) != 1 {
		t.Fatalf("fresh: done=%v missing=%v missingFmax=%v", done, missing, missingFmax)
	}

	ck, err := OpenCheckpoint(path, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFlow(designs.CPU, core.ConfigHetero, testFlowResult("cpu", core.ConfigHetero, 0.4375)); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	done, missing, missingFmax, err = JournalStatus(path, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0] != units[0] {
		t.Errorf("done = %v", done)
	}
	if len(missing) != 1 || missing[0] != units[1] {
		t.Errorf("missing = %v", missing)
	}
	if len(missingFmax) != 0 {
		t.Errorf("missingFmax = %v", missingFmax)
	}

	// The unit filter scopes the probe: a different shard's unit list
	// sees its own work as missing, not this shard's as done.
	other := opt
	other.Units = []Unit{{Design: designs.AES, Config: core.Config2D12T}}
	done, missing, _, err = JournalStatus(path, other)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 || len(missing) != 1 {
		t.Errorf("foreign units: done=%v missing=%v", done, missing)
	}
}
