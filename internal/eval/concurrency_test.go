package eval

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/flow"
)

// countingSink tallies every event category; all methods are called from
// worker goroutines, so the counters are atomic.
type countingSink struct {
	stageStarts atomic.Int32
	stageDones  atomic.Int32
	fmax        atomic.Int32
	configs     atomic.Int32
}

func (c *countingSink) StageStart(design, config, stage string) { c.stageStarts.Add(1) }
func (c *countingSink) StageDone(design, config, stage string, m flow.StageMetric, err error) {
	c.stageDones.Add(1)
}
func (c *countingSink) FmaxDone(design string, cells int, fmaxGHz float64) { c.fmax.Add(1) }
func (c *countingSink) ConfigDone(design string, config core.ConfigName, p *core.PPAC) {
	c.configs.Add(1)
}

// stripPPAC returns a PPAC value safe for direct comparison: everything
// but the clock-tree pointer (a deep instance graph whose identity differs
// between runs even when the tree itself is identical).
func stripPPAC(p *core.PPAC) core.PPAC {
	c := *p
	c.Clock = nil
	return c
}

// The tentpole determinism guarantee: a suite run on one worker and a
// suite run on eight workers produce byte-identical PPAC records and f_max
// values.
func TestRunSuiteDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Suite {
		t.Helper()
		opt := DefaultSuiteOptions(0.02)
		opt.FmaxIterations = 3
		opt.Designs = []designs.Name{designs.AES, designs.CPU}
		opt.Workers = workers
		s, err := RunSuite(context.Background(), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	serial := run(1)
	parallel := run(8)

	for _, dn := range serial.DesignsInOrder() {
		if sf, pf := serial.Fmax[dn], parallel.Fmax[dn]; sf != pf {
			t.Errorf("%s: fmax %v (serial) != %v (8 workers)", dn, sf, pf)
		}
		for cfg, sr := range serial.Results[dn] {
			pr, ok := parallel.Results[dn][cfg]
			if !ok {
				t.Errorf("%s/%s: missing from parallel run", dn, cfg)
				continue
			}
			if sp, pp := stripPPAC(sr.PPAC), stripPPAC(pr.PPAC); sp != pp {
				t.Errorf("%s/%s: PPAC diverges across worker counts:\nserial:   %+v\nparallel: %+v", dn, cfg, sp, pp)
			}
		}
	}
}

// A pre-cancelled context must abort the whole suite promptly, return a
// cancellation error, and leave no worker goroutines behind.
func TestRunSuiteCancelled(t *testing.T) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	opt := DefaultSuiteOptions(0.02)
	opt.Designs = []designs.Name{designs.AES}
	start := time.Now()
	s, err := RunSuite(ctx, opt)
	if s != nil || err == nil {
		t.Fatalf("cancelled suite returned (%v, %v)", s, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled suite took %v, want prompt return", d)
	}

	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A deadline expiring mid-suite must surface DeadlineExceeded, not a
// partial result.
func TestRunSuiteDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	opt := DefaultSuiteOptions(0.05)
	opt.FmaxIterations = 3
	s, err := RunSuite(ctx, opt)
	if err == nil {
		t.Skip("suite finished inside 20ms; machine too fast for this deadline")
	}
	if s != nil {
		t.Errorf("timed-out suite returned a partial result")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Errorf("error %v wraps neither DeadlineExceeded nor Canceled", err)
	}
}

// The LogSink must receive one FmaxDone per design and one ConfigDone per
// (design, config) cell, and the suite must populate Results identically.
func TestRunSuiteEvents(t *testing.T) {
	sink := &countingSink{}
	opt := DefaultSuiteOptions(0.02)
	opt.FmaxIterations = 2
	opt.Designs = []designs.Name{designs.AES}
	opt.Events = sink
	if _, err := RunSuite(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if got := sink.fmax.Load(); got != 1 {
		t.Errorf("FmaxDone called %d times, want 1", got)
	}
	if got := sink.configs.Load(); got != int32(len(core.AllConfigs)) {
		t.Errorf("ConfigDone called %d times, want %d", got, len(core.AllConfigs))
	}
	if sink.stageStarts.Load() == 0 || sink.stageDones.Load() != sink.stageStarts.Load() {
		t.Errorf("stage events unbalanced: %d starts, %d dones",
			sink.stageStarts.Load(), sink.stageDones.Load())
	}
}
