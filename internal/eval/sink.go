package eval

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/report"
)

// LogSink is an EventSink that renders the suite's structured events as
// human-readable progress lines on W — the CLI replacement for the old
// printf-style Progress callback. The zero value with only W set prints
// one line per f_max search and per finished configuration; Stages
// additionally prints one line per pipeline stage. Safe for concurrent
// use.
type LogSink struct {
	W io.Writer
	// Stages turns on per-stage lines (verbose).
	Stages bool

	gate flow.Gate
}

// Close detaches the sink from its writer: subsequent events are dropped
// instead of written. Call it once the suite returns and before tearing
// down W — a cancelled suite's worker goroutines can still be unwinding
// and report their final (failed) stage events after RunSuite has
// returned, and those must not land on a writer whose lifetime ended.
// The drop-after-close semantics live in flow.Gate, shared with the
// serve wire adapter.
func (l *LogSink) Close() error {
	l.gate.Close()
	return nil
}

func (l *LogSink) printf(format string, args ...interface{}) {
	l.gate.Do(func() {
		fmt.Fprintf(l.W, format+"\n", args...)
	})
}

// StageStart implements flow.Sink (silent; starts are implied by dones).
func (l *LogSink) StageStart(design, config, stage string) {}

// StageDone implements flow.Sink.
func (l *LogSink) StageDone(design, config, stage string, m flow.StageMetric, err error) {
	if !l.Stages {
		return
	}
	status := ""
	if err != nil {
		status = fmt.Sprintf("  ERROR: %v", err)
	}
	l.printf("[%s] %-10s %-16s %8.1fms  %6d cells%s",
		design, config, stage, float64(m.Wall.Microseconds())/1000, m.Cells, status)
}

// FmaxDone implements EventSink.
func (l *LogSink) FmaxDone(design string, cells int, fmaxGHz float64) {
	l.printf("[%s] %d cells; f_max(2D-12T) = %.3f GHz", design, cells, fmaxGHz)
}

// ConfigDone implements EventSink.
func (l *LogSink) ConfigDone(design string, config core.ConfigName, p *core.PPAC) {
	l.printf("[%s] %-10s WNS=%+.3f P=%.1fmW Si=%.4fmm² PPC=%.3f",
		design, config, p.WNS, p.PowerMW, p.SiAreaMM2, p.PPC)
}

// StageReport aggregates the per-stage wall-time metrics of every flow in
// the suite into the -stage-report table: one row per pipeline stage with
// run count, total/mean/max wall time, ordered by total time spent — the
// "which stage burns the time" view.
func (s *Suite) StageReport() *report.Table {
	cfgs := s.Opt.Configs
	if len(cfgs) == 0 {
		cfgs = core.AllConfigs
	}
	var order []string
	rows := make(map[string]*report.StageRow)
	for _, dn := range s.DesignsInOrder() {
		for _, cfg := range cfgs {
			r, ok := s.Results[dn][cfg]
			if !ok {
				continue
			}
			for _, m := range r.Stages {
				row, ok := rows[m.Name]
				if !ok {
					row = &report.StageRow{Stage: m.Name}
					rows[m.Name] = row
					order = append(order, m.Name)
				}
				row.Runs++
				row.Total += m.Wall
				if m.Wall > row.Max {
					row.Max = m.Wall
				}
			}
		}
	}
	out := make([]report.StageRow, 0, len(order))
	for _, name := range order {
		out = append(out, *rows[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return report.StageTimingTable("Per-stage wall time across the suite's flows", out)
}

// EngineReport aggregates the timing-engine and extraction-cache
// counters every flow's stages reported into the -timer-stats table:
// one row per pipeline stage that ran at least one analysis, in
// execution order.
func (s *Suite) EngineReport() *report.Table {
	cfgs := s.Opt.Configs
	if len(cfgs) == 0 {
		cfgs = core.AllConfigs
	}
	var order []string
	rows := make(map[string]*report.EngineStatsRow)
	for _, dn := range s.DesignsInOrder() {
		for _, cfg := range cfgs {
			r, ok := s.Results[dn][cfg]
			if !ok {
				continue
			}
			for _, m := range r.Stages {
				if len(m.Stats) == 0 {
					continue
				}
				row, ok := rows[m.Name]
				if !ok {
					row = &report.EngineStatsRow{Stage: m.Name}
					rows[m.Name] = row
					order = append(order, m.Name)
				}
				row.Full += m.Stats[flow.StatSTAFull]
				row.Incremental += m.Stats[flow.StatSTAIncr]
				row.Nodes += m.Stats[flow.StatSTANodes]
				row.RCHits += m.Stats[flow.StatRCHits]
				row.RCMisses += m.Stats[flow.StatRCMisses]
				row.ParBatches += m.Stats[flow.StatParBatches]
				row.ParTasks += m.Stats[flow.StatParTasks]
				row.Retries += m.Stats[flow.StatCongestionRetries]
				row.Faults += m.Stats[flow.StatFaultsInjected]
				row.Reruns += m.Stats[flow.StatStageReruns]
				row.Degraded += m.Stats[flow.StatDegradeFullSTA] + m.Stats[flow.StatDegradeUtil]
				row.Panics += m.Stats[flow.StatPanicsRecovered]
			}
		}
	}
	out := make([]report.EngineStatsRow, 0, len(order))
	for _, name := range order {
		out = append(out, *rows[name])
	}
	return report.EngineStatsTable("Timing-engine updates and RC-cache traffic by stage", out)
}

// CheckReport collects every flow's stage-boundary check reports into the
// -check table, with each boundary labeled design/config/stage. Empty
// (only a totals line) when the suite ran with checks off.
func (s *Suite) CheckReport() *report.Table {
	cfgs := s.Opt.Configs
	if len(cfgs) == 0 {
		cfgs = core.AllConfigs
	}
	var reps []*check.Report
	for _, dn := range s.DesignsInOrder() {
		for _, cfg := range cfgs {
			r, ok := s.Results[dn][cfg]
			if !ok {
				continue
			}
			for _, rep := range r.Checks {
				labeled := *rep
				labeled.Stage = fmt.Sprintf("%s/%s/%s", dn, cfg, rep.Stage)
				reps = append(reps, &labeled)
			}
		}
	}
	return report.CheckTable("Design-integrity checks by stage boundary", reps)
}
