package eval

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/place"
	"repro/internal/report"
	"repro/internal/tech"
)

// Fig3 regenerates the paper's Fig. 3 views for the CPU: placement
// density heatmaps (returned as text) and per-tier layout SVGs written to
// dir (skipped when dir is empty). The 2-D 9-track, 2-D 12-track, and
// heterogeneous implementations are rendered; in the hetero SVGs the two
// tiers show the different cell heights.
func (s *Suite) Fig3(dir string) (string, error) {
	out := "Fig. 3 — CPU placement density (darker = denser)\n"
	for _, cfg := range []core.ConfigName{core.Config2D9T, core.Config2D12T, core.ConfigHetero} {
		r, ok := s.Results[designs.CPU][cfg]
		if !ok {
			return "", fmt.Errorf("eval: Fig. 3 needs the CPU in %s", cfg)
		}
		if r.Restored {
			out += fmt.Sprintf("\n[%s] restored from checkpoint — no live layout to render (rerun without -checkpoint for figures)\n", cfg)
			continue
		}
		tiers := cfg.Tiers()
		for ti := 0; ti < tiers; ti++ {
			hist, err := place.DensityMap(r.Design, r.Outline, tech.Tier(ti), tiers, 48, 24)
			if err != nil {
				return "", err
			}
			label := string(cfg)
			if tiers == 2 {
				label += fmt.Sprintf(" tier-%d (%s)", ti, tech.Tier(ti))
			}
			out += "\n[" + label + "]\n" + report.AsciiDensity(hist)

			if dir != "" {
				svg := &report.LayoutSVG{
					Design:  r.Design,
					Outline: r.Outline,
					Tier:    tech.Tier(ti),
					Tiers:   tiers,
				}
				name := fmt.Sprintf("fig3_%s_tier%d.svg", cfg, ti)
				if err := writeSVG(filepath.Join(dir, name), svg); err != nil {
					return "", err
				}
				out += "  → " + filepath.Join(dir, name) + "\n"
			}
		}
	}
	return out, nil
}

// Fig4 regenerates the Fig. 4 overlays for the CPU — clock tree, memory
// nets, and critical path — over the 2-D 12-track and heterogeneous
// layouts. SVGs go to dir; a text summary is returned.
func (s *Suite) Fig4(dir string) (string, error) {
	out := "Fig. 4 — CPU clock tree / memory nets / critical path overlays\n"
	for _, cfg := range []core.ConfigName{core.Config2D12T, core.ConfigHetero} {
		r, ok := s.Results[designs.CPU][cfg]
		if !ok {
			return "", fmt.Errorf("eval: Fig. 4 needs the CPU in %s", cfg)
		}
		if r.Restored {
			out += fmt.Sprintf("  [%s] restored from checkpoint — no live layout to render (rerun without -checkpoint for figures)\n", cfg)
			continue
		}
		paths := r.Timing.CriticalPaths(1)
		memIn, memOut := report.MemoryOverlay(r.Design)
		tiers := cfg.Tiers()
		for ti := 0; ti < tiers; ti++ {
			overlays := []report.Overlay{
				report.ClockOverlay(r.Design, tiers, tech.Tier(ti)),
				memIn, memOut,
			}
			if len(paths) > 0 {
				overlays = append(overlays, report.PathOverlay(paths[0]))
			}
			if dir != "" {
				svg := &report.LayoutSVG{
					Design:   r.Design,
					Outline:  r.Outline,
					Tier:     tech.Tier(ti),
					Tiers:    tiers,
					Overlays: overlays,
				}
				name := fmt.Sprintf("fig4_%s_tier%d.svg", cfg, ti)
				if err := writeSVG(filepath.Join(dir, name), svg); err != nil {
					return "", err
				}
				out += "  → " + filepath.Join(dir, name) + "\n"
			}
		}
		if len(paths) > 0 {
			p := paths[0]
			out += fmt.Sprintf("  [%s] critical path: %d cells, %.1f µm, slack %+.3f ns\n",
				cfg, len(p.Stages), p.Wirelength(), p.Slack)
		}
		out += fmt.Sprintf("  [%s] clock nets: %d overlays, memory nets: %d in / %d out\n",
			cfg, 1, len(memIn.Lines), len(memOut.Lines))
	}
	return out, nil
}

func writeSVG(path string, svg *report.LayoutSVG) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return svg.Write(f)
}
