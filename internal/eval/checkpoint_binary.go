package eval

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/designs"
)

// The binary evaluation journal is the streamable sibling of the JSONL
// checkpoint: the same append-only semantics (header first, one frame
// per completed unit of work, a truncated final frame tolerated) over
// internal/db's length-prefixed CRC-checked framing under the "H3CK"
// magic. Records are written with the same explicit per-field encoders
// the design database uses — no reflection, and floats survive exactly
// by construction rather than by shortest-round-trip printing.

// Frame tags of the binary journal.
const (
	tagCkptHeader = "EHDR"
	tagCkptFmax   = "FMAX"
	tagCkptFlow   = "FLOW"
	// tagCkptLease frames shard-coordination records (db.TagLease): the
	// lease lifecycle internal/shard's supervisor appends around the
	// worker processes' own fmax/flow records.
	tagCkptLease = db.TagLease
)

func appendHeaderFrame(dst []byte, h ckptHeader) ([]byte, error) {
	w := db.NewWriter()
	w.PutI32(int32(h.Version))
	w.PutF64(h.Scale)
	w.PutI64(h.Seed)
	w.PutU32(uint32(len(h.Designs)))
	for _, d := range h.Designs {
		w.PutString(d)
	}
	w.PutU32(uint32(len(h.Configs)))
	for _, c := range h.Configs {
		w.PutString(c)
	}
	w.PutI32(int32(h.FmaxIterations))
	w.PutString(h.Check)
	return db.AppendFrame(dst, tagCkptHeader, w.Bytes())
}

func readHeaderFrame(r *db.Reader) (ckptHeader, error) {
	h := ckptHeader{Kind: "header"}
	v, err := r.I32()
	if err != nil {
		return h, err
	}
	h.Version = int(v)
	if h.Scale, err = r.F64(); err != nil {
		return h, err
	}
	if h.Seed, err = r.I64(); err != nil {
		return h, err
	}
	nd, err := r.Count(4)
	if err != nil {
		return h, err
	}
	for i := 0; i < nd; i++ {
		s, err := r.String()
		if err != nil {
			return h, err
		}
		h.Designs = append(h.Designs, s)
	}
	nc, err := r.Count(4)
	if err != nil {
		return h, err
	}
	for i := 0; i < nc; i++ {
		s, err := r.String()
		if err != nil {
			return h, err
		}
		h.Configs = append(h.Configs, s)
	}
	if v, err = r.I32(); err != nil {
		return h, err
	}
	h.FmaxIterations = int(v)
	h.Check, err = r.String()
	return h, err
}

// appendRecordFrame encodes one fmax or flow record as a frame.
func appendRecordFrame(dst []byte, rec any) ([]byte, error) {
	w := db.NewWriter()
	switch r := rec.(type) {
	case ckptFmax:
		w.PutString(r.Design)
		w.PutI32(int32(r.Cells))
		w.PutF64(r.FmaxGHz)
		return db.AppendFrame(dst, tagCkptFmax, w.Bytes())
	case *ckptFlow:
		w.PutString(r.Design)
		w.PutString(r.Config)
		core.PutPPAC(w, r.PPAC)
		w.PutU32(uint32(len(r.Stages)))
		for _, m := range r.Stages {
			db.PutStageMetric(w, m)
		}
		w.PutU32(uint32(len(r.Degraded)))
		for _, s := range r.Degraded {
			w.PutString(s)
		}
		w.PutBool(r.Dive != nil)
		if r.Dive != nil {
			core.PutDeepDive(w, r.Dive)
		}
		w.PutU32(uint32(len(r.Checks)))
		for _, rep := range r.Checks {
			db.PutCheckReport(w, rep)
		}
		return db.AppendFrame(dst, tagCkptFlow, w.Bytes())
	case *Lease:
		w.PutI32(int32(r.Shard))
		w.PutString(r.Action)
		w.PutString(r.Owner)
		w.PutI32(int32(r.Attempt))
		w.PutString(r.Reason)
		w.PutU32(uint32(len(r.Units)))
		for _, u := range r.Units {
			w.PutString(string(u.Design))
			w.PutString(string(u.Config))
		}
		return db.AppendFrame(dst, tagCkptLease, w.Bytes())
	default:
		return nil, fmt.Errorf("unsupported journal record %T", rec)
	}
}

func readLeaseFrame(r *db.Reader) (*Lease, error) {
	rec := &Lease{Kind: "lease"}
	v, err := r.I32()
	if err != nil {
		return nil, err
	}
	rec.Shard = int(v)
	if rec.Action, err = r.String(); err != nil {
		return nil, err
	}
	if !validLeaseAction(rec.Action) {
		return nil, db.Corruptf("lease frame: invalid action %q", rec.Action)
	}
	if rec.Owner, err = r.String(); err != nil {
		return nil, err
	}
	if v, err = r.I32(); err != nil {
		return nil, err
	}
	rec.Attempt = int(v)
	if rec.Reason, err = r.String(); err != nil {
		return nil, err
	}
	nu, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nu; i++ {
		var u Unit
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		u.Design = designs.Name(s)
		if s, err = r.String(); err != nil {
			return nil, err
		}
		u.Config = core.ConfigName(s)
		rec.Units = append(rec.Units, u)
	}
	return rec, nil
}

func readFmaxFrame(r *db.Reader) (*ckptFmax, error) {
	rec := &ckptFmax{Kind: "fmax"}
	var err error
	if rec.Design, err = r.String(); err != nil {
		return nil, err
	}
	v, err := r.I32()
	if err != nil {
		return nil, err
	}
	rec.Cells = int(v)
	rec.FmaxGHz, err = r.F64()
	return rec, err
}

func readFlowFrame(r *db.Reader) (*ckptFlow, error) {
	rec := &ckptFlow{Kind: "flow"}
	var err error
	if rec.Design, err = r.String(); err != nil {
		return nil, err
	}
	if rec.Config, err = r.String(); err != nil {
		return nil, err
	}
	if rec.PPAC, err = core.ReadPPAC(r); err != nil {
		return nil, err
	}
	ns, err := r.Count(13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ns; i++ {
		m, err := db.ReadStageMetric(r)
		if err != nil {
			return nil, err
		}
		rec.Stages = append(rec.Stages, m)
	}
	ndg, err := r.Count(4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ndg; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		rec.Degraded = append(rec.Degraded, s)
	}
	hasDive, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasDive {
		if rec.Dive, err = core.ReadDeepDive(r); err != nil {
			return nil, err
		}
	}
	nch, err := r.Count(16)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nch; i++ {
		rep, err := db.ReadCheckReport(r)
		if err != nil {
			return nil, err
		}
		rec.Checks = append(rec.Checks, rep)
	}
	return rec, nil
}

// parseBinaryCkpt walks the framed journal. Semantics mirror the JSONL
// parser: the header frame must come first and exactly once, unknown
// tags are skipped, and a truncated final frame is tolerated (the run
// was killed mid-append; that record's work re-runs). A CRC failure on
// a complete frame is corruption and refuses the journal.
func parseBinaryCkpt(data []byte) (ckptHeader, []ckptRecord, error) {
	var (
		hdr  ckptHeader
		recs []ckptRecord
	)
	body, err := db.ParseHeader(data, db.MagicJournal)
	if err != nil {
		return hdr, nil, err
	}
	it := db.NewFrameIter(body)
	sawHeader := false
	for {
		tag, payload, err := it.Next()
		if errors.Is(err, db.ErrTruncated) {
			break // killed mid-append: the partial final frame re-runs
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return hdr, nil, err
		}
		r := db.NewReader(payload)
		switch tag {
		case tagCkptHeader:
			if sawHeader {
				return hdr, nil, db.Corruptf("duplicate header frame")
			}
			sawHeader = true
			if hdr, err = readHeaderFrame(r); err != nil {
				return hdr, nil, err
			}
		case tagCkptFmax:
			rec, err := readFmaxFrame(r)
			if err != nil {
				return hdr, nil, err
			}
			recs = append(recs, ckptRecord{fmax: rec})
		case tagCkptFlow:
			rec, err := readFlowFrame(r)
			if err != nil {
				return hdr, nil, err
			}
			recs = append(recs, ckptRecord{flow: rec})
		case tagCkptLease:
			rec, err := readLeaseFrame(r)
			if err != nil {
				return hdr, nil, err
			}
			recs = append(recs, ckptRecord{lease: rec})
		default:
			// Unknown frame: a future record kind; skip it.
		}
	}
	if !sawHeader {
		return hdr, nil, fmt.Errorf("no header record — not an evaluation checkpoint")
	}
	return hdr, recs, nil
}

// VerifyJournal fully parses an evaluation journal in either framing:
// the header must come first, and in the binary form every complete
// frame must pass its CRC. A truncated final frame is legal (it is on
// disk whenever a run is killed mid-append), so verification accepts
// it just as resume does.
func VerifyJournal(data []byte) error {
	_, _, _, err := parseCheckpoint(data)
	return err
}

// ConvertCheckpoint rewrites the journal at src into dst, translating
// between the JSONL and binary formats. The destination format follows
// dst's extension (.db/.bin = binary, anything else JSONL); record
// order is preserved, so a converted journal resumes exactly where the
// original did.
func ConvertCheckpoint(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("eval: convert %s: %w", src, err)
	}
	hdr, recs, _, err := parseCheckpoint(data)
	if err != nil {
		return fmt.Errorf("eval: convert %s: %w", src, err)
	}
	var out []byte
	if binaryExt(dst) {
		out = db.Header(db.MagicJournal)
		if out, err = appendHeaderFrame(out, hdr); err != nil {
			return fmt.Errorf("eval: convert %s: %w", src, err)
		}
		for _, rec := range recs {
			switch {
			case rec.fmax != nil:
				out, err = appendRecordFrame(out, *rec.fmax)
			case rec.flow != nil:
				out, err = appendRecordFrame(out, rec.flow)
			case rec.lease != nil:
				out, err = appendRecordFrame(out, rec.lease)
			}
			if err != nil {
				return fmt.Errorf("eval: convert %s: %w", src, err)
			}
		}
	} else {
		var buf []byte
		add := func(rec any) error {
			b, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
			return nil
		}
		if err := add(hdr); err != nil {
			return fmt.Errorf("eval: convert %s: %w", src, err)
		}
		for _, rec := range recs {
			var e error
			switch {
			case rec.fmax != nil:
				e = add(*rec.fmax)
			case rec.flow != nil:
				e = add(rec.flow)
			case rec.lease != nil:
				e = add(rec.lease)
			}
			if e != nil {
				return fmt.Errorf("eval: convert %s: %w", src, e)
			}
		}
		out = buf
	}
	if err := os.WriteFile(dst, out, 0o644); err != nil {
		return fmt.Errorf("eval: convert: %w", err)
	}
	return nil
}
