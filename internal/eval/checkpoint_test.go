package eval

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/flow"
)

func ckptOpts() SuiteOptions {
	opt := DefaultSuiteOptions(0.05)
	opt.FmaxIterations = 3
	return opt
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	opt := ckptOpts()

	ck, err := OpenCheckpoint(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
		t.Fatal(err)
	}
	r := &core.Result{
		PPAC: &core.PPAC{Design: "cpu", Config: core.ConfigHetero, FreqGHz: 0.4375,
			PowerMW: 12.5, WNS: -0.031, WLm: 0.25},
		Stages:   []flow.StageMetric{{Name: "place", Cells: 1234, Stats: map[string]int64{flow.StatCongestionRetries: 1}}},
		Degraded: []string{flow.DegradeFullSTA},
	}
	if err := ck.PutFlow(designs.CPU, core.ConfigHetero, r); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	fmax, cells, ok := ck2.Fmax(designs.CPU)
	if !ok || fmax != 0.4375 || cells != 1234 {
		t.Errorf("fmax record = %v/%d/%v", fmax, cells, ok)
	}
	got, ok := ck2.Flow(designs.CPU, core.ConfigHetero)
	if !ok {
		t.Fatal("flow record missing after reopen")
	}
	if !got.Restored {
		t.Error("rehydrated result must be marked Restored")
	}
	if got.PPAC.PowerMW != 12.5 || got.PPAC.WNS != -0.031 {
		t.Errorf("PPAC floats did not round-trip: %+v", got.PPAC)
	}
	if len(got.Stages) != 1 || got.Stages[0].Stats[flow.StatCongestionRetries] != 1 {
		t.Errorf("stage metrics lost: %+v", got.Stages)
	}
	if len(got.Degraded) != 1 || got.Degraded[0] != flow.DegradeFullSTA {
		t.Errorf("degraded flags lost: %v", got.Degraded)
	}
	if got.Design != nil || got.Timing != nil {
		t.Error("restored result must not claim live design state")
	}
	if _, ok := ck2.Flow(designs.AES, core.ConfigHetero); ok {
		t.Error("phantom flow record")
	}
}

func TestCheckpointRefusesOptionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()

	bad := ckptOpts()
	bad.Seed = 99
	if _, err := OpenCheckpoint(path, bad); err == nil || !strings.Contains(err.Error(), "different suite options") {
		t.Errorf("seed mismatch must be refused, got %v", err)
	}
	narrower := ckptOpts()
	narrower.Designs = []designs.Name{designs.CPU}
	if _, err := OpenCheckpoint(path, narrower); err == nil {
		t.Error("design-list mismatch must be refused")
	}
}

func TestCheckpointToleratesTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFmax(designs.AES, 99, 0.5); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// A kill mid-append leaves a half-written final record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"flow","design":"cpu","conf`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatalf("truncated final line must be tolerated: %v", err)
	}
	defer ck2.Close()
	if _, _, ok := ck2.Fmax(designs.AES); !ok {
		t.Error("intact records before the truncation lost")
	}
	if _, ok := ck2.Flow(designs.CPU, core.ConfigHetero); ok {
		t.Error("the half-written record must not be served")
	}
}

func TestCheckpointRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	data, _ := os.ReadFile(path)
	data = append(data, []byte("not json at all\n")...)
	ck2, _ := OpenCheckpoint(path, ckptOpts())
	if ck2 != nil {
		ck2.Close()
	}
	if err := os.WriteFile(path, append(data, []byte(`{"kind":"fmax","design":"aes","cells":1,"fmaxGHz":0.5}`+"\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, ckptOpts()); err == nil {
		t.Error("malformed record followed by more records must be rejected")
	}
}

// killSink cancels the suite's context after n config completions — the
// "kill" half of the kill-and-resume proof.
type killSink struct {
	mu     sync.Mutex
	n      int
	cancel context.CancelFunc
}

func (k *killSink) StageStart(design, config, stage string)                             {}
func (k *killSink) StageDone(design, config, stage string, m flow.StageMetric, e error) {}
func (k *killSink) FmaxDone(design string, cells int, fmaxGHz float64)                  {}
func (k *killSink) ConfigDone(design string, config core.ConfigName, p *core.PPAC) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.n--
	if k.n == 0 {
		k.cancel()
	}
}

// TestKillAndResume is the tentpole acceptance test: a suite interrupted
// mid-run and resumed from its checkpoint renders Tables I–VIII
// byte-identical to an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	ref := testSuite(t) // the uninterrupted reference (no checkpoint at all)
	path := filepath.Join(t.TempDir(), "suite.ckpt")

	// Phase 1: run with a checkpoint and kill after three flows finish.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := ckptOpts()
	opt.Checkpoint = path
	opt.Events = &killSink{n: 3, cancel: cancel}
	if _, err := RunSuite(ctx, opt); err == nil {
		t.Fatal("killed run should report an error")
	}
	probe, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, flows := probe.Completed()
	probe.Close()
	if flows < 3 {
		t.Fatalf("checkpoint holds %d flows after the kill, want >= 3", flows)
	}

	// Phase 2: resume with the same options.
	opt2 := ckptOpts()
	opt2.Checkpoint = path
	s, err := RunSuite(context.Background(), opt2)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	restored := 0
	for _, cfgs := range s.Health {
		for _, h := range cfgs {
			if h != nil && h.Restored {
				restored++
			}
		}
	}
	if restored < 3 {
		t.Errorf("resume restored %d flows, want >= 3", restored)
	}

	// The proof: every suite-derived table is byte-identical.
	if got, want := s.TableI().String(), ref.TableI().String(); got != want {
		t.Errorf("Table I diverged after resume:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	if got, want := s.TableVI().String(), ref.TableVI().String(); got != want {
		t.Errorf("Table VI diverged after resume:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	if got, want := s.TableVII().String(), ref.TableVII().String(); got != want {
		t.Errorf("Table VII diverged after resume:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	rt, err := s.TableVIII()
	if err != nil {
		t.Fatalf("Table VIII on resumed suite: %v", err)
	}
	wt, err := ref.TableVIII()
	if err != nil {
		t.Fatal(err)
	}
	if rt.String() != wt.String() {
		t.Errorf("Table VIII diverged after resume:\n--- resumed ---\n%s\n--- reference ---\n%s", rt.String(), wt.String())
	}

	// Tables II–V are suite-independent; spot-check one renders.
	if tb := TableIV(); !strings.Contains(tb.String(), "Die cost") {
		t.Error("Table IV broken on resumed process")
	}

	// Figures degrade gracefully on restored results instead of failing.
	if f3, err := s.Fig3(""); err != nil {
		t.Errorf("Fig3 on resumed suite: %v", err)
	} else if !strings.Contains(f3, "restored from checkpoint") && !strings.Contains(f3, "tier-1") {
		t.Errorf("Fig3 output unexpected:\n%s", f3)
	}

	// A third run with everything checkpointed runs zero flows and still
	// matches.
	opt3 := ckptOpts()
	opt3.Checkpoint = path
	s3, err := RunSuite(context.Background(), opt3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.TableVII().String(); got != ref.TableVII().String() {
		t.Error("fully-restored suite diverged")
	}
	for _, cfgs := range s3.Health {
		for _, h := range cfgs {
			if h == nil || !h.Restored {
				t.Fatal("fully-checkpointed suite should restore every flow")
			}
		}
	}
	if s3.ResilienceReport() == nil {
		t.Error("resilience report missing")
	}
}
