package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/designs"
)

// Shard-journal merge. Every shard of a distributed evaluation writes an
// ordinary checkpoint journal restricted to its units; MergeCheckpoints
// folds them back into one journal whose record order is canonical —
// f_max records in the suite's design order, then flow records
// design-major in the suite's config order — so the merged bytes are a
// pure function of the options and the result values, independent of
// which shard ran what, in which order, or how many times it was
// restarted. A suite resumed from the merged journal therefore renders
// Tables I–VIII byte-identical to a single-process run.
//
// Duplicates are legal but must agree: two shards that both computed a
// design's f_max (each needed it as its iso-performance target) must
// have produced identical records, because every record is a pure
// function of (design, config, scale, seed). A divergent duplicate can
// only mean corruption or a nondeterminism bug, so the merge refuses it
// loudly instead of picking a winner.

// errDivergent builds the refuse-don't-pick error for mismatched
// duplicate records.
func errDivergent(what string) error {
	return fmt.Errorf("eval: merge: divergent duplicate %s across shard journals — identical inputs must produce identical records; this is corruption or a determinism bug, not a merge conflict to resolve", what)
}

// canonicalJSON is the duplicate-equality witness: both journal formats
// parse into the same record structs, so their canonical JSON encodings
// are comparable across formats.
func canonicalJSON(rec any) ([]byte, error) {
	return json.Marshal(rec)
}

// MergeCheckpoints merges the shard journals at srcs into one journal at
// dst (format chosen by dst's extension: .db/.bin binary, else JSONL).
// Every source must parse cleanly and carry the exact header derived
// from opt; lease records are dropped (coordination history stays in the
// supervisor's own journal), and duplicate work records must be
// identical. The merged file is written atomically (temp file + rename)
// so a crash mid-merge never leaves a half-written journal behind.
func MergeCheckpoints(dst string, opt SuiteOptions, srcs ...string) error {
	opt = opt.withDefaults()
	want := headerFor(opt)

	fmaxRecs := make(map[designs.Name]*ckptFmax)
	flowRecs := make(map[flowKey]*ckptFlow)
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return fmt.Errorf("eval: merge %s: %w", src, err)
		}
		hdr, recs, _, err := parseCheckpoint(data)
		if err != nil {
			return fmt.Errorf("eval: merge %s: %w", src, err)
		}
		if diffs := headerDiff(hdr, want); len(diffs) > 0 {
			return fmt.Errorf("eval: merge %s: %w", src, errDifferentOptions(diffs))
		}
		for _, rec := range recs {
			switch {
			case rec.fmax != nil:
				d := designs.Name(rec.fmax.Design)
				if prev, ok := fmaxRecs[d]; ok {
					if err := sameRecord(prev, rec.fmax, "fmax record for "+rec.fmax.Design); err != nil {
						return err
					}
					continue
				}
				fmaxRecs[d] = rec.fmax
			case rec.flow != nil:
				k := flowKey{designs.Name(rec.flow.Design), core.ConfigName(rec.flow.Config)}
				if prev, ok := flowRecs[k]; ok {
					if err := sameRecord(prev, rec.flow, "flow record for "+rec.flow.Design+"/"+rec.flow.Config); err != nil {
						return err
					}
					continue
				}
				flowRecs[k] = rec.flow
			case rec.lease != nil:
				// Coordination records do not merge into the result set.
			}
		}
	}

	// Canonical order: fmax in design order, then flows design-major in
	// config order — the matrix order, restricted to what is present.
	var out []byte
	var err error
	if binaryExt(dst) {
		out = db.Header(db.MagicJournal)
		if out, err = appendHeaderFrame(out, want); err != nil {
			return fmt.Errorf("eval: merge: %w", err)
		}
		for _, d := range opt.Designs {
			if rec, ok := fmaxRecs[d]; ok {
				if out, err = appendRecordFrame(out, *rec); err != nil {
					return fmt.Errorf("eval: merge: %w", err)
				}
			}
		}
		for _, d := range opt.Designs {
			for _, c := range opt.Configs {
				if rec, ok := flowRecs[flowKey{d, c}]; ok {
					if out, err = appendRecordFrame(out, rec); err != nil {
						return fmt.Errorf("eval: merge: %w", err)
					}
				}
			}
		}
	} else {
		var buf bytes.Buffer
		add := func(rec any) error {
			b, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			buf.Write(b)
			buf.WriteByte('\n')
			return nil
		}
		if err := add(want); err != nil {
			return fmt.Errorf("eval: merge: %w", err)
		}
		for _, d := range opt.Designs {
			if rec, ok := fmaxRecs[d]; ok {
				if err := add(*rec); err != nil {
					return fmt.Errorf("eval: merge: %w", err)
				}
			}
		}
		for _, d := range opt.Designs {
			for _, c := range opt.Configs {
				if rec, ok := flowRecs[flowKey{d, c}]; ok {
					if err := add(rec); err != nil {
						return fmt.Errorf("eval: merge: %w", err)
					}
				}
			}
		}
		out = buf.Bytes()
	}

	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp-*")
	if err != nil {
		return fmt.Errorf("eval: merge: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: merge: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: merge: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: merge: %w", err)
	}
	return nil
}

// sameRecord enforces the divergent-duplicate refusal via canonical JSON
// equality.
func sameRecord(a, b any, what string) error {
	ab, err := canonicalJSON(a)
	if err != nil {
		return fmt.Errorf("eval: merge: %w", err)
	}
	bb, err := canonicalJSON(b)
	if err != nil {
		return fmt.Errorf("eval: merge: %w", err)
	}
	if !bytes.Equal(ab, bb) {
		return errDivergent(what)
	}
	return nil
}

// JournalStatus reads the journal at path without taking an append
// handle and reports which of the run's units are complete. The header
// must match opt exactly (same refusal as OpenCheckpoint); the shard
// filter in opt.Units restricts which cells count (empty = the full
// matrix). missingFmax lists filtered designs whose f_max search has not
// been journaled. A missing file reports everything missing — a fresh
// shard looks exactly like an empty journal.
func JournalStatus(path string, opt SuiteOptions) (done, missing []Unit, missingFmax []designs.Name, err error) {
	opt = opt.withDefaults()
	fmaxSeen := make(map[designs.Name]bool)
	flowSeen := make(map[flowKey]bool)

	data, rerr := os.ReadFile(path)
	switch {
	case os.IsNotExist(rerr) || (rerr == nil && len(data) == 0):
		// Fresh journal: nothing done.
	case rerr != nil:
		return nil, nil, nil, fmt.Errorf("eval: journal %s: %w", path, rerr)
	default:
		hdr, recs, _, perr := parseCheckpoint(data)
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("eval: journal %s: %w", path, perr)
		}
		if diffs := headerDiff(hdr, headerFor(opt)); len(diffs) > 0 {
			return nil, nil, nil, fmt.Errorf("eval: journal %s: %w", path, errDifferentOptions(diffs))
		}
		for _, rec := range recs {
			switch {
			case rec.fmax != nil:
				fmaxSeen[designs.Name(rec.fmax.Design)] = true
			case rec.flow != nil:
				flowSeen[flowKey{designs.Name(rec.flow.Design), core.ConfigName(rec.flow.Config)}] = true
			}
		}
	}

	for _, d := range opt.Designs {
		if !opt.wantDesign(d) {
			continue
		}
		if !fmaxSeen[d] {
			missingFmax = append(missingFmax, d)
		}
		for _, c := range opt.Configs {
			if !opt.wantUnit(d, c) {
				continue
			}
			u := Unit{Design: d, Config: c}
			if flowSeen[flowKey{d, c}] {
				done = append(done, u)
			} else {
				missing = append(missing, u)
			}
		}
	}
	return done, missing, missingFmax, nil
}
