package eval

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

// TestLogSinkCloseStopsWrites: a stage error delivered after the suite
// cancels and the caller closes the sink must be dropped, not written to
// the dead writer. Run under -race, this also proves the sink's locking
// is sound with concurrent reporters.
func TestLogSinkCloseStopsWrites(t *testing.T) {
	var buf bytes.Buffer
	l := &LogSink{W: &buf, Stages: true}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				l.StageDone("cpu", "Hetero-M3D", "place", flow.StageMetric{}, nil)
				l.ConfigDone("cpu", core.ConfigHetero, &core.PPAC{})
			}
		}()
	}
	close(start)
	l.Close()
	wg.Wait()

	// All reporters have drained and the gate guarantees Close was a
	// barrier, so plain reads of the buffer are race-free from here on.
	n := buf.Len()
	// Post-Close events — the cancelled-suite straggler case — must be
	// no-ops.
	l.StageDone("cpu", "Hetero-M3D", "signoff", flow.StageMetric{}, nil)
	l.FmaxDone("cpu", 10, 0.5)
	if after := buf.Len(); after != n {
		t.Errorf("sink wrote %d bytes after Close", after-n)
	}
}

func TestLogSinkFormats(t *testing.T) {
	var buf bytes.Buffer
	l := &LogSink{W: &buf, Stages: true}
	l.StageDone("aes", "2D-9T", "place", flow.StageMetric{Cells: 42}, nil)
	l.FmaxDone("aes", 42, 0.5)
	l.ConfigDone("aes", core.Config2D9T, &core.PPAC{WNS: -0.1, PowerMW: 3, SiAreaMM2: 0.01, PPC: 1.5})
	out := buf.String()
	for _, want := range []string{"f_max(2D-12T) = 0.500 GHz", "42 cells", "WNS=-0.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// TestCleanSuiteResilience: with no faults armed, the resilience report
// shows every flow clean — the acceptance bar for no-fault runs.
func TestCleanSuiteResilience(t *testing.T) {
	s := testSuite(t)
	if n := s.Degradations(); n != 0 {
		t.Errorf("clean suite reports %d degradations", n)
	}
	out := s.ResilienceReport().String()
	if !strings.Contains(out, "20 clean") {
		t.Errorf("resilience report should summarize 20 clean flows:\n%s", out)
	}
	if !strings.Contains(out, "0 degraded") {
		t.Errorf("resilience report should show zero degraded flows:\n%s", out)
	}
	// The engine report gained the robustness columns; all zero here.
	eng := s.EngineReport().String()
	for _, col := range []string{"Faults", "Reruns", "Panics"} {
		if !strings.Contains(eng, col) {
			t.Errorf("engine report missing %q column:\n%s", col, eng)
		}
	}
	summary := s.resilienceSummary()
	if !strings.Contains(summary, "0 fault(s)") || !strings.Contains(summary, "0 degradation(s)") {
		t.Errorf("summary = %q", summary)
	}
}
