package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/report"
)

// FlowHealth is one flow's robustness outcome: how many attempts it took,
// what was injected into it, how it degraded, and whether it was served
// from a checkpoint instead of run.
type FlowHealth struct {
	// Attempts counts flow runs under the retry policy (1 = clean first
	// try; 0 only for checkpoint-restored flows, which did not run).
	Attempts int
	// Restored marks a flow served from the evaluation checkpoint.
	Restored bool
	// Degraded lists the degraded-mode reasons the flow recorded.
	Degraded []string
	// Stage-stat sums across the flow's pipeline: injected faults,
	// degraded-mode stage re-runs, recovered stage panics, and
	// congestion-driven placement retries.
	Faults, Reruns, Panics, Retries int64
}

// newFlowHealth derives a FlowHealth from a finished (or restored) flow
// result and its retry trace.
func newFlowHealth(r *core.Result, trace *flow.RetryTrace, restored bool) *FlowHealth {
	h := &FlowHealth{Attempts: 1, Restored: restored}
	if restored {
		h.Attempts = 0
	}
	if trace != nil {
		h.Attempts = trace.Attempts
	}
	if r != nil {
		h.Degraded = r.Degraded
		for _, m := range r.Stages {
			h.Faults += m.Stats[flow.StatFaultsInjected]
			h.Reruns += m.Stats[flow.StatStageReruns]
			h.Panics += m.Stats[flow.StatPanicsRecovered]
			h.Retries += m.Stats[flow.StatCongestionRetries]
		}
	}
	return h
}

// ResilienceReport renders the suite's per-flow robustness outcomes: one
// row per eventful flow (faults injected, retries taken, degraded mode
// entered, or restored from checkpoint) plus a summary of the clean rest.
// A clean, fault-free run reports zero everything — the acceptance bar
// for the no-fault byte-identity check.
func (s *Suite) ResilienceReport() *report.Table {
	var rows []report.ResilienceRow
	for _, dn := range s.DesignsInOrder() {
		for _, cfg := range core.AllConfigs {
			r, ok := s.Results[dn][cfg]
			if !ok || r == nil {
				continue
			}
			h := s.Health[dn][cfg]
			if h == nil {
				h = newFlowHealth(r, nil, r.Restored)
			}
			outcome := "ok"
			switch {
			case h.Restored:
				outcome = "ok (restored)"
			case len(h.Degraded) > 0:
				outcome = "ok (degraded)"
			case h.Attempts > 1:
				outcome = fmt.Sprintf("ok (attempt %d)", h.Attempts)
			}
			rows = append(rows, report.ResilienceRow{
				Design:   string(dn),
				Config:   string(cfg),
				Attempts: h.Attempts,
				Faults:   h.Faults,
				Reruns:   h.Reruns,
				Panics:   h.Panics,
				Degraded: h.Degraded,
				Outcome:  outcome,
			})
		}
	}
	return report.ResilienceTable("Suite resilience — faults, retries, degradations", rows)
}

// Degradations totals the degraded-mode entries across the suite (the CI
// fault-injection smoke asserts this is positive under injection and zero
// without).
func (s *Suite) Degradations() int {
	n := 0
	for _, cfgs := range s.Results {
		for _, r := range cfgs {
			if r != nil {
				n += len(r.Degraded)
			}
		}
	}
	return n
}

// resilienceSummary is a one-line digest for log output.
func (s *Suite) resilienceSummary() string {
	var faults, reruns, panics int64
	attempts, restored := 0, 0
	for _, cfgs := range s.Health {
		for _, h := range cfgs {
			if h == nil {
				continue
			}
			faults += h.Faults
			reruns += h.Reruns
			panics += h.Panics
			if h.Attempts > 1 {
				attempts++
			}
			if h.Restored {
				restored++
			}
		}
	}
	parts := []string{
		fmt.Sprintf("%d fault(s)", faults),
		fmt.Sprintf("%d rerun(s)", reruns),
		fmt.Sprintf("%d panic(s)", panics),
		fmt.Sprintf("%d retried flow(s)", attempts),
		fmt.Sprintf("%d restored flow(s)", restored),
		fmt.Sprintf("%d degradation(s)", s.Degradations()),
	}
	return strings.Join(parts, ", ")
}
