// Package eval orchestrates the paper's full evaluation: it finds each
// netlist's 2D-12T f_max, implements every design in the five Fig. 1
// configurations at that iso-performance target, and renders every table
// (I–VIII) and figure (1, 3, 4) of the paper from the measured results.
// Both cmd/ppac and the repository's benchmark harness drive this
// package.
//
// RunSuite is a parallel orchestrator: the per-design f_max searches run
// concurrently, then each design's configurations fan out as independent
// worker-pool jobs (bounded by SuiteOptions.Workers). Every flow is
// deterministic given its seed, so the results are identical at any
// worker count.
//
// The suite is built to survive a hostile run: worker goroutines are
// panic-shielded (one crashed flow fails the suite with attribution, it
// never takes the process down), transient failures re-attempt under
// SuiteOptions.Retry with fresh derived seeds, and SuiteOptions.Checkpoint
// journals every completed flow so an interrupted run resumes without
// repeating finished work — with byte-identical tables.
package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/tech"
)

// EventSink observes suite progress as structured events. It extends the
// pipeline-level flow.Sink (StageStart/StageDone from inside every flow
// run) with suite-level completions. Implementations must be safe for
// concurrent use: with Workers > 1 many flows report interleaved.
type EventSink interface {
	flow.Sink
	// FmaxDone reports a design's completed 2D-12T f_max search.
	FmaxDone(design string, cells int, fmaxGHz float64)
	// ConfigDone reports one finished implementation with its PPAC
	// record.
	ConfigDone(design string, config core.ConfigName, p *core.PPAC)
}

// SuiteOptions configures an evaluation run.
type SuiteOptions struct {
	// Scale is the design-size multiplier (1.0 = paper-comparable cell
	// counts; the benchmarks default lower for wall-clock sanity).
	Scale float64
	// Seed feeds generation and partitioning.
	Seed int64
	// Designs to evaluate (default: all four).
	Designs []designs.Name
	// Configs to implement (default: all five).
	Configs []core.ConfigName
	// FmaxIterations bounds the per-design frequency search.
	FmaxIterations int
	// Workers bounds the number of concurrently executing flow jobs —
	// f_max searches and per-config implementations share the pool.
	// 0 means GOMAXPROCS; 1 runs the suite fully serially. Results are
	// identical at any worker count.
	Workers int
	// FlowWorkers bounds each flow's intra-flow parallelism (the place/
	// route/STA/CTS kernels; core.Options.FlowWorkers). 0 budgets it
	// automatically so suite workers × flow workers stays within
	// GOMAXPROCS; an explicit value is honored as-is. Results are
	// identical at any value.
	FlowWorkers int
	// Events receives structured progress events (nil = silent),
	// replacing the printf-style Progress callback of earlier versions.
	// LogSink adapts the events back to log lines for CLI use.
	Events EventSink
	// Check runs the design-integrity checker at stage boundaries of
	// every configuration implementation (not the f_max probes, which
	// exist only to steer the frequency search). Error-severity findings
	// fail the owning flow and therefore the suite. Empty means off.
	Check core.CheckMode
	// Retry is the per-flow retry policy: a configuration flow failing
	// with a transient (flow.Retryable) error re-attempts with a fresh
	// derived seed and capped exponential backoff. The zero value runs
	// each flow once. The f_max searches are not retried — their probes
	// only steer the search.
	Retry flow.RetryPolicy
	// Checkpoint is the path of the resumable journal ("" = off): every
	// completed f_max search and flow is appended as it finishes, and a
	// rerun with the same options serves completed work from the journal,
	// producing byte-identical tables.
	Checkpoint string
	// Fault installs a fault-injection hook (internal/fault's Plan.Hook)
	// into every configuration flow; nil = no injection. The f_max
	// probes are exempt, like Check.
	Fault func(*flow.Context, string) error
	// ResumeFromPlace, when set to a directory, runs every configuration
	// flow in two legs through the binary design database: a truncated
	// leg that saves the design right after placement, then a second
	// flow that loads the saved file and runs the remaining stages. The
	// suite's results must be byte-identical either way — this is the
	// determinism harness for the save/restore path, not a performance
	// feature. Excluded from the checkpoint header: it changes how
	// results are computed, never what they are.
	ResumeFromPlace string
	// Units restricts the run to a subset of the design×config matrix —
	// the shard filter of the distributed evaluation (internal/shard).
	// Empty means the full matrix. Designs with no unit are skipped
	// entirely (no generation, no f_max search); designs with any unit
	// still run their f_max search, since it is every configuration's
	// iso-performance target. Excluded from the checkpoint header:
	// Designs/Configs there stay the suite-wide matrix, so every shard's
	// journal carries the identical header and MergeCheckpoints can prove
	// the shards belong together. Each flow is a pure function of
	// (design, config, scale, seed), so a unit computes the same bytes
	// whichever shard runs it.
	Units []Unit
}

// Unit names one cell of the design×config evaluation matrix.
type Unit struct {
	Design designs.Name    `json:"design"`
	Config core.ConfigName `json:"config"`
}

func (u Unit) String() string { return string(u.Design) + "/" + string(u.Config) }

// wantUnit reports whether the (design, config) cell is in the run's
// shard filter (everything is, when no filter is set).
func (opt SuiteOptions) wantUnit(d designs.Name, c core.ConfigName) bool {
	if len(opt.Units) == 0 {
		return true
	}
	for _, u := range opt.Units {
		if u.Design == d && u.Config == c {
			return true
		}
	}
	return false
}

// wantDesign reports whether any of the design's configurations are in
// the shard filter.
func (opt SuiteOptions) wantDesign(d designs.Name) bool {
	if len(opt.Units) == 0 {
		return true
	}
	for _, u := range opt.Units {
		if u.Design == d {
			return true
		}
	}
	return false
}

// MatrixUnits expands the options' full design×config matrix in
// canonical (design-major, config order) — the shard planner's input and
// the merge's canonical record order.
func (opt SuiteOptions) MatrixUnits() []Unit {
	opt = opt.withDefaults()
	units := make([]Unit, 0, len(opt.Designs)*len(opt.Configs))
	for _, d := range opt.Designs {
		for _, c := range opt.Configs {
			units = append(units, Unit{Design: d, Config: c})
		}
	}
	return units
}

// withDefaults fills the defaulted design/config lists (the checkpoint
// header and the run loop must agree on them).
func (opt SuiteOptions) withDefaults() SuiteOptions {
	if len(opt.Designs) == 0 {
		opt.Designs = append([]designs.Name{}, designs.All...)
	}
	if len(opt.Configs) == 0 {
		opt.Configs = append([]core.ConfigName{}, core.AllConfigs...)
	}
	return opt
}

// DefaultSuiteOptions returns paper-order defaults at the given scale.
func DefaultSuiteOptions(scale float64) SuiteOptions {
	return SuiteOptions{
		Scale:          scale,
		Seed:           1,
		Designs:        append([]designs.Name{}, designs.All...),
		Configs:        append([]core.ConfigName{}, core.AllConfigs...),
		FmaxIterations: 5,
	}
}

// Suite holds a completed evaluation.
type Suite struct {
	Opt SuiteOptions
	// Fmax is each design's 2D-12T maximum frequency (GHz), the
	// iso-performance target for every configuration.
	Fmax map[designs.Name]float64
	// Results[design][config] is the full flow result.
	Results map[designs.Name]map[core.ConfigName]*core.Result
	// Health[design][config] is the flow's robustness outcome (attempts,
	// injected faults, degradations, checkpoint restore) — the
	// ResilienceReport's input.
	Health map[designs.Name]map[core.ConfigName]*FlowHealth
}

// shield runs fn behind a panic barrier: a panicking job surfaces as a
// stage-attributed *flow.Error instead of unwinding the worker goroutine
// — one crashed flow can fail the suite, never the process or its
// sibling workers. (Stage panics are already recovered inside flow.Run;
// this catches everything outside the pipeline: generation, result
// bookkeeping, the flow drivers' own setup.)
func shield(design, config string, fn func() error) error {
	return flow.Shield(design, config, "worker", fn)
}

// RunSuite executes the evaluation under ctx. Cancelling ctx (or hitting
// its deadline) aborts every in-flight flow promptly; the returned error
// is then the first failure, a stage-attributed *flow.Error for flows
// cancelled mid-run, or the bare context error if nothing had started.
func RunSuite(ctx context.Context, opt SuiteOptions) (*Suite, error) {
	if opt.Scale <= 0 {
		return nil, fmt.Errorf("eval: scale must be positive")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Nested-parallelism budget: suite workers × flow workers stays
	// within the machine unless the caller explicitly oversubscribes.
	flowWorkers := opt.FlowWorkers
	if flowWorkers <= 0 {
		flowWorkers = par.Budget(runtime.GOMAXPROCS(0), workers)
	}
	if opt.ResumeFromPlace != "" {
		if err := os.MkdirAll(opt.ResumeFromPlace, 0o755); err != nil {
			return nil, fmt.Errorf("eval: resume-from-place: %w", err)
		}
	}

	var ck *Checkpoint
	if opt.Checkpoint != "" {
		var err error
		ck, err = OpenCheckpoint(opt.Checkpoint, opt)
		if err != nil {
			return nil, err
		}
		defer ck.Close()
	}

	lib12 := cell.NewLibrary(tech.Variant12T())
	s := &Suite{
		Opt:     opt,
		Fmax:    make(map[designs.Name]float64),
		Results: make(map[designs.Name]map[core.ConfigName]*core.Result),
		Health:  make(map[designs.Name]map[core.ConfigName]*FlowHealth),
	}
	for _, name := range opt.Designs {
		s.Results[name] = make(map[core.ConfigName]*core.Result, len(opt.Configs))
		s.Health[name] = make(map[core.ConfigName]*FlowHealth, len(opt.Configs))
	}

	// The pool: a semaphore bounds concurrently executing jobs; the
	// first failure cancels every other job via jctx.
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	acquire := func() bool {
		select {
		case sem <- struct{}{}:
			return true
		case <-jctx.Done():
			return false
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for _, name := range opt.Designs {
		name := name
		if !opt.wantDesign(name) {
			continue // no unit of this design is in the shard filter
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				src   *netlist.Design
				fmax  float64
				cells int
			)
			haveFmax := false
			if ck != nil {
				fmax, cells, haveFmax = ck.Fmax(name)
			}
			// Generation is needed unless every piece of this design's
			// work is already in the journal.
			needSrc := !haveFmax
			if ck != nil && !needSrc {
				for _, cfg := range opt.Configs {
					if !opt.wantUnit(name, cfg) {
						continue
					}
					if _, ok := ck.Flow(name, cfg); !ok {
						needSrc = true
						break
					}
				}
			}
			if needSrc {
				// Generation and the f_max search occupy one worker
				// slot; the search itself is sequential (each probe's
				// effective delay steers the next).
				if !acquire() {
					return
				}
				err := shield(string(name), "", func() error {
					d, err := designs.Generate(name, lib12, designs.Params{Scale: opt.Scale, Seed: opt.Seed})
					if err != nil {
						return fmt.Errorf("eval: generate %s: %w", name, err)
					}
					src = d
					if !haveFmax {
						fopt := core.DefaultFmaxOptions()
						if opt.FmaxIterations > 0 {
							fopt.Iterations = opt.FmaxIterations
						}
						fopt.Flow.Seed = opt.Seed
						fopt.Flow.Events = opt.Events
						fopt.Flow.FlowWorkers = flowWorkers
						fmax, err = core.FindFmax(jctx, d, core.Config2D12T, fopt)
						if err != nil {
							return fmt.Errorf("eval: fmax %s: %w", name, err)
						}
						cells = d.ComputeStats().Cells
						if ck != nil {
							if err := ck.PutFmax(name, cells, fmax); err != nil {
								return err
							}
						}
					}
					return nil
				})
				<-sem
				if err != nil {
					fail(err)
					return
				}
			}
			mu.Lock()
			s.Fmax[name] = fmax
			mu.Unlock()
			if opt.Events != nil {
				opt.Events.FmaxDone(string(name), cells, fmax)
			}

			// The design's configurations fan out as independent jobs.
			for _, cfg := range opt.Configs {
				cfg := cfg
				if !opt.wantUnit(name, cfg) {
					continue
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if ck != nil {
						if r, ok := ck.Flow(name, cfg); ok {
							mu.Lock()
							s.Results[name][cfg] = r
							s.Health[name][cfg] = newFlowHealth(r, nil, true)
							mu.Unlock()
							if opt.Events != nil {
								opt.Events.ConfigDone(string(name), cfg, r.PPAC)
							}
							return
						}
					}
					if !acquire() {
						return
					}
					defer func() { <-sem }()
					var (
						r     *core.Result
						trace *flow.RetryTrace
					)
					err := shield(string(name), string(cfg), func() error {
						o := core.DefaultOptions(fmax)
						o.Seed = opt.Seed
						o.Events = opt.Events
						o.Check = opt.Check
						o.Fault = opt.Fault
						o.FlowWorkers = flowWorkers
						if opt.ResumeFromPlace != "" {
							// Leg 1: run to placement and save the design
							// database. Leg 2 below resumes from it.
							dbPath := filepath.Join(opt.ResumeFromPlace,
								fmt.Sprintf("%s-%s.db", name, cfg))
							save := o
							save.SaveDesign = dbPath
							save.SaveAfter = core.StagePlace
							save.StopAfter = core.StagePlace
							if _, err := core.Run(jctx, src, cfg, save); err != nil {
								return fmt.Errorf("eval: save leg %s/%s: %w", name, cfg, err)
							}
							o.LoadDesign = dbPath
						}
						var rerr error
						r, trace, rerr = core.RunWithRetry(jctx, src, cfg, o, opt.Retry)
						return rerr
					})
					if err != nil {
						fail(fmt.Errorf("eval: %w", err))
						return
					}
					if ck != nil {
						if err := ck.PutFlow(name, cfg, r); err != nil {
							fail(err)
							return
						}
					}
					mu.Lock()
					s.Results[name][cfg] = r
					s.Health[name][cfg] = newFlowHealth(r, trace, false)
					mu.Unlock()
					if opt.Events != nil {
						opt.Events.ConfigDone(string(name), cfg, r.PPAC)
					}
				}()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Hetero returns the heterogeneous result for a design (nil if absent).
func (s *Suite) Hetero(n designs.Name) *core.Result {
	return s.Results[n][core.ConfigHetero]
}

// DesignsInOrder returns the evaluated designs in the paper's column
// order (netcard, aes, ldpc, cpu), restricted to those actually run.
func (s *Suite) DesignsInOrder() []designs.Name {
	seen := make(map[designs.Name]bool, len(s.Results))
	var out []designs.Name
	for _, n := range designs.All {
		if _, ok := s.Results[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	// Any extras (shouldn't happen) appended deterministically.
	var rest []designs.Name
	for n := range s.Results { //maporder:ok collection loop; rest is sorted immediately below
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append(out, rest...)
}
