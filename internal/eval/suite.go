// Package eval orchestrates the paper's full evaluation: it finds each
// netlist's 2D-12T f_max, implements every design in the five Fig. 1
// configurations at that iso-performance target, and renders every table
// (I–VIII) and figure (1, 3, 4) of the paper from the measured results.
// Both cmd/ppac and the repository's benchmark harness drive this
// package.
package eval

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/tech"
)

// SuiteOptions configures an evaluation run.
type SuiteOptions struct {
	// Scale is the design-size multiplier (1.0 = paper-comparable cell
	// counts; the benchmarks default lower for wall-clock sanity).
	Scale float64
	// Seed feeds generation and partitioning.
	Seed int64
	// Designs to evaluate (default: all four).
	Designs []designs.Name
	// Configs to implement (default: all five).
	Configs []core.ConfigName
	// FmaxIterations bounds the per-design frequency search.
	FmaxIterations int
	// Quiet suppresses progress logging to stdout.
	Progress func(format string, args ...interface{})
}

// DefaultSuiteOptions returns paper-order defaults at the given scale.
func DefaultSuiteOptions(scale float64) SuiteOptions {
	return SuiteOptions{
		Scale:          scale,
		Seed:           1,
		Designs:        append([]designs.Name{}, designs.All...),
		Configs:        append([]core.ConfigName{}, core.AllConfigs...),
		FmaxIterations: 5,
	}
}

// Suite holds a completed evaluation.
type Suite struct {
	Opt SuiteOptions
	// Fmax is each design's 2D-12T maximum frequency (GHz), the
	// iso-performance target for every configuration.
	Fmax map[designs.Name]float64
	// Results[design][config] is the full flow result.
	Results map[designs.Name]map[core.ConfigName]*core.Result
}

// RunSuite executes the evaluation.
func RunSuite(opt SuiteOptions) (*Suite, error) {
	if opt.Scale <= 0 {
		return nil, fmt.Errorf("eval: scale must be positive")
	}
	if len(opt.Designs) == 0 {
		opt.Designs = append([]designs.Name{}, designs.All...)
	}
	if len(opt.Configs) == 0 {
		opt.Configs = append([]core.ConfigName{}, core.AllConfigs...)
	}
	logf := opt.Progress
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	lib12 := cell.NewLibrary(tech.Variant12T())
	s := &Suite{
		Opt:     opt,
		Fmax:    make(map[designs.Name]float64),
		Results: make(map[designs.Name]map[core.ConfigName]*core.Result),
	}
	for _, name := range opt.Designs {
		src, err := designs.Generate(name, lib12, designs.Params{Scale: opt.Scale, Seed: opt.Seed})
		if err != nil {
			return nil, fmt.Errorf("eval: generate %s: %w", name, err)
		}
		logf("[%s] %d cells; sweeping 2D-12T f_max...", name, src.ComputeStats().Cells)

		fopt := core.DefaultFmaxOptions()
		if opt.FmaxIterations > 0 {
			fopt.Iterations = opt.FmaxIterations
		}
		fopt.Flow.Seed = opt.Seed
		fmax, err := core.FindFmax(src, core.Config2D12T, fopt)
		if err != nil {
			return nil, fmt.Errorf("eval: fmax %s: %w", name, err)
		}
		s.Fmax[name] = fmax
		logf("[%s] f_max = %.3f GHz", name, fmax)

		s.Results[name] = make(map[core.ConfigName]*core.Result)
		for _, cfg := range opt.Configs {
			o := core.DefaultOptions(fmax)
			o.Seed = opt.Seed
			r, err := core.Run(src, cfg, o)
			if err != nil {
				return nil, fmt.Errorf("eval: %s/%s: %w", name, cfg, err)
			}
			s.Results[name][cfg] = r
			logf("[%s] %-10s WNS=%+.3f P=%.1fmW Si=%.4fmm² PPC=%.3f",
				name, cfg, r.PPAC.WNS, r.PPAC.PowerMW, r.PPAC.SiAreaMM2, r.PPAC.PPC)
		}
	}
	return s, nil
}

// Hetero returns the heterogeneous result for a design (nil if absent).
func (s *Suite) Hetero(n designs.Name) *core.Result {
	return s.Results[n][core.ConfigHetero]
}

// DesignsInOrder returns the evaluated designs in the paper's column
// order (netcard, aes, ldpc, cpu), restricted to those actually run.
func (s *Suite) DesignsInOrder() []designs.Name {
	var out []designs.Name
	for _, n := range designs.All {
		if _, ok := s.Results[n]; ok {
			out = append(out, n)
		}
	}
	// Any extras (shouldn't happen) appended deterministically.
	var rest []designs.Name
	for n := range s.Results {
		found := false
		for _, o := range out {
			if o == n {
				found = true
			}
		}
		if !found {
			rest = append(rest, n)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append(out, rest...)
}
