package eval

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/designs"
	"repro/internal/report"
	"repro/internal/spice"
	"repro/internal/tech"
)

// homogeneous configuration order of Table VII's column groups.
var homogConfigs = []core.ConfigName{
	core.Config2D9T, core.Config2D12T, core.ConfigM3D9T, core.ConfigM3D12T,
}

// TableI derives the paper's qualitative 1–5 ranking of the five
// configurations from the measured suite: for each metric the five
// configurations are ranked across the evaluated designs (averaged), 1 =
// worst, 5 = best, matching Table I's convention.
func (s *Suite) TableI() *report.Table {
	t := report.NewTable("Table I — measured PPAC ranking of the five configurations (1 = worst, 5 = best)",
		"Metric", "2D-9T", "M3D-9T", "2D-12T", "M3D-12T", "Hetero")
	order := []core.ConfigName{core.Config2D9T, core.ConfigM3D9T, core.Config2D12T, core.ConfigM3D12T, core.ConfigHetero}

	metric := func(name string, f func(*core.PPAC) float64, higherBetter bool) {
		// Average the metric over designs, then rank.
		avg := make(map[core.ConfigName]float64)
		for _, cfg := range order {
			sum, n := 0.0, 0
			for _, dn := range s.DesignsInOrder() {
				if r, ok := s.Results[dn][cfg]; ok {
					sum += f(r.PPAC)
					n++
				}
			}
			if n > 0 {
				avg[cfg] = sum / float64(n)
			}
		}
		type kv struct {
			cfg core.ConfigName
			v   float64
		}
		var list []kv
		for _, cfg := range order {
			list = append(list, kv{cfg, avg[cfg]})
		}
		sort.Slice(list, func(i, j int) bool {
			if higherBetter {
				return list[i].v < list[j].v
			}
			return list[i].v > list[j].v
		})
		rank := make(map[core.ConfigName]int)
		for i, e := range list {
			rank[e.cfg] = i + 1
		}
		t.AddRowf(name,
			fmt.Sprint(rank[core.Config2D9T]), fmt.Sprint(rank[core.ConfigM3D9T]),
			fmt.Sprint(rank[core.Config2D12T]), fmt.Sprint(rank[core.ConfigM3D12T]),
			fmt.Sprint(rank[core.ConfigHetero]))
	}

	achieved := func(p *core.PPAC) float64 { return 1 / p.EffDelayNS }
	metric("Frequency", achieved, true)
	metric("Power", func(p *core.PPAC) float64 { return p.PowerMW }, false)
	metric("Power/Freq", func(p *core.PPAC) float64 { return p.PowerMW * p.EffDelayNS }, false)
	metric("Footprint", func(p *core.PPAC) float64 { return p.FootprintMM2 }, false)
	metric("Si Area", func(p *core.PPAC) float64 { return p.SiAreaMM2 }, false)
	metric("Die Cost", func(p *core.PPAC) float64 { return p.DieCostMicroC }, false)
	return t
}

// TableII runs the driver-output FO-4 boundary experiment (Fig. 2a) and
// renders the paper's Table II, Δ% between the homogeneous and
// heterogeneous load cases.
func TableII() (*report.Table, error) {
	res, err := spice.DriverOutputExperiment(tech.Variant12T(), tech.Variant9T(), spice.DefaultSimOptions())
	if err != nil {
		return nil, err
	}
	return renderFO4Table("Table II — FO-4 heterogeneity at the driver OUTPUT (time ps, power µW)", res), nil
}

// TableIII runs the driver-input experiment (Fig. 2b) for Table III.
func TableIII() (*report.Table, error) {
	res, err := spice.DriverInputExperiment(tech.Variant12T(), tech.Variant9T(), spice.DefaultSimOptions())
	if err != nil {
		return nil, err
	}
	return renderFO4Table("Table III — FO-4 heterogeneity at the driver INPUT (time ps, power µW)", res), nil
}

func renderFO4Table(title string, res []spice.CaseResult) *report.Table {
	t := report.NewTable(title,
		"", res[0].Name, res[1].Name, "Δ%", res[2].Name, res[3].Name, "Δ%")
	d01 := spice.DeltaPct(res[0].M, res[1].M)
	d23 := spice.DeltaPct(res[2].M, res[3].M)
	t.AddRowf("Tier-0", res[0].Tier0, res[1].Tier0, "-", res[2].Tier0, res[3].Tier0, "-")
	t.AddRowf("Tier-1", res[0].Tier1, res[1].Tier1, "-", res[2].Tier1, res[3].Tier1, "-")
	row := func(name string, f func(spice.Measurement) float64, scale float64, prec int) {
		t.AddRowf(name,
			fmt.Sprintf("%.*f", prec, f(res[0].M)*scale),
			fmt.Sprintf("%.*f", prec, f(res[1].M)*scale),
			fmt.Sprintf("%+.1f", f(d01)),
			fmt.Sprintf("%.*f", prec, f(res[2].M)*scale),
			fmt.Sprintf("%.*f", prec, f(res[3].M)*scale),
			fmt.Sprintf("%+.1f", f(d23)))
	}
	row("Rise Slew", func(m spice.Measurement) float64 { return m.RiseSlew }, 1000, 1)
	row("Fall Slew", func(m spice.Measurement) float64 { return m.FallSlew }, 1000, 1)
	row("Rise Del.", func(m spice.Measurement) float64 { return m.RiseDelay }, 1000, 1)
	row("Fall Del.", func(m spice.Measurement) float64 { return m.FallDelay }, 1000, 1)
	row("Lkg. Pow.", func(m spice.Measurement) float64 { return m.Leakage }, 1, 4)
	row("Total Pow.", func(m spice.Measurement) float64 { return m.TotalPow }, 1, 3)
	return t
}

// TableIV renders the cost-model assumptions and derived quantities of
// the paper's Table IV, evaluated on a representative 0.39 mm² footprint.
func TableIV() *report.Table {
	m := cost.Default()
	t := report.NewTable("Table IV — cost model assumptions [Ku et al.] and derived values", "Quantity", "Value")
	t.AddRowf("Baseline wafer cost (FEOL+8 metals)", "C' (normalized 1.0)")
	t.AddRowf("Wafer FEOL cost", fmt.Sprintf("%.2f × C'", m.FEOLFrac))
	t.AddRowf("Wafer BEOL cost (6 metals)", fmt.Sprintf("%.2f × C'", float64(m.SignalLayers)*m.BEOLFracPerLayer))
	t.AddRowf("3D integration cost (α)", fmt.Sprintf("%.2f × C'", m.Alpha))
	t.AddRowf("Wafer diameter", fmt.Sprintf("%.0f mm", m.WaferDiameterMM))
	t.AddRowf("Defect density (D_w)", fmt.Sprintf("%.1f mm⁻²", m.DefectDensity))
	t.AddRowf("Wafer yield (κ)", fmt.Sprintf("%.2f", m.WaferYield))
	t.AddRowf("3D yield degradation (β)", fmt.Sprintf("%.2f", m.YieldDegradation3D))
	t.AddRowf("2D wafer cost (C_2D)", fmt.Sprintf("%.2f × C'", m.WaferCost2D()))
	t.AddRowf("3D wafer cost (C_3D)", fmt.Sprintf("%.2f × C'", m.WaferCost3D()))
	const ad = 0.39 // CPU-like footprint, mm²
	t.AddRowf("Example die area A_d", fmt.Sprintf("%.2f mm² (2D) / %.3f mm² per tier (3D)", ad, ad/2))
	t.AddRowf("Dies per wafer (1)", fmt.Sprintf("2D %.0f / 3D %.0f", m.DiesPerWafer(ad), m.DiesPerWafer(ad/2)))
	t.AddRowf("Die yield (2)(3)", fmt.Sprintf("2D %.3f / 3D %.3f", m.Yield2D(ad), m.Yield3D(ad/2)))
	c2, _ := m.DieCost2D(ad)
	c3, _ := m.DieCost3D(ad / 2)
	t.AddRowf("Die cost (5)", fmt.Sprintf("2D %.2f / 3D %.2f ×10⁻⁶C'", c2*1e6, c3*1e6))
	return t
}

// TableV runs the Table V ablation: the CPU design through the plain
// Pin-3D flow (heterogeneous tiers, no enhancements) versus the full
// Hetero-Pin-3D flow, at the CPU's 2D-12T f_max.
func TableV(scale float64, seed int64) (*report.Table, error) {
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	fopt := core.DefaultFmaxOptions()
	fopt.Iterations = 5
	ctx := context.Background()
	fmax, err := core.FindFmax(ctx, src, core.Config2D12T, fopt)
	if err != nil {
		return nil, err
	}
	plain := core.DefaultOptions(fmax)
	plain.EnableTimingPartition = false
	plain.Enable3DCTS = false
	plain.EnableRepartition = false
	rp, err := core.Run(ctx, src, core.ConfigHetero, plain)
	if err != nil {
		return nil, err
	}
	rh, err := core.Run(ctx, src, core.ConfigHetero, core.DefaultOptions(fmax))
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table V — Pin-3D vs Hetero-Pin-3D on the CPU (heterogeneous dies)",
		"Metric", "Units", "Pin-3D", "Hetero-Pin-3D")
	t.AddRowf("Frequency", "GHz", fmt.Sprintf("%.3f", fmax), fmt.Sprintf("%.3f", fmax))
	t.AddRowf("WL", "m", fmt.Sprintf("%.3f", rp.PPAC.WLm), fmt.Sprintf("%.3f", rh.PPAC.WLm))
	t.AddRowf("WNS", "ns", fmt.Sprintf("%+.3f", rp.PPAC.WNS), fmt.Sprintf("%+.3f", rh.PPAC.WNS))
	t.AddRowf("Total Power", "mW", fmt.Sprintf("%.1f", rp.PPAC.PowerMW), fmt.Sprintf("%.1f", rh.PPAC.PowerMW))
	return t, nil
}

// TableVI renders the raw heterogeneous-3-D PPAC of every design.
func (s *Suite) TableVI() *report.Table {
	t := report.NewTable("Table VI — PPAC of the 3-D heterogeneous designs (raw)",
		"Metric", "Units", "netcard", "aes", "ldpc", "cpu")
	cols := func(f func(*core.PPAC) string) []string {
		out := make([]string, 0, 4)
		for _, dn := range []designs.Name{designs.Netcard, designs.AES, designs.LDPC, designs.CPU} {
			r, ok := s.Results[dn][core.ConfigHetero]
			if !ok {
				out = append(out, "-")
				continue
			}
			out = append(out, f(r.PPAC))
		}
		return out
	}
	add := func(name, units string, f func(*core.PPAC) string) {
		t.AddRowf(append([]string{name, units}, cols(f)...)...)
	}
	add("Frequency", "GHz", func(p *core.PPAC) string { return fmt.Sprintf("%.3f", p.FreqGHz) })
	add("Area", "mm²", func(p *core.PPAC) string { return fmt.Sprintf("%.4f", p.SiAreaMM2) })
	add("Chip Width", "µm", func(p *core.PPAC) string { return fmt.Sprintf("%.0f", p.ChipWidthUM) })
	add("Density", "%", func(p *core.PPAC) string { return fmt.Sprintf("%.0f", p.Density*100) })
	add("WL", "m", func(p *core.PPAC) string { return fmt.Sprintf("%.3f", p.WLm) })
	add("# MIVs", "×1000", func(p *core.PPAC) string { return fmt.Sprintf("%.1f", float64(p.MIVs)/1000) })
	add("Total Power", "mW", func(p *core.PPAC) string { return fmt.Sprintf("%.1f", p.PowerMW) })
	add("WNS", "ns", func(p *core.PPAC) string { return fmt.Sprintf("%+.3f", p.WNS) })
	add("TNS", "ns", func(p *core.PPAC) string { return fmt.Sprintf("%+.2f", p.TNS) })
	add("Effective Delay", "ns", func(p *core.PPAC) string { return fmt.Sprintf("%.3f", p.EffDelayNS) })
	add("PDP", "pJ", func(p *core.PPAC) string { return fmt.Sprintf("%.1f", p.PDPpJ) })
	add("Die Cost", "10⁻⁶C'", func(p *core.PPAC) string { return fmt.Sprintf("%.2f", p.DieCostMicroC) })
	add("PPC", "GHz/(W·10⁻⁶C')", func(p *core.PPAC) string { return fmt.Sprintf("%.3f", p.PPC) })
	return t
}

// TableVII renders the percent deltas of the heterogeneous design against
// each homogeneous configuration: (hetero − config)/config × 100, so
// negative means hetero is smaller/faster/cheaper (except PPC, where
// positive means hetero wins) — the paper's convention.
func (s *Suite) TableVII() *report.Table {
	headers := []string{"Metric"}
	for _, cfg := range homogConfigs {
		for _, dn := range s.DesignsInOrder() {
			headers = append(headers, fmt.Sprintf("%s/%s", cfg, dn))
		}
	}
	t := report.NewTable("Table VII — PPAC Δ% of Hetero-M3D vs each homogeneous configuration ((hetero−config)/config×100)", headers...)

	row := func(name string, f func(*core.PPAC) float64, pct bool) {
		cells := []string{name}
		for _, cfg := range homogConfigs {
			for _, dn := range s.DesignsInOrder() {
				het, ok1 := s.Results[dn][core.ConfigHetero]
				other, ok2 := s.Results[dn][cfg]
				if !ok1 || !ok2 {
					cells = append(cells, "-")
					continue
				}
				if !pct {
					cells = append(cells, fmt.Sprintf("%.3f", f(other.PPAC)))
					continue
				}
				base := f(other.PPAC)
				if base == 0 {
					cells = append(cells, "-")
					continue
				}
				cells = append(cells, fmt.Sprintf("%+.1f", (f(het.PPAC)-base)/base*100))
			}
		}
		t.AddRowf(cells...)
	}
	row("Si Area", func(p *core.PPAC) float64 { return p.SiAreaMM2 }, true)
	row("Density", func(p *core.PPAC) float64 { return p.Density }, true)
	row("WL", func(p *core.PPAC) float64 { return p.WLm }, true)
	row("Total Power", func(p *core.PPAC) float64 { return p.PowerMW }, true)
	row("Eff. Delay", func(p *core.PPAC) float64 { return p.EffDelayNS }, true)
	row("PDP", func(p *core.PPAC) float64 { return p.PDPpJ }, true)
	row("Die Cost", func(p *core.PPAC) float64 { return p.DieCostMicroC }, true)
	row("Cost per cm²", func(p *core.PPAC) float64 { return p.CostPerCm2 }, true)
	row("PPC", func(p *core.PPAC) float64 { return p.PPC }, true)
	row("Width (µm)", func(p *core.PPAC) float64 { return p.ChipWidthUM }, false)
	row("WNS (ns)", func(p *core.PPAC) float64 { return p.WNS }, false)
	row("TNS (ns)", func(p *core.PPAC) float64 { return p.TNS }, false)
	return t
}

// TableVIII renders the clock-network, critical-path, and
// memory-interconnect deep dive of the CPU design across the best 2-D,
// best homogeneous 3-D, and heterogeneous implementations.
func (s *Suite) TableVIII() (*report.Table, error) {
	dives := make(map[core.ConfigName]*core.DeepDive)
	for _, cfg := range []core.ConfigName{core.Config2D12T, core.ConfigM3D12T, core.ConfigHetero} {
		r, ok := s.Results[designs.CPU][cfg]
		if !ok {
			return nil, fmt.Errorf("eval: Table VIII needs the CPU in %s", cfg)
		}
		dd, err := core.DeepAnalyze(r)
		if err != nil {
			return nil, err
		}
		dives[cfg] = dd
	}
	d2, m3, het := dives[core.Config2D12T], dives[core.ConfigM3D12T], dives[core.ConfigHetero]

	t := report.NewTable("Table VIII — CPU clock network, critical path, and memory interconnect analyses",
		"Metric", "Units", "2D-12T", "M3D-12T", "Hetero-M3D")
	f := func(name, units string, v2, v3, vh string) { t.AddRowf(name, units, v2, v3, vh) }
	f3 := func(name, units string, g func(*core.DeepDive) float64, format string) {
		f(name, units, fmt.Sprintf(format, g(d2)), fmt.Sprintf(format, g(m3)), fmt.Sprintf(format, g(het)))
	}
	t.AddRowf("--- Memory Interconnects ---", "", "", "", "")
	f3("Input Net Latency", "ps", func(d *core.DeepDive) float64 { return d.MemInLatencyPS }, "%.2f")
	f3("Output Net Latency", "ps", func(d *core.DeepDive) float64 { return d.MemOutLatencyPS }, "%.2f")
	f3("Net Switching Power", "µW", func(d *core.DeepDive) float64 { return d.MemNetSwitchUW }, "%.2f")
	t.AddRowf("--- Clock Network ---", "", "", "", "")
	f("Buffer Count", "", fmt.Sprint(d2.ClockBuffers), fmt.Sprint(m3.ClockBuffers), fmt.Sprint(het.ClockBuffers))
	f("Top Buffer Count", "", "-", fmt.Sprint(m3.TopBuffers), fmt.Sprint(het.TopBuffers))
	f("Bottom Buffer Count", "", "-", fmt.Sprint(m3.BottomBuffers), fmt.Sprint(het.BottomBuffers))
	f3("Buffer Area", "µm²", func(d *core.DeepDive) float64 { return d.ClockBufferAreaUM2 }, "%.0f")
	f3("Wirelength", "mm", func(d *core.DeepDive) float64 { return d.ClockWLmm }, "%.3f")
	f3("Max Latency", "ns", func(d *core.DeepDive) float64 { return d.ClockMaxLatencyNS }, "%.3f")
	f3("Max Skew", "ns", func(d *core.DeepDive) float64 { return d.ClockMaxSkewNS }, "%.3f")
	f3("100 Path Avg. Skew", "ns", func(d *core.DeepDive) float64 { return d.AvgSkew100NS }, "%+.4f")
	t.AddRowf("--- Critical Path ---", "", "", "", "")
	f3("Clock Period", "ns", func(d *core.DeepDive) float64 { return d.ClockPeriodNS }, "%.3f")
	f3("Slack", "ns", func(d *core.DeepDive) float64 { return d.SlackNS }, "%+.3f")
	f3("Clock Skew", "ns", func(d *core.DeepDive) float64 { return d.CritSkewNS }, "%+.3f")
	f3("Setup Time", "ns", func(d *core.DeepDive) float64 { return d.SetupNS }, "%.3f")
	f3("Path Delay", "ns", func(d *core.DeepDive) float64 { return d.PathDelayNS }, "%.3f")
	f3("Wire Delay", "ns", func(d *core.DeepDive) float64 { return d.WireDelayNS }, "%.3f")
	f3("Wirelength", "µm", func(d *core.DeepDive) float64 { return d.PathWLum }, "%.1f")
	f("Top Wirelength", "µm", "-", fmt.Sprintf("%.1f", m3.TopWLum), fmt.Sprintf("%.1f", het.TopWLum))
	f("Bottom Wirelength", "µm", "-", fmt.Sprintf("%.1f", m3.BottomWLum), fmt.Sprintf("%.1f", het.BottomWLum))
	f3("Cell Delay", "ns", func(d *core.DeepDive) float64 { return d.CellDelayNS }, "%.3f")
	f("Total Cells", "", fmt.Sprint(d2.PathCells), fmt.Sprint(m3.PathCells), fmt.Sprint(het.PathCells))
	f("# MIVs", "", "-", fmt.Sprint(m3.PathMIVs), fmt.Sprint(het.PathMIVs))
	f("Top Cells", "", "-", fmt.Sprint(m3.TopCells), fmt.Sprint(het.TopCells))
	f("Top Cell Delay", "ns", "-", fmt.Sprintf("%.3f", m3.TopCellDelayNS), fmt.Sprintf("%.3f", het.TopCellDelayNS))
	f("Avg. Top Delay", "ns", "-", fmt.Sprintf("%.4f", m3.AvgTopDelayNS), fmt.Sprintf("%.4f", het.AvgTopDelayNS))
	f("Bottom Cells", "", "-", fmt.Sprint(m3.BottomCells), fmt.Sprint(het.BottomCells))
	f("Bottom Cell Delay", "ns", "-", fmt.Sprintf("%.3f", m3.BotCellDelayNS), fmt.Sprintf("%.3f", het.BotCellDelayNS))
	f("Avg. Bottom Delay", "ns", "-", fmt.Sprintf("%.4f", m3.AvgBotDelayNS), fmt.Sprintf("%.4f", het.AvgBotDelayNS))
	return t, nil
}
