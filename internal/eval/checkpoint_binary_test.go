package eval

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/designs"
	"repro/internal/flow"
)

// binaryFlowResult builds a result exercising every optional field of a
// flow record: stage stats, degradations, a deep dive, check reports.
func binaryFlowResult() *core.Result {
	return &core.Result{
		PPAC: &core.PPAC{Design: "cpu", Config: core.ConfigHetero, FreqGHz: 0.4375,
			PowerMW: 12.5, WNS: -0.03125, WLm: 0.25, MIVs: 210, Refinement: "hetero flow, cut=140"},
		Stages: []flow.StageMetric{
			{Name: "place", Wall: 1e6, Cells: 1234, Stats: map[string]int64{flow.StatCongestionRetries: 1}},
			{Name: "cts", Cells: 1290},
		},
		Degraded: []string{flow.DegradeFullSTA},
		Dive:     &core.DeepDive{ClockBuffers: 56, ClockPeriodNS: 2.2857142857142856, SlackNS: -0.03125, HasMacros: true},
		Checks: []*check.Report{{
			Design: "cpu", Stage: "signoff",
			Stats:      []check.RuleStat{{ID: "ENG-003", Title: "journal monotonicity", Severity: check.Error, Checked: 10, Violations: 1}},
			Violations: []check.Violation{{Rule: "ENG-003", Severity: check.Error, Obj: "topo", Msg: "rev moved backwards"}},
		}},
	}
}

func TestBinaryCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	opt := ckptOpts()

	ck, err := OpenCheckpoint(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.bin {
		t.Fatal(".db checkpoint must choose the binary framing")
	}
	if err := ck.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
		t.Fatal(err)
	}
	want := binaryFlowResult()
	if err := ck.PutFlow(designs.CPU, core.ConfigHetero, want); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:4]) != db.MagicJournal {
		t.Fatalf("file magic %q, want %q", data[:4], db.MagicJournal)
	}

	ck2, err := OpenCheckpoint(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if !ck2.bin {
		t.Error("reopen must sniff the binary framing")
	}
	fmax, cells, ok := ck2.Fmax(designs.CPU)
	if !ok || fmax != 0.4375 || cells != 1234 {
		t.Errorf("fmax record = %v/%d/%v", fmax, cells, ok)
	}
	got, ok := ck2.Flow(designs.CPU, core.ConfigHetero)
	if !ok {
		t.Fatal("flow record missing after reopen")
	}
	if !got.Restored {
		t.Error("rehydrated result must be marked Restored")
	}
	if got.PPAC.WNS != want.PPAC.WNS || got.PPAC.Refinement != want.PPAC.Refinement {
		t.Errorf("PPAC did not round-trip: %+v", got.PPAC)
	}
	if len(got.Stages) != 2 || got.Stages[0].Stats[flow.StatCongestionRetries] != 1 ||
		got.Stages[0].Wall != want.Stages[0].Wall {
		t.Errorf("stage metrics lost: %+v", got.Stages)
	}
	if got.Dive == nil || got.Dive.ClockPeriodNS != want.Dive.ClockPeriodNS || !got.Dive.HasMacros {
		t.Errorf("deep dive lost: %+v", got.Dive)
	}
	if len(got.Checks) != 1 || len(got.Checks[0].Violations) != 1 ||
		got.Checks[0].Violations[0].Msg != "rev moved backwards" {
		t.Errorf("check reports lost: %+v", got.Checks)
	}
	if len(got.Degraded) != 1 || got.Degraded[0] != flow.DegradeFullSTA {
		t.Errorf("degraded flags lost: %v", got.Degraded)
	}
}

func TestBinaryCheckpointRefusesOptionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	bad := ckptOpts()
	bad.Seed = 99
	if _, err := OpenCheckpoint(path, bad); err == nil || !strings.Contains(err.Error(), "different suite options") {
		t.Errorf("seed mismatch must be refused with the shared message, got %v", err)
	}
}

func TestBinaryCheckpointToleratesTruncatedFinalFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFmax(designs.AES, 99, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFlow(designs.CPU, core.ConfigHetero, binaryFlowResult()); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// A kill mid-append leaves a partial final frame: chop bytes off the
	// last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatalf("truncated final frame must be tolerated: %v", err)
	}
	defer ck2.Close()
	if _, _, ok := ck2.Fmax(designs.AES); !ok {
		t.Error("intact records before the truncation lost")
	}
	if _, ok := ck2.Flow(designs.CPU, core.ConfigHetero); ok {
		t.Error("the half-written record must not be served")
	}
}

func TestBinaryCheckpointRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFmax(designs.AES, 99, 0.5); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in a complete frame: the CRC must refuse it.
	data[len(data)-6] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, ckptOpts()); err == nil {
		t.Error("CRC-corrupt frame must be rejected")
	}
}

// TestConvertCheckpoint proves lossless translation in both directions:
// JSONL → binary → JSONL reproduces the original file byte for byte,
// and both forms serve identical completions.
func TestConvertCheckpoint(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "ckpt.jsonl")
	opt := ckptOpts()
	ck, err := OpenCheckpoint(jsonl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFmax(designs.CPU, 1234, 0.4375); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutFlow(designs.CPU, core.ConfigHetero, binaryFlowResult()); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	bin := filepath.Join(dir, "ckpt.db")
	if err := ConvertCheckpoint(jsonl, bin); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.jsonl")
	if err := ConvertCheckpoint(bin, back); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("JSONL→binary→JSONL not lossless:\n--- original ---\n%s--- converted ---\n%s", a, b)
	}

	ck2, err := OpenCheckpoint(bin, opt)
	if err != nil {
		t.Fatalf("converted journal must resume: %v", err)
	}
	defer ck2.Close()
	if _, _, ok := ck2.Fmax(designs.CPU); !ok {
		t.Error("fmax record lost in conversion")
	}
	r, ok := ck2.Flow(designs.CPU, core.ConfigHetero)
	if !ok || r.Dive == nil || len(r.Checks) != 1 {
		t.Errorf("flow record lost in conversion: %+v", r)
	}
}

// TestCheckpointPreBinaryCompat pins backward compatibility: a JSONL
// journal written before the binary format existed (committed fixture)
// still opens and serves its records.
func TestCheckpointPreBinaryCompat(t *testing.T) {
	src, err := os.ReadFile("testdata/ckpt_pre_binary.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path, ckptOpts())
	if err != nil {
		t.Fatalf("pre-binary journal must still open: %v", err)
	}
	defer ck.Close()
	if ck.bin {
		t.Error("JSONL journal misdetected as binary")
	}
	fmax, cells, ok := ck.Fmax(designs.CPU)
	if !ok || fmax != 0.4375 || cells != 4321 {
		t.Errorf("fmax = %v/%d/%v", fmax, cells, ok)
	}
	r, ok := ck.Flow(designs.CPU, core.ConfigHetero)
	if !ok {
		t.Fatal("flow record missing")
	}
	if r.PPAC.MIVs != 210 || r.PPAC.Refinement != "hetero flow, cut=140, preassigned=12" {
		t.Errorf("PPAC fields lost: %+v", r.PPAC)
	}
	if len(r.Stages) != 1 || r.Stages[0].Stats[flow.StatCongestionRetries] != 1 {
		t.Errorf("stages lost: %+v", r.Stages)
	}
}
