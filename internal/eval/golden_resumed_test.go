package eval

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGoldenTablesResumed is the design-database acceptance proof: the
// whole golden evaluation re-run with every configuration flow split in
// two at the placement boundary — save the binary design database, then
// load it and run the remaining stages — must render Tables I–VIII
// byte-identical to the committed goldens produced by uninterrupted
// flows. FLOW_WORKERS applies here too, so CI proves save-at-1/
// resume-at-8 equivalence as well.
func TestGoldenTablesResumed(t *testing.T) {
	if testing.Short() {
		t.Skip("full scale-0.1 evaluation suite, twice through placement")
	}
	opt := DefaultSuiteOptions(0.1)
	opt.FmaxIterations = 3
	opt.ResumeFromPlace = t.TempDir()
	if v := os.Getenv("FLOW_WORKERS"); v != "" {
		fw, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad FLOW_WORKERS %q: %v", v, err)
		}
		opt.FlowWorkers = fw
	}
	s, err := RunSuite(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	t8, err := s.TableVIII()
	if err != nil {
		t.Fatal(err)
	}
	renders := map[string]string{
		"table_i.txt":    s.TableI().String(),
		"table_vi.txt":   s.TableVI().String(),
		"table_vii.txt":  s.TableVII().String(),
		"table_viii.txt": t8.String(),
	}
	for name, got := range renders {
		want, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Fatalf("%s: %v (generate with TestGoldenTables -update)", name, err)
		}
		if !bytes.Equal([]byte(got), want) {
			t.Errorf("%s: resumed flows drifted from the uninterrupted goldens:\n%s",
				name, renderDiff(string(want), got))
		}
	}

	// Every saved database on disk must itself be canonical — the CI
	// verify leg walks these same files.
	matches, err := filepath.Glob(filepath.Join(opt.ResumeFromPlace, "*.db"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no saved databases (%v, %d files)", err, len(matches))
	}
	wantFiles := len(opt.Designs) * len(opt.Configs)
	if len(matches) != wantFiles {
		t.Errorf("%d databases saved, want %d", len(matches), wantFiles)
	}
}
