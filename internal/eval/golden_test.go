package eval

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"
)

// -update regenerates the golden renders instead of comparing:
//
//	go test ./internal/eval/ -run TestGoldenTables -update
//
// Review the diff of testdata/golden/ before committing — a changed
// table is a changed paper result.
var update = flag.Bool("update", false, "rewrite the golden table renders under testdata/golden")

// The golden suite pins the full evaluation at scale 0.1 (the CI smoke
// scale): every flow of every design, deterministic at any -workers or
// -flow-workers setting, so the rendered tables are stable bytes.
var (
	goldenOnce sync.Once
	goldenVal  *Suite
	goldenErr  error
)

func goldenSuite(t *testing.T) *Suite {
	t.Helper()
	goldenOnce.Do(func() {
		opt := DefaultSuiteOptions(0.1)
		opt.FmaxIterations = 3
		// The goldens are the same bytes at any intra-flow parallelism;
		// CI proves it by running this test at FLOW_WORKERS=1 and 8.
		if v := os.Getenv("FLOW_WORKERS"); v != "" {
			fw, err := strconv.Atoi(v)
			if err != nil {
				goldenErr = fmt.Errorf("bad FLOW_WORKERS %q: %v", v, err)
				return
			}
			opt.FlowWorkers = fw
		}
		goldenVal, goldenErr = RunSuite(context.Background(), opt)
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenVal
}

// TestGoldenTables regression-pins the rendered Tables I–VIII against
// committed golden files, byte for byte. Any change to the flow that
// shifts a paper number — placement, partitioning, timing, power, cost —
// shows up as a readable table diff here rather than as silent drift.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full scale-0.1 evaluation suite")
	}
	s := goldenSuite(t)

	t2, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	t5, err := TableV(s.Opt.Scale, s.Opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := s.TableVIII()
	if err != nil {
		t.Fatal(err)
	}

	renders := map[string]string{
		"table_i.txt":    s.TableI().String(),
		"table_ii.txt":   t2.String(),
		"table_iii.txt":  t3.String(),
		"table_iv.txt":   TableIV().String(),
		"table_v.txt":    t5.String(),
		"table_vi.txt":   s.TableVI().String(),
		"table_vii.txt":  s.TableVII().String(),
		"table_viii.txt": t8.String(),
	}

	dir := filepath.Join("testdata", "golden")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	names := make([]string, 0, len(renders))
	for name := range renders {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got := []byte(renders[name])
		path := filepath.Join(dir, name)
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden (run with -update and review the diff):\n%s",
				name, renderDiff(string(want), string(got)))
		}
	}
}

// renderDiff shows the first few differing lines of two table renders.
func renderDiff(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	var b bytes.Buffer
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "  line %d:\n  - %s\n  + %s\n", i+1, w, g)
		if shown++; shown >= 5 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := bytes.IndexByte([]byte(s), '\n')
		if i < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:i])
		s = s[i+1:]
	}
	return out
}
