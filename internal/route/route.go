package route

import (
	"sync"

	"repro/internal/dense"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/tech"
)

// Router estimates wiring over a given BEOL stack and MIV technology.
// Extract/NetTree/CountMIVs are pure with respect to the Router and safe
// to call from many goroutines at once.
type Router struct {
	Stack tech.Stack
	MIV   tech.MIV
	// MIVClusterRadius groups minority-tier pins of a cross-tier net: one
	// MIV serves all pins within this radius (µm).
	MIVClusterRadius float64
	// WLMPerSinkFF, when positive, switches Extract to a pre-placement
	// wire-load model: every sink contributes this much wire capacitance
	// (and the matching resistance) regardless of geometry. Synthesis-
	// stage sizing uses it before any placement exists.
	WLMPerSinkFF float64
	// Workers bounds the whole-design reductions' per-net fan-out
	// (Wirelength, TotalMIVs): nets are processed concurrently into
	// index-addressed slots and reduced in net order, so the sums are
	// byte-identical at any worker count. <= 1 runs serially.
	Workers int
	// Par accumulates fan-out counters when set (drained into the
	// signoff stage's flow stats). Only the reduction entry points touch
	// it, from the calling goroutine.
	Par *par.Stats
}

// New returns a Router over the standard signal stack and default MIV.
func New() *Router {
	return &Router{
		Stack:            tech.NewSignalStack(),
		MIV:              tech.DefaultMIV(),
		MIVClusterRadius: 10,
	}
}

// NetTree routes a net's pins (driver first) into a Steiner estimate.
func (r *Router) NetTree(n *netlist.Net, keepSegments bool) Tree {
	sc := getScratch()
	defer putScratch(sc)
	sc.pinbuf = n.AppendPinLocs(sc.pinbuf[:0])
	sc.dedup(sc.pinbuf)
	if len(sc.pts) <= 1 {
		return Tree{}
	}
	length := sc.build(keepSegments)
	t := Tree{Length: length, SinkPathLen: append([]float64(nil), sc.pathLen[1:len(sc.pts)]...)}
	if keepSegments {
		t.Segments = append([]Segment(nil), sc.segs...)
	}
	return t
}

// NetWirelength returns the Steiner wirelength of one net in µm.
//
//hotpath:kernel
func (r *Router) NetWirelength(n *netlist.Net) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.pinbuf = n.AppendPinLocs(sc.pinbuf[:0])
	sc.dedup(sc.pinbuf)
	if len(sc.pts) <= 1 {
		return 0
	}
	return sc.build(false)
}

// Wirelength sums Steiner wirelength over the design. Clock nets are
// reported separately: before CTS they are a single star that would
// dwarf the signal estimate, and after CTS the clock tree owns them.
// The per-net trees build concurrently (Router.Workers); the sums
// accumulate in net order, so the result is worker-count independent.
func (r *Router) Wirelength(d *netlist.Design) (signal, clock float64) {
	wls := make([]float64, len(d.Nets))
	par.ParallelFor(r.Workers, len(d.Nets), func(i int) {
		wls[i] = r.NetWirelength(d.Nets[i])
	})
	r.Par.Note(len(d.Nets))
	for i, n := range d.Nets {
		if n.IsClock {
			clock += wls[i]
		} else {
			signal += wls[i]
		}
	}
	return signal, clock
}

// CountMIVs estimates the monolithic inter-tier vias a 3-D net needs: the
// signal originates on the driver's tier and descends (or ascends) once
// near each spatial cluster of pins on the opposite tier — nearby pins
// share a via, far-apart clusters each get their own. Returns 0 for
// single-tier nets.
func (r *Router) CountMIVs(n *netlist.Net) int {
	sc := getScratch()
	defer putScratch(sc)
	return r.countMIVs(sc, n)
}

//hotpath:kernel
func (r *Router) countMIVs(sc *rsmtScratch, n *netlist.Net) int {
	pins := &sc.clusterPts
	pins[0] = pins[0][:0]
	pins[1] = pins[1][:0]
	driverTier := tech.TierBottom
	if n.Driver.Valid() {
		driverTier = n.Driver.Inst.Tier
		pins[driverTier] = append(pins[driverTier], n.Driver.Loc())
	}
	for _, s := range n.Sinks {
		pins[s.Inst.Tier] = append(pins[s.Inst.Tier], s.Loc())
	}
	if len(pins[0]) == 0 || len(pins[1]) == 0 {
		return 0
	}
	return clusterCount(sc, pins[driverTier.Other()], r.MIVClusterRadius)
}

// clusterCount greedily groups points within radius of a cluster seed.
func clusterCount(sc *rsmtScratch, pts []geom.Point, radius float64) int {
	sc.taken = dense.Grow(sc.taken, len(pts))
	taken := sc.taken
	for i := range taken {
		taken[i] = false
	}
	clusters := 0
	for i := range pts {
		if taken[i] {
			continue
		}
		clusters++
		taken[i] = true
		for j := i + 1; j < len(pts); j++ {
			if !taken[j] && pts[i].ManhattanDist(pts[j]) <= radius {
				taken[j] = true
			}
		}
	}
	return clusters
}

// TotalMIVs sums the MIV estimate over all nets (clock included — the 3-D
// clock tree crosses tiers too). Per-net counts fan out like Wirelength.
func (r *Router) TotalMIVs(d *netlist.Design) int {
	counts := make([]int, len(d.Nets))
	par.ParallelFor(r.Workers, len(d.Nets), func(i int) {
		counts[i] = r.CountMIVs(d.Nets[i])
	})
	r.Par.Note(len(d.Nets))
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// NetRC is the lumped extraction of one net for timing and power.
//
// NetRC shells are pool-recycled: a value is owned by the caller of
// Extract until recycled (RecycleRC / Cache.Recycle) or published
// through one of the lifecycle functions below, and must not be stored
// past that point — the poolescape pass enforces this statically.
//
//pool:scoped
type NetRC struct {
	// WireLen is the Steiner length in µm.
	WireLen float64
	// WireCap is the total wire capacitance in fF (including MIV caps).
	WireCap float64
	// SinkR[i] is the wire resistance from driver to sink i in kΩ
	// (tree-path resistance, for the Elmore term).
	SinkR []float64
	// SinkCapShare[i] is the wire capacitance charged through SinkR[i]
	// (half the path's distributed cap, Elmore style).
	SinkCapShare []float64
	// MIVs is the inter-tier via count on the net.
	MIVs int
}

// rcPool recycles NetRC shells and their sink arrays between
// extractions. sync.Pool keeps the lists per-P, so the parallel
// extraction fan-outs each draw from their own worker-local free list.
var rcPool = sync.Pool{New: func() any { return new(NetRC) }}

// newNetRC returns a recycled (or fresh) NetRC with zeroed totals and
// empty sink slices holding at least the given capacity.
//
//pool:boundary the allocator half of the NetRC lifecycle
func newNetRC(sinks int) *NetRC {
	rc := rcPool.Get().(*NetRC)
	rc.WireLen, rc.WireCap, rc.MIVs = 0, 0, 0
	if cap(rc.SinkR) < sinks {
		rc.SinkR = make([]float64, 0, sinks)
		rc.SinkCapShare = make([]float64, 0, sinks)
	}
	rc.SinkR = rc.SinkR[:0]
	rc.SinkCapShare = rc.SinkCapShare[:0]
	return rc
}

// RecycleRC returns rc to the extraction free list. The caller must hold
// the only live reference: recycled storage is reused by later
// extractions, so recycling a NetRC that a cache entry, analysis result,
// or another goroutine can still read corrupts their view. The safe
// call sites are owners of provably private results — see Cache.Recycle
// for the guarded variant the timing engine uses.
//
//pool:boundary the recycler half of the NetRC lifecycle
func RecycleRC(rc *NetRC) {
	if rc != nil {
		rcPool.Put(rc)
	}
}

// Extract computes the lumped RC view of a net over the router's stack.
// Wire R/C use the stack averages (signal routing spreads across layers);
// each MIV adds its R in series (approximated onto every sink path of a
// crossing net) and its C to the total. With WLMPerSinkFF set the
// geometric estimate is replaced by the wire-load model.
//
// Results come from a free list refilled by RecycleRC; a result is
// owned by the caller until recycled or published (e.g. stored in a
// Cache, which then hands the same pointer to every caller).
//
//pool:boundary hands pool-fresh results to their owning caller
func (r *Router) Extract(n *netlist.Net) *NetRC {
	if r.WLMPerSinkFF > 0 {
		return r.extractWLM(n)
	}
	return r.extractGeometric(n)
}

// extractWLM is the pre-placement wire-load model: per-sink fixed wire
// cap, matching resistance via the stack's average RC, no MIVs.
//
//pool:boundary Extract's WLM leg; result ownership passes to the caller
func (r *Router) extractWLM(n *netlist.Net) *NetRC {
	avgR, avgC := r.Stack.AvgR(), r.Stack.AvgC()
	perLen := r.WLMPerSinkFF / avgC // µm of wire per sink
	sinks := len(n.Sinks) + len(n.SinkPorts)
	rc := newNetRC(sinks)
	rc.WireLen = perLen * float64(sinks)
	rc.WireCap = r.WLMPerSinkFF * float64(sinks)
	for i := 0; i < sinks; i++ {
		rc.SinkR = append(rc.SinkR, perLen*avgR)
		rc.SinkCapShare = append(rc.SinkCapShare, r.WLMPerSinkFF/2)
	}
	return rc
}

//hotpath:kernel
//pool:boundary Extract's geometric leg; result ownership passes to the caller
func (r *Router) extractGeometric(n *netlist.Net) *NetRC {
	sc := getScratch()
	defer putScratch(sc)
	sc.pinbuf = n.AppendPinLocs(sc.pinbuf[:0])
	sc.dedup(sc.pinbuf)
	var length float64
	if len(sc.pts) > 1 {
		length = sc.build(false)
	}
	avgR, avgC := r.Stack.AvgR(), r.Stack.AvgC()
	rc := newNetRC(len(n.Sinks) + len(n.SinkPorts))
	rc.WireLen = length
	rc.WireCap = length * avgC
	rc.MIVs = r.countMIVs(sc, n)
	rc.WireCap += float64(rc.MIVs) * r.MIV.C

	// Per-sink path resistance from the tree, in pin order. The builder
	// dedups coincident pins, so map by location.
	clear(sc.pathLoc)
	if len(sc.pts) > 1 {
		for i, l := range sc.pts[1:] {
			sc.pathLoc[l] = sc.pathLen[i+1]
		}
	}
	crossing := rc.MIVs > 0
	appendSink := func(loc geom.Point, otherTier bool) {
		pl := sc.pathLoc[loc]
		res := pl * avgR
		if crossing && otherTier {
			res += r.MIV.R
		}
		rc.SinkR = append(rc.SinkR, res)
		rc.SinkCapShare = append(rc.SinkCapShare, pl*avgC/2)
	}
	driverTier := tech.TierBottom
	if n.Driver.Valid() {
		driverTier = n.Driver.Inst.Tier
	}
	for _, s := range n.Sinks {
		appendSink(s.Loc(), s.Inst.Tier != driverTier)
	}
	for _, p := range n.SinkPorts {
		appendSink(p.Loc, false)
	}
	return rc
}
