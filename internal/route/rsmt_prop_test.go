package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Deeper RSMT properties beyond the basic bound checks in route_test.go.

// Property: the Steiner estimate never exceeds the plain L-routed MST
// (overlap merging can only remove length), and both stay within the
// star upper bound.
func TestRSMTNeverWorseThanStarOrMST(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*200, rng.Float64()*200)
		}
		tr := RSMT(pts, false)

		// Plain Prim MST length.
		mst := primLength(pts)
		if tr.Length > mst+1e-6 {
			return false
		}
		// And the MST itself is at most the star.
		star := 0.0
		for _, p := range pts[1:] {
			star += pts[0].ManhattanDist(p)
		}
		return mst <= star+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func primLength(pts []geom.Point) float64 {
	n := len(pts)
	in := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	total := 0.0
	for k := 0; k < n; k++ {
		best, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !in[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		in[best] = true
		total += bd
		for i := 0; i < n; i++ {
			if !in[i] {
				if d := pts[best].ManhattanDist(pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// Property: translation invariance — shifting every pin shifts the tree
// but not its length.
func TestRSMTTranslationInvariant(t *testing.T) {
	f := func(seed int64, dx, dy int16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		pts := make([]geom.Point, n)
		moved := make([]geom.Point, n)
		off := geom.Pt(float64(dx), float64(dy))
		for i := range pts {
			pts[i] = geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
			moved[i] = pts[i].Add(off)
		}
		a := RSMT(pts, false).Length
		b := RSMT(moved, false).Length
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: sink path lengths are at least the Manhattan distance from
// the root (tree paths cannot beat the direct route) and the tree length
// is at least the longest path.
func TestRSMTPathLengthBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		pts := make([]geom.Point, n)
		seen := map[geom.Point]bool{}
		for i := range pts {
			for {
				p := geom.Pt(float64(rng.Intn(64)), float64(rng.Intn(64)))
				if !seen[p] {
					seen[p] = true
					pts[i] = p
					break
				}
			}
		}
		tr := RSMT(pts, false)
		if len(tr.SinkPathLen) != n-1 {
			return false
		}
		for i, pl := range tr.SinkPathLen {
			direct := pts[0].ManhattanDist(pts[i+1])
			if pl < direct-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: adding a pin on an existing tree segment's endpoint set never
// decreases the length by more than zero (monotone under pin insertion is
// NOT generally true for Steiner trees, but length must stay ≥ the
// 2-pin distance between the two farthest points).
func TestRSMTDiameterLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		tr := RSMT(pts, false)
		diam := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := pts[i].ManhattanDist(pts[j]); d > diam {
					diam = d
				}
			}
		}
		return tr.Length >= diam-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
