package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// TestPerNetKernelAllocs pins the steady-state allocation count of the
// per-net routing kernel — RSMT construction, wirelength, MIV counting,
// and RC extraction with recycling. Once the scratch and RC pools are
// warm, the whole chain must stay off the allocator: the flow runs it
// once per net per sweep, so any per-call allocation here multiplies by
// millions at scale 1.0.
func TestPerNetKernelAllocs(t *testing.T) {
	locs := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 2), geom.Pt(4, 8),
		geom.Pt(7, 5), geom.Pt(1, 6),
	}
	tiers := []tech.Tier{
		tech.TierBottom, tech.TierTop, tech.TierBottom,
		tech.TierTop, tech.TierBottom,
	}
	_, n := buildNet3D(t, locs, tiers)
	r := New()

	// Warm the per-P scratch and RC pools.
	for i := 0; i < 3; i++ {
		r.NetWirelength(n)
		r.CountMIVs(n)
		RecycleRC(r.Extract(n))
	}

	wl := testing.AllocsPerRun(50, func() { r.NetWirelength(n) })
	miv := testing.AllocsPerRun(50, func() { r.CountMIVs(n) })
	rc := testing.AllocsPerRun(50, func() { RecycleRC(r.Extract(n)) })
	t.Logf("allocs/run: NetWirelength=%v CountMIVs=%v Extract+Recycle=%v", wl, miv, rc)
	if wl > 0 {
		t.Errorf("NetWirelength allocates %v per run, want 0", wl)
	}
	if miv > 0 {
		t.Errorf("CountMIVs allocates %v per run, want 0", miv)
	}
	if rc > 0 {
		t.Errorf("Extract+RecycleRC allocates %v per run, want 0", rc)
	}
}

// BenchmarkKernelNetRoute measures the warm per-net routing chain
// (wirelength + MIV count + RC extraction with recycling); its B/op is
// guarded against the committed BENCH_alloc.json baseline by
// tools/benchguard in CI.
func BenchmarkKernelNetRoute(b *testing.B) {
	locs := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 2), geom.Pt(4, 8),
		geom.Pt(7, 5), geom.Pt(1, 6),
	}
	tiers := []tech.Tier{
		tech.TierBottom, tech.TierTop, tech.TierBottom,
		tech.TierTop, tech.TierBottom,
	}
	_, n := buildNet3D(b, locs, tiers)
	r := New()
	for i := 0; i < 3; i++ {
		r.NetWirelength(n)
		r.CountMIVs(n)
		RecycleRC(r.Extract(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NetWirelength(n)
		r.CountMIVs(n)
		RecycleRC(r.Extract(n))
	}
}
