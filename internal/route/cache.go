package route

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/netlist"
)

// Extractor is the RC-extraction interface timing and power analysis
// consume: Router implements it directly, and Cache wraps any Extractor
// with revision-keyed memoization.
type Extractor interface {
	// Extract returns the lumped RC view of a net. Callers must treat the
	// result as immutable — a caching implementation hands the same
	// pointer to every caller.
	Extract(n *netlist.Net) *NetRC
}

// CacheStats counts cache effectiveness for the engine-observability
// report.
type CacheStats struct {
	Hits, Misses int64
	// Coalesced counts lookups that found an extraction of the same net
	// revision already in flight on another goroutine and waited for its
	// result instead of extracting again — the singleflight path. It is
	// always 0 in a serial flow.
	Coalesced int64
}

// HitRate returns the fraction of lookups served without a fresh
// extraction (0 when the cache was never queried). Coalesced lookups
// count as served: they returned a shared result, not new work.
func (s CacheStats) HitRate() float64 {
	served := s.Hits + s.Coalesced
	if served+s.Misses == 0 {
		return 0
	}
	return float64(served) / float64(served+s.Misses)
}

// Cache memoizes per-net extraction keyed on the design's change journal:
// an entry is valid exactly while netlist.Design.NetRev is unchanged, which
// the journal guarantees moves whenever the net's pin membership or any
// connected instance's location or tier changes. Gate resizes do not move
// net revisions, so the whole timing-repair sizing loop runs on warm
// entries.
//
// A Cache belongs to one flow but is safe for concurrent use within it:
// the parallel extraction fan-outs (sta's extractAll, concurrent
// timing+power analysis) may call Extract from many goroutines. Fills
// are per-revision singleflight — when several goroutines miss on the
// same net at the same revision, exactly one runs the underlying
// extraction and the rest wait for (and share) its result. The design
// itself must be quiescent while extractions run concurrently; mutating
// the netlist is only legal with no Extract in flight, which the flow's
// phase structure guarantees.
type Cache struct {
	inner Extractor
	d     *netlist.Design

	mu sync.Mutex
	// entries is indexed by net ID and grows lazily as nets are added.
	entries []cacheEntry
	// flights holds the in-progress extraction per net ID (singleflight).
	flights map[int]*flight
	// gen invalidation generation: a flight started before an Invalidate
	// must not re-validate its entry afterwards.
	gen   uint64
	stats CacheStats
}

type cacheEntry struct {
	rc    *NetRC
	rev   uint64
	valid bool
}

// flight is one in-progress underlying extraction; waiters block on done
// and read rc afterwards.
type flight struct {
	rev  uint64
	gen  uint64
	rc   *NetRC
	done chan struct{}
}

// NewCache wraps an extractor (usually a *Router) with revision-keyed
// memoization over d's nets.
func NewCache(inner Extractor, d *netlist.Design) *Cache {
	return &Cache{inner: inner, d: d, flights: make(map[int]*flight)}
}

// Extract implements Extractor: a journal-validated hit returns the
// stored RC, a lookup that races an in-flight extraction of the same
// revision waits for it, and anything else re-extracts and stores.
//
//pool:boundary the cache owns publication of NetRC results
func (c *Cache) Extract(n *netlist.Net) *NetRC {
	c.mu.Lock()
	if n.ID >= len(c.entries) {
		grown := make([]cacheEntry, len(c.d.Nets))
		copy(grown, c.entries)
		c.entries = grown
	}
	rev := c.d.NetRev(n)
	if e := &c.entries[n.ID]; e.valid && e.rev == rev {
		c.stats.Hits++
		rc := e.rc
		c.mu.Unlock()
		return rc
	}
	if f := c.flights[n.ID]; f != nil && f.rev == rev {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-f.done
		return f.rc
	}
	f := &flight{rev: rev, gen: c.gen, done: make(chan struct{})}
	c.flights[n.ID] = f
	c.stats.Misses++
	c.mu.Unlock()

	rc := c.inner.Extract(n)

	c.mu.Lock()
	f.rc = rc
	if f.gen == c.gen {
		e := &c.entries[n.ID]
		e.rc, e.rev, e.valid = rc, rev, true
	}
	if c.flights[n.ID] == f {
		delete(c.flights, n.ID)
	}
	c.mu.Unlock()
	close(f.done)
	return rc
}

// Recycle offers rc back to the extraction free list on behalf of a
// caller that received it from Extract and has since replaced it (the
// incremental timing engine, after a revision moved). The cache refuses
// when the pointer is still published — stored in the current entry or
// held by an in-flight extraction — so a stale Recycle is safe: at
// worst the storage is not reused.
func (c *Cache) Recycle(n *netlist.Net, rc *NetRC) {
	if rc == nil {
		return
	}
	c.mu.Lock()
	live := n.ID < len(c.entries) && c.entries[n.ID].rc == rc
	if f := c.flights[n.ID]; f != nil {
		live = true // its result may be this pointer; don't race the fill
	}
	c.mu.Unlock()
	if !live {
		RecycleRC(rc)
	}
}

// Stats returns the cumulative hit/miss/coalesce counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Invalidate drops every entry; the next lookups re-extract. Extractions
// already in flight complete but do not re-validate their entries.
// Useful after mutations that bypassed the journal.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	for i := range c.entries {
		c.entries[i].valid = false
	}
}

// ErrCorrupted reports an audit finding: a cached entry whose stored RC no
// longer matches a fresh extraction at the same journal revision — silent
// wrong data, the one failure the revision key cannot catch.
type ErrCorrupted struct {
	Net string
}

func (e *ErrCorrupted) Error() string {
	return fmt.Sprintf("route: extraction cache corrupted: net %s diverges from fresh extraction at its cached revision", e.Net)
}

// Audit re-extracts every valid, revision-current entry and compares it to
// the cached RC, returning an *ErrCorrupted for the first divergence. It is
// the detection side of fault injection's extraction-cache corruption: the
// revision key guarantees freshness only if the stored values were right
// when stored. Audit is O(nets) per call, so the timing env enables it only
// when a fault plan is armed. It snapshots the entries and runs the fresh
// extractions unlocked; audit a quiescent cache (no concurrent fills).
func (c *Cache) Audit() error {
	c.mu.Lock()
	snap := append([]cacheEntry(nil), c.entries...)
	c.mu.Unlock()
	for i := range snap {
		e := &snap[i]
		if !e.valid || i >= len(c.d.Nets) {
			continue
		}
		n := c.d.Nets[i]
		if n == nil || c.d.NetRev(n) != e.rev {
			continue
		}
		fresh := c.inner.Extract(n)
		bad := !rcEqual(e.rc, fresh)
		RecycleRC(fresh) // audit-private comparison copy, never published
		if bad {
			return &ErrCorrupted{Net: n.Name}
		}
	}
	return nil
}

func rcEqual(a, b *NetRC) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.WireLen != b.WireLen || a.WireCap != b.WireCap || a.MIVs != b.MIVs ||
		len(a.SinkR) != len(b.SinkR) || len(a.SinkCapShare) != len(b.SinkCapShare) {
		return false
	}
	for i := range a.SinkR {
		if a.SinkR[i] != b.SinkR[i] {
			return false
		}
	}
	for i := range a.SinkCapShare {
		if a.SinkCapShare[i] != b.SinkCapShare[i] {
			return false
		}
	}
	return true
}

// Poison corrupts the cache in place for fault injection: every valid
// entry is replaced by a perturbed copy that keeps its journal revision,
// so ordinary revision-keyed lookups keep serving the wrong values. The
// perturbation is seeded for reproducibility and never exactly zero, so
// Audit always detects it. Returns how many entries were poisoned.
//
//pool:boundary fault injection rewrites cache slots by design
func (c *Cache) Poison(seed int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	poisoned := 0
	for i := range c.entries {
		e := &c.entries[i]
		if !e.valid || e.rc == nil {
			continue
		}
		bad := *e.rc
		bad.WireCap = bad.WireCap*(1+0.25*rng.Float64()) + 1e-15
		bad.WireLen = math.Nextafter(bad.WireLen, math.MaxFloat64) + 1e-9
		bad.SinkR = append([]float64(nil), e.rc.SinkR...)
		bad.SinkCapShare = append([]float64(nil), e.rc.SinkCapShare...)
		e.rc = &bad
		poisoned++
	}
	return poisoned
}
