package route

import "repro/internal/netlist"

// Extractor is the RC-extraction interface timing and power analysis
// consume: Router implements it directly, and Cache wraps any Extractor
// with revision-keyed memoization.
type Extractor interface {
	// Extract returns the lumped RC view of a net. Callers must treat the
	// result as immutable — a caching implementation hands the same
	// pointer to every caller.
	Extract(n *netlist.Net) *NetRC
}

// CacheStats counts cache effectiveness for the engine-observability
// report.
type CacheStats struct {
	Hits, Misses int64
}

// HitRate returns the fraction of lookups served from cache (0 when the
// cache was never queried).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache memoizes per-net extraction keyed on the design's change journal:
// an entry is valid exactly while netlist.Design.NetRev is unchanged, which
// the journal guarantees moves whenever the net's pin membership or any
// connected instance's location or tier changes. Gate resizes do not move
// net revisions, so the whole timing-repair sizing loop runs on warm
// entries.
//
// A Cache belongs to one flow and is not safe for concurrent use — the
// evaluation suite's parallelism is across flows, each with its own cache.
type Cache struct {
	inner Extractor
	d     *netlist.Design
	// entries is indexed by net ID and grows lazily as nets are added.
	entries []cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	rc    *NetRC
	rev   uint64
	valid bool
}

// NewCache wraps an extractor (usually a *Router) with revision-keyed
// memoization over d's nets.
func NewCache(inner Extractor, d *netlist.Design) *Cache {
	return &Cache{inner: inner, d: d}
}

// Extract implements Extractor: a journal-validated hit returns the stored
// RC, anything else re-extracts and stores.
func (c *Cache) Extract(n *netlist.Net) *NetRC {
	if n.ID >= len(c.entries) {
		grown := make([]cacheEntry, len(c.d.Nets))
		copy(grown, c.entries)
		c.entries = grown
	}
	e := &c.entries[n.ID]
	rev := c.d.NetRev(n)
	if e.valid && e.rev == rev {
		c.stats.Hits++
		return e.rc
	}
	c.stats.Misses++
	e.rc = c.inner.Extract(n)
	e.rev = rev
	e.valid = true
	return e.rc
}

// Stats returns the cumulative hit/miss counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Invalidate drops every entry; the next lookups re-extract. Useful after
// mutations that bypassed the journal.
func (c *Cache) Invalidate() {
	for i := range c.entries {
		c.entries[i].valid = false
	}
}
