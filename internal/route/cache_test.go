package route

import (
	"errors"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// cacheDesign builds inv(a) → mid → {inv(b), inv(c)} with placed cells so
// geometric extraction produces non-trivial RC.
func cacheDesign(t *testing.T) (*netlist.Design, *netlist.Net) {
	t.Helper()
	d := netlist.New("cache")
	a, _ := d.AddNet("a")
	if _, err := d.AddPort("a", cell.DirIn, a); err != nil {
		t.Fatal(err)
	}
	mid, _ := d.AddNet("mid")
	out, _ := d.AddNet("out")
	i1, err := d.AddInstance("i1", lib.Smallest(cell.FuncInv))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := d.AddInstance("i2", lib.Smallest(cell.FuncInv))
	if err != nil {
		t.Fatal(err)
	}
	i3, err := d.AddInstance("i3", lib.Smallest(cell.FuncInv))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		inst *netlist.Instance
		pin  string
		n    *netlist.Net
	}{{i1, "A", a}, {i1, "Y", mid}, {i2, "A", mid}, {i2, "Y", out}, {i3, "A", mid}} {
		if err := d.Connect(c.inst, c.pin, c.n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddPort("out", cell.DirOut, out); err != nil {
		t.Fatal(err)
	}
	i1.Loc, i2.Loc, i3.Loc = geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(0, 15)
	return d, mid
}

func TestCacheHitMissInvalidate(t *testing.T) {
	d, mid := cacheDesign(t)
	r := New()
	c := NewCache(r, d)

	rc1 := c.Extract(mid)
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first lookup stats = %+v, want 0 hits 1 miss", s)
	}
	rc2 := c.Extract(mid)
	if rc1 != rc2 {
		t.Errorf("second lookup returned a different pointer")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("after second lookup stats = %+v, want 1 hit 1 miss", s)
	}
	if !rcEqual(rc1, r.Extract(mid)) {
		t.Errorf("cached RC differs from direct extraction")
	}

	// Moving a connected instance must invalidate the entry and re-extract
	// to the same values a raw router would produce.
	d.Instance("i2").SetLoc(geom.Pt(40, 10))
	rc3 := c.Extract(mid)
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("SetLoc did not invalidate: stats = %+v", s)
	}
	if rcEqual(rc3, rc1) {
		t.Errorf("RC unchanged after a real move")
	}
	if !rcEqual(rc3, r.Extract(mid)) {
		t.Errorf("post-move cached RC differs from direct extraction")
	}

	// A tier flip also moves the net revision.
	d.Instance("i3").SetTier(tech.TierTop)
	c.Extract(mid)
	if s := c.Stats(); s.Misses != 3 {
		t.Errorf("SetTier did not invalidate: stats = %+v", s)
	}

	// Explicit Invalidate drops everything.
	c.Invalidate()
	c.Extract(mid)
	if s := c.Stats(); s.Misses != 4 {
		t.Errorf("Invalidate did not drop entries: stats = %+v", s)
	}
}

func TestCacheWarmAcrossResize(t *testing.T) {
	d, mid := cacheDesign(t)
	c := NewCache(New(), d)
	rc1 := c.Extract(mid)

	// Gate sizing swaps masters without touching wire geometry: the whole
	// repair loop must run on warm entries.
	i2 := d.Instance("i2")
	up := lib.NextDriveUp(i2.Master)
	if up == nil {
		t.Fatal("no drive-up master")
	}
	if err := d.ReplaceMaster(i2, up); err != nil {
		t.Fatal(err)
	}
	if rc2 := c.Extract(mid); rc2 != rc1 {
		t.Errorf("ReplaceMaster invalidated the RC entry")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats after resize = %+v, want 1 hit 1 miss", s)
	}
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
}

func TestCacheGrowsWithNewNets(t *testing.T) {
	d, mid := cacheDesign(t)
	c := NewCache(New(), d)
	c.Extract(mid)

	// Structural edits append nets; the cache must grow and serve them.
	_, nn, err := d.InsertBuffer(mid, append([]netlist.PinRef{}, mid.Sinks...), lib.Smallest(cell.FuncBuf), "b0")
	if err != nil {
		t.Fatal(err)
	}
	rc := c.Extract(nn)
	if rc == nil || len(rc.SinkR) != len(nn.Sinks) {
		t.Fatalf("cache failed on appended net: %+v", rc)
	}
	// The split net was journaled, so its entry re-extracts.
	before := c.Stats().Misses
	c.Extract(mid)
	if c.Stats().Misses != before+1 {
		t.Errorf("split net served stale RC after InsertBuffer")
	}
}

func TestCacheAuditCleanAndPoisoned(t *testing.T) {
	d, mid := cacheDesign(t)
	c := NewCache(New(), d)
	c.Extract(mid)

	if err := c.Audit(); err != nil {
		t.Fatalf("audit of a clean cache: %v", err)
	}

	// Poison keeps journal revisions, so ordinary lookups keep hitting the
	// corrupted entry — only Audit can see the divergence.
	if n := c.Poison(42); n != 1 {
		t.Fatalf("Poison corrupted %d entries, want 1", n)
	}
	hitsBefore := c.Stats().Hits
	c.Extract(mid)
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatal("poisoned entry missed: corruption must stay revision-valid")
	}
	err := c.Audit()
	var corrupt *ErrCorrupted
	if err == nil || !errors.As(err, &corrupt) {
		t.Fatalf("audit of a poisoned cache: got %v, want *ErrCorrupted", err)
	}
	if corrupt.Net != "mid" {
		t.Errorf("corrupted net = %q, want mid", corrupt.Net)
	}

	// Invalidate + re-extract is the recovery path: audit must come back
	// clean afterwards.
	c.Invalidate()
	c.Extract(mid)
	if err := c.Audit(); err != nil {
		t.Fatalf("audit after recovery: %v", err)
	}
}

func TestPoisonDeterministic(t *testing.T) {
	build := func() *Cache {
		d, mid := cacheDesign(t)
		c := NewCache(New(), d)
		c.Extract(mid)
		c.Poison(7)
		return c
	}
	a, b := build(), build()
	for i := range a.entries {
		if a.entries[i].valid != b.entries[i].valid {
			t.Fatalf("entry %d validity differs", i)
		}
		if a.entries[i].valid && !rcEqual(a.entries[i].rc, b.entries[i].rc) {
			t.Fatalf("entry %d: same seed produced different poison", i)
		}
	}
}
