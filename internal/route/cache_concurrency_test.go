package route

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// slowExtractor wraps an Extractor, counting underlying extractions and
// widening the race window so concurrent misses on the same revision
// reliably overlap — the singleflight path must collapse them to one.
type slowExtractor struct {
	inner Extractor
	calls atomic.Int64
	delay time.Duration
}

func (s *slowExtractor) Extract(n *netlist.Net) *NetRC {
	s.calls.Add(1)
	time.Sleep(s.delay)
	return s.inner.Extract(n)
}

// TestCacheConcurrentSameRevision hammers one net at one revision from
// many goroutines: exactly one underlying extraction may run, every
// caller must receive the same *NetRC, and the remaining lookups must be
// accounted as hits or coalesced waits. Run under -race this is also the
// data-race check for the fill path.
func TestCacheConcurrentSameRevision(t *testing.T) {
	d, mid := cacheDesign(t)
	slow := &slowExtractor{inner: New(), delay: 2 * time.Millisecond}
	c := NewCache(slow, d)

	const goroutines = 32
	rcs := make([]*NetRC, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer done.Done()
			start.Wait()
			rcs[g] = c.Extract(mid)
		}()
	}
	start.Done()
	done.Wait()

	if n := slow.calls.Load(); n != 1 {
		t.Errorf("underlying extractor ran %d times, want exactly 1 (singleflight)", n)
	}
	for g := 1; g < goroutines; g++ {
		if rcs[g] != rcs[0] {
			t.Fatalf("goroutine %d received a different *NetRC", g)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("Misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Coalesced != goroutines-1 {
		t.Errorf("Hits+Coalesced = %d+%d, want %d", s.Hits, s.Coalesced, goroutines-1)
	}
}

// TestCacheConcurrentAcrossRevisions interleaves hammer rounds with
// journaled moves: each revision must trigger exactly one underlying
// extraction no matter how many goroutines race the fill.
func TestCacheConcurrentAcrossRevisions(t *testing.T) {
	d, mid := cacheDesign(t)
	slow := &slowExtractor{inner: New(), delay: time.Millisecond}
	c := NewCache(slow, d)

	const goroutines = 16
	const revisions = 5
	for rev := 0; rev < revisions; rev++ {
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		rcs := make([]*NetRC, goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				start.Wait()
				rcs[g] = c.Extract(mid)
			}()
		}
		start.Done()
		done.Wait()
		for g := 1; g < goroutines; g++ {
			if rcs[g] != rcs[0] {
				t.Fatalf("revision %d: goroutine %d received a different *NetRC", rev, g)
			}
		}
		if n := slow.calls.Load(); n != int64(rev+1) {
			t.Fatalf("after revision %d: %d underlying extractions, want %d", rev, n, rev+1)
		}
		// Journaled move: the next round extracts at a fresh revision.
		d.Instance("i2").SetLoc(geom.Pt(float64(25+5*rev), float64(5*rev)))
	}
	s := c.Stats()
	if s.Misses != revisions {
		t.Errorf("Misses = %d, want %d", s.Misses, revisions)
	}
	if got, want := s.Hits+s.Coalesced, int64(revisions*(goroutines-1)); got != want {
		t.Errorf("Hits+Coalesced = %d, want %d", got, want)
	}
}

// TestCacheConcurrentDistinctNets fans out over different nets at once —
// the common shape of the timing engine's parallel extractAll — and
// checks every net extracts exactly once.
func TestCacheConcurrentDistinctNets(t *testing.T) {
	d, _ := cacheDesign(t)
	slow := &slowExtractor{inner: New(), delay: time.Millisecond}
	c := NewCache(slow, d)

	nets := d.Nets
	const rounds = 8
	var done sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, n := range nets {
			n := n
			done.Add(1)
			go func() {
				defer done.Done()
				if rc := c.Extract(n); rc == nil {
					t.Error("nil RC from concurrent extract")
				}
			}()
		}
	}
	done.Wait()
	if n := slow.calls.Load(); n != int64(len(nets)) {
		t.Errorf("underlying extractions = %d, want one per net (%d)", n, len(nets))
	}
}

// TestCacheInvalidateDuringFlight pins the generation contract: an
// extraction in flight when Invalidate lands completes and serves its
// waiters, but must not re-validate its entry — the next lookup
// re-extracts.
func TestCacheInvalidateDuringFlight(t *testing.T) {
	d, mid := cacheDesign(t)
	gate := make(chan struct{})
	entered := make(chan struct{})
	inner := New()
	var first sync.Once
	c := NewCache(extractFunc(func(n *netlist.Net) *NetRC {
		// Only the first fill is gated; the post-Invalidate refill runs
		// straight through.
		first.Do(func() {
			close(entered)
			<-gate
		})
		return inner.Extract(n)
	}), d)

	var flightRC *NetRC
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		flightRC = c.Extract(mid)
	}()
	<-entered
	c.Invalidate() // lands while the fill is in flight
	close(gate)
	done.Wait()

	if flightRC == nil {
		t.Fatal("in-flight extraction returned nil")
	}
	if got := c.Extract(mid); got == flightRC {
		t.Error("entry filled by a pre-Invalidate flight was served after Invalidate")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("Misses = %d, want 2 (flight + post-Invalidate refill)", s.Misses)
	}
}

// extractFunc adapts a function to the Extractor interface for test
// doubles.
type extractFunc func(*netlist.Net) *NetRC

func (f extractFunc) Extract(n *netlist.Net) *NetRC { return f(n) }
