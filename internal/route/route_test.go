package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.Variant12T())

func TestRSMTTrivialCases(t *testing.T) {
	if got := RSMT(nil, false).Length; got != 0 {
		t.Errorf("empty RSMT = %v", got)
	}
	if got := RSMT([]geom.Point{geom.Pt(3, 3)}, false).Length; got != 0 {
		t.Errorf("single-pin RSMT = %v", got)
	}
	two := RSMT([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}, false)
	if math.Abs(two.Length-7) > 1e-9 {
		t.Errorf("2-pin RSMT = %v, want 7", two.Length)
	}
	if len(two.SinkPathLen) != 1 || math.Abs(two.SinkPathLen[0]-7) > 1e-9 {
		t.Errorf("2-pin path lens = %v", two.SinkPathLen)
	}
	// Duplicate pins collapse.
	dup := RSMT([]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 0)}, false)
	if math.Abs(dup.Length-1) > 1e-9 {
		t.Errorf("dup RSMT = %v, want 1", dup.Length)
	}
}

func TestRSMTThreePinOptimal(t *testing.T) {
	// Three corners of a box: optimal RSMT = HPWL of the bbox.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 6)}
	got := RSMT(pts, false).Length
	if math.Abs(got-16) > 1e-9 {
		t.Errorf("3-pin RSMT = %v, want 16", got)
	}
}

func TestRSMTSharesTrunks(t *testing.T) {
	// Four pins in a line with one off-axis: a star from the line would
	// over-count; overlap merging must dedupe the trunk.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(30, 0),
	}
	got := RSMT(pts, false).Length
	if math.Abs(got-30) > 1e-9 {
		t.Errorf("collinear RSMT = %v, want 30", got)
	}
}

func TestRSMTBetweenHPWLAndStar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		tr := RSMT(pts, false)
		lower := HPWL(pts)
		// Star upper bound: every pin wired to pin 0 individually.
		star := 0.0
		for _, p := range pts[1:] {
			star += pts[0].ManhattanDist(p)
		}
		return tr.Length >= lower-1e-6 && tr.Length <= star+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRSMTSegmentsAccountForLength(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(float64(rng.Intn(50)), float64(rng.Intn(50)))
		}
		tr := RSMT(pts, true)
		segSum := 0.0
		for _, s := range tr.Segments {
			segSum += s.Length()
		}
		return math.Abs(segSum-tr.Length) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// buildNet3D creates a net with a driver and sinks at given locations and
// tiers.
func buildNet3D(t testing.TB, locs []geom.Point, tiers []tech.Tier) (*netlist.Design, *netlist.Net) {
	t.Helper()
	d := netlist.New("n3d")
	n, _ := d.AddNet("n")
	drv, _ := d.AddInstance("drv", lib.Smallest(cell.FuncInv))
	drv.Loc = locs[0]
	drv.Tier = tiers[0]
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "A", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "Y", n); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(locs); i++ {
		s, _ := d.AddInstance(string(rune('a'+i)), lib.Smallest(cell.FuncInv))
		s.Loc = locs[i]
		s.Tier = tiers[i]
		if err := d.Connect(s, "A", n); err != nil {
			t.Fatal(err)
		}
		o, _ := d.AddNet("o" + string(rune('a'+i)))
		if err := d.Connect(s, "Y", o); err != nil {
			t.Fatal(err)
		}
	}
	return d, n
}

func TestCountMIVs(t *testing.T) {
	r := New()
	// Single tier → 0 MIVs.
	_, n := buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)},
		[]tech.Tier{tech.TierBottom, tech.TierBottom})
	if got := r.CountMIVs(n); got != 0 {
		t.Errorf("single-tier MIVs = %d", got)
	}
	// One sink on the other tier → 1 MIV.
	_, n = buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)},
		[]tech.Tier{tech.TierBottom, tech.TierTop})
	if got := r.CountMIVs(n); got != 1 {
		t.Errorf("crossing MIVs = %d, want 1", got)
	}
	// Two far-apart minority pins → 2 MIVs; two nearby → 1.
	_, n = buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(100, 100), geom.Pt(0, 1)},
		[]tech.Tier{tech.TierBottom, tech.TierTop, tech.TierTop, tech.TierBottom})
	if got := r.CountMIVs(n); got != 2 {
		t.Errorf("two clusters MIVs = %d, want 2", got)
	}
	_, n = buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(6, 6), geom.Pt(0, 1)},
		[]tech.Tier{tech.TierBottom, tech.TierTop, tech.TierTop, tech.TierBottom})
	if got := r.CountMIVs(n); got != 1 {
		t.Errorf("clustered MIVs = %d, want 1", got)
	}
}

func TestExtract(t *testing.T) {
	r := New()
	_, n := buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)},
		[]tech.Tier{tech.TierBottom, tech.TierBottom, tech.TierBottom})
	rc := r.Extract(n)
	if math.Abs(rc.WireLen-20) > 1e-9 {
		t.Errorf("WireLen = %v, want 20", rc.WireLen)
	}
	if rc.MIVs != 0 {
		t.Errorf("MIVs = %d", rc.MIVs)
	}
	wantCap := 20 * r.Stack.AvgC()
	if math.Abs(rc.WireCap-wantCap) > 1e-9 {
		t.Errorf("WireCap = %v, want %v", rc.WireCap, wantCap)
	}
	if len(rc.SinkR) != 2 {
		t.Fatalf("SinkR count = %d", len(rc.SinkR))
	}
	// Farther sink has more resistance.
	if rc.SinkR[1] <= rc.SinkR[0] {
		t.Errorf("SinkR = %v, want increasing", rc.SinkR)
	}
}

func TestExtractCrossTierAddsMIVParasitics(t *testing.T) {
	r := New()
	_, flat := buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		[]tech.Tier{tech.TierBottom, tech.TierBottom})
	_, cross := buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		[]tech.Tier{tech.TierBottom, tech.TierTop})
	rcFlat, rcCross := r.Extract(flat), r.Extract(cross)
	if rcCross.WireCap <= rcFlat.WireCap {
		t.Error("crossing net should carry MIV cap")
	}
	if rcCross.SinkR[0] <= rcFlat.SinkR[0] {
		t.Error("crossing sink should carry MIV resistance")
	}
}

func TestWirelengthSeparatesClock(t *testing.T) {
	d, n := buildNet3D(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		[]tech.Tier{tech.TierBottom, tech.TierBottom})
	r := New()
	sig1, clk1 := r.Wirelength(d)
	if clk1 != 0 || sig1 <= 0 {
		t.Errorf("pre: signal=%v clock=%v", sig1, clk1)
	}
	n.IsClock = true
	sig2, clk2 := r.Wirelength(d)
	if clk2 != sig1-sig2+clk1 && clk2 <= 0 {
		t.Errorf("post: signal=%v clock=%v", sig2, clk2)
	}
}

func TestCongestion(t *testing.T) {
	// A deliberately congested strip: many parallel nets through one bin
	// column.
	d := netlist.New("cong")
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a, _ := d.AddInstance("a"+string(rune('0'+i/10))+string(rune('0'+i%10)), lib.Smallest(cell.FuncInv))
		b, _ := d.AddInstance("b"+string(rune('0'+i/10))+string(rune('0'+i%10)), lib.Smallest(cell.FuncInv))
		a.Loc = geom.Pt(0, 5)
		b.Loc = geom.Pt(10, 5)
		n, _ := d.AddNet("n" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
		if err := d.Connect(a, "Y", n); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(b, "A", n); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(a, "A", in); err != nil {
			t.Fatal(err)
		}
		o, _ := d.AddNet("o" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
		if err := d.Connect(b, "Y", o); err != nil {
			t.Fatal(err)
		}
	}
	r := New()
	cm, err := r.Congestion(d, geom.R(0, 0, 10, 10), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// All 40 nets run horizontally through row bins at y=5: demand 40×2.5
	// per bin vs supply.
	if cm.DemandH.Sum() < 350 {
		t.Errorf("H demand = %v, want ≈400", cm.DemandH.Sum())
	}
	if cm.MaxUtilization() <= 0 {
		t.Error("expected nonzero utilization")
	}
	if of := cm.OverflowFraction(); of < 0 || of > 1 {
		t.Errorf("overflow fraction = %v", of)
	}
	if _, err := r.Congestion(d, geom.Rect{}, 4, 4); err == nil {
		t.Error("empty outline should fail")
	}
}

func TestSegmentOrientation(t *testing.T) {
	h := Segment{geom.Pt(0, 5), geom.Pt(9, 5)}
	v := Segment{geom.Pt(2, 0), geom.Pt(2, 7)}
	if !h.Horizontal() || v.Horizontal() {
		t.Error("orientation wrong")
	}
	if h.Length() != 9 || v.Length() != 7 {
		t.Error("length wrong")
	}
}
