package route

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// CongestionMap holds per-bin routing demand vs supply for one direction
// pair. Demand comes from the actual Steiner segments of every signal
// net; supply from the stack's track capacity.
type CongestionMap struct {
	Grid *geom.Grid
	// DemandH/DemandV are routed wire length per bin (µm) by direction.
	DemandH, DemandV *geom.Histogram
	// SupplyH and SupplyV are the per-bin routable wirelength capacity.
	SupplyH, SupplyV float64
}

// Congestion routes every signal net and accumulates segment length into
// direction-separated bins. Overflowing bins are where a real router would
// detour — the evaluation uses the overflow fraction as its routability
// signal (LDPC's wire-dominance shows up here).
func (r *Router) Congestion(d *netlist.Design, outline geom.Rect, nx, ny int) (*CongestionMap, error) {
	grid, err := geom.NewGrid(outline, nx, ny)
	if err != nil {
		return nil, fmt.Errorf("route: congestion grid: %w", err)
	}
	cm := &CongestionMap{
		Grid:    grid,
		DemandH: geom.NewHistogram(grid),
		DemandV: geom.NewHistogram(grid),
	}
	bw, bh := grid.BinSize()
	// Tracks per bin × bin span = routable µm per bin.
	cm.SupplyH = r.Stack.RoutingCapacityPerUm(true) * bh * bw
	cm.SupplyV = r.Stack.RoutingCapacityPerUm(false) * bw * bh

	sc := getScratch()
	defer putScratch(sc)
	for _, n := range d.Nets {
		if n.IsClock {
			continue
		}
		sc.pinbuf = n.AppendPinLocs(sc.pinbuf[:0])
		sc.dedup(sc.pinbuf)
		if len(sc.pts) <= 1 {
			continue
		}
		sc.build(true)
		for _, s := range sc.segs {
			addSegment(cm, s)
		}
	}
	return cm, nil
}

// addSegment smears a segment's length across the bins it traverses.
func addSegment(cm *CongestionMap, s Segment) {
	h := cm.DemandV
	if s.Horizontal() {
		h = cm.DemandH
	}
	length := s.Length()
	if length == 0 {
		return
	}
	// Walk the segment bin by bin.
	steps := 1 + int(length/minDim(cm.Grid))
	if steps > 64 {
		steps = 64
	}
	per := length / float64(steps)
	for i := 0; i < steps; i++ {
		f := (float64(i) + 0.5) / float64(steps)
		p := geom.Pt(s.A.X+(s.B.X-s.A.X)*f, s.A.Y+(s.B.Y-s.A.Y)*f)
		h.AddPoint(p, per)
	}
}

func minDim(g *geom.Grid) float64 {
	w, h := g.BinSize()
	if w < h {
		return w
	}
	return h
}

// OverflowFraction returns the fraction of bins whose demand exceeds
// supply in either direction.
func (cm *CongestionMap) OverflowFraction() float64 {
	over := 0
	for i := range cm.DemandH.Vals {
		if cm.DemandH.Vals[i] > cm.SupplyH || cm.DemandV.Vals[i] > cm.SupplyV {
			over++
		}
	}
	return float64(over) / float64(cm.Grid.Bins())
}

// MaxUtilization returns the worst bin demand/supply ratio.
func (cm *CongestionMap) MaxUtilization() float64 {
	worst := 0.0
	for i := range cm.DemandH.Vals {
		if cm.SupplyH > 0 {
			if u := cm.DemandH.Vals[i] / cm.SupplyH; u > worst {
				worst = u
			}
		}
		if cm.SupplyV > 0 {
			if u := cm.DemandV.Vals[i] / cm.SupplyV; u > worst {
				worst = u
			}
		}
	}
	return worst
}
