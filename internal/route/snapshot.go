package route

import "fmt"

// CacheEntry is one valid extraction-cache entry in exportable form:
// the net's dense ID, the journal revision the extraction is keyed on,
// and the extracted RC. Export/Restore move warm cache state across a
// save/load boundary so a resumed flow re-serves the same pointers a
// continuous run would have kept — and, because entries stay keyed on
// the restored design's journal revisions, any net that has since
// moved still re-extracts.
type CacheEntry struct {
	Net int
	Rev uint64
	RC  *NetRC
}

// Export returns the valid entries in net-ID order. Invalid (never
// filled or invalidated) slots are omitted; the RC pointers are shared
// with the cache, matching the immutable-result contract of Extract.
//
//pool:boundary snapshotting shares the cache-owned RC pointers
func (c *Cache) Export() []CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []CacheEntry
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.rc != nil {
			out = append(out, CacheEntry{Net: i, Rev: e.rev, RC: e.rc})
		}
	}
	return out
}

// Restore installs exported entries into the cache, validating net IDs
// against the design. Restore is for a freshly built cache on a
// restored design; existing entries at the same IDs are overwritten.
//
//pool:boundary restore re-seeds the cache's owned entries
func (c *Cache) Restore(entries []CacheEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) < len(c.d.Nets) {
		grown := make([]cacheEntry, len(c.d.Nets))
		copy(grown, c.entries)
		c.entries = grown
	}
	for _, e := range entries {
		if e.Net < 0 || e.Net >= len(c.entries) {
			return fmt.Errorf("route: restore: cache entry for net %d, design has %d nets", e.Net, len(c.d.Nets))
		}
		if e.RC == nil {
			return fmt.Errorf("route: restore: cache entry for net %d has no RC", e.Net)
		}
		c.entries[e.Net] = cacheEntry{rc: e.RC, rev: e.Rev, valid: true}
	}
	return nil
}
