// Package route estimates routing for placed designs: rectilinear Steiner
// tree wirelength (an overlap-merging L-RMST heuristic), MIV counting for
// 3-D nets, lumped RC extraction over the BEOL stack for timing, and a
// grid congestion model.
package route

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Segment is one rectilinear wire piece of a routed net.
type Segment struct {
	// Horizontal segments have A.Y == B.Y; vertical ones A.X == B.X.
	A, B geom.Point
}

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.ManhattanDist(s.B) }

// Horizontal reports the segment orientation.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

// segStore accumulates rectilinear segments with overlap merging so that
// shared track length is counted once — the mechanism that turns an
// L-routed MST into a Steiner tree.
type segStore struct {
	h map[float64][]ival // y → x-intervals
	v map[float64][]ival // x → y-intervals
	// total is the union length inserted so far.
	total float64
}

type ival struct{ lo, hi float64 }

func newSegStore() *segStore {
	return &segStore{h: make(map[float64][]ival), v: make(map[float64][]ival)}
}

// addedLen returns how much new length inserting [lo,hi] at key would add
// to the track set m, without inserting.
func addedLen(m map[float64][]ival, key, lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	add := hi - lo
	for _, iv := range m[key] {
		oLo, oHi := math.Max(lo, iv.lo), math.Min(hi, iv.hi)
		if oHi > oLo {
			add -= oHi - oLo
		}
	}
	if add < 0 {
		add = 0
	}
	return add
}

// insert adds [lo,hi] at key into m, merging overlaps, and returns the
// newly added length.
func insert(m map[float64][]ival, key, lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	add := addedLen(m, key, lo, hi)
	ivs := append(m[key], ival{lo, hi})
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	merged := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &merged[len(merged)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
		} else {
			merged = append(merged, iv)
		}
	}
	m[key] = merged
	return add
}

// addL routes an L-shaped connection from a to b choosing the bend that
// adds the least new length (max overlap with existing wires). It records
// the chosen segments and returns the added length.
func (st *segStore) addL(a, b geom.Point) float64 {
	if a == b {
		return 0
	}
	if a.X == b.X {
		add := insert(st.v, a.X, a.Y, b.Y)
		st.total += add
		return add
	}
	if a.Y == b.Y {
		add := insert(st.h, a.Y, a.X, b.X)
		st.total += add
		return add
	}
	// Option 1: horizontal at a.Y then vertical at b.X.
	o1 := addedLen(st.h, a.Y, a.X, b.X) + addedLen(st.v, b.X, a.Y, b.Y)
	// Option 2: vertical at a.X then horizontal at b.Y.
	o2 := addedLen(st.v, a.X, a.Y, b.Y) + addedLen(st.h, b.Y, a.X, b.X)
	var add float64
	if o1 <= o2 {
		add = insert(st.h, a.Y, a.X, b.X) + insert(st.v, b.X, a.Y, b.Y)
	} else {
		add = insert(st.v, a.X, a.Y, b.Y) + insert(st.h, b.Y, a.X, b.X)
	}
	st.total += add
	return add
}

// segments exports the stored wire pieces.
func (st *segStore) segments() []Segment {
	var out []Segment
	for y, ivs := range st.h {
		for _, iv := range ivs {
			out = append(out, Segment{geom.Pt(iv.lo, y), geom.Pt(iv.hi, y)})
		}
	}
	for x, ivs := range st.v {
		for _, iv := range ivs {
			out = append(out, Segment{geom.Pt(x, iv.lo), geom.Pt(x, iv.hi)})
		}
	}
	return out
}

// Tree is a routed net estimate.
type Tree struct {
	// Length is the Steiner wirelength in µm.
	Length float64
	// Segments are the wire pieces (only populated when requested).
	Segments []Segment
	// SinkPathLen[i] is the tree-path length from the root (pin 0) to
	// pin i+1, used by the RC extraction.
	SinkPathLen []float64
}

// RSMT builds a rectilinear Steiner tree estimate over pts. pts[0] is the
// root (driver). For ≤ 3 pins the construction is optimal; beyond that it
// is the overlap-merged L-routed MST heuristic (within a few percent of
// FLUTE on typical placement nets). keepSegments controls whether the
// geometry is returned (the congestion map and figure renderers want it).
func RSMT(pts []geom.Point, keepSegments bool) Tree {
	pts = dedup(pts)
	n := len(pts)
	switch n {
	case 0, 1:
		return Tree{}
	}

	// Prim MST on Manhattan distance, rooted at pin 0.
	parent := make([]int, n)
	dist := make([]float64, n)
	inTree := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	parent[0] = -1
	for iter := 0; iter < n; iter++ {
		best, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		inTree[best] = true
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].ManhattanDist(pts[i]); d < dist[i] {
					dist[i] = d
					parent[i] = best
				}
			}
		}
	}

	// Route MST edges in BFS order from the root, merging overlaps.
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		children[parent[i]] = append(children[parent[i]], i)
	}
	st := newSegStore()
	pathLen := make([]float64, n)
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range children[u] {
			st.addL(pts[u], pts[c])
			pathLen[c] = pathLen[u] + pts[u].ManhattanDist(pts[c])
			queue = append(queue, c)
		}
	}

	t := Tree{Length: st.total, SinkPathLen: pathLen[1:]}
	if keepSegments {
		t.Segments = st.segments()
	}
	return t
}

// dedup removes duplicate points, preserving order (and keeping index 0
// the root). Path lengths for deduped sinks are recovered by callers via
// matching coordinates; the flow only ever needs per-unique-location data.
func dedup(pts []geom.Point) []geom.Point {
	seen := make(map[geom.Point]bool, len(pts))
	out := pts[:0:0]
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// HPWL returns the half-perimeter wirelength of pts — the lower bound the
// Steiner estimate must respect.
func HPWL(pts []geom.Point) float64 {
	var bb geom.BBox
	for _, p := range pts {
		bb.Extend(p)
	}
	return bb.HalfPerimeter()
}
