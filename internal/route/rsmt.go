// Package route estimates routing for placed designs: rectilinear Steiner
// tree wirelength (an overlap-merging L-RMST heuristic), MIV counting for
// 3-D nets, lumped RC extraction over the BEOL stack for timing, and a
// grid congestion model.
package route

import (
	"math"
	"sort"
	"sync"

	"repro/internal/dense"
	"repro/internal/geom"
)

// Segment is one rectilinear wire piece of a routed net.
type Segment struct {
	// Horizontal segments have A.Y == B.Y; vertical ones A.X == B.X.
	A, B geom.Point
}

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.ManhattanDist(s.B) }

// Horizontal reports the segment orientation.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

type ival struct{ lo, hi float64 }

// trackSet stores per-track merged intervals as two parallel sorted
// slices (track coordinate → interval list) instead of a map: lookups
// binary-search a contiguous key array, iteration is in coordinate
// order, and reset retains every interval backing array for the next
// net, so a warm set allocates nothing.
type trackSet struct {
	keys  []float64
	ivs   [][]ival
	spare [][]ival // retired interval slices, reused by new tracks
}

// reset empties the set, retiring the interval storage for reuse.
func (ts *trackSet) reset() {
	for i := range ts.ivs {
		if cap(ts.ivs[i]) > 0 {
			ts.spare = append(ts.spare, ts.ivs[i][:0])
		}
		ts.ivs[i] = nil
	}
	ts.keys = ts.keys[:0]
	ts.ivs = ts.ivs[:0]
}

// track returns the index of key's interval list, creating an empty one
// (backed by retired storage when available) if the track is new.
func (ts *trackSet) track(key float64) int {
	i := sort.SearchFloat64s(ts.keys, key)
	if i < len(ts.keys) && ts.keys[i] == key {
		return i
	}
	var fresh []ival
	if n := len(ts.spare); n > 0 {
		fresh = ts.spare[n-1]
		ts.spare = ts.spare[:n-1]
	}
	ts.keys = append(ts.keys, 0)
	ts.ivs = append(ts.ivs, nil)
	copy(ts.keys[i+1:], ts.keys[i:])
	copy(ts.ivs[i+1:], ts.ivs[i:])
	ts.keys[i] = key
	ts.ivs[i] = fresh
	return i
}

// overlapLen returns the length of [lo,hi] already covered by ivs.
func overlapLen(ivs []ival, lo, hi float64) float64 {
	covered := 0.0
	for _, iv := range ivs {
		oLo, oHi := math.Max(lo, iv.lo), math.Min(hi, iv.hi)
		if oHi > oLo {
			covered += oHi - oLo
		}
	}
	return covered
}

// addedLen returns how much new length inserting [lo,hi] at key would
// add, without inserting.
func (ts *trackSet) addedLen(key, lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	add := hi - lo
	i := sort.SearchFloat64s(ts.keys, key)
	if i < len(ts.keys) && ts.keys[i] == key {
		add -= overlapLen(ts.ivs[i], lo, hi)
	}
	if add < 0 {
		add = 0
	}
	return add
}

// insert adds [lo,hi] at key, merging overlaps, and returns the newly
// added length. The track list stays sorted and disjoint throughout, so
// placing the new interval at its sorted position and merging in place
// reproduces the sort-and-merge of the old map-backed store exactly.
func (ts *trackSet) insert(key, lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	ti := ts.track(key)
	ivs := ts.ivs[ti]
	add := hi - lo - overlapLen(ivs, lo, hi)
	if add < 0 {
		add = 0
	}
	ivs = append(ivs, ival{lo, hi})
	j := len(ivs) - 1
	for j > 0 && ivs[j-1].lo > lo {
		ivs[j] = ivs[j-1]
		j--
	}
	ivs[j] = ival{lo, hi}
	merged := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &merged[len(merged)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
		} else {
			merged = append(merged, iv)
		}
	}
	ts.ivs[ti] = merged
	return add
}

// segStore accumulates rectilinear segments with overlap merging so that
// shared track length is counted once — the mechanism that turns an
// L-routed MST into a Steiner tree.
type segStore struct {
	h trackSet // y → x-intervals
	v trackSet // x → y-intervals
	// total is the union length inserted so far.
	total float64
}

func (st *segStore) reset() {
	st.h.reset()
	st.v.reset()
	st.total = 0
}

// addL routes an L-shaped connection from a to b choosing the bend that
// adds the least new length (max overlap with existing wires). It records
// the chosen segments and returns the added length.
func (st *segStore) addL(a, b geom.Point) float64 {
	if a == b {
		return 0
	}
	if a.X == b.X {
		add := st.v.insert(a.X, a.Y, b.Y)
		st.total += add
		return add
	}
	if a.Y == b.Y {
		add := st.h.insert(a.Y, a.X, b.X)
		st.total += add
		return add
	}
	// Option 1: horizontal at a.Y then vertical at b.X.
	o1 := st.h.addedLen(a.Y, a.X, b.X) + st.v.addedLen(b.X, a.Y, b.Y)
	// Option 2: vertical at a.X then horizontal at b.Y.
	o2 := st.v.addedLen(a.X, a.Y, b.Y) + st.h.addedLen(b.Y, a.X, b.X)
	var add float64
	if o1 <= o2 {
		add = st.h.insert(a.Y, a.X, b.X) + st.v.insert(b.X, a.Y, b.Y)
	} else {
		add = st.v.insert(a.X, a.Y, b.Y) + st.h.insert(b.Y, a.X, b.X)
	}
	st.total += add
	return add
}

// appendSegments exports the stored wire pieces into buf, tracks in
// coordinate order.
func (st *segStore) appendSegments(buf []Segment) []Segment {
	for i, y := range st.h.keys {
		for _, iv := range st.h.ivs[i] {
			buf = append(buf, Segment{geom.Pt(iv.lo, y), geom.Pt(iv.hi, y)})
		}
	}
	for i, x := range st.v.keys {
		for _, iv := range st.v.ivs[i] {
			buf = append(buf, Segment{geom.Pt(x, iv.lo), geom.Pt(x, iv.hi)})
		}
	}
	return buf
}

// Tree is a routed net estimate.
type Tree struct {
	// Length is the Steiner wirelength in µm.
	Length float64
	// Segments are the wire pieces (only populated when requested).
	Segments []Segment
	// SinkPathLen[i] is the tree-path length from the root (pin 0) to
	// pin i+1, used by the RC extraction.
	SinkPathLen []float64
}

// rsmtScratch is the per-construction workspace of the RSMT builder and
// the RC extraction: one flat buffer set reused net after net. The
// sync.Pool hands each P its own scratch, so the parallel fan-outs get
// per-worker free lists without locks on the hot path. References die
// at putScratch; the poolescape pass enforces this.
//
//pool:scoped
type rsmtScratch struct {
	pinbuf  []geom.Point // raw pin locations (AppendPinLocs target)
	pts     []geom.Point // deduped pins, root first
	seen    map[geom.Point]bool
	parent  []int32
	dist    []float64
	inTree  []bool
	childs  dense.CSR[int32]
	queue   []int32
	pathLen []float64 // root-path length per deduped pin
	segs    []Segment
	st      segStore

	// Extraction-side buffers (route.go).
	pathLoc    map[geom.Point]float64
	clusterPts [2][]geom.Point
	taken      []bool
}

var scratchPool = sync.Pool{New: func() any {
	return &rsmtScratch{
		seen:    make(map[geom.Point]bool),
		pathLoc: make(map[geom.Point]float64),
	}
}}

// getScratch leases a scratch from the pool; pair with putScratch.
//
//pool:boundary the scratch lease API
func getScratch() *rsmtScratch { return scratchPool.Get().(*rsmtScratch) }

// putScratch ends the lease; the scratch must not be touched after.
//
//pool:boundary the scratch lease API
func putScratch(sc *rsmtScratch) { scratchPool.Put(sc) }

// dedup fills sc.pts with pts minus duplicate points, preserving order
// (and keeping index 0 the root). Path lengths for deduped sinks are
// recovered by callers via matching coordinates; the flow only ever
// needs per-unique-location data. Small pin sets scan linearly instead
// of hashing — cheaper for the typical net and allocation-free either
// way.
func (sc *rsmtScratch) dedup(pts []geom.Point) {
	sc.pts = sc.pts[:0]
	if len(pts) <= 24 {
	outer:
		for _, p := range pts {
			for _, q := range sc.pts {
				if p == q {
					continue outer
				}
			}
			sc.pts = append(sc.pts, p)
		}
		return
	}
	clear(sc.seen)
	for _, p := range pts {
		if !sc.seen[p] {
			sc.seen[p] = true
			sc.pts = append(sc.pts, p)
		}
	}
}

// build runs the Prim+L-routing construction over the deduped pins in
// sc.pts: root-path lengths land in sc.pathLen, the merged geometry in
// sc.st (exported to sc.segs when keepSegments), and the Steiner length
// is returned. Callers must have ≥ 2 points in sc.pts.
//
//hotpath:kernel
func (sc *rsmtScratch) build(keepSegments bool) float64 {
	pts := sc.pts
	n := len(pts)

	// Prim MST on Manhattan distance, rooted at pin 0.
	sc.parent = dense.Grow(sc.parent, n)
	sc.dist = dense.Grow(sc.dist, n)
	sc.inTree = dense.Grow(sc.inTree, n)
	parent, dist, inTree := sc.parent, sc.dist, sc.inTree
	for i := range dist {
		dist[i] = math.Inf(1)
		inTree[i] = false
	}
	dist[0] = 0
	parent[0] = -1
	for iter := 0; iter < n; iter++ {
		best, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		inTree[best] = true
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].ManhattanDist(pts[i]); d < dist[i] {
					dist[i] = d
					parent[i] = int32(best)
				}
			}
		}
	}

	// Route MST edges in BFS order from the root, merging overlaps.
	sc.childs.Reset(n)
	for i := 1; i < n; i++ {
		sc.childs.Count(parent[i])
	}
	sc.childs.Seal()
	for i := 1; i < n; i++ {
		sc.childs.Append(parent[i], int32(i))
	}
	st := &sc.st
	st.reset()
	sc.pathLen = dense.Grow(sc.pathLen, n)
	pathLen := sc.pathLen
	pathLen[0] = 0
	queue := append(sc.queue[:0], 0)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, c := range sc.childs.Row(u) {
			st.addL(pts[u], pts[c])
			pathLen[c] = pathLen[u] + pts[u].ManhattanDist(pts[c])
			queue = append(queue, c)
		}
	}
	sc.queue = queue[:0]
	if keepSegments {
		sc.segs = st.appendSegments(sc.segs[:0])
	}
	return st.total
}

// RSMT builds a rectilinear Steiner tree estimate over pts. pts[0] is the
// root (driver). For ≤ 3 pins the construction is optimal; beyond that it
// is the overlap-merged L-routed MST heuristic (within a few percent of
// FLUTE on typical placement nets). keepSegments controls whether the
// geometry is returned (the congestion map and figure renderers want it).
func RSMT(pts []geom.Point, keepSegments bool) Tree {
	sc := getScratch()
	defer putScratch(sc)
	sc.dedup(pts)
	if len(sc.pts) <= 1 {
		return Tree{}
	}
	length := sc.build(keepSegments)
	t := Tree{Length: length, SinkPathLen: append([]float64(nil), sc.pathLen[1:len(sc.pts)]...)}
	if keepSegments {
		t.Segments = append([]Segment(nil), sc.segs...)
	}
	return t
}

// HPWL returns the half-perimeter wirelength of pts — the lower bound the
// Steiner estimate must respect.
func HPWL(pts []geom.Point) float64 {
	var bb geom.BBox
	for _, p := range pts {
		bb.Extend(p)
	}
	return bb.HalfPerimeter()
}
