package netlist

import "fmt"

// Change journaling: every structural or physical mutation of a Design
// bumps fine-grained revision counters and notifies registered observers,
// so downstream caches (RC extraction, the incremental timing engine) know
// exactly what was dirtied instead of re-deriving the whole design.
//
// Three revision domains cover the invalidation needs of the flow:
//
//   - NetRev(n): bumped whenever the net's extracted RC could change —
//     its pin membership changes, or a connected instance moves (Loc) or
//     switches dies (Tier).
//   - InstRev(inst): bumped on any change to the instance itself (master
//     swap, move, tier change).
//   - TopoRev(): bumped on any change to the design's connectivity
//     (instances/nets/ports added, pins connected or disconnected). A
//     retained timing graph must re-levelize when this moves.
//
// Direct writes to the exported Instance fields (Loc, Tier) remain legal
// while no observer is attached — generators and the pre-timing placement
// stages use them freely. Once a persistent consumer (sta.Timer,
// route.Cache) is watching the design, mutations must go through the
// journaled APIs: ReplaceMaster, InsertBuffer, Connect, Disconnect,
// Instance.SetLoc, and Instance.SetTier.

// ChangeKind classifies one journaled mutation.
type ChangeKind uint8

const (
	// ChangeMaster is a gate resize/retarget (ReplaceMaster): the
	// instance's delay tables and pin caps changed, geometry did not.
	ChangeMaster ChangeKind = iota
	// ChangeLoc is a placement move (Instance.SetLoc): wire geometry of
	// every connected net changed.
	ChangeLoc
	// ChangeTier is a die reassignment (Instance.SetTier): MIV counts and
	// boundary derates of every connected net changed.
	ChangeTier
	// ChangeStructure is a connectivity edit (instance/net/port added,
	// pin connected or disconnected, buffer inserted). Retained timing
	// graphs must rebuild.
	ChangeStructure
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeMaster:
		return "master"
	case ChangeLoc:
		return "loc"
	case ChangeTier:
		return "tier"
	case ChangeStructure:
		return "structure"
	default:
		return "unknown"
	}
}

// Change describes one journaled mutation. Inst is the affected instance
// for master/loc/tier changes and may be nil for structural edits.
type Change struct {
	Kind ChangeKind
	Inst *Instance
}

// Observer receives change notifications from a Design. Notifications are
// synchronous and arrive on the mutating goroutine; observers must not
// mutate the design from inside the callback.
type Observer interface {
	DesignChanged(Change)
}

// journal is the per-design revision and observer state. maxTopo is the
// high-water mark of topoRev — they only differ after a fault-injected
// rewind (CorruptTopoRev), and Reconcile uses it to move the revision
// strictly past every value previously handed out.
type journal struct {
	topoRev   uint64
	maxTopo   uint64
	netRev    []uint64 // by net ID
	instRev   []uint64 // by instance ID
	observers []Observer
}

// Observe registers an observer for all subsequent journaled mutations.
func (d *Design) Observe(o Observer) {
	d.jn.observers = append(d.jn.observers, o)
}

// Unobserve removes a previously registered observer.
func (d *Design) Unobserve(o Observer) {
	for i, cur := range d.jn.observers {
		if cur == o {
			d.jn.observers = append(d.jn.observers[:i], d.jn.observers[i+1:]...)
			return
		}
	}
}

// TopoRev returns the design's connectivity revision: it moves whenever
// the instance/net/port sets or any pin binding change.
func (d *Design) TopoRev() uint64 { return d.jn.topoRev }

// Observers returns the number of registered observers. The construction
// bulk-init mutators (InitLoc/InitTier) use it to decide whether full
// notification is required; the design-integrity checker reads it too.
func (d *Design) Observers() int { return len(d.jn.observers) }

// JournalCoverage returns the lengths of the per-instance and per-net
// revision arrays. A coherent journal covers every instance and net
// (AddInstance/AddNet grow the arrays in lockstep); the design-integrity
// checker's ENG rules assert exactly that.
func (d *Design) JournalCoverage() (insts, nets int) {
	return len(d.jn.instRev), len(d.jn.netRev)
}

// NetRev returns the net's extraction revision: it moves whenever the
// net's pin membership or any connected instance's Loc/Tier changes, so a
// cached RC extraction is valid exactly while NetRev is unchanged.
func (d *Design) NetRev(n *Net) uint64 {
	if n.ID >= len(d.jn.netRev) {
		return 0
	}
	return d.jn.netRev[n.ID]
}

// InstRev returns the instance's revision: it moves on master swaps,
// moves, and tier changes.
func (d *Design) InstRev(inst *Instance) uint64 {
	if inst.ID >= len(d.jn.instRev) {
		return 0
	}
	return d.jn.instRev[inst.ID]
}

func (d *Design) notify(c Change) {
	for _, o := range d.jn.observers {
		o.DesignChanged(c)
	}
}

// bumpTopo records a connectivity edit.
func (d *Design) bumpTopo() {
	d.jn.topoRev++
	if d.jn.topoRev > d.jn.maxTopo {
		d.jn.maxTopo = d.jn.topoRev
	}
	d.notify(Change{Kind: ChangeStructure})
}

// Reconcile repairs a journal whose revision counters can no longer be
// trusted (detected by the design-integrity checker's ENG rules, e.g.
// after fault injection rewinds the topology revision): it moves the
// topology revision strictly past every value previously handed out,
// bumps every per-net and per-instance revision, and notifies observers
// with a structural change — forcing every retained engine view (timing
// graph, RC cache) to rebuild from ground truth. It never rewinds.
func (d *Design) Reconcile() {
	for i := range d.jn.netRev {
		d.jn.netRev[i]++
	}
	for i := range d.jn.instRev {
		d.jn.instRev[i]++
	}
	d.jn.topoRev = d.jn.maxTopo
	d.bumpTopo()
}

// CorruptTopoRev rewinds the topology revision by n without notifying
// observers — deliberately violating the journal's monotonicity
// invariant. It exists only for fault injection (the harness's journal
// corruption target): retained engines keep trusting their stale views
// until an ENG-class check catches the rewind. Returns the new revision.
func (d *Design) CorruptTopoRev(n uint64) uint64 {
	if n > d.jn.topoRev {
		n = d.jn.topoRev
	}
	d.jn.topoRev -= n
	return d.jn.topoRev
}

// RestoreJournal overwrites the journal's revision counters with a
// previously exported JournalSnap — the last step of ImportState, run
// on a freshly replayed design before any observer attaches. Restoring
// the saved revisions (rather than keeping the replay's own counters)
// is what keeps revision-keyed state saved alongside the netlist — RC
// cache entries, the checker's ENG-003 high-water marks — coherent
// after a load. The high-water mark is clamped up to the topology
// revision so monotonicity holds even for a snapshot taken mid
// fault-injection.
func (d *Design) RestoreJournal(s JournalSnap) error {
	if n := len(d.jn.observers); n != 0 {
		return fmt.Errorf("netlist: RestoreJournal with %d observers attached", n)
	}
	if len(s.InstRev) != len(d.Instances) {
		return fmt.Errorf("netlist: journal covers %d instances, design has %d", len(s.InstRev), len(d.Instances))
	}
	if len(s.NetRev) != len(d.Nets) {
		return fmt.Errorf("netlist: journal covers %d nets, design has %d", len(s.NetRev), len(d.Nets))
	}
	d.jn.topoRev = s.TopoRev
	d.jn.maxTopo = s.MaxTopo
	if d.jn.maxTopo < s.TopoRev {
		d.jn.maxTopo = s.TopoRev
	}
	d.jn.instRev = append(d.jn.instRev[:0], s.InstRev...)
	d.jn.netRev = append(d.jn.netRev[:0], s.NetRev...)
	return nil
}

func (d *Design) bumpNet(n *Net) {
	if n.ID < len(d.jn.netRev) {
		d.jn.netRev[n.ID]++
	}
}

func (d *Design) bumpInst(inst *Instance) {
	if inst.ID < len(d.jn.instRev) {
		d.jn.instRev[inst.ID]++
	}
}

// bumpNetsOf bumps every net connected to the instance — the invalidation
// footprint of a move or tier change.
func (d *Design) bumpNetsOf(inst *Instance) {
	for _, n := range inst.nets {
		if n != nil {
			d.bumpNet(n)
		}
	}
}
