package netlist

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Snapshot is the pure-data export of a Design: masters deduplicated in
// first-use order, instances/nets/ports by dense index, and the change
// journal's revision counters. It contains no pointers into the live
// design, so it can outlive it, cross a serialization boundary
// (internal/db's NETL section), and be replayed into a fresh Design
// whose object identities, dense IDs, iteration orders, and journal
// state all match the original bit for bit.
type Snapshot struct {
	Name string
	// Masters are the distinct cell masters in first-use order over
	// Instances; InstSnap.Master indexes this list. Masters are stored
	// by value (full NLDM grids included) — restore reconstructs them
	// rather than resolving against a library, which keeps
	// design-specific macros and swept library variants uniform.
	Masters []*cell.Master
	Insts   []InstSnap
	Nets    []NetSnap
	Ports   []PortSnap
	Journal JournalSnap
}

// InstSnap is one instance: its identity, master index, and physical
// state. The dense ID is implicit (the slice index).
type InstSnap struct {
	Name   string
	Master int32
	Tier   tech.Tier
	Loc    geom.Point
	Fixed  bool
}

// PinSnap references one pin of one instance by dense indices; Inst is
// -1 for "no pin" (an undriven or port-driven net).
type PinSnap struct {
	Inst int32
	Pin  int32
}

// NetSnap is one net's connectivity in pin order. SinkPorts are not
// stored: AddPort replay in port order reproduces them exactly.
type NetSnap struct {
	Name    string
	IsClock bool
	Driver  PinSnap
	Sinks   []PinSnap
}

// PortSnap is one top-level port; Net indexes Nets.
type PortSnap struct {
	Name string
	Dir  cell.Dir
	Net  int32
	Loc  geom.Point
	Cap  float64
}

// JournalSnap captures the change journal's counters so revision-keyed
// caches and the stage-boundary monotonicity checks survive a
// save/restore round trip.
type JournalSnap struct {
	TopoRev uint64
	MaxTopo uint64
	InstRev []uint64
	NetRev  []uint64
}

// ExportState captures the design as a Snapshot. The design must be
// quiescent (no concurrent mutation); ExportState itself never mutates.
func (d *Design) ExportState() *Snapshot {
	s := &Snapshot{Name: d.Name}
	masterIdx := make(map[*cell.Master]int32)
	s.Insts = make([]InstSnap, len(d.Instances))
	for i, inst := range d.Instances {
		mi, ok := masterIdx[inst.Master]
		if !ok {
			mi = int32(len(s.Masters))
			masterIdx[inst.Master] = mi
			s.Masters = append(s.Masters, inst.Master)
		}
		s.Insts[i] = InstSnap{
			Name:   inst.Name,
			Master: mi,
			Tier:   inst.Tier,
			Loc:    inst.Loc,
			Fixed:  inst.Fixed,
		}
	}
	pinSnap := func(p PinRef) PinSnap {
		if !p.Valid() {
			return PinSnap{Inst: -1, Pin: -1}
		}
		return PinSnap{Inst: int32(p.Inst.ID), Pin: int32(p.Pin)}
	}
	s.Nets = make([]NetSnap, len(d.Nets))
	for i, n := range d.Nets {
		ns := NetSnap{Name: n.Name, IsClock: n.IsClock, Driver: pinSnap(n.Driver)}
		for _, sink := range n.Sinks {
			ns.Sinks = append(ns.Sinks, pinSnap(sink))
		}
		s.Nets[i] = ns
	}
	s.Ports = make([]PortSnap, len(d.Ports))
	for i, p := range d.Ports {
		ni := int32(-1)
		if p.Net != nil {
			ni = int32(p.Net.ID)
		}
		s.Ports[i] = PortSnap{Name: p.Name, Dir: p.Dir, Net: ni, Loc: p.Loc, Cap: p.Cap}
	}
	s.Journal = JournalSnap{
		TopoRev: d.jn.topoRev,
		MaxTopo: d.jn.maxTopo,
		InstRev: append([]uint64(nil), d.jn.instRev...),
		NetRev:  append([]uint64(nil), d.jn.netRev...),
	}
	return s
}

// ImportState replays a Snapshot into a fresh Design through the public
// construction API — AddInstance/AddNet/AddPort/Connect in the exact
// order the original design acquired its objects — so dense IDs,
// name-map contents, per-net sink order, and SinkPorts order all match
// the original, and the journalmutate contract holds (no mutation
// bypasses the journal). The journal counters are then overwritten with
// the snapshot's values (legal on the freshly built, observer-free
// design), so revision-keyed state restored alongside the netlist stays
// coherent.
//
// Every structural inconsistency in the snapshot — out-of-range
// indices, duplicate names, a doubly driven net — is reported as an
// error; ImportState never panics on adversarial input.
func ImportState(s *Snapshot) (*Design, error) {
	for i, m := range s.Masters {
		if m == nil {
			return nil, fmt.Errorf("netlist: import: master %d is nil", i)
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("netlist: import: master %d: %w", i, err)
		}
	}
	d := New(s.Name)
	for i := range s.Insts {
		is := &s.Insts[i]
		if is.Master < 0 || int(is.Master) >= len(s.Masters) {
			return nil, fmt.Errorf("netlist: import: instance %q references master %d of %d", is.Name, is.Master, len(s.Masters))
		}
		if is.Tier != tech.TierBottom && is.Tier != tech.TierTop {
			return nil, fmt.Errorf("netlist: import: instance %q has tier %d", is.Name, is.Tier)
		}
		inst, err := d.AddInstance(is.Name, s.Masters[is.Master])
		if err != nil {
			return nil, fmt.Errorf("netlist: import: %w", err)
		}
		// Direct physical-state writes are the documented pre-observer
		// construction path (journal revisions are overwritten below).
		inst.Tier = is.Tier
		inst.Loc = is.Loc
		inst.Fixed = is.Fixed
	}
	for i := range s.Nets {
		ns := &s.Nets[i]
		n, err := d.AddNet(ns.Name)
		if err != nil {
			return nil, fmt.Errorf("netlist: import: %w", err)
		}
		n.IsClock = ns.IsClock
	}
	for i := range s.Ports {
		ps := &s.Ports[i]
		if ps.Net < 0 || int(ps.Net) >= len(d.Nets) {
			return nil, fmt.Errorf("netlist: import: port %q references net %d of %d", ps.Name, ps.Net, len(d.Nets))
		}
		switch ps.Dir {
		case cell.DirIn, cell.DirOut, cell.DirClk:
		default:
			return nil, fmt.Errorf("netlist: import: port %q has direction %d", ps.Name, ps.Dir)
		}
		p, err := d.AddPort(ps.Name, ps.Dir, d.Nets[ps.Net])
		if err != nil {
			return nil, fmt.Errorf("netlist: import: %w", err)
		}
		p.Loc = ps.Loc
		p.Cap = ps.Cap
	}
	connect := func(netIdx int, pin PinSnap, wantDriver bool) error {
		n := d.Nets[netIdx]
		if pin.Inst < 0 || int(pin.Inst) >= len(d.Instances) {
			return fmt.Errorf("netlist: import: net %q pin references instance %d of %d", n.Name, pin.Inst, len(d.Instances))
		}
		inst := d.Instances[pin.Inst]
		if pin.Pin < 0 || int(pin.Pin) >= len(inst.Master.Pins) {
			return fmt.Errorf("netlist: import: net %q pin %d out of range for %s", n.Name, pin.Pin, inst.Master.Name)
		}
		spec := inst.Master.Pins[pin.Pin]
		if isOut := spec.Dir == cell.DirOut; isOut != wantDriver {
			return fmt.Errorf("netlist: import: net %q: pin %s/%s direction does not match its role", n.Name, inst.Name, spec.Name)
		}
		if err := d.Connect(inst, spec.Name, n); err != nil {
			return fmt.Errorf("netlist: import: %w", err)
		}
		return nil
	}
	for i := range s.Nets {
		ns := &s.Nets[i]
		if ns.Driver.Inst >= 0 {
			if err := connect(i, ns.Driver, true); err != nil {
				return nil, err
			}
		}
		for _, sink := range ns.Sinks {
			if err := connect(i, sink, false); err != nil {
				return nil, err
			}
		}
	}
	if err := d.RestoreJournal(s.Journal); err != nil {
		return nil, fmt.Errorf("netlist: import: %w", err)
	}
	return d, nil
}
