package netlist

import (
	"fmt"

	"repro/internal/cell"
)

// ECO editing primitives. These keep the design structurally consistent
// while synthesis sizes gates, the heterogeneous flow retargets a tier to
// another library, and the repartitioning loop moves cells between tiers.

// ReplaceMaster swaps an instance's master for another with the same pin
// interface (same pin names and directions). Used for gate sizing and for
// the 12-track → 9-track retargeting of the top tier.
//
// The journal records this as a master change on the instance only: the
// swap alters delay tables and pin caps but not wire geometry, so the
// connected nets' extraction revisions stay put and cached RC survives
// the whole sizing loop.
func (d *Design) ReplaceMaster(inst *Instance, m *cell.Master) error {
	if len(m.Pins) != len(inst.Master.Pins) {
		return fmt.Errorf("netlist: master %s has %d pins, %s has %d",
			m.Name, len(m.Pins), inst.Master.Name, len(inst.Master.Pins))
	}
	for i := range m.Pins {
		if m.Pins[i].Name != inst.Master.Pins[i].Name || m.Pins[i].Dir != inst.Master.Pins[i].Dir {
			return fmt.Errorf("netlist: pin %d mismatch replacing %s with %s",
				i, inst.Master.Name, m.Name)
		}
	}
	inst.Master = m
	d.bumpInst(inst)
	d.notify(Change{Kind: ChangeMaster, Inst: inst})
	return nil
}

// InsertBuffer splits net n in front of the given sink subset: a new
// buffer instance (of master buf) is driven by n, and the listed sinks are
// moved onto a new net driven by the buffer. The buffer is placed at the
// centroid of the moved sinks. Returns the new instance and net.
func (d *Design) InsertBuffer(n *Net, sinks []PinRef, buf *cell.Master, name string) (*Instance, *Net, error) {
	if len(sinks) == 0 {
		return nil, nil, fmt.Errorf("netlist: InsertBuffer with no sinks on %q", n.Name)
	}
	inst, err := d.AddInstance(name, buf)
	if err != nil {
		return nil, nil, err
	}
	newNet, err := d.AddNet(name + "_net")
	if err != nil {
		return nil, nil, err
	}
	newNet.IsClock = n.IsClock

	// Detach the chosen sinks from n.
	moved := make(map[PinRef]bool, len(sinks))
	for _, s := range sinks {
		moved[s] = true
	}
	kept := n.Sinks[:0]
	var cx, cy float64
	found := 0
	for _, s := range n.Sinks {
		if moved[s] {
			s.Inst.nets[s.Pin] = newNet
			newNet.Sinks = append(newNet.Sinks, s)
			cx += s.Loc().X
			cy += s.Loc().Y
			found++
		} else {
			kept = append(kept, s)
		}
	}
	if found != len(sinks) {
		return nil, nil, fmt.Errorf("netlist: %d of %d sinks not on net %q", len(sinks)-found, len(sinks), n.Name)
	}
	n.Sinks = kept
	// The sink moves above bypass Connect, so journal them here: both
	// nets' pin memberships changed.
	d.bumpNet(n)
	d.bumpNet(newNet)
	d.bumpTopo()

	// Wire the buffer: A ← n, Y → newNet.
	if err := d.Connect(inst, "A", n); err != nil {
		return nil, nil, err
	}
	if err := d.Connect(inst, "Y", newNet); err != nil {
		return nil, nil, err
	}
	inst.Loc.X = cx / float64(found)
	inst.Loc.Y = cy / float64(found)
	// The buffer inherits the tier of its sinks' majority side later; by
	// default it lands on the driver's tier.
	if n.Driver.Valid() {
		inst.Tier = n.Driver.Inst.Tier
	}
	return inst, newNet, nil
}

// Disconnect removes the binding between a pin and its net.
func (d *Design) Disconnect(ref PinRef) error {
	if !ref.Valid() {
		return fmt.Errorf("netlist: invalid pin reference")
	}
	n := ref.Inst.nets[ref.Pin]
	if n == nil {
		return fmt.Errorf("netlist: pin %s/%s not connected", ref.Inst.Name, ref.Spec().Name)
	}
	if ref.Spec().Dir == cell.DirOut {
		n.Driver = PinRef{}
	} else {
		for i, s := range n.Sinks {
			if s == ref {
				n.Sinks = append(n.Sinks[:i], n.Sinks[i+1:]...)
				break
			}
		}
	}
	ref.Inst.nets[ref.Pin] = nil
	d.bumpNet(n)
	d.bumpTopo()
	return nil
}

// Validate checks global structural consistency: every net driven exactly
// once, every pin binding mirrored on the net side, no dangling sinks.
func (d *Design) Validate() error {
	for _, n := range d.Nets {
		drivers := 0
		if n.Driver.Valid() {
			drivers++
			if n.Driver.Inst.nets[n.Driver.Pin] != n {
				return fmt.Errorf("netlist: net %q driver binding mismatch", n.Name)
			}
		}
		if n.DriverPort != nil {
			drivers++
		}
		if drivers == 0 && n.Degree() > 0 {
			return fmt.Errorf("netlist: net %q has sinks but no driver", n.Name)
		}
		if drivers > 1 {
			return fmt.Errorf("netlist: net %q has multiple drivers", n.Name)
		}
		for _, s := range n.Sinks {
			if !s.Valid() {
				return fmt.Errorf("netlist: net %q has invalid sink ref", n.Name)
			}
			if s.Inst.nets[s.Pin] != n {
				return fmt.Errorf("netlist: net %q sink %s binding mismatch", n.Name, s.Inst.Name)
			}
			if s.Spec().Dir == cell.DirOut {
				return fmt.Errorf("netlist: net %q lists output pin of %s as sink", n.Name, s.Inst.Name)
			}
		}
	}
	for _, inst := range d.Instances {
		for i, n := range inst.nets {
			if n == nil {
				continue
			}
			spec := inst.Master.Pins[i]
			ref := PinRef{Inst: inst, Pin: i}
			if spec.Dir == cell.DirOut {
				if n.Driver != ref {
					return fmt.Errorf("netlist: instance %s output not the driver of %q", inst.Name, n.Name)
				}
				continue
			}
			found := false
			for _, s := range n.Sinks {
				if s == ref {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netlist: instance %s pin %s not listed on net %q", inst.Name, spec.Name, n.Name)
			}
		}
	}
	return nil
}
