package netlist

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/tech"
)

func resolver(t *testing.T) MasterResolver {
	t.Helper()
	ram := cell.NewRAMMacro("RAM1", 50, 40, 0.3, 2, 6)
	return func(name string) (*cell.Master, error) {
		if name == "RAM1" {
			return ram, nil
		}
		if strings.HasSuffix(name, "_9T") {
			return lib9.Master(name)
		}
		return lib12.Master(name)
	}
}

func TestVerilogRoundtrip(t *testing.T) {
	d := buildMini(t)
	d.Instance("u1").Loc = geom.Pt(1.25, 3.5)
	d.Instance("u2").Tier = tech.TierTop
	d.Instance("r1").Fixed = true
	d.Ports[0].Loc = geom.Pt(0, 7)

	var sb strings.Builder
	if err := WriteVerilog(&sb, d); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"module mini", "endmodule", ".CK(clk)", "tier=1", `clk="true"`} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog missing %q:\n%s", want, text)
		}
	}

	rd, err := ReadVerilog(strings.NewReader(text), resolver(t))
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if err := rd.Validate(); err != nil {
		t.Fatal(err)
	}
	// Structure survives.
	s1, s2 := d.ComputeStats(), rd.ComputeStats()
	if s1 != s2 {
		t.Errorf("stats changed: %+v vs %+v", s1, s2)
	}
	// Physical attributes survive.
	if rd.Instance("u1").Loc != geom.Pt(1.25, 3.5) {
		t.Errorf("u1 loc = %v", rd.Instance("u1").Loc)
	}
	if rd.Instance("u2").Tier != tech.TierTop {
		t.Error("u2 tier lost")
	}
	if !rd.Instance("r1").Fixed {
		t.Error("r1 fixed flag lost")
	}
	if rd.Port("in").Loc != geom.Pt(0, 7) {
		t.Errorf("port loc = %v", rd.Port("in").Loc)
	}
	if !rd.Net("clk").IsClock {
		t.Error("clock marking lost")
	}
	// Connectivity identical: same driver for every net. Nets serving a
	// differently-named port come back under the port's name (Verilog
	// semantics), so resolve through the ports.
	for _, n := range d.Nets {
		name := n.Name
		if rd.Net(name) == nil {
			for _, p := range d.Ports {
				if p.Net == n {
					name = p.Name
				}
			}
		}
		rn := rd.Net(name)
		if rn == nil {
			t.Fatalf("net %q lost", n.Name)
		}
		if n.Driver.Valid() != rn.Driver.Valid() || len(n.Sinks) != len(rn.Sinks) {
			t.Errorf("net %q connectivity changed", n.Name)
		}
		if n.Driver.Valid() && n.Driver.Inst.Name != rn.Driver.Inst.Name {
			t.Errorf("net %q driver changed", n.Name)
		}
	}
}

func TestVerilogRoundtripWithMacroAndEscapes(t *testing.T) {
	d := New("weird-design")  // name needs escaping
	in, _ := d.AddNet("1bad") // net name starting with a digit
	if _, err := d.AddPort("1bad", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}
	ram := cell.NewRAMMacro("RAM1", 50, 40, 0.3, 2, 6)
	ri, _ := d.AddInstance("mem/0", ram) // instance name with '/'
	if err := d.Connect(ri, "A", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ri, "CK", clk); err != nil {
		t.Fatal(err)
	}
	q, _ := d.AddNet("q")
	if err := d.Connect(ri, "Q", q); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out", cell.DirOut, q); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := WriteVerilog(&sb, d); err != nil {
		t.Fatal(err)
	}
	rd, err := ReadVerilog(strings.NewReader(sb.String()), resolver(t))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if rd.Instance("mem/0") == nil {
		t.Error("escaped instance name lost")
	}
	if rd.Net("1bad") == nil {
		t.Error("escaped net name lost")
	}
	if rd.ComputeStats().Macros != 1 {
		t.Error("macro lost")
	}
}

func TestReadVerilogErrors(t *testing.T) {
	res := resolver(t)
	cases := []string{
		"",            // empty
		"module m (;", // broken port list
		"module m (); wire w; bogus u0 (); endmodule",          // unknown master
		"module m (); INV_X1_12T u0 (.A(nx)); endmodule",       // undeclared net
		"module m (); wire w; INV_X1_12T u0 (.A(w))",           // missing ; and endmodule
		"module m (); wire w; INV_X1_12T u0 (A(w)); endmodule", // missing dot
	}
	for i, src := range cases {
		if _, err := ReadVerilog(strings.NewReader(src), res); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestAttrMap(t *testing.T) {
	m := attrMap(`tier=1 loc="3.5,4.25" fixed="true" clock`)
	if m["tier"] != "1" || m["loc"] != "3.5,4.25" || m["fixed"] != "true" || m["clock"] != "true" {
		t.Errorf("attrMap = %v", m)
	}
	if p, ok := parseLoc(m["loc"]); !ok || p != geom.Pt(3.5, 4.25) {
		t.Errorf("parseLoc = %v %v", p, ok)
	}
	if _, ok := parseLoc("garbage"); ok {
		t.Error("garbage loc should fail")
	}
}

// Round-trip a generated design through Verilog and confirm timing is
// bit-identical — the integration-grade check that nothing physical leaks.
func TestVerilogRoundtripGenerated(t *testing.T) {
	src := buildMini(t)
	var sb strings.Builder
	if err := WriteVerilog(&sb, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVerilog(strings.NewReader(sb.String()), resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	var sb2 strings.Builder
	if err := WriteVerilog(&sb2, back); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("write→read→write is not a fixed point")
	}
}
