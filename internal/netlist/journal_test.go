package netlist

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/tech"
)

// recorder collects every notification for assertion.
type recorder struct {
	changes []Change
}

func (r *recorder) DesignChanged(c Change) { r.changes = append(r.changes, c) }

func (r *recorder) count(k ChangeKind) int {
	n := 0
	for _, c := range r.changes {
		if c.Kind == k {
			n++
		}
	}
	return n
}

// journalDesign builds inv(a) → mid → inv(b) → out with an input port on a.
func journalDesign(t *testing.T) (*Design, *Instance, *Instance, *Net) {
	t.Helper()
	lib := cell.NewLibrary(tech.Variant12T())
	d := New("jrnl")
	a, _ := d.AddNet("a")
	if _, err := d.AddPort("a", cell.DirIn, a); err != nil {
		t.Fatal(err)
	}
	mid, _ := d.AddNet("mid")
	out, _ := d.AddNet("out")
	i1, err := d.AddInstance("i1", lib.Smallest(cell.FuncInv))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := d.AddInstance("i2", lib.Smallest(cell.FuncInv))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		inst *Instance
		pin  string
		n    *Net
	}{{i1, "A", a}, {i1, "Y", mid}, {i2, "A", mid}, {i2, "Y", out}} {
		if err := d.Connect(c.inst, c.pin, c.n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddPort("out", cell.DirOut, out); err != nil {
		t.Fatal(err)
	}
	return d, i1, i2, mid
}

func TestJournalRevisions(t *testing.T) {
	d, i1, i2, mid := journalDesign(t)
	lib := cell.NewLibrary(tech.Variant12T())

	topo0 := d.TopoRev()
	if topo0 == 0 {
		t.Fatal("construction should have moved the topo revision")
	}

	// Master swap: instance revision moves, net revisions do not — wire
	// geometry is untouched, so RC caches must stay valid.
	midRev, i1Rev := d.NetRev(mid), d.InstRev(i1)
	up := lib.NextDriveUp(i1.Master)
	if up == nil {
		t.Fatal("no drive-up for smallest inverter")
	}
	if err := d.ReplaceMaster(i1, up); err != nil {
		t.Fatal(err)
	}
	if d.InstRev(i1) != i1Rev+1 {
		t.Errorf("InstRev after ReplaceMaster = %d, want %d", d.InstRev(i1), i1Rev+1)
	}
	if d.NetRev(mid) != midRev {
		t.Errorf("NetRev moved on ReplaceMaster: %d → %d", midRev, d.NetRev(mid))
	}
	if d.TopoRev() != topo0 {
		t.Errorf("TopoRev moved on ReplaceMaster")
	}

	// Move: every connected net's revision moves.
	aRev := d.NetRev(d.Net("a"))
	midRev = d.NetRev(mid)
	i1.SetLoc(geom.Pt(5, 7))
	if d.NetRev(mid) != midRev+1 || d.NetRev(d.Net("a")) != aRev+1 {
		t.Errorf("connected net revisions did not move on SetLoc")
	}
	// Repeating the identical location is a no-op.
	midRev = d.NetRev(mid)
	i1.SetLoc(geom.Pt(5, 7))
	if d.NetRev(mid) != midRev {
		t.Errorf("identical SetLoc bumped NetRev")
	}

	// Tier change bumps the same footprint.
	midRev = d.NetRev(mid)
	i2.SetTier(tech.TierTop)
	if d.NetRev(mid) != midRev+1 {
		t.Errorf("SetTier did not bump connected net revision")
	}
	i2.SetTier(tech.TierTop) // no-op
	if d.NetRev(mid) != midRev+1 {
		t.Errorf("identical SetTier bumped NetRev")
	}

	// Buffer insertion is structural and rewires both nets.
	topo1 := d.TopoRev()
	outRev := d.NetRev(d.Net("out"))
	if _, _, err := d.InsertBuffer(d.Net("out"), d.Net("out").Sinks[:0], lib.Smallest(cell.FuncBuf), "b0"); err == nil {
		t.Fatal("InsertBuffer with no sinks should fail")
	}
	mid2 := d.Net("mid")
	if _, _, err := d.InsertBuffer(mid2, append([]PinRef{}, mid2.Sinks...), lib.Smallest(cell.FuncBuf), "b1"); err != nil {
		t.Fatal(err)
	}
	if d.TopoRev() == topo1 {
		t.Errorf("TopoRev did not move on InsertBuffer")
	}
	if d.NetRev(mid2) == midRev+1 {
		t.Errorf("split net revision did not move on InsertBuffer")
	}
	_ = outRev
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalObservers(t *testing.T) {
	d, i1, _, _ := journalDesign(t)
	lib := cell.NewLibrary(tech.Variant12T())

	rec := &recorder{}
	d.Observe(rec)

	if err := d.ReplaceMaster(i1, lib.NextDriveUp(i1.Master)); err != nil {
		t.Fatal(err)
	}
	i1.SetLoc(geom.Pt(1, 2))
	i1.SetTier(tech.TierTop)
	mid := d.Net("mid")
	if _, _, err := d.InsertBuffer(mid, append([]PinRef{}, mid.Sinks...), lib.Smallest(cell.FuncBuf), "b1"); err != nil {
		t.Fatal(err)
	}

	if got := rec.count(ChangeMaster); got != 1 {
		t.Errorf("master notifications = %d, want 1", got)
	}
	if got := rec.count(ChangeLoc); got != 1 {
		t.Errorf("loc notifications = %d, want 1", got)
	}
	if got := rec.count(ChangeTier); got != 1 {
		t.Errorf("tier notifications = %d, want 1", got)
	}
	if got := rec.count(ChangeStructure); got == 0 {
		t.Errorf("no structure notifications from InsertBuffer")
	}
	for _, c := range rec.changes {
		if c.Kind == ChangeMaster && c.Inst != i1 {
			t.Errorf("master change attributed to %v, want i1", c.Inst)
		}
	}

	// After Unobserve the recorder sees nothing further.
	seen := len(rec.changes)
	d.Unobserve(rec)
	i1.SetLoc(geom.Pt(9, 9))
	if len(rec.changes) != seen {
		t.Errorf("observer still notified after Unobserve")
	}
}

func TestJournalCloneIndependence(t *testing.T) {
	d, i1, _, _ := journalDesign(t)
	rec := &recorder{}
	d.Observe(rec)

	c, err := d.CloneInto("copy", func(m *cell.Master) (*cell.Master, error) { return m, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not notify the original's observers, and the
	// clone's instances must journal into the clone.
	seen := len(rec.changes)
	ci := c.Instance("i1")
	rev := c.InstRev(ci)
	ci.SetLoc(geom.Pt(3, 3))
	if len(rec.changes) != seen {
		t.Errorf("clone mutation notified the original's observer")
	}
	if c.InstRev(ci) != rev+1 {
		t.Errorf("clone mutation did not bump the clone's revision")
	}
	_ = i1
}

func TestCorruptAndReconcile(t *testing.T) {
	d, i1, _, mid := journalDesign(t)
	rec := &recorder{}
	d.Observe(rec)

	before := d.TopoRev()
	if got := d.CorruptTopoRev(2); got != before-2 {
		t.Fatalf("CorruptTopoRev: rev = %d, want %d", got, before-2)
	}
	if n := rec.count(ChangeStructure); n != 0 {
		t.Fatalf("corruption notified observers (%d structural changes) — it must be silent", n)
	}

	netRev, instRev := d.NetRev(mid), d.InstRev(i1)
	d.Reconcile()
	// The repaired revision must be strictly past every value handed out
	// before the rewind, so any engine view keyed on an old revision reads
	// as stale.
	if d.TopoRev() <= before {
		t.Fatalf("Reconcile left TopoRev at %d, want > %d", d.TopoRev(), before)
	}
	if d.NetRev(mid) <= netRev || d.InstRev(i1) <= instRev {
		t.Fatal("Reconcile did not bump per-net/per-instance revisions")
	}
	if n := rec.count(ChangeStructure); n != 1 {
		t.Fatalf("Reconcile sent %d structural notifications, want 1", n)
	}

	// Rewinding past zero clamps.
	if got := d.CorruptTopoRev(1 << 40); got != 0 {
		t.Fatalf("clamped rewind: rev = %d, want 0", got)
	}
}
